// Package rlir is an implementation and experimental reproduction of
// RLIR — Reference Latency Interpolation across Routers (Singh, Lee, Kumar,
// Kompella; USENIX Hot-ICE 2011) — together with every substrate the paper
// depends on: a deterministic discrete-event network simulator, k-ary
// fat-tree topologies with ECMP routing, synthetic heavy-tailed traffic
// generation, cross-traffic injection models, clock-synchronization models,
// and the LDA and Multiflow baseline estimators.
//
// # What RLIR is
//
// RLI (SIGCOMM 2010) measures per-flow latency between two points of a
// switch by injecting timestamped reference packets and linearly
// interpolating the delays of the regular packets between them. RLIR
// deploys RLI instances at only a subset of routers (e.g. ToR uplinks and
// cores of a fat-tree) and measures multi-router segments, trading a
// coarser localization granularity for a much smaller deployment. Partial
// deployment raises two problems the paper solves and this library
// implements:
//
//   - Traffic multiplexing: receivers see packets that only partially share
//     the reference stream's path. Senders fan reference streams to every
//     reachable receiver; receivers demultiplex regular packets by source
//     prefix (upstream), ToS marks, or reverse-ECMP computation
//     (downstream).
//   - Cross traffic: a sender cannot see downstream bottleneck utilization,
//     so adaptive injection misfires. The paper's static worst-case
//     injection (1-and-n) is the recommended fallback, and the library
//     reproduces the interference comparison between the two.
//
// # Layout
//
// This root package is the stable public API: thin, documented re-exports
// of the implementation packages under internal/. Start with Quickstart in
// the examples directory, or:
//
//	res := rlir.RunTandem(rlir.TandemConfig{
//	    Scale:      rlir.DefaultScale(),
//	    Scheme:     rlir.DefaultStatic(),
//	    Model:      rlir.CrossUniform,
//	    TargetUtil: 0.93,
//	})
//	fmt.Println(res.Summary)
//
// The experiment harnesses Fig4a, Fig4b, Fig4c, Fig5, RunScalars,
// AblationDemux, AblationEstimators, AblationClocks and RunBaselines
// regenerate every figure and table of the paper's evaluation; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package rlir
