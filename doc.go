// Package rlir is an implementation and experimental reproduction of
// RLIR — Reference Latency Interpolation across Routers (Singh, Lee, Kumar,
// Kompella; USENIX Hot-ICE 2011) — together with every substrate the paper
// depends on: a deterministic discrete-event network simulator, k-ary
// fat-tree topologies with ECMP routing, synthetic heavy-tailed traffic
// generation, cross-traffic injection models, clock-synchronization models,
// and the LDA and Multiflow baseline estimators.
//
// # What RLIR is
//
// RLI (SIGCOMM 2010) measures per-flow latency between two points of a
// switch by injecting timestamped reference packets and linearly
// interpolating the delays of the regular packets between them. RLIR
// deploys RLI instances at only a subset of routers (e.g. ToR uplinks and
// cores of a fat-tree) and measures multi-router segments, trading a
// coarser localization granularity for a much smaller deployment. Partial
// deployment raises two problems the paper solves and this library
// implements:
//
//   - Traffic multiplexing: receivers see packets that only partially share
//     the reference stream's path. Senders fan reference streams to every
//     reachable receiver; receivers demultiplex regular packets by source
//     prefix (upstream), ToS marks, or reverse-ECMP computation
//     (downstream).
//   - Cross traffic: a sender cannot see downstream bottleneck utilization,
//     so adaptive injection misfires. The paper's static worst-case
//     injection (1-and-n) is the recommended fallback, and the library
//     reproduces the interference comparison between the two.
//
// # Layout
//
// This root package (rlir.go) is the stable public API: thin, documented
// re-exports of the implementation packages under internal/. Start with
// README.md for the repository tour and runnable quickstarts, the examples
// directory for complete programs, or:
//
//	res := rlir.RunTandem(rlir.TandemConfig{
//	    Scale:      rlir.DefaultScale(),
//	    Scheme:     rlir.DefaultStatic(),
//	    Model:      rlir.CrossUniform,
//	    TargetUtil: 0.93,
//	})
//	fmt.Println(res.Summary)
//
// The API groups in rlir.go, in reading order:
//
//   - Packet and flow identity (FlowKey, Addr, Prefix) and injection
//     schemes (Static, Adaptive) — the paper's §3.2 mechanism surface.
//   - Experiment harnesses (RunTandem, RunFatTree, RunLocalization, the
//     Fig4*/Fig5/Scalars/Ablation* reproductions) and their Multi* seed
//     sweeps — every figure and table of §4; EXPERIMENTS.md records the
//     paper-vs-measured comparison.
//   - The unified estimator layer (MeasureEstimator, EstimatorNames,
//     CompareEstimators): every measurement mechanism — RLI, LDA, NetFlow
//     sampling, Multiflow — on one simulation pass, scored against shared
//     ground truth.
//   - The scenario engine (ScenarioSpec, Scenarios, RunScenario): named
//     network-wide workload/fault scenarios with registry invariants;
//     cmd/scenario is the CLI.
//   - The measurement service (MeasurementService, ServiceClient,
//     ExportScenarioTrace): the long-lived streaming deployment — routers
//     stream wire frames into cmd/rlird, cmd/loadgen replays captured
//     scenario traffic at line rate, operators query HTTP endpoints.
//
// Command front-ends: cmd/rlirsim (single runs), cmd/experiments (figures
// and ablations), cmd/scenario (the scenario registry), cmd/tracegen
// (synthetic traces), cmd/placement (§3.1 deployment arithmetic),
// cmd/rlird + cmd/loadgen (the streaming service and its load generator).
// DESIGN.md explains the architecture layer by layer.
package rlir
