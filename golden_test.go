package rlir_test

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	rlir "github.com/netmeasure/rlir"
)

// TestGoldenDeterminism pins the simulation output bit-for-bit: the same
// seed must produce the identical RunTandem summaries and figure metrics
// across engine rewrites. The fixture in testdata/golden_engine.json was
// captured from the seed (container/heap, closure-event) engine; any change
// to event ordering, trace generation, or estimator arithmetic shows up here
// as an exact-value mismatch.
//
// Regenerate (only when an intentional semantic change is made) with:
//
//	go test -run TestGoldenDeterminism -update-golden .
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_engine.json from the current engine")

// goldenFloat holds a float64 both as its exact bit pattern (compared) and
// as a human-readable value (diagnostics only).
type goldenFloat struct {
	Bits  uint64  `json:"bits"`
	Value float64 `json:"value"`
}

func gf(v float64) goldenFloat { return goldenFloat{Bits: math.Float64bits(v), Value: v} }

type goldenTandem struct {
	Name           string      `json:"name"`
	RegularOffered uint64      `json:"regular_offered"`
	RegularDropped uint64      `json:"regular_dropped"`
	CrossAdmitted  uint64      `json:"cross_admitted"`
	RefsSeen       uint64      `json:"refs_seen"`
	RegularSeen    uint64      `json:"regular_seen"`
	Estimated      uint64      `json:"estimated"`
	SenderInjected uint64      `json:"sender_injected"`
	Flows          int         `json:"flows"`
	Estimates      int64       `json:"estimates"`
	MedianRelErr   goldenFloat `json:"median_rel_err"`
	P90RelErr      goldenFloat `json:"p90_rel_err"`
	FracUnder10Pct goldenFloat `json:"frac_under_10pct"`
	TrueMeanDelay  int64       `json:"true_mean_delay_ns"`
	AchievedUtil   goldenFloat `json:"achieved_util"`
}

type goldenFigure struct {
	ID      string        `json:"id"`
	Labels  []string      `json:"labels"`
	Medians []goldenFloat `json:"medians"`
	Counts  []int         `json:"counts"`
}

type goldenFile struct {
	Tandems []goldenTandem `json:"tandems"`
	Figures []goldenFigure `json:"figures"`
}

func goldenTandemConfigs() []struct {
	name string
	cfg  rlir.TandemConfig
} {
	scale := rlir.SmallScale()
	return []struct {
		name string
		cfg  rlir.TandemConfig
	}{
		{"static-uniform-93", rlir.TandemConfig{
			Scale: scale, Scheme: rlir.DefaultStatic(), Model: rlir.CrossUniform, TargetUtil: 0.93,
		}},
		{"adaptive-live-bursty-90", rlir.TandemConfig{
			Scale: scale, Scheme: rlir.DefaultAdaptive(), AdaptiveLive: true,
			Model: rlir.CrossBursty, TargetUtil: 0.90,
		}},
		{"noscheme-uniform-98", rlir.TandemConfig{
			Scale: scale, Model: rlir.CrossUniform, TargetUtil: 0.98,
		}},
		{"static-none", rlir.TandemConfig{
			Scale: scale, Scheme: rlir.DefaultStatic(), Model: rlir.CrossNone,
		}},
	}
}

func captureGolden() goldenFile {
	var out goldenFile
	for _, tc := range goldenTandemConfigs() {
		r := rlir.RunTandem(tc.cfg)
		out.Tandems = append(out.Tandems, goldenTandem{
			Name:           tc.name,
			RegularOffered: r.RegularOffered,
			RegularDropped: r.RegularDropped,
			CrossAdmitted:  r.CrossAdmitted,
			RefsSeen:       r.Receiver.RefsSeen,
			RegularSeen:    r.Receiver.RegularSeen,
			Estimated:      r.Receiver.Estimated,
			SenderInjected: r.Sender.Injected,
			Flows:          r.Summary.Flows,
			Estimates:      r.Summary.Estimates,
			MedianRelErr:   gf(r.Summary.MedianRelErr),
			P90RelErr:      gf(r.Summary.P90RelErr),
			FracUnder10Pct: gf(r.Summary.FracUnder10Pct),
			TrueMeanDelay:  int64(r.Summary.TrueMeanDelay / time.Nanosecond),
			AchievedUtil:   gf(r.AchievedUtil),
		})
	}
	fig := rlir.Fig4a(rlir.SmallScale())
	gfig := goldenFigure{ID: fig.ID}
	for _, s := range fig.Series {
		gfig.Labels = append(gfig.Labels, s.Label)
		gfig.Medians = append(gfig.Medians, gf(s.CDF.Median()))
		gfig.Counts = append(gfig.Counts, s.CDF.N())
	}
	out.Figures = append(out.Figures, gfig)
	return out
}

func TestGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("golden determinism run is a multi-simulation test; skipped in -short")
	}
	path := filepath.Join("testdata", "golden_engine.json")
	got := captureGolden()

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update-golden to create): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	if len(got.Tandems) != len(want.Tandems) {
		t.Fatalf("tandem count %d != fixture %d", len(got.Tandems), len(want.Tandems))
	}
	for i, g := range got.Tandems {
		w := want.Tandems[i]
		if g.Name != w.Name {
			t.Fatalf("tandem %d name %q != fixture %q", i, g.Name, w.Name)
		}
		checkUint := func(field string, got, want uint64) {
			if got != want {
				t.Errorf("%s: %s = %d, fixture %d", g.Name, field, got, want)
			}
		}
		checkFloat := func(field string, got, want goldenFloat) {
			if got.Bits != want.Bits {
				t.Errorf("%s: %s = %v (bits %x), fixture %v (bits %x)",
					g.Name, field, got.Value, got.Bits, want.Value, want.Bits)
			}
		}
		checkUint("RegularOffered", g.RegularOffered, w.RegularOffered)
		checkUint("RegularDropped", g.RegularDropped, w.RegularDropped)
		checkUint("CrossAdmitted", g.CrossAdmitted, w.CrossAdmitted)
		checkUint("RefsSeen", g.RefsSeen, w.RefsSeen)
		checkUint("RegularSeen", g.RegularSeen, w.RegularSeen)
		checkUint("Estimated", g.Estimated, w.Estimated)
		checkUint("SenderInjected", g.SenderInjected, w.SenderInjected)
		if g.Flows != w.Flows || g.Estimates != w.Estimates {
			t.Errorf("%s: flows/estimates %d/%d, fixture %d/%d",
				g.Name, g.Flows, g.Estimates, w.Flows, w.Estimates)
		}
		checkFloat("MedianRelErr", g.MedianRelErr, w.MedianRelErr)
		checkFloat("P90RelErr", g.P90RelErr, w.P90RelErr)
		checkFloat("FracUnder10Pct", g.FracUnder10Pct, w.FracUnder10Pct)
		if g.TrueMeanDelay != w.TrueMeanDelay {
			t.Errorf("%s: TrueMeanDelay %dns, fixture %dns", g.Name, g.TrueMeanDelay, w.TrueMeanDelay)
		}
		checkFloat("AchievedUtil", g.AchievedUtil, w.AchievedUtil)
	}

	if len(got.Figures) != len(want.Figures) {
		t.Fatalf("figure count %d != fixture %d", len(got.Figures), len(want.Figures))
	}
	for i, g := range got.Figures {
		w := want.Figures[i]
		if g.ID != w.ID || len(g.Medians) != len(w.Medians) {
			t.Fatalf("figure %d shape mismatch: %s/%d vs fixture %s/%d",
				i, g.ID, len(g.Medians), w.ID, len(w.Medians))
		}
		for j := range g.Medians {
			if g.Labels[j] != w.Labels[j] {
				t.Errorf("%s series %d label %q != fixture %q", g.ID, j, g.Labels[j], w.Labels[j])
			}
			if g.Counts[j] != w.Counts[j] {
				t.Errorf("%s series %q N = %d, fixture %d", g.ID, g.Labels[j], g.Counts[j], w.Counts[j])
			}
			if g.Medians[j].Bits != w.Medians[j].Bits {
				t.Errorf("%s series %q median = %v, fixture %v",
					g.ID, g.Labels[j], g.Medians[j].Value, w.Medians[j].Value)
			}
		}
	}
}
