// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus the repository's ablations. Each benchmark runs the corresponding
// experiment at a small scale and reports the paper's headline metric
// through b.ReportMetric, so `go test -bench=. -benchmem` reproduces the
// evaluation end to end:
//
//	BenchmarkFig4a  — Figure 4(a): mean-estimate accuracy CDFs
//	BenchmarkFig4b  — Figure 4(b): stddev-estimate accuracy CDFs
//	BenchmarkFig4c  — Figure 4(c): bursty vs random cross traffic
//	BenchmarkFig5   — Figure 5: reference-packet interference
//	BenchmarkTablePlacement — §3.1 deployment complexity table
//	BenchmarkScalars        — §4.2 quoted scalars
//	BenchmarkAblation*      — DESIGN.md A1/A2/A3, B1
//
// The figures' textual renderings are printed once per benchmark (use
// cmd/experiments for the full-scale versions).
package rlir_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	rlir "github.com/netmeasure/rlir"
	"github.com/netmeasure/rlir/internal/scenario"
)

// benchScale keeps benchmark iterations affordable; cmd/experiments runs
// the same harnesses at -scale default/full.
func benchScale() rlir.Scale {
	return rlir.SmallScale()
}

// printOnce guards the one-time rendering of each figure.
var printOnce sync.Map

func renderOnce(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Print(text)
	}
}

// metricUnit turns a series label into a ReportMetric-safe unit (no
// whitespace).
func metricUnit(prefix, label string) string {
	return prefix + "/" + strings.ReplaceAll(strings.ReplaceAll(label, " ", ""), ",", "_")
}

func BenchmarkFig4a(b *testing.B) {
	var fig rlir.Figure
	for i := 0; i < b.N; i++ {
		fig = rlir.Fig4a(benchScale())
	}
	renderOnce("4a", fig.Render())
	for _, s := range fig.Series {
		if s.CDF.N() > 0 {
			b.ReportMetric(s.CDF.Median(), metricUnit("medianRelErr", s.Label))
		}
	}
}

func BenchmarkFig4b(b *testing.B) {
	var fig rlir.Figure
	for i := 0; i < b.N; i++ {
		fig = rlir.Fig4b(benchScale())
	}
	renderOnce("4b", fig.Render())
	for _, s := range fig.Series {
		if s.CDF.N() > 0 {
			b.ReportMetric(s.CDF.FracBelow(0.10), metricUnit("under10pct", s.Label))
		}
	}
}

func BenchmarkFig4c(b *testing.B) {
	var fig rlir.Figure
	for i := 0; i < b.N; i++ {
		fig = rlir.Fig4c(benchScale())
	}
	renderOnce("4c", fig.Render())
	for _, s := range fig.Series {
		if s.CDF.N() > 0 {
			b.ReportMetric(s.CDF.Median(), metricUnit("medianRelErr", s.Label))
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	// Interference is a ~1% systematic effect on top of chaotic queue
	// noise; a longer trace with a tight queue gives enough drop events
	// for the signal to dominate (same configuration the shape test uses).
	scale := benchScale()
	scale.Duration = time.Second
	scale.QueueBytes = 32 << 10
	var res rlir.Fig5Result
	for i := 0; i < b.N; i++ {
		res = rlir.Fig5(scale, []float64{0.9, 0.98})
	}
	renderOnce("5", res.Render())
	last := res.Points[len(res.Points)-1]
	b.ReportMetric(last.AdaptiveDiff, "adaptiveLossDiff@98")
	b.ReportMetric(last.StaticDiff, "staticLossDiff@98")
}

func BenchmarkTablePlacement(b *testing.B) {
	var rows []rlir.PlacementRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = rlir.PlacementTable([]int{4, 8, 16, 32, 48})
		if err != nil {
			b.Fatal(err)
		}
	}
	renderOnce("placement", rlir.FormatPlacementTable(rows))
	b.ReportMetric(float64(rows[0].PairOfInterfaces), "instances/k4-pair")
	b.ReportMetric(rows[len(rows)-1].Reduction, "savings/k48")
}

func BenchmarkScalars(b *testing.B) {
	var s rlir.Scalars
	for i := 0; i < b.N; i++ {
		s = rlir.RunScalars(benchScale())
	}
	renderOnce("scalars", s.Render())
	b.ReportMetric(s.BaseUtil, "baseUtil")
	b.ReportMetric(float64(s.AdaptiveGap), "adaptiveGap")
	b.ReportMetric(s.Median93Static, "medianRelErr@93static")
}

func BenchmarkAblationDemux(b *testing.B) {
	cfg := rlir.DefaultFatTreeConfig()
	cfg.Duration = benchScale().Duration / 2
	var results []rlir.FatTreeResult
	for i := 0; i < b.N; i++ {
		results = rlir.AblationDemux(cfg)
	}
	renderOnce("A1", rlir.RenderAblationDemux(results))
	for _, r := range results {
		b.ReportMetric(r.Misattribution, "misattrib/"+r.Config.Strategy.String())
	}
}

func BenchmarkAblationEstimators(b *testing.B) {
	var rows []rlir.EstimatorRow
	for i := 0; i < b.N; i++ {
		rows = rlir.AblationEstimators(benchScale(), 0.8)
	}
	renderOnce("A2", rlir.RenderEstimators(rows))
	for _, r := range rows {
		b.ReportMetric(r.MedianRelErr, "medianRelErr/"+r.Estimator.String())
	}
}

func BenchmarkAblationClocks(b *testing.B) {
	var rows []rlir.ClockRow
	for i := 0; i < b.N; i++ {
		rows = rlir.AblationClocks(benchScale(), 0.8)
	}
	renderOnce("A3", rlir.RenderClocks(rows))
	b.ReportMetric(rows[0].MedianRelErr, "medianRelErr/perfect")
	b.ReportMetric(rows[3].MedianRelErr, "medianRelErr/offset100us")
}

func BenchmarkBaselines(b *testing.B) {
	var r rlir.BaselineResult
	for i := 0; i < b.N; i++ {
		r = rlir.RunBaselines(benchScale(), 0.93)
	}
	renderOnce("B1", r.Render())
	b.ReportMetric(r.RLIRMedian, "medianRelErr/rlir")
	b.ReportMetric(r.MultiflowMedian, "medianRelErr/multiflow")
	b.ReportMetric(r.LDAMeanErr, "aggErr/lda")
}

func BenchmarkLocalization(b *testing.B) {
	cfg := rlir.DefaultLocalizationConfig()
	cfg.Duration = benchScale().Duration / 2
	var res rlir.LocalizationResult
	for i := 0; i < b.N; i++ {
		res = rlir.RunLocalization(cfg)
	}
	renderOnce("L1", res.Render())
	ok := 0.0
	if res.Localized() {
		ok = 1
	}
	b.ReportMetric(ok, "localized")
}

// benchmarkRunnerSweep measures the multi-seed runner: an 8-seed tandem
// sweep (per-run telemetry merged through the collector plane) at the given
// worker count. BenchmarkRunnerSweep1 vs BenchmarkRunnerSweep4 gives the
// parallel-scaling ratio scripts/bench.sh records in BENCH_N.json; on a
// multi-core machine 4 workers should approach 4x, and the ratio degrades
// to ~1x only when the hardware offers a single core.
func benchmarkRunnerSweep(b *testing.B, workers int) {
	cfg := rlir.TandemConfig{
		Scale:      benchScale(),
		Scheme:     rlir.DefaultStatic(),
		Model:      rlir.CrossUniform,
		TargetUtil: 0.93,
	}
	var r rlir.MultiTandemResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = rlir.MultiTandem(cfg, rlir.MultiOpts{Seeds: 8, Workers: workers})
	}
	b.ReportMetric(float64(len(r.Merged)), "mergedFlows")
	b.ReportMetric(r.MedianRelErr.Mean, "medianRelErr")
	b.ReportMetric(r.MedianRelErr.CI95, "medianRelErrCI95")
}

func BenchmarkRunnerSweep1(b *testing.B) { benchmarkRunnerSweep(b, 1) }
func BenchmarkRunnerSweep4(b *testing.B) { benchmarkRunnerSweep(b, 4) }

// benchmarkScenarioEngine pushes the default fat-tree scenario (converging
// workload, K=4) end to end through the selected event engine. Sequential vs
// Parallel2/Parallel4 gives the conservative parallel engine's speedup ratio
// that scripts/bench.sh records in BENCH_N.json's parallel_sim section. The
// engines produce bit-identical Results (internal/scenario
// TestParallelBitIdenticalRegistry), so the ratio measures pure engine
// scaling; on a single-core box it degrades to ~1x or below (window-barrier
// overhead with no parallelism to pay for it).
func benchmarkScenarioEngine(b *testing.B, engine string, partitions int) {
	spec := scenario.DefaultSpec()
	spec.Duration = 60 * time.Millisecond
	spec.Engine = engine
	spec.Partitions = partitions
	if err := spec.Validate(); err != nil {
		b.Fatal(err)
	}
	var injected uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := scenario.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		injected += uint64(r.Injected)
	}
	b.ReportMetric(float64(injected)/b.Elapsed().Seconds(), "pkts/s")
}

func BenchmarkScenarioSequential(b *testing.B) {
	benchmarkScenarioEngine(b, scenario.EngineSequential, 0)
}
func BenchmarkScenarioParallel2(b *testing.B) { benchmarkScenarioEngine(b, scenario.EngineParallel, 2) }
func BenchmarkScenarioParallel4(b *testing.B) { benchmarkScenarioEngine(b, scenario.EngineParallel, 4) }

// BenchmarkSimulatorThroughput measures raw simulator speed: packets pushed
// through the instrumented tandem per second of wall clock — the
// engineering metric that bounds how large a trace the harness can replay.
func BenchmarkSimulatorThroughput(b *testing.B) {
	scale := benchScale()
	var packets uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rlir.RunTandem(rlir.TandemConfig{
			Scale:      scale,
			Scheme:     rlir.DefaultStatic(),
			Model:      rlir.CrossUniform,
			TargetUtil: 0.93,
		})
		packets += r.RegularOffered + r.CrossAdmitted
	}
	b.ReportMetric(float64(packets)/b.Elapsed().Seconds(), "pkts/s")
}
