module github.com/netmeasure/rlir

go 1.24
