package rlir

import (
	"net"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/core"
	"github.com/netmeasure/rlir/internal/experiments"
	"github.com/netmeasure/rlir/internal/fleet"
	"github.com/netmeasure/rlir/internal/measure"
	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/runner"
	"github.com/netmeasure/rlir/internal/scenario"
	"github.com/netmeasure/rlir/internal/service"
	"github.com/netmeasure/rlir/internal/simclock"
	"github.com/netmeasure/rlir/internal/stats"
	"github.com/netmeasure/rlir/internal/swp"
	"github.com/netmeasure/rlir/internal/topo"
	"github.com/netmeasure/rlir/internal/trace"
)

// ---- Packet and flow identity ----

// Addr is an IPv4 address in host byte order.
type Addr = packet.Addr

// Prefix is an IPv4 CIDR prefix.
type Prefix = packet.Prefix

// FlowKey is the comparable 5-tuple identity used for all per-flow state.
type FlowKey = packet.FlowKey

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) { return packet.ParseAddr(s) }

// MustParseAddr is ParseAddr that panics on error.
func MustParseAddr(s string) Addr { return packet.MustParseAddr(s) }

// ParsePrefix parses CIDR notation.
func ParsePrefix(s string) (Prefix, error) { return packet.ParsePrefix(s) }

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix { return packet.MustParsePrefix(s) }

// ---- Injection schemes (paper §3.2) ----

// InjectionScheme maps the sender's utilization estimate to a 1-and-n gap.
type InjectionScheme = core.InjectionScheme

// Static is the fixed worst-case 1-and-N scheme.
type Static = core.Static

// Adaptive is RLI's utilization-driven scheme.
type Adaptive = core.Adaptive

// DefaultStatic returns the paper's 1-and-100 configuration.
func DefaultStatic() Static { return core.DefaultStatic() }

// DefaultAdaptive returns the paper's 1-and-10..1-and-300 configuration.
func DefaultAdaptive() Adaptive { return core.DefaultAdaptive() }

// ---- Results ----

// FlowResult is one flow's estimated-vs-true statistics.
type FlowResult = core.FlowResult

// Summary aggregates a result set (median relative error and friends).
type Summary = core.Summary

// Summarize computes a Summary over per-flow results.
func Summarize(results []FlowResult) Summary { return core.Summarize(results) }

// MeanErrCDF builds the CDF of per-flow mean relative errors (Fig 4a form).
func MeanErrCDF(results []FlowResult) *CDF { return core.MeanErrCDF(results) }

// StdErrCDF builds the CDF of per-flow stddev relative errors (Fig 4b form).
func StdErrCDF(results []FlowResult) *CDF { return core.StdErrCDF(results) }

// CDF is an exact empirical distribution over a finite sample.
type CDF = stats.CDF

// Sketch is the bounded-memory log-bucketed quantile sketch carried by
// every flow aggregate: ~1.6% worst-case relative error per quantile,
// at most a few KB per flow, and exact (bit-identical, order-independent)
// merges across instances.
type Sketch = stats.Sketch

// SketchState is a Sketch's portable wire form, carried in query-API
// snapshots; round-trips exactly.
type SketchState = stats.SketchState

// SketchFromState rebuilds a Sketch from its portable state.
func SketchFromState(s SketchState) Sketch { return stats.SketchFromState(s) }

// ---- Clock models ----

// ClockSource converts true simulation time to an instance's local reading.
type ClockSource = simclock.Source

// PerfectClock is exact synchronization (the paper's assumption).
type PerfectClock = simclock.Perfect

// FixedOffsetClock has a constant synchronization error.
type FixedOffsetClock = simclock.FixedOffset

// DriftingClock is a free-running oscillator.
type DriftingClock = simclock.Drifting

// PTPClock is an IEEE 1588-disciplined clock.
type PTPClock = simclock.PTP

// ---- Workload generation ----

// TraceConfig parameterizes the synthetic workload generator that stands in
// for the paper's CAIDA traces.
type TraceConfig = trace.Config

// TraceRec is one generated packet release.
type TraceRec = trace.Rec

// DefaultTraceConfig returns the ~22%-of-1Gbps regular workload.
func DefaultTraceConfig() TraceConfig { return trace.DefaultConfig() }

// NewTraceGenerator streams a deterministic synthetic trace.
func NewTraceGenerator(cfg TraceConfig) *trace.Generator { return trace.NewGenerator(cfg) }

// ---- The tandem experiment (paper Figure 3) ----

// Scale sets experiment magnitude; see SmallScale, DefaultScale, FullScale.
type Scale = experiments.Scale

// SmallScale is CI-sized (sub-second traces).
func SmallScale() Scale { return experiments.SmallScale() }

// DefaultScale runs in seconds on a laptop.
func DefaultScale() Scale { return experiments.DefaultScale() }

// FullScale approximates the paper's 60 s of OC-192.
func FullScale() Scale { return experiments.FullScale() }

// CrossModel selects the cross-traffic model.
type CrossModel = experiments.CrossModel

// Cross-traffic models of §4.1.
const (
	CrossUniform = experiments.CrossUniform
	CrossBursty  = experiments.CrossBursty
	CrossNone    = experiments.CrossNone
)

// TandemConfig is one two-switch (Figure 3) run.
type TandemConfig = experiments.TandemConfig

// TandemResult is its outcome.
type TandemResult = experiments.TandemResult

// RunTandem executes one Figure-3 simulation: regular traffic through an
// instrumented switch, cross traffic merging at the downstream bottleneck,
// per-flow latency estimated across both hops.
func RunTandem(cfg TandemConfig) TandemResult { return experiments.RunTandem(cfg) }

// Estimator variants (ablation A2); Linear is the paper's.
const (
	Linear   = core.Linear
	LeftRef  = core.LeftRef
	RightRef = core.RightRef
	Nearest  = core.Nearest
)

// ---- Fat-tree RLIR deployment (paper Figure 1 / §3.1) ----

// FatTreeConfig is one fat-tree RLIR deployment run.
type FatTreeConfig = experiments.FatTreeConfig

// FatTreeResult is its outcome.
type FatTreeResult = experiments.FatTreeResult

// DemuxStrategy names the downstream demultiplexing options.
type DemuxStrategy = experiments.DemuxStrategy

// Downstream demultiplexing strategies of §3.1.
const (
	DemuxNone        = experiments.DemuxNone
	DemuxMark        = experiments.DemuxMark
	DemuxReverseECMP = experiments.DemuxReverseECMP
	DemuxOracle      = experiments.DemuxOracle
)

// DefaultFatTreeConfig returns a k=4 deployment at moderate load.
func DefaultFatTreeConfig() FatTreeConfig { return experiments.DefaultFatTreeConfig() }

// RunFatTree executes one fat-tree RLIR deployment: upstream senders at
// source ToR uplinks, receivers at cores (prefix demux), downstream senders
// at cores and a strategy-demultiplexed receiver at the destination ToR.
func RunFatTree(cfg FatTreeConfig) FatTreeResult { return experiments.RunFatTree(cfg) }

// ---- Placement planning (paper §3.1) ----

// Placement computes deployment-complexity figures for a k-ary fat-tree.
type Placement = topo.Placement

// PlacementRow is one line of the placement table.
type PlacementRow = topo.Row

// PlacementTable computes the §3.1 table for the given arities.
func PlacementTable(ks []int) ([]PlacementRow, error) { return topo.Table(ks) }

// FormatPlacementTable renders the table.
func FormatPlacementTable(rows []PlacementRow) string { return topo.FormatTable(rows) }

// ---- Figures and ablations (paper §4 + DESIGN.md) ----

// Figure is a reproduced figure: labelled CDF series plus notes.
type Figure = experiments.Figure

// Fig4a reproduces Figure 4(a): mean-estimate accuracy CDFs.
func Fig4a(scale Scale) Figure { return experiments.Fig4a(scale) }

// Fig4b reproduces Figure 4(b): stddev-estimate accuracy CDFs.
func Fig4b(scale Scale) Figure { return experiments.Fig4b(scale) }

// Fig4c reproduces Figure 4(c): bursty vs random cross traffic.
func Fig4c(scale Scale) Figure { return experiments.Fig4c(scale) }

// Fig5Result is the reproduced Figure 5.
type Fig5Result = experiments.Fig5Result

// Fig5 reproduces Figure 5: reference-packet interference with regular
// traffic loss across a utilization sweep (nil utils uses the paper's
// 0.82..0.98 range).
func Fig5(scale Scale, utils []float64) Fig5Result { return experiments.Fig5(scale, utils) }

// Scalars reproduces the §4.2 quoted numbers.
type Scalars = experiments.Scalars

// RunScalars measures them.
func RunScalars(scale Scale) Scalars { return experiments.RunScalars(scale) }

// AblationDemux runs every downstream demux strategy on an identical
// fat-tree workload (DESIGN.md A1).
func AblationDemux(cfg FatTreeConfig) []FatTreeResult { return experiments.AblationDemux(cfg) }

// RenderAblationDemux formats A1.
func RenderAblationDemux(rs []FatTreeResult) string { return experiments.RenderAblationDemux(rs) }

// EstimatorRow is one line of ablation A2.
type EstimatorRow = experiments.EstimatorRow

// AblationEstimators compares interpolation variants (A2).
func AblationEstimators(scale Scale, util float64) []EstimatorRow {
	return experiments.AblationEstimators(scale, util)
}

// RenderEstimators formats A2.
func RenderEstimators(rows []EstimatorRow) string { return experiments.RenderEstimators(rows) }

// ClockRow is one line of ablation A3.
type ClockRow = experiments.ClockRow

// AblationClocks sweeps clock imperfections (A3).
func AblationClocks(scale Scale, util float64) []ClockRow {
	return experiments.AblationClocks(scale, util)
}

// RenderClocks formats A3.
func RenderClocks(rows []ClockRow) string { return experiments.RenderClocks(rows) }

// BaselineResult is B1: RLIR vs LDA vs Multiflow.
type BaselineResult = experiments.BaselineResult

// RunBaselines co-locates RLIR, LDA and Multiflow on one run (B1).
func RunBaselines(scale Scale, util float64) BaselineResult {
	return experiments.RunBaselines(scale, util)
}

// ---- Localization (DESIGN.md L1, the paper's Figure 1 narrative) ----

// LocalizationConfig is the T1->T7 per-segment localization scenario.
type LocalizationConfig = experiments.LocalizationConfig

// LocalizationResult reports calibration, fault run and verdict.
type LocalizationResult = experiments.LocalizationResult

// AnomalySite places the injected fault.
type AnomalySite = experiments.AnomalySite

// Fault sites for RunLocalization.
const (
	AnomalyNone   = experiments.AnomalyNone
	AnomalySrcAgg = experiments.AnomalySrcAgg
	AnomalyDstAgg = experiments.AnomalyDstAgg
)

// DefaultLocalizationConfig returns the k=4 scenario with a fault at the
// destination pod's aggregation layer.
func DefaultLocalizationConfig() LocalizationConfig {
	return experiments.DefaultLocalizationConfig()
}

// RunLocalization measures per-core segments of one ToR-to-ToR path twice
// (healthy, then with an injected fault) and reports which segments the
// localizer flags.
func RunLocalization(cfg LocalizationConfig) LocalizationResult {
	return experiments.RunLocalization(cfg)
}

// ---- Multi-seed sweeps (the concurrent measurement plane) ----
//
// Every figure and ablation above is a single-seed point estimate. The
// Multi* variants fan N independent simulations (seeds derived via
// SplitMix64) across workers and report each headline metric as
// mean ± 95% CI, merging per-run flow telemetry through the
// internal/collector plane.

// MultiOpts sizes a multi-seed sweep (Seeds default 8, Workers default
// GOMAXPROCS).
type MultiOpts = experiments.MultiOpts

// MetricCI is one metric's across-seed mean ± 95% CI.
type MetricCI = experiments.MetricCI

// DeriveSeeds returns n independent, reproducible seeds derived from base
// with SplitMix64 — use it instead of base+i arithmetic whenever seeding
// separate runs.
func DeriveSeeds(base int64, n int) []int64 { return trace.DeriveSeeds(base, n) }

// MultiTandemResult aggregates one tandem configuration across seeds.
type MultiTandemResult = experiments.MultiTandemResult

// MultiTandem runs one tandem configuration at N derived seeds in parallel.
func MultiTandem(cfg TandemConfig, opts MultiOpts) MultiTandemResult {
	return experiments.MultiTandem(cfg, opts)
}

// MultiFigure is a figure re-recorded as across-seed statistics.
type MultiFigure = experiments.MultiFigure

// Fig4aMulti re-records Figure 4(a) as mean ± CI across seeds.
func Fig4aMulti(scale Scale, opts MultiOpts) MultiFigure { return experiments.Fig4aMulti(scale, opts) }

// Fig4bMulti re-records Figure 4(b) as mean ± CI across seeds.
func Fig4bMulti(scale Scale, opts MultiOpts) MultiFigure { return experiments.Fig4bMulti(scale, opts) }

// Fig4cMulti re-records Figure 4(c) as mean ± CI across seeds.
func Fig4cMulti(scale Scale, opts MultiOpts) MultiFigure { return experiments.Fig4cMulti(scale, opts) }

// ScalarsCI re-records the §4.2 scalars across seeds.
type ScalarsCI = experiments.ScalarsCI

// MultiScalars measures the §4.2 scalar table at every derived seed.
func MultiScalars(scale Scale, opts MultiOpts) ScalarsCI {
	return experiments.MultiScalars(scale, opts)
}

// EstimatorCI is one line of the multi-seed A2 table.
type EstimatorCI = experiments.EstimatorCI

// MultiEstimators re-records ablation A2 across seeds.
func MultiEstimators(scale Scale, util float64, opts MultiOpts) []EstimatorCI {
	return experiments.MultiEstimators(scale, util, opts)
}

// RenderEstimatorsCI formats multi-seed A2.
func RenderEstimatorsCI(rows []EstimatorCI, seeds int) string {
	return experiments.RenderEstimatorsCI(rows, seeds)
}

// ClockCI is one line of the multi-seed A3 table.
type ClockCI = experiments.ClockCI

// MultiClocks re-records ablation A3 across seeds.
func MultiClocks(scale Scale, util float64, opts MultiOpts) []ClockCI {
	return experiments.MultiClocks(scale, util, opts)
}

// RenderClocksCI formats multi-seed A3.
func RenderClocksCI(rows []ClockCI, seeds int) string { return experiments.RenderClocksCI(rows, seeds) }

// BaselineCI re-records B1 across seeds.
type BaselineCI = experiments.BaselineCI

// MultiBaselines re-records ablation B1 across seeds.
func MultiBaselines(scale Scale, util float64, opts MultiOpts) BaselineCI {
	return experiments.MultiBaselines(scale, util, opts)
}

// DemuxCI is one line of the multi-seed A1 table.
type DemuxCI = experiments.DemuxCI

// MultiDemux re-records ablation A1 across seeds.
func MultiDemux(cfg FatTreeConfig, opts MultiOpts) []DemuxCI {
	return experiments.MultiDemux(cfg, opts)
}

// RenderDemuxCI formats multi-seed A1.
func RenderDemuxCI(rows []DemuxCI, seeds int) string { return experiments.RenderDemuxCI(rows, seeds) }

// LocalizationCI re-records L1 across seeds.
type LocalizationCI = experiments.LocalizationCI

// MultiLocalization re-records the L1 scenario across seeds.
func MultiLocalization(cfg LocalizationConfig, opts MultiOpts) LocalizationCI {
	return experiments.MultiLocalization(cfg, opts)
}

// ---- Unified estimator layer (internal/measure) ----
//
// Every latency-measurement mechanism — RLI interpolation, the LDA
// aggregate sketch, NetFlow-style packet sampling, the Multiflow
// two-timestamp estimator — implements one pluggable API: a zero-alloc
// per-packet Tap plus a Finalize returning a Report with per-flow and
// per-router estimates and overhead accounting. A scenario spec declares
// its estimator set and the engine attaches all of them to the same single
// simulation pass through a shared tap dispatch, scoring every mechanism
// against shared ground truth in one comparison table.

// MeasureEstimator is one measurement mechanism attached to a segment.
type MeasureEstimator = measure.Estimator

// MeasureConfig parameterizes estimator construction.
type MeasureConfig = measure.Config

// MeasureReport is one estimator's deliverable for a finished run.
type MeasureReport = measure.Report

// MeasureOverhead accounts a mechanism's cost: injected wire bytes vs
// sampled collection bytes.
type MeasureOverhead = measure.Overhead

// MeasureTruth is the harness-owned ground-truth table estimators are
// scored against.
type MeasureTruth = measure.Truth

// MeasureDispatch is the shared per-packet tap fan-out.
type MeasureDispatch = measure.Dispatch

// EstimatorComparison is one row of the estimator comparison table.
type EstimatorComparison = measure.Comparison

// EstimatorNames returns the registered estimator names, "rli" first.
func EstimatorNames() []string { return measure.Names() }

// EstimatorRegistered reports whether name is a registered estimator.
func EstimatorRegistered(name string) bool { return measure.Registered(name) }

// ParseEstimatorList splits and validates a comma-separated estimator
// list (the CLI -estimators flag format); unknown names fail listing the
// registered ones.
func ParseEstimatorList(s string) ([]string, error) { return measure.ParseList(s) }

// NewEstimator builds a registered estimator by name.
func NewEstimator(name string, cfg MeasureConfig) (MeasureEstimator, error) {
	return measure.New(name, cfg)
}

// NewMeasureTruth returns an empty ground-truth table.
func NewMeasureTruth() *MeasureTruth { return measure.NewTruth() }

// NewMeasureDispatch builds the shared tap for a measured segment.
func NewMeasureDispatch(truth *MeasureTruth, ests ...MeasureEstimator) *MeasureDispatch {
	return measure.NewDispatch(truth, ests...)
}

// CompareEstimators scores reports against truth, one comparison row per
// report.
func CompareEstimators(truth *MeasureTruth, reports ...MeasureReport) []EstimatorComparison {
	return measure.Compare(truth, reports...)
}

// ReportFromFlowResults builds an RLI-shaped report from per-flow receiver
// results — for harnesses that own their receiver wiring (RunTandem).
func ReportFromFlowResults(name, router string, results []FlowResult, overhead MeasureOverhead) MeasureReport {
	return measure.ReportFromFlowResults(name, router, results, overhead)
}

// DefaultRefSize is the reference packet frame size in bytes (Ethernet
// minimum — the per-probe unit of RLI's injected-bytes overhead).
const DefaultRefSize = core.DefaultRefSize

// RenderEstimatorComparison formats the comparison table.
func RenderEstimatorComparison(rows []EstimatorComparison) string {
	return measure.RenderComparisons(rows)
}

// ---- Scenario engine (declarative network-wide workloads) ----
//
// A Scenario is a versioned declarative spec — topology, workload mix,
// scheduled fault injections, RLIR deployment — composed over the whole
// substrate by one engine, plus an invariant check that makes the registry
// a correctness harness. cmd/scenario is the CLI front-end; the CI
// scenario-matrix job runs every registered scenario.

// Scenario is one registered named scenario.
type Scenario = scenario.Scenario

// ScenarioSpec is the declarative scenario description.
type ScenarioSpec = scenario.Spec

// ScenarioResult is one scenario run's outcome.
type ScenarioResult = scenario.Result

// ScenarioTelemetrySpec models telemetry-export loss applied to a finished
// run's estimator reports (ScenarioSpec.Telemetry): export frames of
// FrameRecords per-flow records are each dropped with probability LossRate
// before scoring.
type ScenarioTelemetrySpec = scenario.TelemetrySpec

// ScenarioTelemetryReport is a run's estimator accuracy under telemetry
// loss: one lossless-vs-degraded row per mechanism (ScenarioResult.Telemetry).
type ScenarioTelemetryReport = scenario.TelemetryReport

// ScenarioTelemetryRow is one estimator's lossless-vs-degraded comparison
// under telemetry loss.
type ScenarioTelemetryRow = scenario.TelemetryRow

// ScenarioMultiOpts sizes a multi-seed scenario sweep.
type ScenarioMultiOpts = scenario.MultiOpts

// ScenarioMultiResult aggregates one scenario across seeds.
type ScenarioMultiResult = scenario.MultiResult

// Scenarios returns every registered scenario in name order.
func Scenarios() []Scenario { return scenario.All() }

// ScenarioNames returns the registered scenario names, sorted.
func ScenarioNames() []string { return scenario.Names() }

// ScenarioByName returns one registered scenario.
func ScenarioByName(name string) (Scenario, bool) { return scenario.Get(name) }

// ScenarioEngineSequential and ScenarioEngineParallel are the valid
// ScenarioSpec.Engine values: the single-heap event engine versus the
// conservative parallel engine (fat-tree only; bit-identical results).
const (
	ScenarioEngineSequential = scenario.EngineSequential
	ScenarioEngineParallel   = scenario.EngineParallel
)

// DefaultScenarioSpec returns a valid fat-tree spec to build variations
// from.
func DefaultScenarioSpec() ScenarioSpec { return scenario.DefaultSpec() }

// DecodeScenarioSpec parses and validates a JSON scenario spec.
func DecodeScenarioSpec(data []byte) (ScenarioSpec, error) { return scenario.DecodeJSON(data) }

// RunScenario executes one scenario spec at its spec seed.
func RunScenario(spec ScenarioSpec) (*ScenarioResult, error) { return scenario.Run(spec) }

// RunScenarioSeed executes one scenario spec at an explicit seed.
func RunScenarioSeed(spec ScenarioSpec, seed int64) (*ScenarioResult, error) {
	return scenario.RunSeed(spec, seed)
}

// RunScenarioMulti sweeps one scenario spec across derived seeds in
// parallel.
func RunScenarioMulti(spec ScenarioSpec, opts ScenarioMultiOpts) (*ScenarioMultiResult, error) {
	return scenario.RunMulti(spec, opts)
}

// ---- Adversarial & trace-driven scenarios ----
//
// Three spec extensions stress measurement trustworthiness rather than
// accuracy: a compromised switch that delays only the packets it predicts
// won't be measured (countered by secret-key hash sampling), replay of a
// recorded per-link delay/loss time series, and RepFlow-style flow
// replication across distinct ECMP paths. The registered scenarios
// adversarial-delay, trace-replay and repflow exercise them under CI.

// ScenarioAdversarySpec puts a delay-gaming compromised switch into a run
// (ScenarioSpec.Adversary): it adds Extra hidden delay to every regular
// packet in [Start, End) except reference packets and packets a 1-in-
// PredictRate periodic sampler would measure. Estimators keyed on a secret
// the switch cannot see still expose the delay; predictable ones are blinded.
type ScenarioAdversarySpec = scenario.AdversarySpec

// ScenarioDetectionThreshold is the exposure fraction at which an estimator
// counts as having detected hidden adversarial delay.
const ScenarioDetectionThreshold = scenario.DetectionThreshold

// ScenarioDetectionReport scores every estimator on detecting the hidden
// delay — a paired clean run at the same seed provides the baseline
// (ScenarioResult.Detection).
type ScenarioDetectionReport = scenario.DetectionReport

// ScenarioDetectionRow is one estimator's clean-vs-adversarial aggregate
// shift and detection verdict.
type ScenarioDetectionRow = scenario.DetectionRow

// ScenarioDetectionCI is one estimator's across-seed detection fold: mean
// exposure and the fraction of seeds on which it detected the adversary.
type ScenarioDetectionCI = scenario.DetectionCI

// ScenarioLinkTraceSpec replays a recorded per-link delay/loss time series
// on one core down-link (ScenarioSpec.LinkTrace).
type ScenarioLinkTraceSpec = scenario.LinkTraceSpec

// ScenarioLinkTraceSampleSpec is one inline link-trace row in spec form.
type ScenarioLinkTraceSampleSpec = scenario.LinkTraceSampleSpec

// ScenarioLinkTraceReport summarizes a replayed link trace's effect on the
// run (ScenarioResult.LinkTrace).
type ScenarioLinkTraceReport = scenario.LinkTraceReport

// ScenarioRepFlowReport is the flow-replication outcome: per-pair primary
// vs replica vs first-arrival delay (ScenarioResult.RepFlow).
type ScenarioRepFlowReport = scenario.RepFlowReport

// LinkTrace is a parsed per-link delay/loss time series: a step function
// over offsets from trace start, replayed deterministically by the
// simulator. The zero value is the identity emulator.
type LinkTrace = trace.LinkTrace

// LinkSample is one link-trace row: extra delay and drop probability in
// effect from offset At until the next row.
type LinkSample = trace.LinkSample

// LinkTraceConfig parameterizes synthetic link-trace generation
// (cmd/tracegen -emit link).
type LinkTraceConfig = trace.LinkTraceConfig

// LinkTraceVersion is the link-trace file format version ParseLinkTrace
// accepts.
const LinkTraceVersion = trace.LinkTraceVersion

// ParseLinkTrace parses a link trace in either tracegen-producible encoding
// (JSON sniffed by its leading '{', CSV otherwise). Malformed input is an
// error naming the offending row — never a panic.
func ParseLinkTrace(data []byte) (*LinkTrace, error) { return trace.ParseLinkTrace(data) }

// NewLinkTrace builds a link trace from in-memory rows with the same
// validation as the file parser.
func NewLinkTrace(samples []LinkSample) (*LinkTrace, error) { return trace.NewLinkTrace(samples) }

// GenLinkTrace synthesizes a deterministic link trace from the config — the
// stand-in for a recorded link time series.
func GenLinkTrace(c LinkTraceConfig) (*LinkTrace, error) { return trace.GenLinkTrace(c) }

// ShouldSample is the secret-key sampling decision: whether the holder of
// key measures packet id at a 1-in-rate target. It is uniform over the ID
// space and unpredictable without the key — the property that defeats the
// delay-gaming switch (the hash-sample estimator is its registry form).
func ShouldSample(key, id, rate uint64) bool { return measure.ShouldSample(key, id, rate) }

// PredictPeriodic is the adversary's oracle against the periodic baseline:
// it reproduces the 1-in-rate periodic sampler's decision from the packet
// header alone, which is exactly why that baseline is gameable.
func PredictPeriodic(id uint64, rate int) bool { return measure.PredictPeriodic(id, rate) }

// ---- Measurement service (internal/service, cmd/rlird) ----
//
// The long-lived streaming form of the collection tier: routers (or
// cmd/loadgen replaying a scenario trace) stream collector wire frames over
// TCP/Unix sockets into a sharded collector, and operators query per-flow
// aggregates, per-router aggregates, the streaming estimator comparison,
// health and Prometheus-style metrics over HTTP. Streamed aggregates are
// bit-identical to the batch engine's for the same sample stream.

// ServiceConfig addresses and sizes the measurement service.
type ServiceConfig = service.Config

// MeasurementService is a running rlird instance.
type MeasurementService = service.Server

// ServiceClient is an exporter-side connection streaming wire frames into a
// service.
type ServiceClient = service.Client

// FlowTableRow is one /flows row of the service's HTTP API.
type FlowTableRow = service.FlowJSON

// RollupTable is the service's /rollup response: the flow-class and
// router aggregation tiers below the live flow table, plus the eviction
// and expiry accounting that filled them (memory-bounded mode).
type RollupTable = service.RollupJSON

// NewMeasurementService starts a service (listeners, collector shards,
// query API). Stop it with Shutdown.
func NewMeasurementService(cfg ServiceConfig) (*MeasurementService, error) { return service.New(cfg) }

// LoadServiceConfig reads a JSON service config file (cmd/rlird -config).
func LoadServiceConfig(path string) (ServiceConfig, error) { return service.LoadConfig(path) }

// DialService connects a client to a service ingest listener ("tcp" or
// "unix").
func DialService(network, addr string, batch int) (*ServiceClient, error) {
	return service.Dial(network, addr, batch)
}

// NewServiceClient wraps an established connection as a service client.
func NewServiceClient(conn net.Conn, batch int) *ServiceClient {
	return service.NewClient(conn, batch)
}

// ServiceDialOptions configures DialServiceWith: bounded connect attempts
// with exponential backoff and jitter, and optionally the reliable
// (sliding-window) framing with a seeded loss model for soaks.
type ServiceDialOptions = service.DialOptions

// TransportConfig tunes a reliable export connection: window size, segment
// payload bound, retransmit timeout and backoff, retry budget.
type TransportConfig = swp.Config

// TransportImpairment is a seeded loss model (drop/duplicate/reorder/delay
// probabilities) applied to a reliable connection's outbound segments —
// cmd/loadgen's -loss soak.
type TransportImpairment = swp.ImpairConfig

// TransportSenderStats counts a reliable sender's first transmissions,
// retransmits, timeouts and acks.
type TransportSenderStats = swp.SenderStats

// DialServiceWith connects a client to a service ingest listener per o,
// retrying failed dials with exponential backoff before giving up.
func DialServiceWith(o ServiceDialOptions) (*ServiceClient, error) {
	return service.DialWith(o)
}

// CollectorSample is one exported per-packet latency estimate (the wire
// unit RLI receivers stream to the collection tier).
type CollectorSample = collector.Sample

// NetFlowRecord is one exported flow record.
type NetFlowRecord = netflow.Record

// FlowAggregate is one flow's merged collector state.
type FlowAggregate = collector.FlowAgg

// ScenarioTrace is a captured scenario export stream: the replay unit of
// cmd/loadgen and the service equivalence tests.
type ScenarioTrace = scenario.Trace

// ExportScenarioTrace runs a scenario once and captures the samples and
// NetFlow records its instruments exported, alongside the normal result.
func ExportScenarioTrace(spec ScenarioSpec, seed int64) (*ScenarioTrace, error) {
	return scenario.Export(spec, seed)
}

// CompareStreamedFlows scores a collector flow table against the ground
// truth it carries in-band — the streaming counterpart of CompareEstimators.
func CompareStreamedFlows(name string, aggs []FlowAggregate) EstimatorComparison {
	return measure.CompareFlowAggs(name, aggs)
}

// Pacer is a wall-clock token bucket for replaying traffic at a target
// rate.
type Pacer = runner.Pacer

// NewPacer creates a pacer admitting rate units/second (rate <= 0 returns
// the nil, unlimited pacer).
func NewPacer(rate float64) *Pacer { return runner.NewPacer(rate) }

// ---- Distributed collection tier (internal/fleet, cmd/rlirfleet) ----
//
// A fleet is N rlird instances behind one scatter-gather query front-end.
// Exporters shard their stream with FleetRouter — every flow's traffic
// lands wholly on one instance (consistent flow-key hashing), so merging
// the instances' raw snapshots reproduces the single-node flow table
// bit-for-bit. FleetFrontend serves the same HTTP query API as a single
// rlird, answered for the whole fleet, degrading gracefully when
// instances drop out.

// FleetRouter shards an export stream across N rlird endpoints by flow
// key, with per-endpoint connection pools, reconnect-with-backoff and
// delivery counters.
type FleetRouter = fleet.Router

// FleetRouterConfig configures a FleetRouter: endpoints, connections per
// endpoint, batch/queue bounds and the redial budget.
type FleetRouterConfig = fleet.Config

// FleetEndpointStats is one endpoint's delivery counters.
type FleetEndpointStats = fleet.EndpointStats

// FleetSink is one wire connection the router shards onto (ServiceClient
// implements it).
type FleetSink = fleet.Sink

// FleetDialFunc opens the router's connections; wrap DialServiceWith to
// choose raw or reliable framing.
type FleetDialFunc = fleet.DialFunc

// FleetFrontend scatter-gathers a fleet's query API with exact merging.
type FleetFrontend = fleet.Frontend

// FleetFrontendConfig configures a FleetFrontend: instance base URLs and
// the fan-out timeout.
type FleetFrontendConfig = fleet.FrontendConfig

// FleetHealth is the front-end's aggregate /healthz response.
type FleetHealth = fleet.HealthJSON

// FleetInstanceHealth is one instance's row in the fleet health report.
type FleetInstanceHealth = fleet.InstanceHealth

// ScenarioFleetSpec partitions a scenario's collected stream across an
// in-process fleet (ScenarioSpec.Fleet), optionally killing one instance.
type ScenarioFleetSpec = scenario.FleetSpec

// ScenarioFleetReport is a run's distributed-collection outcome: the
// exact-merge proof plus per-estimator accuracy under instance loss
// (ScenarioResult.FleetReport).
type ScenarioFleetReport = scenario.FleetReport

// ScenarioFleetRow is one estimator scored before and after an instance
// loss.
type ScenarioFleetRow = scenario.FleetEstimatorRow

// FleetPartition returns which of n instances owns a flow — the consistent
// assignment FleetRouter, the scenario fleet layer and cmd/loadgen share.
func FleetPartition(key FlowKey, n int) int { return fleet.Partition(key, n) }

// FleetSinkIndex maps a flow onto the (endpoint, connection) grid; with one
// endpoint it reduces to the per-connection split loadgen historically used.
func FleetSinkIndex(key FlowKey, endpoints, connsPerEndpoint int) (endpoint, conn int) {
	return fleet.SinkIndex(key, endpoints, connsPerEndpoint)
}

// NewFleetRouter validates the config, dials the whole connection grid
// eagerly and starts the per-connection senders.
func NewFleetRouter(cfg FleetRouterConfig) (*FleetRouter, error) { return fleet.NewRouter(cfg) }

// NewFleetFrontend validates the instance URLs and builds the
// scatter-gather front-end (serve its Handler over HTTP).
func NewFleetFrontend(cfg FleetFrontendConfig) (*FleetFrontend, error) {
	return fleet.NewFrontend(cfg)
}

// ---- Convenience ----

// Microseconds converts a duration to float64 microseconds, the unit the
// paper quotes latencies in.
func Microseconds(d time.Duration) float64 {
	return float64(d) / float64(time.Microsecond)
}
