package rlir_test

import (
	"strings"
	"testing"
	"time"

	rlir "github.com/netmeasure/rlir"
)

// TestPublicAPITandem exercises the facade end to end the way README's
// quickstart does.
func TestPublicAPITandem(t *testing.T) {
	scale := rlir.SmallScale()
	res := rlir.RunTandem(rlir.TandemConfig{
		Scale:      scale,
		Scheme:     rlir.DefaultStatic(),
		Model:      rlir.CrossUniform,
		TargetUtil: 0.93,
	})
	if res.Summary.Flows == 0 {
		t.Fatal("no flows measured through public API")
	}
	if got := rlir.Summarize(res.Results); got.Flows != res.Summary.Flows {
		t.Fatal("Summarize disagrees with embedded summary")
	}
	cdf := rlir.MeanErrCDF(res.Results)
	if cdf.N() != res.Summary.Flows {
		t.Fatal("CDF size mismatch")
	}
	if !strings.Contains(res.Label(), "static") {
		t.Fatalf("label = %q", res.Label())
	}
}

func TestPublicAPIParsers(t *testing.T) {
	if _, err := rlir.ParseAddr("10.1.2.3"); err != nil {
		t.Fatal(err)
	}
	if _, err := rlir.ParseAddr("nope"); err == nil {
		t.Fatal("expected error")
	}
	p, err := rlir.ParsePrefix("10.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Contains(rlir.MustParseAddr("10.9.9.9")) {
		t.Fatal("prefix broken through facade")
	}
}

func TestPublicAPISchemes(t *testing.T) {
	if rlir.DefaultStatic().Gap(0.5) != 100 {
		t.Fatal("static default is not 1-and-100")
	}
	a := rlir.DefaultAdaptive()
	if a.Gap(0.22) != 10 || a.Gap(0.99) != 300 {
		t.Fatal("adaptive defaults drifted from the paper")
	}
	if (rlir.Static{N: 7}).Gap(0) != 7 {
		t.Fatal("custom static gap")
	}
}

func TestPublicAPITraceGenerator(t *testing.T) {
	cfg := rlir.DefaultTraceConfig()
	cfg.Duration = 20 * time.Millisecond
	gen := rlir.NewTraceGenerator(cfg)
	n := 0
	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		if !cfg.SrcPrefix.Contains(rec.Key.Src) {
			t.Fatalf("record outside source pool: %v", rec.Key.Src)
		}
		n++
	}
	if n == 0 {
		t.Fatal("generator yielded nothing")
	}
}

func TestPublicAPIPlacement(t *testing.T) {
	rows, err := rlir.PlacementTable([]int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].PairOfInterfaces != 6 || rows[1].AllToRPairs != 144 {
		t.Fatalf("rows = %+v", rows)
	}
	if _, err := rlir.PlacementTable([]int{3}); err == nil {
		t.Fatal("odd arity should fail")
	}
}

func TestPublicAPIMicroseconds(t *testing.T) {
	if got := rlir.Microseconds(83 * time.Microsecond); got != 83 {
		t.Fatalf("Microseconds = %v", got)
	}
}

func TestPublicAPIFatTree(t *testing.T) {
	cfg := rlir.DefaultFatTreeConfig()
	cfg.Duration = 60 * time.Millisecond
	res := rlir.RunFatTree(cfg)
	if res.Downstream.Flows == 0 || res.Misattribution != 0 {
		t.Fatalf("fat-tree via facade: %+v", res.Downstream)
	}
}

func TestPublicAPILocalization(t *testing.T) {
	cfg := rlir.DefaultLocalizationConfig()
	cfg.Duration = 80 * time.Millisecond
	res := rlir.RunLocalization(cfg)
	if !res.Localized() {
		t.Fatalf("localization via facade failed: %v", res.Anomalies)
	}
}

func TestPublicAPIClockTypes(t *testing.T) {
	var c rlir.ClockSource = rlir.PerfectClock{}
	if c.Read(0) != 0 {
		t.Fatal("perfect clock broken")
	}
	c = rlir.FixedOffsetClock{Offset: time.Microsecond}
	if c.Read(0) != 1000 {
		t.Fatal("offset clock broken")
	}
}
