// Localization: the paper's headline use case (§1, Figure 1).
//
// A k=4 fat-tree carries flows from ToR T1 (pod 0) to ToR T7 (pod 3). RLIR
// instruments only the ToR uplinks and the cores, so the T1->T7 path is
// measured as per-core segments: T1->C(j,i) and C(j,i)->T7. We first
// calibrate segment baselines on a healthy network, then inject a 300µs
// processing fault at one aggregation switch of the destination pod and let
// the localizer point at the inflated segments.
//
//	go run ./examples/localization
package main

import (
	"fmt"

	rlir "github.com/netmeasure/rlir"
)

func main() {
	cfg := rlir.DefaultLocalizationConfig()
	// Fault: destination pod's aggregation switch 0 slows down. Traffic
	// through core group 0 (segments C(0,*)->T7) will inflate; group 1
	// stays healthy.
	cfg.Site = rlir.AnomalyDstAgg
	cfg.AggIndex = 0

	res := rlir.RunLocalization(cfg)
	fmt.Print(res.Render())
	fmt.Println()

	if res.Localized() {
		fmt.Println("RLIR localized the fault to the correct router group without")
		fmt.Println("instrumenting the aggregation layer at all — the paper's")
		fmt.Println("partial-deployment tradeoff: coarser granularity, far fewer upgrades.")
	} else {
		fmt.Println("localization failed — inspect the segment table above")
	}
}
