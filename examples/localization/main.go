// Localization: the paper's headline use case (§1, Figure 1), driven
// through the scenario engine and the unified estimator layer.
//
// The degraded-link scenario runs a k=4 fat-tree in which one core's
// down-link loses 90% of its rate mid-run. RLIR measures the downstream
// path as per-core segments, so the per-segment table localizes the fault
// to the degraded core — while the same single simulation pass also runs
// the baselines (LDA, NetFlow sampling, Multiflow) through the shared tap
// dispatch, showing why an aggregate sketch cannot answer "which segment
// is slow" at all.
//
//	go run ./examples/localization
package main

import (
	"fmt"
	"log"

	rlir "github.com/netmeasure/rlir"
)

func main() {
	log.SetFlags(0)
	scen, ok := rlir.ScenarioByName("degraded-link")
	if !ok {
		log.Fatal("degraded-link scenario is not registered")
	}
	res, err := rlir.RunScenario(scen.Spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	fmt.Println()

	// Localize: the segment with the highest estimated mean delay should
	// be the one behind the degraded core down-link (core0.0->tor3.0).
	var worst string
	var worstMean int64
	for _, seg := range res.Segments {
		if int64(seg.EstMean) > worstMean {
			worst, worstMean = seg.Name, int64(seg.EstMean)
		}
	}
	fault := scen.Spec.Faults[0]
	expected := fmt.Sprintf("core%d.%d->tor%d.%d", fault.CoreJ, fault.CoreI, fault.DownPod, scen.Spec.Workload.DestToR)
	if worst == expected {
		fmt.Printf("RLIR localized the fault: %s shows the highest estimated latency\n", worst)
		fmt.Println("without instrumenting the aggregation layer at all — the paper's")
		fmt.Println("partial-deployment tradeoff: coarser granularity, far fewer upgrades.")
	} else {
		fmt.Printf("localization failed: worst segment %s, expected %s\n", worst, expected)
	}

	// The comparative point: only the per-flow, per-segment mechanism can
	// localize. LDA's single aggregate number (accurate as it is) has no
	// spatial resolution, and the NetFlow baselines have no per-core view.
	if lda, ok := res.Estimator("lda"); ok {
		fmt.Printf("\nLDA saw the same traffic and reports one number: %v aggregate mean", lda.AggMean)
		fmt.Printf(" (%.2f%% off truth) — accurate, but it cannot name the slow segment.\n", lda.AggRelErr*100)
	}
}
