// Streaming service: the full rlird pipeline in one process.
//
// This example is the library form of what `cmd/rlird` + `cmd/loadgen` run
// as separate processes:
//
//	scenario engine ──capture──> ScenarioTrace
//	                                  │ replay (wire frames, 4 conns)
//	                                  v
//	                       MeasurementService (sharded collector)
//	                                  │ HTTP
//	                                  v
//	                 /flows  /comparison  /healthz  /metrics
//
// It captures a registered scenario's export stream, starts a measurement
// service on an ephemeral TCP port, replays the capture over four
// flow-partitioned connections, and then queries the service's own HTTP
// API — finishing with the check that makes the streaming plane
// trustworthy: the streamed comparison equals the batch engine's.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	rlir "github.com/netmeasure/rlir"
)

func main() {
	log.SetFlags(0)

	// 1. Capture: run a registered scenario once, keeping the export stream
	// its instruments produced.
	sc, ok := rlir.ScenarioByName("baseline-tandem")
	if !ok {
		log.Fatal("baseline-tandem not registered")
	}
	tr, err := rlir.ExportScenarioTrace(sc.Spec, sc.Spec.Seed)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("captured %d samples, %d records, %d flows",
		len(tr.Samples), len(tr.Records), len(tr.Result.Fleet))

	// 2. The service: sharded collector behind a TCP ingest listener and an
	// HTTP query API, both on ephemeral ports.
	svc, err := rlir.NewMeasurementService(rlir.ServiceConfig{
		Listen: "127.0.0.1:0",
		HTTP:   "127.0.0.1:0",
		Shards: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Shutdown(context.Background())

	// 3. Replay: partition flows across 4 connections (per-flow order is
	// what makes streamed aggregation bit-identical to batch), pace at
	// 500k samples/s total.
	const conns = 4
	parts := make([][]rlir.CollectorSample, conns)
	for _, smp := range tr.Samples {
		i := int(smp.Key.FastHash() % uint64(conns))
		parts[i] = append(parts[i], smp)
	}
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := rlir.DialService("tcp", svc.Addr().String(), 0)
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			c.Hello(fmt.Sprintf("replay-%d", i))
			pacer := rlir.NewPacer(500_000 / conns)
			for _, smp := range parts[i] {
				pacer.Wait(1)
				if err := c.Add(smp.Key, smp.Est, smp.True); err != nil {
					log.Fatal(err)
				}
			}
		}(i)
	}
	wg.Wait()
	for svc.Collector().SamplesIngested() < uint64(len(tr.Samples)) {
		time.Sleep(time.Millisecond)
	}

	// 4. Query the service like an operator would.
	base := "http://" + svc.HTTPAddr().String()
	for _, path := range []string{"/healthz", "/comparison"} {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		log.Printf("GET %s:\n%s", path, body)
	}

	// 5. The trust check: streamed ≡ batch.
	streamed := rlir.CompareStreamedFlows("rli", svc.Snapshot())
	batch := rlir.CompareStreamedFlows("rli", tr.Result.Fleet)
	if streamed.MedianRelErr != batch.MedianRelErr || streamed.Samples != batch.Samples {
		log.Fatalf("streamed comparison diverged from batch: %+v vs %+v", streamed, batch)
	}
	log.Printf("streamed == batch: %d flows, median rel err %.4f", streamed.Flows, streamed.MedianRelErr)
}
