// Quickstart: measure per-flow latency across two switches with RLIR.
//
// This runs the paper's Figure-3 scenario at laptop scale: regular traffic
// crosses an instrumented switch, cross traffic merges at the downstream
// bottleneck (raising it to 93% utilization — invisible to the sender), and
// the receiver reconstructs per-flow latency statistics from reference
// packet interpolation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	rlir "github.com/netmeasure/rlir"
)

func main() {
	cfg := rlir.TandemConfig{
		Scale:      rlir.DefaultScale(),
		Scheme:     rlir.DefaultStatic(), // the paper's 1-and-100 worst-case scheme
		Model:      rlir.CrossUniform,
		TargetUtil: 0.93,
	}
	res := rlir.RunTandem(cfg)

	fmt.Printf("run:                  %s\n", res.Label())
	fmt.Printf("bottleneck util:      %.1f%% (sender's own link saw only ~22%%)\n", res.AchievedUtil*100)
	fmt.Printf("flows measured:       %d\n", res.Summary.Flows)
	fmt.Printf("per-packet estimates: %d from %d reference packets\n",
		res.Receiver.Estimated, res.Receiver.RefsSeen)
	fmt.Printf("median relative err:  %.1f%% (paper: ~4.5%% at 93%%)\n", res.Summary.MedianRelErr*100)
	fmt.Printf("true mean delay:      %v\n", res.Summary.TrueMeanDelay)
	fmt.Println()

	// The CDF the paper plots in Figure 4(a), for this single run:
	fmt.Print(rlir.MeanErrCDF(res.Results).Render("relative error of per-flow means", 1e-3, 1e1, 9))

	// A few of the best-observed flows.
	fmt.Println("\nsample flows (estimated vs true mean):")
	for i, fr := range res.Results {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-44s n=%-5d est=%-12v true=%-12v err=%.2f%%\n",
			fr.Key, fr.N, fr.EstMean, fr.TrueMean, fr.RelErrMean*100)
	}
}
