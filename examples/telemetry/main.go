// Telemetry export: using the library as a flow-latency telemetry pipeline.
//
// This example runs an RLIR measurement and exports what a monitoring
// system would consume: a per-flow latency table in CSV on stdout, plus an
// operator-style summary (aggregate histogram quantiles) on stderr. It also
// demonstrates trace generation as a library: the synthetic workload is
// written to a pcap file you can open in Wireshark.
//
//	go run ./examples/telemetry > flows.csv
package main

import (
	"fmt"
	"log"
	"os"

	rlir "github.com/netmeasure/rlir"
	"github.com/netmeasure/rlir/internal/pcapio"
)

func main() {
	log.SetFlags(0)

	// 1. Generate (and archive) the workload this measurement will see.
	tcfg := rlir.DefaultTraceConfig()
	tcfg.Duration = tcfg.Duration / 4
	f, err := os.CreateTemp("", "rlir-workload-*.pcap")
	if err != nil {
		log.Fatal(err)
	}
	w := pcapio.NewWriter(f)
	gen := rlir.NewTraceGenerator(tcfg)
	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		if err := w.Write(rec); err != nil {
			log.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "workload archived: %s (%d packets)\n", f.Name(), w.Count())

	// 2. Measure per-flow latency across the instrumented segment.
	res := rlir.RunTandem(rlir.TandemConfig{
		Scale:      rlir.DefaultScale(),
		Scheme:     rlir.DefaultStatic(),
		Model:      rlir.CrossUniform,
		TargetUtil: 0.85,
	})

	// 3. Export per-flow records as CSV for the monitoring stack.
	fmt.Println("src,dst,src_port,dst_port,proto,packets,mean_latency_us,stddev_us,rel_err")
	for _, fr := range res.Results {
		fmt.Printf("%s,%s,%d,%d,%s,%d,%.2f,%.2f,%.4f\n",
			fr.Key.Src, fr.Key.Dst, fr.Key.SrcPort, fr.Key.DstPort, fr.Key.Proto,
			fr.N, rlir.Microseconds(fr.EstMean), rlir.Microseconds(fr.EstStd), fr.RelErrMean)
	}

	// 4. Operator summary to stderr.
	fmt.Fprintf(os.Stderr, "flows: %d, median relative error: %.2f%%\n",
		res.Summary.Flows, res.Summary.MedianRelErr*100)
	fmt.Fprintf(os.Stderr, "bottleneck utilization: %.1f%%, regular loss: %.6f\n",
		res.AchievedUtil*100, res.LossRate())
}
