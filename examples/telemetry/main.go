// Telemetry export: using the library as a flow-latency telemetry pipeline
// with a live collection plane.
//
// This example wires the full measurement path a deployment would run:
//
//	RLI receiver ──per-packet estimates──┐
//	                                     ├─ binary wire frames ─> collector
//	NetFlow meter ──expired records──────┘       (sharded, concurrent)
//
// The receiver's OnEstimate hook and a NetFlow meter at the same
// measurement point batch their telemetry, encode it with the collector's
// compact wire codec (what a UDP export packet would carry), and a
// consumer goroutine decodes the frames into a live sharded collector.
// When the run ends, the collector's merged snapshot is the operator's
// fleet view: per-flow latency plus NetFlow byte/packet accounting, printed
// as CSV on stdout with an aggregate-histogram summary on stderr.
//
//	go run ./examples/telemetry > flows.csv
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	rlir "github.com/netmeasure/rlir"
	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
	"github.com/netmeasure/rlir/internal/stats"
)

func main() {
	log.SetFlags(0)

	// 1. The live collection plane: 4 shards, each owned by one goroutine,
	// fed encoded wire frames through a channel standing in for the export
	// socket.
	plane := collector.New(collector.Config{Shards: 4})
	frames := make(chan []byte, 64)
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for frame := range frames {
			for len(frame) > 0 {
				n, err := plane.IngestFrame(frame)
				if err != nil {
					log.Fatalf("collector rejected frame: %v", err)
				}
				frame = frame[n:]
			}
		}
	}()

	// 2. Exporters. The receiver side batches per-packet estimates; the
	// NetFlow meter batches expired flow records. Both encode to the same
	// wire format before handing frames to the consumer.
	var sampleBatch []collector.Sample
	flushSamples := func() {
		if len(sampleBatch) == 0 {
			return
		}
		frames <- collector.AppendSamples(nil, sampleBatch)
		sampleBatch = sampleBatch[:0]
	}
	onEstimate := func(key packet.FlowKey, est, truth time.Duration) {
		sampleBatch = append(sampleBatch, collector.Sample{Key: key, Est: est, True: truth})
		if len(sampleBatch) >= 256 {
			flushSamples()
		}
	}

	exportRecs, flushRecs := netflow.BatchExport(64, func(recs []netflow.Record) {
		frames <- collector.AppendRecords(nil, recs)
	})
	meter := netflow.NewMeter(netflow.Config{
		IdleTimeout: 50 * time.Millisecond,
		Export:      exportRecs,
	})

	// 3. Measure per-flow latency across the instrumented segment, with the
	// meter co-located at the receiver's measurement point.
	res := rlir.RunTandem(rlir.TandemConfig{
		Scale:      rlir.DefaultScale(),
		Scheme:     rlir.DefaultStatic(),
		Model:      rlir.CrossUniform,
		TargetUtil: 0.85,
		OnEstimate: onEstimate,
		OnReceiverPoint: func(p *packet.Packet, now simtime.Time) {
			if p.Kind == packet.Regular {
				meter.Observe(p.Key, p.Size, now)
			}
		},
	})
	meter.FlushAll()
	flushRecs()
	flushSamples()
	close(frames)
	<-consumerDone

	// 4. The operator's fleet view: one snapshot of the merged plane.
	snapshot := plane.Snapshot()
	fmt.Println("src,dst,src_port,dst_port,proto,estimates,mean_latency_us,stddev_us,nf_packets,nf_bytes")
	for _, a := range snapshot {
		if a.Est.N() == 0 {
			continue // NetFlow-only flows (e.g. unestimated) are skipped in this table
		}
		us := func(ns float64) float64 { return ns / float64(time.Microsecond) }
		fmt.Printf("%s,%s,%d,%d,%s,%d,%.2f,%.2f,%d,%d\n",
			a.Key.Src, a.Key.Dst, a.Key.SrcPort, a.Key.DstPort, a.Key.Proto,
			a.Est.N(), us(a.Est.Mean()), us(a.Est.Std()), a.Packets, a.Bytes)
	}

	// 5. Operator summary to stderr. The aggregate histogram folds from the
	// snapshot already in hand rather than re-querying the plane.
	var hist stats.Histogram
	for i := range snapshot {
		hist.Merge(&snapshot[i].Hist)
	}
	fmt.Fprintf(os.Stderr, "collector: %d flows, %d samples, %d netflow records over %d shards\n",
		len(snapshot), plane.SamplesIngested(), plane.RecordsIngested(), plane.Shards())
	fmt.Fprintf(os.Stderr, "segment latency: p50<=%v p99<=%v max=%v\n",
		hist.Quantile(0.5), hist.Quantile(0.99), hist.Max())
	fmt.Fprintf(os.Stderr, "flows: %d, median relative error: %.2f%%\n",
		res.Summary.Flows, res.Summary.MedianRelErr*100)
	fmt.Fprintf(os.Stderr, "bottleneck utilization: %.1f%%, regular loss: %.6f\n",
		res.AchievedUtil*100, res.LossRate())
	plane.Close()
}
