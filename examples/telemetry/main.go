// Telemetry export: using the library as a flow-latency telemetry pipeline
// with a live collection plane and the unified estimator layer.
//
// This example wires the full measurement path a deployment would run:
//
//	RLI receiver ──per-packet estimates──┐
//	                                     ├─ binary wire frames ─> collector
//	NetFlow meter (Multiflow estimator)──┘       (sharded, concurrent)
//
//	LDA + sampling + Multiflow ── shared tap dispatch ─> comparison table
//
// The RLI receiver's OnEstimate hook batches telemetry, encodes it with
// the collector's compact wire codec (what a UDP export packet would
// carry), and a consumer goroutine decodes the frames into a live sharded
// collector. The same run carries every baseline estimator on the shared
// tap dispatch — one packet stream, N estimators — so when the run ends
// the operator gets both the fleet flow table (CSV on stdout) and the
// estimator comparison table (stderr): which mechanism to trust, at what
// overhead.
//
//	go run ./examples/telemetry > flows.csv
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	rlir "github.com/netmeasure/rlir"
	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
	"github.com/netmeasure/rlir/internal/stats"
)

func main() {
	log.SetFlags(0)

	// 1. The live collection plane: 4 shards, each owned by one goroutine,
	// fed encoded wire frames through a channel standing in for the export
	// socket.
	plane := collector.New(collector.Config{Shards: 4})
	frames := make(chan []byte, 64)
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for frame := range frames {
			for len(frame) > 0 {
				n, err := plane.IngestFrame(frame)
				if err != nil {
					log.Fatalf("collector rejected frame: %v", err)
				}
				frame = frame[n:]
			}
		}
	}()

	// 2. The RLI export path: per-packet estimates batch into wire frames.
	var sampleBatch []collector.Sample
	flushSamples := func() {
		if len(sampleBatch) == 0 {
			return
		}
		frames <- collector.AppendSamples(nil, sampleBatch)
		sampleBatch = sampleBatch[:0]
	}
	onEstimate := func(key packet.FlowKey, est, truth time.Duration) {
		sampleBatch = append(sampleBatch, collector.Sample{Key: key, Est: est, True: truth})
		if len(sampleBatch) >= 256 {
			flushSamples()
		}
	}

	// 3. The estimator layer: every baseline rides the same run through
	// one shared tap dispatch at the two measurement points.
	baselines := make([]rlir.MeasureEstimator, 0, 3)
	for _, name := range rlir.EstimatorNames() {
		if name == "rli" {
			continue // RLI is the harness's own receiver below
		}
		est, err := rlir.NewEstimator(name, rlir.MeasureConfig{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		baselines = append(baselines, est)
	}
	truth := rlir.NewMeasureTruth()
	shared := rlir.NewMeasureDispatch(truth, baselines...)

	// 4. Measure per-flow latency across the instrumented segment.
	res := rlir.RunTandem(rlir.TandemConfig{
		Scale:      rlir.DefaultScale(),
		Scheme:     rlir.DefaultStatic(),
		Model:      rlir.CrossUniform,
		TargetUtil: 0.85,
		OnEstimate: onEstimate,
		OnSenderPoint: func(p *packet.Packet, now simtime.Time) {
			if p.Kind == packet.Regular {
				shared.TapStart(p, now)
			}
		},
		OnReceiverPoint: func(p *packet.Packet, now simtime.Time) {
			if p.Kind == packet.Regular {
				shared.TapEnd(p, now)
			}
		},
	})
	flushSamples()
	close(frames)
	<-consumerDone

	// 5. The operator's fleet view: one snapshot of the merged plane.
	snapshot := plane.Snapshot()
	fmt.Println("src,dst,src_port,dst_port,proto,estimates,mean_latency_us,stddev_us")
	for _, a := range snapshot {
		if a.Est.N() == 0 {
			continue
		}
		us := func(ns float64) float64 { return ns / float64(time.Microsecond) }
		fmt.Printf("%s,%s,%d,%d,%s,%d,%.2f,%.2f\n",
			a.Key.Src, a.Key.Dst, a.Key.SrcPort, a.Key.DstPort, a.Key.Proto,
			a.Est.N(), us(a.Est.Mean()), us(a.Est.Std()))
	}

	// 6. Operator summary to stderr: collector stats, then the estimator
	// comparison — every mechanism on this one pass, scored against the
	// same ground truth.
	var hist stats.Histogram
	for i := range snapshot {
		hist.Merge(&snapshot[i].Hist)
	}
	fmt.Fprintf(os.Stderr, "collector: %d flows, %d samples over %d shards\n",
		len(snapshot), plane.SamplesIngested(), plane.Shards())
	fmt.Fprintf(os.Stderr, "segment latency: p50<=%v p99<=%v max=%v\n",
		hist.Quantile(0.5), hist.Quantile(0.99), hist.Max())
	fmt.Fprintf(os.Stderr, "bottleneck utilization: %.1f%%, regular loss: %.6f\n",
		res.AchievedUtil*100, res.LossRate())

	reports := []rlir.MeasureReport{rlir.ReportFromFlowResults("rli", "sw2", res.Results, rlir.MeasureOverhead{
		InjectedPkts:  res.Sender.Injected,
		InjectedBytes: res.Sender.Injected * rlir.DefaultRefSize,
	})}
	for _, b := range baselines {
		reports = append(reports, b.Finalize())
	}
	fmt.Fprintln(os.Stderr, "estimator comparison (single pass, shared ground truth):")
	fmt.Fprint(os.Stderr, rlir.RenderEstimatorComparison(rlir.CompareEstimators(truth, reports...)))
	plane.Close()
}
