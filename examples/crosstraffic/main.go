// Cross-traffic study: the paper's §3.2/§4 question in miniature.
//
// An RLI sender adapts its reference-packet rate to the utilization of its
// OWN link — but across routers, the bottleneck is downstream and invisible.
// This example runs the same workload under the adaptive and static schemes
// at two bottleneck utilizations and prints the accuracy/interference
// tradeoff the paper's Figures 4(a) and 5 quantify: the blind adaptive
// scheme injects ~10x more probes (better accuracy, more interference);
// static 1-and-100 is the conservative worst-case choice.
//
//	go run ./examples/crosstraffic
package main

import (
	"fmt"

	rlir "github.com/netmeasure/rlir"
)

func main() {
	scale := rlir.DefaultScale()

	fmt.Println("scheme                    util   achieved  refs     medianErr  under10%  lossRate")
	for _, util := range []float64{0.67, 0.93} {
		for _, mode := range []string{"adaptive", "static"} {
			cfg := rlir.TandemConfig{
				Scale:      scale,
				Model:      rlir.CrossUniform,
				TargetUtil: util,
			}
			if mode == "adaptive" {
				cfg.Scheme = rlir.DefaultAdaptive()
				cfg.AdaptiveLive = true // driven by the sender-side meter, which sees ~22%
			} else {
				cfg.Scheme = rlir.DefaultStatic()
			}
			res := rlir.RunTandem(cfg)
			fmt.Printf("%-25s %.2f   %.2f      %-8d %-10.4f %-9.1f %.6f\n",
				cfg.Scheme.Name(), util, res.AchievedUtil,
				res.Receiver.RefsSeen, res.Summary.MedianRelErr,
				res.Summary.FracUnder10Pct*100, res.LossRate())
		}
	}

	fmt.Println()
	fmt.Println("The adaptive scheme cannot see the bottleneck (its own link sits at ~22%,")
	fmt.Println("pinning it at 1-and-10), so it buys accuracy with 10x the probe load —")
	fmt.Println("the interference Figure 5 measures. The paper's recommendation for RLIR")
	fmt.Println("is the static worst-case scheme: slightly worse accuracy, negligible loss.")
}
