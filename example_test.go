package rlir_test

import (
	"context"
	"fmt"
	"net"
	"time"

	rlir "github.com/netmeasure/rlir"
)

// ExampleRunTandem measures per-flow latency across the paper's two-switch
// scenario: regular traffic through an instrumented switch, unseen cross
// traffic congesting the downstream bottleneck to 93%.
func ExampleRunTandem() {
	res := rlir.RunTandem(rlir.TandemConfig{
		Scale:      rlir.SmallScale(),
		Scheme:     rlir.DefaultStatic(), // 1-and-100 worst-case injection
		Model:      rlir.CrossUniform,
		TargetUtil: 0.93,
	})
	fmt.Printf("measured %d flows with %d reference packets\n",
		res.Summary.Flows, res.Receiver.RefsSeen)
	for _, fr := range res.Results[:1] {
		fmt.Printf("flow %v: est %v vs true %v\n", fr.Key, fr.EstMean, fr.TrueMean)
	}
}

// ExampleRunFatTree deploys RLIR on a k=4 fat-tree: upstream senders at
// ToR uplinks, receivers at cores, downstream demultiplexing by reverse
// ECMP computation.
func ExampleRunFatTree() {
	cfg := rlir.DefaultFatTreeConfig()
	cfg.Strategy = rlir.DemuxReverseECMP
	res := rlir.RunFatTree(cfg)
	fmt.Printf("downstream median error %.3f, misattribution %.0f%%\n",
		res.Downstream.MedianRelErr, res.Misattribution*100)
}

// ExampleRunLocalization injects a 300µs fault at an aggregation switch
// and lets the per-segment measurements point at it.
func ExampleRunLocalization() {
	cfg := rlir.DefaultLocalizationConfig()
	cfg.Site = rlir.AnomalyDstAgg
	res := rlir.RunLocalization(cfg)
	fmt.Println("localized:", res.Localized())
	for _, a := range res.Anomalies {
		fmt.Println(a)
	}
}

// ExampleAdaptive shows the injection scheme the sender uses when it can
// see its own link's utilization — and why it misfires across routers.
func ExampleAdaptive() {
	scheme := rlir.DefaultAdaptive()
	// The sender's own link sits at 22%: maximum probe rate.
	fmt.Println("gap at 22%:", scheme.Gap(0.22))
	// The bottleneck it cannot see is at 93%; had it known, it would back
	// off to:
	fmt.Println("gap at 93%:", scheme.Gap(0.93))
	// Output:
	// gap at 22%: 10
	// gap at 93%: 258
}

// ExamplePlacementTable prints the §3.1 deployment-cost table.
func ExamplePlacementTable() {
	rows, _ := rlir.PlacementTable([]int{4})
	r := rows[0]
	fmt.Printf("k=4: %d instances for one interface pair, %d for all ToR pairs, %d for full deployment\n",
		r.PairOfInterfaces, r.AllToRPairs, r.FullDeployment)
	// Output:
	// k=4: 6 instances for one interface pair, 20 for all ToR pairs, 240 for full deployment
}

// ExampleEstimatorNames looks up the measurement-mechanism registry: the
// comparison set every scenario can attach to one simulation pass, with
// "rli" (the mechanism under test) always first.
func ExampleEstimatorNames() {
	for _, name := range rlir.EstimatorNames() {
		fmt.Println(name, rlir.EstimatorRegistered(name))
	}
	_, err := rlir.NewEstimator("bogus", rlir.MeasureConfig{})
	fmt.Println(err != nil)
	// Output:
	// rli true
	// hash-sample true
	// lda true
	// multiflow true
	// netflow-sample true
	// periodic-sample true
	// true
}

// ExampleScenarioByName looks up the scenario registry — every entry pairs
// a runnable spec with the invariant CI enforces on it.
func ExampleScenarioByName() {
	sc, ok := rlir.ScenarioByName("degraded-link")
	fmt.Println(ok, sc.Spec.Topology.Kind, len(sc.Spec.Faults))
	_, ok = rlir.ScenarioByName("nonexistent")
	fmt.Println(ok)
	// Output:
	// true fattree 1
	// false
}

// ExampleServiceClient runs the full streaming-service client path in
// process: a measurement service, a client streaming samples over a pipe
// (standing in for the TCP/Unix socket cmd/rlird listens on), and the
// aggregate the service answers queries from.
func ExampleServiceClient() {
	svc, err := rlir.NewMeasurementService(rlir.ServiceConfig{Shards: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	server, client := net.Pipe()
	svc.ServeConn(server)

	c := rlir.NewServiceClient(client, 0)
	c.Hello("tor3.0") // declare this connection's router identity
	key := rlir.FlowKey{
		Src: rlir.MustParseAddr("10.0.0.1"), Dst: rlir.MustParseAddr("10.3.0.1"),
		SrcPort: 4242, DstPort: 443, Proto: 6,
	}
	for i := 1; i <= 100; i++ {
		// In a deployment this hangs off the receiver's OnEstimate hook.
		c.Add(key, time.Duration(i)*time.Microsecond, time.Duration(i)*time.Microsecond)
	}
	c.Close()

	for svc.Collector().SamplesIngested() < 100 {
		time.Sleep(time.Millisecond)
	}
	flows := svc.Snapshot()
	fmt.Printf("%d flow, %d samples, mean %v\n",
		len(flows), flows[0].Est.N(), time.Duration(flows[0].Est.Mean()))
	svc.Shutdown(context.Background())
	// Output:
	// 1 flow, 100 samples, mean 50.5µs
}

// ExampleNewTraceGenerator builds the synthetic CAIDA-stand-in workload.
func ExampleNewTraceGenerator() {
	cfg := rlir.DefaultTraceConfig()
	cfg.Duration = 10 * time.Millisecond
	gen := rlir.NewTraceGenerator(cfg)
	rec, ok := gen.Next()
	fmt.Println(ok, rec.Size >= 64)
	// Output:
	// true true
}
