package packet

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/netmeasure/rlir/internal/simtime"
)

func TestFlowKeyAsMapKey(t *testing.T) {
	k1 := FlowKey{Src: AddrFrom4(10, 0, 0, 1), Dst: AddrFrom4(10, 0, 0, 2), SrcPort: 1234, DstPort: 80, Proto: ProtoTCP}
	k2 := k1
	m := map[FlowKey]int{k1: 7}
	if m[k2] != 7 {
		t.Fatal("equal keys should collide in map")
	}
	k2.SrcPort = 1235
	if _, ok := m[k2]; ok {
		t.Fatal("different keys should not collide")
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{Src: AddrFrom4(1, 2, 3, 4), Dst: AddrFrom4(5, 6, 7, 8), SrcPort: 10, DstPort: 20, Proto: ProtoUDP}
	r := k.Reverse()
	if r.Src != k.Dst || r.Dst != k.Src || r.SrcPort != k.DstPort || r.DstPort != k.SrcPort {
		t.Fatalf("Reverse = %v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse should be identity")
	}
}

func TestFastHashDistinguishesFields(t *testing.T) {
	base := FlowKey{Src: AddrFrom4(10, 0, 0, 1), Dst: AddrFrom4(10, 0, 0, 2), SrcPort: 1, DstPort: 2, Proto: ProtoTCP}
	h := base.FastHash()
	variants := []FlowKey{
		{Src: AddrFrom4(10, 0, 0, 3), Dst: base.Dst, SrcPort: 1, DstPort: 2, Proto: ProtoTCP},
		{Src: base.Src, Dst: AddrFrom4(10, 0, 0, 3), SrcPort: 1, DstPort: 2, Proto: ProtoTCP},
		{Src: base.Src, Dst: base.Dst, SrcPort: 9, DstPort: 2, Proto: ProtoTCP},
		{Src: base.Src, Dst: base.Dst, SrcPort: 1, DstPort: 9, Proto: ProtoTCP},
		{Src: base.Src, Dst: base.Dst, SrcPort: 1, DstPort: 2, Proto: ProtoUDP},
		base.Reverse(),
	}
	for i, v := range variants {
		if v.FastHash() == h {
			t.Errorf("variant %d hashes equal to base (weak hash)", i)
		}
	}
}

func TestFastHashDeterministicProperty(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8) bool {
		k := FlowKey{Src: Addr(src), Dst: Addr(dst), SrcPort: sp, DstPort: dp, Proto: Proto(proto)}
		return k.FastHash() == k.FastHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRefPayloadDelay(t *testing.T) {
	r := RefPayload{Timestamp: simtime.FromSeconds(1.0)}
	got := r.Delay(simtime.FromSeconds(1.0).Add(83 * time.Microsecond))
	if got != 83*time.Microsecond {
		t.Fatalf("Delay = %v, want 83µs", got)
	}
}

func TestRecordHopAndTraversed(t *testing.T) {
	var p Packet
	p.RecordHop(3)
	p.RecordHop(7)
	if !p.Traversed(3) || !p.Traversed(7) || p.Traversed(5) {
		t.Fatalf("Hops = %v", p.Hops)
	}
}

func TestStringersSmoke(t *testing.T) {
	k := FlowKey{Src: AddrFrom4(10, 0, 0, 1), Dst: AddrFrom4(10, 0, 0, 2), SrcPort: 1234, DstPort: 80, Proto: ProtoTCP}
	if k.String() == "" {
		t.Error("empty FlowKey.String")
	}
	p := Packet{ID: 1, Key: k, Size: 64, Kind: Reference}
	if p.String() == "" {
		t.Error("empty Packet.String")
	}
	for _, kind := range []Kind{Regular, Reference, Cross, Kind(99)} {
		if kind.String() == "" {
			t.Error("empty Kind.String")
		}
	}
	for _, pr := range []Proto{ProtoTCP, ProtoUDP, Proto(47)} {
		if pr.String() == "" {
			t.Error("empty Proto.String")
		}
	}
}

// TestFlowKeyLess pins the canonical ordering: strict weak, field by field.
func TestFlowKeyLess(t *testing.T) {
	base := FlowKey{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: ProtoTCP}
	if base.Less(base) {
		t.Fatal("key < itself")
	}
	bump := []FlowKey{
		{Src: 2, Dst: 2, SrcPort: 3, DstPort: 4, Proto: ProtoTCP},
		{Src: 1, Dst: 3, SrcPort: 3, DstPort: 4, Proto: ProtoTCP},
		{Src: 1, Dst: 2, SrcPort: 4, DstPort: 4, Proto: ProtoTCP},
		{Src: 1, Dst: 2, SrcPort: 3, DstPort: 5, Proto: ProtoTCP},
		{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: ProtoUDP},
	}
	for i, hi := range bump {
		if !base.Less(hi) || hi.Less(base) {
			t.Fatalf("field %d: ordering wrong for %v vs %v", i, base, hi)
		}
	}
	// Earlier fields dominate later ones.
	lo := FlowKey{Src: 1, Dst: 9, SrcPort: 9, DstPort: 9, Proto: ProtoUDP}
	hi := FlowKey{Src: 2}
	if !lo.Less(hi) || hi.Less(lo) {
		t.Fatal("Src must dominate later fields")
	}
}
