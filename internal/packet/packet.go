package packet

import (
	"fmt"
	"time"

	"github.com/netmeasure/rlir/internal/simtime"
)

// Proto is an IP protocol number.
type Proto uint8

// Protocol numbers used by the workload generator.
const (
	ProtoTCP Proto = 6
	ProtoUDP Proto = 17
)

func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// FlowKey is the 5-tuple identity of a flow. It is a comparable value type:
// use it directly as a map key (the gopacket Flow/Endpoint idiom). All
// per-flow state in this repository — receiver accumulators, ground truth,
// NetFlow records — is keyed by FlowKey.
type FlowKey struct {
	Src, Dst         Addr
	SrcPort, DstPort uint16
	Proto            Proto
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// Class returns the flow's class key: the 5-tuple with both ports masked to
// zero, i.e. the host-pair/protocol aggregate a flow folds into when it is
// evicted from a bounded flow table. Flows of the same class share source,
// destination and protocol — the natural per-host-pair aggregation tier
// between individual flows and a whole router.
func (k FlowKey) Class() FlowKey {
	k.SrcPort, k.DstPort = 0, 0
	return k
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d>%s:%d/%s", k.Src, k.SrcPort, k.Dst, k.DstPort, k.Proto)
}

// Less orders keys lexicographically by (Src, Dst, SrcPort, DstPort, Proto).
// It is the canonical ordering for deterministic per-flow output: result
// tables, collector snapshots and merged aggregates all sort with it.
func (k FlowKey) Less(o FlowKey) bool {
	switch {
	case k.Src != o.Src:
		return k.Src < o.Src
	case k.Dst != o.Dst:
		return k.Dst < o.Dst
	case k.SrcPort != o.SrcPort:
		return k.SrcPort < o.SrcPort
	case k.DstPort != o.DstPort:
		return k.DstPort < o.DstPort
	default:
		return k.Proto < o.Proto
	}
}

// FastHash returns a 64-bit FNV-1a hash of the key. It is not the ECMP hash
// (see internal/ecmp for those); it exists for sharding and sampling, and is
// deliberately asymmetric: A->B and B->A hash differently.
func (k FlowKey) FastHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64, bytes int) {
		for i := 0; i < bytes; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(k.Src), 4)
	mix(uint64(k.Dst), 4)
	mix(uint64(k.SrcPort), 2)
	mix(uint64(k.DstPort), 2)
	mix(uint64(k.Proto), 1)
	return h
}

// Kind classifies packets inside the simulator.
type Kind uint8

const (
	// Regular is monitored application traffic: the traffic whose per-flow
	// latency RLIR estimates.
	Regular Kind = iota
	// Reference is an RLI reference packet carrying a sender timestamp.
	Reference
	// Cross is cross traffic: it shares queues with regular traffic but is
	// not monitored (paper §3.2, §4.1).
	Cross
)

func (k Kind) String() string {
	switch k {
	case Regular:
		return "regular"
	case Reference:
		return "reference"
	case Cross:
		return "cross"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// MinSize is the smallest frame the simulator will carry (Ethernet minimum).
const MinSize = 64

// MaxSize is the largest frame (standard MTU plus L2 framing).
const MaxSize = 1518

// Packet is one simulated packet. Fields fall into three groups:
//
//   - Wire state: what a real device could see (Key, Size, TOS, Kind, Ref).
//   - Measurement state: SegmentStart, stamped by the RLI sender tap exactly
//     as an egress hardware timestamp would be.
//   - Ground truth: simulator-private bookkeeping (ID, path trace, drop site)
//     used only to evaluate estimation accuracy, never by the instruments
//     themselves — except by the explicitly-labelled oracle demultiplexer.
type Packet struct {
	// ID is a unique, deterministic packet identity assigned at creation.
	ID uint64
	// Key is the 5-tuple.
	Key FlowKey
	// Size is the frame size in bytes, including L2 framing.
	Size int
	// Kind classifies the packet (regular, reference, cross).
	Kind Kind
	// TOS carries the type-of-service byte; under the packet-marking demux
	// strategy, core switches overwrite it with their mark (§3.1, [13]).
	TOS uint8
	// Ref is the reference payload; valid only when Kind == Reference.
	Ref RefPayload

	// SegmentStart is the instant the packet crossed the sender-side
	// measurement point (egress timestamp semantics). Zero means the packet
	// has not crossed a sender tap. For Reference packets this duplicates
	// Ref.Timestamp; for Regular packets it exists only to compute ground
	// truth at the receiver tap.
	SegmentStart simtime.Time

	// Hops is the ground-truth list of node IDs traversed, recorded by the
	// simulator when path tracing is enabled.
	Hops []int32
}

// RefPayload is the information an RLI reference packet carries on the wire.
type RefPayload struct {
	// Sender identifies the RLI sender instance; receivers use it to
	// demultiplex reference streams (§3.1 upstream multiplexing).
	Sender uint32
	// Seq is a per-sender sequence number (loss detection).
	Seq uint32
	// Timestamp is the sender's hardware transmit timestamp.
	Timestamp simtime.Time
}

// Delay returns the one-way delay of a reference packet received at the
// given instant, as computed by the RLI receiver's (synchronized) clock.
func (r RefPayload) Delay(receivedAt simtime.Time) time.Duration {
	return receivedAt.Sub(r.Timestamp)
}

// RecordHop appends a node to the ground-truth path trace.
func (p *Packet) RecordHop(node int32) {
	p.Hops = append(p.Hops, node)
}

// Traversed reports whether ground-truth tracing saw the packet pass node.
func (p *Packet) Traversed(node int32) bool {
	for _, h := range p.Hops {
		if h == node {
			return true
		}
	}
	return false
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt{%d %s %s %dB}", p.ID, p.Kind, p.Key, p.Size)
}
