// Package packet defines the packet model shared by the simulator and the
// measurement instruments: IPv4 addressing, comparable 5-tuple flow keys
// (usable directly as map keys, following the gopacket Flow/Endpoint idiom),
// the RLI reference-packet wire format, and ToS-based path marking.
package packet

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order. It is a value type so that
// FlowKey remains comparable and hashes without allocation.
type Addr uint32

// AddrFrom4 builds an address from its four dotted-quad octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses dotted-quad notation ("10.1.2.3").
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("packet: invalid IPv4 address %q", s)
	}
	var out Addr
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("packet: invalid IPv4 address %q", s)
		}
		out = out<<8 | Addr(v)
	}
	return out, nil
}

// MustParseAddr is ParseAddr that panics on error, for tests and literals.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Octets returns the four dotted-quad octets of a.
func (a Addr) Octets() (byte, byte, byte, byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// String formats a in dotted-quad notation.
func (a Addr) String() string {
	o1, o2, o3, o4 := a.Octets()
	return fmt.Sprintf("%d.%d.%d.%d", o1, o2, o3, o4)
}

// Prefix is an IPv4 CIDR prefix. Bits outside the mask are ignored by
// Contains but preserved by Addr for display.
type Prefix struct {
	Addr Addr
	Len  int // 0..32
}

// ParsePrefix parses "10.1.0.0/16".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("packet: prefix %q missing '/'", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	n, err := strconv.Atoi(s[slash+1:])
	if err != nil || n < 0 || n > 32 {
		return Prefix{}, fmt.Errorf("packet: invalid prefix length in %q", s)
	}
	return Prefix{Addr: a, Len: n}, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Mask returns the netmask of p as a 32-bit value.
func (p Prefix) Mask() uint32 {
	if p.Len <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint(p.Len))
}

// Contains reports whether a falls inside p.
func (p Prefix) Contains(a Addr) bool {
	m := p.Mask()
	return uint32(p.Addr)&m == uint32(a)&m
}

// Canonical returns p with host bits zeroed.
func (p Prefix) Canonical() Prefix {
	return Prefix{Addr: Addr(uint32(p.Addr) & p.Mask()), Len: p.Len}
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q.Addr) || q.Contains(p.Addr)
}

// String formats p in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Addr, p.Len)
}
