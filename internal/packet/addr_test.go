package packet

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"10.1.2.3", AddrFrom4(10, 1, 2, 3), true},
		{"255.255.255.255", 0xFFFFFFFF, true},
		{"256.0.0.1", 0, false},
		{"10.1.2", 0, false},
		{"10.1.2.3.4", 0, false},
		{"a.b.c.d", 0, false},
		{"10.01.2.3", 0, false}, // leading zero rejected
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err = %v, ok? %v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOctets(t *testing.T) {
	a := MustParseAddr("10.20.30.40")
	o1, o2, o3, o4 := a.Octets()
	if o1 != 10 || o2 != 20 || o3 != 30 || o4 != 40 {
		t.Fatalf("Octets = %d.%d.%d.%d", o1, o2, o3, o4)
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParseAddr("not an address")
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("10.1.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	if p.Addr != MustParseAddr("10.1.0.0") || p.Len != 16 {
		t.Fatalf("got %v", p)
	}
	for _, bad := range []string{"10.1.0.0", "10.1.0.0/33", "10.1.0.0/-1", "10.1.0/16", "10.1.0.0/x"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) should fail", bad)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	if !p.Contains(MustParseAddr("10.1.255.255")) {
		t.Error("should contain 10.1.255.255")
	}
	if p.Contains(MustParseAddr("10.2.0.0")) {
		t.Error("should not contain 10.2.0.0")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseAddr("203.0.113.9")) {
		t.Error("/0 should contain everything")
	}
	host := MustParsePrefix("10.1.2.3/32")
	if !host.Contains(MustParseAddr("10.1.2.3")) || host.Contains(MustParseAddr("10.1.2.4")) {
		t.Error("/32 should contain exactly itself")
	}
}

func TestPrefixCanonical(t *testing.T) {
	p := Prefix{Addr: MustParseAddr("10.1.2.3"), Len: 16}
	if got := p.Canonical().Addr; got != MustParseAddr("10.1.0.0") {
		t.Fatalf("Canonical = %v", got)
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.1.0.0/16")
	b := MustParsePrefix("10.1.2.0/24")
	c := MustParsePrefix("10.2.0.0/16")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes should overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes should not overlap")
	}
}

func TestPrefixString(t *testing.T) {
	if got := MustParsePrefix("10.1.0.0/16").String(); got != "10.1.0.0/16" {
		t.Fatalf("String = %q", got)
	}
}

func TestPrefixContainsMatchesMaskArithmetic(t *testing.T) {
	f := func(addr, probe uint32, l uint8) bool {
		p := Prefix{Addr: Addr(addr), Len: int(l % 33)}
		want := uint32(addr)&p.Mask() == probe&p.Mask()
		return p.Contains(Addr(probe)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
