package packet

import (
	"testing"
	"testing/quick"

	"github.com/netmeasure/rlir/internal/simtime"
)

func TestRefRoundTrip(t *testing.T) {
	in := RefPayload{Sender: 0xDEADBEEF, Seq: 42, Timestamp: simtime.FromSeconds(1.5)}
	var buf [RefWireSize]byte
	n, err := MarshalRef(buf[:], in)
	if err != nil || n != RefWireSize {
		t.Fatalf("MarshalRef: n=%d err=%v", n, err)
	}
	out, err := UnmarshalRef(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestRefRoundTripProperty(t *testing.T) {
	f := func(sender, seq uint32, ts int64) bool {
		in := RefPayload{Sender: sender, Seq: seq, Timestamp: simtime.Time(ts)}
		buf := AppendRef(nil, in)
		out, err := UnmarshalRef(buf)
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalRefShortBuffer(t *testing.T) {
	var buf [RefWireSize - 1]byte
	if _, err := MarshalRef(buf[:], RefPayload{}); err == nil {
		t.Fatal("expected error for short buffer")
	}
}

func TestUnmarshalRefErrors(t *testing.T) {
	good := AppendRef(nil, RefPayload{Sender: 1, Seq: 2, Timestamp: 3})

	if _, err := UnmarshalRef(good[:RefWireSize-1]); err != ErrShortPayload {
		t.Errorf("short payload: err = %v", err)
	}

	bad := append([]byte(nil), good...)
	bad[0] = 0xFF
	if _, err := UnmarshalRef(bad); err != ErrBadMagic {
		t.Errorf("bad magic: err = %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[2] = 99
	if _, err := UnmarshalRef(bad); err != ErrBadVersion {
		t.Errorf("bad version: err = %v", err)
	}
}

func TestAppendRefAppends(t *testing.T) {
	prefix := []byte{1, 2, 3}
	out := AppendRef(prefix, RefPayload{})
	if len(out) != 3+RefWireSize {
		t.Fatalf("len = %d", len(out))
	}
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatal("prefix clobbered")
	}
}

func TestMarshalNegativeTimestamp(t *testing.T) {
	// Timestamps are signed; a pre-epoch instant (clock offset experiments)
	// must survive the round trip.
	in := RefPayload{Timestamp: simtime.Time(-12345)}
	out, err := UnmarshalRef(AppendRef(nil, in))
	if err != nil || out.Timestamp != in.Timestamp {
		t.Fatalf("got %v err %v", out.Timestamp, err)
	}
}

func BenchmarkMarshalRef(b *testing.B) {
	var buf [RefWireSize]byte
	r := RefPayload{Sender: 7, Seq: 9, Timestamp: 12345}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MarshalRef(buf[:], r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalRef(b *testing.B) {
	buf := AppendRef(nil, RefPayload{Sender: 7, Seq: 9, Timestamp: 12345})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalRef(buf); err != nil {
			b.Fatal(err)
		}
	}
}
