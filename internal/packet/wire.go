package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/netmeasure/rlir/internal/simtime"
)

// Reference-packet wire format. A deployment would carry this as the UDP
// payload of a packet addressed to the receiver instance:
//
//	offset size field
//	0      2    magic 0x524C ("RL")
//	2      1    version (1)
//	3      1    flags (reserved, 0)
//	4      4    sender ID (big endian)
//	8      4    sequence number (big endian)
//	12     8    transmit timestamp, ns (big endian, two's complement)
//
// RefWireSize is the encoded size in bytes.
const RefWireSize = 20

const (
	refMagic   = 0x524C
	refVersion = 1
)

// Errors returned by UnmarshalRef.
var (
	ErrShortPayload = errors.New("packet: reference payload too short")
	ErrBadMagic     = errors.New("packet: reference payload has wrong magic")
	ErrBadVersion   = errors.New("packet: unsupported reference payload version")
)

// MarshalRef encodes r into dst, which must be at least RefWireSize bytes,
// and returns the number of bytes written. It does not allocate.
func MarshalRef(dst []byte, r RefPayload) (int, error) {
	if len(dst) < RefWireSize {
		return 0, fmt.Errorf("packet: marshal buffer %d < %d bytes", len(dst), RefWireSize)
	}
	binary.BigEndian.PutUint16(dst[0:2], refMagic)
	dst[2] = refVersion
	dst[3] = 0
	binary.BigEndian.PutUint32(dst[4:8], r.Sender)
	binary.BigEndian.PutUint32(dst[8:12], r.Seq)
	binary.BigEndian.PutUint64(dst[12:20], uint64(int64(r.Timestamp)))
	return RefWireSize, nil
}

// AppendRef appends the encoding of r to dst and returns the extended slice.
func AppendRef(dst []byte, r RefPayload) []byte {
	var buf [RefWireSize]byte
	if _, err := MarshalRef(buf[:], r); err != nil {
		panic(err) // unreachable: buffer is sized correctly
	}
	return append(dst, buf[:]...)
}

// UnmarshalRef decodes a reference payload from src.
func UnmarshalRef(src []byte) (RefPayload, error) {
	if len(src) < RefWireSize {
		return RefPayload{}, ErrShortPayload
	}
	if binary.BigEndian.Uint16(src[0:2]) != refMagic {
		return RefPayload{}, ErrBadMagic
	}
	if src[2] != refVersion {
		return RefPayload{}, ErrBadVersion
	}
	return RefPayload{
		Sender:    binary.BigEndian.Uint32(src[4:8]),
		Seq:       binary.BigEndian.Uint32(src[8:12]),
		Timestamp: simtime.Time(int64(binary.BigEndian.Uint64(src[12:20]))),
	}, nil
}
