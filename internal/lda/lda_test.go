package lda

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/simtime"
)

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Banks: 0, Rows: 8, SampleBase: 2},
		{Banks: 1, Rows: 0, SampleBase: 2},
		{Banks: 1, Rows: 8, SampleBase: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

func TestZeroLossExactAverage(t *testing.T) {
	// With no loss, the estimate equals the exact average delay of the
	// packets the first (unsampled) bank captured — which is all of them.
	cfg := DefaultConfig()
	s, r := New(cfg), New(cfg)
	rng := rand.New(rand.NewSource(1))

	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sent := simtime.Time(int64(i) * 1000)
		d := time.Duration(rng.Intn(100)) * time.Microsecond
		sum += d
		s.Record(uint64(i), sent)
		r.Record(uint64(i), sent.Add(d))
	}
	est, err := Extract(s, r)
	if err != nil {
		t.Fatal(err)
	}
	exact := sum / n
	if est.UsablePackets == 0 {
		t.Fatal("no usable packets")
	}
	if est.LossEstimate != 0 {
		t.Fatalf("loss = %v, want 0", est.LossEstimate)
	}
	// Bank 0 is unsampled, so all packets land in usable buckets: the
	// estimate over bank 0 alone is exact; banks 1+ resample the same
	// packets, keeping the weighted estimate within sampling noise.
	if diff := math.Abs(float64(est.MeanDelay - exact)); diff > float64(2*time.Microsecond) {
		t.Fatalf("estimate %v vs exact %v", est.MeanDelay, exact)
	}
}

func TestLossInvalidatesOnlyTouchedBuckets(t *testing.T) {
	cfg := Config{Banks: 2, Rows: 32, SampleBase: 8, Seed: 9}
	s, r := New(cfg), New(cfg)
	rng := rand.New(rand.NewSource(2))

	const n = 10000
	lost := 0
	for i := 0; i < n; i++ {
		sent := simtime.Time(int64(i) * 1000)
		s.Record(uint64(i), sent)
		if rng.Float64() < 0.02 { // 2% loss
			lost++
			continue
		}
		r.Record(uint64(i), sent.Add(50*time.Microsecond))
	}
	est, err := Extract(s, r)
	if err != nil {
		t.Fatal(err)
	}
	if est.UsableBuckets == 0 {
		t.Fatal("all buckets unusable at 2% loss: banks not doing their job")
	}
	if est.UsableBuckets == est.TotalBuckets {
		t.Fatal("loss should invalidate some buckets")
	}
	// Usable buckets saw no loss, so the mean over them is exact.
	if est.MeanDelay != 50*time.Microsecond {
		t.Fatalf("mean = %v, want exactly 50µs", est.MeanDelay)
	}
	if est.LossEstimate <= 0 {
		t.Fatal("loss estimate should be positive")
	}
	if math.Abs(est.LossEstimate-float64(lost)/n) > 0.02 {
		t.Fatalf("loss estimate %.4f far from true %.4f", est.LossEstimate, float64(lost)/n)
	}
}

func TestHighLossStillRecoversFromSampledBanks(t *testing.T) {
	// At 30% loss the dense bank is useless; sampled banks must keep a few
	// usable buckets (that is LDA's entire point).
	cfg := Config{Banks: 4, Rows: 64, SampleBase: 16, Seed: 4}
	s, r := New(cfg), New(cfg)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200000; i++ {
		sent := simtime.Time(int64(i) * 500)
		s.Record(uint64(i), sent)
		if rng.Float64() < 0.30 {
			continue
		}
		r.Record(uint64(i), sent.Add(80*time.Microsecond))
	}
	est, err := Extract(s, r)
	if err != nil {
		t.Fatal(err)
	}
	if est.UsablePackets == 0 {
		t.Fatal("no usable packets at 30% loss")
	}
	if est.MeanDelay != 80*time.Microsecond {
		t.Fatalf("mean = %v, want exactly 80µs", est.MeanDelay)
	}
}

func TestMismatchedConfigsRejected(t *testing.T) {
	a := New(Config{Banks: 2, Rows: 8, SampleBase: 2, Seed: 1})
	b := New(Config{Banks: 2, Rows: 8, SampleBase: 2, Seed: 2})
	if _, err := Extract(a, b); err == nil {
		t.Fatal("different seeds should be rejected")
	}
}

func TestEmptyExtract(t *testing.T) {
	cfg := DefaultConfig()
	est, err := Extract(New(cfg), New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if est.MeanDelay != 0 || est.UsablePackets != 0 || est.LossEstimate != 0 {
		t.Fatalf("empty estimate = %+v", est)
	}
	if est.String() == "" {
		t.Fatal("empty String")
	}
}

func TestDeterministicSampling(t *testing.T) {
	cfg := DefaultConfig()
	a, b := New(cfg), New(cfg)
	for i := 0; i < 1000; i++ {
		a.Record(uint64(i), simtime.Time(i))
		b.Record(uint64(i), simtime.Time(i))
	}
	if a.Seen() != b.Seen() {
		t.Fatal("seen counts differ")
	}
	est, err := Extract(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Identical streams at identical instants: zero mean, zero loss, all
	// non-empty buckets usable.
	if est.MeanDelay != 0 || est.LossEstimate != 0 {
		t.Fatalf("est = %+v", est)
	}
}

func BenchmarkRecord(b *testing.B) {
	l := New(DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Record(uint64(i), simtime.Time(i))
	}
}
