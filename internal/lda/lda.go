// Package lda implements the Lossy Difference Aggregator of Kompella et al.
// (SIGCOMM 2009), the aggregate-latency baseline the paper positions RLI/
// RLIR against (§5: "LDA enables high-fidelity ... measurements ... [but]
// only provides aggregate measurements").
//
// Sender and receiver maintain mirrored banks of (timestamp-sum, counter)
// buckets. Every packet is hashed to a bucket per bank and, bank-dependent,
// sampled; the sender adds its transmit timestamp, the receiver its receive
// timestamp. After an interval, buckets whose packet counts agree on both
// sides ("usable" buckets — no loss touched them) contribute
// (receiverSum - senderSum) / count to the average-delay estimate. Multiple
// banks with geometrically decreasing sampling rates keep some buckets
// usable across a wide range of loss rates.
package lda

import (
	"fmt"
	"time"

	"github.com/netmeasure/rlir/internal/simtime"
)

// Config shapes an LDA.
type Config struct {
	// Banks is the number of sampling banks; bank i samples packets with
	// probability 1/SampleBase^i.
	Banks int
	// Rows is the number of buckets per bank.
	Rows int
	// SampleBase is the geometric sampling factor between banks.
	SampleBase int
	// Seed keys the bucket and sampling hashes. Sender and receiver MUST
	// share it (they are synchronized data structures).
	Seed uint64
}

// DefaultConfig mirrors the SIGCOMM '09 evaluation scale-down: 4 banks of
// 64 buckets with 16x sampling steps.
func DefaultConfig() Config {
	return Config{Banks: 4, Rows: 64, SampleBase: 16, Seed: 0xDA7A}
}

// Validate checks parameters.
func (c Config) Validate() error {
	if c.Banks < 1 || c.Rows < 1 {
		return fmt.Errorf("lda: need at least one bank and row, got %dx%d", c.Banks, c.Rows)
	}
	if c.SampleBase < 2 {
		return fmt.Errorf("lda: sample base %d < 2", c.SampleBase)
	}
	return nil
}

type bucket struct {
	sum   int64 // sum of timestamps, ns
	count uint64
}

// LDA is one side's aggregator. Build identical twins with New at sender
// and receiver.
type LDA struct {
	cfg   Config
	banks [][]bucket
	seen  uint64
}

// New builds an LDA; it panics on invalid configuration.
func New(cfg Config) *LDA {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	banks := make([][]bucket, cfg.Banks)
	for i := range banks {
		banks[i] = make([]bucket, cfg.Rows)
	}
	return &LDA{cfg: cfg, banks: banks}
}

// splitmix64 is the shared deterministic hash.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Record folds a packet identified by id (any value identical at both
// sides, e.g. an invariant header hash) observed at instant at.
func (l *LDA) Record(id uint64, at simtime.Time) {
	l.seen++
	h := splitmix64(id ^ l.cfg.Seed)
	rate := uint64(1)
	for b := 0; b < l.cfg.Banks; b++ {
		// Sample bank b with probability 1/rate using independent bits.
		sampleBits := splitmix64(h ^ uint64(b)*0xC0FFEE)
		if rate > 1 && sampleBits%rate != 0 {
			rate *= uint64(l.cfg.SampleBase)
			continue
		}
		row := splitmix64(h^0xB00C^uint64(b)) % uint64(l.cfg.Rows)
		l.banks[b][row].sum += int64(at)
		l.banks[b][row].count++
		rate *= uint64(l.cfg.SampleBase)
	}
}

// Seen returns packets recorded.
func (l *LDA) Seen() uint64 { return l.seen }

// Estimate is the interval result extracted from a sender/receiver pair.
type Estimate struct {
	// MeanDelay is the average one-way delay over usable buckets.
	MeanDelay time.Duration
	// UsablePackets is the packet count contributing to MeanDelay.
	UsablePackets uint64
	// UsableBuckets / TotalBuckets describe sketch health.
	UsableBuckets int
	TotalBuckets  int
	// LossEstimate is the fraction of sender-side sampled packets missing
	// at the receiver.
	LossEstimate float64
}

// Extract computes the delay estimate from mirrored sender and receiver
// aggregators. Both must share Config.
func Extract(sender, receiver *LDA) (Estimate, error) {
	if sender.cfg != receiver.cfg {
		return Estimate{}, fmt.Errorf("lda: mismatched configurations")
	}
	var est Estimate
	var sumDiff int64
	var sentSampled, lostSampled uint64
	for b := range sender.banks {
		for r := range sender.banks[b] {
			s, rcv := sender.banks[b][r], receiver.banks[b][r]
			est.TotalBuckets++
			sentSampled += s.count
			if s.count == rcv.count && s.count > 0 {
				est.UsableBuckets++
				est.UsablePackets += s.count
				sumDiff += rcv.sum - s.sum
			} else if s.count > rcv.count {
				lostSampled += s.count - rcv.count
			}
		}
	}
	if est.UsablePackets > 0 {
		est.MeanDelay = time.Duration(sumDiff / int64(est.UsablePackets))
	}
	if sentSampled > 0 {
		est.LossEstimate = float64(lostSampled) / float64(sentSampled)
	}
	return est, nil
}

func (e Estimate) String() string {
	return fmt.Sprintf("lda{mean=%v pkts=%d usable=%d/%d loss=%.4f}",
		e.MeanDelay, e.UsablePackets, e.UsableBuckets, e.TotalBuckets, e.LossEstimate)
}
