// Package lpm implements a longest-prefix-match table over IPv4 prefixes as
// a binary trie.
//
// RLIR receivers use LPM twice (paper §3.1): upstream, to identify which ToR
// a regular packet originated from ("upstream RLI receivers need to perform
// simple IP prefix matching"); downstream, to separate upstream senders from
// core-facing ones before applying marking or reverse-ECMP resolution.
// Switches also use it as their forwarding table.
package lpm

import (
	"fmt"
	"strings"

	"github.com/netmeasure/rlir/internal/packet"
)

// Table maps IPv4 prefixes to values of type V with longest-prefix-match
// lookup. The zero value... is not usable; create one with New.
type Table[V any] struct {
	root *node[V]
	size int
}

type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
}

// New returns an empty table.
func New[V any]() *Table[V] {
	return &Table[V]{root: &node[V]{}}
}

// Len returns the number of installed prefixes.
func (t *Table[V]) Len() int { return t.size }

func bit(a packet.Addr, i int) int {
	return int(uint32(a)>>(31-uint(i))) & 1
}

// Insert installs or replaces the value for prefix p. It reports whether the
// prefix was newly added (false means an existing entry was replaced).
func (t *Table[V]) Insert(p packet.Prefix, v V) bool {
	if p.Len < 0 || p.Len > 32 {
		panic(fmt.Sprintf("lpm: invalid prefix length %d", p.Len))
	}
	n := t.root
	for i := 0; i < p.Len; i++ {
		b := bit(p.Addr, i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	added := !n.set
	n.val, n.set = v, true
	if added {
		t.size++
	}
	return added
}

// Lookup returns the value of the longest installed prefix containing a.
func (t *Table[V]) Lookup(a packet.Addr) (V, bool) {
	var (
		best  V
		found bool
	)
	n := t.root
	for i := 0; ; i++ {
		if n.set {
			best, found = n.val, true
		}
		if i == 32 {
			break
		}
		n = n.child[bit(a, i)]
		if n == nil {
			break
		}
	}
	return best, found
}

// LookupPrefix returns the value installed for exactly p, if any.
func (t *Table[V]) LookupPrefix(p packet.Prefix) (V, bool) {
	n := t.root
	for i := 0; i < p.Len; i++ {
		n = n.child[bit(p.Addr, i)]
		if n == nil {
			var zero V
			return zero, false
		}
	}
	if !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Remove deletes the entry for exactly p and reports whether it existed.
// Interior nodes are not pruned; tables in this codebase are built once and
// queried millions of times, so reclaiming a handful of nodes is not worth
// the code.
func (t *Table[V]) Remove(p packet.Prefix) bool {
	n := t.root
	for i := 0; i < p.Len; i++ {
		n = n.child[bit(p.Addr, i)]
		if n == nil {
			return false
		}
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// Walk visits every installed (prefix, value) pair in lexicographic bit
// order. Returning false from fn stops the walk.
func (t *Table[V]) Walk(fn func(p packet.Prefix, v V) bool) {
	t.walk(t.root, 0, 0, fn)
}

func (t *Table[V]) walk(n *node[V], addr uint32, depth int, fn func(p packet.Prefix, v V) bool) bool {
	if n == nil {
		return true
	}
	if n.set {
		if !fn(packet.Prefix{Addr: packet.Addr(addr), Len: depth}, n.val) {
			return false
		}
	}
	if depth == 32 {
		return true
	}
	if !t.walk(n.child[0], addr, depth+1, fn) {
		return false
	}
	return t.walk(n.child[1], addr|1<<(31-uint(depth)), depth+1, fn)
}

// String lists the table contents, one prefix per line.
func (t *Table[V]) String() string {
	var b strings.Builder
	t.Walk(func(p packet.Prefix, v V) bool {
		fmt.Fprintf(&b, "%s -> %v\n", p, v)
		return true
	})
	return b.String()
}
