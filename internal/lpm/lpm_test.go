package lpm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/netmeasure/rlir/internal/packet"
)

func pfx(s string) packet.Prefix { return packet.MustParsePrefix(s) }
func addr(s string) packet.Addr  { return packet.MustParseAddr(s) }

func TestLookupLongestMatch(t *testing.T) {
	tb := New[string]()
	tb.Insert(pfx("0.0.0.0/0"), "default")
	tb.Insert(pfx("10.0.0.0/8"), "ten")
	tb.Insert(pfx("10.1.0.0/16"), "ten-one")
	tb.Insert(pfx("10.1.2.0/24"), "ten-one-two")

	cases := []struct {
		a    string
		want string
	}{
		{"10.1.2.3", "ten-one-two"},
		{"10.1.3.3", "ten-one"},
		{"10.2.0.1", "ten"},
		{"192.168.0.1", "default"},
	}
	for _, c := range cases {
		got, ok := tb.Lookup(addr(c.a))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %q/%v, want %q", c.a, got, ok, c.want)
		}
	}
}

func TestLookupMissWithoutDefault(t *testing.T) {
	tb := New[int]()
	tb.Insert(pfx("10.0.0.0/8"), 1)
	if _, ok := tb.Lookup(addr("11.0.0.1")); ok {
		t.Fatal("lookup outside installed prefixes should miss")
	}
}

func TestInsertReplace(t *testing.T) {
	tb := New[int]()
	if !tb.Insert(pfx("10.0.0.0/8"), 1) {
		t.Fatal("first insert should report added")
	}
	if tb.Insert(pfx("10.0.0.0/8"), 2) {
		t.Fatal("second insert should report replaced")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tb.Len())
	}
	got, _ := tb.Lookup(addr("10.9.9.9"))
	if got != 2 {
		t.Fatalf("value = %d, want replacement 2", got)
	}
}

func TestRemove(t *testing.T) {
	tb := New[int]()
	tb.Insert(pfx("10.0.0.0/8"), 1)
	tb.Insert(pfx("10.1.0.0/16"), 2)
	if !tb.Remove(pfx("10.1.0.0/16")) {
		t.Fatal("remove existing should report true")
	}
	if tb.Remove(pfx("10.1.0.0/16")) {
		t.Fatal("remove twice should report false")
	}
	if tb.Remove(pfx("172.16.0.0/12")) {
		t.Fatal("remove absent should report false")
	}
	got, ok := tb.Lookup(addr("10.1.2.3"))
	if !ok || got != 1 {
		t.Fatalf("after remove, Lookup = %d/%v, want 1", got, ok)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestLookupPrefixExact(t *testing.T) {
	tb := New[int]()
	tb.Insert(pfx("10.1.0.0/16"), 5)
	if v, ok := tb.LookupPrefix(pfx("10.1.0.0/16")); !ok || v != 5 {
		t.Fatalf("exact lookup = %d/%v", v, ok)
	}
	if _, ok := tb.LookupPrefix(pfx("10.1.0.0/17")); ok {
		t.Fatal("longer prefix should miss exact lookup")
	}
	if _, ok := tb.LookupPrefix(pfx("10.0.0.0/8")); ok {
		t.Fatal("shorter prefix should miss exact lookup")
	}
}

func TestZeroLengthPrefixIsDefaultRoute(t *testing.T) {
	tb := New[string]()
	tb.Insert(packet.Prefix{Len: 0}, "everything")
	for _, a := range []string{"0.0.0.0", "255.255.255.255", "10.1.2.3"} {
		if got, ok := tb.Lookup(addr(a)); !ok || got != "everything" {
			t.Fatalf("Lookup(%s) = %q/%v", a, got, ok)
		}
	}
}

func TestHostRoute(t *testing.T) {
	tb := New[int]()
	tb.Insert(pfx("10.1.2.3/32"), 9)
	if v, ok := tb.Lookup(addr("10.1.2.3")); !ok || v != 9 {
		t.Fatal("host route should match exactly")
	}
	if _, ok := tb.Lookup(addr("10.1.2.2")); ok {
		t.Fatal("host route should not match neighbours")
	}
}

func TestWalkOrderAndCompleteness(t *testing.T) {
	tb := New[int]()
	entries := []string{"10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/24", "0.0.0.0/0"}
	for i, s := range entries {
		tb.Insert(pfx(s), i)
	}
	var seen []packet.Prefix
	tb.Walk(func(p packet.Prefix, v int) bool {
		seen = append(seen, p)
		return true
	})
	if len(seen) != len(entries) {
		t.Fatalf("walk visited %d entries, want %d", len(seen), len(entries))
	}
	// Early termination.
	count := 0
	tb.Walk(func(p packet.Prefix, v int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early-stop walk visited %d", count)
	}
}

// TestAgainstBruteForce cross-checks LPM against a linear scan over random
// prefix sets: the table must always return the longest covering prefix.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		tb := New[int]()
		var prefixes []packet.Prefix
		for i := 0; i < 100; i++ {
			p := packet.Prefix{Addr: packet.Addr(rng.Uint32()), Len: rng.Intn(33)}
			p = p.Canonical()
			if _, dup := tb.LookupPrefix(p); dup {
				continue
			}
			tb.Insert(p, len(prefixes))
			prefixes = append(prefixes, p)
		}
		for probe := 0; probe < 500; probe++ {
			a := packet.Addr(rng.Uint32())
			bestIdx, bestLen, found := -1, -1, false
			for i, p := range prefixes {
				if p.Contains(a) && p.Len > bestLen {
					bestIdx, bestLen, found = i, p.Len, true
				}
			}
			got, ok := tb.Lookup(a)
			if ok != found {
				t.Fatalf("Lookup(%v) found=%v, brute=%v", a, ok, found)
			}
			if found && got != bestIdx {
				// Equal-length duplicates are impossible (dedup above), so
				// indices must agree.
				t.Fatalf("Lookup(%v) = prefix %d (%v), brute force %d (%v)",
					a, got, prefixes[got], bestIdx, prefixes[bestIdx])
			}
		}
	}
}

func TestInsertLookupProperty(t *testing.T) {
	// Any inserted canonical prefix must be found by addresses inside it
	// unless a longer prefix shadows them — with a single entry there is no
	// shadowing.
	f := func(a uint32, l uint8) bool {
		p := packet.Prefix{Addr: packet.Addr(a), Len: int(l % 33)}.Canonical()
		tb := New[bool]()
		tb.Insert(p, true)
		v, ok := tb.Lookup(p.Addr)
		return ok && v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringSmoke(t *testing.T) {
	tb := New[int]()
	tb.Insert(pfx("10.0.0.0/8"), 1)
	if tb.String() == "" {
		t.Fatal("empty String")
	}
}

func BenchmarkLookup(b *testing.B) {
	tb := New[int]()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		tb.Insert(packet.Prefix{Addr: packet.Addr(rng.Uint32()), Len: 8 + rng.Intn(25)}.Canonical(), i)
	}
	probes := make([]packet.Addr, 1024)
	for i := range probes {
		probes[i] = packet.Addr(rng.Uint32())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(probes[i&1023])
	}
}
