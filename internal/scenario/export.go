package scenario

import (
	"sort"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// Trace is one scenario run's captured export stream: exactly what the
// run's measurement instruments shipped (or would ship) to a collection
// service, in production order. It is the replay unit of cmd/loadgen — a
// client can re-encode Samples and Records as wire frames and drive a
// running rlird with real scenario traffic at any rate — and the
// equivalence anchor for the service tests: streaming Samples into any
// collector yields per-flow aggregates bit-identical to Result.Fleet,
// because they are the same samples in the same per-flow order.
type Trace struct {
	// Scenario and Seed identify the run that produced the capture.
	Scenario string
	Seed     int64
	// Samples is every per-packet estimate the RLI receivers streamed into
	// the run's collector plane, in estimate order (per-flow order is what
	// collector determinism depends on; Samples preserves it exactly).
	Samples []collector.Sample
	// Records is the NetFlow exporter view of the measured segment's
	// delivered regular traffic: one record per flow observed at the
	// segment-end measurement points, sorted by flow key.
	Records []netflow.Record
	// Result is the run's full batch outcome, for comparing a replay
	// consumer against the engine that produced the stream.
	Result *Result
}

// Export runs the scenario once, capturing its export stream alongside the
// normal result. The run is bit-identical to RunSeed(spec, seed) — capture
// taps only copy what existing hooks already observe.
func Export(spec Spec, seed int64) (*Trace, error) {
	cap := newCapture()
	res, err := runSeed(spec, seed, cap)
	if err != nil {
		return nil, err
	}
	return cap.finish(spec.Name, seed, res), nil
}

// capture accumulates the export stream during a run. A nil *capture is
// valid and records nothing, so the engine's hot-path hooks call its
// methods unconditionally.
type capture struct {
	samples []collector.Sample
	meter   *netflow.Meter
}

func newCapture() *capture {
	return &capture{meter: netflow.NewMeter(netflow.Config{})}
}

// addSample records one streamed estimate.
func (c *capture) addSample(key packet.FlowKey, est, truth time.Duration) {
	if c == nil {
		return
	}
	c.samples = append(c.samples, collector.Sample{Key: key, Est: est, True: truth})
}

// observe meters one delivered regular packet at a segment-end point.
func (c *capture) observe(p *packet.Packet, now simtime.Time) {
	if c == nil {
		return
	}
	c.meter.Observe(p.Key, p.Size, now)
}

// finish flushes the meter and assembles the trace. Records are sorted by
// flow key: the meter's map iteration order must not leak into the
// deterministic artifact.
func (c *capture) finish(name string, seed int64, res *Result) *Trace {
	recs := c.meter.Snapshot()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key.Less(recs[j].Key) })
	return &Trace{Scenario: name, Seed: seed, Samples: c.samples, Records: recs, Result: res}
}
