package scenario

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestSinglePassEquivalenceFatTree is the single-pass contract: attaching
// the full estimator set to a fat-tree run yields bit-identical RLI
// results to attaching RLI alone. Baseline estimators are passive taps —
// they must not perturb event ordering, receiver state, or the collector
// stream.
func TestSinglePassEquivalenceFatTree(t *testing.T) {
	base := quickSpec()
	base.Deploy.Estimators = []string{"rli"}
	full := quickSpec()
	full.Deploy.Estimators = []string{"rli", "lda", "netflow-sample", "multiflow", "hash-sample", "periodic-sample"}
	assertRLIEquivalent(t, base, full)
}

// TestSinglePassEquivalenceTandem pins the same contract on the tandem
// path, where the baselines ride the harness's sender/receiver point taps.
func TestSinglePassEquivalenceTandem(t *testing.T) {
	mk := func(ests []string) Spec {
		return Spec{
			Version:  SpecVersion,
			Name:     "tandem-equiv",
			Topology: TopologySpec{Kind: TopoTandem, LinkBps: 200e6, QueueBytes: 96 << 10},
			Workload: WorkloadSpec{LoadFrac: 0.22, CrossModel: CrossUniform, CrossUtil: 0.9},
			Deploy:   DeploymentSpec{Scheme: SchemeStatic, StaticN: 50, Estimators: ests},
			Duration: 80 * time.Millisecond,
			Seed:     1,
		}
	}
	assertRLIEquivalent(t, mk([]string{"rli"}), mk(nil))
}

// assertRLIEquivalent runs both specs and requires every RLI-derived field
// to match exactly.
func assertRLIEquivalent(t *testing.T, alone, withBaselines Spec) {
	t.Helper()
	a, err := Run(alone)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(withBaselines)
	if err != nil {
		t.Fatal(err)
	}
	if a.Injected != b.Injected || a.Overall != b.Overall || a.Misattribution != b.Misattribution {
		t.Fatalf("workload or overall accuracy diverged:\n%s\n%s", a.Render(), b.Render())
	}
	if a.EstP50 != b.EstP50 || a.EstP99 != b.EstP99 || a.TrueP50 != b.TrueP50 || a.TrueP99 != b.TrueP99 {
		t.Fatalf("delay tails diverged: %v/%v/%v/%v vs %v/%v/%v/%v",
			a.EstP50, a.EstP99, a.TrueP50, a.TrueP99, b.EstP50, b.EstP99, b.TrueP50, b.TrueP99)
	}
	if !reflect.DeepEqual(a.Routers, b.Routers) {
		t.Fatalf("per-router stats diverged:\n%+v\n%+v", a.Routers, b.Routers)
	}
	if !reflect.DeepEqual(a.Segments, b.Segments) {
		t.Fatalf("per-segment stats diverged:\n%+v\n%+v", a.Segments, b.Segments)
	}
	if a.Samples != b.Samples || !reflect.DeepEqual(a.Fleet, b.Fleet) {
		t.Fatalf("collector stream diverged: %d/%d samples, %d/%d fleet flows",
			a.Samples, b.Samples, len(a.Fleet), len(b.Fleet))
	}
	if len(a.Comparison) != 1 {
		t.Fatalf("rli-only run has %d comparison rows, want 1", len(a.Comparison))
	}
	if len(b.Comparison) != 6 {
		t.Fatalf("full run has %d comparison rows, want 6", len(b.Comparison))
	}
	ra, rb := a.Comparison[0], b.Comparison[0]
	if ra != rb {
		t.Fatalf("rli comparison row diverged:\n%+v\n%+v", ra, rb)
	}
}

// TestComparisonRowsFollowSpec pins the spec-declared estimator list: the
// comparison table has exactly the requested mechanisms in effective
// order, rli always first, and each baseline actually observed the run.
func TestComparisonRowsFollowSpec(t *testing.T) {
	s := quickSpec()
	s.Deploy.Estimators = []string{"netflow-sample", "rli"}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Comparison) != 2 || res.Comparison[0].Estimator != "rli" || res.Comparison[1].Estimator != "netflow-sample" {
		t.Fatalf("comparison rows %+v, want [rli netflow-sample]", res.Comparison)
	}
	ns := res.Comparison[1]
	if ns.Overhead.SampledRecords == 0 {
		t.Fatal("sampling baseline observed nothing; shared taps are not attached")
	}
	if rli := res.Comparison[0]; rli.Flows == 0 || rli.Overhead.InjectedBytes == 0 {
		t.Fatalf("rli row empty: %+v", rli)
	}
	if _, ok := res.Estimator("netflow-sample"); !ok {
		t.Fatal("Estimator lookup by name failed")
	}
}

// TestComparisonScoresAgainstSharedTruth sanity-checks the comparison
// semantics on a real run: the RLI row's aggregate estimate is close to
// ground truth, LDA produces an aggregate-only row, and multiflow's
// quantized estimates carry the documented handicap.
func TestComparisonScoresAgainstSharedTruth(t *testing.T) {
	s := quickSpec()
	s.Duration = 80 * time.Millisecond
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	rli, ok := res.Estimator("rli")
	if !ok || math.IsNaN(rli.AggRelErr) {
		t.Fatalf("rli row missing or unscored: %+v", rli)
	}
	lda, ok := res.Estimator("lda")
	if !ok {
		t.Fatal("lda row missing")
	}
	if !math.IsNaN(lda.MedianRelErr) || lda.Flows != 0 {
		t.Fatalf("lda must be aggregate-only, got %+v", lda)
	}
	if math.IsNaN(lda.AggRelErr) {
		t.Fatal("lda aggregate unscored")
	}
	mf, ok := res.Estimator("multiflow")
	if !ok || mf.Flows == 0 {
		t.Fatalf("multiflow row missing or empty: %+v", mf)
	}
}

// TestUnknownEstimatorRejected pins spec validation: an unknown estimator
// name fails loudly, listing the registered ones.
func TestUnknownEstimatorRejected(t *testing.T) {
	s := quickSpec()
	s.Deploy.Estimators = []string{"bogus"}
	err := s.Validate()
	if err == nil {
		t.Fatal("unknown estimator accepted")
	}
	for _, want := range []string{"bogus", "rli", "lda", "netflow-sample", "multiflow"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// TestMultiResultEstimatorCIs pins the across-seed fold: every estimator
// row aggregates with the right NaN handling (LDA's per-flow metrics fold
// to N = 0, not NaN means).
func TestMultiResultEstimatorCIs(t *testing.T) {
	s := quickSpec()
	s.Duration = 40 * time.Millisecond
	mr, err := RunMulti(s, MultiOpts{Seeds: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Estimators) != 6 {
		t.Fatalf("%d estimator CI rows, want 6", len(mr.Estimators))
	}
	byName := map[string]EstimatorCI{}
	for _, e := range mr.Estimators {
		byName[e.Name] = e
	}
	if rli := byName["rli"]; rli.MedianRelErr.N != 2 || math.IsNaN(rli.MedianRelErr.Mean) {
		t.Fatalf("rli across-seed metric %+v", rli.MedianRelErr)
	}
	if lda := byName["lda"]; lda.MedianRelErr.N != 0 {
		t.Fatalf("lda per-flow metric folded NaNs: %+v", lda.MedianRelErr)
	}
	out := mr.Render()
	if !strings.Contains(out, "estimator comparison") || !strings.Contains(out, "netflow-sample") {
		t.Fatalf("multi render missing estimator table:\n%s", out)
	}
}
