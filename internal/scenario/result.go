package scenario

import (
	"fmt"
	"strings"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/core"
	"github.com/netmeasure/rlir/internal/measure"
	"github.com/netmeasure/rlir/internal/stats"
)

// RouterStats is one measured router's view: the accuracy summary of every
// estimate its receiver produced plus the estimated and ground-truth delay
// tails of the segment it terminates.
type RouterStats struct {
	// Router is the node name ("core0.1", "tor3.0").
	Router string
	// Segment describes what the receiver measures ("tor-uplink->core",
	// "core->tor").
	Segment string
	// Summary is the per-flow accuracy at this router.
	Summary core.Summary
	// Tails of the per-packet estimated and true delay distributions.
	EstP50, EstP99   time.Duration
	TrueP50, TrueP99 time.Duration
}

// SegmentStats is one core->monitored-ToR path segment, grouped from a
// downstream receiver's flows by which core each flow traversed. This is
// the view a fault on one core's down-link shows up in.
type SegmentStats struct {
	// Name is "coreJ.I->torP.E".
	Name string
	// Flows and Estimates count the segment's traffic.
	Flows     int
	Estimates int64
	// EstMean / TrueMean are estimate-weighted mean delays over the
	// segment's flows.
	EstMean, TrueMean time.Duration
	// MedianRelErr is the median per-flow relative error.
	MedianRelErr float64
}

// Result is one scenario run's outcome.
type Result struct {
	Spec Spec
	// Seed is the seed this run actually used (differs from Spec.Seed in
	// multi-seed sweeps).
	Seed int64
	// Injected counts workload packets offered to the network.
	Injected int
	// Overall aggregates every monitored downstream flow.
	Overall core.Summary
	// EstP50/EstP99/TrueP50/TrueP99 are the downstream per-packet delay
	// tails across all monitored routers.
	EstP50, EstP99   time.Duration
	TrueP50, TrueP99 time.Duration
	// TrueAggMean is the ground-truth aggregate mean delay over every
	// monitored downstream packet — the reference every estimator's
	// aggregate is ultimately chasing (and the scale detection scores
	// shifts against).
	TrueAggMean time.Duration
	// Routers lists per-router accuracy (cores first, then monitored ToRs),
	// sorted by name.
	Routers []RouterStats
	// Segments lists per core->ToR segment statistics at monitored ToRs,
	// sorted by name. Empty on tandem topologies.
	Segments []SegmentStats
	// Misattribution is the fraction of classified downstream packets whose
	// demux decision disagrees with ground truth. Zero on tandem (a single
	// stream cannot be misattributed).
	Misattribution float64
	// HotLinkUtil is the highest achieved utilization over monitored ToR
	// host links (tandem: the bottleneck link) — the congestion the
	// scenario manufactured.
	HotLinkUtil float64
	// Fleet is the per-flow aggregate table streamed through the sharded
	// collector plane, sorted by flow key.
	Fleet []collector.FlowAgg
	// Samples counts estimates streamed into the collector.
	Samples uint64
	// Comparison is the estimator comparison table: every mechanism the
	// spec requested (Spec.EffectiveEstimators order, RLI first), measured
	// on this run's single simulation pass and scored against shared
	// ground truth.
	Comparison []measure.Comparison
	// Telemetry, when the spec sets Spec.Telemetry, re-scores every
	// mechanism after seeded export-frame loss — the accuracy cost of a
	// lossy collection path, next to the lossless Comparison.
	Telemetry *TelemetryReport
	// FleetReport, when the spec sets Spec.Fleet, proves the partitioned
	// collection tier's exact-merge equivalence and (with a failure
	// injected) quantifies per-estimator accuracy under instance loss.
	FleetReport *FleetReport
	// Detection, when the spec sets Spec.Adversary, scores every estimator
	// on whether it exposed the compromised switch's hidden delay against a
	// paired clean run at the same seed.
	Detection *DetectionReport
	// RepFlow, when the spec sets Workload.Replicate, scores the replicated
	// workload's first-arrival latency and path diversity.
	RepFlow *RepFlowReport
	// LinkTrace, when the spec sets Spec.LinkTrace, summarizes the replayed
	// link time series and the drops it caused.
	LinkTrace *LinkTraceReport
}

// Estimator returns the named mechanism's comparison row.
func (r *Result) Estimator(name string) (measure.Comparison, bool) {
	for _, c := range r.Comparison {
		if c.Estimator == name {
			return c, true
		}
	}
	return measure.Comparison{}, false
}

// Router returns the named router's stats.
func (r *Result) Router(name string) (RouterStats, bool) {
	for _, rs := range r.Routers {
		if rs.Router == name {
			return rs, true
		}
	}
	return RouterStats{}, false
}

// Segment returns the named segment's stats.
func (r *Result) Segment(name string) (SegmentStats, bool) {
	for _, s := range r.Segments {
		if s.Name == name {
			return s, true
		}
	}
	return SegmentStats{}, false
}

// Render formats the result as a text report.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== scenario %s (seed %d) ==\n", r.Spec.Name, r.Seed)
	fmt.Fprintf(&b, "injected=%d flows=%d estimates=%d samples=%d misattribution=%.4f hotLinkUtil=%.2f\n",
		r.Injected, r.Overall.Flows, r.Overall.Estimates, r.Samples, r.Misattribution, r.HotLinkUtil)
	fmt.Fprintf(&b, "overall: medianRelErr=%.4f p90RelErr=%.4f under10%%=%.1f%%\n",
		r.Overall.MedianRelErr, r.Overall.P90RelErr, r.Overall.FracUnder10Pct*100)
	fmt.Fprintf(&b, "delay tails: est p50=%v p99=%v | true p50=%v p99=%v\n",
		r.EstP50, r.EstP99, r.TrueP50, r.TrueP99)
	if len(r.Routers) > 0 {
		fmt.Fprintf(&b, "%-10s %-18s %8s %10s %12s %12s %12s\n",
			"router", "segment", "flows", "medianErr", "estP50", "estP99", "trueP99")
		for _, rs := range r.Routers {
			fmt.Fprintf(&b, "%-10s %-18s %8d %10.4f %12v %12v %12v\n",
				rs.Router, rs.Segment, rs.Summary.Flows, rs.Summary.MedianRelErr,
				rs.EstP50, rs.EstP99, rs.TrueP99)
		}
	}
	if len(r.Segments) > 0 {
		fmt.Fprintf(&b, "%-22s %8s %10s %12s %12s\n", "segment", "flows", "medianErr", "estMean", "trueMean")
		for _, s := range r.Segments {
			fmt.Fprintf(&b, "%-22s %8d %10.4f %12v %12v\n", s.Name, s.Flows, s.MedianRelErr, s.EstMean, s.TrueMean)
		}
	}
	if len(r.Comparison) > 0 {
		b.WriteString("estimator comparison (single pass, shared ground truth):\n")
		b.WriteString(measure.RenderComparisons(r.Comparison))
	}
	if r.Telemetry != nil {
		b.WriteString(r.Telemetry.Render())
	}
	if r.FleetReport != nil {
		b.WriteString(r.FleetReport.Render())
	}
	if r.LinkTrace != nil {
		b.WriteString(r.LinkTrace.Render())
	}
	if r.RepFlow != nil {
		b.WriteString(r.RepFlow.Render())
	}
	if r.Detection != nil {
		b.WriteString(r.Detection.Render())
	}
	return b.String()
}

// routerRec accumulates one receiver's per-packet estimate/truth tails while
// the run streams them into the collector.
type routerRec struct {
	estH, trueH stats.Histogram
}

func (rr *routerRec) record(est, truth time.Duration) {
	rr.estH.Record(est)
	rr.trueH.Record(truth)
}

func (rr *routerRec) fill(rs *RouterStats) {
	rs.EstP50 = rr.estH.Quantile(0.5)
	rs.EstP99 = rr.estH.Quantile(0.99)
	rs.TrueP50 = rr.trueH.Quantile(0.5)
	rs.TrueP99 = rr.trueH.Quantile(0.99)
}
