package scenario

import (
	"fmt"
	"strings"
	"time"

	"github.com/netmeasure/rlir/internal/trace"
)

// linkTraceSeedSalt decorrelates the link emulator's drop hashes from every
// other consumer of the run seed.
const linkTraceSeedSalt = 0x1f3d_6c2a_9b58_e407

// LinkTraceReport summarizes what replaying a recorded link time series did
// to the emulated core down-link.
type LinkTraceReport struct {
	// Link names the emulated down-link ("core0.0->pod3").
	Link string
	// Rows counts the time-series rows replayed; Span is the offset of the
	// last row (after which it holds).
	Rows int
	Span time.Duration
	// MaxDelay / MaxLoss are the largest extra delay and loss probability
	// any row applies.
	MaxDelay time.Duration
	MaxLoss  float64
	// Drops counts packets the emulated link dropped after transmission.
	Drops uint64
}

// Render formats the report as a text block.
func (l *LinkTraceReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "link trace replay on %s: rows=%d span=%v maxDelay=%v maxLoss=%.3f drops=%d\n",
		l.Link, l.Rows, l.Span, l.MaxDelay, l.MaxLoss, l.Drops)
	return b.String()
}

// buildLinkTraceReport folds the replayed trace and the port's drop counter
// into the report.
func buildLinkTraceReport(l LinkTraceSpec, lt *trace.LinkTrace, drops uint64) *LinkTraceReport {
	rep := &LinkTraceReport{
		Link:  fmt.Sprintf("core%d.%d->pod%d", l.CoreJ, l.CoreI, l.DownPod),
		Rows:  len(lt.Samples),
		Span:  lt.Duration(),
		Drops: drops,
	}
	for _, s := range lt.Samples {
		if s.Delay > rep.MaxDelay {
			rep.MaxDelay = s.Delay
		}
		if s.Loss > rep.MaxLoss {
			rep.MaxLoss = s.Loss
		}
	}
	return rep
}
