package scenario

import (
	"fmt"
	"strings"
	"time"

	"github.com/netmeasure/rlir/internal/simtime"
)

// repPair tracks one replicated packet pair (RepFlow-style) from injection
// to the monitored edge: the original and replica packet IDs, the shared
// injection instant, and whether ECMP resolved the two copies onto distinct
// core paths.
type repPair struct {
	orig, rep uint64
	at        simtime.Time
	distinct  bool
}

// RepFlowReport scores a replicated workload (Workload.Replicate): every
// flow's packets are sent twice, the replica under a source port differing
// in one bit, and the logical latency is the first arrival's — the
// replication trick RepFlow applies to short flows, here used to measure how
// much path diversity buys at the measured segment.
type RepFlowReport struct {
	// Pairs counts replicated packet pairs injected.
	Pairs int
	// Matched pairs had both copies observed at the monitored edge;
	// LostPairs had at least one copy unobserved (dropped or unmonitored).
	Matched   int
	LostPairs int
	// DistinctPathFrac is the fraction of pairs whose two copies ECMP
	// placed on different core paths — the diversity replication bought.
	DistinctPathFrac float64
	// ReplicaWinFrac is the fraction of matched pairs where the replica
	// arrived strictly before the original.
	ReplicaWinFrac float64
	// PrimaryMean / ReplicaMean are the mean injection-to-edge latencies of
	// each copy over matched pairs; FirstArrivalMean is the mean of the
	// per-pair minimum — the logical flow's latency under replication,
	// never above either per-copy mean.
	PrimaryMean      time.Duration
	ReplicaMean      time.Duration
	FirstArrivalMean time.Duration
}

// Render formats the report as a text block.
func (r *RepFlowReport) Render() string {
	var b strings.Builder
	b.WriteString("flow replication (RepFlow-style, first arrival wins):\n")
	fmt.Fprintf(&b, "pairs=%d matched=%d lost=%d distinctPaths=%.3f replicaWins=%.3f\n",
		r.Pairs, r.Matched, r.LostPairs, r.DistinctPathFrac, r.ReplicaWinFrac)
	fmt.Fprintf(&b, "latency: primary=%v replica=%v firstArrival=%v\n",
		r.PrimaryMean, r.ReplicaMean, r.FirstArrivalMean)
	return b.String()
}

// buildRepFlow folds the injection-time pair log and the observed edge
// arrivals into the report. Pairs are iterated in injection order and the
// arrival map is only ever read, so the fold is deterministic.
func buildRepFlow(pairs []repPair, arrivals map[uint64]simtime.Time) *RepFlowReport {
	rep := &RepFlowReport{Pairs: len(pairs)}
	distinct := 0
	wins := 0
	var primary, replica, first float64
	for _, pr := range pairs {
		if pr.distinct {
			distinct++
		}
		a1, ok1 := arrivals[pr.orig]
		a2, ok2 := arrivals[pr.rep]
		if !ok1 || !ok2 {
			rep.LostPairs++
			continue
		}
		rep.Matched++
		d1 := float64(a1.Sub(pr.at))
		d2 := float64(a2.Sub(pr.at))
		primary += d1
		replica += d2
		if d2 < d1 {
			wins++
			first += d2
		} else {
			first += d1
		}
	}
	if rep.Pairs > 0 {
		rep.DistinctPathFrac = float64(distinct) / float64(rep.Pairs)
	}
	if rep.Matched > 0 {
		n := float64(rep.Matched)
		rep.ReplicaWinFrac = float64(wins) / n
		rep.PrimaryMean = time.Duration(primary / n)
		rep.ReplicaMean = time.Duration(replica / n)
		rep.FirstArrivalMean = time.Duration(first / n)
	}
	return rep
}
