package scenario

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

func validSpec() Spec {
	s := DefaultSpec()
	s.Duration = 50 * time.Millisecond
	return s
}

func TestValidateAcceptsDefault(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
}

// TestValidateRejections walks the spec's whole rejection surface: every
// malformed field must fail validation with a message naming the problem.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string // substring of the expected error
	}{
		{"wrong version", func(s *Spec) { s.Version = 99 }, "version"},
		{"zero duration", func(s *Spec) { s.Duration = 0 }, "duration"},
		{"negative duration", func(s *Spec) { s.Duration = -time.Second }, "duration"},
		{"unknown topology", func(s *Spec) { s.Topology.Kind = "ring" }, "topology kind"},
		{"odd K", func(s *Spec) { s.Topology.K = 5 }, "even"},
		{"K too small", func(s *Spec) { s.Topology.K = 2 }, "core paths"},
		{"K too big", func(s *Spec) { s.Topology.K = 256 }, "address plan"},
		{"negative link rate", func(s *Spec) { s.Topology.LinkBps = -1 }, "rate"},
		{"zero link rate", func(s *Spec) { s.Topology.LinkBps = 0 }, "rate"},
		{"negative propagation", func(s *Spec) { s.Topology.Propagation = -time.Microsecond }, "negative topology delay"},
		{"negative core skew", func(s *Spec) { s.Topology.CoreSkew = -1 }, "negative topology delay"},
		{"negative queue", func(s *Spec) { s.Topology.QueueBytes = -1 }, "queue"},
		{"zero load", func(s *Spec) { s.Workload.LoadFrac = 0 }, "load fraction"},
		{"absurd load", func(s *Spec) { s.Workload.LoadFrac = 5 }, "load fraction"},
		{"negative flow alpha", func(s *Spec) { s.Workload.FlowAlpha = -0.5 }, "flow-length"},
		{"unknown pattern", func(s *Spec) { s.Workload.Pattern = "broadcast" }, "pattern"},
		{"incast without fan-in", func(s *Spec) { s.Workload.Pattern = PatternIncast }, "fan-in"},
		{"incast fan-in too big", func(s *Spec) {
			s.Workload.Pattern = PatternIncast
			s.Workload.IncastFanIn = 1000
		}, "fan-in"},
		{"hotspot without skew", func(s *Spec) { s.Workload.Pattern = PatternHotspot }, "skew"},
		{"hotspot skew over 1", func(s *Spec) {
			s.Workload.Pattern = PatternHotspot
			s.Workload.HotspotSkew = 1.5
		}, "skew"},
		{"burst on without period", func(s *Spec) { s.Workload.BurstOn = time.Millisecond }, "burst"},
		{"burst on exceeds period", func(s *Spec) {
			s.Workload.BurstOn = 2 * time.Millisecond
			s.Workload.BurstPeriod = time.Millisecond
		}, "burst"},
		{"dest pod out of range", func(s *Spec) { s.Workload.DestPod = 4 }, "destination pod"},
		{"dest tor out of range", func(s *Spec) { s.Workload.DestToR = 2 }, "destination ToR"},
		{"unknown scheme", func(s *Spec) { s.Deploy.Scheme = "fibonacci" }, "scheme"},
		{"inverted adaptive gaps", func(s *Spec) {
			s.Deploy.Scheme = SchemeAdaptive
			s.Deploy.MinGap, s.Deploy.MaxGap = 300, 10
		}, "adaptive gaps"},
		{"unknown demux", func(s *Spec) { s.Deploy.Demux = "clairvoyant" }, "demux"},
		{"budget too small", func(s *Spec) { s.Deploy.MaxInstances = 3 }, "budget"},
		{"unknown fault kind", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "power-cut", Start: 1, End: 2}}
		}, "unknown kind"},
		{"fault core out of grid", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: FaultLinkDegrade, CoreJ: 7, RateFactor: 0.5, Start: 1, End: 2}}
		}, "core grid"},
		{"fault agg out of range", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: FaultHopDelay, AggPod: 9, Extra: time.Microsecond, Start: 1, End: 2}}
		}, "aggregation switch"},
		{"fault empty window", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: FaultHopDelay, Extra: time.Microsecond, Start: 5, End: 5}}
		}, "window"},
		{"fault negative start", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: FaultHopDelay, Extra: time.Microsecond, Start: -1, End: 2}}
		}, "window"},
		{"fault past run end", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: FaultHopDelay, Extra: time.Microsecond, Start: 0, End: time.Hour}}
		}, "past"},
		{"degrade factor out of range", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: FaultLinkDegrade, RateFactor: 1.5, Start: 1, End: 2}}
		}, "rate factor"},
		{"degrade pod out of range", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: FaultLinkDegrade, RateFactor: 0.5, DownPod: 9, Start: 1, End: 2}}
		}, "down-pod"},
		{"hop delay without extra", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: FaultHopDelay, Start: 1, End: 2}}
		}, "non-positive delay"},
		{"overlapping fault windows", func(s *Spec) {
			s.Faults = []FaultSpec{
				{Kind: FaultHopDelay, Extra: time.Microsecond, Start: 0, End: 10 * time.Millisecond},
				{Kind: FaultHopDelay, Extra: 2 * time.Microsecond, Start: 5 * time.Millisecond, End: 15 * time.Millisecond},
			}
		}, "overlaps"},
		{"faults on tandem", func(s *Spec) {
			s.Topology = TopologySpec{Kind: TopoTandem, LinkBps: 1e9}
			s.Faults = []FaultSpec{{Kind: FaultHopDelay, Extra: time.Microsecond, Start: 1, End: 2}}
		}, "fattree"},
		{"unknown cross model", func(s *Spec) {
			s.Topology = TopologySpec{Kind: TopoTandem, LinkBps: 1e9}
			s.Workload.CrossModel = "fractal"
		}, "cross model"},
		{"cross util over 1", func(s *Spec) {
			s.Topology = TopologySpec{Kind: TopoTandem, LinkBps: 1e9}
			s.Workload.CrossUtil = 1.2
		}, "cross utilization"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted a spec with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestFaultWindowsSameSiteOnly pins that the overlap check is per site:
// simultaneous faults at different cores are legal.
func TestFaultWindowsSameSiteOnly(t *testing.T) {
	s := validSpec()
	s.Faults = []FaultSpec{
		{Kind: FaultHopDelay, AggPod: 0, AggIdx: 0, Extra: time.Microsecond, Start: 0, End: 10 * time.Millisecond},
		{Kind: FaultHopDelay, AggPod: 1, AggIdx: 1, Extra: time.Microsecond, Start: 0, End: 10 * time.Millisecond},
		{Kind: FaultLinkDegrade, CoreJ: 0, CoreI: 0, DownPod: 3, RateFactor: 0.5, Start: 0, End: 10 * time.Millisecond},
		// Back-to-back windows at one site are adjacent, not overlapping.
		{Kind: FaultHopDelay, AggPod: 0, AggIdx: 0, Extra: time.Microsecond, Start: 10 * time.Millisecond, End: 20 * time.Millisecond},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("disjoint-site faults rejected: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := validSpec()
	s.Name = "round-trip"
	s.Faults = []FaultSpec{{Kind: FaultHopDelay, AggPod: 1, AggIdx: 0, Extra: 250 * time.Microsecond,
		Start: time.Millisecond, End: 2 * time.Millisecond}}
	data, err := s.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Faults) != 1 {
		t.Fatalf("round trip changed the spec:\n in: %+v\nout: %+v", s, got)
	}
	if got.Name != s.Name || got.Faults[0] != s.Faults[0] || got.Topology != s.Topology ||
		got.Workload != s.Workload || got.Duration != s.Duration ||
		!reflect.DeepEqual(got.Deploy, s.Deploy) {
		t.Fatalf("round trip changed fields:\n in: %+v\nout: %+v", s, got)
	}
}

// TestDecodeJSONDestPodDefault pins the documented default: a spec that
// omits dest_pod monitors the LAST pod (the -1 sentinel), while an
// explicit "dest_pod": 0 still selects pod 0.
func TestDecodeJSONDestPodDefault(t *testing.T) {
	base := `{"version":1,
		"topology":{"kind":"fattree","k":4,"link_bps":1e9},
		"workload":{"load_frac":0.5%s},
		"deploy":{"scheme":"static"},
		"duration_ns":1000000,"seed":1}`
	omitted, err := DecodeJSON([]byte(fmt.Sprintf(base, "")))
	if err != nil {
		t.Fatal(err)
	}
	if omitted.Workload.DestPod != -1 || omitted.destPod() != 3 {
		t.Fatalf("omitted dest_pod = %d (resolves to pod %d), want sentinel -1 -> pod 3",
			omitted.Workload.DestPod, omitted.destPod())
	}
	explicit, err := DecodeJSON([]byte(fmt.Sprintf(base, `,"dest_pod":0`)))
	if err != nil {
		t.Fatal(err)
	}
	if explicit.destPod() != 0 {
		t.Fatalf("explicit dest_pod 0 resolves to pod %d, want 0", explicit.destPod())
	}
}

func TestDecodeJSONRejectsInvalid(t *testing.T) {
	if _, err := DecodeJSON([]byte("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := DecodeJSON([]byte(`{"version": 1, "topology": {"kind": "ring"}}`)); err == nil {
		t.Fatal("invalid spec accepted")
	}
	// A misspelled knob must fail loudly, not silently run a different
	// scenario than the one written.
	data, err := validSpec().EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(data), `"load_frac"`, `"load_fraction"`, 1)
	if _, err := DecodeJSON([]byte(bad)); err == nil {
		t.Fatal("unknown spec field accepted")
	}
}

// TestInstancesBudget pins the deployment-size arithmetic the budget check
// uses: for k=4 converging, 3 source pods x 2 ToRs x 2 uplink senders,
// 4 core receivers, 4 downstream core senders, 1 ToR receiver.
func TestInstancesBudget(t *testing.T) {
	s := validSpec()
	if got, want := s.Instances(), 3*2*2+4+4+1; got != want {
		t.Fatalf("Instances() = %d, want %d", got, want)
	}
	s.Deploy.MaxInstances = s.Instances()
	if err := s.Validate(); err != nil {
		t.Fatalf("exact budget rejected: %v", err)
	}
	s.Deploy.MaxInstances--
	if err := s.Validate(); err == nil {
		t.Fatal("over-budget deployment accepted")
	}
	all := s
	all.Deploy.MaxInstances = 0
	all.Workload.Pattern = PatternAllPairs
	// allpairs: 8 source ToRs x 2 uplinks, 4 cores, 4 pods x 4 core
	// down-senders, 8 ToR receivers.
	if got, want := all.Instances(), 8*2+4+4*4+8; got != want {
		t.Fatalf("allpairs Instances() = %d, want %d", got, want)
	}
}
