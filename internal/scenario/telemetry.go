package scenario

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"time"

	"github.com/netmeasure/rlir/internal/measure"
)

// DefaultTelemetryFrameRecords is the export-frame granularity when the spec
// leaves frame_records zero: how many per-flow records ride in one frame of
// the modeled export stream.
const DefaultTelemetryFrameRecords = 16

// TelemetryRow is one estimator scored with and without export loss on the
// same run: the Baseline row is the lossless comparison, the Degraded row is
// the same report re-scored after its export frames were thinned. Both are
// scored against the identical ground truth, so the difference between them
// is exactly what the lost telemetry cost.
type TelemetryRow struct {
	// Estimator is the mechanism's registry name.
	Estimator string
	// FramesTotal / FramesDropped count the mechanism's export frames and
	// how many the loss model discarded. An aggregate-only mechanism (LDA)
	// exports its whole deliverable in one frame.
	FramesTotal   int
	FramesDropped int
	// Baseline / Degraded are the comparison rows before and after loss.
	Baseline measure.Comparison
	Degraded measure.Comparison
}

// FlowCoverage is the fraction of the lossless row's scored flows that
// survived the telemetry loss (1 when the baseline scored none).
func (r TelemetryRow) FlowCoverage() float64 {
	if r.Baseline.Flows == 0 {
		return 1
	}
	return float64(r.Degraded.Flows) / float64(r.Baseline.Flows)
}

// DeltaMedianRelErr is the degraded minus baseline median per-flow relative
// error (NaN when either side produces no per-flow metric).
func (r TelemetryRow) DeltaMedianRelErr() float64 {
	return r.Degraded.MedianRelErr - r.Baseline.MedianRelErr
}

// TelemetryReport is a finished run's estimator accuracy under telemetry
// loss, one row per requested mechanism in comparison-table order.
type TelemetryReport struct {
	// LossRate / FrameRecords echo the resolved spec knobs.
	LossRate     float64
	FrameRecords int
	Rows         []TelemetryRow
}

// Row returns the named estimator's telemetry row.
func (t *TelemetryReport) Row(name string) (TelemetryRow, bool) {
	for _, r := range t.Rows {
		if r.Estimator == name {
			return r, true
		}
	}
	return TelemetryRow{}, false
}

// Render formats the report as a text table.
func (t *TelemetryReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry loss (frame=%d records, p(drop)=%.2f):\n", t.FrameRecords, t.LossRate)
	fmt.Fprintf(&b, "%-16s %7s %8s %14s %22s %22s\n",
		"estimator", "frames", "dropped", "flows", "medianRelErr", "aggRelErr")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-16s %7d %8d %6d -> %-5d %9.4f -> %-9.4f %9.4f -> %-9.4f\n",
			r.Estimator, r.FramesTotal, r.FramesDropped,
			r.Baseline.Flows, r.Degraded.Flows,
			r.Baseline.MedianRelErr, r.Degraded.MedianRelErr,
			r.Baseline.AggRelErr, r.Degraded.AggRelErr)
	}
	return b.String()
}

// telemetryRNG derives one estimator's loss stream: seeded by the run seed
// and the estimator name, so each mechanism's losses are independent and the
// whole report is reproducible with the run.
func telemetryRNG(seed int64, estimator string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(estimator))
	return rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
}

// thinReport applies frame loss to one report: the per-flow estimates are
// chunked into export frames of frameRecords consecutive records and each
// frame is dropped independently with probability loss. The surviving
// records are all the collection point has, so the aggregate is re-derived
// from them; an aggregate-only report travels as a single frame and is kept
// or lost whole.
func thinReport(r measure.Report, loss float64, frameRecords int, rng *rand.Rand) (measure.Report, int, int) {
	out := r
	if len(r.Flows) == 0 {
		if r.AggSamples == 0 {
			return out, 0, 0
		}
		if rng.Float64() < loss {
			out.AggMean, out.AggSamples = 0, 0
			return out, 1, 1
		}
		return out, 1, 0
	}
	var kept []measure.FlowEstimate
	total, dropped := 0, 0
	for off := 0; off < len(r.Flows); off += frameRecords {
		end := min(off+frameRecords, len(r.Flows))
		total++
		if rng.Float64() < loss {
			dropped++
			continue
		}
		kept = append(kept, r.Flows[off:end]...)
	}
	out.Flows = kept
	var aggW float64
	var aggN int64
	for _, f := range kept {
		aggW += float64(f.Mean) * float64(f.N)
		aggN += f.N
	}
	out.AggSamples = aggN
	out.AggMean = 0
	if aggN > 0 {
		out.AggMean = time.Duration(aggW / float64(aggN))
	}
	return out, total, dropped
}

// applyTelemetry scores every report with and without export loss against
// the same ground truth. baseline is the run's lossless comparison table,
// index-aligned with reports; the simulation itself is untouched — telemetry
// loss is a collection-path phenomenon, applied to what the estimators
// deliver, not to what they measured.
func applyTelemetry(t TelemetrySpec, seed int64, truth *measure.Truth, baseline []measure.Comparison, reports []measure.Report) *TelemetryReport {
	fr := t.FrameRecords
	if fr <= 0 {
		fr = DefaultTelemetryFrameRecords
	}
	rep := &TelemetryReport{LossRate: t.LossRate, FrameRecords: fr}
	thinned := make([]measure.Report, len(reports))
	totals := make([]int, len(reports))
	drops := make([]int, len(reports))
	for i, r := range reports {
		thinned[i], totals[i], drops[i] = thinReport(r, t.LossRate, fr, telemetryRNG(seed, r.Estimator))
	}
	degraded := measure.Compare(truth, thinned...)
	for i := range reports {
		rep.Rows = append(rep.Rows, TelemetryRow{
			Estimator:     reports[i].Estimator,
			FramesTotal:   totals[i],
			FramesDropped: drops[i],
			Baseline:      baseline[i],
			Degraded:      degraded[i],
		})
	}
	return rep
}
