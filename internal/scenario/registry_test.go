package scenario

import (
	"testing"
)

// TestScenarioRegistrySmoke runs every registered scenario at its CI-sized
// spec and applies its invariant — the correctness harness the CI
// scenario-matrix job fans out over (one matrix entry per subtest name).
func TestScenarioRegistrySmoke(t *testing.T) {
	if len(registry) < 6 {
		t.Fatalf("registry has %d scenarios, want >= 6", len(registry))
	}
	for _, sc := range All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := sc.RunCheck()
			if err != nil {
				if res != nil {
					t.Logf("result:\n%s", res.Render())
				}
				t.Fatal(err)
			}
			t.Logf("%s: flows=%d medianErr=%.4f estP99=%v hotUtil=%.2f misattr=%.4f samples=%d",
				sc.Name, res.Overall.Flows, res.Overall.MedianRelErr, res.EstP99,
				res.HotLinkUtil, res.Misattribution, res.Samples)
		})
	}
}

// TestRegistryMetadata pins the registry's documented contract: the six
// pathologies the roadmap names are all present, and every entry carries
// the prose fields the docs and CI listing render.
func TestRegistryMetadata(t *testing.T) {
	required := []string{
		"baseline-tandem", "fattree-allpairs", "incast",
		"microburst", "degraded-link", "ecmp-skew", "telemetry-loss",
		"fleet-partition", "fleet-instance-loss",
	}
	for _, name := range required {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("required scenario %q is not registered", name)
		}
		if sc.Stresses == "" || sc.Invariant == "" {
			t.Errorf("%s: missing Stresses/Invariant documentation", name)
		}
		if sc.Spec.Name != name {
			t.Errorf("%s: spec name %q does not match registration", name, sc.Spec.Name)
		}
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}
