package scenario

import (
	"fmt"
	"math"
	"strings"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/experiments"
	"github.com/netmeasure/rlir/internal/runner"
)

// MultiOpts sizes a multi-seed scenario sweep.
type MultiOpts struct {
	// Seeds is the number of independent runs (default 8).
	Seeds int
	// Workers caps parallel runs (<= 0 uses GOMAXPROCS).
	Workers int
}

// Metric is one scalar's across-seed distribution: mean ± 95% CI
// (Student-t) — the same statistic the figure harnesses report.
type Metric = experiments.MetricCI

// MultiResult aggregates one scenario across independent seeds.
type MultiResult struct {
	Spec    Spec
	Seeds   []int64
	PerSeed []*Result
	// Across-seed distributions of the headline scalars.
	MedianRelErr   Metric
	P90RelErr      Metric
	Misattribution Metric
	HotLinkUtil    Metric
	EstP99Us       Metric
	// Estimators aggregates the per-seed comparison tables: one row per
	// requested mechanism, each metric as its across-seed distribution.
	Estimators []EstimatorCI
	// Telemetry aggregates the per-seed telemetry-loss reports (specs with
	// Spec.Telemetry only): per mechanism, the across-seed distribution of
	// degraded accuracy and flow coverage.
	Telemetry []TelemetryCI
	// Detection aggregates the per-seed adversarial detection reports
	// (specs with Spec.Adversary only): per mechanism, the across-seed
	// exposure distribution and the fraction of seeds it detected on.
	Detection []DetectionCI
	// Fleet merges every run's collector snapshot in seed order.
	Fleet []collector.FlowAgg
}

// EstimatorCI is one mechanism's across-seed comparison row.
type EstimatorCI struct {
	Name string
	// Flows is the mean number of flows the mechanism estimated per seed.
	Flows Metric
	// MedianRelErr / P99RelErr / AggRelErr are the across-seed
	// distributions of the per-seed error metrics; N = 0 ("n/a") for
	// metrics the mechanism does not produce.
	MedianRelErr Metric
	P99RelErr    Metric
	AggRelErr    Metric
	// InjectedBytes / SampledBytes are the across-seed overhead means.
	InjectedBytes Metric
	SampledBytes  Metric
}

// TelemetryCI is one mechanism's across-seed telemetry-loss row: how its
// accuracy and coverage degrade when export frames are dropped, as mean ±
// 95% CI over the sweep's seeds.
type TelemetryCI struct {
	Name string
	// FramesDropped is the across-seed mean of dropped export frames.
	FramesDropped Metric
	// FlowCoverage is the fraction of lossless-scored flows surviving the
	// loss.
	FlowCoverage Metric
	// BaselineMedianRelErr / DegradedMedianRelErr are the per-flow error
	// distributions before and after loss; DeltaMedianRelErr is their
	// per-seed difference (N = 0 for aggregate-only mechanisms).
	BaselineMedianRelErr Metric
	DegradedMedianRelErr Metric
	DeltaMedianRelErr    Metric
	// DegradedAggRelErr scores the surviving aggregate estimate.
	DegradedAggRelErr Metric
}

// DetectionCI is one mechanism's across-seed adversarial-detection row:
// how much of the hidden delay it exposed, as mean ± 95% CI over the
// sweep's seeds, and on what fraction of seeds it cleared the detection
// threshold.
type DetectionCI struct {
	Name string
	// Exposure is the across-seed distribution of the exposed fraction of
	// the true aggregate shift.
	Exposure Metric
	// DetectedFrac is the fraction of seeds on which the mechanism's
	// exposure cleared DetectionThreshold.
	DetectedFrac float64
}

// detectionCIs folds the per-seed detection reports into across-seed rows,
// nil when the spec ran without an adversary.
func detectionCIs(perSeed []*Result) []DetectionCI {
	if len(perSeed) == 0 || perSeed[0].Detection == nil {
		return nil
	}
	rows := make([]DetectionCI, len(perSeed[0].Detection.Rows))
	for i, first := range perSeed[0].Detection.Rows {
		var exp []float64
		detected := 0
		for _, r := range perSeed {
			row := r.Detection.Rows[i]
			if row.Estimator != first.Estimator {
				panic("scenario: detection tables diverge across seeds")
			}
			exp = append(exp, row.Exposure)
			if row.Detected {
				detected++
			}
		}
		rows[i] = DetectionCI{
			Name:         first.Estimator,
			Exposure:     experiments.MetricOf(exp),
			DetectedFrac: float64(detected) / float64(len(perSeed)),
		}
	}
	return rows
}

// telemetryCIs folds the per-seed telemetry reports into across-seed rows,
// nil when the spec ran without telemetry loss.
func telemetryCIs(perSeed []*Result) []TelemetryCI {
	if len(perSeed) == 0 || perSeed[0].Telemetry == nil {
		return nil
	}
	rows := make([]TelemetryCI, len(perSeed[0].Telemetry.Rows))
	for i, first := range perSeed[0].Telemetry.Rows {
		var dropped, cov, base, deg, delta, agg []float64
		for _, r := range perSeed {
			row := r.Telemetry.Rows[i]
			if row.Estimator != first.Estimator {
				panic("scenario: telemetry tables diverge across seeds")
			}
			dropped = append(dropped, float64(row.FramesDropped))
			cov = append(cov, row.FlowCoverage())
			base = append(base, row.Baseline.MedianRelErr)
			deg = append(deg, row.Degraded.MedianRelErr)
			delta = append(delta, row.DeltaMedianRelErr())
			agg = append(agg, row.Degraded.AggRelErr)
		}
		rows[i] = TelemetryCI{
			Name:                 first.Estimator,
			FramesDropped:        experiments.MetricOf(dropped),
			FlowCoverage:         experiments.MetricOf(cov),
			BaselineMedianRelErr: metricOfFinite(base),
			DegradedMedianRelErr: metricOfFinite(deg),
			DeltaMedianRelErr:    metricOfFinite(delta),
			DegradedAggRelErr:    metricOfFinite(agg),
		}
	}
	return rows
}

// metricOfFinite folds the non-NaN samples into a Metric: a mechanism that
// never produces a metric (LDA per-flow error) yields N = 0, rendered
// "n/a", rather than a NaN mean.
func metricOfFinite(samples []float64) Metric {
	finite := make([]float64, 0, len(samples))
	for _, s := range samples {
		if !math.IsNaN(s) {
			finite = append(finite, s)
		}
	}
	return experiments.MetricOf(finite)
}

// estimatorCIs folds the per-seed comparison tables into across-seed rows.
// Every seed runs the same spec, so the tables have identical shape; the
// fold is by row index with the name asserted equal.
func estimatorCIs(perSeed []*Result) []EstimatorCI {
	if len(perSeed) == 0 || len(perSeed[0].Comparison) == 0 {
		return nil
	}
	rows := make([]EstimatorCI, len(perSeed[0].Comparison))
	for i, c := range perSeed[0].Comparison {
		var flows, med, p99, agg, inj, smp []float64
		for _, r := range perSeed {
			rc := r.Comparison[i]
			if rc.Estimator != c.Estimator {
				panic("scenario: comparison tables diverge across seeds")
			}
			flows = append(flows, float64(rc.Flows))
			med = append(med, rc.MedianRelErr)
			p99 = append(p99, rc.P99RelErr)
			agg = append(agg, rc.AggRelErr)
			inj = append(inj, float64(rc.Overhead.InjectedBytes))
			smp = append(smp, float64(rc.Overhead.SampledBytes))
		}
		rows[i] = EstimatorCI{
			Name:          c.Estimator,
			Flows:         experiments.MetricOf(flows),
			MedianRelErr:  metricOfFinite(med),
			P99RelErr:     metricOfFinite(p99),
			AggRelErr:     metricOfFinite(agg),
			InjectedBytes: experiments.MetricOf(inj),
			SampledBytes:  experiments.MetricOf(smp),
		}
	}
	return rows
}

// RunMulti runs the spec at opts.Seeds SplitMix64-derived seeds fanned
// across the runner pool. Per-run simulations stay single-goroutine and
// deterministic; the result is identical for any worker count.
func RunMulti(spec Spec, opts MultiOpts) (*MultiResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.Seeds <= 0 {
		opts.Seeds = 8
	}
	seeds := runner.Seeds(spec.Seed, opts.Seeds)
	type out struct {
		res *Result
		err error
	}
	outs := runner.Map(seeds, opts.Workers, func(i int, seed int64) out {
		r, err := RunSeed(spec, seed)
		return out{r, err}
	})
	mr := &MultiResult{Spec: spec, Seeds: seeds}
	var medians, p90s, misattr, hot, p99us []float64
	snaps := make([][]collector.FlowAgg, 0, len(outs))
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		mr.PerSeed = append(mr.PerSeed, o.res)
		medians = append(medians, o.res.Overall.MedianRelErr)
		p90s = append(p90s, o.res.Overall.P90RelErr)
		misattr = append(misattr, o.res.Misattribution)
		hot = append(hot, o.res.HotLinkUtil)
		p99us = append(p99us, float64(o.res.EstP99)/1e3)
		snaps = append(snaps, o.res.Fleet)
	}
	mr.MedianRelErr = experiments.MetricOf(medians)
	mr.P90RelErr = experiments.MetricOf(p90s)
	mr.Misattribution = experiments.MetricOf(misattr)
	mr.HotLinkUtil = experiments.MetricOf(hot)
	mr.EstP99Us = experiments.MetricOf(p99us)
	mr.Estimators = estimatorCIs(mr.PerSeed)
	mr.Telemetry = telemetryCIs(mr.PerSeed)
	mr.Detection = detectionCIs(mr.PerSeed)
	mr.Fleet = collector.Merge(snaps...)
	return mr, nil
}

// CheckAll applies a scenario invariant to every per-seed result, returning
// the first violation.
func (mr *MultiResult) CheckAll(check func(*Result) error) error {
	for i, r := range mr.PerSeed {
		if err := check(r); err != nil {
			return fmt.Errorf("seed %d (%d): %w", i, mr.Seeds[i], err)
		}
	}
	return nil
}

// Render formats the sweep as a text report.
func (mr *MultiResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== scenario %s x %d seeds ==\n", mr.Spec.Name, len(mr.Seeds))
	fmt.Fprintf(&b, "medianRelErr   %s\n", mr.MedianRelErr)
	fmt.Fprintf(&b, "p90RelErr      %s\n", mr.P90RelErr)
	fmt.Fprintf(&b, "misattribution %s\n", mr.Misattribution)
	fmt.Fprintf(&b, "hotLinkUtil    %s\n", mr.HotLinkUtil)
	fmt.Fprintf(&b, "estP99 (µs)    %s\n", mr.EstP99Us)
	fmt.Fprintf(&b, "fleet flows    %d\n", len(mr.Fleet))
	if len(mr.Estimators) > 0 {
		fmt.Fprintf(&b, "estimator comparison (mean ±95%% CI over %d seeds):\n", len(mr.Seeds))
		fmt.Fprintf(&b, "%-16s %-12s %-18s %-18s %-18s %12s %12s\n",
			"estimator", "flows", "medianRelErr", "p99RelErr", "aggRelErr", "injBytes", "smpBytes")
		for _, e := range mr.Estimators {
			fmt.Fprintf(&b, "%-16s %-12.0f %-18s %-18s %-18s %12.0f %12.0f\n",
				e.Name, e.Flows.Mean, e.MedianRelErr, e.P99RelErr, e.AggRelErr,
				e.InjectedBytes.Mean, e.SampledBytes.Mean)
		}
	}
	if len(mr.Detection) > 0 {
		d := mr.PerSeed[0].Detection
		fmt.Fprintf(&b, "adversarial delay detection (hidden=%v; mean ±95%% CI over %d seeds):\n",
			d.HiddenDelay, len(mr.Seeds))
		fmt.Fprintf(&b, "%-16s %-18s %-10s\n", "estimator", "exposure", "detected")
		for _, row := range mr.Detection {
			fmt.Fprintf(&b, "%-16s %-18s %4.0f%%\n", row.Name, row.Exposure, row.DetectedFrac*100)
		}
	}
	if len(mr.Telemetry) > 0 {
		t := mr.PerSeed[0].Telemetry
		fmt.Fprintf(&b, "telemetry loss (frame=%d records, p(drop)=%.2f; mean ±95%% CI over %d seeds):\n",
			t.FrameRecords, t.LossRate, len(mr.Seeds))
		fmt.Fprintf(&b, "%-16s %-10s %-14s %-18s %-18s %-18s\n",
			"estimator", "dropped", "coverage", "medianRelErr", "degradedMedian", "degradedAgg")
		for _, row := range mr.Telemetry {
			fmt.Fprintf(&b, "%-16s %-10.1f %-14s %-18s %-18s %-18s\n",
				row.Name, row.FramesDropped.Mean, row.FlowCoverage,
				row.BaselineMedianRelErr, row.DegradedMedianRelErr, row.DegradedAggRelErr)
		}
	}
	return b.String()
}
