package scenario

import (
	"fmt"
	"math"
	"strings"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/experiments"
	"github.com/netmeasure/rlir/internal/runner"
)

// MultiOpts sizes a multi-seed scenario sweep.
type MultiOpts struct {
	// Seeds is the number of independent runs (default 8).
	Seeds int
	// Workers caps parallel runs (<= 0 uses GOMAXPROCS).
	Workers int
}

// Metric is one scalar's across-seed distribution: mean ± 95% CI
// (Student-t) — the same statistic the figure harnesses report.
type Metric = experiments.MetricCI

// MultiResult aggregates one scenario across independent seeds.
type MultiResult struct {
	Spec    Spec
	Seeds   []int64
	PerSeed []*Result
	// Across-seed distributions of the headline scalars.
	MedianRelErr   Metric
	P90RelErr      Metric
	Misattribution Metric
	HotLinkUtil    Metric
	EstP99Us       Metric
	// Estimators aggregates the per-seed comparison tables: one row per
	// requested mechanism, each metric as its across-seed distribution.
	Estimators []EstimatorCI
	// Fleet merges every run's collector snapshot in seed order.
	Fleet []collector.FlowAgg
}

// EstimatorCI is one mechanism's across-seed comparison row.
type EstimatorCI struct {
	Name string
	// Flows is the mean number of flows the mechanism estimated per seed.
	Flows Metric
	// MedianRelErr / P99RelErr / AggRelErr are the across-seed
	// distributions of the per-seed error metrics; N = 0 ("n/a") for
	// metrics the mechanism does not produce.
	MedianRelErr Metric
	P99RelErr    Metric
	AggRelErr    Metric
	// InjectedBytes / SampledBytes are the across-seed overhead means.
	InjectedBytes Metric
	SampledBytes  Metric
}

// metricOfFinite folds the non-NaN samples into a Metric: a mechanism that
// never produces a metric (LDA per-flow error) yields N = 0, rendered
// "n/a", rather than a NaN mean.
func metricOfFinite(samples []float64) Metric {
	finite := make([]float64, 0, len(samples))
	for _, s := range samples {
		if !math.IsNaN(s) {
			finite = append(finite, s)
		}
	}
	return experiments.MetricOf(finite)
}

// estimatorCIs folds the per-seed comparison tables into across-seed rows.
// Every seed runs the same spec, so the tables have identical shape; the
// fold is by row index with the name asserted equal.
func estimatorCIs(perSeed []*Result) []EstimatorCI {
	if len(perSeed) == 0 || len(perSeed[0].Comparison) == 0 {
		return nil
	}
	rows := make([]EstimatorCI, len(perSeed[0].Comparison))
	for i, c := range perSeed[0].Comparison {
		var flows, med, p99, agg, inj, smp []float64
		for _, r := range perSeed {
			rc := r.Comparison[i]
			if rc.Estimator != c.Estimator {
				panic("scenario: comparison tables diverge across seeds")
			}
			flows = append(flows, float64(rc.Flows))
			med = append(med, rc.MedianRelErr)
			p99 = append(p99, rc.P99RelErr)
			agg = append(agg, rc.AggRelErr)
			inj = append(inj, float64(rc.Overhead.InjectedBytes))
			smp = append(smp, float64(rc.Overhead.SampledBytes))
		}
		rows[i] = EstimatorCI{
			Name:          c.Estimator,
			Flows:         experiments.MetricOf(flows),
			MedianRelErr:  metricOfFinite(med),
			P99RelErr:     metricOfFinite(p99),
			AggRelErr:     metricOfFinite(agg),
			InjectedBytes: experiments.MetricOf(inj),
			SampledBytes:  experiments.MetricOf(smp),
		}
	}
	return rows
}

// RunMulti runs the spec at opts.Seeds SplitMix64-derived seeds fanned
// across the runner pool. Per-run simulations stay single-goroutine and
// deterministic; the result is identical for any worker count.
func RunMulti(spec Spec, opts MultiOpts) (*MultiResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.Seeds <= 0 {
		opts.Seeds = 8
	}
	seeds := runner.Seeds(spec.Seed, opts.Seeds)
	type out struct {
		res *Result
		err error
	}
	outs := runner.Map(seeds, opts.Workers, func(i int, seed int64) out {
		r, err := RunSeed(spec, seed)
		return out{r, err}
	})
	mr := &MultiResult{Spec: spec, Seeds: seeds}
	var medians, p90s, misattr, hot, p99us []float64
	snaps := make([][]collector.FlowAgg, 0, len(outs))
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		mr.PerSeed = append(mr.PerSeed, o.res)
		medians = append(medians, o.res.Overall.MedianRelErr)
		p90s = append(p90s, o.res.Overall.P90RelErr)
		misattr = append(misattr, o.res.Misattribution)
		hot = append(hot, o.res.HotLinkUtil)
		p99us = append(p99us, float64(o.res.EstP99)/1e3)
		snaps = append(snaps, o.res.Fleet)
	}
	mr.MedianRelErr = experiments.MetricOf(medians)
	mr.P90RelErr = experiments.MetricOf(p90s)
	mr.Misattribution = experiments.MetricOf(misattr)
	mr.HotLinkUtil = experiments.MetricOf(hot)
	mr.EstP99Us = experiments.MetricOf(p99us)
	mr.Estimators = estimatorCIs(mr.PerSeed)
	mr.Fleet = collector.Merge(snaps...)
	return mr, nil
}

// CheckAll applies a scenario invariant to every per-seed result, returning
// the first violation.
func (mr *MultiResult) CheckAll(check func(*Result) error) error {
	for i, r := range mr.PerSeed {
		if err := check(r); err != nil {
			return fmt.Errorf("seed %d (%d): %w", i, mr.Seeds[i], err)
		}
	}
	return nil
}

// Render formats the sweep as a text report.
func (mr *MultiResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== scenario %s x %d seeds ==\n", mr.Spec.Name, len(mr.Seeds))
	fmt.Fprintf(&b, "medianRelErr   %s\n", mr.MedianRelErr)
	fmt.Fprintf(&b, "p90RelErr      %s\n", mr.P90RelErr)
	fmt.Fprintf(&b, "misattribution %s\n", mr.Misattribution)
	fmt.Fprintf(&b, "hotLinkUtil    %s\n", mr.HotLinkUtil)
	fmt.Fprintf(&b, "estP99 (µs)    %s\n", mr.EstP99Us)
	fmt.Fprintf(&b, "fleet flows    %d\n", len(mr.Fleet))
	if len(mr.Estimators) > 0 {
		fmt.Fprintf(&b, "estimator comparison (mean ±95%% CI over %d seeds):\n", len(mr.Seeds))
		fmt.Fprintf(&b, "%-16s %-12s %-18s %-18s %-18s %12s %12s\n",
			"estimator", "flows", "medianRelErr", "p99RelErr", "aggRelErr", "injBytes", "smpBytes")
		for _, e := range mr.Estimators {
			fmt.Fprintf(&b, "%-16s %-12.0f %-18s %-18s %-18s %12.0f %12.0f\n",
				e.Name, e.Flows.Mean, e.MedianRelErr, e.P99RelErr, e.AggRelErr,
				e.InjectedBytes.Mean, e.SampledBytes.Mean)
		}
	}
	return b.String()
}
