package scenario

import (
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/core"
	"github.com/netmeasure/rlir/internal/experiments"
	"github.com/netmeasure/rlir/internal/measure"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/runner"
	"github.com/netmeasure/rlir/internal/simtime"
)

// runTandem executes a tandem-topology scenario by driving the Figure-3
// harness with the spec's knobs, streaming estimates through the collector
// plane like the fat-tree path does. The spec's estimator set attaches to
// the harness's two measurement points through the shared dispatch, so one
// pass yields the full comparison table here too.
func runTandem(spec Spec, seed int64, cap *capture) (*Result, error) {
	sc := experiments.Scale{
		LinkBps:          spec.Topology.LinkBps,
		Duration:         spec.Duration,
		QueueBytes:       spec.Topology.QueueBytes,
		BaseUtil:         spec.Workload.LoadFrac,
		CrossOfferedUtil: 1.5,
		Seed:             seed,
	}
	var model experiments.CrossModel
	switch spec.Workload.CrossModel {
	case CrossUniform:
		model = experiments.CrossUniform
	case CrossBursty:
		model = experiments.CrossBursty
	default:
		model = experiments.CrossNone
	}

	coll := collector.New(collector.Config{Shards: 4})
	sink := runner.NewSink(coll, 0)
	rec := &routerRec{}

	// The unified estimator layer: baselines tap the sender point (segment
	// start) and the bottleneck transmit point (segment end) of the same
	// run the RLI receiver measures. Cross traffic also crosses the
	// bottleneck, so both taps filter to the regular workload — the same
	// population the receiver estimates.
	estNames := spec.EffectiveEstimators()
	baselines, err := measure.NewSet(baselinesOf(estNames), measure.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	truth := measure.NewTruth()
	shared := measure.NewDispatch(truth, baselines...)

	cfg := experiments.TandemConfig{
		Scale:       sc,
		Scheme:      spec.scheme(),
		Model:       model,
		TargetUtil:  spec.Workload.CrossUtil,
		BurstOn:     spec.Workload.BurstOn,
		BurstPeriod: spec.Workload.BurstPeriod,
		OnEstimate: func(key packet.FlowKey, est, truth time.Duration) {
			rec.record(est, truth)
			sink.Add(key, est, truth)
			cap.addSample(key, est, truth)
		},
		OnSenderPoint: func(p *packet.Packet, now simtime.Time) {
			if p.Kind == packet.Regular {
				shared.TapStart(p, now)
			}
		},
		OnReceiverPoint: func(p *packet.Packet, now simtime.Time) {
			if p.Kind == packet.Regular {
				shared.TapEnd(p, now)
				cap.observe(p, now)
			}
		},
	}
	tr := experiments.RunTandem(cfg)

	res := &Result{
		Spec:        spec,
		Seed:        seed,
		Injected:    int(tr.RegularOffered),
		Overall:     tr.Summary,
		HotLinkUtil: tr.AchievedUtil,
	}
	rs := RouterStats{Router: "sw2", Segment: "sw1-egress->bottleneck", Summary: tr.Summary}
	rec.fill(&rs)
	res.Routers = []RouterStats{rs}
	res.EstP50, res.EstP99 = rs.EstP50, rs.EstP99
	res.TrueP50, res.TrueP99 = rs.TrueP50, rs.TrueP99

	// Comparison: the harness owns its receiver, so the RLI row comes from
	// the run's per-flow results; reference overhead from the sender's own
	// injection counter.
	reports := make([]measure.Report, 0, 1+len(baselines))
	reports = append(reports, measure.ReportFromFlowResults("rli", "sw2", tr.Results, measure.Overhead{
		InjectedPkts:  tr.Sender.Injected,
		InjectedBytes: tr.Sender.Injected * core.DefaultRefSize,
	}))
	for _, b := range baselines {
		reports = append(reports, b.Finalize())
	}
	res.Comparison = measure.Compare(truth, reports...)
	res.TrueAggMean = truth.AggMean()
	if spec.Telemetry != nil {
		res.Telemetry = applyTelemetry(*spec.Telemetry, seed, truth, res.Comparison, reports)
	}

	sink.Flush()
	coll.Close()
	res.Fleet = coll.Snapshot()
	res.Samples = coll.SamplesIngested()
	if spec.Fleet != nil {
		res.FleetReport = applyFleet(*spec.Fleet, cap, truth, res.Comparison, reports, res)
	}
	return res, nil
}
