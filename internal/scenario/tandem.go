package scenario

import (
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/experiments"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/runner"
)

// runTandem executes a tandem-topology scenario by driving the Figure-3
// harness with the spec's knobs, streaming estimates through the collector
// plane like the fat-tree path does.
func runTandem(spec Spec, seed int64) (*Result, error) {
	sc := experiments.Scale{
		LinkBps:          spec.Topology.LinkBps,
		Duration:         spec.Duration,
		QueueBytes:       spec.Topology.QueueBytes,
		BaseUtil:         spec.Workload.LoadFrac,
		CrossOfferedUtil: 1.5,
		Seed:             seed,
	}
	var model experiments.CrossModel
	switch spec.Workload.CrossModel {
	case CrossUniform:
		model = experiments.CrossUniform
	case CrossBursty:
		model = experiments.CrossBursty
	default:
		model = experiments.CrossNone
	}

	coll := collector.New(collector.Config{Shards: 4})
	sink := runner.NewSink(coll, 0)
	rec := &routerRec{}

	cfg := experiments.TandemConfig{
		Scale:       sc,
		Scheme:      spec.scheme(),
		Model:       model,
		TargetUtil:  spec.Workload.CrossUtil,
		BurstOn:     spec.Workload.BurstOn,
		BurstPeriod: spec.Workload.BurstPeriod,
		OnEstimate: func(key packet.FlowKey, est, truth time.Duration) {
			rec.record(est, truth)
			sink.Add(key, est, truth)
		},
	}
	tr := experiments.RunTandem(cfg)

	res := &Result{
		Spec:        spec,
		Seed:        seed,
		Injected:    int(tr.RegularOffered),
		Overall:     tr.Summary,
		HotLinkUtil: tr.AchievedUtil,
	}
	rs := RouterStats{Router: "sw2", Segment: "sw1-egress->bottleneck", Summary: tr.Summary}
	rec.fill(&rs)
	res.Routers = []RouterStats{rs}
	res.EstP50, res.EstP99 = rs.EstP50, rs.EstP99
	res.TrueP50, res.TrueP99 = rs.TrueP50, rs.TrueP99

	sink.Flush()
	coll.Close()
	res.Fleet = coll.Snapshot()
	res.Samples = coll.SamplesIngested()
	return res, nil
}
