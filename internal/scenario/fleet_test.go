package scenario

import (
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/measure"
	"github.com/netmeasure/rlir/internal/packet"
)

func TestFleetSpecValidation(t *testing.T) {
	base := DefaultSpec()
	cases := []struct {
		name  string
		fleet *FleetSpec
		want  string
	}{
		{"zero instances", &FleetSpec{Instances: 0}, "fleet instances"},
		{"negative instances", &FleetSpec{Instances: -2}, "fleet instances"},
		{"fail below range", &FleetSpec{Instances: 4, FailInstance: intPtr(-1)}, "fail_instance"},
		{"fail at range", &FleetSpec{Instances: 4, FailInstance: intPtr(4)}, "fail_instance"},
	}
	for _, tc := range cases {
		s := base
		s.Fleet = tc.fleet
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error mentioning %q", tc.name, err, tc.want)
		}
	}
	ok := base
	ok.Fleet = &FleetSpec{Instances: 4, FailInstance: intPtr(3)}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid fleet spec rejected: %v", err)
	}
}

// TestFleetReportOnFatTree checks the fleet layer is topology-agnostic: a
// fat-tree run with a fleet spec produces the same exact-merge proof and
// failure accounting the tandem scenarios pin.
func TestFleetReportOnFatTree(t *testing.T) {
	spec := Spec{
		Version: SpecVersion,
		Topology: TopologySpec{
			Kind:        TopoFatTree,
			K:           4,
			LinkBps:     200e6,
			Propagation: time.Microsecond,
			ProcDelay:   500 * time.Nanosecond,
			QueueBytes:  96 << 10,
		},
		Workload: WorkloadSpec{Pattern: PatternConverging, LoadFrac: 0.5, DestPod: -1},
		Deploy:   DeploymentSpec{Scheme: SchemeStatic, StaticN: 50, Estimators: []string{"rli"}},
		Fleet:    &FleetSpec{Instances: 3, FailInstance: intPtr(0)},
		Duration: 100 * time.Millisecond,
		Seed:     7,
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	f := res.FleetReport
	if f == nil {
		t.Fatal("no fleet report on a fat-tree run")
	}
	if !f.MergeExact {
		t.Fatal("fat-tree fleet merge diverged from the single-node table")
	}
	if f.FailInstance != 0 || len(f.Rows) != len(res.Comparison) {
		t.Fatalf("failure accounting off: fail=%d rows=%d comparison=%d",
			f.FailInstance, len(f.Rows), len(res.Comparison))
	}
	rli, ok := f.Row("rli")
	if !ok || rli.Degraded.Flows+rli.FlowsLost != rli.Baseline.Flows {
		t.Fatalf("rli row inconsistent: %+v", rli)
	}
	if !strings.Contains(res.Render(), "fleet collection (3 instances)") {
		t.Fatal("rendered result omits the fleet section")
	}
}

// TestLoseInstanceAggregateOnly pins the aggregate-only passthrough: a
// report with no per-flow records (LDA-style) is not flow-partitioned, so
// instance loss must not touch it.
func TestLoseInstanceAggregateOnly(t *testing.T) {
	in := measure.Report{Estimator: "lda", AggMean: 42 * time.Microsecond, AggSamples: 9}
	out, lost := loseInstance(in, 4, 1)
	if lost != 0 || out.AggMean != in.AggMean || out.AggSamples != in.AggSamples {
		t.Fatalf("aggregate-only report changed under instance loss: %+v lost=%d", out, lost)
	}

	// And a per-flow report loses exactly the failed partition's flows, with
	// the aggregate re-derived from the survivors.
	flows := []measure.FlowEstimate{
		{Key: packet.FlowKey{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 6}, Mean: 10 * time.Microsecond, N: 2},
		{Key: packet.FlowKey{Src: 5, Dst: 6, SrcPort: 7, DstPort: 8, Proto: 6}, Mean: 30 * time.Microsecond, N: 4},
		{Key: packet.FlowKey{Src: 9, Dst: 10, SrcPort: 11, DstPort: 12, Proto: 17}, Mean: 20 * time.Microsecond, N: 1},
	}
	rep := measure.Report{Estimator: "rli", Flows: flows, AggSamples: 7}
	for fail := 0; fail < 3; fail++ {
		out, lost := loseInstance(rep, 3, fail)
		var wantN int64
		var wantW float64
		wantLost := 0
		for _, fe := range flows {
			if int(fe.Key.FastHash()%3) == fail {
				wantLost++
				continue
			}
			wantN += fe.N
			wantW += float64(fe.Mean) * float64(fe.N)
		}
		if lost != wantLost || len(out.Flows) != len(flows)-wantLost || out.AggSamples != wantN {
			t.Fatalf("fail=%d: lost=%d flows=%d aggSamples=%d, want %d/%d/%d",
				fail, lost, len(out.Flows), out.AggSamples, wantLost, len(flows)-wantLost, wantN)
		}
		if wantN > 0 && out.AggMean != time.Duration(wantW/float64(wantN)) {
			t.Fatalf("fail=%d: aggregate mean %v not re-derived from survivors", fail, out.AggMean)
		}
	}
}
