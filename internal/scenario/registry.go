package scenario

import (
	"fmt"
	"sort"
	"time"
)

// Scenario is one registered named scenario: a spec plus the invariant that
// makes the registry a correctness harness. Check inspects a finished run
// and returns nil when the scenario-specific invariant holds; CI runs every
// registered scenario's check (the scenario-matrix job and
// TestScenarioRegistrySmoke).
type Scenario struct {
	Name string
	// Stresses describes the latency pathology the scenario manufactures.
	Stresses string
	// Invariant describes, in prose, what Check asserts.
	Invariant string
	// Spec is the runnable configuration (CI-sized; scale up via the spec
	// JSON front-end).
	Spec Spec
	// Check validates a finished run of Spec.
	Check func(*Result) error
}

// registry holds every named scenario, keyed by name.
var registry = map[string]Scenario{}

func register(sc Scenario) {
	if _, dup := registry[sc.Name]; dup {
		panic("scenario: duplicate registration of " + sc.Name)
	}
	if sc.Check == nil {
		panic("scenario: " + sc.Name + " registered without an invariant check")
	}
	sc.Spec.Name = sc.Name
	if err := sc.Spec.Validate(); err != nil {
		panic("scenario: " + sc.Name + " spec invalid: " + err.Error())
	}
	registry[sc.Name] = sc
}

// Names returns every registered scenario name, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns a registered scenario.
func Get(name string) (Scenario, bool) {
	sc, ok := registry[name]
	return sc, ok
}

// All returns every registered scenario in name order.
func All() []Scenario {
	out := make([]Scenario, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// RunCheck runs the scenario at its spec seed and applies its invariant.
func (sc Scenario) RunCheck() (*Result, error) {
	res, err := Run(sc.Spec)
	if err != nil {
		return nil, err
	}
	if err := sc.Check(res); err != nil {
		return res, fmt.Errorf("scenario %s: invariant violated: %w", sc.Name, err)
	}
	return res, nil
}

// ---- invariant helpers ----

// intPtr is a literal-pointer helper for spec fields.
func intPtr(i int) *int { return &i }

// requireAccuracy asserts the overall downstream accuracy is sane and
// paper-comparable: estimates exist and the median per-flow relative error
// stays under bound (the repository's small-scale runs sit well above the
// paper's 60s-of-OC-192 numbers; bounds are calibrated per scenario at the
// registered seed and scale, with slack for cross-seed variation).
func requireAccuracy(r *Result, minFlows int, bound float64) error {
	if r.Overall.Flows < minFlows {
		return fmt.Errorf("only %d measured flows, want >= %d", r.Overall.Flows, minFlows)
	}
	if r.Overall.Estimates <= 0 {
		return fmt.Errorf("no estimates produced")
	}
	if !(r.Overall.MedianRelErr >= 0) || r.Overall.MedianRelErr > bound {
		return fmt.Errorf("median relative error %.4f outside [0, %.2f]", r.Overall.MedianRelErr, bound)
	}
	return nil
}

// requireEstimators asserts the unified estimator layer ran: every
// mechanism the spec requested has a comparison row from this single pass,
// the RLI row produced per-flow estimates with accounted reference
// overhead, and at least one passive baseline produced an estimate to
// compare against.
func requireEstimators(r *Result) error {
	want := r.Spec.EffectiveEstimators()
	if len(r.Comparison) != len(want) {
		return fmt.Errorf("comparison has %d rows, spec requested %d (%v)", len(r.Comparison), len(want), want)
	}
	baselineSamples := int64(0)
	for i, name := range want {
		c := r.Comparison[i]
		if c.Estimator != name {
			return fmt.Errorf("comparison row %d is %q, want %q", i, c.Estimator, name)
		}
		if name == "rli" {
			if c.Flows == 0 || c.Samples == 0 {
				return fmt.Errorf("rli comparison row is empty (%d flows, %d samples)", c.Flows, c.Samples)
			}
			if c.Overhead.InjectedPkts == 0 {
				return fmt.Errorf("rli row accounts no injected reference packets")
			}
		} else {
			// AggSamples counts actual observations (LDA's fixed sketch
			// overhead would make a records-based guard vacuous).
			baselineSamples += c.Samples + c.AggSamples
		}
	}
	if len(want) > 1 && baselineSamples == 0 {
		return fmt.Errorf("no baseline estimator observed anything; shared taps are not attached")
	}
	return nil
}

// requireCollector asserts the run streamed its estimates through the
// sharded collection plane.
func requireCollector(r *Result) error {
	if r.Samples == 0 || len(r.Fleet) == 0 {
		return fmt.Errorf("collector saw %d samples / %d flows; estimates are not streaming", r.Samples, len(r.Fleet))
	}
	if r.Samples != uint64(r.Overall.Estimates) {
		return fmt.Errorf("collector ingested %d samples but receivers produced %d estimates", r.Samples, r.Overall.Estimates)
	}
	return nil
}

func init() {
	small := func() TopologySpec {
		return TopologySpec{
			Kind:        TopoFatTree,
			K:           4,
			LinkBps:     200e6,
			Propagation: time.Microsecond,
			ProcDelay:   500 * time.Nanosecond,
			QueueBytes:  96 << 10,
		}
	}

	// baseline-tandem: the paper's own Figure-3 shape as a scenario — the
	// regression anchor tying the engine back to §4's evaluation.
	register(Scenario{
		Name:      "baseline-tandem",
		Stresses:  "persistent cross-traffic congestion at a tandem bottleneck (§4.1 random model)",
		Invariant: "RLI produces per-flow estimates with median relative error within paper-comparable small-scale bounds",
		Spec: Spec{
			Version: SpecVersion,
			Topology: TopologySpec{
				Kind:       TopoTandem,
				LinkBps:    200e6,
				QueueBytes: 96 << 10,
			},
			Workload: WorkloadSpec{
				LoadFrac:   0.22,
				CrossModel: CrossUniform,
				CrossUtil:  0.93,
			},
			Deploy:   DeploymentSpec{Scheme: SchemeStatic, StaticN: 50},
			Duration: 400 * time.Millisecond,
			Seed:     1,
		},
		Check: func(r *Result) error {
			if err := requireAccuracy(r, 50, 0.60); err != nil {
				return err
			}
			if err := requireCollector(r); err != nil {
				return err
			}
			if err := requireEstimators(r); err != nil {
				return err
			}
			if r.HotLinkUtil < 0.80 {
				return fmt.Errorf("bottleneck utilization %.2f; cross traffic is not congesting the link", r.HotLinkUtil)
			}
			return nil
		},
	})

	// telemetry-loss: the baseline tandem run re-scored after seeded
	// export-frame loss. The estimates themselves are untouched — what
	// degrades is what the collection tier receives, which is exactly the
	// failure mode the swp reliable transport exists to remove.
	register(Scenario{
		Name:      "telemetry-loss",
		Stresses:  "a lossy telemetry export path: 40% of export frames dropped between measurement and collection",
		Invariant: "every estimator gains a degraded comparison row; RLI loses flow coverage proportional to dropped frames while the surviving flows keep their lossless accuracy",
		Spec: Spec{
			Version: SpecVersion,
			Topology: TopologySpec{
				Kind:       TopoTandem,
				LinkBps:    200e6,
				QueueBytes: 96 << 10,
			},
			Workload: WorkloadSpec{
				LoadFrac:   0.22,
				CrossModel: CrossUniform,
				CrossUtil:  0.93,
			},
			Deploy:    DeploymentSpec{Scheme: SchemeStatic, StaticN: 50},
			Telemetry: &TelemetrySpec{LossRate: 0.4, FrameRecords: 4},
			Duration:  400 * time.Millisecond,
			Seed:      1,
		},
		Check: func(r *Result) error {
			if err := requireAccuracy(r, 50, 0.60); err != nil {
				return err
			}
			if err := requireCollector(r); err != nil {
				return err
			}
			if err := requireEstimators(r); err != nil {
				return err
			}
			t := r.Telemetry
			if t == nil {
				return fmt.Errorf("spec requested telemetry loss but the result carries no telemetry report")
			}
			if len(t.Rows) != len(r.Comparison) {
				return fmt.Errorf("telemetry report has %d rows, comparison %d", len(t.Rows), len(r.Comparison))
			}
			for i, row := range t.Rows {
				if row.Estimator != r.Comparison[i].Estimator {
					return fmt.Errorf("telemetry row %d is %q, comparison row is %q", i, row.Estimator, r.Comparison[i].Estimator)
				}
				if row.Baseline.Flows != r.Comparison[i].Flows {
					return fmt.Errorf("%s telemetry baseline (%d flows) diverges from the lossless comparison (%d)",
						row.Estimator, row.Baseline.Flows, r.Comparison[i].Flows)
				}
			}
			rli, _ := t.Row("rli")
			if rli.FramesTotal < 10 {
				return fmt.Errorf("rli exported only %d frames; too few for the loss model to bite", rli.FramesTotal)
			}
			if rli.FramesDropped == 0 {
				return fmt.Errorf("40%% frame loss dropped nothing across %d rli frames", rli.FramesTotal)
			}
			if rli.Degraded.Flows >= rli.Baseline.Flows || rli.Degraded.Flows == 0 {
				return fmt.Errorf("rli flow coverage %d -> %d under loss; want a strict, non-total reduction",
					rli.Baseline.Flows, rli.Degraded.Flows)
			}
			// Loss removes records, it does not corrupt them: the surviving
			// flows carry their lossless estimates, so the degraded median
			// error must stay within the scenario's accuracy regime rather
			// than blow up.
			if !(rli.Degraded.MedianRelErr >= 0) || rli.Degraded.MedianRelErr > 0.60 {
				return fmt.Errorf("degraded rli median relative error %.4f outside [0, 0.60]", rli.Degraded.MedianRelErr)
			}
			return nil
		},
	})

	// fleet-partition: the baseline tandem stream collected by a fleet of
	// four flow-partitioned instances instead of one node. The invariant is
	// the distributed tier's whole correctness claim: merging the four
	// partition snapshots reproduces the single-node flow table bit-for-bit.
	register(Scenario{
		Name:      "fleet-partition",
		Stresses:  "distributed collection: the export stream flow-partitioned across a 4-instance rlird fleet",
		Invariant: "the merged fleet flow table is bit-identical to the single-node table and every partition carries traffic",
		Spec: Spec{
			Version: SpecVersion,
			Topology: TopologySpec{
				Kind:       TopoTandem,
				LinkBps:    200e6,
				QueueBytes: 96 << 10,
			},
			Workload: WorkloadSpec{
				LoadFrac:   0.22,
				CrossModel: CrossUniform,
				CrossUtil:  0.93,
			},
			Deploy:   DeploymentSpec{Scheme: SchemeStatic, StaticN: 50},
			Fleet:    &FleetSpec{Instances: 4},
			Duration: 400 * time.Millisecond,
			Seed:     1,
		},
		Check: func(r *Result) error {
			if err := requireCollector(r); err != nil {
				return err
			}
			f := r.FleetReport
			if f == nil {
				return fmt.Errorf("spec requested a fleet but the result carries no fleet report")
			}
			if !f.MergeExact {
				return fmt.Errorf("merged fleet flow table diverged from the single-node table")
			}
			if f.Instances != 4 || len(f.PerInstance) != 4 {
				return fmt.Errorf("fleet report covers %d/%d instances, want 4", f.Instances, len(f.PerInstance))
			}
			if f.MergedFlows != len(r.Fleet) {
				return fmt.Errorf("merged table has %d flows, single node %d", f.MergedFlows, len(r.Fleet))
			}
			var samples uint64
			for _, in := range f.PerInstance {
				if in.Samples == 0 || in.Flows == 0 {
					return fmt.Errorf("instance %d collected nothing; partitioning is degenerate", in.Instance)
				}
				samples += in.Samples
			}
			if samples != r.Samples {
				return fmt.Errorf("partitions hold %d samples, the run produced %d", samples, r.Samples)
			}
			if len(f.Rows) != 0 || f.FailInstance != -1 {
				return fmt.Errorf("no failure was injected but the report carries one")
			}
			return nil
		},
	})

	// fleet-instance-loss: the same partitioned fleet with instance 1 killed
	// mid-collection. Its partition is gone; the scenario must keep working
	// and quantify the per-estimator accuracy cost against unchanged ground
	// truth rather than erroring.
	register(Scenario{
		Name:      "fleet-instance-loss",
		Stresses:  "a collection-tier instance failure: one of four partitions dies with its share of the stream",
		Invariant: "the degraded fleet still answers; RLI loses exactly the dead partition's flows while surviving flows keep their lossless accuracy",
		Spec: Spec{
			Version: SpecVersion,
			Topology: TopologySpec{
				Kind:       TopoTandem,
				LinkBps:    200e6,
				QueueBytes: 96 << 10,
			},
			Workload: WorkloadSpec{
				LoadFrac:   0.22,
				CrossModel: CrossUniform,
				CrossUtil:  0.93,
			},
			Deploy:   DeploymentSpec{Scheme: SchemeStatic, StaticN: 50},
			Fleet:    &FleetSpec{Instances: 4, FailInstance: intPtr(1)},
			Duration: 400 * time.Millisecond,
			Seed:     1,
		},
		Check: func(r *Result) error {
			if err := requireCollector(r); err != nil {
				return err
			}
			f := r.FleetReport
			if f == nil {
				return fmt.Errorf("spec requested a fleet but the result carries no fleet report")
			}
			if !f.MergeExact {
				return fmt.Errorf("merged fleet flow table diverged from the single-node table")
			}
			if f.FailInstance != 1 || !f.PerInstance[1].Failed {
				return fmt.Errorf("fail_instance 1 was requested but the report marks %d", f.FailInstance)
			}
			if want := f.MergedFlows - f.PerInstance[1].Flows; f.DegradedFlows != want {
				return fmt.Errorf("degraded table has %d flows, want %d (full %d minus the dead partition's %d)",
					f.DegradedFlows, want, f.MergedFlows, f.PerInstance[1].Flows)
			}
			if len(f.Rows) != len(r.Comparison) {
				return fmt.Errorf("fleet report has %d estimator rows, comparison %d", len(f.Rows), len(r.Comparison))
			}
			rli, ok := f.Row("rli")
			if !ok {
				return fmt.Errorf("no rli row in the fleet report")
			}
			if rli.FlowsLost == 0 {
				return fmt.Errorf("instance 1 held no rli flows; the failure scenario is vacuous")
			}
			if rli.Degraded.Flows != rli.Baseline.Flows-rli.FlowsLost || rli.Degraded.Flows == 0 {
				return fmt.Errorf("rli flow coverage %d -> %d losing %d; want a strict, non-total reduction",
					rli.Baseline.Flows, rli.Degraded.Flows, rli.FlowsLost)
			}
			// Instance loss removes whole flows, it does not corrupt the
			// survivors: the degraded accuracy must stay in the scenario's
			// lossless regime — a quantified loss, not an error.
			if !(rli.Degraded.MedianRelErr >= 0) || rli.Degraded.MedianRelErr > 0.60 {
				return fmt.Errorf("degraded rli median relative error %.4f outside [0, 0.60]", rli.Degraded.MedianRelErr)
			}
			return nil
		},
	})

	// fattree-allpairs: uniform inter-pod any-to-any — the "whole fabric
	// instrumented" deployment with a receiver at every ToR.
	register(Scenario{
		Name:      "fattree-allpairs",
		Stresses:  "network-wide any-to-any load with every ToR monitored (full RLIR fan-out)",
		Invariant: "every monitored router produces estimates; reverse-ECMP demux never misattributes; accuracy bounded",
		Spec: Spec{
			Version:  SpecVersion,
			Topology: small(),
			Workload: WorkloadSpec{Pattern: PatternAllPairs, LoadFrac: 0.35, DestPod: -1},
			Deploy:   DeploymentSpec{Scheme: SchemeStatic, StaticN: 50, Demux: DemuxReverseECMP},
			Duration: 150 * time.Millisecond,
			Seed:     1,
		},
		Check: func(r *Result) error {
			if err := requireAccuracy(r, 100, 0.80); err != nil {
				return err
			}
			if err := requireCollector(r); err != nil {
				return err
			}
			if err := requireEstimators(r); err != nil {
				return err
			}
			if r.Misattribution != 0 {
				return fmt.Errorf("reverse-ECMP misattribution %.4f, want exactly 0", r.Misattribution)
			}
			for _, rs := range r.Routers {
				if rs.Summary.Estimates == 0 {
					return fmt.Errorf("router %s (%s) produced no estimates", rs.Router, rs.Segment)
				}
			}
			return nil
		},
	})

	// incast: many-to-one fan-in oversubscribing one access link, the
	// classic partition/aggregate pathology (PAPERS.md: RepFlow, low-latency
	// DCN survey).
	register(Scenario{
		Name:      "incast",
		Stresses:  "many-to-one fan-in oversubscribing a single host access link",
		Invariant: "the victim access link saturates, its delay is queue-dominated, and RLI still tracks per-flow latency",
		Spec: Spec{
			Version:  SpecVersion,
			Topology: small(),
			Workload: WorkloadSpec{Pattern: PatternIncast, LoadFrac: 1.6, IncastFanIn: 8, DestPod: -1},
			Deploy:   DeploymentSpec{Scheme: SchemeStatic, StaticN: 50, Demux: DemuxReverseECMP},
			Duration: 200 * time.Millisecond,
			Seed:     1,
		},
		Check: func(r *Result) error {
			if err := requireAccuracy(r, 8, 0.80); err != nil {
				return err
			}
			if err := requireCollector(r); err != nil {
				return err
			}
			if err := requireEstimators(r); err != nil {
				return err
			}
			if r.HotLinkUtil < 0.90 {
				return fmt.Errorf("victim link utilization %.2f; incast is not saturating it", r.HotLinkUtil)
			}
			// Queue-dominated: the measured true median dwarfs the quiescent
			// core->host path time (~2 store-and-forward hops, < 150µs at
			// this scale).
			if r.TrueP50 < 500*time.Microsecond {
				return fmt.Errorf("true median delay %v; expected a queue-dominated (>500µs) victim path", r.TrueP50)
			}
			return nil
		},
	})

	// microburst: on/off offered load whose bursts saturate the destination
	// links while the average stays moderate — the paper's bursty model
	// generalized to a fabric workload.
	register(Scenario{
		Name:      "microburst",
		Stresses:  "on/off microbursts: saturating bursts with idle gaps at moderate average load",
		Invariant: "delay distribution is strongly bimodal (p99 >> p50) and interpolation still tracks the bursts",
		Spec: Spec{
			Version:  SpecVersion,
			Topology: small(),
			Workload: WorkloadSpec{
				Pattern:     PatternConverging,
				LoadFrac:    0.45,
				BurstOn:     10 * time.Millisecond,
				BurstPeriod: 40 * time.Millisecond,
				DestPod:     -1,
			},
			Deploy:   DeploymentSpec{Scheme: SchemeStatic, StaticN: 50, Demux: DemuxReverseECMP},
			Duration: 240 * time.Millisecond,
			Seed:     1,
		},
		Check: func(r *Result) error {
			// The paper's Figure 4(c) claim: bursty congestion produces
			// large, slowly-varying delays that interpolation tracks far
			// better than persistent random congestion — so the accuracy
			// bound here is much tighter than the other scenarios'.
			if err := requireAccuracy(r, 50, 0.20); err != nil {
				return err
			}
			if err := requireCollector(r); err != nil {
				return err
			}
			if err := requireEstimators(r); err != nil {
				return err
			}
			// The microburst signature: average load moderate (the link is
			// idle between bursts) while the median delay is queue-dominated
			// (every burst saturates the victim links).
			if r.HotLinkUtil > 0.70 {
				return fmt.Errorf("average utilization %.2f; bursts are not leaving idle gaps", r.HotLinkUtil)
			}
			if r.TrueP50 < time.Millisecond {
				return fmt.Errorf("true median delay %v; bursts should hold the queue deep (>= 1ms)", r.TrueP50)
			}
			return nil
		},
	})

	// degraded-link: one core's down-link loses most of its rate mid-run.
	// The per-segment view must localize the slowdown to that core's
	// segment — the operational use the paper motivates (Figure 1's "which
	// segment is slow").
	register(Scenario{
		Name:      "degraded-link",
		Stresses:  "a mid-run link-rate degradation at one core's down-link (scheduled fault window)",
		Invariant: "the degraded core's segment shows the highest estimated latency, well above every healthy segment",
		Spec: Spec{
			Version:  SpecVersion,
			Topology: small(),
			Workload: WorkloadSpec{Pattern: PatternConverging, LoadFrac: 0.55, DestPod: -1},
			Faults: []FaultSpec{{
				Kind:       FaultLinkDegrade,
				CoreJ:      0,
				CoreI:      0,
				DownPod:    3,
				Start:      30 * time.Millisecond,
				End:        280 * time.Millisecond,
				RateFactor: 0.1,
			}},
			Deploy:   DeploymentSpec{Scheme: SchemeStatic, StaticN: 50, Demux: DemuxReverseECMP},
			Duration: 300 * time.Millisecond,
			Seed:     1,
		},
		Check: func(r *Result) error {
			if err := requireAccuracy(r, 50, 0.80); err != nil {
				return err
			}
			if err := requireCollector(r); err != nil {
				return err
			}
			if err := requireEstimators(r); err != nil {
				return err
			}
			faulty, ok := r.Segment("core0.0->tor3.0")
			if !ok {
				return fmt.Errorf("no flows resolved onto the degraded segment core0.0->tor3.0")
			}
			// Segment boundaries follow the paper's egress timestamping, so
			// the degraded port's own queue sits upstream of the measured
			// span; what the segment must still show is the 10x slower
			// serialization of every packet crossing the degraded link.
			for _, seg := range r.Segments {
				if seg.Name == faulty.Name {
					continue
				}
				if faulty.EstMean < seg.EstMean*3/2 {
					return fmt.Errorf("degraded segment est mean %v not clearly above healthy %s (%v)",
						faulty.EstMean, seg.Name, seg.EstMean)
				}
			}
			return nil
		},
	})

	// ecmp-skew: physically differentiated core paths. Demultiplexing onto
	// the right reference stream is exactly what §3.1 argues is required;
	// with skewed paths a misattributed packet inherits the wrong baseline.
	register(Scenario{
		Name:      "ecmp-skew",
		Stresses:  "ECMP path asymmetry: per-core propagation skew makes parallel paths genuinely different",
		Invariant: "reverse-ECMP demux never misattributes and per-core segment estimates reproduce the physical skew ordering",
		Spec: Spec{
			Version: SpecVersion,
			Topology: func() TopologySpec {
				t := small()
				t.CoreSkew = 150 * time.Microsecond
				return t
			}(),
			Workload: WorkloadSpec{Pattern: PatternConverging, LoadFrac: 0.45, DestPod: -1},
			Deploy:   DeploymentSpec{Scheme: SchemeStatic, StaticN: 50, Demux: DemuxReverseECMP},
			Duration: 200 * time.Millisecond,
			Seed:     1,
		},
		Check: func(r *Result) error {
			if err := requireAccuracy(r, 50, 0.80); err != nil {
				return err
			}
			if err := requireCollector(r); err != nil {
				return err
			}
			if err := requireEstimators(r); err != nil {
				return err
			}
			if r.Misattribution != 0 {
				return fmt.Errorf("reverse-ECMP misattribution %.4f, want exactly 0", r.Misattribution)
			}
			// Core (j,i) carries (j*2+i)*150µs extra propagation; the spread
			// between the fastest and slowest segment estimates must show
			// most of the 3*150µs physical spread.
			var minMean, maxMean time.Duration
			for idx, seg := range r.Segments {
				if idx == 0 || seg.EstMean < minMean {
					minMean = seg.EstMean
				}
				if seg.EstMean > maxMean {
					maxMean = seg.EstMean
				}
			}
			if spread := maxMean - minMean; spread < 300*time.Microsecond {
				return fmt.Errorf("segment estimate spread %v; 450µs of physical skew should be visible", spread)
			}
			return nil
		},
	})

	// adversarial-delay: a compromised aggregation switch hides extra
	// latency from the packets it predicts will be measured (RLI references
	// and the periodic sampler's subset). The detection report pairs the
	// run with a clean run at the same seed: secret-key hash sampling must
	// expose the hidden delay, and the predictable mechanisms must miss it
	// — the attack RLI alone cannot see.
	register(Scenario{
		Name:      "adversarial-delay",
		Stresses:  "a delay-gaming aggregation switch sparing RLI references and predicted periodic samples",
		Invariant: "hash-sample exposes the hidden delay shift; periodic-sample and reference-based RLI both stay blind to it",
		Spec: Spec{
			Version:  SpecVersion,
			Topology: small(),
			Workload: WorkloadSpec{Pattern: PatternConverging, LoadFrac: 0.45, DestPod: -1},
			Adversary: &AdversarySpec{
				AggPod: 3,
				AggIdx: 0,
				Extra:  2 * time.Millisecond,
				Start:  20 * time.Millisecond,
				End:    200 * time.Millisecond,
			},
			Deploy:   DeploymentSpec{Scheme: SchemeStatic, StaticN: 50, Demux: DemuxReverseECMP},
			Duration: 200 * time.Millisecond,
			Seed:     1,
		},
		Check: func(r *Result) error {
			// Accuracy is NOT bounded tightly here: the adversary's whole
			// point is that reference-based estimates go wrong. Flows and
			// estimates still must exist and stream.
			if err := requireAccuracy(r, 50, 0.99); err != nil {
				return err
			}
			if err := requireCollector(r); err != nil {
				return err
			}
			if err := requireEstimators(r); err != nil {
				return err
			}
			d := r.Detection
			if d == nil {
				return fmt.Errorf("spec set an adversary but the result carries no detection report")
			}
			if len(d.Rows) != len(r.Comparison) {
				return fmt.Errorf("detection report has %d rows, comparison %d", len(d.Rows), len(r.Comparison))
			}
			if d.TrueShift < d.HiddenDelay/10 {
				return fmt.Errorf("true aggregate shift %v under 10%% of the %v hidden delay; the adversary is not biting",
					d.TrueShift, d.HiddenDelay)
			}
			hash, ok := d.Row("hash-sample")
			if !ok || !hash.Detected {
				return fmt.Errorf("hash-sample exposed only %.2f of the hidden shift (want >= %.2f): the keyed sample set is predictable",
					hash.Exposure, d.Threshold)
			}
			per, ok := d.Row("periodic-sample")
			if !ok || per.Detected {
				return fmt.Errorf("periodic-sample exposed %.2f of the hidden shift; the adversary failed to spare its predictable subset",
					per.Exposure)
			}
			rli, ok := d.Row("rli")
			if !ok || rli.Detected {
				return fmt.Errorf("rli exposed %.2f of the hidden shift; spared references should have blinded interpolation",
					rli.Exposure)
			}
			return nil
		},
	})

	// trace-replay: one core down-link's delay and loss driven by a
	// recorded time series instead of synthetic constants — the replay path
	// cmd/scenario -link-trace exercises with tracegen-produced files,
	// registered here with the rows inline so CI needs no fixture file.
	register(Scenario{
		Name:      "trace-replay",
		Stresses:  "a recorded per-link delay/loss time series replayed on one core down-link",
		Invariant: "the emulated link applies the trace (drops observed, reported bounds match the rows) and RLI accuracy stays bounded through it",
		Spec: Spec{
			Version:  SpecVersion,
			Topology: small(),
			Workload: WorkloadSpec{Pattern: PatternConverging, LoadFrac: 0.45, DestPod: -1},
			LinkTrace: &LinkTraceSpec{
				CoreJ:   0,
				CoreI:   0,
				DownPod: 3,
				Samples: []LinkTraceSampleSpec{
					{T: 0, Delay: 0, Loss: 0},
					{T: 25 * time.Millisecond, Delay: 150 * time.Microsecond, Loss: 0},
					{T: 50 * time.Millisecond, Delay: 400 * time.Microsecond, Loss: 0.05},
					{T: 75 * time.Millisecond, Delay: 250 * time.Microsecond, Loss: 0},
					{T: 100 * time.Millisecond, Delay: 50 * time.Microsecond, Loss: 0.02},
					{T: 125 * time.Millisecond, Delay: 300 * time.Microsecond, Loss: 0},
					{T: 150 * time.Millisecond, Delay: 100 * time.Microsecond, Loss: 0.04},
					{T: 175 * time.Millisecond, Delay: 0, Loss: 0},
				},
			},
			Deploy:   DeploymentSpec{Scheme: SchemeStatic, StaticN: 50, Demux: DemuxReverseECMP},
			Duration: 200 * time.Millisecond,
			Seed:     1,
		},
		Check: func(r *Result) error {
			if err := requireAccuracy(r, 50, 0.80); err != nil {
				return err
			}
			if err := requireCollector(r); err != nil {
				return err
			}
			if err := requireEstimators(r); err != nil {
				return err
			}
			lt := r.LinkTrace
			if lt == nil {
				return fmt.Errorf("spec set a link trace but the result carries no link-trace report")
			}
			if lt.Link != "core0.0->pod3" {
				return fmt.Errorf("link-trace report covers %s, want core0.0->pod3", lt.Link)
			}
			if lt.Rows != 8 || lt.Span != 175*time.Millisecond {
				return fmt.Errorf("link-trace report replayed %d rows over %v, want 8 over 175ms", lt.Rows, lt.Span)
			}
			if lt.MaxDelay != 400*time.Microsecond || lt.MaxLoss != 0.05 {
				return fmt.Errorf("link-trace bounds delay=%v loss=%.3f diverge from the rows", lt.MaxDelay, lt.MaxLoss)
			}
			if lt.Drops == 0 {
				return fmt.Errorf("loss episodes up to 5%% dropped nothing; the emulator is not applied")
			}
			return nil
		},
	})

	// repflow: every flow sent twice over (usually) distinct ECMP paths,
	// first arrival wins — the replication trick from the RepFlow line of
	// work (PAPERS.md), here measuring what path diversity buys at the
	// monitored segment and that demux attribution survives it.
	register(Scenario{
		Name:      "repflow",
		Stresses:  "flow replication: each flow duplicated onto a second ECMP path, first arrival wins",
		Invariant: "replicated pairs mostly take distinct core paths, first-arrival latency never exceeds either copy's mean, and reverse-ECMP attribution stays exact",
		Spec: Spec{
			Version:  SpecVersion,
			Topology: small(),
			Workload: WorkloadSpec{Pattern: PatternConverging, LoadFrac: 0.30, DestPod: -1, Replicate: true},
			Deploy:   DeploymentSpec{Scheme: SchemeStatic, StaticN: 50, Demux: DemuxReverseECMP},
			Duration: 200 * time.Millisecond,
			Seed:     1,
		},
		Check: func(r *Result) error {
			if err := requireAccuracy(r, 50, 0.80); err != nil {
				return err
			}
			if err := requireCollector(r); err != nil {
				return err
			}
			if err := requireEstimators(r); err != nil {
				return err
			}
			rf := r.RepFlow
			if rf == nil {
				return fmt.Errorf("spec set replicate but the result carries no repflow report")
			}
			if rf.Pairs < 100 {
				return fmt.Errorf("only %d replicated pairs; the workload is too thin to score", rf.Pairs)
			}
			if rf.Matched*10 < rf.Pairs*8 {
				return fmt.Errorf("only %d of %d pairs matched at the monitored edge", rf.Matched, rf.Pairs)
			}
			if rf.DistinctPathFrac < 0.3 {
				return fmt.Errorf("distinct-path fraction %.3f; the replica port flip is not diversifying ECMP", rf.DistinctPathFrac)
			}
			if rf.FirstArrivalMean <= 0 ||
				rf.FirstArrivalMean > rf.PrimaryMean || rf.FirstArrivalMean > rf.ReplicaMean {
				return fmt.Errorf("first-arrival mean %v not below primary %v / replica %v",
					rf.FirstArrivalMean, rf.PrimaryMean, rf.ReplicaMean)
			}
			if r.Misattribution != 0 {
				return fmt.Errorf("reverse-ECMP misattribution %.4f under replication, want exactly 0", r.Misattribution)
			}
			return nil
		},
	})

	// hotspot: skewed senders concentrating load through one ToR's uplinks
	// (the survey's "skewed ECMP / elephant concentration" pathology).
	register(Scenario{
		Name:      "hotspot",
		Stresses:  "sender skew: half the flows originate under one hot ToR, concentrating upstream load",
		Invariant: "the hot ToR's core-facing traffic dominates upstream estimates and accuracy stays bounded",
		Spec: Spec{
			Version:  SpecVersion,
			Topology: small(),
			Workload: WorkloadSpec{Pattern: PatternHotspot, LoadFrac: 0.55, HotspotSkew: 0.5, DestPod: -1},
			Deploy:   DeploymentSpec{Scheme: SchemeStatic, StaticN: 50, Demux: DemuxReverseECMP},
			Duration: 200 * time.Millisecond,
			Seed:     1,
		},
		Check: func(r *Result) error {
			if err := requireAccuracy(r, 50, 0.80); err != nil {
				return err
			}
			if err := requireCollector(r); err != nil {
				return err
			}
			if err := requireEstimators(r); err != nil {
				return err
			}
			// The hot ToR is pod 0 (dest pod 3 => hot pod (3+1)%4 = 0), ToR 0.
			// Its flows funnel through the cores; upstream core receivers
			// must be seeing estimates from every core (the hot traffic is
			// ECMP-spread, not collapsed onto one path).
			for _, rs := range r.Routers {
				if rs.Segment == "tor-uplink->core" && rs.Summary.Estimates == 0 {
					return fmt.Errorf("core %s saw no upstream estimates; hot traffic is not spreading", rs.Router)
				}
			}
			return nil
		},
	})
}
