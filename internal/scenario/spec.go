package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/netmeasure/rlir/internal/measure"
	"github.com/netmeasure/rlir/internal/topo"
	"github.com/netmeasure/rlir/internal/trace"
)

// SpecVersion is the current Spec schema version. Encoded specs carry it so
// a future incompatible change can be detected instead of misread.
const SpecVersion = 1

// Topology kinds.
const (
	// TopoTandem is the paper's Figure-3 shape: two switches in series, the
	// second link the bottleneck where cross traffic merges.
	TopoTandem = "tandem"
	// TopoFatTree is the k-ary fat-tree of Figure 1.
	TopoFatTree = "fattree"
)

// Simulation engine kinds.
const (
	// EngineSequential runs the whole scenario on one event engine — the
	// default, and the reference semantics.
	EngineSequential = "sequential"
	// EngineParallel partitions the fat-tree across a conservative parallel
	// engine (core switches on one lane, pods round-robin across the rest)
	// with the core-link propagation delay as lookahead. Results are
	// bit-identical to sequential at any partition count.
	EngineParallel = "parallel"
)

// Workload patterns (fat-tree only; the tandem workload is fixed by shape).
const (
	// PatternConverging sends flows from every other pod's hosts to the
	// monitored ToR's hosts — the paper's T7 evaluation shape.
	PatternConverging = "converging"
	// PatternAllPairs sends flows between uniformly random inter-pod host
	// pairs; every ToR is monitored.
	PatternAllPairs = "allpairs"
	// PatternIncast fans flows from IncastFanIn fixed source hosts into one
	// destination host, oversubscribing its access link.
	PatternIncast = "incast"
	// PatternHotspot skews flow sources: a HotspotSkew fraction of flows
	// originate under one hot ToR instead of uniformly.
	PatternHotspot = "hotspot"
)

// Fault kinds.
const (
	// FaultLinkDegrade multiplies one core down-link's rate by RateFactor
	// for the window — a renegotiated/dirty-optics link.
	FaultLinkDegrade = "link-degrade"
	// FaultHopDelay adds Extra per-packet processing delay at one
	// aggregation switch for the window — a misbehaving lookup path.
	// Aggregation switches sit inside the downstream measured segment
	// (between the core's egress timestamp and the monitored ToR), so the
	// added delay is visible to RLIR receivers — the same fault site the
	// localization experiment (L1) uses.
	FaultHopDelay = "hop-delay"
)

// Injection schemes.
const (
	SchemeStatic   = "static"
	SchemeAdaptive = "adaptive"
)

// Downstream demultiplexing strategies (§3.1 names).
const (
	DemuxReverseECMP = "reverse-ecmp"
	DemuxMark        = "mark"
	DemuxOracle      = "oracle"
	DemuxNone        = "none"
)

// Cross-traffic models (tandem topology).
const (
	CrossUniform = "uniform"
	CrossBursty  = "bursty"
	CrossNone    = "none"
)

// TopologySpec describes the physical network.
type TopologySpec struct {
	// Kind is TopoTandem or TopoFatTree.
	Kind string `json:"kind"`
	// K is the fat-tree arity (even, >= 4 for distinct core paths). Ignored
	// for tandem.
	K int `json:"k,omitempty"`
	// LinkBps is the line rate of every link.
	LinkBps float64 `json:"link_bps"`
	// Propagation is the per-link propagation delay.
	Propagation time.Duration `json:"propagation_ns,omitempty"`
	// ProcDelay is the per-switch processing delay.
	ProcDelay time.Duration `json:"proc_delay_ns,omitempty"`
	// QueueBytes bounds every output queue (0 = unbounded).
	QueueBytes int `json:"queue_bytes,omitempty"`
	// CoreSkew differentiates physical core paths: core (j,i)'s down-link
	// toward each monitored pod gets (j*K/2+i)*CoreSkew extra propagation.
	// Nonzero skew is what makes demultiplexing matter (§3.1).
	CoreSkew time.Duration `json:"core_skew_ns,omitempty"`
}

// WorkloadSpec describes the offered traffic.
type WorkloadSpec struct {
	// Pattern selects the fat-tree traffic shape (default converging).
	Pattern string `json:"pattern,omitempty"`
	// LoadFrac is the offered load as a fraction of the relevant capacity:
	// the monitored ToRs' aggregate host bandwidth for converging/hotspot/
	// allpairs, the single destination host link for incast (values > 1
	// model oversubscription).
	LoadFrac float64 `json:"load_frac"`
	// FlowAlpha / FlowMaxLen override the bounded-Pareto flow-length
	// distribution (0 keeps trace.DefaultFlowLenDist).
	FlowAlpha  float64 `json:"flow_alpha,omitempty"`
	FlowMaxLen int     `json:"flow_max_len,omitempty"`
	// MeanGap overrides the mean in-flow packet spacing (0 keeps default).
	MeanGap time.Duration `json:"mean_gap_ns,omitempty"`
	// IncastFanIn is the number of fixed source hosts for PatternIncast.
	IncastFanIn int `json:"incast_fan_in,omitempty"`
	// HotspotSkew is the fraction of flows sourced under the hot ToR for
	// PatternHotspot.
	HotspotSkew float64 `json:"hotspot_skew,omitempty"`
	// BurstOn/BurstPeriod, when set, gate the workload through on/off
	// microburst periods (admitted only during the first BurstOn of every
	// BurstPeriod) at the same average offered load. On the tandem topology
	// they shape the cross traffic's bursty model instead.
	BurstOn     time.Duration `json:"burst_on_ns,omitempty"`
	BurstPeriod time.Duration `json:"burst_period_ns,omitempty"`
	// DestPod / DestToR locate the monitored ToR for single-destination
	// patterns (defaults: last pod, ToR 0).
	DestPod int `json:"dest_pod,omitempty"`
	DestToR int `json:"dest_tor,omitempty"`
	// CrossModel / CrossUtil drive the tandem topology's cross traffic:
	// the model thins a 1.5x-offered cross trace to hit CrossUtil at the
	// bottleneck. Ignored on fat-trees.
	CrossModel string  `json:"cross_model,omitempty"`
	CrossUtil  float64 `json:"cross_util,omitempty"`
	// Replicate, when true, sends every flow twice (RepFlow-style): the
	// original plus a replica under a source port differing in one bit, so
	// ECMP usually spreads the pair across distinct core paths and the
	// logical flow's latency is the first arrival's. Fat-tree only; the run
	// gains a RepFlowReport scoring attribution under replication.
	Replicate bool `json:"replicate,omitempty"`
}

// FaultSpec schedules one mid-run fault.
type FaultSpec struct {
	// Kind is FaultLinkDegrade or FaultHopDelay.
	Kind string `json:"kind"`
	// CoreJ/CoreI address FaultLinkDegrade's core switch (j, i), j,i in
	// [0, K/2).
	CoreJ int `json:"core_j,omitempty"`
	CoreI int `json:"core_i,omitempty"`
	// DownPod selects which pod's down-link FaultLinkDegrade degrades.
	DownPod int `json:"down_pod,omitempty"`
	// AggPod/AggIdx address FaultHopDelay's aggregation switch.
	AggPod int `json:"agg_pod,omitempty"`
	AggIdx int `json:"agg_idx,omitempty"`
	// Start/End bound the fault window within the run, Start < End.
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	// RateFactor is FaultLinkDegrade's rate multiplier in (0, 1).
	RateFactor float64 `json:"rate_factor,omitempty"`
	// Extra is FaultHopDelay's added processing delay.
	Extra time.Duration `json:"extra_ns,omitempty"`
}

// site identifies what a fault acts on, for overlap checking.
func (f FaultSpec) site() string {
	if f.Kind == FaultLinkDegrade {
		return fmt.Sprintf("%s/core%d.%d/pod%d", f.Kind, f.CoreJ, f.CoreI, f.DownPod)
	}
	return fmt.Sprintf("%s/agg%d.%d", f.Kind, f.AggPod, f.AggIdx)
}

// DeploymentSpec describes the RLIR measurement deployment.
type DeploymentSpec struct {
	// Scheme is SchemeStatic or SchemeAdaptive.
	Scheme string `json:"scheme"`
	// StaticN is the static scheme's 1-and-N gap (default 50).
	StaticN int `json:"static_n,omitempty"`
	// MinGap/MaxGap bound the adaptive scheme (defaults 10/300).
	MinGap int `json:"min_gap,omitempty"`
	MaxGap int `json:"max_gap,omitempty"`
	// Demux selects the downstream demultiplexing strategy (default
	// reverse-ecmp, the paper's computable option).
	Demux string `json:"demux,omitempty"`
	// Estimators lists the measurement mechanisms attached to the run's
	// single simulation pass (internal/measure registry names). Empty runs
	// the full default comparison set; "rli" — the deployment under test —
	// is always included. Baseline estimators are passive taps, so adding
	// them never perturbs the simulation or the RLI results.
	Estimators []string `json:"estimators,omitempty"`
	// MaxInstances budgets the deployment: Validate fails when the spec
	// needs more sender+receiver instances than this. 0 = unlimited.
	MaxInstances int `json:"max_instances,omitempty"`
}

// TelemetrySpec models telemetry-export loss applied to a finished run's
// estimator reports. Per-flow records travel from the measurement points to
// the collection tier in export frames of FrameRecords records, and each
// frame is lost independently with probability LossRate; an aggregate-only
// mechanism (LDA) exports its whole deliverable as one frame. The simulation
// itself is untouched — the run gains a second comparison table scoring each
// mechanism's surviving telemetry against the same ground truth, so the
// result quantifies how every estimator's accuracy degrades when its export
// path drops data (and what the swp reliable transport buys back).
type TelemetrySpec struct {
	// LossRate is the per-frame drop probability in [0, 1).
	LossRate float64 `json:"loss_rate"`
	// FrameRecords is how many per-flow records share one export frame
	// (0 selects DefaultTelemetryFrameRecords).
	FrameRecords int `json:"frame_records,omitempty"`
}

// FleetSpec replays the run's export stream across an in-process fleet of
// Instances collection partitions, flow-partitioned exactly the way
// fleet.Router shards traffic across rlird endpoints. The simulation is
// untouched; the run gains a FleetReport proving the merged fleet flow table
// bit-identical to the single-node one, and — when FailInstance is set —
// quantifying what every estimator loses when that partition dies with its
// data (scored against the unchanged ground truth).
type FleetSpec struct {
	// Instances is the fleet size (>= 1).
	Instances int `json:"instances"`
	// FailInstance, when set, kills that partition: its share of the
	// collected stream is absent from the degraded view and every estimator
	// is re-scored on what the surviving instances hold.
	FailInstance *int `json:"fail_instance,omitempty"`
}

// AdversarySpec compromises one aggregation switch: during the window it
// adds Extra delay to every packet EXCEPT those it predicts will be
// measured — RLI reference packets (identifiable on the wire by kind) and
// the periodic sampler's subset (every PredictRate-th packet ID, computable
// from headers alone). The site is the same one FaultHopDelay uses, inside
// the downstream measured segment, so an honest estimator looking at the
// right packets WOULD see the delay; whether it does is the detection
// question the run's DetectionReport answers. Secret-key hash sampling
// ("hash-sample") is the counter: the switch cannot predict its subset, so
// the hidden delay lands on sampled packets and is exposed.
type AdversarySpec struct {
	// AggPod/AggIdx address the compromised aggregation switch.
	AggPod int `json:"agg_pod,omitempty"`
	AggIdx int `json:"agg_idx,omitempty"`
	// Extra is the hidden per-packet delay added to unmeasured traffic.
	Extra time.Duration `json:"extra_ns"`
	// Start/End bound the compromised window within the run, Start < End.
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	// PredictRate is the 1-in-N periodic sampling rate the switch assumes
	// when sparing predicted samples (0: measure.DefaultSampleRate).
	PredictRate int `json:"predict_rate,omitempty"`
}

// LinkTraceSampleSpec is one inline link-trace row (trace.LinkSample in
// spec form).
type LinkTraceSampleSpec struct {
	// T is the row's offset from run start.
	T time.Duration `json:"t_ns"`
	// Delay is the extra one-way delay in effect from T.
	Delay time.Duration `json:"delay_ns"`
	// Loss is the drop probability in [0, 1] in effect from T.
	Loss float64 `json:"loss"`
}

// LinkTraceSpec replays a recorded per-link time series on one core
// down-link: each row sets the link's extra one-way delay and loss
// probability from its offset until the next row (trace.LinkTrace
// semantics). Registered scenarios carry the rows inline so they are
// self-contained; cmd/scenario -link-trace loads them from a
// tracegen-producible JSON/CSV file instead.
type LinkTraceSpec struct {
	// CoreJ/CoreI/DownPod address the emulated core down-link, the same way
	// FaultLinkDegrade does.
	CoreJ   int `json:"core_j,omitempty"`
	CoreI   int `json:"core_i,omitempty"`
	DownPod int `json:"down_pod,omitempty"`
	// Samples is the time series, strictly increasing in T.
	Samples []LinkTraceSampleSpec `json:"samples"`
}

// Spec is one complete declarative scenario.
type Spec struct {
	Version  int            `json:"version"`
	Name     string         `json:"name"`
	Topology TopologySpec   `json:"topology"`
	Workload WorkloadSpec   `json:"workload"`
	Faults   []FaultSpec    `json:"faults,omitempty"`
	Deploy   DeploymentSpec `json:"deploy"`
	// Telemetry, when set, re-scores every estimator after seeded export
	// loss (Result.Telemetry carries the degraded comparison).
	Telemetry *TelemetrySpec `json:"telemetry,omitempty"`
	// Fleet, when set, partitions the collected stream across an in-process
	// fleet and verifies exact-merge equivalence (Result.FleetReport).
	Fleet *FleetSpec `json:"fleet,omitempty"`
	// Adversary, when set, compromises one aggregation switch with selective
	// delay; the run gains a paired-clean-run DetectionReport scoring every
	// estimator on whether it exposed the hidden delay (Result.Detection).
	Adversary *AdversarySpec `json:"adversary,omitempty"`
	// LinkTrace, when set, drives one core down-link's delay/loss from a
	// recorded time series instead of the synthetic constants
	// (Result.LinkTrace reports what the emulation did).
	LinkTrace *LinkTraceSpec `json:"link_trace,omitempty"`
	// Duration is the trace window length.
	Duration time.Duration `json:"duration_ns"`
	// Seed drives every random choice; derived per-run seeds come from it
	// in multi-seed sweeps.
	Seed int64 `json:"seed"`
	// Engine selects the simulation engine: EngineSequential (default) or
	// EngineParallel. The parallel engine requires a fat-tree topology —
	// only core links provide the propagation delay it uses as lookahead.
	Engine string `json:"engine,omitempty"`
	// Partitions is the parallel engine's lane count: 1 core lane plus
	// pod lanes, at most K+1 total. 0 resolves to K+1 (one lane per pod).
	// Only meaningful with EngineParallel.
	Partitions int `json:"partitions,omitempty"`
}

// DefaultSpec returns a valid k=4 fat-tree converging scenario to build
// variations from.
func DefaultSpec() Spec {
	return Spec{
		Version: SpecVersion,
		Name:    "default",
		Topology: TopologySpec{
			Kind:        TopoFatTree,
			K:           4,
			LinkBps:     1e9,
			Propagation: time.Microsecond,
			ProcDelay:   500 * time.Nanosecond,
			QueueBytes:  256 << 10,
		},
		Workload: WorkloadSpec{
			Pattern:  PatternConverging,
			LoadFrac: 0.55,
			DestPod:  -1, // resolved to K-1
		},
		Deploy: DeploymentSpec{
			Scheme:  SchemeStatic,
			StaticN: 50,
			Demux:   DemuxReverseECMP,
		},
		Duration: 300 * time.Millisecond,
		Seed:     1,
	}
}

// EncodeJSON renders the spec as indented JSON (the flag/file front-end
// format; durations are nanosecond integers).
func (s Spec) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// DecodeJSON parses and validates a JSON spec. Unknown fields are rejected
// — a misspelled knob must fail loudly, not silently run a different
// scenario than the one written.
func DecodeJSON(data []byte) (Spec, error) {
	var s Spec
	// An omitted dest_pod means the documented default (the last pod, the
	// -1 sentinel), not pod 0; an explicit "dest_pod": 0 still selects
	// pod 0.
	s.Workload.DestPod = -1
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: bad spec JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// half returns K/2, the fat-tree's per-layer fan-out.
func (s Spec) half() int { return s.Topology.K / 2 }

// parallel reports whether the spec selects the parallel engine.
func (s Spec) parallel() bool { return s.Engine == EngineParallel }

// partitions resolves the effective lane count for the parallel engine.
func (s Spec) partitions() int {
	if s.Partitions == 0 {
		return s.Topology.K + 1
	}
	return s.Partitions
}

// destPod resolves the default destination pod (last pod).
func (s Spec) destPod() int {
	if s.Workload.DestPod < 0 {
		return s.Topology.K - 1
	}
	return s.Workload.DestPod
}

// EffectiveEstimators resolves the deployment's estimator list: an empty
// spec list selects the full registered comparison set, and "rli" — the
// mechanism whose deployment the spec describes — is always present and
// listed first. Order is deterministic and duplicate-free; it is the order
// of the result's comparison table.
func (s Spec) EffectiveEstimators() []string {
	if len(s.Deploy.Estimators) == 0 {
		return measure.Names()
	}
	out := []string{"rli"}
	seen := map[string]bool{"rli": true}
	for _, n := range s.Deploy.Estimators {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// monitoredToRs returns the (pod, tor) pairs carrying downstream receivers.
func (s Spec) monitoredToRs() [][2]int {
	if s.Workload.Pattern == PatternAllPairs {
		var out [][2]int
		for p := 0; p < s.Topology.K; p++ {
			for e := 0; e < s.half(); e++ {
				out = append(out, [2]int{p, e})
			}
		}
		return out
	}
	return [][2]int{{s.destPod(), s.Workload.DestToR}}
}

// Instances returns the number of measurement instances (RLI senders plus
// receivers) the deployment needs — the quantity DeploymentSpec.MaxInstances
// budgets. Tandem deployments always need two (one sender, one receiver).
func (s Spec) Instances() int {
	if s.Topology.Kind == TopoTandem {
		return 2
	}
	k, h := s.Topology.K, s.half()
	monitored := s.monitoredToRs()
	pods := map[int]bool{}
	for _, m := range monitored {
		pods[m[0]] = true
	}
	sourceToRs := k * h // allpairs: every ToR sends
	if s.Workload.Pattern != PatternAllPairs {
		sourceToRs = (k - 1) * h // all but the destination pod
	}
	upSenders := sourceToRs * h      // one per ToR uplink
	coreReceivers := h * h           // one per core
	downSenders := h * h * len(pods) // one per core down-port toward a monitored pod
	downReceivers := len(monitored)  // one per monitored ToR
	return upSenders + coreReceivers + downSenders + downReceivers
}

// Validate checks the spec and returns the first error found. Every
// rejection names the offending field so a CLI/CI user can fix the spec
// without reading engine code.
func (s Spec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("scenario: spec version %d, this engine speaks version %d", s.Version, SpecVersion)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario: non-positive duration %v", s.Duration)
	}
	t := s.Topology
	switch t.Kind {
	case TopoTandem:
		if len(s.Faults) > 0 {
			return fmt.Errorf("scenario: faults target core switches and need a fattree topology")
		}
	case TopoFatTree:
		tc := topo.DefaultConfig()
		tc.K = t.K
		tc.LinkBps = t.LinkBps
		if err := tc.Validate(); err != nil {
			return err
		}
		if t.K < 4 {
			return fmt.Errorf("scenario: fattree K=%d has no distinct core paths; need K >= 4", t.K)
		}
	default:
		return fmt.Errorf("scenario: unknown topology kind %q (valid: %s, %s)", t.Kind, TopoTandem, TopoFatTree)
	}
	if t.LinkBps <= 0 {
		return fmt.Errorf("scenario: non-positive link rate %v", t.LinkBps)
	}
	if t.Propagation < 0 || t.ProcDelay < 0 || t.CoreSkew < 0 {
		return fmt.Errorf("scenario: negative topology delay (propagation=%v proc=%v skew=%v)",
			t.Propagation, t.ProcDelay, t.CoreSkew)
	}
	if t.QueueBytes < 0 {
		return fmt.Errorf("scenario: negative queue bound %d", t.QueueBytes)
	}
	switch s.Engine {
	case "", EngineSequential:
		if s.Partitions != 0 {
			return fmt.Errorf("scenario: partitions=%d requires engine %q", s.Partitions, EngineParallel)
		}
	case EngineParallel:
		if t.Kind != TopoFatTree {
			return fmt.Errorf("scenario: engine %q requires a fattree topology (core links provide the lookahead); %q has none", EngineParallel, t.Kind)
		}
		if s.Partitions < 0 || s.Partitions > t.K+1 {
			return fmt.Errorf("scenario: partitions %d outside [1, K+1=%d]", s.Partitions, t.K+1)
		}
	default:
		return fmt.Errorf("scenario: unknown engine %q (valid: %s, %s)", s.Engine, EngineSequential, EngineParallel)
	}
	if err := s.validateWorkload(); err != nil {
		return err
	}
	if err := s.validateFaults(); err != nil {
		return err
	}
	if t := s.Telemetry; t != nil {
		if t.LossRate < 0 || t.LossRate >= 1 {
			return fmt.Errorf("scenario: telemetry loss rate %v outside [0, 1)", t.LossRate)
		}
		if t.FrameRecords < 0 {
			return fmt.Errorf("scenario: negative telemetry frame_records %d", t.FrameRecords)
		}
	}
	if f := s.Fleet; f != nil {
		if f.Instances < 1 {
			return fmt.Errorf("scenario: fleet instances %d < 1", f.Instances)
		}
		if fi := f.FailInstance; fi != nil && (*fi < 0 || *fi >= f.Instances) {
			return fmt.Errorf("scenario: fleet fail_instance %d outside [0, %d)", *fi, f.Instances)
		}
	}
	if a := s.Adversary; a != nil {
		if t.Kind != TopoFatTree {
			return fmt.Errorf("scenario: adversary compromises an aggregation switch and needs a fattree topology")
		}
		h := s.half()
		if a.AggPod < 0 || a.AggPod >= t.K || a.AggIdx < 0 || a.AggIdx >= h {
			return fmt.Errorf("scenario: adversary targets aggregation switch (%d,%d) outside pods [0,%d) x aggs [0,%d)",
				a.AggPod, a.AggIdx, t.K, h)
		}
		if a.Extra <= 0 {
			return fmt.Errorf("scenario: adversary adds non-positive delay %v", a.Extra)
		}
		if a.Start < 0 || a.End <= a.Start {
			return fmt.Errorf("scenario: adversary window [%v, %v) is empty or negative", a.Start, a.End)
		}
		if a.End > s.Duration {
			return fmt.Errorf("scenario: adversary window ends at %v, past the %v run", a.End, s.Duration)
		}
		if a.PredictRate < 0 {
			return fmt.Errorf("scenario: negative adversary predict_rate %d", a.PredictRate)
		}
	}
	if l := s.LinkTrace; l != nil {
		if t.Kind != TopoFatTree {
			return fmt.Errorf("scenario: link_trace emulates a core down-link and needs a fattree topology")
		}
		h := s.half()
		if l.CoreJ < 0 || l.CoreJ >= h || l.CoreI < 0 || l.CoreI >= h {
			return fmt.Errorf("scenario: link_trace targets core (%d,%d) outside the %dx%d core grid", l.CoreJ, l.CoreI, h, h)
		}
		if l.DownPod < 0 || l.DownPod >= t.K {
			return fmt.Errorf("scenario: link_trace down-pod %d outside [0, %d)", l.DownPod, t.K)
		}
		if _, err := l.trace(); err != nil {
			return err
		}
	}
	return s.validateDeploy()
}

func (s Spec) validateWorkload() error {
	w := s.Workload
	if w.LoadFrac <= 0 || w.LoadFrac > 4 {
		return fmt.Errorf("scenario: load fraction %v outside (0, 4]", w.LoadFrac)
	}
	if w.FlowAlpha < 0 || w.FlowMaxLen < 0 || w.MeanGap < 0 {
		return fmt.Errorf("scenario: negative flow-length/gap override")
	}
	if (w.BurstOn == 0) != (w.BurstPeriod == 0) {
		return fmt.Errorf("scenario: burst_on and burst_period must be set together")
	}
	if w.BurstOn < 0 || w.BurstPeriod < 0 || w.BurstOn > w.BurstPeriod {
		return fmt.Errorf("scenario: invalid burst timing on=%v period=%v", w.BurstOn, w.BurstPeriod)
	}
	if s.Topology.Kind == TopoTandem {
		if w.Replicate {
			return fmt.Errorf("scenario: replicate needs a fattree topology (the tandem has a single path)")
		}
		switch w.CrossModel {
		case "", CrossNone, CrossUniform, CrossBursty:
		default:
			return fmt.Errorf("scenario: unknown cross model %q (valid: %s, %s, %s)",
				w.CrossModel, CrossUniform, CrossBursty, CrossNone)
		}
		if w.CrossUtil < 0 || w.CrossUtil > 1 {
			return fmt.Errorf("scenario: cross utilization %v outside [0, 1]", w.CrossUtil)
		}
		return nil
	}
	k, h := s.Topology.K, s.half()
	switch w.Pattern {
	case "", PatternConverging, PatternAllPairs:
	case PatternIncast:
		if w.IncastFanIn < 2 {
			return fmt.Errorf("scenario: incast fan-in %d < 2", w.IncastFanIn)
		}
		if hosts := (k - 1) * h * h; w.IncastFanIn > hosts {
			return fmt.Errorf("scenario: incast fan-in %d exceeds the %d hosts outside the destination pod", w.IncastFanIn, hosts)
		}
	case PatternHotspot:
		if w.HotspotSkew <= 0 || w.HotspotSkew > 1 {
			return fmt.Errorf("scenario: hotspot skew %v outside (0, 1]", w.HotspotSkew)
		}
	default:
		return fmt.Errorf("scenario: unknown workload pattern %q (valid: %s, %s, %s, %s)",
			w.Pattern, PatternConverging, PatternAllPairs, PatternIncast, PatternHotspot)
	}
	if w.DestPod < -1 || w.DestPod >= k {
		return fmt.Errorf("scenario: destination pod %d outside [0, %d)", w.DestPod, k)
	}
	if w.DestToR < 0 || w.DestToR >= h {
		return fmt.Errorf("scenario: destination ToR %d outside [0, %d)", w.DestToR, h)
	}
	return nil
}

func (s Spec) validateFaults() error {
	h := s.half()
	type window struct {
		start, end time.Duration
	}
	bySite := map[string][]window{}
	for i, f := range s.Faults {
		switch f.Kind {
		case FaultLinkDegrade:
			if f.RateFactor <= 0 || f.RateFactor >= 1 {
				return fmt.Errorf("scenario: fault %d rate factor %v outside (0, 1)", i, f.RateFactor)
			}
			if f.DownPod < 0 || f.DownPod >= s.Topology.K {
				return fmt.Errorf("scenario: fault %d down-pod %d outside [0, %d)", i, f.DownPod, s.Topology.K)
			}
			if f.CoreJ < 0 || f.CoreJ >= h || f.CoreI < 0 || f.CoreI >= h {
				return fmt.Errorf("scenario: fault %d targets core (%d,%d) outside the %dx%d core grid",
					i, f.CoreJ, f.CoreI, h, h)
			}
		case FaultHopDelay:
			if f.Extra <= 0 {
				return fmt.Errorf("scenario: fault %d adds non-positive delay %v", i, f.Extra)
			}
			if f.AggPod < 0 || f.AggPod >= s.Topology.K || f.AggIdx < 0 || f.AggIdx >= h {
				return fmt.Errorf("scenario: fault %d targets aggregation switch (%d,%d) outside pods [0,%d) x aggs [0,%d)",
					i, f.AggPod, f.AggIdx, s.Topology.K, h)
			}
		default:
			return fmt.Errorf("scenario: fault %d has unknown kind %q (valid: %s, %s)",
				i, f.Kind, FaultLinkDegrade, FaultHopDelay)
		}
		if f.Start < 0 || f.End <= f.Start {
			return fmt.Errorf("scenario: fault %d window [%v, %v) is empty or negative", i, f.Start, f.End)
		}
		if f.End > s.Duration {
			return fmt.Errorf("scenario: fault %d ends at %v, past the %v run", i, f.End, s.Duration)
		}
		site := f.site()
		for _, w := range bySite[site] {
			if f.Start < w.end && w.start < f.End {
				return fmt.Errorf("scenario: fault %d window [%v, %v) overlaps an earlier fault at %s",
					i, f.Start, f.End, site)
			}
		}
		bySite[site] = append(bySite[site], window{f.Start, f.End})
	}
	return nil
}

func (s Spec) validateDeploy() error {
	d := s.Deploy
	switch d.Scheme {
	case SchemeStatic:
		if d.StaticN < 0 {
			return fmt.Errorf("scenario: negative static gap %d", d.StaticN)
		}
	case SchemeAdaptive:
		if d.MinGap < 0 || d.MaxGap < 0 || (d.MaxGap > 0 && d.MaxGap < d.MinGap) {
			return fmt.Errorf("scenario: adaptive gaps [%d, %d] invalid", d.MinGap, d.MaxGap)
		}
	default:
		return fmt.Errorf("scenario: unknown injection scheme %q (valid: %s, %s)", d.Scheme, SchemeStatic, SchemeAdaptive)
	}
	switch d.Demux {
	case "", DemuxReverseECMP, DemuxMark, DemuxOracle, DemuxNone:
	default:
		return fmt.Errorf("scenario: unknown demux strategy %q (valid: %s, %s, %s, %s)",
			d.Demux, DemuxReverseECMP, DemuxMark, DemuxOracle, DemuxNone)
	}
	for _, name := range d.Estimators {
		if !measure.Registered(name) {
			return fmt.Errorf("scenario: unknown estimator %q (valid: %s)",
				name, strings.Join(measure.Names(), ", "))
		}
	}
	if d.MaxInstances < 0 {
		return fmt.Errorf("scenario: negative instance budget %d", d.MaxInstances)
	}
	if d.MaxInstances > 0 {
		if need := s.Instances(); need > d.MaxInstances {
			return fmt.Errorf("scenario: deployment needs %d measurement instances, budget allows %d", need, d.MaxInstances)
		}
	}
	return nil
}

// trace converts the inline rows to a validated trace.LinkTrace.
func (l *LinkTraceSpec) trace() (*trace.LinkTrace, error) {
	rows := make([]trace.LinkSample, len(l.Samples))
	for i, s := range l.Samples {
		rows[i] = trace.LinkSample{At: s.T, Delay: s.Delay, Loss: s.Loss}
	}
	return trace.NewLinkTrace(rows)
}

// sortedFaults returns the faults ordered by start time (stable), the order
// the engine schedules them in.
func (s Spec) sortedFaults() []FaultSpec {
	out := append([]FaultSpec(nil), s.Faults...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
