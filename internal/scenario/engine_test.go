package scenario

import (
	"testing"
	"time"
)

// quickSpec is a fat-tree spec small enough for property tests.
func quickSpec() Spec {
	s := DefaultSpec()
	s.Topology.LinkBps = 200e6
	s.Topology.QueueBytes = 96 << 10
	s.Duration = 60 * time.Millisecond
	return s
}

// TestRunDeterministic pins the engine's determinism contract: the same
// spec and seed produce identical results.
func TestRunDeterministic(t *testing.T) {
	s := quickSpec()
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Injected != b.Injected || a.Overall != b.Overall || a.Misattribution != b.Misattribution ||
		a.EstP99 != b.EstP99 || a.Samples != b.Samples {
		t.Fatalf("two runs of one spec differ:\n%s\n%s", a.Render(), b.Render())
	}
	if len(a.Routers) != len(b.Routers) || len(a.Segments) != len(b.Segments) || len(a.Fleet) != len(b.Fleet) {
		t.Fatalf("result shapes differ: routers %d/%d segments %d/%d fleet %d/%d",
			len(a.Routers), len(b.Routers), len(a.Segments), len(b.Segments), len(a.Fleet), len(b.Fleet))
	}
	for i := range a.Routers {
		if a.Routers[i] != b.Routers[i] {
			t.Fatalf("router %d differs: %+v vs %+v", i, a.Routers[i], b.Routers[i])
		}
	}
}

// TestRunSeedVariation sanity-checks that different seeds give different
// workloads (otherwise multi-seed CIs are fiction).
func TestRunSeedVariation(t *testing.T) {
	s := quickSpec()
	a, err := RunSeed(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSeed(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Injected == b.Injected && a.Overall.MedianRelErr == b.Overall.MedianRelErr {
		t.Fatal("seeds 1 and 2 produced identical runs")
	}
}

// TestHopDelayFaultRaisesSegment pins the second fault kind end to end: a
// +400µs processing delay at the destination pod's aggregation switch 1
// lies inside the downstream measured segment of every flow arriving via
// core group 1, so exactly the core1.* segments must show the shift — and
// the estimator must track it (references cross the same delayed hop).
func TestHopDelayFaultRaisesSegment(t *testing.T) {
	s := quickSpec()
	s.Duration = 100 * time.Millisecond
	s.Faults = []FaultSpec{{
		Kind:   FaultHopDelay,
		AggPod: 3, AggIdx: 1,
		Extra: 400 * time.Microsecond,
		Start: 0,
		End:   100 * time.Millisecond,
	}}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, slowName := range []string{"core1.0->tor3.0", "core1.1->tor3.0"} {
		slow, ok := res.Segment(slowName)
		if !ok {
			t.Fatalf("no flows through delayed segment %s", slowName)
		}
		for _, healthyName := range []string{"core0.0->tor3.0", "core0.1->tor3.0"} {
			seg, ok := res.Segment(healthyName)
			if !ok {
				t.Fatalf("no flows through healthy segment %s", healthyName)
			}
			if slow.TrueMean < seg.TrueMean+300*time.Microsecond {
				t.Fatalf("delayed segment %s true mean %v not ~400µs above healthy %s (%v)",
					slowName, slow.TrueMean, healthyName, seg.TrueMean)
			}
			if slow.EstMean < seg.EstMean+200*time.Microsecond {
				t.Fatalf("estimates did not track the injected delay: %v vs %v", slow.EstMean, seg.EstMean)
			}
		}
	}
}

// TestFaultWindowRestores pins fault scheduling: a fault confined to the
// first half of the run must leave a smaller latency footprint than the
// same fault active for the whole run.
func TestFaultWindowRestores(t *testing.T) {
	base := quickSpec()
	base.Duration = 100 * time.Millisecond
	whole := base
	whole.Faults = []FaultSpec{{Kind: FaultHopDelay, AggPod: 3, AggIdx: 0,
		Extra: 400 * time.Microsecond, Start: 0, End: 100 * time.Millisecond}}
	half := base
	half.Faults = []FaultSpec{{Kind: FaultHopDelay, AggPod: 3, AggIdx: 0,
		Extra: 400 * time.Microsecond, Start: 0, End: 50 * time.Millisecond}}
	rw, err := Run(whole)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Run(half)
	if err != nil {
		t.Fatal(err)
	}
	sw, ok1 := rw.Segment("core0.0->tor3.0")
	sh, ok2 := rh.Segment("core0.0->tor3.0")
	if !ok1 || !ok2 {
		t.Fatal("no flows through the delayed core")
	}
	if sh.TrueMean >= sw.TrueMean {
		t.Fatalf("half-run fault (%v) should hurt less than whole-run fault (%v)", sh.TrueMean, sw.TrueMean)
	}
}

// TestRunMultiWorkerInvariance pins the sweep determinism contract on real
// scenario runs: sweeping with 1 worker and 4 workers yields identical
// per-seed results.
func TestRunMultiWorkerInvariance(t *testing.T) {
	s := quickSpec()
	s.Duration = 40 * time.Millisecond
	seq, err := RunMulti(s, MultiOpts{Seeds: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunMulti(s, MultiOpts{Seeds: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.MedianRelErr != par.MedianRelErr || seq.P90RelErr != par.P90RelErr ||
		seq.HotLinkUtil != par.HotLinkUtil || len(seq.Fleet) != len(par.Fleet) {
		t.Fatalf("worker count changed sweep output:\n%s\n%s", seq.Render(), par.Render())
	}
	for i := range seq.PerSeed {
		if seq.PerSeed[i].Overall != par.PerSeed[i].Overall {
			t.Fatalf("seed %d differs across worker counts", i)
		}
	}
	if seq.MedianRelErr.N != 4 {
		t.Fatalf("metric N = %d, want 4", seq.MedianRelErr.N)
	}
}

// TestRunRejectsInvalidSpec pins that Run validates before building.
func TestRunRejectsInvalidSpec(t *testing.T) {
	s := quickSpec()
	s.Topology.K = 3
	if _, err := Run(s); err == nil {
		t.Fatal("Run accepted an invalid spec")
	}
	if _, err := RunMulti(s, MultiOpts{Seeds: 2}); err == nil {
		t.Fatal("RunMulti accepted an invalid spec")
	}
}
