package scenario

import (
	"math"
	"reflect"
	"testing"
	"time"
)

// The parallel engine's acceptance bar: at partitions 1, 2 and 4 every
// fat-tree registry scenario must reproduce the sequential engine's Result
// bit-identically (reflect.DeepEqual), with only the Spec's engine-selection
// fields allowed to differ. Running this under -race additionally proves the
// lane/effect discipline sound.

// normalizeEngine blanks the engine-selection fields so sequential and
// parallel Results compare on substance, and canonicalizes NaN floats
// (an estimator with no samples reports NaN error quantiles, and NaN is
// never DeepEqual to itself).
func normalizeEngine(r *Result) {
	r.Spec.Engine = ""
	r.Spec.Partitions = 0
	canonNaN(reflect.ValueOf(r).Elem())
}

func canonNaN(v reflect.Value) {
	switch v.Kind() {
	case reflect.Float64, reflect.Float32:
		if math.IsNaN(v.Float()) && v.CanSet() {
			v.SetFloat(-123456789.5)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			canonNaN(v.Field(i))
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			canonNaN(v.Index(i))
		}
	case reflect.Ptr:
		if !v.IsNil() {
			canonNaN(v.Elem())
		}
	}
}

func TestParallelBitIdenticalRegistry(t *testing.T) {
	// The adversarial/trace-driven families must ride this acceptance bar:
	// their hooks (selective delay, link emulation, replication) were built
	// to be pure per (packet, instant), and this pins that they actually
	// are. Guard against a registry refactor silently dropping them.
	covered := map[string]bool{}
	for _, sc := range All() {
		if sc.Spec.Topology.Kind != TopoFatTree {
			continue
		}
		covered[sc.Name] = true
	}
	for _, name := range []string{"adversarial-delay", "trace-replay", "repflow"} {
		if !covered[name] {
			t.Fatalf("scenario %s is not a fat-tree registry scenario; bit-identity coverage lost", name)
		}
	}
	for _, sc := range All() {
		if sc.Spec.Topology.Kind != TopoFatTree {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			want, err := Run(sc.Spec)
			if err != nil {
				t.Fatalf("sequential run: %v", err)
			}
			normalizeEngine(want)
			for _, parts := range []int{1, 2, 4} {
				spec := sc.Spec
				spec.Engine = EngineParallel
				spec.Partitions = parts
				got, err := Run(spec)
				if err != nil {
					t.Fatalf("parallel run (partitions=%d): %v", parts, err)
				}
				normalizeEngine(got)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("partitions=%d: parallel Result differs from sequential", parts)
				}
			}
		})
	}
}

// TestParallelBitIdenticalFaultsExport exercises the pieces the registry's
// CI-sized specs may not cover together: mid-run faults on both core and
// pod lanes, core skew, telemetry re-scoring and an export capture.
func TestParallelBitIdenticalFaultsExport(t *testing.T) {
	spec := DefaultSpec()
	spec.Name = "parallel-faults"
	spec.Duration = 40 * time.Millisecond
	spec.Topology.CoreSkew = 200 * time.Nanosecond
	spec.Faults = []FaultSpec{
		{Kind: FaultLinkDegrade, CoreJ: 0, CoreI: 1, DownPod: 3, Start: 5 * time.Millisecond, End: 20 * time.Millisecond, RateFactor: 0.25},
		{Kind: FaultHopDelay, AggPod: 3, AggIdx: 0, Start: 10 * time.Millisecond, End: 30 * time.Millisecond, Extra: 3 * time.Microsecond},
	}
	spec.Telemetry = &TelemetrySpec{LossRate: 0.2}

	want, err := Export(spec, spec.Seed)
	if err != nil {
		t.Fatalf("sequential export: %v", err)
	}
	normalizeEngine(want.Result)
	for _, parts := range []int{1, 2, 4} {
		ps := spec
		ps.Engine = EngineParallel
		ps.Partitions = parts
		got, err := Export(ps, ps.Seed)
		if err != nil {
			t.Fatalf("parallel export (partitions=%d): %v", parts, err)
		}
		normalizeEngine(got.Result)
		if !reflect.DeepEqual(got.Result, want.Result) {
			t.Errorf("partitions=%d: Result differs", parts)
		}
		if !reflect.DeepEqual(got.Samples, want.Samples) {
			t.Errorf("partitions=%d: export sample stream differs", parts)
		}
		if !reflect.DeepEqual(got.Records, want.Records) {
			t.Errorf("partitions=%d: export meter records differ", parts)
		}
	}
}

// TestParallelRejectsTandem pins the validation rule: the tandem topology
// has no core links to partition, so engine=parallel must fail loudly.
func TestParallelRejectsTandem(t *testing.T) {
	spec := DefaultSpec()
	spec.Topology = TopologySpec{Kind: TopoTandem, LinkBps: 1e9}
	spec.Workload = WorkloadSpec{LoadFrac: 0.5}
	spec.Engine = EngineParallel
	if err := spec.Validate(); err == nil {
		t.Fatal("tandem + parallel engine validated; want an error")
	}
	spec.Engine = ""
	spec.Partitions = 2
	if err := spec.Validate(); err == nil {
		t.Fatal("partitions without engine=parallel validated; want an error")
	}
}
