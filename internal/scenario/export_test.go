package scenario

import (
	"testing"

	"github.com/netmeasure/rlir/internal/collector"
)

// TestExportMatchesRun proves the capture taps are passive: an Export run
// returns the same Result as a plain run, the captured samples replay into
// a collector bit-identically to the run's own Fleet table, and the records
// summarize exactly the delivered regular traffic.
func TestExportMatchesRun(t *testing.T) {
	sc, ok := Get("baseline-tandem")
	if !ok {
		t.Fatal("baseline-tandem not registered")
	}
	spec := sc.Spec

	tr, err := Export(spec, spec.Seed)
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	plain, err := RunSeed(spec, spec.Seed)
	if err != nil {
		t.Fatalf("RunSeed: %v", err)
	}
	if tr.Result.Overall != plain.Overall {
		t.Errorf("capture perturbed the run: %+v vs %+v", tr.Result.Overall, plain.Overall)
	}
	if uint64(len(tr.Samples)) != plain.Samples {
		t.Fatalf("captured %d samples, run streamed %d", len(tr.Samples), plain.Samples)
	}

	// Replay equivalence: the captured stream folded into a fresh collector
	// reproduces the run's fleet table bit-for-bit.
	c := collector.New(collector.Config{Shards: 3})
	c.Ingest(tr.Samples)
	c.Close()
	replayed := c.Snapshot()
	if len(replayed) != len(plain.Fleet) {
		t.Fatalf("replay has %d flows, run fleet has %d", len(replayed), len(plain.Fleet))
	}
	for i := range replayed {
		a, b := replayed[i], plain.Fleet[i]
		if a.Key != b.Key || a.Est != b.Est || a.True != b.True {
			t.Fatalf("flow %d diverged:\nreplay %+v\nrun    %+v", i, a, b)
		}
	}

	if len(tr.Records) == 0 {
		t.Fatal("no NetFlow records captured")
	}
	for i := 1; i < len(tr.Records); i++ {
		if !tr.Records[i-1].Key.Less(tr.Records[i].Key) {
			t.Fatalf("records not strictly sorted at %d", i)
		}
	}

	// Determinism: a second export is identical.
	tr2, err := Export(spec, spec.Seed)
	if err != nil {
		t.Fatalf("second Export: %v", err)
	}
	if len(tr2.Samples) != len(tr.Samples) || len(tr2.Records) != len(tr.Records) {
		t.Fatalf("export not deterministic: %d/%d samples, %d/%d records",
			len(tr2.Samples), len(tr.Samples), len(tr2.Records), len(tr.Records))
	}
	for i := range tr.Samples {
		if tr.Samples[i] != tr2.Samples[i] {
			t.Fatalf("sample %d diverged across exports", i)
		}
	}
}

// TestExportFatTree covers the fat-tree capture path.
func TestExportFatTree(t *testing.T) {
	sc, ok := Get("degraded-link")
	if !ok {
		t.Fatal("degraded-link not registered")
	}
	tr, err := Export(sc.Spec, sc.Spec.Seed)
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	if len(tr.Samples) == 0 || len(tr.Records) == 0 {
		t.Fatalf("empty capture: %d samples, %d records", len(tr.Samples), len(tr.Records))
	}
	if uint64(len(tr.Samples)) != tr.Result.Samples {
		t.Fatalf("captured %d samples, run streamed %d", len(tr.Samples), tr.Result.Samples)
	}
	// Each record is one delivered flow; delivered flows must cover every
	// flow the receivers estimated.
	recKeys := map[string]bool{}
	for _, r := range tr.Records {
		recKeys[r.Key.String()] = true
	}
	for _, a := range tr.Result.Fleet {
		if !recKeys[a.Key.String()] {
			t.Fatalf("estimated flow %v missing from the exporter records", a.Key)
		}
	}
}
