package scenario

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/fleet"
	"github.com/netmeasure/rlir/internal/measure"
)

// FleetInstance is one collection partition's share of the run.
type FleetInstance struct {
	// Instance is the partition index (fleet.Partition's value).
	Instance int
	// Flows / Samples count what the partition collected.
	Flows   int
	Samples uint64
	// Failed marks the partition the spec killed.
	Failed bool
}

// FleetEstimatorRow scores one estimator before and after an instance loss:
// both rows are measured from the same run and scored against the same
// ground truth, so their difference is exactly what the dead partition's
// data was worth.
type FleetEstimatorRow struct {
	// Estimator is the mechanism's registry name.
	Estimator string
	// FlowsLost counts the per-flow records that lived on the failed
	// instance. Zero for aggregate-only mechanisms (their one deliverable
	// is not flow-partitioned).
	FlowsLost int
	// Baseline / Degraded are the comparison rows with the full fleet and
	// with the failed partition's data gone.
	Baseline measure.Comparison
	Degraded measure.Comparison
}

// FleetReport is a finished run's distributed-collection outcome: the
// partitioned fleet's exact-merge equivalence to the single-node flow table,
// and — when the spec kills an instance — the per-estimator accuracy cost.
type FleetReport struct {
	// Instances is the fleet size.
	Instances int
	// MergeExact reports whether merging every partition's snapshot
	// reproduced the single-node flow table bit-for-bit (reflect.DeepEqual,
	// no tolerance). Flow-disjoint partitioning makes this a theorem; this
	// field is its runtime witness.
	MergeExact bool
	// MergedFlows counts the merged table's rows (== the single-node count
	// whenever MergeExact).
	MergedFlows int
	// FailInstance is the killed partition index, or -1.
	FailInstance int
	// PerInstance lists each partition's share, in index order.
	PerInstance []FleetInstance
	// DegradedFlows counts the merged table's rows without the failed
	// partition (MergedFlows when no failure is injected).
	DegradedFlows int
	// Rows re-scores every estimator under the instance loss, in
	// comparison-table order. Empty when no failure is injected.
	Rows []FleetEstimatorRow
}

// Row returns the named estimator's fleet row.
func (f *FleetReport) Row(name string) (FleetEstimatorRow, bool) {
	for _, r := range f.Rows {
		if r.Estimator == name {
			return r, true
		}
	}
	return FleetEstimatorRow{}, false
}

// Render formats the report as a text table.
func (f *FleetReport) Render() string {
	var b strings.Builder
	exact := "EXACT"
	if !f.MergeExact {
		exact = "DIVERGED"
	}
	fmt.Fprintf(&b, "fleet collection (%d instances): merge %s, %d flows\n", f.Instances, exact, f.MergedFlows)
	for _, in := range f.PerInstance {
		mark := ""
		if in.Failed {
			mark = "  [FAILED]"
		}
		fmt.Fprintf(&b, "  instance %d: %d flows, %d samples%s\n", in.Instance, in.Flows, in.Samples, mark)
	}
	if f.FailInstance >= 0 {
		fmt.Fprintf(&b, "after losing instance %d (%d of %d flows survive):\n",
			f.FailInstance, f.DegradedFlows, f.MergedFlows)
		fmt.Fprintf(&b, "%-16s %10s %14s %22s %22s\n",
			"estimator", "flowsLost", "flows", "medianRelErr", "aggRelErr")
		for _, r := range f.Rows {
			fmt.Fprintf(&b, "%-16s %10d %6d -> %-5d %9.4f -> %-9.4f %9.4f -> %-9.4f\n",
				r.Estimator, r.FlowsLost,
				r.Baseline.Flows, r.Degraded.Flows,
				r.Baseline.MedianRelErr, r.Degraded.MedianRelErr,
				r.Baseline.AggRelErr, r.Degraded.AggRelErr)
		}
	}
	return b.String()
}

// loseInstance thins one estimator's report to what survives when partition
// fail of n dies: per-flow records that hashed onto the dead instance are
// gone, and the aggregate is re-derived from the survivors — the same
// re-derivation a collection tier would do. Aggregate-only reports pass
// through untouched: their single deliverable is not flow-partitioned.
func loseInstance(r measure.Report, n, fail int) (measure.Report, int) {
	if len(r.Flows) == 0 {
		return r, 0
	}
	out := r
	kept := make([]measure.FlowEstimate, 0, len(r.Flows))
	for _, fe := range r.Flows {
		if fleet.Partition(fe.Key, n) != fail {
			kept = append(kept, fe)
		}
	}
	out.Flows = kept
	var aggW float64
	var aggN int64
	for _, fe := range kept {
		aggW += float64(fe.Mean) * float64(fe.N)
		aggN += fe.N
	}
	out.AggSamples = aggN
	out.AggMean = 0
	if aggN > 0 {
		out.AggMean = time.Duration(aggW / float64(aggN))
	}
	return out, len(r.Flows) - len(kept)
}

// applyFleet partitions the run's captured sample stream across f.Instances
// in-process collectors exactly the way fleet.Router shards rlird traffic
// (fleet.Partition on the flow key), then proves the merged fleet table
// against the run's own single-node table and, when the spec kills an
// instance, re-scores every estimator on the surviving partitions. baseline
// is the run's lossless comparison, index-aligned with reports.
func applyFleet(f FleetSpec, cap *capture, truth *measure.Truth, baseline []measure.Comparison, reports []measure.Report, res *Result) *FleetReport {
	n := f.Instances
	rep := &FleetReport{Instances: n, FailInstance: -1}

	parts := make([]*collector.Collector, n)
	for i := range parts {
		parts[i] = collector.New(collector.Config{Shards: 2})
	}
	// One pass in production order: routing preserves per-flow sample order
	// within each partition, which is all collector determinism needs.
	split := make([][]collector.Sample, n)
	for _, s := range cap.samples {
		i := fleet.Partition(s.Key, n)
		split[i] = append(split[i], s)
	}
	snaps := make([][]collector.FlowAgg, n)
	for i, p := range parts {
		p.Ingest(split[i])
		p.Close()
		snaps[i] = p.Snapshot()
		rep.PerInstance = append(rep.PerInstance, FleetInstance{
			Instance: i,
			Flows:    len(snaps[i]),
			Samples:  p.SamplesIngested(),
		})
	}
	merged := collector.Merge(snaps...)
	rep.MergedFlows = len(merged)
	rep.MergeExact = reflect.DeepEqual(merged, res.Fleet)
	rep.DegradedFlows = rep.MergedFlows

	if f.FailInstance == nil {
		return rep
	}
	fail := *f.FailInstance
	rep.FailInstance = fail
	rep.PerInstance[fail].Failed = true
	surviving := make([][]collector.FlowAgg, 0, n-1)
	for i, s := range snaps {
		if i != fail {
			surviving = append(surviving, s)
		}
	}
	rep.DegradedFlows = len(collector.Merge(surviving...))

	thinned := make([]measure.Report, len(reports))
	lost := make([]int, len(reports))
	for i, r := range reports {
		thinned[i], lost[i] = loseInstance(r, n, fail)
	}
	degraded := measure.Compare(truth, thinned...)
	for i := range reports {
		rep.Rows = append(rep.Rows, FleetEstimatorRow{
			Estimator: reports[i].Estimator,
			FlowsLost: lost[i],
			Baseline:  baseline[i],
			Degraded:  degraded[i],
		})
	}
	return rep
}
