package scenario

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/measure"
	"github.com/netmeasure/rlir/internal/packet"
)

func telemetryTestReport(n int) measure.Report {
	r := measure.Report{Estimator: "rli"}
	var w float64
	var cnt int64
	for i := 0; i < n; i++ {
		f := measure.FlowEstimate{
			Key:  packet.FlowKey{Src: packet.Addr(0x0a000001 + i), Dst: 0x0a000100, DstPort: 443, Proto: 6},
			Mean: time.Duration(100+i) * time.Microsecond,
			N:    int64(1 + i%3),
		}
		r.Flows = append(r.Flows, f)
		w += float64(f.Mean) * float64(f.N)
		cnt += f.N
	}
	r.AggSamples = cnt
	r.AggMean = time.Duration(w / float64(cnt))
	return r
}

// TestThinReportFrameLoss pins the loss model's mechanics: frames are
// frameRecords consecutive records, survivors keep their exact estimates,
// and the aggregate is re-derived from what survived.
func TestThinReportFrameLoss(t *testing.T) {
	rep := telemetryTestReport(40)
	thinned, total, dropped := thinReport(rep, 0.5, 8, telemetryRNG(7, "rli"))
	if total != 5 {
		t.Fatalf("40 records in frames of 8 = %d frames, want 5", total)
	}
	if dropped == 0 || dropped == total {
		t.Fatalf("50%% loss over 5 frames dropped %d; want a strict partial loss at this seed", dropped)
	}
	if got, want := len(thinned.Flows), 8*(total-dropped); got != want {
		t.Fatalf("thinned report keeps %d records, want %d (%d surviving frames)", got, want, total-dropped)
	}
	// Survivors are untouched record-for-record.
	kept := map[packet.FlowKey]measure.FlowEstimate{}
	for _, f := range rep.Flows {
		kept[f.Key] = f
	}
	var aggW float64
	var aggN int64
	for _, f := range thinned.Flows {
		if !reflect.DeepEqual(kept[f.Key], f) {
			t.Fatalf("surviving record %v was altered: %+v", f.Key, f)
		}
		aggW += float64(f.Mean) * float64(f.N)
		aggN += f.N
	}
	if thinned.AggSamples != aggN || thinned.AggMean != time.Duration(aggW/float64(aggN)) {
		t.Fatalf("aggregate not re-derived from survivors: %v/%d", thinned.AggMean, thinned.AggSamples)
	}

	// Determinism: the same seed reproduces the same losses.
	again, _, _ := thinReport(rep, 0.5, 8, telemetryRNG(7, "rli"))
	if !reflect.DeepEqual(thinned, again) {
		t.Fatal("thinning is not reproducible for a fixed seed")
	}
	// Zero loss is the identity.
	whole, total0, dropped0 := thinReport(rep, 0, 8, telemetryRNG(7, "rli"))
	if dropped0 != 0 || total0 != 5 || !reflect.DeepEqual(whole.Flows, rep.Flows) {
		t.Fatalf("zero loss must keep every frame: total=%d dropped=%d", total0, dropped0)
	}
}

// TestThinReportAggregateOnly pins the aggregate-only path: the whole
// deliverable is one frame, kept or lost atomically.
func TestThinReportAggregateOnly(t *testing.T) {
	rep := measure.Report{Estimator: "lda", AggMean: time.Millisecond, AggSamples: 1000}
	lost, total, dropped := thinReport(rep, 1-1e-9, 16, telemetryRNG(1, "lda"))
	if total != 1 || dropped != 1 || lost.AggSamples != 0 || lost.AggMean != 0 {
		t.Fatalf("near-certain loss must drop the single aggregate frame: total=%d dropped=%d %+v", total, dropped, lost)
	}
	whole, total, dropped := thinReport(rep, 0, 16, telemetryRNG(1, "lda"))
	if total != 1 || dropped != 0 || whole.AggSamples != 1000 {
		t.Fatalf("zero loss must keep the aggregate: total=%d dropped=%d %+v", total, dropped, whole)
	}
}

// TestTelemetrySpecValidation covers the new spec surface.
func TestTelemetrySpecValidation(t *testing.T) {
	spec := DefaultSpec()
	spec.Telemetry = &TelemetrySpec{LossRate: 0.3, FrameRecords: 8}
	if err := spec.Validate(); err != nil {
		t.Fatalf("valid telemetry spec rejected: %v", err)
	}
	spec.Telemetry = &TelemetrySpec{LossRate: 1.0}
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "telemetry loss rate") {
		t.Fatalf("loss rate 1.0 accepted (err=%v)", err)
	}
	spec.Telemetry = &TelemetrySpec{LossRate: -0.1}
	if err := spec.Validate(); err == nil {
		t.Fatal("negative loss rate accepted")
	}
	spec.Telemetry = &TelemetrySpec{LossRate: 0.3, FrameRecords: -1}
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "frame_records") {
		t.Fatalf("negative frame_records accepted (err=%v)", err)
	}
	// The JSON front-end round-trips the new field.
	spec.Telemetry = &TelemetrySpec{LossRate: 0.25, FrameRecords: 4}
	data, err := spec.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Telemetry, spec.Telemetry) {
		t.Fatalf("telemetry spec did not round-trip: %+v vs %+v", back.Telemetry, spec.Telemetry)
	}
}

// TestTelemetryLossScenarioMulti sweeps the registered scenario across
// seeds and checks the across-seed fold: the degraded coverage must be
// meaningfully below 1 with ~40% of frames dropped, while the surviving
// flows keep lossless accuracy (delta median error stays small).
func TestTelemetryLossScenarioMulti(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	sc, ok := Get("telemetry-loss")
	if !ok {
		t.Fatal("telemetry-loss not registered")
	}
	mr, err := RunMulti(sc.Spec, MultiOpts{Seeds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Telemetry) == 0 {
		t.Fatal("multi-seed sweep carries no telemetry fold")
	}
	rli := mr.Telemetry[0]
	if rli.Name != "rli" {
		t.Fatalf("first telemetry row is %q, want rli", rli.Name)
	}
	if rli.FramesDropped.Mean <= 0 {
		t.Fatalf("mean dropped frames %v, want > 0", rli.FramesDropped.Mean)
	}
	if rli.FlowCoverage.Mean <= 0.2 || rli.FlowCoverage.Mean >= 0.95 {
		t.Fatalf("mean flow coverage %v; 40%% frame loss should land well inside (0.2, 0.95)", rli.FlowCoverage.Mean)
	}
	if math.Abs(rli.DeltaMedianRelErr.Mean) > 0.25 {
		t.Fatalf("loss shifts the median error by %v; survivors should keep near-lossless accuracy", rli.DeltaMedianRelErr.Mean)
	}
	if !strings.Contains(mr.Render(), "telemetry loss") {
		t.Fatal("multi-seed render omits the telemetry section")
	}
}
