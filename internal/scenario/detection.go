package scenario

import (
	"fmt"
	"strings"
	"time"
)

// DetectionThreshold is the exposure fraction above which an estimator
// counts as having detected the adversary's hidden delay: it must surface at
// least this fraction of the true aggregate-delay shift the compromised
// switch introduced.
const DetectionThreshold = 0.5

// DetectionRow scores one estimator against the delay-gaming switch: its
// aggregate delay estimate on the clean and adversarial runs of the same
// seed, and how much of the true shift between the two runs it exposed.
type DetectionRow struct {
	// Estimator is the mechanism's registry name.
	Estimator string
	// CleanAgg / AdvAgg are the mechanism's aggregate mean delay estimates
	// on the paired clean and adversarial runs.
	CleanAgg time.Duration
	AdvAgg   time.Duration
	// Shift is AdvAgg - CleanAgg: the delay change the mechanism reported.
	Shift time.Duration
	// Exposure is Shift over the true aggregate shift: 1 means the
	// mechanism surfaced the hidden delay in full, 0 means the adversary
	// hid it completely.
	Exposure float64
	// Detected reports Exposure >= DetectionThreshold.
	Detected bool
}

// DetectionReport is an adversarial run's estimator scoreboard. The run is
// paired with a clean run at the identical seed and spec minus the
// adversary, so every difference between the two is the compromised
// switch's doing; each estimator is scored on how much of that difference
// its aggregate estimate exposes.
type DetectionReport struct {
	// HiddenDelay is the per-packet delay the adversary added to traffic it
	// predicted would go unmeasured.
	HiddenDelay time.Duration
	// Window is the length of the compromised interval.
	Window time.Duration
	// TrueShift is the ground-truth aggregate mean delay change between the
	// clean and adversarial runs — what a perfect estimator would report.
	TrueShift time.Duration
	// Threshold echoes DetectionThreshold.
	Threshold float64
	// Rows scores every requested mechanism in comparison-table order.
	Rows []DetectionRow
}

// Row returns the named estimator's detection row.
func (d *DetectionReport) Row(name string) (DetectionRow, bool) {
	for _, r := range d.Rows {
		if r.Estimator == name {
			return r, true
		}
	}
	return DetectionRow{}, false
}

// Render formats the report as a text table.
func (d *DetectionReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "adversarial delay detection (hidden=%v window=%v trueShift=%v threshold=%.2f):\n",
		d.HiddenDelay, d.Window, d.TrueShift, d.Threshold)
	fmt.Fprintf(&b, "%-16s %14s %14s %14s %10s %9s\n",
		"estimator", "cleanAgg", "advAgg", "shift", "exposure", "detected")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%-16s %14v %14v %14v %10.3f %9v\n",
			r.Estimator, r.CleanAgg, r.AdvAgg, r.Shift, r.Exposure, r.Detected)
	}
	return b.String()
}

// buildDetection scores the paired runs. adv and clean ran the same spec at
// the same seed, differing only in the adversary, so their comparison tables
// are index-aligned.
func buildDetection(a AdversarySpec, adv, clean *Result) *DetectionReport {
	rep := &DetectionReport{
		HiddenDelay: a.Extra,
		Window:      a.End - a.Start,
		TrueShift:   adv.TrueAggMean - clean.TrueAggMean,
		Threshold:   DetectionThreshold,
	}
	for i, c := range adv.Comparison {
		cl := clean.Comparison[i]
		row := DetectionRow{
			Estimator: c.Estimator,
			CleanAgg:  cl.AggMean,
			AdvAgg:    c.AggMean,
			Shift:     c.AggMean - cl.AggMean,
		}
		if rep.TrueShift > 0 {
			row.Exposure = float64(row.Shift) / float64(rep.TrueShift)
		}
		row.Detected = row.Exposure >= rep.Threshold
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}
