package scenario

import (
	"fmt"
	"sort"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/core"
	"github.com/netmeasure/rlir/internal/crossinject"
	"github.com/netmeasure/rlir/internal/eventsim"
	"github.com/netmeasure/rlir/internal/measure"
	"github.com/netmeasure/rlir/internal/netsim"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/runner"
	"github.com/netmeasure/rlir/internal/simtime"
	"github.com/netmeasure/rlir/internal/stats"
	"github.com/netmeasure/rlir/internal/topo"
	"github.com/netmeasure/rlir/internal/trace"
)

// baselinesOf strips "rli" from an effective estimator list: RLI is wired
// into the receiver deployment itself; everything else attaches as passive
// taps on the shared dispatch.
func baselinesOf(names []string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		if n != "rli" {
			out = append(out, n)
		}
	}
	return out
}

// Run executes one scenario at its spec seed.
func Run(spec Spec) (*Result, error) { return RunSeed(spec, spec.Seed) }

// RunSeed executes one scenario at an explicit seed (multi-seed sweeps
// derive per-run seeds and call this).
func RunSeed(spec Spec, seed int64) (*Result, error) {
	return runSeed(spec, seed, nil)
}

// runSeed dispatches on topology, optionally capturing the run's export
// stream (Export passes a capture; normal runs pass nil).
func runSeed(spec Spec, seed int64, cap *capture) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// A fleet spec needs the export stream even when the caller is not
	// exporting: the fleet report replays the captured samples through
	// partitioned collectors.
	if spec.Fleet != nil && cap == nil {
		cap = newCapture()
	}
	if spec.Topology.Kind == TopoTandem {
		return runTandem(spec, seed, cap)
	}
	return runFatTree(spec, seed, cap)
}

// scheme builds the injection scheme from the deployment spec.
func (s Spec) scheme() core.InjectionScheme {
	if s.Deploy.Scheme == SchemeAdaptive {
		a := core.DefaultAdaptive()
		if s.Deploy.MinGap > 0 {
			a.MinGap = s.Deploy.MinGap
		}
		if s.Deploy.MaxGap > 0 {
			a.MaxGap = s.Deploy.MaxGap
		}
		return a
	}
	n := s.Deploy.StaticN
	if n == 0 {
		n = 50
	}
	return core.Static{N: n}
}

// traceConfig builds the workload generator config for the given target
// rate, applying the spec's flow-shape overrides and the stationary warm-up
// with flow lengths capped relative to the window (the same calibration the
// experiments harness uses, so short runs still deliver their offered load).
func (s Spec) traceConfig(seed int64, targetBps float64) trace.Config {
	cfg := trace.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = s.Duration
	cfg.TargetBps = targetBps
	if s.Workload.FlowAlpha > 0 {
		cfg.FlowLen.Alpha = s.Workload.FlowAlpha
	}
	if s.Workload.FlowMaxLen > 0 {
		cfg.FlowLen.Max = s.Workload.FlowMaxLen
	}
	if s.Workload.MeanGap > 0 {
		cfg.MeanGap = s.Workload.MeanGap
	}
	limit := 2 * int(cfg.Duration/cfg.MeanGap)
	if limit < 64 {
		limit = 64
	}
	if cfg.FlowLen.Max > limit {
		cfg.FlowLen.Max = limit
	}
	cfg.Warmup = cfg.StationaryWarmup()
	return cfg
}

// burstGate wraps src in the microburst on/off admission model when the
// spec asks for one. The generator's target rate must already be scaled by
// the inverse duty cycle so the admitted average load matches the spec.
func (s Spec) burstGate(src trace.Source, seed int64) trace.Source {
	if s.Workload.BurstPeriod == 0 {
		return src
	}
	return crossinject.NewSource(src, crossinject.NewBursty(s.Workload.BurstOn, s.Workload.BurstPeriod, 1, seed+2099))
}

// dutyBoost is the factor the offered rate is scaled up by to compensate
// for microburst off-time.
func (s Spec) dutyBoost() float64 {
	if s.Workload.BurstPeriod == 0 {
		return 1
	}
	return float64(s.Workload.BurstPeriod) / float64(s.Workload.BurstOn)
}

// upstreamSenderID identifies the sender at ToR(p,e) uplink j.
func upstreamSenderID(h, p, e, j int) core.SenderID {
	return core.SenderID(1000 + ((p*h+e)*h + j))
}

// downstreamSenderID identifies the sender instances at core (j,i).
func downstreamSenderID(h, j, i int) core.SenderID {
	return core.SenderID(2000 + j*h + i)
}

// countingDemux audits a strategy against ground truth.
type countingDemux struct {
	inner  core.Demux
	oracle core.Demux
	agree  uint64
	total  uint64
}

func (c *countingDemux) Classify(p *packet.Packet) (core.SenderID, bool) {
	id, ok := c.inner.Classify(p)
	if ok {
		if truth, tok := c.oracle.Classify(p); tok {
			c.total++
			if truth == id {
				c.agree++
			}
		}
	}
	return id, ok
}

func (c *countingDemux) Name() string { return "counting(" + c.inner.Name() + ")" }

// misattribution aggregates the audit across per-receiver counting demuxes
// (each monitored ToR gets its own instance so partitioned runs never share
// counters across lanes; the sums are identical either way).
func misattribution(cs []*countingDemux) float64 {
	var agree, total uint64
	for _, c := range cs {
		agree += c.agree
		total += c.total
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(agree)/float64(total)
}

// estSample carries one deferred OnEstimate observation from a lane to the
// barrier's single-threaded apply.
type estSample struct {
	key        packet.FlowKey
	est, truth time.Duration
}

// routerRx pairs a receiver with its identity and tail accumulators.
type routerRx struct {
	name    string
	segment string
	rx      *core.Receiver
	rec     *routerRec
	// tor is set for downstream receivers: the monitored (pod, tor).
	tor  [2]int
	down bool
}

// runFatTree composes and executes a fat-tree scenario.
func runFatTree(spec Spec, seed int64, cap *capture) (*Result, error) {
	var (
		eng *eventsim.Engine
		pe  *eventsim.Parallel
		nw  *netsim.Network
	)
	if spec.parallel() {
		pe = eventsim.NewParallel(spec.partitions())
		nw = netsim.NewParallel(pe)
	} else {
		eng = eventsim.New()
		nw = netsim.New(eng)
	}
	tc := topo.DefaultConfig()
	tc.K = spec.Topology.K
	tc.LinkBps = spec.Topology.LinkBps
	tc.QueueBytes = spec.Topology.QueueBytes
	if spec.Topology.Propagation > 0 {
		tc.Propagation = spec.Topology.Propagation
	}
	if spec.Topology.ProcDelay > 0 {
		tc.ProcDelay = spec.Topology.ProcDelay
	}
	tc.MarkAtCores = spec.Deploy.Demux == DemuxMark
	ft, err := topo.Build(tc, nw)
	if err != nil {
		return nil, err
	}
	if pe != nil {
		// Place cores on lane 0 and pods on the remaining lanes before any
		// instrument or event binds a node to its engine.
		if err := ft.Partition(); err != nil {
			return nil, err
		}
	}
	nw.SetTracePaths(true) // oracle demux + misattribution audit

	k, h := spec.Topology.K, spec.half()
	monitored := spec.monitoredToRs()
	monPods := make([]int, 0, k)
	seenPod := make(map[int]bool, k)
	for _, m := range monitored {
		if !seenPod[m[0]] {
			seenPod[m[0]] = true
			monPods = append(monPods, m[0])
		}
	}
	allPairs := spec.Workload.Pattern == PatternAllPairs

	// Physical path differentiation toward every monitored pod.
	if skew := spec.Topology.CoreSkew; skew > 0 {
		for _, p := range monPods {
			for j := 0; j < h; j++ {
				for i := 0; i < h; i++ {
					port := ft.CoreDownPort(j, i, p)
					port.SetPropagation(port.Propagation() + time.Duration(j*h+i)*skew)
				}
			}
		}
	}

	scheme := spec.scheme()

	// --- Upstream instruments: senders at source-ToR uplinks, receivers at
	// cores (prefix demux on source subnets).
	sourcePods := make([]int, 0, k)
	for p := 0; p < k; p++ {
		if !allPairs && seenPod[p] {
			continue // single-destination patterns: the monitored pod only receives
		}
		sourcePods = append(sourcePods, p)
	}
	for _, p := range sourcePods {
		for e := 0; e < h; e++ {
			for j := 0; j < h; j++ {
				dsts := make([]packet.Addr, h)
				for i := 0; i < h; i++ {
					dsts[i] = ft.CoreAddr(j, i)
				}
				if _, err := core.AttachSender(ft.ToRUplink(p, e, j), core.SenderConfig{
					ID:        upstreamSenderID(h, p, e, j),
					Addr:      ft.ToRAddr(p, e),
					Receivers: dsts,
					Scheme:    scheme,
				}); err != nil {
					return nil, err
				}
			}
		}
	}
	var routers []*routerRx
	for j := 0; j < h; j++ {
		for i := 0; i < h; i++ {
			pd := core.NewPrefixDemux()
			for _, p := range sourcePods {
				for e := 0; e < h; e++ {
					pd.Add(ft.ToRSubnet(p, e), upstreamSenderID(h, p, e, j))
				}
			}
			addr := ft.CoreAddr(j, i)
			rec := &routerRec{}
			rx, err := core.AttachReceiverIngress(ft.Cores[j][i], core.ReceiverConfig{
				Demux:      pd,
				Accept:     func(p *packet.Packet) bool { return p.Kind == packet.Regular },
				AcceptRef:  func(p *packet.Packet) bool { return p.Key.Dst == addr },
				OnEstimate: func(_ packet.FlowKey, est, truth time.Duration) { rec.record(est, truth) },
			})
			if err != nil {
				return nil, err
			}
			routers = append(routers, &routerRx{
				name:    ft.Cores[j][i].Name(),
				segment: "tor-uplink->core",
				rx:      rx,
				rec:     rec,
			})
		}
	}

	// --- Downstream instruments: a sender at each core down-port toward a
	// monitored pod (references fanned to one anchor host per monitored ToR
	// of that pod), and one receiver per monitored ToR spanning its host
	// ports, demultiplexing with the strategy under test.
	for _, p := range monPods {
		var refs []packet.Addr
		for _, m := range monitored {
			if m[0] == p {
				refs = append(refs, ft.HostAddr(m[0], m[1], 0))
			}
		}
		for j := 0; j < h; j++ {
			for i := 0; i < h; i++ {
				if _, err := core.AttachSender(ft.CoreDownPort(j, i, p), core.SenderConfig{
					ID:        downstreamSenderID(h, j, i),
					Addr:      ft.CoreAddr(j, i),
					Receivers: refs,
					Scheme:    scheme,
				}); err != nil {
					return nil, err
				}
			}
		}
	}

	oracle := core.NewOracleDemux()
	for j := 0; j < h; j++ {
		for i := 0; i < h; i++ {
			oracle.Add(ft.Cores[j][i].ID(), downstreamSenderID(h, j, i))
		}
	}
	var strategy core.Demux
	switch spec.Deploy.Demux {
	case DemuxNone:
		strategy = core.SingleDemux{ID: downstreamSenderID(h, 0, 0)}
	case DemuxMark:
		md := core.NewMarkDemux()
		for j := 0; j < h; j++ {
			for i := 0; i < h; i++ {
				md.Add(ft.CoreMark(j, i), downstreamSenderID(h, j, i))
			}
		}
		strategy = md
	case DemuxOracle:
		strategy = oracle
	default: // "", DemuxReverseECMP
		strategy = core.FuncDemux{
			Label: "reverse-ecmp",
			F: func(p *packet.Packet) (core.SenderID, bool) {
				j, i, err := ft.ResolveCore(p.Key)
				if err != nil {
					return 0, false
				}
				return downstreamSenderID(h, j, i), true
			},
		}
	}
	var countings []*countingDemux

	// The collection plane: downstream estimates stream through the sharded
	// collector (upstream receivers keep local tails only, so one flow's
	// fleet aggregate is not a mix of two different segments).
	coll := collector.New(collector.Config{Shards: 4})
	sink := runner.NewSink(coll, 0)

	// --- The unified estimator layer. Every mechanism the spec requests
	// measures the same downstream (core -> monitored ToR) segment on this
	// single pass: the RLI receivers below implement the measure API
	// directly, and the baselines (LDA, sampling, Multiflow) hang off one
	// shared dispatch fed from the segment-start (core down-ports) and
	// segment-end (monitored ToR host ports) taps. Baselines are passive,
	// so the RLI results are bit-identical whether or not they attach.
	estNames := spec.EffectiveEstimators()
	baselines, err := measure.NewSet(baselinesOf(estNames), measure.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	truth := measure.NewTruth()
	shared := measure.NewDispatch(truth, baselines...)
	monSet := make(map[[2]int]bool, len(monitored))
	for _, m := range monitored {
		monSet[m] = true
	}
	upAccept := func(pk *packet.Packet) bool {
		if pk.Kind != packet.Regular {
			return false
		}
		dp, de, _, ok := ft.LocateHost(pk.Key.Dst)
		if !ok || !monSet[[2]int{dp, de}] {
			return false
		}
		sp, _, _, sok := ft.LocateHost(pk.Key.Src)
		return sok && sp != dp
	}

	// Replicated workloads record each copy's edge arrival by packet ID.
	// Both maps are filled at injection time (pre-run, single-threaded);
	// arrival writes happen inline on sequential runs and only inside the
	// single-threaded deferred-effect apply on parallel runs, and a write
	// keyed by the packet's unique ID is order-independent either way.
	var (
		repArrivals map[uint64]simtime.Time
		repWanted   map[uint64]bool
	)

	// Parallel runs feed the shared measurement plane (dispatch, collector
	// sink, export capture) through deferred effects: lanes log observations
	// during a window and the barrier applies them single-threaded in global
	// event order — exactly the order the sequential engine runs these taps
	// in. Receiver-local state (rec, rli, counting) stays synchronous on its
	// lane. The packet fields the deferred consumers read (Key, Size, TOS,
	// SegmentStart) are all stable between the tap instant and the barrier.
	var effStart, effEnd, effEst eventsim.EffectKind
	if pe != nil {
		effStart = pe.RegisterEffect(func(at simtime.Time, a, _ any) {
			shared.TapStart(a.(*packet.Packet), at)
		})
		effEnd = pe.RegisterEffect(func(at simtime.Time, a, _ any) {
			pk := a.(*packet.Packet)
			shared.TapEnd(pk, at)
			cap.observe(pk, at)
			if repWanted[pk.ID] {
				repArrivals[pk.ID] = at
			}
		})
		effEst = pe.RegisterEffect(func(_ simtime.Time, a, _ any) {
			s := a.(*estSample)
			sink.Add(s.key, s.est, s.truth)
			cap.addSample(s.key, s.est, s.truth)
		})
	}

	for _, p := range monPods {
		for j := 0; j < h; j++ {
			for i := 0; i < h; i++ {
				port := ft.CoreDownPort(j, i, p)
				if pe != nil {
					le := port.Node().Engine()
					port.OnTxStart(func(pk *packet.Packet, now simtime.Time) {
						if upAccept(pk) {
							le.Emit(effStart, now, pk, nil)
						}
					})
				} else {
					port.OnTxStart(func(pk *packet.Packet, now simtime.Time) {
						if upAccept(pk) {
							shared.TapStart(pk, now)
						}
					})
				}
			}
		}
	}

	var rlis []*measure.RLI
	for _, m := range monitored {
		p, e := m[0], m[1]
		rec := &routerRec{}
		counting := &countingDemux{inner: strategy, oracle: oracle}
		countings = append(countings, counting)
		accept := func(pk *packet.Packet) bool {
			// Inter-pod regular traffic only: packets from inside the pod
			// never cross a core, so no reference stream measures them.
			sp, _, _, ok := ft.LocateHost(pk.Key.Src)
			return pk.Kind == packet.Regular && ok && sp != p
		}
		onEstimate := func(key packet.FlowKey, est, truth time.Duration) {
			rec.record(est, truth)
			sink.Add(key, est, truth)
			cap.addSample(key, est, truth)
		}
		endTap := func(pk *packet.Packet, now simtime.Time) {
			if accept(pk) {
				shared.TapEnd(pk, now)
				cap.observe(pk, now)
				if repWanted[pk.ID] {
					repArrivals[pk.ID] = now
				}
			}
		}
		if pe != nil {
			le := ft.ToRs[p][e].Engine()
			onEstimate = func(key packet.FlowKey, est, truth time.Duration) {
				rec.record(est, truth)
				le.Emit(effEst, le.Now(), &estSample{key: key, est: est, truth: truth}, nil)
			}
			endTap = func(pk *packet.Packet, now simtime.Time) {
				if accept(pk) {
					le.Emit(effEnd, now, pk, nil)
				}
			}
		}
		rli, err := measure.NewRLI(ft.ToRs[p][e].Name(), core.ReceiverConfig{
			Demux:      counting,
			Accept:     accept,
			OnEstimate: onEstimate,
		})
		if err != nil {
			return nil, err
		}
		rlis = append(rlis, rli)
		for hh := 0; hh < h; hh++ {
			port := ft.ToRHostPort(p, e, hh)
			port.OnTxStart(rli.Tap)
			port.OnTxStart(endTap)
		}
		routers = append(routers, &routerRx{
			name:    ft.ToRs[p][e].Name(),
			segment: "core->tor",
			rx:      rli.Receiver(),
			rec:     rec,
			tor:     m,
			down:    true,
		})
	}

	// --- Faults: scheduled state changes on the running topology. Each
	// fault runs on the engine of the node whose state it mutates, so a
	// partitioned run never touches another lane's ports mid-window (on a
	// sequential network every node's engine is the network's engine).
	for _, f := range spec.sortedFaults() {
		f := f
		switch f.Kind {
		case FaultLinkDegrade:
			port := ft.CoreDownPort(f.CoreJ, f.CoreI, f.DownPod)
			le := port.Node().Engine()
			healthy := spec.Topology.LinkBps
			le.At(simtime.FromDuration(f.Start), func() { port.SetRate(healthy * f.RateFactor) })
			le.At(simtime.FromDuration(f.End), func() { port.SetRate(healthy) })
		case FaultHopDelay:
			node := ft.Aggs[f.AggPod][f.AggIdx]
			le := node.Engine()
			base := node.ProcDelay()
			le.At(simtime.FromDuration(f.Start), func() { node.SetProcDelay(base + f.Extra) })
			le.At(simtime.FromDuration(f.End), func() { node.SetProcDelay(base) })
		}
	}

	// --- Adversary: a compromised aggregation switch selectively delaying
	// the packets it predicts will go unmeasured. The hook is a pure
	// function of (packet, instant) — the window test reads the tap-time
	// clock instead of scheduling state changes — so partitioned runs stay
	// bit-identical to sequential ones.
	if a := spec.Adversary; a != nil {
		node := ft.Aggs[a.AggPod][a.AggIdx]
		start, end := simtime.FromDuration(a.Start), simtime.FromDuration(a.End)
		extra, rate := a.Extra, a.PredictRate
		node.SetSelectiveDelay(func(pk *packet.Packet, now simtime.Time) time.Duration {
			if now.Before(start) || !now.Before(end) {
				return 0
			}
			if pk.Kind != packet.Regular {
				return 0 // RLI references are identifiable on the wire: fly clean
			}
			if measure.PredictPeriodic(pk.ID, rate) {
				return 0 // spare the periodic sampler's predictable subset
			}
			return extra
		})
	}

	// --- Link-trace replay: one core down-link's extra delay and loss
	// driven by a recorded time series. The drop decision is a pure keyed
	// hash of the packet ID, and the extra delay only ever adds to the
	// configured propagation, so partitioned lookahead stays valid.
	var emuPort *netsim.Port
	var emuTrace *trace.LinkTrace
	if l := spec.LinkTrace; l != nil {
		lt, err := l.trace()
		if err != nil {
			return nil, err
		}
		emuTrace = lt
		emuPort = ft.CoreDownPort(l.CoreJ, l.CoreI, l.DownPod)
		emuSeed := trace.SplitMix64(uint64(seed) ^ linkTraceSeedSalt)
		emuPort.SetEmulator(func(pk *packet.Packet, now simtime.Time) (time.Duration, bool) {
			return lt.Emulate(pk.ID, emuSeed, now.Duration())
		})
	}

	// --- Workload.
	injected, repPairs := spec.injectWorkload(nw, ft, seed)
	if spec.Workload.Replicate {
		repArrivals = make(map[uint64]simtime.Time, 2*len(repPairs))
		repWanted = make(map[uint64]bool, 2*len(repPairs))
		for _, pr := range repPairs {
			repWanted[pr.orig] = true
			repWanted[pr.rep] = true
		}
	}
	if pe != nil {
		// The lookahead is the smallest cross-lane propagation delay — with
		// the pod/core partition map, the core-link propagation (plus any
		// skew). A single-lane run has no cross traffic; any window works.
		la, ok := nw.MinCrossPropagation()
		if !ok {
			la = time.Millisecond
		}
		pe.Run(la)
	} else {
		eng.Run()
	}

	// --- Harvest.
	res := &Result{Spec: spec, Seed: seed, Injected: injected}
	var downResults []core.FlowResult
	var estAll, trueAll stats.Histogram
	type segKey struct {
		j, i, p, e int
	}
	segFlows := map[segKey][]core.FlowResult{}
	for _, r := range routers {
		results := r.rx.Results(1)
		rs := RouterStats{Router: r.name, Segment: r.segment, Summary: core.Summarize(results)}
		r.rec.fill(&rs)
		res.Routers = append(res.Routers, rs)
		if !r.down {
			continue
		}
		downResults = append(downResults, results...)
		estAll.Merge(&r.rec.estH)
		trueAll.Merge(&r.rec.trueH)
		for _, fr := range results {
			j, i, err := ft.ResolveCore(fr.Key)
			if err != nil {
				continue
			}
			sk := segKey{j, i, r.tor[0], r.tor[1]}
			segFlows[sk] = append(segFlows[sk], fr)
		}
	}
	sort.Slice(res.Routers, func(a, b int) bool { return res.Routers[a].Router < res.Routers[b].Router })
	res.Overall = core.Summarize(downResults)
	res.EstP50, res.EstP99 = estAll.Quantile(0.5), estAll.Quantile(0.99)
	res.TrueP50, res.TrueP99 = trueAll.Quantile(0.5), trueAll.Quantile(0.99)
	res.Misattribution = misattribution(countings)

	// The estimator comparison table: one fleet-merged RLI report plus one
	// report per baseline, all scored against the shared ground truth.
	rliReps := make([]measure.Report, 0, len(rlis))
	for _, r := range rlis {
		rliReps = append(rliReps, r.Finalize())
	}
	reports := make([]measure.Report, 0, 1+len(baselines))
	reports = append(reports, measure.MergeReports("rli", rliReps...))
	for _, b := range baselines {
		reports = append(reports, b.Finalize())
	}
	res.Comparison = measure.Compare(truth, reports...)
	res.Comparison[0].Misattribution = misattribution(countings)
	res.TrueAggMean = truth.AggMean()
	if spec.Telemetry != nil {
		res.Telemetry = applyTelemetry(*spec.Telemetry, seed, truth, res.Comparison, reports)
	}

	for sk, frs := range segFlows {
		seg := SegmentStats{
			Name:  fmt.Sprintf("core%d.%d->tor%d.%d", sk.j, sk.i, sk.p, sk.e),
			Flows: len(frs),
		}
		var estW, trueW float64
		errs := make([]float64, 0, len(frs))
		for _, fr := range frs {
			seg.Estimates += fr.N
			estW += float64(fr.EstMean) * float64(fr.N)
			trueW += float64(fr.TrueMean) * float64(fr.N)
			errs = append(errs, fr.RelErrMean)
		}
		if seg.Estimates > 0 {
			seg.EstMean = time.Duration(estW / float64(seg.Estimates))
			seg.TrueMean = time.Duration(trueW / float64(seg.Estimates))
		}
		seg.MedianRelErr = stats.NewCDF(errs).Median()
		res.Segments = append(res.Segments, seg)
	}
	sort.Slice(res.Segments, func(a, b int) bool { return res.Segments[a].Name < res.Segments[b].Name })

	// Hottest monitored access link.
	for _, m := range monitored {
		for hh := 0; hh < h; hh++ {
			c := ft.ToRHostPort(m[0], m[1], hh).Counters()
			u := simtime.Rate(int64(c.TxBytes), 0, simtime.FromDuration(spec.Duration)) / spec.Topology.LinkBps
			if u > res.HotLinkUtil {
				res.HotLinkUtil = u
			}
		}
	}

	sink.Flush()
	coll.Close()
	res.Fleet = coll.Snapshot()
	res.Samples = coll.SamplesIngested()
	if spec.Fleet != nil {
		res.FleetReport = applyFleet(*spec.Fleet, cap, truth, res.Comparison, reports, res)
	}
	if spec.LinkTrace != nil {
		res.LinkTrace = buildLinkTraceReport(*spec.LinkTrace, emuTrace, emuPort.Counters().EmuDrops)
	}
	if spec.Workload.Replicate {
		res.RepFlow = buildRepFlow(repPairs, repArrivals)
	}
	if spec.Adversary != nil {
		// Detection needs a paired clean run: the same spec and seed minus
		// the adversary, so every difference between the two results is the
		// compromised switch's doing. Telemetry and fleet re-scoring do not
		// move the comparison table, so the clean run skips them.
		clean := spec
		clean.Adversary = nil
		clean.Telemetry = nil
		clean.Fleet = nil
		cleanRes, err := runFatTree(clean, seed, nil)
		if err != nil {
			return nil, err
		}
		res.Detection = buildDetection(*spec.Adversary, res, cleanRes)
	}
	return res, nil
}

// injectWorkload generates the spec's traffic pattern and schedules it into
// the network, returning the packet count and, for replicated workloads,
// the injection-time pair log (nil otherwise). Injection happens pre-run on
// the network-wide ID counter, so packet IDs and the pair log are identical
// across engines and partition counts.
func (spec Spec) injectWorkload(nw *netsim.Network, ft *topo.FatTree, seed int64) (int, []repPair) {
	k, h := spec.Topology.K, spec.half()
	q, e0 := spec.destPod(), spec.Workload.DestToR
	lb := spec.Topology.LinkBps

	var targetBps float64
	switch spec.Workload.Pattern {
	case PatternIncast:
		targetBps = spec.Workload.LoadFrac * lb
	case PatternAllPairs:
		targetBps = spec.Workload.LoadFrac * lb * float64(h) * float64(k*h)
	default: // converging, hotspot
		targetBps = spec.Workload.LoadFrac * lb * float64(h)
	}
	gen := spec.burstGate(trace.NewGenerator(spec.traceConfig(seed, targetBps*spec.dutyBoost())), seed)

	// Incast source host list: the first IncastFanIn hosts outside the
	// destination pod, in (pod, tor, host) order.
	var incastSrc []packet.Addr
	if spec.Workload.Pattern == PatternIncast {
		for p := 0; p < k && len(incastSrc) < spec.Workload.IncastFanIn; p++ {
			if p == q {
				continue
			}
			for e := 0; e < h && len(incastSrc) < spec.Workload.IncastFanIn; e++ {
				for hh := 0; hh < h && len(incastSrc) < spec.Workload.IncastFanIn; hh++ {
					incastSrc = append(incastSrc, ft.HostAddr(p, e, hh))
				}
			}
		}
	}
	hotPod := (q + 1) % k // hotspot: every skewed flow sources under this pod's ToR 0

	injected := 0
	var pairs []repPair
	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		hash := rec.Key.FastHash()
		key := rec.Key
		switch spec.Workload.Pattern {
		case PatternAllPairs:
			sp := int(hash % uint64(k))
			se := int(hash >> 8 % uint64(h))
			sh := int(hash >> 16 % uint64(h))
			dp := int(hash >> 24 % uint64(k-1))
			if dp >= sp {
				dp++ // inter-pod only: same-pod pairs never cross a core
			}
			de := int(hash >> 32 % uint64(h))
			dh := int(hash >> 40 % uint64(h))
			key.Src = ft.HostAddr(sp, se, sh)
			key.Dst = ft.HostAddr(dp, de, dh)
		case PatternIncast:
			key.Src = incastSrc[int(hash%uint64(len(incastSrc)))]
			key.Dst = ft.HostAddr(q, e0, 0)
		case PatternHotspot:
			dh := int(hash >> 24 % uint64(h))
			key.Dst = ft.HostAddr(q, e0, dh)
			// A HotspotSkew fraction of flows source under the hot ToR.
			if float64(hash>>40&0xFFFF)/65536.0 < spec.Workload.HotspotSkew {
				key.Src = ft.HostAddr(hotPod, 0, int(hash>>16%uint64(h)))
			} else {
				sp := int(hash % uint64(k-1))
				if sp >= q {
					sp++
				}
				key.Src = ft.HostAddr(sp, int(hash>>8%uint64(h)), int(hash>>16%uint64(h)))
			}
		default: // converging
			sp := int(hash % uint64(k-1))
			if sp >= q {
				sp++
			}
			se := int(hash >> 8 % uint64(h))
			sh := int(hash >> 16 % uint64(h))
			dh := int(hash >> 24 % uint64(h))
			key.Src = ft.HostAddr(sp, se, sh)
			key.Dst = ft.HostAddr(q, e0, dh)
		}
		sp, se, sh, ok := ft.LocateHost(key.Src)
		if !ok {
			panic(fmt.Sprintf("scenario: remapped source %v is not a fat-tree host", key.Src))
		}
		pk := &packet.Packet{ID: nw.NewPacketID(), Key: key, Size: rec.Size, Kind: packet.Regular}
		nw.Inject(ft.Hosts[sp][se][sh], pk, rec.At)
		injected++
		if spec.Workload.Replicate {
			// RepFlow-style replica: the same payload under a source port
			// differing in one bit, so ECMP usually hashes the copy onto a
			// different core path. First arrival wins at harvest.
			rkey := key
			rkey.SrcPort ^= 1
			rp := &packet.Packet{ID: nw.NewPacketID(), Key: rkey, Size: rec.Size, Kind: packet.Regular}
			nw.Inject(ft.Hosts[sp][se][sh], rp, rec.At)
			injected++
			oj, oi, oerr := ft.ResolveCore(key)
			rj, ri, rerr := ft.ResolveCore(rkey)
			pairs = append(pairs, repPair{
				orig:     pk.ID,
				rep:      rp.ID,
				at:       rec.At,
				distinct: oerr == nil && rerr == nil && (oj != rj || oi != ri),
			})
		}
	}
	return injected, pairs
}
