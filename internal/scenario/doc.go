// Package scenario is the declarative scenario engine: one versioned Spec
// describes a network-wide workload — topology, traffic mix, fault
// injections, RLIR deployment — and Run composes the existing substrate
// (topo fat-tree + ECMP, netsim, crossinject, trace, core instruments,
// collector, runner) into a complete measured simulation.
//
// The paper's evaluation (§4) exercises RLI under a single tandem shape
// with cross traffic; real data centers produce far more diverse latency
// pathologies — incast, microbursts, degraded links, skewed ECMP paths.
// Each named scenario in the Registry captures one such pathology as a
// config value rather than hand-written experiment code, and pairs it with
// an invariant check so the registry doubles as a correctness harness (CI
// runs every registered scenario; see TestScenarioRegistrySmoke).
//
// Entry points:
//
//   - Run / RunSeed execute one spec; RunMulti sweeps derived seeds in
//     parallel and reports mean ± 95% CI.
//   - Names / Get / All enumerate the registry; Scenario.RunCheck enforces
//     a registered scenario's invariant.
//   - DecodeJSON / Spec.EncodeJSON are the JSON front-end used by
//     cmd/scenario -spec and -describe.
//   - Export (export.go) runs a spec once while capturing the export
//     stream its instruments produce — every per-packet estimate sample
//     and the NetFlow-record view of delivered traffic — as a replayable
//     Trace. cmd/loadgen replays Traces against the live service of
//     internal/service at line rate; the service tests use them to prove
//     streamed aggregation ≡ batch aggregation.
//
// Spec.Deploy.Estimators selects internal/measure mechanisms to ride the
// run's single simulation pass; Result.Comparison scores all of them
// against shared ground truth.
package scenario
