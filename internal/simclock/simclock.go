// Package simclock models the measurement-instance clocks.
//
// RLI requires time synchronization between sender and receiver ("GPS-based
// clock synchronization or IEEE 1588", paper §2). The paper's evaluation
// assumes this holds perfectly; this package makes the assumption explicit
// and falsifiable: instruments read their local clock through a Source, and
// experiments can swap in imperfect clocks to measure how residual sync error
// propagates into per-flow latency estimates (ablation A3 in DESIGN.md).
//
// All sources are pure functions of true simulation time, which keeps runs
// deterministic and replayable.
package simclock

import (
	"fmt"
	"time"

	"github.com/netmeasure/rlir/internal/simtime"
)

// Source converts true simulation time into the instant shown by one
// instance's local clock.
type Source interface {
	// Read returns the local clock reading at true instant now.
	Read(now simtime.Time) simtime.Time
	Name() string
}

// Perfect is an exactly synchronized clock, the paper's operating assumption.
type Perfect struct{}

// Read returns now unchanged.
func (Perfect) Read(now simtime.Time) simtime.Time { return now }

// Name implements Source.
func (Perfect) Name() string { return "perfect" }

// FixedOffset is a clock with a constant synchronization error, the residual
// a GPS-disciplined oscillator exhibits.
type FixedOffset struct {
	Offset time.Duration
}

// Read returns now shifted by the fixed offset.
func (c FixedOffset) Read(now simtime.Time) simtime.Time { return now.Add(c.Offset) }

// Name implements Source.
func (c FixedOffset) Name() string { return fmt.Sprintf("offset(%v)", c.Offset) }

// Drifting is a free-running oscillator: offset grows linearly at DriftPPM
// parts per million starting from Offset at the epoch.
type Drifting struct {
	Offset   time.Duration
	DriftPPM float64
}

// Read returns the drifted reading.
func (c Drifting) Read(now simtime.Time) simtime.Time {
	drift := time.Duration(float64(now) * c.DriftPPM / 1e6)
	return now.Add(c.Offset + drift)
}

// Name implements Source.
func (c Drifting) Name() string { return fmt.Sprintf("drift(%v,%.2fppm)", c.Offset, c.DriftPPM) }

// PTP models an IEEE 1588-disciplined clock: a drifting oscillator that is
// resynchronized every SyncInterval to within ±SyncJitter of true time. The
// post-sync residual for each interval is derived deterministically from Seed
// and the interval index, so replays are exact.
type PTP struct {
	DriftPPM     float64
	SyncInterval time.Duration
	SyncJitter   time.Duration
	Seed         uint64
}

// Read returns the disciplined reading.
func (c PTP) Read(now simtime.Time) simtime.Time {
	if c.SyncInterval <= 0 {
		panic("simclock: PTP requires a positive SyncInterval")
	}
	k := int64(now) / int64(c.SyncInterval)
	if now < 0 {
		k--
	}
	sinceSync := int64(now) - k*int64(c.SyncInterval)
	residual := c.jitterFor(uint64(k))
	drift := time.Duration(float64(sinceSync) * c.DriftPPM / 1e6)
	return now.Add(residual + drift)
}

// jitterFor maps a sync-interval index to a residual in [-SyncJitter, +SyncJitter].
func (c PTP) jitterFor(k uint64) time.Duration {
	if c.SyncJitter <= 0 {
		return 0
	}
	// SplitMix64 gives a well-mixed deterministic stream keyed by (Seed, k).
	x := c.Seed + (k+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	span := 2*int64(c.SyncJitter) + 1
	return time.Duration(int64(x%uint64(span))) - c.SyncJitter
}

// Name implements Source.
func (c PTP) Name() string {
	return fmt.Sprintf("ptp(%.2fppm,sync=%v,jitter=%v)", c.DriftPPM, c.SyncInterval, c.SyncJitter)
}

// OffsetBetween returns the instantaneous clock disagreement b-a at true
// instant now: the error a one-way delay measurement taken from a to b
// incurs at that moment.
func OffsetBetween(a, b Source, now simtime.Time) time.Duration {
	return b.Read(now).Sub(a.Read(now))
}
