package simclock

import (
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/simtime"
)

func TestPerfect(t *testing.T) {
	var c Perfect
	now := simtime.FromSeconds(12.5)
	if c.Read(now) != now {
		t.Fatal("perfect clock should read true time")
	}
}

func TestFixedOffset(t *testing.T) {
	c := FixedOffset{Offset: 3 * time.Microsecond}
	now := simtime.FromSeconds(1)
	if got := c.Read(now).Sub(now); got != 3*time.Microsecond {
		t.Fatalf("offset = %v", got)
	}
	neg := FixedOffset{Offset: -time.Microsecond}
	if got := neg.Read(now).Sub(now); got != -time.Microsecond {
		t.Fatalf("negative offset = %v", got)
	}
}

func TestDriftingGrowsLinearly(t *testing.T) {
	c := Drifting{DriftPPM: 10} // 10 µs per second
	at1 := c.Read(simtime.FromSeconds(1)).Sub(simtime.FromSeconds(1))
	at2 := c.Read(simtime.FromSeconds(2)).Sub(simtime.FromSeconds(2))
	if at1 != 10*time.Microsecond {
		t.Fatalf("drift at 1s = %v, want 10µs", at1)
	}
	if at2 != 20*time.Microsecond {
		t.Fatalf("drift at 2s = %v, want 20µs", at2)
	}
}

func TestDriftingInitialOffset(t *testing.T) {
	c := Drifting{Offset: time.Millisecond, DriftPPM: 0}
	if got := c.Read(simtime.Zero).Sub(simtime.Zero); got != time.Millisecond {
		t.Fatalf("offset at epoch = %v", got)
	}
}

func TestPTPBoundedResidual(t *testing.T) {
	c := PTP{DriftPPM: 5, SyncInterval: time.Second, SyncJitter: time.Microsecond, Seed: 42}
	for s := 0.0; s < 100; s += 0.37 {
		now := simtime.FromSeconds(s)
		err := c.Read(now).Sub(now)
		// Worst case: jitter + one full interval of drift.
		bound := time.Microsecond + 5*time.Microsecond + time.Nanosecond
		if err > bound || err < -bound {
			t.Fatalf("PTP error %v at %v exceeds bound %v", err, now, bound)
		}
	}
}

func TestPTPDeterministic(t *testing.T) {
	a := PTP{DriftPPM: 3, SyncInterval: time.Second, SyncJitter: 500 * time.Nanosecond, Seed: 7}
	b := a
	for s := 0.0; s < 10; s += 0.1 {
		now := simtime.FromSeconds(s)
		if a.Read(now) != b.Read(now) {
			t.Fatal("identical PTP configs must read identically")
		}
	}
}

func TestPTPResyncActuallyResyncs(t *testing.T) {
	// With large drift and frequent syncs, the error just after a sync must
	// be much smaller than the drift accumulated over a full interval.
	c := PTP{DriftPPM: 1000, SyncInterval: 100 * time.Millisecond, SyncJitter: 10 * time.Nanosecond, Seed: 1}
	justAfter := simtime.FromDuration(500*time.Millisecond + time.Microsecond)
	err := c.Read(justAfter).Sub(justAfter)
	if err > 15*time.Nanosecond+time.Nanosecond || err < -15*time.Nanosecond-time.Nanosecond {
		t.Fatalf("error just after sync = %v, want within jitter+drift(1µs)", err)
	}
}

func TestPTPPanicsWithoutInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PTP{}.Read(simtime.Zero)
}

func TestOffsetBetween(t *testing.T) {
	a := FixedOffset{Offset: time.Microsecond}
	b := FixedOffset{Offset: 4 * time.Microsecond}
	if got := OffsetBetween(a, b, simtime.FromSeconds(1)); got != 3*time.Microsecond {
		t.Fatalf("OffsetBetween = %v, want 3µs", got)
	}
}

func TestNames(t *testing.T) {
	srcs := []Source{Perfect{}, FixedOffset{}, Drifting{}, PTP{SyncInterval: time.Second}}
	for _, s := range srcs {
		if s.Name() == "" {
			t.Errorf("%T has empty name", s)
		}
	}
}
