package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/netmeasure/rlir/internal/core"
	"github.com/netmeasure/rlir/internal/lda"
	"github.com/netmeasure/rlir/internal/multiflow"
	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simclock"
	"github.com/netmeasure/rlir/internal/simtime"
	"github.com/netmeasure/rlir/internal/stats"
)

// EstimatorRow is one line of ablation A2.
type EstimatorRow struct {
	Estimator    core.Estimator
	MedianRelErr float64
	P90RelErr    float64
	Flows        int
}

// AblationEstimators (A2) compares interpolation variants on an identical
// workload: RLI's linear interpolation against the left/right/nearest
// single-endpoint estimators.
func AblationEstimators(scale Scale, targetUtil float64) []EstimatorRow {
	var out []EstimatorRow
	for _, e := range []core.Estimator{core.Linear, core.LeftRef, core.RightRef, core.Nearest} {
		r := RunTandem(TandemConfig{
			Scale:      scale,
			Scheme:     core.DefaultStatic(),
			Model:      CrossUniform,
			TargetUtil: targetUtil,
			Estimator:  e,
		})
		out = append(out, EstimatorRow{
			Estimator:    e,
			MedianRelErr: r.Summary.MedianRelErr,
			P90RelErr:    r.Summary.P90RelErr,
			Flows:        r.Summary.Flows,
		})
	}
	return out
}

// RenderEstimators formats A2.
func RenderEstimators(rows []EstimatorRow) string {
	var b strings.Builder
	b.WriteString("== A2: interpolation estimator variants ==\n")
	fmt.Fprintf(&b, "%-10s %-8s %-14s %-12s\n", "estimator", "flows", "medianRelErr", "p90RelErr")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-8d %-14.4f %-12.4f\n", r.Estimator, r.Flows, r.MedianRelErr, r.P90RelErr)
	}
	return b.String()
}

// ClockRow is one line of ablation A3.
type ClockRow struct {
	Clock        string
	MedianRelErr float64
	TrueMean     time.Duration
}

// AblationClocks (A3) sweeps receiver clock imperfections: RLI assumes
// IEEE 1588/GPS sync; this quantifies how residual offset and drift bleed
// into per-flow estimates.
func AblationClocks(scale Scale, targetUtil float64) []ClockRow {
	clocks := []simclock.Source{
		simclock.Perfect{},
		simclock.FixedOffset{Offset: time.Microsecond},
		simclock.FixedOffset{Offset: 10 * time.Microsecond},
		simclock.FixedOffset{Offset: 100 * time.Microsecond},
		simclock.Drifting{DriftPPM: 10},
		simclock.PTP{DriftPPM: 10, SyncInterval: 100 * time.Millisecond, SyncJitter: 500 * time.Nanosecond, Seed: 3},
	}
	var out []ClockRow
	for _, c := range clocks {
		r := RunTandem(TandemConfig{
			Scale:         scale,
			Scheme:        core.DefaultStatic(),
			Model:         CrossUniform,
			TargetUtil:    targetUtil,
			ReceiverClock: c,
		})
		out = append(out, ClockRow{
			Clock:        c.Name(),
			MedianRelErr: r.Summary.MedianRelErr,
			TrueMean:     r.Summary.TrueMeanDelay,
		})
	}
	return out
}

// RenderClocks formats A3.
func RenderClocks(rows []ClockRow) string {
	var b strings.Builder
	b.WriteString("== A3: clock synchronization sensitivity (receiver clock) ==\n")
	fmt.Fprintf(&b, "%-40s %-14s %-12s\n", "clock", "medianRelErr", "trueMean")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-40s %-14.4f %-12v\n", r.Clock, r.MedianRelErr, r.TrueMean)
	}
	b.WriteString("note: one-way estimates absorb the sender-receiver offset directly;\n")
	b.WriteString("      errors stay small while the offset is small versus true queueing delay\n")
	return b.String()
}

// BaselineResult is B1: RLIR against LDA (aggregate) and Multiflow
// (two-sample NetFlow) on the identical tandem run.
type BaselineResult struct {
	// RLIRMedian is RLIR's per-flow median relative error.
	RLIRMedian float64
	// MultiflowMedian is the Multiflow estimator's per-flow median
	// relative error over the same flows.
	MultiflowMedian float64
	// MultiflowFlows counts flows Multiflow could estimate.
	MultiflowFlows int
	// LDAMeanErr is LDA's relative error on the aggregate mean delay —
	// LDA's only deliverable ("only provides aggregate measurements").
	LDAMeanErr float64
	// LDAEstimate / TrueAggregate document the aggregate comparison.
	LDAEstimate   time.Duration
	TrueAggregate time.Duration
	// RLIROverheadPkts / MultiflowOverheadPkts: extra packets injected on
	// the wire (NetFlow and LDA are passive; RLI adds reference packets).
	RLIROverheadPkts uint64
}

// RunBaselines (B1) co-locates all three mechanisms on one run.
func RunBaselines(scale Scale, targetUtil float64) BaselineResult {
	ldaCfg := lda.DefaultConfig()
	sLDA, rLDA := lda.New(ldaCfg), lda.New(ldaCfg)
	upMeter := netflow.NewMeter(netflow.Config{})
	downMeter := netflow.NewMeter(netflow.Config{})

	senderPoint := func(p *packet.Packet, now simtime.Time) {
		if p.Kind != packet.Regular {
			return
		}
		sLDA.Record(p.ID, now)
		upMeter.Observe(p.Key, p.Size, now)
	}
	receiverPoint := func(p *packet.Packet, now simtime.Time) {
		if p.Kind != packet.Regular {
			return
		}
		rLDA.Record(p.ID, now)
		downMeter.Observe(p.Key, p.Size, now)
	}

	run := RunTandem(TandemConfig{
		Scale:           scale,
		Scheme:          core.DefaultStatic(),
		Model:           CrossUniform,
		TargetUtil:      targetUtil,
		OnSenderPoint:   senderPoint,
		OnReceiverPoint: receiverPoint,
	})

	res := BaselineResult{
		RLIRMedian:       run.Summary.MedianRelErr,
		RLIROverheadPkts: run.Sender.Injected,
	}

	// Ground truth per flow, from the receiver-side accumulators.
	truthByFlow := make(map[packet.FlowKey]float64, len(run.Results))
	var trueWeighted float64
	var trueN int64
	for _, fr := range run.Results {
		truthByFlow[fr.Key] = float64(fr.TrueMean)
		trueWeighted += float64(fr.TrueMean) * float64(fr.N)
		trueN += fr.N
	}
	if trueN > 0 {
		res.TrueAggregate = time.Duration(trueWeighted / float64(trueN))
	}

	// Multiflow, on NetFlow-realistic timestamps: NetFlow records carry
	// millisecond-resolution (sysUpTime) first/last stamps, which is the
	// principal reason the two-sample estimator is crude for microsecond
	// data-center latencies ([12]). RLI's whole premise is hardware
	// timestamping, so the comparison quantizes only the NetFlow side.
	mfEst := multiflow.Estimate(
		quantizeRecords(upMeter.Snapshot(), time.Millisecond),
		quantizeRecords(downMeter.Snapshot(), time.Millisecond))
	var mfErrs []float64
	for _, e := range mfEst {
		if truth, ok := truthByFlow[e.Key]; ok && truth > 0 {
			mfErrs = append(mfErrs, stats.RelErr(float64(e.Mean), truth))
		}
	}
	res.MultiflowFlows = len(mfErrs)
	if len(mfErrs) > 0 {
		res.MultiflowMedian = stats.NewCDF(mfErrs).Median()
	}

	// LDA aggregate.
	est, err := lda.Extract(sLDA, rLDA)
	if err != nil {
		panic(err)
	}
	res.LDAEstimate = est.MeanDelay
	if res.TrueAggregate > 0 {
		res.LDAMeanErr = stats.RelErr(float64(est.MeanDelay), float64(res.TrueAggregate))
	}
	return res
}

// quantizeRecords rounds flow record timestamps to the given resolution,
// modelling NetFlow's millisecond clocks.
func quantizeRecords(recs []netflow.Record, res time.Duration) []netflow.Record {
	out := make([]netflow.Record, len(recs))
	for i, r := range recs {
		r.First = quantize(r.First, res)
		r.Last = quantize(r.Last, res)
		out[i] = r
	}
	return out
}

func quantize(t simtime.Time, res time.Duration) simtime.Time {
	step := int64(res)
	return simtime.Time((int64(t) + step/2) / step * step)
}

// Render formats B1.
func (r BaselineResult) Render() string {
	var b strings.Builder
	b.WriteString("== B1: RLIR vs Multiflow vs LDA (same tandem run) ==\n")
	fmt.Fprintf(&b, "%-22s %-16s %-10s\n", "mechanism", "medianRelErr", "scope")
	fmt.Fprintf(&b, "%-22s %-16.4f %-10s\n", "RLIR (per flow)", r.RLIRMedian, "per-flow")
	fmt.Fprintf(&b, "%-22s %-16.4f %-10s (%d flows)\n", "Multiflow (2-sample)", r.MultiflowMedian, "per-flow", r.MultiflowFlows)
	fmt.Fprintf(&b, "%-22s %-16.4f %-10s (est %v vs true %v)\n", "LDA", r.LDAMeanErr, "aggregate", r.LDAEstimate, r.TrueAggregate)
	fmt.Fprintf(&b, "reference packets injected by RLIR: %d (LDA/NetFlow are passive)\n", r.RLIROverheadPkts)
	b.WriteString("note: paper §5 — LDA is accurate but aggregate-only; Multiflow is per-flow but crude;\n")
	b.WriteString("      RLI(R) delivers per-flow fidelity at the cost of active probes\n")
	return b.String()
}
