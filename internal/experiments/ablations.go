package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/netmeasure/rlir/internal/core"
	"github.com/netmeasure/rlir/internal/lda"
	"github.com/netmeasure/rlir/internal/measure"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simclock"
	"github.com/netmeasure/rlir/internal/simtime"
)

// EstimatorRow is one line of ablation A2.
type EstimatorRow struct {
	Estimator    core.Estimator
	MedianRelErr float64
	P90RelErr    float64
	Flows        int
}

// AblationEstimators (A2) compares interpolation variants on an identical
// workload: RLI's linear interpolation against the left/right/nearest
// single-endpoint estimators.
func AblationEstimators(scale Scale, targetUtil float64) []EstimatorRow {
	var out []EstimatorRow
	for _, e := range []core.Estimator{core.Linear, core.LeftRef, core.RightRef, core.Nearest} {
		r := RunTandem(TandemConfig{
			Scale:      scale,
			Scheme:     core.DefaultStatic(),
			Model:      CrossUniform,
			TargetUtil: targetUtil,
			Estimator:  e,
		})
		out = append(out, EstimatorRow{
			Estimator:    e,
			MedianRelErr: r.Summary.MedianRelErr,
			P90RelErr:    r.Summary.P90RelErr,
			Flows:        r.Summary.Flows,
		})
	}
	return out
}

// RenderEstimators formats A2.
func RenderEstimators(rows []EstimatorRow) string {
	var b strings.Builder
	b.WriteString("== A2: interpolation estimator variants ==\n")
	fmt.Fprintf(&b, "%-10s %-8s %-14s %-12s\n", "estimator", "flows", "medianRelErr", "p90RelErr")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-8d %-14.4f %-12.4f\n", r.Estimator, r.Flows, r.MedianRelErr, r.P90RelErr)
	}
	return b.String()
}

// ClockRow is one line of ablation A3.
type ClockRow struct {
	Clock        string
	MedianRelErr float64
	TrueMean     time.Duration
}

// AblationClocks (A3) sweeps receiver clock imperfections: RLI assumes
// IEEE 1588/GPS sync; this quantifies how residual offset and drift bleed
// into per-flow estimates.
func AblationClocks(scale Scale, targetUtil float64) []ClockRow {
	clocks := []simclock.Source{
		simclock.Perfect{},
		simclock.FixedOffset{Offset: time.Microsecond},
		simclock.FixedOffset{Offset: 10 * time.Microsecond},
		simclock.FixedOffset{Offset: 100 * time.Microsecond},
		simclock.Drifting{DriftPPM: 10},
		simclock.PTP{DriftPPM: 10, SyncInterval: 100 * time.Millisecond, SyncJitter: 500 * time.Nanosecond, Seed: 3},
	}
	var out []ClockRow
	for _, c := range clocks {
		r := RunTandem(TandemConfig{
			Scale:         scale,
			Scheme:        core.DefaultStatic(),
			Model:         CrossUniform,
			TargetUtil:    targetUtil,
			ReceiverClock: c,
		})
		out = append(out, ClockRow{
			Clock:        c.Name(),
			MedianRelErr: r.Summary.MedianRelErr,
			TrueMean:     r.Summary.TrueMeanDelay,
		})
	}
	return out
}

// RenderClocks formats A3.
func RenderClocks(rows []ClockRow) string {
	var b strings.Builder
	b.WriteString("== A3: clock synchronization sensitivity (receiver clock) ==\n")
	fmt.Fprintf(&b, "%-40s %-14s %-12s\n", "clock", "medianRelErr", "trueMean")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-40s %-14.4f %-12v\n", r.Clock, r.MedianRelErr, r.TrueMean)
	}
	b.WriteString("note: one-way estimates absorb the sender-receiver offset directly;\n")
	b.WriteString("      errors stay small while the offset is small versus true queueing delay\n")
	return b.String()
}

// BaselineResult is B1: RLIR against LDA (aggregate), Multiflow
// (two-sample NetFlow) and 1-in-N packet sampling on the identical tandem
// run, wired through the unified estimator layer (internal/measure): one
// shared tap dispatch at the two measurement points, one Compare against
// shared ground truth.
type BaselineResult struct {
	// RLIRMedian is RLIR's per-flow median relative error (the receiver's
	// own summary metric, pinned by the golden fixture).
	RLIRMedian float64
	// MultiflowMedian is the Multiflow estimator's per-flow median
	// relative error over the same flows.
	MultiflowMedian float64
	// MultiflowFlows counts flows Multiflow could estimate.
	MultiflowFlows int
	// SampledMedian / SampledFlows are the 1-in-N packet-sampling
	// baseline's per-flow error and coverage.
	SampledMedian float64
	SampledFlows  int
	// LDAMeanErr is LDA's relative error on the aggregate mean delay —
	// LDA's only deliverable ("only provides aggregate measurements").
	LDAMeanErr float64
	// LDAEstimate / TrueAggregate document the aggregate comparison.
	LDAEstimate   time.Duration
	TrueAggregate time.Duration
	// RLIROverheadPkts: extra packets injected on the wire (the baselines
	// are passive; RLI adds reference packets).
	RLIROverheadPkts uint64
	// Comparison is the full estimator-layer table behind the fields
	// above.
	Comparison []measure.Comparison
}

// RunBaselines (B1) co-locates all four mechanisms on one run through the
// estimator layer's shared dispatch.
func RunBaselines(scale Scale, targetUtil float64) BaselineResult {
	// Multiflow runs on NetFlow-realistic millisecond (sysUpTime) stamps —
	// the principal reason the two-sample estimator is crude for
	// microsecond data-center latencies ([12]); measure.DefaultQuantize
	// models that. RLI's whole premise is hardware timestamping, so only
	// the NetFlow side is quantized. The sampling baseline keeps exact
	// stamps (its handicap is coverage, not resolution).
	ldaEst := measure.NewLDA(lda.DefaultConfig())
	mf := measure.NewMultiflow(0)
	samp := measure.NewSampled(0, scale.Seed)
	truth := measure.NewTruth()
	shared := measure.NewDispatch(truth, ldaEst, mf, samp)

	run := RunTandem(TandemConfig{
		Scale:      scale,
		Scheme:     core.DefaultStatic(),
		Model:      CrossUniform,
		TargetUtil: targetUtil,
		OnSenderPoint: func(p *packet.Packet, now simtime.Time) {
			if p.Kind == packet.Regular {
				shared.TapStart(p, now)
			}
		},
		OnReceiverPoint: func(p *packet.Packet, now simtime.Time) {
			if p.Kind == packet.Regular {
				shared.TapEnd(p, now)
			}
		},
	})

	rliRep := measure.ReportFromFlowResults("rli", "sw2", run.Results, measure.Overhead{
		InjectedPkts:  run.Sender.Injected,
		InjectedBytes: run.Sender.Injected * core.DefaultRefSize,
	})
	comps := measure.Compare(truth, rliRep, ldaEst.Finalize(), mf.Finalize(), samp.Finalize())

	res := BaselineResult{
		RLIRMedian:       run.Summary.MedianRelErr,
		RLIROverheadPkts: run.Sender.Injected,
		TrueAggregate:    truth.AggMean(),
		Comparison:       comps,
	}
	for _, c := range comps {
		switch c.Estimator {
		case "multiflow":
			res.MultiflowMedian = c.MedianRelErr
			res.MultiflowFlows = c.Flows
		case "netflow-sample":
			res.SampledMedian = c.MedianRelErr
			res.SampledFlows = c.Flows
		case "lda":
			res.LDAMeanErr = c.AggRelErr
			res.LDAEstimate = c.AggMean
		}
	}
	return res
}

// Render formats B1.
func (r BaselineResult) Render() string {
	var b strings.Builder
	b.WriteString("== B1: RLIR vs Multiflow vs sampling vs LDA (same tandem run) ==\n")
	fmt.Fprintf(&b, "%-22s %-16s %-10s\n", "mechanism", "medianRelErr", "scope")
	fmt.Fprintf(&b, "%-22s %-16.4f %-10s\n", "RLIR (per flow)", r.RLIRMedian, "per-flow")
	fmt.Fprintf(&b, "%-22s %-16.4f %-10s (%d flows)\n", "Multiflow (2-sample)", r.MultiflowMedian, "per-flow", r.MultiflowFlows)
	fmt.Fprintf(&b, "%-22s %-16.4f %-10s (%d flows)\n", "NetFlow 1-in-32", r.SampledMedian, "per-flow", r.SampledFlows)
	fmt.Fprintf(&b, "%-22s %-16.4f %-10s (est %v vs true %v)\n", "LDA", r.LDAMeanErr, "aggregate", r.LDAEstimate, r.TrueAggregate)
	fmt.Fprintf(&b, "reference packets injected by RLIR: %d (LDA/NetFlow are passive)\n", r.RLIROverheadPkts)
	b.WriteString("estimator-layer comparison table:\n")
	b.WriteString(measure.RenderComparisons(r.Comparison))
	b.WriteString("note: paper §5 — LDA is accurate but aggregate-only; Multiflow is per-flow but crude;\n")
	b.WriteString("      sampling trades flow coverage for exactness; RLI(R) delivers per-flow fidelity\n")
	b.WriteString("      at the cost of active probes\n")
	return b.String()
}
