package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/core"
)

// testScale is small enough for CI but large enough for stable medians.
func testScale() Scale {
	s := SmallScale()
	return s
}

func TestRunTandemBasics(t *testing.T) {
	r := RunTandem(TandemConfig{
		Scale:      testScale(),
		Scheme:     core.DefaultStatic(),
		Model:      CrossUniform,
		TargetUtil: 0.67,
	})
	if r.Summary.Flows < 20 {
		t.Fatalf("flows = %d, workload too thin", r.Summary.Flows)
	}
	if r.Receiver.RefsSeen == 0 || r.Receiver.Estimated == 0 {
		t.Fatalf("receiver counters = %+v", r.Receiver)
	}
	if r.Sender.Injected == 0 {
		t.Fatalf("sender injected nothing: %+v", r.Sender)
	}
	if r.CrossAdmitted == 0 {
		t.Fatal("no cross traffic admitted")
	}
	// Utilization should land near the target (cross calibration).
	if math.Abs(r.AchievedUtil-0.67) > 0.12 {
		t.Fatalf("achieved util %.2f, target 0.67", r.AchievedUtil)
	}
	if r.Label() == "" {
		t.Fatal("empty label")
	}
}

func TestTandemUtilizationCalibration(t *testing.T) {
	// The injector must track different targets, including past the
	// regular-only baseline.
	for _, target := range []float64{0.34, 0.93} {
		r := RunTandem(TandemConfig{
			Scale: testScale(), Scheme: nil, Model: CrossUniform, TargetUtil: target,
		})
		if math.Abs(r.AchievedUtil-target) > 0.12 {
			t.Fatalf("target %.2f achieved %.2f", target, r.AchievedUtil)
		}
	}
}

func TestTandemNoCrossMatchesBaseUtil(t *testing.T) {
	r := RunTandem(TandemConfig{Scale: testScale(), Model: CrossNone})
	if math.Abs(r.AchievedUtil-testScale().BaseUtil) > 0.08 {
		t.Fatalf("base util %.2f, want ~%.2f", r.AchievedUtil, testScale().BaseUtil)
	}
	if r.CrossAdmitted != 0 {
		t.Fatal("cross admitted without a model")
	}
}

func TestTandemDeterministicAcrossRuns(t *testing.T) {
	cfg := TandemConfig{
		Scale: testScale(), Scheme: core.DefaultStatic(),
		Model: CrossUniform, TargetUtil: 0.8,
	}
	a, b := RunTandem(cfg), RunTandem(cfg)
	if a.Summary.MedianRelErr != b.Summary.MedianRelErr ||
		a.Receiver.Estimated != b.Receiver.Estimated ||
		a.RegularDropped != b.RegularDropped {
		t.Fatal("tandem run not deterministic")
	}
}

func TestAdaptiveLivePinsAtMinGap(t *testing.T) {
	// The paper's observation: the sender's own link sits at ~22%, so the
	// live adaptive scheme injects at its maximum rate — ~10x static's.
	adaptive := RunTandem(TandemConfig{
		Scale: testScale(), Scheme: core.DefaultAdaptive(), AdaptiveLive: true,
		Model: CrossUniform, TargetUtil: 0.67,
	})
	static := RunTandem(TandemConfig{
		Scale: testScale(), Scheme: core.DefaultStatic(),
		Model: CrossUniform, TargetUtil: 0.67,
	})
	ratio := float64(adaptive.Sender.Injected) / float64(static.Sender.Injected)
	if ratio < 7 || ratio > 13 {
		t.Fatalf("adaptive/static injection ratio = %.1f, want ~10", ratio)
	}
}

func TestFig4aShape(t *testing.T) {
	f := Fig4a(testScale())
	if len(f.Series) != 4 {
		t.Fatalf("series = %d", len(f.Series))
	}
	byLabel := map[string]Series{}
	for _, s := range f.Series {
		byLabel[s.Label] = s
		if s.CDF.N() == 0 {
			t.Fatalf("series %q empty", s.Label)
		}
	}
	// Shape 1: at 93%, errors are lower than at 67% (same scheme).
	s93 := byLabel["static(1-and-100), random, 93%"]
	s67 := byLabel["static(1-and-100), random, 67%"]
	if s93.CDF.Median() >= s67.CDF.Median() {
		t.Errorf("static: median@93 %.3f should beat median@67 %.3f",
			s93.CDF.Median(), s67.CDF.Median())
	}
	// Shape 2: adaptive (pinned at 1-and-10) beats static at the same util.
	a93 := byLabel["adaptive(1-and-10..300), random, 93%"]
	if a93.CDF.Median() > s93.CDF.Median() {
		t.Errorf("adaptive median %.3f should be <= static %.3f at 93%%",
			a93.CDF.Median(), s93.CDF.Median())
	}
	if f.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig4bShape(t *testing.T) {
	f := Fig4b(testScale())
	if len(f.Series) != 4 {
		t.Fatalf("series = %d", len(f.Series))
	}
	var a93, a67 Series
	for _, s := range f.Series {
		switch s.Label {
		case "adaptive(1-and-10..300), random, 93%":
			a93 = s
		case "adaptive(1-and-10..300), random, 67%":
			a67 = s
		}
	}
	if a93.CDF == nil || a67.CDF == nil {
		t.Fatal("missing adaptive series")
	}
	// Shape: stddev estimates are better at higher utilization.
	if a93.CDF.FracBelow(0.10) <= a67.CDF.FracBelow(0.10) {
		t.Errorf("std err under-10%%: 93%%=%.2f should exceed 67%%=%.2f",
			a93.CDF.FracBelow(0.10), a67.CDF.FracBelow(0.10))
	}
}

func TestFig4cShape(t *testing.T) {
	f := Fig4c(testScale())
	if len(f.Series) != 4 {
		t.Fatalf("series = %d", len(f.Series))
	}
	var bursty67, random67 Series
	for _, s := range f.Series {
		switch s.Label {
		case "static(1-and-100), bursty, 67%":
			bursty67 = s
		case "static(1-and-100), random, 67%":
			random67 = s
		}
	}
	if bursty67.CDF == nil || random67.CDF == nil {
		t.Fatal("missing series")
	}
	// Shape: bursty cross traffic -> markedly better accuracy at equal
	// average utilization (paper: ~an order of magnitude).
	if bursty67.CDF.Median() >= random67.CDF.Median() {
		t.Errorf("bursty median %.4f should beat random median %.4f",
			bursty67.CDF.Median(), random67.CDF.Median())
	}
	// And bursty true delays are much larger.
	if bursty67.Meta["trueMeanUs"] <= random67.Meta["trueMeanUs"] {
		t.Errorf("bursty true mean %.1fµs should exceed random %.1fµs",
			bursty67.Meta["trueMeanUs"], random67.Meta["trueMeanUs"])
	}
}

func TestFig5Shape(t *testing.T) {
	// Interference is a small systematic effect (~1% extra packets from the
	// adaptive scheme) riding on chaotic queue noise, so this test runs a
	// longer trace with a tight queue: enough drop events for the signal to
	// dominate the run-to-run reshuffling.
	scale := testScale()
	scale.Duration = time.Second
	scale.QueueBytes = 32 << 10
	r := Fig5(scale, []float64{0.98})
	if len(r.Points) != 1 {
		t.Fatalf("points = %d", len(r.Points))
	}
	p := r.Points[0]
	if p.BaseLoss == 0 {
		t.Fatal("no baseline loss at 98% with a 32KB queue: simulator broken")
	}
	// Adaptive injects ~10x static's probes; its interference must be
	// positive and no smaller than static's beyond noise.
	if p.AdaptiveDiff <= 0 {
		t.Errorf("adaptive interference = %+.6f, want positive", p.AdaptiveDiff)
	}
	if p.AdaptiveDiff < p.StaticDiff-1e-3 {
		t.Errorf("adaptive diff %+.6f should be >= static diff %+.6f",
			p.AdaptiveDiff, p.StaticDiff)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestScalars(t *testing.T) {
	s := RunScalars(testScale())
	if math.Abs(s.BaseUtil-0.22) > 0.08 {
		t.Fatalf("base util %.2f, want ~0.22", s.BaseUtil)
	}
	if s.AdaptiveGap != 10 {
		t.Fatalf("adaptive gap %d, want 10 (paper)", s.AdaptiveGap)
	}
	// Latency ordering: 93% random > 67% random; 67% bursty > 67% random.
	if s.TrueMean93Random <= s.TrueMean67Random {
		t.Errorf("93%% mean %v should exceed 67%% mean %v", s.TrueMean93Random, s.TrueMean67Random)
	}
	if s.TrueMean67Bursty <= s.TrueMean67Random {
		t.Errorf("bursty mean %v should exceed random mean %v", s.TrueMean67Bursty, s.TrueMean67Random)
	}
	if !strings.Contains(s.Render(), "22%") {
		t.Fatal("render missing paper reference")
	}
}

func TestCrossModelString(t *testing.T) {
	for _, m := range []CrossModel{CrossUniform, CrossBursty, CrossNone, CrossModel(9)} {
		if m.String() == "" {
			t.Fatal("empty model name")
		}
	}
}

func TestScalesSane(t *testing.T) {
	for _, s := range []Scale{SmallScale(), DefaultScale(), FullScale()} {
		if s.LinkBps <= 0 || s.Duration <= 0 || s.BaseUtil <= 0 || s.CrossOfferedUtil <= s.BaseUtil {
			t.Fatalf("scale %+v invalid", s)
		}
	}
	if FullScale().LinkBps != 10e9 || FullScale().Duration != 60*time.Second {
		t.Fatal("full scale should match the paper's OC-192 minute")
	}
}
