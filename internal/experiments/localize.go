package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/netmeasure/rlir/internal/core"
	"github.com/netmeasure/rlir/internal/eventsim"
	"github.com/netmeasure/rlir/internal/netsim"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/topo"
	"github.com/netmeasure/rlir/internal/trace"
)

// AnomalySite places a latency fault in the localization scenario.
type AnomalySite uint8

const (
	// AnomalyNone runs a healthy network.
	AnomalyNone AnomalySite = iota
	// AnomalySrcAgg slows an aggregation switch in the source pod: the
	// fault lands inside the ToR->core segments of one core group.
	AnomalySrcAgg
	// AnomalyDstAgg slows an aggregation switch in the destination pod:
	// the fault lands inside the core->ToR segments of one group.
	AnomalyDstAgg
)

func (a AnomalySite) String() string {
	switch a {
	case AnomalyNone:
		return "none"
	case AnomalySrcAgg:
		return "src-agg"
	case AnomalyDstAgg:
		return "dst-agg"
	default:
		return fmt.Sprintf("site(%d)", uint8(a))
	}
}

// LocalizationConfig is the paper's running scenario (T1 -> T7 across the
// cores of Figure 1): one source ToR's flows to one destination ToR,
// measured as per-core segments, with an optional injected fault.
type LocalizationConfig struct {
	K          int
	LinkBps    float64
	QueueBytes int
	Duration   time.Duration
	Seed       int64
	Scheme     core.InjectionScheme
	// SrcPod/SrcToR and DestPod/DestToR pick the endpoints.
	SrcPod, SrcToR   int
	DestPod, DestToR int
	// LoadFrac is offered load relative to one host link.
	LoadFrac float64
	// Site / AggIndex / ExtraDelay describe the fault.
	Site       AnomalySite
	AggIndex   int
	ExtraDelay time.Duration
	// Threshold is the localizer's anomaly ratio (default 3).
	Threshold float64
}

// DefaultLocalizationConfig returns the k=4, T1->T7-style scenario with a
// 300µs fault at the destination pod's aggregation switch 0.
func DefaultLocalizationConfig() LocalizationConfig {
	return LocalizationConfig{
		K: 4, LinkBps: 1e9, QueueBytes: 256 << 10,
		Duration: 200 * time.Millisecond, Seed: 1,
		Scheme: core.Static{N: 40},
		SrcPod: 0, SrcToR: 0, DestPod: 3, DestToR: 0,
		LoadFrac:   0.6,
		Site:       AnomalyDstAgg,
		AggIndex:   0,
		ExtraDelay: 300 * time.Microsecond,
		Threshold:  3,
	}
}

// LocalizationResult reports the calibration and fault runs.
type LocalizationResult struct {
	Config LocalizationConfig
	// Baseline and Faulty are per-segment reports from the two runs, in
	// matching order (upstream segments first, then downstream).
	Baseline []core.SegmentReport
	Faulty   []core.SegmentReport
	// Anomalies is the localizer's verdict.
	Anomalies []core.Anomaly
	// ExpectedSegments names segments that truly contain the fault.
	ExpectedSegments []string
}

// Localized reports whether every flagged segment is truly faulty and at
// least one faulty segment was flagged.
func (r LocalizationResult) Localized() bool {
	if len(r.ExpectedSegments) == 0 {
		return len(r.Anomalies) == 0
	}
	if len(r.Anomalies) == 0 {
		return false
	}
	expected := map[string]bool{}
	for _, s := range r.ExpectedSegments {
		expected[s] = true
	}
	for _, a := range r.Anomalies {
		if !expected[a.Segment] {
			return false
		}
	}
	return true
}

// RunLocalization runs the healthy calibration pass and the faulty pass,
// then localizes with per-segment baselines — the paper's end-to-end story:
// RLIR divides the T1->T7 path into segments and the inflated segment
// identifies the sick router group.
func RunLocalization(cfg LocalizationConfig) LocalizationResult {
	if cfg.Threshold == 0 {
		cfg.Threshold = 3
	}
	base := runLocalizationPass(cfg, false)
	faulty := runLocalizationPass(cfg, true)

	loc := core.NewLocalizer(cfg.Threshold)
	loc.CalibrateFrom(base)
	res := LocalizationResult{Config: cfg}
	for _, s := range base {
		res.Baseline = append(res.Baseline, s.Report())
	}
	for _, s := range faulty {
		res.Faulty = append(res.Faulty, s.Report())
	}
	res.Anomalies = loc.Examine(faulty)

	h := cfg.K / 2
	switch cfg.Site {
	case AnomalySrcAgg:
		for i := 0; i < h; i++ {
			res.ExpectedSegments = append(res.ExpectedSegments, upSegName(cfg.AggIndex, i))
		}
	case AnomalyDstAgg:
		for i := 0; i < h; i++ {
			res.ExpectedSegments = append(res.ExpectedSegments, downSegName(cfg.AggIndex, i))
		}
	}
	return res
}

func upSegName(j, i int) string   { return fmt.Sprintf("T1->C(%d,%d)", j, i) }
func downSegName(j, i int) string { return fmt.Sprintf("C(%d,%d)->T7", j, i) }

// runLocalizationPass builds the fat-tree, instruments per-core segments,
// optionally injects the fault, replays the workload and returns segments.
// The returned core.Segment list is ordered: upstream (j,i) then downstream
// (j,i), row-major.
func runLocalizationPass(cfg LocalizationConfig, withFault bool) []core.Segment {
	eng := eventsim.New()
	nw := netsim.New(eng)
	tcfg := topo.DefaultConfig()
	tcfg.K = cfg.K
	tcfg.LinkBps = cfg.LinkBps
	tcfg.QueueBytes = cfg.QueueBytes
	ft, err := topo.Build(tcfg, nw)
	if err != nil {
		panic(err)
	}
	h := ft.Half()
	sp, se := cfg.SrcPod, cfg.SrcToR
	q, e0 := cfg.DestPod, cfg.DestToR

	if withFault && cfg.Site != AnomalyNone {
		pod := sp
		if cfg.Site == AnomalyDstAgg {
			pod = q
		}
		agg := ft.Aggs[pod][cfg.AggIndex]
		agg.SetProcDelay(agg.ProcDelay() + cfg.ExtraDelay)
	}

	// Upstream: senders at the source ToR's uplinks, receivers at core
	// ingress. Segment (j,i) covers ToR uplink j -> core (j,i).
	for j := 0; j < h; j++ {
		dsts := make([]packet.Addr, h)
		for i := 0; i < h; i++ {
			dsts[i] = ft.CoreAddr(j, i)
		}
		if _, err := core.AttachSender(ft.ToRUplink(sp, se, j), core.SenderConfig{
			ID:        upstreamSenderID(h, sp, se, j),
			Addr:      ft.ToRAddr(sp, se),
			Receivers: dsts,
			Scheme:    cfg.Scheme,
		}); err != nil {
			panic(err)
		}
	}
	var segments []core.Segment
	for j := 0; j < h; j++ {
		for i := 0; i < h; i++ {
			addr := ft.CoreAddr(j, i)
			rx, err := core.AttachReceiverIngress(ft.Cores[j][i], core.ReceiverConfig{
				Demux:     core.SingleDemux{ID: upstreamSenderID(h, sp, se, j)},
				Accept:    func(p *packet.Packet) bool { return p.Kind == packet.Regular },
				AcceptRef: func(p *packet.Packet) bool { return p.Key.Dst == addr },
			})
			if err != nil {
				panic(err)
			}
			segments = append(segments, core.Segment{Name: upSegName(j, i), Receiver: rx})
		}
	}

	// Downstream: senders at core ports toward the destination pod; one
	// receiver per core stream spanning the destination ToR's host ports,
	// so each segment has its own latency distribution.
	refDst := ft.HostAddr(q, e0, 0)
	var downstream []core.Segment
	for j := 0; j < h; j++ {
		for i := 0; i < h; i++ {
			j, i := j, i
			if _, err := core.AttachSender(ft.CoreDownPort(j, i, q), core.SenderConfig{
				ID:        downstreamSenderID(h, j, i),
				Addr:      ft.CoreAddr(j, i),
				Receivers: []packet.Addr{refDst},
				Scheme:    cfg.Scheme,
			}); err != nil {
				panic(err)
			}
			sid := downstreamSenderID(h, j, i)
			rx, err := core.NewReceiver(core.ReceiverConfig{
				// Reverse-ECMP demux restricted to this stream: packets
				// resolved to other cores are left to their own receivers.
				Demux: core.FuncDemux{
					Label: "reverse-ecmp-" + downSegName(j, i),
					F: func(p *packet.Packet) (core.SenderID, bool) {
						rj, ri, err := ft.ResolveCore(p.Key)
						if err != nil || rj != j || ri != i {
							return 0, false
						}
						return sid, true
					},
				},
				Accept: func(p *packet.Packet) bool { return p.Kind == packet.Regular },
				AcceptRef: func(p *packet.Packet) bool {
					return p.Ref.Sender == sid
				},
			})
			if err != nil {
				panic(err)
			}
			for hh := 0; hh < h; hh++ {
				ft.ToRHostPort(q, e0, hh).OnTxStart(rx.Observe)
			}
			downstream = append(downstream, core.Segment{Name: downSegName(j, i), Receiver: rx})
		}
	}

	// Workload: source ToR's hosts to destination ToR's hosts.
	gcfg := trace.DefaultConfig()
	gcfg.Seed = cfg.Seed
	gcfg.Duration = cfg.Duration
	gcfg.TargetBps = cfg.LoadFrac * float64(h) * cfg.LinkBps
	capFlowLen(&gcfg)
	gen := trace.NewGenerator(gcfg)
	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		hash := rec.Key.FastHash()
		sh := int(hash % uint64(h))
		dh := int(hash >> 8 % uint64(h))
		key := rec.Key
		key.Src = ft.HostAddr(sp, se, sh)
		key.Dst = ft.HostAddr(q, e0, dh)
		pk := &packet.Packet{ID: nw.NewPacketID(), Key: key, Size: rec.Size, Kind: packet.Regular}
		nw.Inject(ft.Hosts[sp][se][sh], pk, rec.At)
	}
	eng.Run()

	return append(segments, downstream...)
}

// Render formats the localization scenario: both passes' segments and the
// verdict.
func (r LocalizationResult) Render() string {
	var b strings.Builder
	b.WriteString("== L1: latency anomaly localization across segments ==\n")
	fmt.Fprintf(&b, "fault: %s agg[%d] +%v\n", r.Config.Site, r.Config.AggIndex, r.Config.ExtraDelay)
	fmt.Fprintf(&b, "%-14s %12s %12s\n", "segment", "baseline", "faulty")
	for i := range r.Baseline {
		fmt.Fprintf(&b, "%-14s %12v %12v\n", r.Baseline[i].Name, r.Baseline[i].Mean, r.Faulty[i].Mean)
	}
	if len(r.Anomalies) == 0 {
		b.WriteString("verdict: no anomalies flagged\n")
	}
	for _, a := range r.Anomalies {
		fmt.Fprintf(&b, "verdict: %s\n", a)
	}
	fmt.Fprintf(&b, "localized correctly: %v (expected %v)\n", r.Localized(), r.ExpectedSegments)
	return b.String()
}
