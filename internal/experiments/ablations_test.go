package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestAblationEstimators(t *testing.T) {
	rows := AblationEstimators(testScale(), 0.8)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]EstimatorRow{}
	for _, r := range rows {
		if r.Flows == 0 {
			t.Fatalf("%v measured no flows", r.Estimator)
		}
		byName[r.Estimator.String()] = r
	}
	// Linear interpolation should be at least as good as single-endpoint
	// estimators on median error (it uses strictly more information).
	lin := byName["linear"]
	for _, other := range []string{"left", "right"} {
		if lin.MedianRelErr > byName[other].MedianRelErr*1.25+1e-9 {
			t.Errorf("linear median %.4f should not lose badly to %s %.4f",
				lin.MedianRelErr, other, byName[other].MedianRelErr)
		}
	}
	if RenderEstimators(rows) == "" {
		t.Fatal("empty render")
	}
}

func TestAblationClocks(t *testing.T) {
	rows := AblationClocks(testScale(), 0.8)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	perfect := rows[0]
	offset100 := rows[3]
	// A 100µs receiver offset must hurt much more than perfect sync when
	// true delays are tens of µs.
	if offset100.MedianRelErr <= perfect.MedianRelErr {
		t.Errorf("offset=100µs median %.4f should exceed perfect %.4f",
			offset100.MedianRelErr, perfect.MedianRelErr)
	}
	out := RenderClocks(rows)
	if !strings.Contains(out, "perfect") {
		t.Fatal("render missing clocks")
	}
}

func TestRunBaselines(t *testing.T) {
	// 93% utilization: RLI's intended operating regime, where delays are
	// large enough for millisecond NetFlow stamps to be useless.
	r := RunBaselines(testScale(), 0.93)
	if r.MultiflowFlows == 0 {
		t.Fatal("multiflow estimated no flows")
	}
	// RLIR's per-flow fidelity must beat the two-sample estimator.
	if r.RLIRMedian >= r.MultiflowMedian {
		t.Errorf("RLIR median %.4f should beat Multiflow %.4f", r.RLIRMedian, r.MultiflowMedian)
	}
	// LDA's aggregate estimate should be close to the true aggregate.
	if r.LDAMeanErr > 0.25 {
		t.Errorf("LDA aggregate error %.4f too high", r.LDAMeanErr)
	}
	if r.TrueAggregate <= 0 || r.LDAEstimate <= 0 {
		t.Fatalf("aggregates: lda=%v true=%v", r.LDAEstimate, r.TrueAggregate)
	}
	if r.RLIROverheadPkts == 0 {
		t.Fatal("RLIR injected no reference packets")
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestBaselinesConsistentScale(t *testing.T) {
	// Guard: the baseline run must finish quickly at test scale.
	start := time.Now()
	RunBaselines(testScale(), 0.5)
	if elapsed := time.Since(start); elapsed > 2*time.Minute {
		t.Fatalf("baseline run took %v", elapsed)
	}
}
