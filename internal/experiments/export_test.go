package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFigureWriteCSV(t *testing.T) {
	dir := t.TempDir()
	f := Fig4c(testScale())
	files, err := f.WriteCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(f.Series) {
		t.Fatalf("wrote %d files for %d series", len(files), len(f.Series))
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if lines[0] != "rel_err,cum_frac" {
			t.Fatalf("%s: bad header %q", path, lines[0])
		}
		if len(lines) < 10 {
			t.Fatalf("%s: only %d lines", path, len(lines))
		}
		// Filenames must be filesystem-safe.
		base := filepath.Base(path)
		if strings.ContainsAny(base, " ,()%/") {
			t.Fatalf("unsafe filename %q", base)
		}
	}
}

func TestFig5WriteCSV(t *testing.T) {
	dir := t.TempDir()
	scale := testScale()
	r := Fig5(scale, []float64{0.9})
	path, err := r.WriteCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "target_util,") {
		t.Fatalf("bad header in %s", path)
	}
	if len(strings.Split(strings.TrimSpace(string(data)), "\n")) != 2 {
		t.Fatal("expected header + 1 point")
	}
}

func TestSlug(t *testing.T) {
	in := "adaptive(1-and-10..300), random, 93%"
	out := slug(in)
	if strings.ContainsAny(out, " ,()%") {
		t.Fatalf("slug(%q) = %q still unsafe", in, out)
	}
}
