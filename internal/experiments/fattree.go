package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/netmeasure/rlir/internal/core"
	"github.com/netmeasure/rlir/internal/eventsim"
	"github.com/netmeasure/rlir/internal/netsim"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/topo"
	"github.com/netmeasure/rlir/internal/trace"
)

// DemuxStrategy names the downstream demultiplexing options of §3.1.
type DemuxStrategy uint8

const (
	// DemuxNone associates every packet with one arbitrary reference
	// stream — the paper's "estimates can be totally wrong" baseline.
	DemuxNone DemuxStrategy = iota
	// DemuxMark uses ToS packet marking at cores.
	DemuxMark
	// DemuxReverseECMP replays upstream hash functions from topology
	// knowledge.
	DemuxReverseECMP
	// DemuxOracle uses simulator ground truth (upper bound).
	DemuxOracle
)

func (d DemuxStrategy) String() string {
	switch d {
	case DemuxNone:
		return "none"
	case DemuxMark:
		return "marking"
	case DemuxReverseECMP:
		return "reverse-ecmp"
	case DemuxOracle:
		return "oracle"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(d))
	}
}

// FatTreeConfig is one RLIR deployment run on a k-ary fat-tree: traffic
// from every other pod converges on one ToR (T7 in the paper's Figure 1),
// with RLI instances at source ToR uplinks (upstream senders), cores
// (receivers for the ToR->core segment, senders for core->ToR), and the
// destination ToR (downstream receiver using the strategy under test).
type FatTreeConfig struct {
	K          int
	LinkBps    float64
	QueueBytes int
	Duration   time.Duration
	Seed       int64
	Scheme     core.InjectionScheme
	Strategy   DemuxStrategy
	// DestPod / DestToR locate the monitored ToR (default pod K-1, ToR 0).
	DestPod, DestToR int
	// LoadFrac is the offered load as a fraction of the destination hosts'
	// aggregate link capacity.
	LoadFrac float64
	// CoreSkew differentiates the physical paths: the link from core (j,i)
	// toward the destination pod gets (j*K/2+i)*CoreSkew extra propagation
	// delay (cable length / hop asymmetry). Nonzero skew makes the paths'
	// latencies genuinely different, which is precisely when demultiplexing
	// matters: a packet attributed to the wrong reference stream inherits
	// the wrong path's baseline (§3.1, "the delay of a reference packet
	// that traverses one path may have no correlation with the delay of a
	// packet that traverses a different path").
	CoreSkew time.Duration
}

// DefaultFatTreeConfig returns a k=4 run at moderate load.
func DefaultFatTreeConfig() FatTreeConfig {
	return FatTreeConfig{
		K: 4, LinkBps: 1e9, QueueBytes: 256 << 10,
		Duration: 300 * time.Millisecond, Seed: 1,
		Scheme: core.Static{N: 50}, Strategy: DemuxReverseECMP,
		DestPod: 3, LoadFrac: 0.55,
		CoreSkew: 150 * time.Microsecond,
	}
}

// FatTreeResult reports one run.
type FatTreeResult struct {
	Config FatTreeConfig
	// Downstream is the per-flow accuracy at the destination ToR (the
	// segment core->ToR measured with the strategy under test).
	Downstream core.Summary
	Results    []core.FlowResult
	// Misattribution is the fraction of classified packets whose stream
	// assignment disagrees with ground truth.
	Misattribution float64
	// Upstream aggregates the core-resident receivers (prefix demux).
	Upstream core.Summary
	// Packets injected.
	Injected int
}

// countingDemux wraps a strategy with a ground-truth comparison.
type countingDemux struct {
	inner  core.Demux
	oracle core.Demux
	agree  uint64
	total  uint64
}

func (c *countingDemux) Classify(p *packet.Packet) (core.SenderID, bool) {
	id, ok := c.inner.Classify(p)
	if ok {
		if truth, tok := c.oracle.Classify(p); tok {
			c.total++
			if truth == id {
				c.agree++
			}
		}
	}
	return id, ok
}

func (c *countingDemux) Name() string { return "counting(" + c.inner.Name() + ")" }

func (c *countingDemux) misattribution() float64 {
	if c.total == 0 {
		return 0
	}
	return 1 - float64(c.agree)/float64(c.total)
}

// upstreamSenderID identifies the sender at ToR(p,e) uplink j.
func upstreamSenderID(h, p, e, j int) core.SenderID {
	return core.SenderID(1000 + ((p*h+e)*h + j))
}

// downstreamSenderID identifies the sender at core (j,i).
func downstreamSenderID(h, j, i int) core.SenderID {
	return core.SenderID(2000 + j*h + i)
}

// RunFatTree executes one fat-tree RLIR deployment.
func RunFatTree(cfg FatTreeConfig) FatTreeResult {
	if cfg.Scheme == nil {
		cfg.Scheme = core.Static{N: 50}
	}
	eng := eventsim.New()
	nw := netsim.New(eng)
	tcfg := topo.DefaultConfig()
	tcfg.K = cfg.K
	tcfg.LinkBps = cfg.LinkBps
	tcfg.QueueBytes = cfg.QueueBytes
	tcfg.MarkAtCores = cfg.Strategy == DemuxMark
	ft, err := topo.Build(tcfg, nw)
	if err != nil {
		panic(err)
	}
	// Ground truth path tracing: needed by the oracle and the
	// misattribution audit.
	nw.SetTracePaths(true)

	h := ft.Half()
	q, e0 := cfg.DestPod, cfg.DestToR

	// Physical path differentiation (see CoreSkew).
	if cfg.CoreSkew > 0 {
		for j := 0; j < h; j++ {
			for i := 0; i < h; i++ {
				port := ft.CoreDownPort(j, i, q)
				port.SetPropagation(port.Propagation() + time.Duration(j*h+i)*cfg.CoreSkew)
			}
		}
	}

	// --- Upstream instruments: senders at every source ToR uplink,
	// receivers at every core (prefix demux, the paper's upstream case).
	for p := 0; p < cfg.K; p++ {
		if p == q {
			continue
		}
		for e := 0; e < h; e++ {
			for j := 0; j < h; j++ {
				dsts := make([]packet.Addr, h)
				for i := 0; i < h; i++ {
					dsts[i] = ft.CoreAddr(j, i)
				}
				_, err := core.AttachSender(ft.ToRUplink(p, e, j), core.SenderConfig{
					ID:        upstreamSenderID(h, p, e, j),
					Addr:      ft.ToRAddr(p, e),
					Receivers: dsts,
					Scheme:    cfg.Scheme,
				})
				if err != nil {
					panic(err)
				}
			}
		}
	}
	var coreReceivers []*core.Receiver
	for j := 0; j < h; j++ {
		for i := 0; i < h; i++ {
			j, i := j, i
			pd := core.NewPrefixDemux()
			for p := 0; p < cfg.K; p++ {
				if p == q {
					continue
				}
				for e := 0; e < h; e++ {
					// Packets reaching core (j,i) from ToR (p,e) crossed
					// that ToR's uplink j by construction of core groups.
					pd.Add(ft.ToRSubnet(p, e), upstreamSenderID(h, p, e, j))
				}
			}
			addr := ft.CoreAddr(j, i)
			rx, err := core.AttachReceiverIngress(ft.Cores[j][i], core.ReceiverConfig{
				Demux:     pd,
				Accept:    func(p *packet.Packet) bool { return p.Kind == packet.Regular },
				AcceptRef: func(p *packet.Packet) bool { return p.Key.Dst == addr },
			})
			if err != nil {
				panic(err)
			}
			coreReceivers = append(coreReceivers, rx)
		}
	}

	// --- Downstream instruments: a sender at each core's port toward the
	// destination pod; one receiver spanning the destination ToR's host
	// ports, demultiplexing with the strategy under test.
	refDst := ft.HostAddr(q, e0, 0)
	for j := 0; j < h; j++ {
		for i := 0; i < h; i++ {
			_, err := core.AttachSender(ft.CoreDownPort(j, i, q), core.SenderConfig{
				ID:        downstreamSenderID(h, j, i),
				Addr:      ft.CoreAddr(j, i),
				Receivers: []packet.Addr{refDst},
				Scheme:    cfg.Scheme,
			})
			if err != nil {
				panic(err)
			}
		}
	}

	oracle := core.NewOracleDemux()
	for j := 0; j < h; j++ {
		for i := 0; i < h; i++ {
			oracle.Add(ft.Cores[j][i].ID(), downstreamSenderID(h, j, i))
		}
	}
	var strategy core.Demux
	switch cfg.Strategy {
	case DemuxNone:
		strategy = core.SingleDemux{ID: downstreamSenderID(h, 0, 0)}
	case DemuxMark:
		md := core.NewMarkDemux()
		for j := 0; j < h; j++ {
			for i := 0; i < h; i++ {
				md.Add(ft.CoreMark(j, i), downstreamSenderID(h, j, i))
			}
		}
		strategy = md
	case DemuxReverseECMP:
		strategy = core.FuncDemux{
			Label: "reverse-ecmp",
			F: func(p *packet.Packet) (core.SenderID, bool) {
				j, i, err := ft.ResolveCore(p.Key)
				if err != nil {
					return 0, false
				}
				return downstreamSenderID(h, j, i), true
			},
		}
	case DemuxOracle:
		strategy = oracle
	default:
		panic(fmt.Sprintf("experiments: unknown strategy %v", cfg.Strategy))
	}
	counting := &countingDemux{inner: strategy, oracle: oracle}

	downRx, err := core.NewReceiver(core.ReceiverConfig{
		Demux:  counting,
		Accept: func(p *packet.Packet) bool { return p.Kind == packet.Regular },
	})
	if err != nil {
		panic(err)
	}
	for hh := 0; hh < h; hh++ {
		ft.ToRHostPort(q, e0, hh).OnTxStart(downRx.Observe)
	}

	// --- Workload: flows from every other pod's hosts to the destination
	// ToR's hosts, remapped from the synthetic generator onto valid hosts.
	gcfg := trace.DefaultConfig()
	gcfg.Seed = cfg.Seed
	gcfg.Duration = cfg.Duration
	gcfg.TargetBps = cfg.LoadFrac * float64(h) * cfg.LinkBps
	capFlowLen(&gcfg)
	gen := trace.NewGenerator(gcfg)
	injected := 0
	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		hash := rec.Key.FastHash()
		p := int(hash % uint64(cfg.K-1))
		if p >= q {
			p++ // skip the destination pod
		}
		se := int(hash >> 8 % uint64(h))
		sh := int(hash >> 16 % uint64(h))
		dh := int(hash >> 24 % uint64(h))
		key := rec.Key
		key.Src = ft.HostAddr(p, se, sh)
		key.Dst = ft.HostAddr(q, e0, dh)
		pk := &packet.Packet{ID: nw.NewPacketID(), Key: key, Size: rec.Size, Kind: packet.Regular}
		nw.Inject(ft.Hosts[p][se][sh], pk, rec.At)
		injected++
	}
	eng.Run()

	res := FatTreeResult{Config: cfg, Injected: injected}
	res.Results = downRx.Results(1)
	res.Downstream = core.Summarize(res.Results)
	res.Misattribution = counting.misattribution()
	var upResults []core.FlowResult
	for _, rx := range coreReceivers {
		upResults = append(upResults, rx.Results(1)...)
	}
	res.Upstream = core.Summarize(upResults)
	return res
}

// AblationDemux runs every strategy on the identical workload (A1 in
// DESIGN.md): it shows prefix/mark/reverse-ECMP matching the oracle and the
// no-demux baseline degrading, the paper's "totally wrong" claim.
func AblationDemux(cfg FatTreeConfig) []FatTreeResult {
	strategies := []DemuxStrategy{DemuxOracle, DemuxReverseECMP, DemuxMark, DemuxNone}
	out := make([]FatTreeResult, 0, len(strategies))
	for _, s := range strategies {
		c := cfg
		c.Strategy = s
		out = append(out, RunFatTree(c))
	}
	return out
}

// RenderAblationDemux formats A1 as a table.
func RenderAblationDemux(results []FatTreeResult) string {
	var b strings.Builder
	b.WriteString("== A1: downstream demultiplexing strategies (k-ary fat-tree) ==\n")
	fmt.Fprintf(&b, "%-14s %-8s %-14s %-14s %-12s %-12s\n",
		"strategy", "flows", "medianRelErr", "under10%", "misattrib", "upstreamMed")
	for _, r := range results {
		fmt.Fprintf(&b, "%-14s %-8d %-14.4f %-14.1f %-12.4f %-12.4f\n",
			r.Config.Strategy, r.Downstream.Flows, r.Downstream.MedianRelErr,
			r.Downstream.FracUnder10Pct*100, r.Misattribution, r.Upstream.MedianRelErr)
	}
	b.WriteString("note: paper §3.1 — without demux, estimates at multiplexed receivers 'can be totally wrong'\n")
	return b.String()
}
