package experiments

import (
	"strings"
	"testing"
	"time"
)

// smallFT shrinks the fat-tree run for CI.
func smallFT() FatTreeConfig {
	cfg := DefaultFatTreeConfig()
	cfg.Duration = 120 * time.Millisecond
	return cfg
}

func TestRunFatTreeReverseECMP(t *testing.T) {
	r := RunFatTree(smallFT())
	if r.Injected == 0 {
		t.Fatal("no packets injected")
	}
	if r.Downstream.Flows < 10 {
		t.Fatalf("downstream flows = %d", r.Downstream.Flows)
	}
	// Reverse ECMP with vendor-revealed hashes is exact: zero
	// misattribution.
	if r.Misattribution != 0 {
		t.Fatalf("reverse-ECMP misattribution = %.4f, want 0", r.Misattribution)
	}
	if r.Upstream.Flows == 0 {
		t.Fatal("upstream receivers saw no flows")
	}
}

func TestRunFatTreeMarking(t *testing.T) {
	cfg := smallFT()
	cfg.Strategy = DemuxMark
	r := RunFatTree(cfg)
	if r.Misattribution != 0 {
		t.Fatalf("marking misattribution = %.4f, want 0", r.Misattribution)
	}
	if r.Downstream.Flows == 0 {
		t.Fatal("no flows measured")
	}
}

func TestAblationDemuxShape(t *testing.T) {
	results := AblationDemux(smallFT())
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	byStrategy := map[DemuxStrategy]FatTreeResult{}
	for _, r := range results {
		byStrategy[r.Config.Strategy] = r
	}
	none := byStrategy[DemuxNone]
	oracleR := byStrategy[DemuxOracle]
	recmp := byStrategy[DemuxReverseECMP]
	mark := byStrategy[DemuxMark]

	// The no-demux baseline misattributes most packets (3 of 4 cores are
	// wrong in a k=4 tree) — the paper's "totally wrong".
	if none.Misattribution < 0.4 {
		t.Errorf("no-demux misattribution = %.3f, expected large", none.Misattribution)
	}
	// All real strategies match ground truth exactly.
	for name, r := range map[string]FatTreeResult{"oracle": oracleR, "reverse-ecmp": recmp, "marking": mark} {
		if r.Misattribution != 0 {
			t.Errorf("%s misattribution = %.4f, want 0", name, r.Misattribution)
		}
	}
	// And their accuracy must match the oracle's, while no-demux is worse.
	if recmp.Downstream.MedianRelErr > oracleR.Downstream.MedianRelErr*1.05+1e-9 {
		t.Errorf("reverse-ecmp median %.4f should match oracle %.4f",
			recmp.Downstream.MedianRelErr, oracleR.Downstream.MedianRelErr)
	}
	if none.Downstream.MedianRelErr <= oracleR.Downstream.MedianRelErr {
		t.Errorf("no-demux median %.4f should exceed oracle %.4f",
			none.Downstream.MedianRelErr, oracleR.Downstream.MedianRelErr)
	}
	out := RenderAblationDemux(results)
	if !strings.Contains(out, "reverse-ecmp") {
		t.Fatal("render missing strategies")
	}
}

func TestFatTreeDeterminism(t *testing.T) {
	a, b := RunFatTree(smallFT()), RunFatTree(smallFT())
	if a.Downstream.MedianRelErr != b.Downstream.MedianRelErr || a.Injected != b.Injected {
		t.Fatal("fat-tree run not deterministic")
	}
}

func TestDemuxStrategyString(t *testing.T) {
	for _, s := range []DemuxStrategy{DemuxNone, DemuxMark, DemuxReverseECMP, DemuxOracle, DemuxStrategy(9)} {
		if s.String() == "" {
			t.Fatal("empty strategy name")
		}
	}
}
