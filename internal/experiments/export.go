package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// WriteCSV writes each series of the figure as "<id>_<label>.csv" under
// dir, two columns (relative error, cumulative fraction), ready for
// gnuplot/matplotlib. It returns the files written.
func (f Figure) WriteCSV(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var files []string
	for _, s := range f.Series {
		name := fmt.Sprintf("%s_%s.csv", f.ID, slug(s.Label))
		path := filepath.Join(dir, name)
		var b strings.Builder
		b.WriteString("rel_err,cum_frac\n")
		for _, p := range s.CDF.Points(512) {
			fmt.Fprintf(&b, "%g,%g\n", p.X, p.Y)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			return files, err
		}
		files = append(files, path)
	}
	return files, nil
}

// WriteCSV writes Figure 5 as one CSV: utilization, base loss and the two
// interference columns.
func (r Fig5Result) WriteCSV(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "fig5_interference.csv")
	var b strings.Builder
	b.WriteString("target_util,achieved_util,base_loss,adaptive_diff,static_diff\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%g,%g,%g,%g,%g\n",
			p.TargetUtil, p.AchievedUtil, p.BaseLoss, p.AdaptiveDiff, p.StaticDiff)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// slug makes a label filesystem-safe.
func slug(s string) string {
	repl := strings.NewReplacer(
		" ", "", ",", "_", "(", "", ")", "", "%", "pct", "/", "-", "..", "-")
	return repl.Replace(s)
}
