package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/core"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/runner"
	"github.com/netmeasure/rlir/internal/stats"
)

// This file upgrades the repository's figures and ablations from single-seed
// point estimates to multi-seed mean ± CI: every harness below fans N
// independent simulations (seeds derived via SplitMix64 from the scenario's
// base seed) across workers with internal/runner and aggregates each
// headline metric across seeds. Per-run per-flow telemetry merges through
// the collector plane, so sweeps also produce the fleet-level flow table an
// operator would see.

// MultiOpts sizes a multi-seed sweep.
type MultiOpts struct {
	// Seeds is the number of independent runs (default 8 — enough for a
	// meaningful t-interval without exploding CI time).
	Seeds int
	// Workers caps parallel runs (default GOMAXPROCS).
	Workers int
}

func (o MultiOpts) normalized() MultiOpts {
	if o.Seeds <= 0 {
		o.Seeds = 8
	}
	o.Workers = runner.Workers(o.Workers)
	return o
}

// MetricCI is one metric's across-seed distribution: mean ± 95% CI
// (Student-t) over N independent runs.
type MetricCI struct {
	Mean, CI95 float64
	Min, Max   float64
	N          int
}

// MetricOf folds independent per-seed samples into a mean ± 95% CI metric.
// Exported so other sweep harnesses (internal/scenario) share one
// implementation of the across-seed statistic.
func MetricOf(samples []float64) MetricCI {
	var w stats.Welford
	m := MetricCI{}
	for _, x := range samples {
		if w.N() == 0 || x < m.Min {
			m.Min = x
		}
		if w.N() == 0 || x > m.Max {
			m.Max = x
		}
		w.Add(x)
	}
	m.Mean = w.Mean()
	m.CI95 = w.CI95()
	m.N = int(w.N())
	return m
}

func (m MetricCI) String() string {
	if m.N == 0 {
		return "n/a"
	}
	if m.N == 1 {
		return fmt.Sprintf("%.4f", m.Mean)
	}
	return fmt.Sprintf("%.4f ±%.4f", m.Mean, m.CI95)
}

// column folds column i of per-seed metric rows into a MetricCI.
func column(rows [][]float64, i int) MetricCI {
	xs := make([]float64, 0, len(rows))
	for _, r := range rows {
		if i < len(r) {
			xs = append(xs, r[i])
		}
	}
	return MetricOf(xs)
}

// ---- Multi-seed tandem ----

// MultiTandemResult aggregates one tandem configuration across seeds.
type MultiTandemResult struct {
	Config  TandemConfig
	Seeds   []int64
	PerSeed []core.Summary
	// Across-seed distributions of the run's headline scalars.
	MedianRelErr, P90RelErr, FracUnder10Pct MetricCI
	AchievedUtil                            MetricCI
	TrueMeanDelayUs                         MetricCI
	// Merged is the fleet-level per-flow aggregate: each run streams its
	// estimates into a per-run collector plane; snapshots merge in seed
	// order (deterministic for any worker count).
	Merged []collector.FlowAgg
}

// MultiTandem runs cfg at opts.Seeds derived seeds in parallel. A
// caller-supplied cfg.OnEstimate still fires for every estimate (chained
// after the sweep's own collector sink) and is serialized with a mutex, so
// a single-threaded hook — the way the hook is used everywhere else —
// remains safe under parallel runs; calls may interleave across seeds in a
// nondeterministic order.
func MultiTandem(cfg TandemConfig, opts MultiOpts) MultiTandemResult {
	opts = opts.normalized()
	seeds := runner.Seeds(cfg.Scale.Seed, opts.Seeds)
	type runOut struct {
		sum  core.Summary
		util float64
		snap []collector.FlowAgg
	}
	var callerMu sync.Mutex
	outs := runner.Map(seeds, opts.Workers, func(i int, seed int64) runOut {
		c := collector.New(collector.Config{Shards: 2})
		sink := runner.NewSink(c, 0)
		rc := cfg
		rc.Scale.Seed = seed
		if caller := cfg.OnEstimate; caller != nil {
			// Chain rather than replace a caller-supplied export hook.
			rc.OnEstimate = func(key packet.FlowKey, est, truth time.Duration) {
				sink.Add(key, est, truth)
				callerMu.Lock()
				caller(key, est, truth)
				callerMu.Unlock()
			}
		} else {
			rc.OnEstimate = sink.Add
		}
		r := RunTandem(rc)
		sink.Flush()
		snap := c.Snapshot()
		c.Close()
		return runOut{sum: r.Summary, util: r.AchievedUtil, snap: snap}
	})

	res := MultiTandemResult{Config: cfg, Seeds: seeds}
	var rows [][]float64
	snaps := make([][]collector.FlowAgg, len(outs))
	for i, o := range outs {
		res.PerSeed = append(res.PerSeed, o.sum)
		rows = append(rows, []float64{
			o.sum.MedianRelErr, o.sum.P90RelErr, o.sum.FracUnder10Pct,
			o.util, float64(o.sum.TrueMeanDelay) / float64(time.Microsecond),
		})
		snaps[i] = o.snap
	}
	res.MedianRelErr = column(rows, 0)
	res.P90RelErr = column(rows, 1)
	res.FracUnder10Pct = column(rows, 2)
	res.AchievedUtil = column(rows, 3)
	res.TrueMeanDelayUs = column(rows, 4)
	res.Merged = collector.Merge(snaps...)
	return res
}

// ---- Multi-seed figures (4a/4b/4c) ----

// MultiSeries is one figure curve summarized across seeds.
type MultiSeries struct {
	Label                       string
	Median, P90, FracUnder10Pct MetricCI
}

// MultiFigure is a figure re-recorded as across-seed statistics: instead of
// one CDF per series it reports each series' headline quantiles as
// mean ± CI over the seeds.
type MultiFigure struct {
	ID, Title string
	SeedCount int
	Series    []MultiSeries
	Notes     []string
}

// Render draws the across-seed figure table.
func (f MultiFigure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s (mean ±95%% CI over %d seeds) ==\n", f.ID, f.Title, f.SeedCount)
	fmt.Fprintf(&b, "%-28s %-18s %-18s %-18s\n", "series", "medianRelErr", "p90RelErr", "fracUnder10%")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-28s %-18s %-18s %-18s", s.Label, s.Median, s.P90, s.FracUnder10Pct)
		if s.Median.N < f.SeedCount {
			// Seeds whose series CDF was empty are excluded from the stats;
			// surface the effective n instead of claiming the full count.
			fmt.Fprintf(&b, " (n=%d)", s.Median.N)
		}
		b.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// multiFigure fans a single-seed figure harness across seeds and folds each
// series' quantiles. Series identity (label, order) is seed-invariant, so
// series are matched by index.
func multiFigure(fig func(Scale) Figure, scale Scale, opts MultiOpts) MultiFigure {
	opts = opts.normalized()
	seeds := runner.Seeds(scale.Seed, opts.Seeds)
	figs := runner.Map(seeds, opts.Workers, func(i int, seed int64) Figure {
		sc := scale
		sc.Seed = seed
		return fig(sc)
	})

	out := MultiFigure{SeedCount: opts.Seeds}
	if len(figs) == 0 {
		return out
	}
	out.ID = figs[0].ID + "-multi"
	out.Title = figs[0].Title
	for si, ref := range figs[0].Series {
		var med, p90, under []float64
		for _, f := range figs {
			cdf := f.Series[si].CDF
			if cdf.N() == 0 {
				continue
			}
			med = append(med, cdf.Median())
			p90 = append(p90, cdf.Quantile(0.9))
			under = append(under, cdf.FracBelow(0.10))
		}
		out.Series = append(out.Series, MultiSeries{
			Label:          ref.Label,
			Median:         MetricOf(med),
			P90:            MetricOf(p90),
			FracUnder10Pct: MetricOf(under),
		})
	}
	return out
}

// Fig4aMulti re-records Figure 4(a) as mean ± CI across seeds.
func Fig4aMulti(scale Scale, opts MultiOpts) MultiFigure {
	f := multiFigure(Fig4a, scale, opts)
	f.Notes = append(f.Notes, "paper shape: higher utilization -> lower relative error; adaptive <= static")
	return f
}

// Fig4bMulti re-records Figure 4(b) as mean ± CI across seeds.
func Fig4bMulti(scale Scale, opts MultiOpts) MultiFigure {
	f := multiFigure(Fig4b, scale, opts)
	f.Notes = append(f.Notes, "paper shape: stddev estimates uniformly harder than means")
	return f
}

// Fig4cMulti re-records Figure 4(c) as mean ± CI across seeds.
func Fig4cMulti(scale Scale, opts MultiOpts) MultiFigure {
	f := multiFigure(Fig4c, scale, opts)
	f.Notes = append(f.Notes, "paper shape: bursty cross traffic cuts relative error at equal utilization")
	return f
}

// ---- Multi-seed scalars ----

// ScalarsCI re-records the §4.2 quoted numbers across seeds.
type ScalarsCI struct {
	SeedCount        int
	BaseUtil         MetricCI
	AdaptiveGap      MetricCI
	TrueMean67Random MetricCI // microseconds
	TrueMean93Random MetricCI
	TrueMean67Bursty MetricCI
	Median93Static   MetricCI
}

// MultiScalars measures the scalar table at every derived seed.
func MultiScalars(scale Scale, opts MultiOpts) ScalarsCI {
	opts = opts.normalized()
	seeds := runner.Seeds(scale.Seed, opts.Seeds)
	rows := runner.Map(seeds, opts.Workers, func(i int, seed int64) []float64 {
		sc := scale
		sc.Seed = seed
		s := RunScalars(sc)
		return []float64{
			s.BaseUtil, float64(s.AdaptiveGap),
			float64(s.TrueMean67Random) / float64(time.Microsecond),
			float64(s.TrueMean93Random) / float64(time.Microsecond),
			float64(s.TrueMean67Bursty) / float64(time.Microsecond),
			s.Median93Static,
		}
	})
	return ScalarsCI{
		SeedCount:        opts.Seeds,
		BaseUtil:         column(rows, 0),
		AdaptiveGap:      column(rows, 1),
		TrueMean67Random: column(rows, 2),
		TrueMean93Random: column(rows, 3),
		TrueMean67Bursty: column(rows, 4),
		Median93Static:   column(rows, 5),
	}
}

// Render formats the across-seed scalars.
func (s ScalarsCI) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== scalars: §4.2 quoted numbers (mean ±95%% CI over %d seeds) ==\n", s.SeedCount)
	fmt.Fprintf(&b, "base utilization (regular only):   %s (paper: ~0.22)\n", s.BaseUtil)
	fmt.Fprintf(&b, "adaptive gap at base utilization:  %s (paper: 10)\n", s.AdaptiveGap)
	fmt.Fprintf(&b, "true mean delay @67%% random (µs):  %s\n", s.TrueMean67Random)
	fmt.Fprintf(&b, "true mean delay @93%% random (µs):  %s\n", s.TrueMean93Random)
	fmt.Fprintf(&b, "true mean delay @67%% bursty (µs):  %s\n", s.TrueMean67Bursty)
	fmt.Fprintf(&b, "median rel err, static @93%%:       %s (paper: ~0.042-0.045)\n", s.Median93Static)
	return b.String()
}

// ---- Multi-seed ablations ----

// EstimatorCI is one line of the multi-seed A2 table.
type EstimatorCI struct {
	Estimator   core.Estimator
	Median, P90 MetricCI
}

// MultiEstimators re-records ablation A2 across seeds.
func MultiEstimators(scale Scale, targetUtil float64, opts MultiOpts) []EstimatorCI {
	opts = opts.normalized()
	seeds := runner.Seeds(scale.Seed, opts.Seeds)
	per := runner.Map(seeds, opts.Workers, func(i int, seed int64) []EstimatorRow {
		sc := scale
		sc.Seed = seed
		return AblationEstimators(sc, targetUtil)
	})
	var out []EstimatorCI
	for ei, ref := range per[0] {
		var med, p90 []float64
		for _, rows := range per {
			med = append(med, rows[ei].MedianRelErr)
			p90 = append(p90, rows[ei].P90RelErr)
		}
		out = append(out, EstimatorCI{
			Estimator: ref.Estimator,
			Median:    MetricOf(med),
			P90:       MetricOf(p90),
		})
	}
	return out
}

// RenderEstimatorsCI formats multi-seed A2.
func RenderEstimatorsCI(rows []EstimatorCI, seedCount int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== A2: interpolation estimator variants (mean ±95%% CI over %d seeds) ==\n", seedCount)
	fmt.Fprintf(&b, "%-10s %-20s %-20s\n", "estimator", "medianRelErr", "p90RelErr")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-20s %-20s\n", r.Estimator, r.Median, r.P90)
	}
	return b.String()
}

// ClockCI is one line of the multi-seed A3 table.
type ClockCI struct {
	Clock      string
	Median     MetricCI
	TrueMeanUs MetricCI
}

// MultiClocks re-records ablation A3 across seeds.
func MultiClocks(scale Scale, targetUtil float64, opts MultiOpts) []ClockCI {
	opts = opts.normalized()
	seeds := runner.Seeds(scale.Seed, opts.Seeds)
	per := runner.Map(seeds, opts.Workers, func(i int, seed int64) []ClockRow {
		sc := scale
		sc.Seed = seed
		return AblationClocks(sc, targetUtil)
	})
	var out []ClockCI
	for ci, ref := range per[0] {
		var rows [][]float64
		for _, p := range per {
			rows = append(rows, []float64{
				p[ci].MedianRelErr,
				float64(p[ci].TrueMean) / float64(time.Microsecond),
			})
		}
		out = append(out, ClockCI{Clock: ref.Clock, Median: column(rows, 0), TrueMeanUs: column(rows, 1)})
	}
	return out
}

// RenderClocksCI formats multi-seed A3.
func RenderClocksCI(rows []ClockCI, seedCount int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== A3: clock synchronization sensitivity (mean ±95%% CI over %d seeds) ==\n", seedCount)
	fmt.Fprintf(&b, "%-40s %-20s %-20s\n", "clock", "medianRelErr", "trueMean(µs)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-40s %-20s %-20s\n", r.Clock, r.Median, r.TrueMeanUs)
	}
	return b.String()
}

// BaselineCI re-records B1 across seeds.
type BaselineCI struct {
	SeedCount       int
	RLIRMedian      MetricCI
	MultiflowMedian MetricCI
	SampledMedian   MetricCI
	LDAMeanErr      MetricCI
}

// MultiBaselines re-records ablation B1 across seeds.
func MultiBaselines(scale Scale, targetUtil float64, opts MultiOpts) BaselineCI {
	opts = opts.normalized()
	seeds := runner.Seeds(scale.Seed, opts.Seeds)
	rows := runner.Map(seeds, opts.Workers, func(i int, seed int64) []float64 {
		sc := scale
		sc.Seed = seed
		r := RunBaselines(sc, targetUtil)
		return []float64{r.RLIRMedian, r.MultiflowMedian, r.SampledMedian, r.LDAMeanErr}
	})
	return BaselineCI{
		SeedCount:       opts.Seeds,
		RLIRMedian:      column(rows, 0),
		MultiflowMedian: column(rows, 1),
		SampledMedian:   column(rows, 2),
		LDAMeanErr:      column(rows, 3),
	}
}

// Render formats multi-seed B1.
func (r BaselineCI) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== B1: RLIR vs Multiflow vs sampling vs LDA (mean ±95%% CI over %d seeds) ==\n", r.SeedCount)
	fmt.Fprintf(&b, "%-22s %-20s %-10s\n", "mechanism", "medianRelErr", "scope")
	fmt.Fprintf(&b, "%-22s %-20s %-10s\n", "RLIR (per flow)", r.RLIRMedian, "per-flow")
	fmt.Fprintf(&b, "%-22s %-20s %-10s\n", "Multiflow (2-sample)", r.MultiflowMedian, "per-flow")
	fmt.Fprintf(&b, "%-22s %-20s %-10s\n", "NetFlow 1-in-32", r.SampledMedian, "per-flow")
	fmt.Fprintf(&b, "%-22s %-20s %-10s\n", "LDA (aggregate err)", r.LDAMeanErr, "aggregate")
	return b.String()
}

// DemuxCI is one line of the multi-seed A1 table.
type DemuxCI struct {
	Strategy         DemuxStrategy
	Misattribution   MetricCI
	DownstreamMedian MetricCI
}

// MultiDemux re-records ablation A1 across seeds.
func MultiDemux(cfg FatTreeConfig, opts MultiOpts) []DemuxCI {
	opts = opts.normalized()
	seeds := runner.Seeds(cfg.Seed, opts.Seeds)
	per := runner.Map(seeds, opts.Workers, func(i int, seed int64) []FatTreeResult {
		c := cfg
		c.Seed = seed
		return AblationDemux(c)
	})
	var out []DemuxCI
	for si, ref := range per[0] {
		var rows [][]float64
		for _, p := range per {
			rows = append(rows, []float64{p[si].Misattribution, p[si].Downstream.MedianRelErr})
		}
		out = append(out, DemuxCI{
			Strategy:         ref.Config.Strategy,
			Misattribution:   column(rows, 0),
			DownstreamMedian: column(rows, 1),
		})
	}
	return out
}

// RenderDemuxCI formats multi-seed A1.
func RenderDemuxCI(rows []DemuxCI, seedCount int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== A1: downstream demultiplexing (mean ±95%% CI over %d seeds) ==\n", seedCount)
	fmt.Fprintf(&b, "%-14s %-20s %-20s\n", "strategy", "misattribution", "downstreamMedian")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-20s %-20s\n", r.Strategy, r.Misattribution, r.DownstreamMedian)
	}
	return b.String()
}

// LocalizationCI re-records L1 across seeds.
type LocalizationCI struct {
	SeedCount int
	// SuccessRate is the fraction of seeds whose fault was localized to
	// exactly the truly faulty segment set.
	SuccessRate float64
	// FaultyInflation is the across-seed distribution of the mean
	// faulty/baseline latency ratio over the truly faulty segments.
	FaultyInflation MetricCI
}

// MultiLocalization re-records the L1 scenario across seeds.
func MultiLocalization(cfg LocalizationConfig, opts MultiOpts) LocalizationCI {
	opts = opts.normalized()
	seeds := runner.Seeds(cfg.Seed, opts.Seeds)
	type out struct {
		ok        bool
		inflation float64
	}
	outs := runner.Map(seeds, opts.Workers, func(i int, seed int64) out {
		c := cfg
		c.Seed = seed
		r := RunLocalization(c)
		expected := map[string]bool{}
		for _, s := range r.ExpectedSegments {
			expected[s] = true
		}
		var ratio float64
		var n int
		for i := range r.Baseline {
			if expected[r.Baseline[i].Name] && r.Baseline[i].Mean > 0 {
				ratio += float64(r.Faulty[i].Mean) / float64(r.Baseline[i].Mean)
				n++
			}
		}
		if n > 0 {
			ratio /= float64(n)
		}
		return out{ok: r.Localized(), inflation: ratio}
	})
	res := LocalizationCI{SeedCount: opts.Seeds}
	var inflations []float64
	for _, o := range outs {
		if o.ok {
			res.SuccessRate += 1 / float64(len(outs))
		}
		inflations = append(inflations, o.inflation)
	}
	res.FaultyInflation = MetricOf(inflations)
	return res
}

// Render formats multi-seed L1.
func (r LocalizationCI) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== L1: anomaly localization (over %d seeds) ==\n", r.SeedCount)
	fmt.Fprintf(&b, "localized correctly: %.0f%% of seeds\n", r.SuccessRate*100)
	fmt.Fprintf(&b, "faulty-segment inflation (faulty/baseline mean): %s\n", r.FaultyInflation)
	return b.String()
}
