package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/netmeasure/rlir/internal/core"
	"github.com/netmeasure/rlir/internal/stats"
)

// Series is one labelled CDF curve of a figure.
type Series struct {
	Label string
	CDF   *stats.CDF
	// Meta carries the run scalars the paper quotes alongside the curve.
	Meta map[string]float64
}

// Figure is a reproduced figure: a set of CDF curves plus notes.
type Figure struct {
	ID     string
	Title  string
	Series []Series
	Notes  []string
}

// Render draws the figure as log-x CDF tables, the textual stand-in for
// the paper's plots.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	for _, s := range f.Series {
		if s.CDF.N() == 0 {
			fmt.Fprintf(&b, "%-28s (no samples)\n", s.Label)
			continue
		}
		b.WriteString(s.CDF.Render(s.Label, 1e-3, 1e1, 9))
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// fig4Run executes the four runs shared by Figures 4(a) and 4(b): adaptive
// and static schemes at two bottleneck utilizations under the random cross
// traffic model.
func fig4Runs(scale Scale, utils [2]float64) []TandemResult {
	var out []TandemResult
	for _, u := range utils {
		adaptive := RunTandem(TandemConfig{
			Scale:        scale,
			Scheme:       core.DefaultAdaptive(),
			AdaptiveLive: true,
			Model:        CrossUniform,
			TargetUtil:   u,
		})
		static := RunTandem(TandemConfig{
			Scale:      scale,
			Scheme:     core.DefaultStatic(),
			Model:      CrossUniform,
			TargetUtil: u,
		})
		out = append(out, adaptive, static)
	}
	return out
}

func seriesFrom(r TandemResult, cdf *stats.CDF) Series {
	return Series{
		Label: r.Label(),
		CDF:   cdf,
		Meta: map[string]float64{
			"achievedUtil": r.AchievedUtil,
			"flows":        float64(r.Summary.Flows),
			"medianRelErr": safeMedian(cdf),
			"trueMeanUs":   float64(r.Summary.TrueMeanDelay) / float64(time.Microsecond),
			"refsSeen":     float64(r.Receiver.RefsSeen),
		},
	}
}

func safeMedian(c *stats.CDF) float64 {
	if c.N() == 0 {
		return 0
	}
	return c.Median()
}

// Fig4a reproduces Figure 4(a): CDFs of the relative error of per-flow
// MEAN latency estimates — adaptive vs static injection at ~67% and ~93%
// bottleneck utilization under the random cross-traffic model.
func Fig4a(scale Scale) Figure {
	runs := fig4Runs(scale, [2]float64{0.93, 0.67})
	f := Figure{ID: "fig4a", Title: "Mean estimates, random cross traffic model"}
	for _, r := range runs {
		f.Series = append(f.Series, seriesFrom(r, core.MeanErrCDF(r.Results)))
	}
	f.Notes = append(f.Notes,
		"paper shape: higher utilization -> lower relative error; adaptive <= static",
		fmt.Sprintf("achieved utils: %s", achieved(runs)))
	return f
}

// Fig4b reproduces Figure 4(b): the same four runs, CDFs of the relative
// error of per-flow STANDARD DEVIATION estimates (flows with >= 2 packets).
func Fig4b(scale Scale) Figure {
	runs := fig4Runs(scale, [2]float64{0.93, 0.67})
	f := Figure{ID: "fig4b", Title: "Standard deviation estimates, random cross traffic model"}
	for _, r := range runs {
		f.Series = append(f.Series, seriesFrom(r, core.StdErrCDF(r.Results)))
	}
	f.Notes = append(f.Notes,
		"paper shape: adaptive@93% has ~90% of flows under 10% error vs ~30% at 67%",
		fmt.Sprintf("achieved utils: %s", achieved(runs)))
	return f
}

// Fig4c reproduces Figure 4(c): mean-estimate accuracy under the BURSTY
// cross-traffic model vs the random model, at ~34% and ~67% utilization
// (static injection is held fixed so the models are the only variable; the
// paper uses the same workload logic).
func Fig4c(scale Scale) Figure {
	f := Figure{ID: "fig4c", Title: "Mean estimates: bursty vs random cross traffic"}
	var runs []TandemResult
	for _, cfg := range []struct {
		model CrossModel
		util  float64
	}{
		{CrossBursty, 0.67},
		{CrossBursty, 0.34},
		{CrossUniform, 0.67},
		{CrossUniform, 0.34},
	} {
		r := RunTandem(TandemConfig{
			Scale:      scale,
			Scheme:     core.DefaultStatic(),
			Model:      cfg.model,
			TargetUtil: cfg.util,
		})
		runs = append(runs, r)
		f.Series = append(f.Series, seriesFrom(r, core.MeanErrCDF(r.Results)))
	}
	f.Notes = append(f.Notes,
		"paper shape: bursty arrivals raise true delays and delay locality, cutting relative error ~an order of magnitude at 67%",
		fmt.Sprintf("achieved utils: %s", achieved(runs)))
	return f
}

func achieved(runs []TandemResult) string {
	parts := make([]string, len(runs))
	for i, r := range runs {
		parts[i] = fmt.Sprintf("%.0f%%->%.0f%%", r.Config.TargetUtil*100, r.AchievedUtil*100)
	}
	return strings.Join(parts, " ")
}

// Fig5Point is one x-position of Figure 5.
type Fig5Point struct {
	TargetUtil   float64
	AchievedUtil float64
	// BaseLoss is the regular traffic's loss rate with no instrumentation.
	BaseLoss float64
	// AdaptiveDiff / StaticDiff are the loss-rate increases caused by each
	// scheme's reference packets.
	AdaptiveDiff float64
	StaticDiff   float64
}

// Fig5Result is the reproduced Figure 5.
type Fig5Result struct {
	Points []Fig5Point
}

// Fig5 reproduces Figure 5 (reference packet interference): for a sweep of
// bottleneck utilizations, the increase in regular-traffic loss rate caused
// by reference packets, adaptive vs static. Each point runs the identical
// workload three times: uninstrumented, static, adaptive.
func Fig5(scale Scale, utils []float64) Fig5Result {
	if len(utils) == 0 {
		utils = []float64{0.82, 0.86, 0.90, 0.94, 0.98}
	}
	var out Fig5Result
	for _, u := range utils {
		base := RunTandem(TandemConfig{
			Scale: scale, Scheme: nil, Model: CrossUniform, TargetUtil: u,
		})
		static := RunTandem(TandemConfig{
			Scale: scale, Scheme: core.DefaultStatic(), Model: CrossUniform, TargetUtil: u,
		})
		adaptive := RunTandem(TandemConfig{
			Scale: scale, Scheme: core.DefaultAdaptive(), AdaptiveLive: true,
			Model: CrossUniform, TargetUtil: u,
		})
		out.Points = append(out.Points, Fig5Point{
			TargetUtil:   u,
			AchievedUtil: base.AchievedUtil,
			BaseLoss:     base.LossRate(),
			AdaptiveDiff: adaptive.LossRate() - base.LossRate(),
			StaticDiff:   static.LossRate() - base.LossRate(),
		})
	}
	return out
}

// Render draws Figure 5 as a table.
func (r Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("== fig5: Reference packet interference (loss rate difference) ==\n")
	fmt.Fprintf(&b, "%-8s %-9s %-12s %-12s %-12s\n", "util", "achieved", "base-loss", "adaptive", "static")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8.2f %-9.2f %-12.6f %+-12.6f %+-12.6f\n",
			p.TargetUtil, p.AchievedUtil, p.BaseLoss, p.AdaptiveDiff, p.StaticDiff)
	}
	b.WriteString("note: paper shape: static stays within ~4.2e-5; adaptive rises toward ~6e-4 near saturation\n")
	return b.String()
}

// Scalars reproduces the evaluation's quoted numbers (§4.2): base
// utilization from regular traffic alone, the adaptive gap it pins, and
// the average true latencies at the Figure-4 operating points.
type Scalars struct {
	BaseUtil         float64
	AdaptiveGap      int
	TrueMean67Random time.Duration
	TrueMean93Random time.Duration
	TrueMean67Bursty time.Duration
	Median93Static   float64
}

// RunScalars measures them.
func RunScalars(scale Scale) Scalars {
	base := RunTandem(TandemConfig{Scale: scale, Scheme: nil, Model: CrossNone})
	r67 := RunTandem(TandemConfig{Scale: scale, Scheme: core.DefaultStatic(), Model: CrossUniform, TargetUtil: 0.67})
	r93 := RunTandem(TandemConfig{Scale: scale, Scheme: core.DefaultStatic(), Model: CrossUniform, TargetUtil: 0.93})
	b67 := RunTandem(TandemConfig{Scale: scale, Scheme: core.DefaultStatic(), Model: CrossBursty, TargetUtil: 0.67})
	return Scalars{
		BaseUtil:         base.AchievedUtil,
		AdaptiveGap:      core.DefaultAdaptive().Gap(base.AchievedUtil),
		TrueMean67Random: r67.Summary.TrueMeanDelay,
		TrueMean93Random: r93.Summary.TrueMeanDelay,
		TrueMean67Bursty: b67.Summary.TrueMeanDelay,
		Median93Static:   r93.Summary.MedianRelErr,
	}
}

// Render formats the scalars against the paper's quotes.
func (s Scalars) Render() string {
	var b strings.Builder
	b.WriteString("== scalars: §4.2 quoted numbers ==\n")
	fmt.Fprintf(&b, "base utilization (regular only):   %.0f%%   (paper: ~22%%)\n", s.BaseUtil*100)
	fmt.Fprintf(&b, "adaptive gap at base utilization:  1-and-%d (paper: 1-and-10)\n", s.AdaptiveGap)
	fmt.Fprintf(&b, "true mean delay @67%% random:       %v (paper: ~3µs at OC-192 scale)\n", s.TrueMean67Random)
	fmt.Fprintf(&b, "true mean delay @93%% random:       %v (paper: ~83µs)\n", s.TrueMean93Random)
	fmt.Fprintf(&b, "true mean delay @67%% bursty:       %v (paper: ~117µs)\n", s.TrueMean67Bursty)
	fmt.Fprintf(&b, "median rel err, static @93%%:       %.3f (paper: ~4.2%%-4.5%%)\n", s.Median93Static)
	return b.String()
}
