package experiments

import (
	"math"
	"reflect"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/core"
)

// tinyScale keeps multi-seed sweeps affordable in unit tests.
func tinyScale() Scale {
	sc := SmallScale()
	sc.Duration = 120 * time.Millisecond
	return sc
}

// TestMultiTandemWorkerInvariance: the sweep's aggregated statistics and the
// merged collector snapshot must not depend on the worker count — the
// determinism contract of the runner + collector plane end to end, on real
// simulations.
func TestMultiTandemWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation sweep; skipped in -short")
	}
	cfg := TandemConfig{
		Scale:      tinyScale(),
		Scheme:     core.DefaultStatic(),
		Model:      CrossUniform,
		TargetUtil: 0.9,
	}
	seq := MultiTandem(cfg, MultiOpts{Seeds: 3, Workers: 1})
	par := MultiTandem(cfg, MultiOpts{Seeds: 3, Workers: 3})

	if !reflect.DeepEqual(seq.PerSeed, par.PerSeed) {
		t.Fatal("per-seed summaries differ across worker counts")
	}
	if !reflect.DeepEqual(seq.Merged, par.Merged) {
		t.Fatal("merged collector aggregates differ across worker counts")
	}
	if seq.MedianRelErr != par.MedianRelErr || seq.AchievedUtil != par.AchievedUtil {
		t.Fatal("across-seed metrics differ across worker counts")
	}
}

// TestMultiTandemStatistics sanity-checks the aggregation itself.
func TestMultiTandemStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation sweep; skipped in -short")
	}
	cfg := TandemConfig{
		Scale:      tinyScale(),
		Scheme:     core.DefaultStatic(),
		Model:      CrossUniform,
		TargetUtil: 0.9,
	}
	r := MultiTandem(cfg, MultiOpts{Seeds: 3})
	if len(r.Seeds) != 3 || len(r.PerSeed) != 3 {
		t.Fatalf("got %d seeds, %d summaries", len(r.Seeds), len(r.PerSeed))
	}
	if r.Seeds[0] == r.Seeds[1] || r.Seeds[1] == r.Seeds[2] {
		t.Fatalf("derived seeds not distinct: %v", r.Seeds)
	}
	if r.MedianRelErr.N != 3 || r.MedianRelErr.CI95 < 0 {
		t.Fatalf("bad MedianRelErr stats: %+v", r.MedianRelErr)
	}
	if r.MedianRelErr.Min > r.MedianRelErr.Mean || r.MedianRelErr.Mean > r.MedianRelErr.Max {
		t.Fatalf("mean outside [min,max]: %+v", r.MedianRelErr)
	}
	// Cross-check the mean against the per-seed summaries.
	var sum float64
	for _, s := range r.PerSeed {
		sum += s.MedianRelErr
	}
	if want := sum / 3; math.Abs(r.MedianRelErr.Mean-want) > 1e-12 {
		t.Fatalf("MedianRelErr.Mean = %v, want %v", r.MedianRelErr.Mean, want)
	}
	// The merged plane must hold every run's estimates.
	var merged int64
	for _, a := range r.Merged {
		merged += a.Est.N()
	}
	var perSeed int64
	for _, s := range r.PerSeed {
		perSeed += s.Estimates
	}
	if merged != perSeed {
		t.Fatalf("merged collector holds %d estimates, per-seed summaries total %d", merged, perSeed)
	}
}

func TestMetricOf(t *testing.T) {
	m := MetricOf([]float64{1, 2, 3})
	if m.N != 3 || m.Mean != 2 || m.Min != 1 || m.Max != 3 {
		t.Fatalf("metricOf: %+v", m)
	}
	if m.String() == "" || MetricOf(nil).String() != "n/a" {
		t.Fatalf("String rendering broken: %q / %q", m.String(), MetricOf(nil).String())
	}
}
