package experiments

import (
	"strings"
	"testing"
	"time"
)

func smallLoc() LocalizationConfig {
	cfg := DefaultLocalizationConfig()
	cfg.Duration = 120 * time.Millisecond
	return cfg
}

func TestLocalizationDstAggFault(t *testing.T) {
	cfg := smallLoc()
	cfg.Site = AnomalyDstAgg
	cfg.AggIndex = 0
	res := RunLocalization(cfg)

	if len(res.Baseline) != 8 || len(res.Faulty) != 8 {
		t.Fatalf("segments = %d/%d, want 8 (4 up + 4 down)", len(res.Baseline), len(res.Faulty))
	}
	if len(res.Anomalies) == 0 {
		t.Fatal("fault not detected")
	}
	if !res.Localized() {
		t.Fatalf("mislocalized: flagged %v, expected %v", res.Anomalies, res.ExpectedSegments)
	}
	// The flagged segments must be downstream segments of group 0.
	for _, a := range res.Anomalies {
		if !strings.HasPrefix(a.Segment, "C(0,") {
			t.Fatalf("flagged wrong segment %q", a.Segment)
		}
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestLocalizationSrcAggFault(t *testing.T) {
	cfg := smallLoc()
	cfg.Site = AnomalySrcAgg
	cfg.AggIndex = 1
	res := RunLocalization(cfg)
	if !res.Localized() {
		t.Fatalf("mislocalized: flagged %v, expected %v", res.Anomalies, res.ExpectedSegments)
	}
	for _, a := range res.Anomalies {
		if !strings.HasPrefix(a.Segment, "T1->C(1,") {
			t.Fatalf("flagged wrong segment %q", a.Segment)
		}
	}
}

func TestLocalizationHealthyNetworkQuiet(t *testing.T) {
	cfg := smallLoc()
	cfg.Site = AnomalyNone
	res := RunLocalization(cfg)
	if len(res.Anomalies) != 0 {
		t.Fatalf("false positives on a healthy network: %v", res.Anomalies)
	}
	if !res.Localized() {
		t.Fatal("healthy network should report localized=true (no expectations, no flags)")
	}
}

func TestAnomalySiteString(t *testing.T) {
	for _, s := range []AnomalySite{AnomalyNone, AnomalySrcAgg, AnomalyDstAgg, AnomalySite(9)} {
		if s.String() == "" {
			t.Fatal("empty site name")
		}
	}
}
