// Package experiments reproduces every table and figure of the paper's
// evaluation (§4) plus the ablations listed in DESIGN.md. Each experiment
// builds its workload, runs the simulator, and returns the series the paper
// plots; the cmd/experiments binary and the repository's benchmarks print
// them.
package experiments

import (
	"fmt"
	"time"

	"github.com/netmeasure/rlir/internal/core"
	"github.com/netmeasure/rlir/internal/crossinject"
	"github.com/netmeasure/rlir/internal/eventsim"
	"github.com/netmeasure/rlir/internal/netsim"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simclock"
	"github.com/netmeasure/rlir/internal/simtime"
	"github.com/netmeasure/rlir/internal/trace"
)

// Scale sets experiment magnitude. The paper replays 60 s of an OC-192
// (~10 Gbps) link; the default here is a scaled-down equivalent with the
// same utilization ratios, which is what the figures' shapes depend on.
type Scale struct {
	// LinkBps is the link rate of both hops (the second is the bottleneck).
	LinkBps float64
	// Duration is the trace length.
	Duration time.Duration
	// QueueBytes bounds each output queue.
	QueueBytes int
	// BaseUtil is the regular traffic's share of the bottleneck link
	// (the paper observes ~22%).
	BaseUtil float64
	// CrossOfferedUtil is the cross trace's full offered load as a link
	// fraction, before the injection model thins it (the paper's cross
	// trace is ~3x the regular one).
	CrossOfferedUtil float64
	// Seed drives every random choice.
	Seed int64
}

// SmallScale is sized for unit tests and CI: a fraction of a second.
func SmallScale() Scale {
	return Scale{LinkBps: 200e6, Duration: 400 * time.Millisecond, QueueBytes: 96 << 10,
		BaseUtil: 0.22, CrossOfferedUtil: 1.5, Seed: 1}
}

// DefaultScale runs in seconds on a laptop while giving smooth CDFs.
func DefaultScale() Scale {
	return Scale{LinkBps: 1e9, Duration: 2 * time.Second, QueueBytes: 256 << 10,
		BaseUtil: 0.22, CrossOfferedUtil: 1.5, Seed: 1}
}

// FullScale approximates the paper's magnitudes (60 s of 10 Gbps); expect
// minutes of wall-clock time and gigabytes of working set.
func FullScale() Scale {
	return Scale{LinkBps: 10e9, Duration: 60 * time.Second, QueueBytes: 1 << 20,
		BaseUtil: 0.22, CrossOfferedUtil: 1.5, Seed: 1}
}

// CrossModel selects the cross-traffic selection model of §4.1.
type CrossModel uint8

const (
	// CrossUniform is the random (persistent congestion) model.
	CrossUniform CrossModel = iota
	// CrossBursty is the on/off model.
	CrossBursty
	// CrossNone disables cross traffic.
	CrossNone
)

func (m CrossModel) String() string {
	switch m {
	case CrossUniform:
		return "random"
	case CrossBursty:
		return "bursty"
	case CrossNone:
		return "none"
	default:
		return fmt.Sprintf("model(%d)", uint8(m))
	}
}

// TandemConfig is one Figure-3 run.
type TandemConfig struct {
	Scale Scale
	// Scheme is the injection scheme; nil disables the RLI sender entirely
	// (the no-instrumentation baseline for Figure 5).
	Scheme core.InjectionScheme
	// AdaptiveLive, when true with an Adaptive scheme, drives the gap from
	// a live utilization meter on the sender's own link — which sees only
	// ~22% and therefore pins the gap at MinGap, the paper's observation.
	AdaptiveLive bool
	// Model and TargetUtil control the bottleneck's cross traffic.
	Model      CrossModel
	TargetUtil float64
	// BurstOn / BurstPeriod shape the bursty model. Defaults: period =
	// Duration/3 with on = period/2 — the paper's 10-seconds-per-minute
	// analogue. Bursts must span many interpolation windows and be intense
	// enough to hold the bottleneck queue deep; that is what produces the
	// large, slowly-varying delays that interpolation tracks so well in
	// Figure 4(c).
	BurstOn     time.Duration
	BurstPeriod time.Duration
	// Estimator overrides the receiver's interpolation variant.
	Estimator core.Estimator
	// SenderClock / ReceiverClock override perfect synchronization.
	SenderClock   simclock.Source
	ReceiverClock simclock.Source
	// MinFlowPackets filters the per-flow result set.
	MinFlowPackets int64
	// OnSenderPoint / OnReceiverPoint are optional extra taps at the two
	// measurement points, used to co-locate baseline instruments (LDA,
	// NetFlow meters) on the identical run.
	OnSenderPoint   netsim.TapFunc
	OnReceiverPoint netsim.TapFunc
	// OnEstimate, when non-nil, streams every per-packet estimate out of
	// the receiver as it is produced — the hook a collection plane
	// (internal/collector) ingests from.
	OnEstimate core.EstimateFunc
}

// TandemResult is everything a figure needs from one run.
type TandemResult struct {
	Config       TandemConfig
	Results      []core.FlowResult
	Summary      core.Summary
	Receiver     core.ReceiverCounters
	Sender       core.SenderCounters
	AchievedUtil float64
	// Regular traffic accounting at the bottleneck queue.
	RegularOffered uint64
	RegularDropped uint64
	// CrossAdmitted counts cross packets that passed the injection model.
	CrossAdmitted uint64
}

// LossRate returns the regular traffic's loss rate at the bottleneck.
func (r TandemResult) LossRate() float64 {
	if r.RegularOffered == 0 {
		return 0
	}
	return float64(r.RegularDropped) / float64(r.RegularOffered)
}

// Label names the run the way the paper's legends do.
func (r TandemResult) Label() string {
	scheme := "none"
	if r.Config.Scheme != nil {
		scheme = r.Config.Scheme.Name()
	}
	return fmt.Sprintf("%s, %s, %.0f%%", scheme, r.Config.Model, r.Config.TargetUtil*100)
}

// regularSrc is the regular traffic's address block; cross traffic is
// rebased elsewhere, which is how the receiver (and the paper) tells them
// apart.
var (
	regularSrc = packet.MustParsePrefix("10.1.0.0/16")
	regularDst = packet.MustParsePrefix("10.200.0.0/16")
	crossSrc   = packet.MustParsePrefix("172.16.0.0/16")
	crossDst   = packet.MustParsePrefix("172.17.0.0/16")
)

// RunTandem executes one Figure-3 simulation.
func RunTandem(cfg TandemConfig) TandemResult {
	sc := cfg.Scale
	eng := eventsim.New()
	nw := netsim.New(eng)
	sw1 := nw.AddNode(netsim.NodeConfig{Name: "sw1", ProcDelay: 500 * time.Nanosecond})
	sw2 := nw.AddNode(netsim.NodeConfig{Name: "sw2", ProcDelay: 500 * time.Nanosecond})
	sink := nw.AddNode(netsim.NodeConfig{Name: "sink"})
	link := netsim.LinkConfig{RateBps: sc.LinkBps, Propagation: time.Microsecond, QueueBytes: sc.QueueBytes}
	nw.Connect(sw1, sw2, link)
	bottleneck := nw.Connect(sw2, sink, link)
	out0 := func(n *netsim.Node, p *packet.Packet) int { return 0 }
	sw1.SetForward(out0)
	sw2.SetForward(out0)

	res := TandemResult{Config: cfg}

	// Regular workload into sw1. Flow lengths are capped relative to the
	// trace duration so tail truncation does not starve short runs of
	// their offered load.
	regCfg := trace.DefaultConfig()
	regCfg.Seed = sc.Seed
	regCfg.Duration = sc.Duration
	regCfg.TargetBps = sc.BaseUtil * sc.LinkBps
	regCfg.SrcPrefix = regularSrc
	regCfg.DstPrefix = regularDst
	capFlowLen(&regCfg)
	regBps := replay(nw, sw1, trace.NewGenerator(regCfg), packet.Regular, &res.RegularOffered, sc.Duration)

	// Cross workload into sw2, thinned to hit the target utilization. The
	// keep probability is calibrated against the cross trace's MEASURED
	// rate (a dry pass over the same seed), not its configured target, so
	// truncation bias cannot shift the achieved utilization.
	var crossSource *crossinject.Source
	if cfg.Model != CrossNone {
		crossCfg := trace.DefaultConfig()
		crossCfg.Seed = sc.Seed + 7919
		crossCfg.Duration = sc.Duration
		crossCfg.TargetBps = sc.CrossOfferedUtil * sc.LinkBps
		crossCfg.SrcPrefix = crossSrc
		crossCfg.DstPrefix = crossDst
		capFlowLen(&crossCfg)
		crossBps := measuredRate(crossCfg)
		var model crossinject.Model
		switch cfg.Model {
		case CrossUniform:
			p := crossinject.KeepProbabilityFor(cfg.TargetUtil, sc.LinkBps, regBps, crossBps)
			model = crossinject.NewUniform(p, sc.Seed+104729)
		case CrossBursty:
			period := cfg.BurstPeriod
			if period == 0 {
				period = sc.Duration / 3
			}
			on := cfg.BurstOn
			if on == 0 {
				on = period / 2
			}
			p := crossinject.BurstyParamsFor(cfg.TargetUtil, sc.LinkBps, regBps, crossBps, on, period)
			model = crossinject.NewBursty(on, period, p, sc.Seed+104729)
		}
		crossSource = crossinject.NewSource(trace.NewGenerator(crossCfg), model)
		replay(nw, sw2, crossSource, packet.Cross, nil, sc.Duration)
	}

	// Instruments.
	var sender *core.Sender
	if cfg.Scheme != nil {
		sCfg := core.SenderConfig{
			ID:        1,
			Addr:      packet.MustParseAddr("10.1.255.254"),
			Receivers: []packet.Addr{packet.MustParseAddr("10.200.255.254")},
			Scheme:    cfg.Scheme,
			Clock:     cfg.SenderClock,
		}
		if cfg.AdaptiveLive {
			m := netsim.NewUtilMeter(sw1.Port(0), 10*time.Millisecond, 0.3)
			m.Start()
			sCfg.Util = m
		}
		var err error
		sender, err = core.AttachSender(sw1.Port(0), sCfg)
		if err != nil {
			panic(err)
		}
	}
	receiver, err := core.AttachReceiverTx(bottleneck, core.ReceiverConfig{
		Demux:     core.SingleDemux{ID: 1},
		Estimator: cfg.Estimator,
		Clock:     cfg.ReceiverClock,
		Accept: func(p *packet.Packet) bool {
			return p.Kind == packet.Regular && regularSrc.Contains(p.Key.Src)
		},
		OnEstimate: cfg.OnEstimate,
	})
	if err != nil {
		panic(err)
	}

	// Loss accounting for regular traffic at the bottleneck queue.
	bottleneck.OnDrop(func(p *packet.Packet, _ simtime.Time) {
		if p.Kind == packet.Regular {
			res.RegularDropped++
		}
	})

	if cfg.OnSenderPoint != nil {
		sw1.Port(0).OnTxStart(cfg.OnSenderPoint)
	}
	if cfg.OnReceiverPoint != nil {
		bottleneck.OnTxStart(cfg.OnReceiverPoint)
	}

	// A bounded run rather than run-to-empty: the live utilization meter
	// re-arms its sampling ticker forever, so the event queue never drains
	// on its own. One extra second covers queue drain at any scale here.
	eng.RunUntil(simtime.FromDuration(sc.Duration + time.Second))

	res.Results = receiver.Results(max(1, cfg.MinFlowPackets))
	res.Summary = core.Summarize(res.Results)
	res.Receiver = receiver.Counters()
	if sender != nil {
		res.Sender = sender.Counters()
	}
	if crossSource != nil {
		res.CrossAdmitted = crossSource.Admitted()
	}
	c := bottleneck.Counters()
	res.AchievedUtil = simtime.Rate(int64(c.TxBytes), 0, simtime.FromDuration(sc.Duration)) / sc.LinkBps
	return res
}

// capFlowLen enables the stationary warm-up (flows already mid-flight at
// t=0, like a slice cut from a live link) and bounds flow lengths so the
// warm-up region stays affordable at short durations while leaving a heavy
// in-window tail.
func capFlowLen(cfg *trace.Config) {
	// A flow can emit at most ~Duration/MeanGap packets inside the window,
	// so capping lengths at twice that leaves in-window statistics intact
	// while bounding the warm-up region to about two window lengths.
	limit := 2 * int(cfg.Duration/cfg.MeanGap)
	if limit < 64 {
		limit = 64
	}
	if cfg.FlowLen.Max > limit {
		cfg.FlowLen.Max = limit
	}
	cfg.Warmup = cfg.StationaryWarmup()
}

// measuredRate dry-runs a generator config and returns its actual offered
// rate over the configured duration.
func measuredRate(cfg trace.Config) float64 {
	gen := trace.NewGenerator(cfg)
	var bytes uint64
	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		bytes += uint64(rec.Size)
	}
	return float64(bytes*8) / cfg.Duration.Seconds()
}

// replay schedules a trace into a node and returns its mean offered rate
// over the window. If counter is non-nil it is incremented per packet.
// Packets are carved out of chunked backing arrays: they all live until the
// simulation ends anyway, so chunking trades thousands of individual
// allocations for a handful of slabs with better locality.
func replay(nw *netsim.Network, into *netsim.Node, src trace.Source, kind packet.Kind, counter *uint64, window time.Duration) float64 {
	const chunk = 8192
	var bytes uint64
	var slab []packet.Packet
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		bytes += uint64(rec.Size)
		if counter != nil {
			*counter++
		}
		if len(slab) == 0 {
			slab = make([]packet.Packet, chunk)
		}
		p := &slab[0]
		slab = slab[1:]
		*p = packet.Packet{ID: nw.NewPacketID(), Key: rec.Key, Size: rec.Size, Kind: kind}
		nw.Inject(into, p, rec.At)
	}
	return float64(bytes*8) / window.Seconds()
}
