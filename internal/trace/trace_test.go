package trace

import (
	"math"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/packet"
)

func TestSizeMixValidate(t *testing.T) {
	if err := DefaultSizeMix().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SizeMix{
		{},
		{{Size: 10, Weight: 1}},    // below MinSize
		{{Size: 9000, Weight: 1}},  // above MaxSize
		{{Size: 1500, Weight: 0}},  // zero weight
		{{Size: 1500, Weight: -1}}, // negative weight
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSizeMixMean(t *testing.T) {
	m := SizeMix{{100, 1}, {300, 1}}
	if got := m.Mean(); got != 200 {
		t.Fatalf("Mean = %v, want 200", got)
	}
}

func TestSizeMixSampleBoundsAndProportions(t *testing.T) {
	m := SizeMix{{64, 0.25}, {1500, 0.75}}
	counts := map[int]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		u := (float64(i) + 0.5) / n // deterministic uniform sweep
		counts[m.sample(u)]++
	}
	if len(counts) != 2 {
		t.Fatalf("sampled sizes = %v", counts)
	}
	if frac := float64(counts[64]) / n; math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("64B fraction = %v, want 0.25", frac)
	}
}

func TestFlowLenDistValidate(t *testing.T) {
	if err := DefaultFlowLenDist().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (FlowLenDist{Alpha: 0, Max: 10}).Validate(); err == nil {
		t.Error("alpha 0 should fail")
	}
	if err := (FlowLenDist{Alpha: 1.2, Max: 0}).Validate(); err == nil {
		t.Error("max 0 should fail")
	}
}

func TestFlowLenQuantileBounds(t *testing.T) {
	d := FlowLenDist{Alpha: 1.2, Max: 1000}
	for _, u := range []float64{0, 0.001, 0.5, 0.999, 0.999999} {
		n := d.quantile(u)
		if n < 1 || n > d.Max {
			t.Fatalf("quantile(%v) = %d outside [1,%d]", u, n, d.Max)
		}
	}
	// Heavy tail: the median must be small, far below the mean.
	if med := d.quantile(0.5); med > 3 {
		t.Fatalf("median flow length = %d, expected mice-dominated", med)
	}
}

func TestFlowLenMeanMatchesEmpirical(t *testing.T) {
	d := FlowLenDist{Alpha: 1.3, Max: 500}
	const n = 400000
	var sum float64
	for i := 0; i < n; i++ {
		u := (float64(i) + 0.5) / n
		sum += float64(d.quantile(u))
	}
	emp := sum / n
	if rel := math.Abs(d.Mean()-emp) / emp; rel > 0.02 {
		t.Fatalf("Mean() = %v, empirical %v (rel %v)", d.Mean(), emp, rel)
	}
}

func TestRebase(t *testing.T) {
	rec := Rec{Key: packet.FlowKey{
		Src: packet.MustParseAddr("10.1.2.3"),
		Dst: packet.MustParseAddr("10.200.9.9"),
	}}
	got := Rebase(rec,
		packet.MustParsePrefix("172.16.0.0/16"),
		packet.MustParsePrefix("172.17.0.0/16"))
	if got.Key.Src != packet.MustParseAddr("172.16.2.3") {
		t.Fatalf("src = %v", got.Key.Src)
	}
	if got.Key.Dst != packet.MustParseAddr("172.17.9.9") {
		t.Fatalf("dst = %v", got.Key.Dst)
	}
	// Original untouched (value semantics).
	if rec.Key.Src != packet.MustParseAddr("10.1.2.3") {
		t.Fatal("Rebase mutated its input")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.TargetBps = 0 },
		func(c *Config) { c.MeanGap = 0 },
		func(c *Config) { c.Sizes = nil },
		func(c *Config) { c.FlowLen.Max = 0 },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 50 * time.Millisecond
	a := Collect(NewGenerator(cfg), 0)
	b := Collect(NewGenerator(cfg), 0)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("records diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	cfg.Seed = 2
	c := Collect(NewGenerator(cfg), 0)
	if len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGeneratorTimeOrderedAndBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 100 * time.Millisecond
	recs := Collect(NewGenerator(cfg), 0) // Collect panics on regression
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}
	for _, r := range recs {
		if r.At.Duration() >= cfg.Duration {
			t.Fatalf("record at %v past duration %v", r.At, cfg.Duration)
		}
		if r.Size < packet.MinSize || r.Size > packet.MaxSize {
			t.Fatalf("record size %d out of range", r.Size)
		}
		if !cfg.SrcPrefix.Contains(r.Key.Src) {
			t.Fatalf("src %v outside %v", r.Key.Src, cfg.SrcPrefix)
		}
		if !cfg.DstPrefix.Contains(r.Key.Dst) {
			t.Fatalf("dst %v outside %v", r.Key.Dst, cfg.DstPrefix)
		}
	}
}

func TestGeneratorHitsTargetRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = time.Second
	cfg.TargetBps = 100e6
	// Heavy tails need the stationary warm-up to deliver the target; a
	// moderate length cap keeps the warm-up affordable in a unit test.
	cfg.FlowLen.Max = 2000
	cfg.Warmup = cfg.StationaryWarmup()
	s := Summarize(NewGenerator(cfg))
	if s.MeanBps < 0.7*cfg.TargetBps || s.MeanBps > 1.3*cfg.TargetBps {
		t.Fatalf("mean rate = %.1f Mbps, want ~100", s.MeanBps/1e6)
	}
}

func TestGeneratorFlowLengthHeavyTail(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 500 * time.Millisecond
	perFlow := map[packet.FlowKey]int{}
	g := NewGenerator(cfg)
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		perFlow[r.Key]++
	}
	if len(perFlow) < 100 {
		t.Fatalf("only %d flows", len(perFlow))
	}
	ones, big := 0, 0
	for _, n := range perFlow {
		if n == 1 {
			ones++
		}
		if n >= 50 {
			big++
		}
	}
	if ones == 0 {
		t.Error("no single-packet flows: tail not heavy")
	}
	if big == 0 {
		t.Error("no >=50-packet flows: no elephants")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(NewSliceSource(nil))
	if s.Packets != 0 || s.Flows != 0 || s.MeanBps != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestCollectLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = time.Second
	recs := Collect(NewGenerator(cfg), 10)
	if len(recs) != 10 {
		t.Fatalf("limit ignored: %d", len(recs))
	}
}

func TestEmittedCounter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 20 * time.Millisecond
	g := NewGenerator(cfg)
	n := len(Collect(g, 0))
	if g.Emitted() != uint64(n) {
		t.Fatalf("Emitted = %d, collected %d", g.Emitted(), n)
	}
}

func TestNewGeneratorPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGenerator(Config{})
}
