package trace

import (
	"bytes"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

func sampleRecs() []Rec {
	k1 := packet.FlowKey{Src: packet.MustParseAddr("10.1.0.5"), Dst: packet.MustParseAddr("10.2.0.9"), SrcPort: 1234, DstPort: 80, Proto: packet.ProtoTCP}
	k2 := packet.FlowKey{Src: packet.MustParseAddr("172.16.3.3"), Dst: packet.MustParseAddr("10.2.0.1"), SrcPort: 999, DstPort: 53, Proto: packet.ProtoUDP}
	return []Rec{
		{At: simtime.Zero, Key: k1, Size: 64},
		{At: simtime.FromDuration(3 * time.Microsecond), Key: k2, Size: 1500},
		{At: simtime.FromDuration(3 * time.Microsecond), Key: k1, Size: 576}, // equal timestamps allowed
		{At: simtime.FromSeconds(59.9), Key: k1, Size: 1518},
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range sampleRecs() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 4 {
		t.Fatalf("Count = %d", w.Count())
	}
	if want := 8 + 4*RecordSize; buf.Len() != want {
		t.Fatalf("encoded size = %d, want %d", buf.Len(), want)
	}

	r := NewReader(&buf)
	got := Collect(r, 0)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	want := sampleRecs()
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Rec{At: simtime.FromSeconds(1), Size: 100}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Rec{At: simtime.FromSeconds(0.5), Size: 100}); err == nil {
		t.Fatal("expected out-of-order error")
	}
}

func TestWriterRejectsHugeSize(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Rec{Size: 70000}); err == nil {
		t.Fatal("expected size error")
	}
}

func TestReaderBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOTATRACEFILE...")))
	if _, ok := r.Next(); ok {
		t.Fatal("should not read records")
	}
	if r.Err() != ErrBadHeader {
		t.Fatalf("Err = %v", r.Err())
	}
}

func TestReaderEmptyInput(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, ok := r.Next(); ok {
		t.Fatal("should not read records")
	}
	if r.Err() != ErrBadHeader {
		t.Fatalf("Err = %v", r.Err())
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Rec{At: 1, Size: 100}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-3]
	r := NewReader(bytes.NewReader(data))
	if _, ok := r.Next(); ok {
		t.Fatal("truncated record should not decode")
	}
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, ok := r.Next(); ok {
		t.Fatal("empty trace should yield no records")
	}
	if r.Err() != nil {
		t.Fatalf("clean EOF expected, got %v", r.Err())
	}
}

func TestGeneratedTraceRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 30 * time.Millisecond
	orig := Collect(NewGenerator(cfg), 0)

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range orig {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd := NewReader(&buf)
	back := Collect(rd, 0)
	if rd.Err() != nil {
		t.Fatal(rd.Err())
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip %d != %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func BenchmarkWriter(b *testing.B) {
	recs := sampleRecs()
	b.ReportAllocs()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		r.At = simtime.Time(i) * 1000
		if err := w.Write(r); err != nil {
			b.Fatal(err)
		}
		if buf.Len() > 1<<20 {
			buf.Reset()
		}
	}
}
