package trace

import (
	"testing"
	"time"
)

func TestWarmupNoNegativeRecords(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 100 * time.Millisecond
	cfg.Warmup = cfg.StationaryWarmup()
	for _, r := range Collect(NewGenerator(cfg), 0) {
		if r.At < 0 {
			t.Fatalf("emitted pre-window record at %v", r.At)
		}
		if r.At.Duration() >= cfg.Duration {
			t.Fatalf("emitted post-window record at %v", r.At)
		}
	}
}

func TestWarmupImprovesRateDelivery(t *testing.T) {
	// With a heavy tail (alpha < 1), the cold-start generator starves the
	// window of elephant bytes; warm-up must close most of the gap.
	base := DefaultConfig()
	base.Duration = 300 * time.Millisecond
	base.TargetBps = 200e6
	base.FlowLen = FlowLenDist{Alpha: 0.9, Max: 1500} // elephants last ~0.3s

	cold := base
	warm := base
	warm.Warmup = warm.StationaryWarmup()

	coldRate := float64(totalBytes(NewGenerator(cold))*8) / cold.Duration.Seconds()
	warmRate := float64(totalBytes(NewGenerator(warm))*8) / warm.Duration.Seconds()

	if warmRate <= coldRate {
		t.Fatalf("warm rate %.1f Mbps should exceed cold %.1f Mbps", warmRate/1e6, coldRate/1e6)
	}
	if warmRate < 0.75*base.TargetBps || warmRate > 1.35*base.TargetBps {
		t.Fatalf("warm rate %.1f Mbps, want ~%.1f", warmRate/1e6, base.TargetBps/1e6)
	}
}

func totalBytes(src Source) uint64 {
	var b uint64
	for {
		r, ok := src.Next()
		if !ok {
			return b
		}
		b += uint64(r.Size)
	}
}

func TestWarmupDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 50 * time.Millisecond
	cfg.Warmup = 200 * time.Millisecond
	a := Collect(NewGenerator(cfg), 0)
	b := Collect(NewGenerator(cfg), 0)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("warmup generator not deterministic")
		}
	}
}

func TestNegativeWarmupRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Warmup = -time.Second
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative warmup should fail validation")
	}
}

func TestStationaryWarmup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlowLen.Max = 1000
	cfg.MeanGap = 100 * time.Microsecond
	if got := cfg.StationaryWarmup(); got != 100*time.Millisecond {
		t.Fatalf("StationaryWarmup = %v, want 100ms", got)
	}
}
