package trace

// Seed derivation for concurrent experiment sweeps.
//
// Multi-seed runs need per-run seeds that are (a) reproducible from one base
// seed, and (b) statistically independent: naive `base+i` seeding hands
// math/rand nearly identical internal states for neighbouring runs, which is
// exactly the kind of cross-run correlation a confidence interval assumes
// away. SplitMix64 (Steele, Lea & Flood, OOPSLA 2014 — the stream-splitting
// construction java.util.SplittableRandom and xoshiro seeding use) passes
// every increment through an avalanching finalizer, so consecutive stream
// indices map to uncorrelated 64-bit states.
//
// Note: the constant per-purpose offsets inside one run (e.g. the cross
// trace's `Seed + 7919` in internal/experiments) are a different mechanism —
// they separate streams *within* a single deterministic run and are pinned
// bit-for-bit by the golden fixture, so they deliberately stay as-is. Any
// code deriving the seeds of *separate runs* must use DeriveSeed/DeriveSeeds
// instead of ad-hoc arithmetic.

// splitmix64Gamma is the 64-bit golden-ratio increment of the SplitMix64
// stream.
const splitmix64Gamma = 0x9E3779B97F4A7C15

// SplitMix64 applies the SplitMix64 output finalizer: a full-avalanche
// bijection on 64-bit words (variant 13 of Stafford's mix). Every output bit
// depends on every input bit, which is what makes nearby inputs yield
// independent-looking outputs.
func SplitMix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// DeriveSeed returns the stream-th seed derived from base. Derivation is
// position-addressable (stream i can be computed without materializing
// streams 0..i-1), so a parallel runner can hand run i its seed directly.
func DeriveSeed(base int64, stream uint64) int64 {
	return int64(SplitMix64(uint64(base) + (stream+1)*splitmix64Gamma))
}

// DeriveSeeds returns n independent, reproducible seeds derived from base:
// DeriveSeeds(base, n)[i] == DeriveSeed(base, i).
func DeriveSeeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = DeriveSeed(base, uint64(i))
	}
	return out
}
