package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Link-trace format: a recorded per-link time series of extra one-way delay
// and loss probability, replayed by the simulator instead of a synthetic
// distribution. Two interchangeable encodings, both tracegen-producible:
//
//	JSON: {"version":1,"samples":[{"t_ns":0,"delay_ns":50000,"loss":0.01},...]}
//	CSV:  t_ns,delay_ns,loss        (header required, one row per sample)
//
// Rows are a step function: sample i is in effect from t_ns[i] until the
// next row, and the last row holds forever. Timestamps are offsets from
// trace start and must be strictly increasing; delay must be >= 0, loss in
// [0, 1], and no field may be NaN or infinite. ParseLinkTrace rejects any
// violation with an error naming the offending row — it never panics, which
// the FuzzParseLinkTrace target enforces.

// LinkSample is one row of a link trace: the link's extra delay and drop
// probability from instant At (offset from trace start) until the next row.
type LinkSample struct {
	// At is the offset from trace start at which this row takes effect.
	At time.Duration
	// Delay is extra one-way delay added on top of the link's configured
	// propagation while the row is in effect.
	Delay time.Duration
	// Loss is the probability in [0, 1] that the link drops a packet.
	Loss float64
}

// LinkTrace is a parsed link time series. The zero value (no samples) is an
// identity emulator: no extra delay, no loss.
type LinkTrace struct {
	// Samples holds the rows in strictly increasing At order.
	Samples []LinkSample
}

// At returns the row in effect at offset d: the last sample with At <= d,
// or a zero sample before the first row.
func (lt *LinkTrace) At(d time.Duration) LinkSample {
	i := sort.Search(len(lt.Samples), func(i int) bool { return lt.Samples[i].At > d })
	if i == 0 {
		return LinkSample{}
	}
	return lt.Samples[i-1]
}

// Emulate evaluates the trace for one packet: the extra delay in effect at
// offset d, and a seeded keyed-hash drop decision against the row's loss
// probability. The decision is a pure function of (pktID, seed, row), so
// replay is deterministic and independent of evaluation order — safe on any
// lane of a partitioned simulation.
func (lt *LinkTrace) Emulate(pktID, seed uint64, d time.Duration) (extra time.Duration, drop bool) {
	s := lt.At(d)
	if s.Loss > 0 {
		// Map the keyed hash to [0, 1) and drop below the loss probability.
		u := float64(SplitMix64(pktID^seed)>>11) / float64(1<<53)
		if u < s.Loss {
			return 0, true
		}
	}
	return s.Delay, false
}

// Duration returns the offset of the last row (the point after which the
// trace holds its final value), or zero for an empty trace.
func (lt *LinkTrace) Duration() time.Duration {
	if len(lt.Samples) == 0 {
		return 0
	}
	return lt.Samples[len(lt.Samples)-1].At
}

// NewLinkTrace builds a trace from in-memory rows, applying the same
// validation as the file parser (strictly increasing offsets, delay >= 0,
// finite loss in [0, 1], at least one row). Scenario specs carrying inline
// rows route through it.
func NewLinkTrace(samples []LinkSample) (*LinkTrace, error) {
	lt := &LinkTrace{}
	for i, s := range samples {
		if err := lt.append(s.At.Nanoseconds(), s.Delay.Nanoseconds(), s.Loss); err != nil {
			return nil, fmt.Errorf("trace: link trace sample %d: %w", i, err)
		}
	}
	return lt.finish()
}

// linkTraceJSON is the JSON encoding of a link trace.
type linkTraceJSON struct {
	Version int              `json:"version"`
	Samples []linkSampleJSON `json:"samples"`
}

type linkSampleJSON struct {
	TNs     int64   `json:"t_ns"`
	DelayNs int64   `json:"delay_ns"`
	Loss    float64 `json:"loss"`
}

// LinkTraceVersion is the current link-trace file format version.
const LinkTraceVersion = 1

// ParseLinkTrace parses a link trace in either encoding, sniffing JSON by
// its leading '{'. Every structural or semantic violation — unknown fields,
// truncation, out-of-order or duplicate timestamps, negative delay, loss
// outside [0, 1], NaN or infinite values — is an error; the parser never
// panics on any input.
func ParseLinkTrace(data []byte) (*LinkTrace, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("trace: empty link trace")
	}
	if trimmed[0] == '{' {
		return parseLinkTraceJSON(trimmed)
	}
	return parseLinkTraceCSV(trimmed)
}

func parseLinkTraceJSON(data []byte) (*LinkTrace, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f linkTraceJSON
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: link trace JSON: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("trace: link trace JSON: trailing data after document")
	}
	if f.Version != LinkTraceVersion {
		return nil, fmt.Errorf("trace: link trace version %d (supported: %d)", f.Version, LinkTraceVersion)
	}
	lt := &LinkTrace{}
	for i, s := range f.Samples {
		if err := lt.append(s.TNs, s.DelayNs, s.Loss); err != nil {
			return nil, fmt.Errorf("trace: link trace sample %d: %w", i, err)
		}
	}
	return lt.finish()
}

func parseLinkTraceCSV(data []byte) (*LinkTrace, error) {
	lines := strings.Split(string(data), "\n")
	if strings.TrimRight(lines[0], "\r") != "t_ns,delay_ns,loss" {
		return nil, fmt.Errorf("trace: link trace CSV: missing header %q", "t_ns,delay_ns,loss")
	}
	lt := &LinkTrace{}
	for i, line := range lines[1:] {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: link trace CSV row %d: %d fields (want 3: t_ns,delay_ns,loss)", i+1, len(fields))
		}
		tNs, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: link trace CSV row %d: t_ns: %v", i+1, err)
		}
		delayNs, err := strconv.ParseInt(strings.TrimSpace(fields[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: link trace CSV row %d: delay_ns: %v", i+1, err)
		}
		loss, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: link trace CSV row %d: loss: %v", i+1, err)
		}
		if err := lt.append(tNs, delayNs, loss); err != nil {
			return nil, fmt.Errorf("trace: link trace CSV row %d: %w", i+1, err)
		}
	}
	return lt.finish()
}

// append validates one decoded row and adds it to the trace.
func (lt *LinkTrace) append(tNs, delayNs int64, loss float64) error {
	if tNs < 0 {
		return fmt.Errorf("t_ns %d < 0", tNs)
	}
	if n := len(lt.Samples); n > 0 && time.Duration(tNs) <= lt.Samples[n-1].At {
		return fmt.Errorf("t_ns %d not strictly increasing (previous %d)", tNs, lt.Samples[n-1].At.Nanoseconds())
	}
	if delayNs < 0 {
		return fmt.Errorf("delay_ns %d < 0", delayNs)
	}
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		return fmt.Errorf("loss %v is not finite", loss)
	}
	if loss < 0 || loss > 1 {
		return fmt.Errorf("loss %v outside [0, 1]", loss)
	}
	lt.Samples = append(lt.Samples, LinkSample{
		At:    time.Duration(tNs),
		Delay: time.Duration(delayNs),
		Loss:  loss,
	})
	return nil
}

func (lt *LinkTrace) finish() (*LinkTrace, error) {
	if len(lt.Samples) == 0 {
		return nil, fmt.Errorf("trace: link trace has no samples")
	}
	return lt, nil
}

// EncodeJSON renders the trace in the JSON encoding ParseLinkTrace accepts.
func (lt *LinkTrace) EncodeJSON() ([]byte, error) {
	f := linkTraceJSON{Version: LinkTraceVersion, Samples: make([]linkSampleJSON, len(lt.Samples))}
	for i, s := range lt.Samples {
		f.Samples[i] = linkSampleJSON{TNs: s.At.Nanoseconds(), DelayNs: s.Delay.Nanoseconds(), Loss: s.Loss}
	}
	return json.MarshalIndent(f, "", "  ")
}

// EncodeCSV renders the trace in the CSV encoding ParseLinkTrace accepts.
func (lt *LinkTrace) EncodeCSV() []byte {
	var b strings.Builder
	b.WriteString("t_ns,delay_ns,loss\n")
	for _, s := range lt.Samples {
		fmt.Fprintf(&b, "%d,%d,%g\n", s.At.Nanoseconds(), s.Delay.Nanoseconds(), s.Loss)
	}
	return []byte(b.String())
}

// LinkTraceConfig configures synthetic link-trace generation — the
// deterministic stand-in for a recorded link time series (tracegen's link
// emit mode).
type LinkTraceConfig struct {
	// Seed drives the deterministic delay/loss walk.
	Seed int64
	// Duration is the span the rows cover.
	Duration time.Duration
	// Step is the row spacing.
	Step time.Duration
	// BaseDelay is the floor every row's delay sits on.
	BaseDelay time.Duration
	// MaxExtra bounds the random delay excursion above BaseDelay.
	MaxExtra time.Duration
	// MaxLoss bounds each row's loss probability.
	MaxLoss float64
}

// Validate checks the config.
func (c LinkTraceConfig) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("trace: link trace duration %v <= 0", c.Duration)
	}
	if c.Step <= 0 {
		return fmt.Errorf("trace: link trace step %v <= 0", c.Step)
	}
	if c.BaseDelay < 0 || c.MaxExtra < 0 {
		return fmt.Errorf("trace: negative link trace delay bounds (base %v, extra %v)", c.BaseDelay, c.MaxExtra)
	}
	if math.IsNaN(c.MaxLoss) || c.MaxLoss < 0 || c.MaxLoss > 1 {
		return fmt.Errorf("trace: link trace max loss %v outside [0, 1]", c.MaxLoss)
	}
	return nil
}

// GenLinkTrace synthesizes a link trace from the config: a seeded bounded
// random walk over delay with occasional loss episodes, one row per Step.
// The same config always produces the same trace.
func GenLinkTrace(c LinkTraceConfig) (*LinkTrace, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	lt := &LinkTrace{}
	state := uint64(c.Seed)
	// level walks in [0, 1]; loss episodes trigger on a keyed coin.
	level := 0.5
	for at := time.Duration(0); at <= c.Duration; at += c.Step {
		state = SplitMix64(state + splitmix64Gamma)
		stepU := float64(state>>11)/float64(1<<53)*2 - 1 // [-1, 1)
		level += 0.35 * stepU
		if level < 0 {
			level = -level
		}
		if level > 1 {
			level = 2 - level
		}
		state = SplitMix64(state + splitmix64Gamma)
		lossU := float64(state>>11) / float64(1<<53)
		loss := 0.0
		if lossU < 0.2 { // a fifth of the rows are loss episodes
			loss = c.MaxLoss * lossU * 5
		}
		lt.Samples = append(lt.Samples, LinkSample{
			At:    at,
			Delay: c.BaseDelay + time.Duration(level*float64(c.MaxExtra)),
			Loss:  loss,
		})
	}
	return lt, nil
}
