// Package trace generates and stores packet traces.
//
// The paper's evaluation replays two one-minute CAIDA OC-192 traces (one for
// regular traffic, one for cross traffic). Those traces are proprietary, so
// this package supplies the synthetic equivalent (see DESIGN.md,
// substitutions): a deterministic generator with heavy-tailed flow lengths,
// an empirical packet-size mix and Poisson flow arrivals. What the
// experiments actually depend on — a wide spread of per-flow packet counts
// and a controllable offered load — are explicit knobs here.
//
// Traces stream in time order; they can be consumed directly, written to a
// compact binary format, or exported as pcap (internal/pcapio) for
// inspection with standard tools. cmd/tracegen is the CLI front-end.
//
// Seeding discipline: DeriveSeed/DeriveSeeds (seed.go) produce independent
// per-run seeds via SplitMix64 — use them instead of seed+i arithmetic
// whenever separate runs must have independent random streams (in-run
// +prime offsets remain, pinned by the golden-determinism fixture). The
// generator's hot path keeps a prepared bounded-Pareto sampler with hoisted
// transcendentals and a memoized mean, so sampling costs no math.Pow calls
// in steady state.
package trace
