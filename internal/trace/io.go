package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// Binary trace format:
//
//	header: 8 bytes magic "RLIRTRC1"
//	record: 25 bytes each, big endian —
//	        int64 timestamp ns, uint32 src, uint32 dst,
//	        uint16 sport, uint16 dport, uint8 proto, uint16 size
//
// The format is fixed-width for mmap-friendliness and trivial random access:
// record i lives at offset 8 + 25*i.

var traceMagic = [8]byte{'R', 'L', 'I', 'R', 'T', 'R', 'C', '1'}

// RecordSize is the encoded size of one record.
const RecordSize = 25

// ErrBadHeader indicates a missing or foreign file magic.
var ErrBadHeader = errors.New("trace: bad file header")

// Writer encodes records to a stream.
type Writer struct {
	w     *bufio.Writer
	n     uint64
	began bool
	last  simtime.Time
}

// NewWriter wraps w. The header is written lazily on the first record (or
// Flush), so constructing a Writer cannot fail.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (tw *Writer) begin() error {
	if tw.began {
		return nil
	}
	tw.began = true
	_, err := tw.w.Write(traceMagic[:])
	return err
}

// Write appends one record. Records must be fed in non-decreasing time
// order; violations return an error rather than silently producing a trace
// no consumer can replay.
func (tw *Writer) Write(r Rec) error {
	if err := tw.begin(); err != nil {
		return err
	}
	if tw.n > 0 && r.At < tw.last {
		return fmt.Errorf("trace: write out of order: %v after %v", r.At, tw.last)
	}
	if r.Size < 0 || r.Size > 0xFFFF {
		return fmt.Errorf("trace: record size %d out of range", r.Size)
	}
	tw.last = r.At
	var buf [RecordSize]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(int64(r.At)))
	binary.BigEndian.PutUint32(buf[8:12], uint32(r.Key.Src))
	binary.BigEndian.PutUint32(buf[12:16], uint32(r.Key.Dst))
	binary.BigEndian.PutUint16(buf[16:18], r.Key.SrcPort)
	binary.BigEndian.PutUint16(buf[18:20], r.Key.DstPort)
	buf[20] = byte(r.Key.Proto)
	binary.BigEndian.PutUint16(buf[21:23], uint16(r.Size))
	buf[23], buf[24] = 0, 0 // reserved
	if _, err := tw.w.Write(buf[:]); err != nil {
		return err
	}
	tw.n++
	return nil
}

// Count returns the number of records written.
func (tw *Writer) Count() uint64 { return tw.n }

// Flush writes any buffered data (and the header of an empty trace).
func (tw *Writer) Flush() error {
	if err := tw.begin(); err != nil {
		return err
	}
	return tw.w.Flush()
}

// Reader decodes a trace stream. It is a Source whose Next panics on I/O
// errors only via Err; check Err after draining.
type Reader struct {
	r      *bufio.Reader
	err    error
	header bool
	n      uint64
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next implements Source. It returns false at EOF or on error; distinguish
// with Err.
func (tr *Reader) Next() (Rec, bool) {
	if tr.err != nil {
		return Rec{}, false
	}
	if !tr.header {
		var m [8]byte
		if _, err := io.ReadFull(tr.r, m[:]); err != nil {
			if err == io.EOF {
				tr.err = ErrBadHeader
			} else {
				tr.err = err
			}
			return Rec{}, false
		}
		if m != traceMagic {
			tr.err = ErrBadHeader
			return Rec{}, false
		}
		tr.header = true
	}
	var buf [RecordSize]byte
	if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
		if err != io.EOF {
			if err == io.ErrUnexpectedEOF {
				tr.err = fmt.Errorf("trace: truncated record at index %d", tr.n)
			} else {
				tr.err = err
			}
		}
		return Rec{}, false
	}
	tr.n++
	return Rec{
		At: simtime.Time(int64(binary.BigEndian.Uint64(buf[0:8]))),
		Key: packet.FlowKey{
			Src:     packet.Addr(binary.BigEndian.Uint32(buf[8:12])),
			Dst:     packet.Addr(binary.BigEndian.Uint32(buf[12:16])),
			SrcPort: binary.BigEndian.Uint16(buf[16:18]),
			DstPort: binary.BigEndian.Uint16(buf[18:20]),
			Proto:   packet.Proto(buf[20]),
		},
		Size: int(binary.BigEndian.Uint16(buf[21:23])),
	}, true
}

// Err returns the first error encountered, or nil at clean EOF.
func (tr *Reader) Err() error { return tr.err }

// Count returns the number of records read so far.
func (tr *Reader) Count() uint64 { return tr.n }
