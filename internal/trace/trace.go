// Package trace generates and stores packet traces.
//
// The paper's evaluation replays two one-minute CAIDA OC-192 traces (one for
// regular traffic, one for cross traffic). Those traces are proprietary, so
// this package supplies the synthetic equivalent (see DESIGN.md,
// substitutions): a deterministic generator with heavy-tailed flow lengths,
// an empirical packet-size mix and Poisson flow arrivals. What the
// experiments actually depend on — a wide spread of per-flow packet counts
// and a controllable offered load — are explicit knobs here.
//
// Traces stream in time order; they can be consumed directly, written to a
// compact binary format, or exported as pcap (internal/pcapio) for
// inspection with standard tools.
package trace

import (
	"fmt"
	"math"

	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// Rec is one trace record: a packet release at an instant.
type Rec struct {
	At   simtime.Time
	Key  packet.FlowKey
	Size int // frame bytes on the wire
}

// Source yields trace records in non-decreasing time order. Next reports
// false when the trace is exhausted.
type Source interface {
	Next() (Rec, bool)
}

// SizePoint is one element of a packet-size mix.
type SizePoint struct {
	Size   int
	Weight float64
}

// SizeMix is a discrete packet-size distribution.
type SizeMix []SizePoint

// DefaultSizeMix approximates the trimodal Internet mix seen on backbone
// links: small ACKs, mid-size, and full-MTU data packets.
func DefaultSizeMix() SizeMix {
	return SizeMix{{64, 0.50}, {576, 0.10}, {1500, 0.40}}
}

// Validate checks the mix is usable.
func (m SizeMix) Validate() error {
	if len(m) == 0 {
		return fmt.Errorf("trace: empty size mix")
	}
	var total float64
	for _, p := range m {
		if p.Size < packet.MinSize || p.Size > packet.MaxSize {
			return fmt.Errorf("trace: size %d outside [%d,%d]", p.Size, packet.MinSize, packet.MaxSize)
		}
		if p.Weight <= 0 {
			return fmt.Errorf("trace: non-positive weight for size %d", p.Size)
		}
		total += p.Weight
	}
	if total <= 0 {
		return fmt.Errorf("trace: zero total weight")
	}
	return nil
}

// Mean returns the expected packet size.
func (m SizeMix) Mean() float64 {
	var sum, total float64
	for _, p := range m {
		sum += float64(p.Size) * p.Weight
		total += p.Weight
	}
	if total == 0 {
		return 0
	}
	return sum / total
}

// sample draws a size given a uniform variate u in [0,1).
func (m SizeMix) sample(u float64) int {
	var total float64
	for _, p := range m {
		total += p.Weight
	}
	u *= total
	for _, p := range m {
		u -= p.Weight
		if u < 0 {
			return p.Size
		}
	}
	return m[len(m)-1].Size
}

// FlowLenDist is a bounded discrete Pareto distribution over packets per
// flow: heavy-tailed like measured data-center and backbone flow lengths
// (many mice, few elephants). Min is 1 packet.
type FlowLenDist struct {
	// Alpha is the tail index; smaller is heavier. Typical 1.05–1.5.
	Alpha float64
	// Max bounds the flow length in packets.
	Max int
}

// DefaultFlowLenDist mirrors the regular CAIDA trace's shape: mean ~15
// packets/flow (22.4M packets over 1.45M flows) with a heavy tail. The
// sub-1 tail index makes the bound at Max the moment-controlling parameter,
// as with real packet traces.
func DefaultFlowLenDist() FlowLenDist { return FlowLenDist{Alpha: 0.9, Max: 20000} }

// Validate checks the distribution parameters.
func (d FlowLenDist) Validate() error {
	if d.Alpha <= 0 {
		return fmt.Errorf("trace: flow length alpha %v <= 0", d.Alpha)
	}
	if d.Max < 1 {
		return fmt.Errorf("trace: flow length max %d < 1", d.Max)
	}
	return nil
}

// Mean returns the expected flow length in packets, computed numerically
// from the sampling transform so that calibration matches what Sample
// actually produces.
func (d FlowLenDist) Mean() float64 {
	// E[floor(X)] where X is continuous bounded Pareto on [1, Max+1).
	// Integrate the inverse CDF over u in [0,1) with a fine grid; the
	// generator is calibrated once per run, so cost is irrelevant.
	const steps = 200000
	var sum float64
	for i := 0; i < steps; i++ {
		u := (float64(i) + 0.5) / steps
		sum += float64(d.quantile(u))
	}
	return sum / steps
}

// quantile maps a uniform variate to a flow length.
func (d FlowLenDist) quantile(u float64) int {
	xmax := float64(d.Max) + 1
	// Inverse CDF of bounded Pareto with xmin=1.
	hFactor := 1 - math.Pow(1/xmax, d.Alpha)
	x := math.Pow(1-u*hFactor, -1/d.Alpha)
	n := int(x)
	if n < 1 {
		n = 1
	}
	if n > d.Max {
		n = d.Max
	}
	return n
}
