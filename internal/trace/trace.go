package trace

import (
	"fmt"
	"math"
	"sync"

	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// Rec is one trace record: a packet release at an instant.
type Rec struct {
	At   simtime.Time
	Key  packet.FlowKey
	Size int // frame bytes on the wire
}

// Source yields trace records in non-decreasing time order. Next reports
// false when the trace is exhausted.
type Source interface {
	Next() (Rec, bool)
}

// SizePoint is one element of a packet-size mix.
type SizePoint struct {
	Size   int
	Weight float64
}

// SizeMix is a discrete packet-size distribution.
type SizeMix []SizePoint

// DefaultSizeMix approximates the trimodal Internet mix seen on backbone
// links: small ACKs, mid-size, and full-MTU data packets.
func DefaultSizeMix() SizeMix {
	return SizeMix{{64, 0.50}, {576, 0.10}, {1500, 0.40}}
}

// Validate checks the mix is usable.
func (m SizeMix) Validate() error {
	if len(m) == 0 {
		return fmt.Errorf("trace: empty size mix")
	}
	var total float64
	for _, p := range m {
		if p.Size < packet.MinSize || p.Size > packet.MaxSize {
			return fmt.Errorf("trace: size %d outside [%d,%d]", p.Size, packet.MinSize, packet.MaxSize)
		}
		if p.Weight <= 0 {
			return fmt.Errorf("trace: non-positive weight for size %d", p.Size)
		}
		total += p.Weight
	}
	if total <= 0 {
		return fmt.Errorf("trace: zero total weight")
	}
	return nil
}

// Mean returns the expected packet size.
func (m SizeMix) Mean() float64 {
	var sum, total float64
	for _, p := range m {
		sum += float64(p.Size) * p.Weight
		total += p.Weight
	}
	if total == 0 {
		return 0
	}
	return sum / total
}

// total returns the sum of the mix's weights. Hot callers compute it once
// and pass it to sampleTotal; the summation order here must match sample's
// so the two paths stay bit-identical.
func (m SizeMix) total() float64 {
	var total float64
	for _, p := range m {
		total += p.Weight
	}
	return total
}

// sample draws a size given a uniform variate u in [0,1).
func (m SizeMix) sample(u float64) int {
	return m.sampleTotal(u, m.total())
}

// sampleTotal is sample with the weight total hoisted out of the call.
func (m SizeMix) sampleTotal(u, total float64) int {
	u *= total
	for _, p := range m {
		u -= p.Weight
		if u < 0 {
			return p.Size
		}
	}
	return m[len(m)-1].Size
}

// FlowLenDist is a bounded discrete Pareto distribution over packets per
// flow: heavy-tailed like measured data-center and backbone flow lengths
// (many mice, few elephants). Min is 1 packet.
type FlowLenDist struct {
	// Alpha is the tail index; smaller is heavier. Typical 1.05–1.5.
	Alpha float64
	// Max bounds the flow length in packets.
	Max int
}

// DefaultFlowLenDist mirrors the regular CAIDA trace's shape: mean ~15
// packets/flow (22.4M packets over 1.45M flows) with a heavy tail. The
// sub-1 tail index makes the bound at Max the moment-controlling parameter,
// as with real packet traces.
func DefaultFlowLenDist() FlowLenDist { return FlowLenDist{Alpha: 0.9, Max: 20000} }

// Validate checks the distribution parameters.
func (d FlowLenDist) Validate() error {
	if d.Alpha <= 0 {
		return fmt.Errorf("trace: flow length alpha %v <= 0", d.Alpha)
	}
	if d.Max < 1 {
		return fmt.Errorf("trace: flow length max %d < 1", d.Max)
	}
	return nil
}

// meanCache memoizes FlowLenDist.Mean per parameter set: experiments build
// several generators over identical distributions, and the numeric
// integration is by far the most expensive part of calibration. A plain
// mutex-guarded map beats sync.Map here: the key set is a handful of
// parameter tuples (sync.Map's niche is append-only maps with disjoint
// per-goroutine key sets), lookups are far off the hot path — once per
// generator construction — and the mutex keeps the fast path a single
// uncontended lock around one map probe, with no interface boxing of the
// float values. Concurrent misses on the same key may both integrate, but
// both store the identical deterministic result, so the duplicated work is
// harmless and rare.
var (
	meanCacheMu sync.Mutex
	meanCache   = make(map[FlowLenDist]float64, 8)
)

// Mean returns the expected flow length in packets, computed numerically
// from the sampling transform so that calibration matches what Sample
// actually produces.
func (d FlowLenDist) Mean() float64 {
	meanCacheMu.Lock()
	v, ok := meanCache[d]
	meanCacheMu.Unlock()
	if ok {
		return v
	}
	// E[floor(X)] where X is continuous bounded Pareto on [1, Max+1).
	// Integrate the inverse CDF over u in [0,1) with a fine grid. The grid
	// probes resolve almost entirely from the prepared sampler's table, so
	// calibration no longer costs hundreds of thousands of math.Pow calls
	// per generator.
	s := d.Sampler()
	const steps = 200000
	var sum float64
	for i := 0; i < steps; i++ {
		u := (float64(i) + 0.5) / steps
		sum += float64(s.Sample(u))
	}
	mean := sum / steps
	meanCacheMu.Lock()
	meanCache[d] = mean
	meanCacheMu.Unlock()
	return mean
}

// quantile maps a uniform variate to a flow length. It is the reference
// implementation; LenSampler.Sample produces bit-identical values with the
// per-call invariants hoisted.
func (d FlowLenDist) quantile(u float64) int {
	xmax := float64(d.Max) + 1
	// Inverse CDF of bounded Pareto with xmin=1.
	hFactor := 1 - math.Pow(1/xmax, d.Alpha)
	x := math.Pow(1-u*hFactor, -1/d.Alpha)
	n := int(x)
	if n < 1 {
		n = 1
	}
	if n > d.Max {
		n = d.Max
	}
	return n
}

// lenSamplerBuckets is the inverse-CDF table resolution. It is a power of
// two so that u*lenSamplerBuckets is an exact float64 operation: the bucket
// index computed at sample time and the bucket boundaries computed at build
// time partition [0,1) identically, with no rounding seam.
const lenSamplerBuckets = 4096

// LenSampler draws flow lengths from a FlowLenDist. It hoists the two
// per-call invariants of the inverse CDF (the normalization factor and the
// -1/Alpha exponent) and resolves most draws from a precomputed lookup
// table, falling back to the exact transform only for variates that land in
// a bucket straddling an integer boundary. Sample(u) returns exactly
// quantile(u) for every u in [0,1): the table is an accelerator, never an
// approximation.
type LenSampler struct {
	d       FlowLenDist
	hFactor float64
	negInv  float64
	table   []int32 // resolved length per bucket; -1 = compute exactly
}

// Sampler prepares a sampler for the distribution. It panics on invalid
// parameters, like NewGenerator.
func (d FlowLenDist) Sampler() *LenSampler {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	xmax := float64(d.Max) + 1
	s := &LenSampler{
		d: d,
		// Same expressions as quantile, evaluated once.
		hFactor: 1 - math.Pow(1/xmax, d.Alpha),
		negInv:  -1 / d.Alpha,
		table:   make([]int32, lenSamplerBuckets),
	}
	lo := s.x(0)
	for i := range s.table {
		hi := s.x(float64(i+1) / lenSamplerBuckets)
		s.table[i] = bucketValue(lo, hi, d.Max)
		lo = hi
	}
	return s
}

// x is the continuous bounded-Pareto inverse CDF, bit-identical to the
// expression inside quantile.
func (s *LenSampler) x(u float64) float64 {
	return math.Pow(1-u*s.hFactor, s.negInv)
}

// bucketValue resolves one table bucket whose x-range is [lo, hi], or
// returns -1 when the bucket cannot be proven to map to a single integer.
// math.Pow is monotone only up to its last-ulp error, so a bucket is cached
// only when its whole x-range sits clear of the integer boundaries by a
// margin (1e-9 relative) many orders of magnitude wider than that error —
// then every variate in the bucket provably floors to the same length.
func bucketValue(lo, hi float64, maxLen int) int32 {
	n := math.Floor(lo)
	if math.Floor(hi) != n {
		return -1
	}
	if m := 1e-9 * hi; lo < n+m || hi > n+1-m {
		return -1
	}
	v := int(n)
	if v < 1 {
		v = 1
	}
	if v > maxLen {
		v = maxLen
	}
	return int32(v)
}

// Sample maps a uniform variate in [0,1) to a flow length. It returns the
// same value quantile would, at the cost of a table probe for almost all
// variates.
func (s *LenSampler) Sample(u float64) int {
	if i := int(u * lenSamplerBuckets); i >= 0 && i < lenSamplerBuckets {
		if v := s.table[i]; v >= 0 {
			return int(v)
		}
	}
	x := s.x(u)
	n := int(x)
	if n < 1 {
		n = 1
	}
	if n > s.d.Max {
		n = s.d.Max
	}
	return n
}
