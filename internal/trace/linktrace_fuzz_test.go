package trace

import (
	"math"
	"testing"
	"time"
)

// FuzzParseLinkTrace is the ISSUE-required robustness target: on arbitrary
// bytes the parser must either return a valid trace or a descriptive error —
// it must never panic. When it accepts input, the parsed trace must satisfy
// the documented invariants and survive a re-encode round trip, which fuzzes
// the encoders for free.
func FuzzParseLinkTrace(f *testing.F) {
	f.Add([]byte(`{"version":1,"samples":[{"t_ns":0,"delay_ns":50000,"loss":0.01}]}`))
	f.Add([]byte(`{"version":1,"samples":[{"t_ns":0,"delay_ns":0,"loss":0},{"t_ns":1000,"delay_ns":250,"loss":1}]}`))
	f.Add([]byte("t_ns,delay_ns,loss\n0,50000,0.01\n1000000,400000,0.05\n"))
	f.Add([]byte("t_ns,delay_ns,loss\r\n0,0,0\r\n"))
	f.Add([]byte(`{"version":2,"samples":[]}`))
	f.Add([]byte(`{"version":1,"samples":[{"t_ns":5,"delay_ns":0,"loss":0},{"t_ns":3,"delay_ns":0,"loss":0}]}`))
	f.Add([]byte("t_ns,delay_ns,loss\n0,0,NaN\n"))
	f.Add([]byte("t_ns,delay_ns,loss\n9223372036854775807,1,0.5\n"))
	f.Add([]byte("t_ns,delay_ns,loss\n0,0,1e309\n"))
	f.Add([]byte("{"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		lt, err := ParseLinkTrace(data)
		if err != nil {
			return
		}
		if lt == nil || len(lt.Samples) == 0 {
			t.Fatal("nil error with empty trace")
		}
		prev := time.Duration(-1)
		for i, s := range lt.Samples {
			if s.At <= prev {
				t.Fatalf("row %d offset %v not strictly increasing after %v", i, s.At, prev)
			}
			prev = s.At
			if s.At < 0 || s.Delay < 0 {
				t.Fatalf("row %d carries negative time: %+v", i, s)
			}
			if math.IsNaN(s.Loss) || s.Loss < 0 || s.Loss > 1 {
				t.Fatalf("row %d loss %v outside [0, 1]", i, s.Loss)
			}
		}
		// Accepted traces must survive both re-encodings.
		js, err := lt.EncodeJSON()
		if err != nil {
			t.Fatalf("EncodeJSON of accepted trace: %v", err)
		}
		if _, err := ParseLinkTrace(js); err != nil {
			t.Fatalf("re-parse of JSON encoding: %v", err)
		}
		if _, err := ParseLinkTrace(lt.EncodeCSV()); err != nil {
			t.Fatalf("re-parse of CSV encoding: %v", err)
		}
	})
}
