package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// Config parameterizes the synthetic workload generator.
type Config struct {
	// Seed makes the trace fully deterministic.
	Seed int64
	// Duration is the trace length; records past it are not emitted.
	Duration time.Duration
	// TargetBps is the average offered load the generator calibrates its
	// flow arrival rate to.
	TargetBps float64
	// SrcPrefix and DstPrefix are the address pools flows draw endpoints
	// from. The paper distinguishes regular from cross traffic purely by IP
	// address ("We modify IP addresses of cross traffic"), so disjoint
	// prefixes per trace reproduce that.
	SrcPrefix packet.Prefix
	DstPrefix packet.Prefix
	// FlowLen is the packets-per-flow distribution.
	FlowLen FlowLenDist
	// Sizes is the packet-size mix.
	Sizes SizeMix
	// MeanGap is the mean in-flow packet spacing (exponentially
	// distributed). Together with FlowLen it sets per-flow durations.
	MeanGap time.Duration
	// Warmup starts the flow arrival process this long before the trace
	// window and discards pre-window records. With heavy-tailed flow
	// lengths, a cold start under-delivers the target rate badly (no
	// elephants are mid-flight at t=0); a warm-up of at least the longest
	// flow duration makes the window statistically stationary, like a
	// slice cut from a live link.
	Warmup time.Duration
}

// DefaultConfig returns a 2-second, 220 Mbps workload on a 10.1.0.0/16
// source pool — 22% of a 1 Gbps link, the base utilization the paper
// observes from regular traffic alone.
//
// The 2 ms in-flow gap keeps individual flows at a realistic few Mbps, so
// the aggregate multiplexes many concurrent flows rather than a couple of
// elephants taking turns; that is what keeps the offered rate stable and
// mirrors a backbone trace's aggregation level.
func DefaultConfig() Config {
	return Config{
		Seed:      1,
		Duration:  2 * time.Second,
		TargetBps: 220e6,
		SrcPrefix: packet.MustParsePrefix("10.1.0.0/16"),
		DstPrefix: packet.MustParsePrefix("10.200.0.0/16"),
		FlowLen:   DefaultFlowLenDist(),
		Sizes:     DefaultSizeMix(),
		MeanGap:   2 * time.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("trace: non-positive duration %v", c.Duration)
	}
	if c.TargetBps <= 0 {
		return fmt.Errorf("trace: non-positive target rate %v", c.TargetBps)
	}
	if c.MeanGap <= 0 {
		return fmt.Errorf("trace: non-positive mean gap %v", c.MeanGap)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("trace: negative warmup %v", c.Warmup)
	}
	if err := c.Sizes.Validate(); err != nil {
		return err
	}
	return c.FlowLen.Validate()
}

// FlowArrivalRate returns the calibrated Poisson flow arrival rate in flows
// per second implied by the target load.
func (c Config) FlowArrivalRate() float64 {
	bytesPerFlow := c.FlowLen.Mean() * c.Sizes.Mean()
	return c.TargetBps / (bytesPerFlow * 8)
}

// Generator streams a synthetic trace in time order. It is a Source.
type Generator struct {
	cfg      Config
	rng      *rand.Rand
	events   genHeap
	nextFlow simtime.Time
	arrGap   float64 // mean inter-flow-arrival in seconds
	done     bool
	emitted  uint64

	// Hot-path accelerators, prepared once per generator: the flow-length
	// sampler hoists the bounded-Pareto transcendentals, sizeTotal hoists
	// the size-mix weight sum, and free recycles finished flowState records
	// so steady-state generation does not allocate per flow.
	lenSamp   *LenSampler
	sizeTotal float64
	free      []*flowState
	slab      []flowState // slab fresh flowStates are carved from
}

// flowState is one active flow's pending next packet.
type flowState struct {
	at        simtime.Time
	key       packet.FlowKey
	remaining int
	size      int
}

// genHeap is a monomorphic binary min-heap over pending flows, ordered by
// next-packet instant. Its sift procedures replicate container/heap's
// algorithm exactly (same comparisons, same swap sequence), so the
// arrangement — and therefore the emission order among flows whose next
// packets collide on the same instant — is bit-identical to the seed
// engine's, without the interface dispatch per comparison.
type genHeap []*flowState

func (h genHeap) Len() int           { return len(h) }
func (h genHeap) peek() simtime.Time { return h[0].at }

func (h *genHeap) push(fs *flowState) {
	*h = append(*h, fs)
	s := *h
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if s[i].at <= s[j].at {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func (h *genHeap) pop() *flowState {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	s.down(0, n)
	fs := s[n]
	s[n] = nil
	*h = s[:n]
	return fs
}

// fixRoot restores the heap after the root's instant changed in place
// (container/heap.Fix(h, 0) equivalent: at the root, sifting down covers
// every case).
func (h genHeap) fixRoot() { h.down(0, len(h)) }

func (h genHeap) down(i0, n int) {
	i := i0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && h[j2].at < h[j].at {
			j = j2
		}
		if h[i].at <= h[j].at {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// NewGenerator builds a generator; it panics on invalid configuration since
// a malformed workload invalidates every downstream result.
func NewGenerator(cfg Config) *Generator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		arrGap:    1 / cfg.FlowArrivalRate(),
		lenSamp:   cfg.FlowLen.Sampler(),
		sizeTotal: cfg.Sizes.total(),
		events:    make(genHeap, 0, 256),
	}
	g.nextFlow = g.expAfter(simtime.Time(-int64(cfg.Warmup)), g.arrGap)
	return g
}

// StationaryWarmup returns the warm-up that makes the window stationary:
// the duration of the longest possible flow.
func (c Config) StationaryWarmup() time.Duration {
	return time.Duration(c.FlowLen.Max) * c.MeanGap
}

// expAfter returns t plus an exponential variate with the given mean in
// seconds.
func (g *Generator) expAfter(t simtime.Time, meanSec float64) simtime.Time {
	d := g.rng.ExpFloat64() * meanSec
	return t.Add(time.Duration(d * float64(time.Second)))
}

// randAddr draws a uniform address inside prefix p, avoiding the all-zeros
// host (network address) where possible.
func (g *Generator) randAddr(p packet.Prefix) packet.Addr {
	hostBits := 32 - p.Len
	if hostBits == 0 {
		return p.Addr
	}
	span := uint64(1) << uint(hostBits)
	h := uint32(g.rng.Int63n(int64(span)))
	if h == 0 && span > 1 {
		h = 1
	}
	return packet.Addr(uint32(p.Addr)&p.Mask() | h)
}

// spawnFlow creates a new flow starting at the given instant.
func (g *Generator) spawnFlow(at simtime.Time) {
	n := g.lenSamp.Sample(g.rng.Float64())
	key := packet.FlowKey{
		Src:     g.randAddr(g.cfg.SrcPrefix),
		Dst:     g.randAddr(g.cfg.DstPrefix),
		SrcPort: uint16(1024 + g.rng.Intn(64512)),
		DstPort: uint16(1 + g.rng.Intn(65535)),
		Proto:   packet.ProtoTCP,
	}
	if g.rng.Float64() < 0.15 {
		key.Proto = packet.ProtoUDP
	}
	var fs *flowState
	if k := len(g.free); k > 0 {
		fs = g.free[k-1]
		g.free = g.free[:k-1]
	} else {
		// Carve from a slab: the free list only helps once flows finish, so
		// ramp-up still creates one record per concurrent flow. A full slab
		// is abandoned to its live pointers and replaced; addresses are
		// stable.
		if len(g.slab) == cap(g.slab) {
			g.slab = make([]flowState, 0, 128)
		}
		g.slab = append(g.slab, flowState{})
		fs = &g.slab[len(g.slab)-1]
	}
	*fs = flowState{at: at, key: key, remaining: n}
	fs.size = g.cfg.Sizes.sampleTotal(g.rng.Float64(), g.sizeTotal)
	g.events.push(fs)
}

// Next returns the next record in time order.
func (g *Generator) Next() (Rec, bool) {
	for {
		// Admit new flows that arrive before the earliest pending packet.
		for !g.done && (g.events.Len() == 0 || g.nextFlow <= g.events.peek()) {
			if g.nextFlow.Duration() >= g.cfg.Duration {
				g.done = true
				break
			}
			g.spawnFlow(g.nextFlow)
			g.nextFlow = g.expAfter(g.nextFlow, g.arrGap)
		}
		if g.events.Len() == 0 {
			return Rec{}, false
		}
		fs := g.events[0]
		if fs.at.Duration() >= g.cfg.Duration {
			// The earliest pending packet is past the trace window. In-flow
			// times only increase and the admit loop above has already run
			// nextFlow past every pending instant, so every other pending
			// packet is past the window too: the trace is complete.
			g.events = nil
			g.done = true
			return Rec{}, false
		}
		rec := Rec{At: fs.at, Key: fs.key, Size: fs.size}
		fs.remaining--
		if fs.remaining == 0 {
			g.events.pop()
			g.free = append(g.free, fs)
		} else {
			fs.at = g.expAfter(fs.at, g.cfg.MeanGap.Seconds())
			fs.size = g.cfg.Sizes.sampleTotal(g.rng.Float64(), g.sizeTotal)
			g.events.fixRoot()
		}
		if rec.At < 0 {
			// Warm-up record: generated for stationarity, not emitted.
			continue
		}
		g.emitted++
		return rec, true
	}
}

// Emitted returns the number of records produced so far.
func (g *Generator) Emitted() uint64 { return g.emitted }

// Stats summarizes a trace.
type Stats struct {
	Packets  uint64
	Bytes    uint64
	Flows    int
	First    simtime.Time
	Last     simtime.Time
	MeanBps  float64
	MeanSize float64
}

// Summarize drains a source and computes its statistics.
func Summarize(src Source) Stats {
	var s Stats
	flows := make(map[packet.FlowKey]struct{})
	first := true
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if first {
			s.First = r.At
			first = false
		}
		s.Last = r.At
		s.Packets++
		s.Bytes += uint64(r.Size)
		flows[r.Key] = struct{}{}
	}
	s.Flows = len(flows)
	if s.Packets > 0 {
		s.MeanSize = float64(s.Bytes) / float64(s.Packets)
		if s.Last > s.First {
			s.MeanBps = simtime.Rate(int64(s.Bytes), s.First, s.Last)
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("packets=%d flows=%d bytes=%d span=[%v,%v] mean=%.1f Mbps meanSize=%.0fB",
		s.Packets, s.Flows, s.Bytes, s.First, s.Last, s.MeanBps/1e6, s.MeanSize)
}

// SliceSource adapts an in-memory record slice to a Source.
type SliceSource struct {
	recs []Rec
	i    int
}

// NewSliceSource wraps recs; the slice is not copied.
func NewSliceSource(recs []Rec) *SliceSource { return &SliceSource{recs: recs} }

// Next implements Source.
func (s *SliceSource) Next() (Rec, bool) {
	if s.i >= len(s.recs) {
		return Rec{}, false
	}
	r := s.recs[s.i]
	s.i++
	return r, true
}

// Collect drains a source into a slice, capped at limit records (0 = no
// cap). It verifies time ordering, panicking on regression: every consumer
// in this repository assumes sorted traces.
func Collect(src Source, limit int) []Rec {
	var out []Rec
	last := simtime.Time(math.MinInt64)
	for {
		r, ok := src.Next()
		if !ok {
			return out
		}
		if r.At < last {
			panic(fmt.Sprintf("trace: time regression %v after %v", r.At, last))
		}
		last = r.At
		out = append(out, r)
		if limit > 0 && len(out) >= limit {
			return out
		}
	}
}

// Rebase returns a copy of rec with its source and destination rewritten
// into the given prefixes, preserving host bits that fit. It reproduces the
// paper's "we modify IP addresses of cross traffic to distinguish from
// regular traffic".
func Rebase(rec Rec, src, dst packet.Prefix) Rec {
	rec.Key.Src = rebaseAddr(rec.Key.Src, src)
	rec.Key.Dst = rebaseAddr(rec.Key.Dst, dst)
	return rec
}

func rebaseAddr(a packet.Addr, p packet.Prefix) packet.Addr {
	m := p.Mask()
	return packet.Addr(uint32(p.Addr)&m | uint32(a)&^m)
}
