package trace

import (
	"math/bits"
	"testing"
)

func TestDeriveSeedsReproducible(t *testing.T) {
	a := DeriveSeeds(42, 16)
	b := DeriveSeeds(42, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d not reproducible: %d vs %d", i, a[i], b[i])
		}
		if a[i] != DeriveSeed(42, uint64(i)) {
			t.Fatalf("DeriveSeeds[%d] != DeriveSeed: %d vs %d", i, a[i], DeriveSeed(42, uint64(i)))
		}
	}
}

func TestDeriveSeedsDistinct(t *testing.T) {
	seen := map[int64]int{}
	for _, base := range []int64{0, 1, 2, -1, 1 << 40} {
		for i, s := range DeriveSeeds(base, 64) {
			if j, dup := seen[s]; dup {
				t.Fatalf("collision: base=%d stream=%d repeats earlier seed %d (%d)", base, i, s, j)
			}
			seen[s] = i
		}
	}
}

// TestDeriveSeedAvalanche checks the independence property that justifies
// replacing base+i arithmetic: adjacent streams and adjacent bases must
// differ in roughly half their bits, not just the low ones.
func TestDeriveSeedAvalanche(t *testing.T) {
	check := func(name string, a, b int64) {
		d := bits.OnesCount64(uint64(a) ^ uint64(b))
		if d < 16 || d > 48 {
			t.Errorf("%s: hamming distance %d outside [16,48] (a=%x b=%x)", name, d, a, b)
		}
	}
	for i := uint64(0); i < 32; i++ {
		check("adjacent streams", DeriveSeed(1, i), DeriveSeed(1, i+1))
		check("adjacent bases", DeriveSeed(int64(i), 0), DeriveSeed(int64(i)+1, 0))
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs of the SplitMix64 finalizer over the golden-gamma
	// sequence starting at state 0 (cross-checked against the published
	// java.util.SplittableRandom / xoshiro seeding sequence).
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	state := uint64(0)
	for i, w := range want {
		state += splitmix64Gamma
		if got := SplitMix64(state); got != w {
			t.Fatalf("SplitMix64 step %d = %#x, want %#x", i, got, w)
		}
	}
}
