package trace

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func mustLinkTrace(t *testing.T, samples []LinkSample) *LinkTrace {
	t.Helper()
	lt, err := NewLinkTrace(samples)
	if err != nil {
		t.Fatal(err)
	}
	return lt
}

// TestLinkTraceAtStepSemantics pins the step-function contract: a row is in
// effect from its offset until the next row, the last row holds forever, and
// before the first row the trace is the identity.
func TestLinkTraceAtStepSemantics(t *testing.T) {
	lt := mustLinkTrace(t, []LinkSample{
		{At: 10 * time.Millisecond, Delay: 100 * time.Microsecond, Loss: 0.1},
		{At: 20 * time.Millisecond, Delay: 300 * time.Microsecond, Loss: 0},
	})
	if got := lt.At(0); got != (LinkSample{}) {
		t.Fatalf("before first row got %+v, want zero sample", got)
	}
	if got := lt.At(10 * time.Millisecond); got.Delay != 100*time.Microsecond {
		t.Fatalf("at first boundary got %+v", got)
	}
	if got := lt.At(19_999_999 * time.Nanosecond); got.Delay != 100*time.Microsecond {
		t.Fatalf("just before second row got %+v", got)
	}
	if got := lt.At(time.Hour); got.Delay != 300*time.Microsecond || got.Loss != 0 {
		t.Fatalf("last row must hold forever, got %+v", got)
	}
	if lt.Duration() != 20*time.Millisecond {
		t.Fatalf("Duration() = %v, want 20ms", lt.Duration())
	}
	empty := &LinkTrace{}
	if empty.At(time.Second) != (LinkSample{}) || empty.Duration() != 0 {
		t.Fatal("zero-value trace must be the identity emulator")
	}
}

// TestLinkTraceRoundTrip pins that both encodings reproduce the parsed trace
// exactly, using a generated trace as the fixture.
func TestLinkTraceRoundTrip(t *testing.T) {
	lt, err := GenLinkTrace(LinkTraceConfig{
		Seed: 7, Duration: 50 * time.Millisecond, Step: 5 * time.Millisecond,
		BaseDelay: 20 * time.Microsecond, MaxExtra: 400 * time.Microsecond, MaxLoss: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	js, err := lt.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ParseLinkTrace(js)
	if err != nil {
		t.Fatalf("parse of own JSON encoding: %v", err)
	}
	if !reflect.DeepEqual(fromJSON, lt) {
		t.Fatal("JSON round trip altered the trace")
	}
	fromCSV, err := ParseLinkTrace(lt.EncodeCSV())
	if err != nil {
		t.Fatalf("parse of own CSV encoding: %v", err)
	}
	if !reflect.DeepEqual(fromCSV, lt) {
		t.Fatal("CSV round trip altered the trace")
	}
}

// TestGenLinkTraceDeterministic pins the tracegen contract: the same config
// always yields the same rows, a different seed yields different rows, and
// invalid configs fail loudly.
func TestGenLinkTraceDeterministic(t *testing.T) {
	cfg := LinkTraceConfig{
		Seed: 42, Duration: 100 * time.Millisecond, Step: 10 * time.Millisecond,
		BaseDelay: 10 * time.Microsecond, MaxExtra: 200 * time.Microsecond, MaxLoss: 0.1,
	}
	a, err := GenLinkTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenLinkTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different traces")
	}
	cfg.Seed = 43
	c, err := GenLinkTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
	if len(a.Samples) != 11 {
		t.Fatalf("100ms at 10ms step yields %d rows, want 11", len(a.Samples))
	}
	for i, s := range a.Samples {
		if s.Delay < cfg.BaseDelay || s.Delay > cfg.BaseDelay+200*time.Microsecond {
			t.Fatalf("row %d delay %v outside [base, base+max]", i, s.Delay)
		}
		if s.Loss < 0 || s.Loss > 0.1 {
			t.Fatalf("row %d loss %v outside [0, MaxLoss]", i, s.Loss)
		}
	}
	for _, bad := range []LinkTraceConfig{
		{Duration: 0, Step: time.Millisecond},
		{Duration: time.Second, Step: 0},
		{Duration: time.Second, Step: time.Millisecond, BaseDelay: -1},
		{Duration: time.Second, Step: time.Millisecond, MaxLoss: 1.5},
	} {
		if _, err := GenLinkTrace(bad); err == nil {
			t.Fatalf("config %+v accepted, want error", bad)
		}
	}
}

// TestLinkTraceEmulateDeterministic pins the drop decision as a pure
// function of (pktID, seed, row): replaying the same packet yields the same
// outcome, and the realized drop rate over many IDs tracks the row's loss.
func TestLinkTraceEmulateDeterministic(t *testing.T) {
	lt := mustLinkTrace(t, []LinkSample{
		{At: 0, Delay: 250 * time.Microsecond, Loss: 0.25},
	})
	const seed = 0x9e3779b97f4a7c15
	drops := 0
	for id := uint64(0); id < 10_000; id++ {
		d1, drop1 := lt.Emulate(id, seed, time.Millisecond)
		d2, drop2 := lt.Emulate(id, seed, time.Millisecond)
		if d1 != d2 || drop1 != drop2 {
			t.Fatalf("id %d: Emulate is not deterministic", id)
		}
		if drop1 {
			if d1 != 0 {
				t.Fatalf("id %d: dropped packet carries delay %v", id, d1)
			}
			drops++
		} else if d1 != 250*time.Microsecond {
			t.Fatalf("id %d: delay %v, want 250µs", id, d1)
		}
	}
	if frac := float64(drops) / 10_000; frac < 0.22 || frac > 0.28 {
		t.Fatalf("realized drop rate %.3f, want ~0.25", frac)
	}
	// A zero-loss row never consults the hash.
	clean := mustLinkTrace(t, []LinkSample{{At: 0, Delay: time.Microsecond}})
	for id := uint64(0); id < 1000; id++ {
		if _, drop := clean.Emulate(id, seed, 0); drop {
			t.Fatalf("id %d dropped on a zero-loss row", id)
		}
	}
}

// TestParseLinkTraceRejectsMalformed pins the error contract ISSUE requires:
// every malformed input is a descriptive error, never a panic (the fuzz
// target extends this over arbitrary bytes).
func TestParseLinkTraceRejectsMalformed(t *testing.T) {
	for _, tc := range []struct {
		name, in, wantErr string
	}{
		{"empty", "", "empty"},
		{"whitespace only", "  \n\t", "empty"},
		{"json truncated", `{"version":1,"samples":[{"t_ns":0,`, "JSON"},
		{"json bad version", `{"version":2,"samples":[{"t_ns":0,"delay_ns":0,"loss":0}]}`, "version"},
		{"json unknown field", `{"version":1,"samples":[{"t_ns":0,"delay_ns":0,"loss":0,"x":1}]}`, "unknown field"},
		{"json trailing data", `{"version":1,"samples":[{"t_ns":0,"delay_ns":0,"loss":0}]}{}`, "trailing"},
		{"json no samples", `{"version":1,"samples":[]}`, "no samples"},
		{"json out of order", `{"version":1,"samples":[{"t_ns":5,"delay_ns":0,"loss":0},{"t_ns":3,"delay_ns":0,"loss":0}]}`, "strictly increasing"},
		{"json duplicate t", `{"version":1,"samples":[{"t_ns":5,"delay_ns":0,"loss":0},{"t_ns":5,"delay_ns":0,"loss":0}]}`, "strictly increasing"},
		{"json negative t", `{"version":1,"samples":[{"t_ns":-1,"delay_ns":0,"loss":0}]}`, "t_ns"},
		{"json negative delay", `{"version":1,"samples":[{"t_ns":0,"delay_ns":-5,"loss":0}]}`, "delay_ns"},
		{"json loss above one", `{"version":1,"samples":[{"t_ns":0,"delay_ns":0,"loss":1.5}]}`, "outside [0, 1]"},
		{"csv missing header", "0,0,0\n", "header"},
		{"csv wrong fields", "t_ns,delay_ns,loss\n1,2\n", "want 3"},
		{"csv bad number", "t_ns,delay_ns,loss\nabc,0,0\n", "t_ns"},
		{"csv nan loss", "t_ns,delay_ns,loss\n0,0,NaN\n", "not finite"},
		{"csv inf loss", "t_ns,delay_ns,loss\n0,0,+Inf\n", "not finite"},
		{"csv no rows", "t_ns,delay_ns,loss\n", "no samples"},
		{"csv out of order", "t_ns,delay_ns,loss\n10,0,0\n5,0,0\n", "strictly increasing"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseLinkTrace([]byte(tc.in))
			if err == nil {
				t.Fatalf("input %q accepted, want error", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
