package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func twoPass(xs []float64) (mean, popVar float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	mean = s / float64(len(xs))
	var m2 float64
	for _, x := range xs {
		m2 += (x - mean) * (x - mean)
	}
	return mean, m2 / float64(len(xs))
}

func TestWelfordMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(1000) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*1e3 + 5e4 // latency-like ns values
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		mean, v := twoPass(xs)
		if relDiff(w.Mean(), mean) > 1e-9 {
			t.Fatalf("mean = %v, want %v", w.Mean(), mean)
		}
		if relDiff(w.Var(), v) > 1e-6 {
			t.Fatalf("var = %v, want %v", w.Var(), v)
		}
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Fatal("zero-value Welford should report zeros")
	}
	w.Add(42)
	if w.N() != 1 || w.Mean() != 42 || w.Var() != 0 {
		t.Fatalf("single sample: n=%d mean=%v var=%v", w.N(), w.Mean(), w.Var())
	}
	if w.SampleVar() != 0 {
		t.Fatalf("SampleVar with one sample = %v, want 0", w.SampleVar())
	}
}

func TestWelfordAddN(t *testing.T) {
	var a, b Welford
	for i := 0; i < 5; i++ {
		a.Add(7)
	}
	b.AddN(7, 5)
	if a.N() != b.N() || a.Mean() != b.Mean() || a.Var() != b.Var() {
		t.Fatal("AddN(x,5) differs from five Add(x)")
	}
}

func TestWelfordMergeProperty(t *testing.T) {
	// Merging two accumulators equals accumulating the concatenation.
	f := func(xs, ys []float64) bool {
		clean := func(in []float64) []float64 {
			out := in[:0]
			for _, v := range in {
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					// Bound magnitude to keep the float comparison meaningful.
					out = append(out, math.Mod(v, 1e6))
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, all Welford
		for _, x := range xs {
			a.Add(x)
			all.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
			all.Add(y)
		}
		a.Merge(&b)
		if a.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		return relDiff(a.Mean(), all.Mean()) < 1e-6 && math.Abs(a.Var()-all.Var()) <= 1e-6*(1+all.Var())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatalf("merge empty changed state: n=%d mean=%v", a.N(), a.Mean())
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Fatalf("merge into empty: n=%d mean=%v", b.N(), b.Mean())
	}
}

func TestWelfordVarianceNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			w.Add(math.Mod(x, 1e9))
		}
		return w.Var() >= 0 && w.SampleVar() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelErr(t *testing.T) {
	cases := []struct {
		est, truth, want float64
	}{
		{110, 100, 0.10},
		{90, 100, 0.10},
		{100, 100, 0},
		{0, 0, 0},
		{-5, 10, 1.5},
	}
	for _, c := range cases {
		if got := RelErr(c.est, c.truth); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelErr(%v,%v) = %v, want %v", c.est, c.truth, got, c.want)
		}
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr(1,0) should be +Inf")
	}
}
