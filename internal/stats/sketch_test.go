package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// sketchDistributions are the input families the accuracy property runs
// over: heavy-tailed (the paper's Pareto flow sizes), uniform, and a
// bimodal mix (two latency modes an order of magnitude apart — the shape
// eviction rollups see when slow and fast flows fold together).
var sketchDistributions = []struct {
	name string
	gen  func(rng *rand.Rand) float64
}{
	{"pareto", func(rng *rand.Rand) float64 {
		// alpha=1.2, xm=10µs: heavy tail up into the seconds.
		return 10e3 * math.Pow(1-rng.Float64(), -1/1.2)
	}},
	{"uniform", func(rng *rand.Rand) float64 {
		return rng.Float64() * 50e6 // 0..50ms, exercises the zero bucket too
	}},
	{"bimodal", func(rng *rand.Rand) float64 {
		if rng.Intn(2) == 0 {
			return 100e3 + rng.Float64()*50e3 // ~100µs mode
		}
		return 5e6 + rng.Float64()*2e6 // ~5ms mode
	}},
}

// TestSketchQuantileErrorBound is the accuracy acceptance pin: for every
// distribution family and for sketches assembled from arbitrary
// partitionings merged in arbitrary orders, every quantile in a dense grid
// must be within SketchRelErrBound of the exact nearest-rank quantile of
// the same samples (stats.CDF), and the merged sketch must be bit-identical
// to the sequential one.
func TestSketchQuantileErrorBound(t *testing.T) {
	for _, dist := range sketchDistributions {
		t.Run(dist.name, func(t *testing.T) {
			f := func(seed int64, partCount uint8) bool {
				rng := rand.New(rand.NewSource(seed))
				n := 100 + rng.Intn(5000)
				parts := 1 + int(partCount%7)
				var seq Sketch
				shards := make([]Sketch, parts)
				samples := make([]float64, 0, n)
				for i := 0; i < n; i++ {
					x := math.Floor(dist.gen(rng)) // latencies are integer ns
					samples = append(samples, x)
					seq.Add(x)
					shards[rng.Intn(parts)].Add(x)
				}
				// Merge the shards in a random order, pairwise.
				rng.Shuffle(parts, func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })
				var merged Sketch
				for i := range shards {
					merged.Merge(&shards[i])
				}
				if !reflect.DeepEqual(merged, seq) {
					t.Logf("merged sketch != sequential sketch (parts=%d)", parts)
					return false
				}
				exact := NewCDF(samples)
				for q := 0.0; q <= 1.0; q += 0.01 {
					want := exact.Quantile(q)
					got := seq.Quantile(q)
					if want < 1 {
						if got != 0 {
							t.Logf("q=%.2f: want %g (<1ns), got %g", q, want, got)
							return false
						}
						continue
					}
					if err := math.Abs(got-want) / want; err > SketchRelErrBound {
						t.Logf("q=%.2f: want %g got %g rel err %g > %g", q, want, got, err, SketchRelErrBound)
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSketchMergeExactlyAssociative pins the property the fleet rollup
// merge relies on: sketch merge is bit-exact under ANY association and
// argument order, even when every operand is non-empty — stronger than
// Welford's flow-disjoint-only guarantee.
func TestSketchMergeExactlyAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parts := make([]Sketch, 2+rng.Intn(5))
		for i := range parts {
			for j, n := 0, rng.Intn(300); j < n; j++ {
				parts[i].Add(math.Floor(rng.Float64() * 1e9))
			}
		}
		// Left fold in order.
		var left Sketch
		for i := range parts {
			left.Merge(&parts[i])
		}
		// Reverse order.
		var right Sketch
		for i := len(parts) - 1; i >= 0; i-- {
			right.Merge(&parts[i])
		}
		// Pairwise tree.
		tree := append([]Sketch(nil), parts...)
		for len(tree) > 1 {
			var next []Sketch
			for i := 0; i < len(tree); i += 2 {
				s := tree[i]
				if i+1 < len(tree) {
					s.Merge(&tree[i+1])
				}
				next = append(next, s)
			}
			tree = next
		}
		return reflect.DeepEqual(left, right) && reflect.DeepEqual(left, tree[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSketchStateRoundTrip pins State/SetState as an exact round-trip,
// direct and through JSON — the fleet raw-snapshot wire property.
func TestSketchStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		var s Sketch
		for i, n := 0, rng.Intn(400); i < n; i++ {
			s.Add(math.Floor(rng.ExpFloat64() * 1e6))
		}
		if got := SketchFromState(s.State()); !reflect.DeepEqual(got, s) {
			t.Fatalf("trial %d: State round-trip diverged", trial)
		}
		data, err := json.Marshal(s.State())
		if err != nil {
			t.Fatal(err)
		}
		var st SketchState
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if got := SketchFromState(st); !reflect.DeepEqual(got, s) {
			t.Fatalf("trial %d: JSON round-trip diverged", trial)
		}
	}
}

// TestSketchBoundedMemory pins the memory claim: however many samples are
// added across the full duration range, the counter window never exceeds
// SketchMaxBuckets entries.
func TestSketchBoundedMemory(t *testing.T) {
	var s Sketch
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200000; i++ {
		s.Add(math.Ldexp(1+rng.Float64(), rng.Intn(62)))
	}
	s.Add(0)
	s.Add(math.MaxFloat64) // clamps to the top bucket, must not explode
	if s.Buckets() > SketchMaxBuckets {
		t.Fatalf("window %d exceeds structural bound %d", s.Buckets(), SketchMaxBuckets)
	}
	if s.Count() != 200002 {
		t.Fatalf("count %d", s.Count())
	}
}

// TestSketchEdgeCases covers the zero bucket, negatives, NaN clamping,
// empty-sketch queries, and the defensive SetState truncation.
func TestSketchEdgeCases(t *testing.T) {
	var s Sketch
	if s.Quantile(0.5) != 0 || s.Count() != 0 {
		t.Fatal("empty sketch not zero")
	}
	s.Add(-5)
	s.Add(math.NaN())
	s.Add(0.25)
	if s.zero != 3 || s.Quantile(1) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("sub-1ns values not collapsed to zero: %+v", s)
	}
	s.Record(2 * time.Millisecond)
	if got := s.QuantileDuration(1); relErr(float64(got), 2e6) > SketchRelErrBound {
		t.Fatalf("p100 = %v, want ~2ms", got)
	}
	if s.Min() != 0 || s.Max() != 2e6 {
		t.Fatalf("min/max %g/%g", s.Min(), s.Max())
	}

	// A hostile peer's state must truncate, not allocate unboundedly.
	huge := SketchState{Count: 1, Base: 100, Buckets: make([]uint64, 1<<20)}
	if got := SketchFromState(huge); got.Buckets() > SketchMaxBuckets {
		t.Fatalf("oversized state decoded to %d buckets", got.Buckets())
	}
	neg := SketchState{Count: 1, Base: -7, Buckets: []uint64{1}}
	if got := SketchFromState(neg); got.Buckets() != 0 {
		t.Fatalf("negative-base window kept %d buckets", got.Buckets())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range quantile did not panic")
		}
	}()
	s.Quantile(1.5)
}

func relErr(a, b float64) float64 { return math.Abs(a-b) / b }

// TestAggregateGenericRoundTrip drives all three accumulators through the
// one generic FromState round-trip and the shared Add/Merge surface — the
// contract collapse that replaced three hand-rolled code paths.
func TestAggregateGenericRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = math.Floor(rng.ExpFloat64() * 1e6)
	}
	check := func(name string, same func() bool) {
		if !same() {
			t.Fatalf("%s: generic round-trip diverged", name)
		}
	}
	var w, w2 Welford
	var h, h2 Histogram
	var s, s2 Sketch
	for _, x := range xs[:250] {
		w.Add(x)
		h.Add(x)
		s.Add(x)
	}
	for _, x := range xs[250:] {
		w2.Add(x)
		h2.Add(x)
		s2.Add(x)
	}
	w.Merge(&w2)
	h.Merge(&h2)
	s.Merge(&s2)
	check("welford", func() bool { return FromState[Welford](w.State()) == w })
	check("histogram", func() bool { return FromState[Histogram](h.State()) == h })
	check("sketch", func() bool { return reflect.DeepEqual(FromState[Sketch](s.State()), s) })
}

// BenchmarkSketchAdd is the sketch-ingest number bench.sh records: the
// per-sample cost of folding latency observations into a sketch.
func BenchmarkSketchAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 8192)
	for i := range vals {
		vals[i] = math.Floor(rng.ExpFloat64() * 1e6)
	}
	var s Sketch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(vals[i&8191])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/s")
	if s.Count() == 0 {
		b.Fatal("no samples")
	}
}

// TestNewCDFSortedInputFastPath pins that pre-sorted input (Merge output
// order) survives NewCDF unchanged — the re-sort-skip satellite.
func TestNewCDFSortedInputFastPath(t *testing.T) {
	sorted := []float64{math.NaN(), 1, 2, 2, 3}
	c := NewCDF(sorted)
	if c.N() != 5 || c.Quantile(1) != 3 {
		t.Fatalf("sorted input mishandled: %+v", c)
	}
	unsorted := []float64{3, 1, math.NaN(), 2}
	if got := NewCDF(unsorted).Quantile(1); got != 3 {
		t.Fatalf("unsorted input mis-sorted: max %g", got)
	}
	for name, s := range map[string][]float64{
		"sorted":   sorted,
		"unsorted": unsorted,
		"empty":    nil,
	} {
		if got, want := fmt.Sprint(sortedFloats(s)), fmt.Sprint(name != "unsorted"); got != want {
			t.Fatalf("sortedFloats(%s) = %s, want %s", name, got, want)
		}
	}
}
