package stats

import "math"

// tCrit95 holds two-sided 95% Student-t critical values for 1..30 degrees of
// freedom; beyond 30 the normal approximation (1.96) is close enough for the
// experiment tables this repository prints.
var tCrit95 = [30]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the 95% confidence interval for the mean of
// the accumulated samples (Student-t for small n), or 0 with fewer than two
// samples. Multi-seed experiment sweeps report their headline metrics as
// Mean() ± CI95().
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	t := 1.96
	if df := w.n - 1; df <= 30 {
		t = tCrit95[df-1]
	}
	return t * math.Sqrt(w.SampleVar()/float64(w.n))
}
