package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("zero-value histogram not empty")
	}
	for _, d := range []time.Duration{100, 200, 400, 800} {
		h.Record(d * time.Nanosecond)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 375*time.Nanosecond {
		t.Fatalf("Mean = %v, want 375ns", h.Mean())
	}
	if h.Min() != 100 || h.Max() != 800 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5 * time.Second)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative duration not clamped: min=%v max=%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	// Quantile returns a bucket upper edge: it must never be below the true
	// quantile and never above 2x (next power of two) or the observed max.
	rng := rand.New(rand.NewSource(11))
	var h Histogram
	var all []time.Duration
	for i := 0; i < 10000; i++ {
		d := time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
		h.Record(d)
		all = append(all, d)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		got := h.Quantile(q)
		// Exact nearest-rank for comparison.
		xs := append([]time.Duration(nil), all...)
		sortDurations(xs)
		rank := int(q*float64(len(xs))+0.9999) - 1
		if rank < 0 {
			rank = 0
		}
		exact := xs[rank]
		if got < exact {
			t.Fatalf("q=%v: bucketed %v < exact %v", q, got, exact)
		}
		if got > 2*exact+2 && got > h.Max() {
			t.Fatalf("q=%v: bucketed %v way above exact %v", q, got, exact)
		}
	}
}

func sortDurations(xs []time.Duration) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestHistogramMergeProperty(t *testing.T) {
	f := func(a, b []uint32) bool {
		var ha, hb, hall Histogram
		for _, v := range a {
			d := time.Duration(v)
			ha.Record(d)
			hall.Record(d)
		}
		for _, v := range b {
			d := time.Duration(v)
			hb.Record(d)
			hall.Record(d)
		}
		ha.Merge(&hb)
		return ha.Count() == hall.Count() && ha.Mean() == hall.Mean() &&
			ha.Min() == hall.Min() && ha.Max() == hall.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramStringSmokes(t *testing.T) {
	var h Histogram
	h.Record(time.Microsecond)
	h.Record(3 * time.Microsecond)
	if len(h.String()) == 0 {
		t.Fatal("empty String()")
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}
