package stats

// Aggregate is the mergeable-aggregate contract shared by every accumulator
// in this package: *Welford, *Histogram and *Sketch all satisfy it (A is
// the concrete aggregate type, S its exported state). The collector's flow
// table, the rollup tiers and the fleet raw-snapshot wire are built on
// these laws:
//
//   - Add folds one observation (latency samples travel as float64
//     nanoseconds everywhere in this repository).
//   - Merge folds another aggregate of the same type and represents the
//     union multiset of both operands' observations. It must be
//     associative and order-invariant over that multiset: Histogram and
//     Sketch hold integer bucket counters (plus min/max), so their merges
//     are bit-exact under ANY merge order, even when both operands are
//     non-empty; Welford merges are exact on the multiset semantics but
//     reassociate float sums, so bitwise equality is only guaranteed when
//     at most one operand is non-empty (the fleet tier's flow-disjoint
//     partitioning preserves exactly this).
//   - State and SetState round-trip the exact internal state, including
//     through JSON (Go encodes floats shortest-round-trip), so an
//     aggregate can cross a process boundary and be rebuilt
//     bit-identically: SetState(State()) is the identity.
type Aggregate[A, S any] interface {
	*A
	Add(x float64)
	Merge(o *A)
	State() S
	SetState(s S)
}

// FromState rebuilds an aggregate of type A from its exported state through
// the shared contract — the one generic round-trip behind WelfordFromState,
// HistogramFromState and SketchFromState.
func FromState[A, S any, P Aggregate[A, S]](s S) A {
	var a A
	P(&a).SetState(s)
	return a
}

// Compile-time proof that the three accumulators satisfy the contract
// (instantiating FromState forces constraint satisfaction).
var (
	_ = FromState[Welford, WelfordState, *Welford]
	_ = FromState[Histogram, HistogramState, *Histogram]
	_ = FromState[Sketch, SketchState, *Sketch]
)
