package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// relClose reports whether a and b agree within relative tolerance tol
// (absolute for values near zero).
func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return d <= tol
	}
	return d/scale <= tol
}

// TestWelfordShardedMergeEquivalence is the collector's merge invariant for
// Welford: splitting a stream across shards (every sample lands in exactly
// one shard, order preserved within a shard) and merging the shard
// accumulators matches sequential accumulation. Welford merging reassociates
// float additions, so equality is to a documented relative tolerance
// (1e-9, about seven orders of magnitude above ulp noise for these sizes),
// not bit-for-bit — the per-flow path IS bit-for-bit, because a flow's
// samples never split across shards.
func TestWelfordShardedMergeEquivalence(t *testing.T) {
	f := func(seed int64, shardCount uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(2000)
		shards := 1 + int(shardCount%8)
		var seq Welford
		parts := make([]Welford, shards)
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()*50e3 + 200e3 // ns-scale latency samples
			seq.Add(x)
			parts[rng.Intn(shards)].Add(x)
		}
		var merged Welford
		for _, p := range parts {
			merged.Merge(&p)
		}
		return merged.N() == seq.N() &&
			relClose(merged.Mean(), seq.Mean(), 1e-9) &&
			relClose(merged.Var(), seq.Var(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramShardedMergeEquivalence: histogram state is integral, so
// sharded merge must equal sequential accumulation exactly.
func TestHistogramShardedMergeEquivalence(t *testing.T) {
	f := func(seed int64, shardCount uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(2000)
		shards := 1 + int(shardCount%8)
		var seq Histogram
		parts := make([]Histogram, shards)
		for i := 0; i < n; i++ {
			d := time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
			seq.Record(d)
			parts[rng.Intn(shards)].Record(d)
		}
		var merged Histogram
		for i := range parts {
			merged.Merge(&parts[i])
		}
		return merged == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestCDFMergeEquivalence: merging partial CDFs must hold exactly the sample
// multiset of one CDF over the concatenated stream, bit-for-bit.
func TestCDFMergeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500)
		all := make([]float64, 0, n)
		var a, b []float64
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()
			switch rng.Intn(10) {
			case 0:
				x = math.NaN()
			case 1:
				x = math.Inf(1)
			}
			all = append(all, x)
			if rng.Intn(2) == 0 {
				a = append(a, x)
			} else {
				b = append(b, x)
			}
		}
		merged := NewCDF(a).Merge(NewCDF(b))
		want := NewCDF(all)
		if merged.N() != want.N() {
			return false
		}
		for i := range merged.sorted {
			if math.Float64bits(merged.sorted[i]) != math.Float64bits(want.sorted[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// cdfBitsEqual compares two CDFs sample-for-sample at the bit level (so NaN
// payloads and signed zeros count too).
func cdfBitsEqual(a, b *CDF) bool {
	if len(a.sorted) != len(b.sorted) {
		return false
	}
	for i := range a.sorted {
		if math.Float64bits(a.sorted[i]) != math.Float64bits(b.sorted[i]) {
			return false
		}
	}
	return true
}

// TestCDFMergeAssociativeOrderInvariant is the fleet front-end's merge
// contract, stated as a property: split one sample stream into random
// shards, then merge the shard CDFs (a) as a left fold in shard order and
// (b) as a randomly shuffled, randomly associated pairwise reduction — both
// must equal one CDF built over the whole stream bit-for-bit. This is what
// lets rlirfleet merge per-instance error distributions in whatever order
// the scatter-gather responses land.
func TestCDFMergeAssociativeOrderInvariant(t *testing.T) {
	f := func(seed int64, shardCount uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(600)
		shards := 1 + int(shardCount%6)
		parts := make([][]float64, shards)
		all := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()
			switch rng.Intn(12) {
			case 0:
				x = math.NaN()
			case 1:
				x = math.Inf(1)
			}
			all = append(all, x)
			s := rng.Intn(shards)
			parts[s] = append(parts[s], x)
		}
		want := NewCDF(all)
		left := NewCDF(parts[0])
		for _, p := range parts[1:] {
			left = left.Merge(NewCDF(p))
		}
		cs := make([]*CDF, shards)
		for i, p := range parts {
			cs[i] = NewCDF(p)
		}
		rng.Shuffle(len(cs), func(i, j int) { cs[i], cs[j] = cs[j], cs[i] })
		for len(cs) > 1 {
			i := rng.Intn(len(cs) - 1)
			cs[i] = cs[i].Merge(cs[i+1])
			cs = append(cs[:i+1], cs[i+2:]...)
		}
		return cdfBitsEqual(left, want) && cdfBitsEqual(cs[0], want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCDFMergeLeavesInputsIntact pins that Merge does not alias or mutate
// either input.
func TestCDFMergeLeavesInputsIntact(t *testing.T) {
	a := NewCDF([]float64{3, 1})
	b := NewCDF([]float64{2})
	m := a.Merge(b)
	if a.N() != 2 || b.N() != 1 || m.N() != 3 {
		t.Fatalf("sizes changed: a=%d b=%d m=%d", a.N(), b.N(), m.N())
	}
	if a.Min() != 1 || a.Max() != 3 || b.Min() != 2 {
		t.Fatalf("inputs mutated: a=[%v,%v] b=[%v]", a.Min(), a.Max(), b.Min())
	}
	if m.Min() != 1 || m.Median() != 2 || m.Max() != 3 {
		t.Fatalf("bad merge: %v %v %v", m.Min(), m.Median(), m.Max())
	}
}

func TestWelfordCI95(t *testing.T) {
	var w Welford
	if w.CI95() != 0 {
		t.Fatalf("empty CI95 = %v, want 0", w.CI95())
	}
	w.Add(1)
	if w.CI95() != 0 {
		t.Fatalf("n=1 CI95 = %v, want 0", w.CI95())
	}
	// n=2, samples {1, 3}: mean 2, sample var 2, se = 1, t(df=1) = 12.706.
	w.Add(3)
	if got := w.CI95(); !relClose(got, 12.706, 1e-12) {
		t.Fatalf("CI95 = %v, want 12.706", got)
	}
	// Large n converges to the normal 1.96 * se.
	var big Welford
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		big.Add(rng.NormFloat64())
	}
	se := math.Sqrt(big.SampleVar() / float64(big.N()))
	if got := big.CI95(); !relClose(got, 1.96*se, 1e-12) {
		t.Fatalf("large-n CI95 = %v, want %v", got, 1.96*se)
	}
}
