// Package stats provides the statistical primitives used throughout the RLIR
// reproduction: single-pass mean/variance accumulators, empirical CDFs,
// log-bucketed latency histograms, and the relative-error metric the paper
// reports.
package stats

import "math"

// Welford is a single-pass, numerically stable accumulator for mean and
// variance (Welford's online algorithm). The zero value is ready to use.
//
// Both the RLI receiver (estimated per-packet delays) and the ground-truth
// collector (actual per-packet delays) maintain one Welford per flow, so the
// accumulator is deliberately small: 24 bytes.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds a sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// AddN folds the same sample n times. It is used when a single interpolated
// delay stands for several identical observations.
func (w *Welford) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		w.Add(x)
	}
}

// Merge combines another accumulator into w (Chan et al. parallel variant).
// Merging is exact on the multiset semantics but reassociates float sums:
// bitwise determinism holds only when at most one operand is non-empty
// (see the Aggregate contract). o is not modified.
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// WelfordState is the exported internal state of a Welford accumulator —
// exactly the three fields of the online algorithm. It exists so an
// accumulator can cross a process boundary (the fleet raw-snapshot wire)
// and be rebuilt bit-identically; Go's JSON float encoding is shortest
// round-trip, so State → JSON → WelfordFromState loses nothing.
type WelfordState struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// State returns the accumulator's exact internal state.
func (w *Welford) State() WelfordState {
	return WelfordState{N: w.n, Mean: w.mean, M2: w.m2}
}

// SetState rebuilds the accumulator from exported state, bit-identical to
// the accumulator State was called on.
func (w *Welford) SetState(s WelfordState) {
	*w = Welford{n: s.N, mean: s.Mean, m2: s.M2}
}

// WelfordFromState rebuilds an accumulator bit-identical to the one State
// was called on (the generic FromState round-trip).
func WelfordFromState(s WelfordState) Welford {
	return FromState[Welford](s)
}

// N returns the number of samples.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean, or 0 with no samples.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance (dividing by n, not n-1), or 0 with
// fewer than one sample. The paper's per-flow standard deviation estimates
// are population statistics over the packets of a flow, so population
// variance is the matching definition.
func (w *Welford) Var() float64 {
	if w.n < 1 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVar returns the Bessel-corrected sample variance, or 0 with fewer
// than two samples.
func (w *Welford) SampleVar() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// RelErr returns |est-truth|/|truth|, the paper's accuracy metric
// ("relative error"). When truth is zero: 0 if est is also zero (a perfect
// estimate of nothing), +Inf otherwise.
func RelErr(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}
