package stats

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"
)

// TestWelfordStateRoundTrip pins the State/WelfordFromState pair as an exact
// round-trip, including through JSON — the property the fleet raw-snapshot
// wire depends on for bit-identical merged flow tables.
func TestWelfordStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var w Welford
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			w.Add(rng.NormFloat64() * 1e6)
		}
		got := WelfordFromState(w.State())
		if got != w {
			t.Fatalf("trial %d: State round-trip diverged: %+v != %+v", trial, got, w)
		}
		data, err := json.Marshal(w.State())
		if err != nil {
			t.Fatal(err)
		}
		var s WelfordState
		if err := json.Unmarshal(data, &s); err != nil {
			t.Fatal(err)
		}
		if WelfordFromState(s) != w {
			t.Fatalf("trial %d: JSON round-trip diverged: %+v != %+v", trial, WelfordFromState(s), w)
		}
	}
}

// TestHistogramStateRoundTrip pins the histogram state round-trip, direct
// and through JSON, for random streams including the empty histogram.
func TestHistogramStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var h Histogram
		n := rng.Intn(300)
		for i := 0; i < n; i++ {
			h.Record(time.Duration(rng.Int63n(int64(10 * time.Second))))
		}
		got := HistogramFromState(h.State())
		if got != h {
			t.Fatalf("trial %d: State round-trip diverged", trial)
		}
		data, err := json.Marshal(h.State())
		if err != nil {
			t.Fatal(err)
		}
		var s HistogramState
		if err := json.Unmarshal(data, &s); err != nil {
			t.Fatal(err)
		}
		if HistogramFromState(s) != h {
			t.Fatalf("trial %d: JSON round-trip diverged", trial)
		}
	}
}

// TestHistogramStateTrimsTrailingZeros checks the sparse encoding: the
// bucket slice stops at the last non-empty bucket, and absent buckets decode
// as zero.
func TestHistogramStateTrimsTrailingZeros(t *testing.T) {
	var h Histogram
	h.Record(3) // bucket 1
	s := h.State()
	if len(s.Buckets) != 2 {
		t.Fatalf("Buckets = %v, want length 2 (trimmed at last non-zero)", s.Buckets)
	}
	var empty Histogram
	if got := empty.State(); got.Buckets != nil {
		t.Fatalf("empty histogram state has buckets %v", got.Buckets)
	}
	if HistogramFromState(HistogramState{}) != empty {
		t.Fatal("zero state does not decode to zero histogram")
	}
}

// TestHistogramFromStateTruncatesOversizedBuckets guards the decoder against
// a wire peer sending more than 64 buckets.
func TestHistogramFromStateTruncatesOversizedBuckets(t *testing.T) {
	s := HistogramState{Buckets: make([]uint64, 100), Count: 1}
	s.Buckets[0] = 1
	s.Buckets[99] = 7 // out of range; must be dropped, not panic
	h := HistogramFromState(s)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
}
