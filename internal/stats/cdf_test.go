package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4})
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.FracBelow(2); got != 0.5 {
		t.Fatalf("FracBelow(2) = %v, want 0.5", got)
	}
	if got := c.FracBelow(0.5); got != 0 {
		t.Fatalf("FracBelow(0.5) = %v, want 0", got)
	}
	if got := c.FracBelow(4); got != 1 {
		t.Fatalf("FracBelow(4) = %v, want 1", got)
	}
	if got := c.Median(); got != 2 {
		t.Fatalf("Median = %v, want 2", got)
	}
	if c.Min() != 1 || c.Max() != 4 {
		t.Fatalf("Min/Max = %v/%v", c.Min(), c.Max())
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	in := []float64{5, 1}
	c := NewCDF(in)
	in[0] = -100
	if c.Max() != 5 {
		t.Fatal("CDF aliased caller's slice")
	}
}

func TestQuantileNearestRank(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	cases := []struct{ q, want float64 }{
		{0, 10}, {0.2, 10}, {0.21, 20}, {0.5, 30}, {0.8, 40}, {0.81, 50}, {1, 50},
	}
	for _, tc := range cases {
		if got := c.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty CDF")
		}
	}()
	NewCDF(nil).Quantile(0.5)
}

func TestFracBelowMonotoneProperty(t *testing.T) {
	f := func(raw []float64, probe1, probe2 float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 || math.IsNaN(probe1) || math.IsNaN(probe2) {
			return true
		}
		c := NewCDF(xs)
		lo, hi := probe1, probe2
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.FracBelow(lo) <= c.FracBelow(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileFracBelowInverseProperty(t *testing.T) {
	// FracBelow(Quantile(q)) >= q for all q in (0,1].
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	c := NewCDF(xs)
	for q := 0.01; q <= 1.0; q += 0.01 {
		if got := c.FracBelow(c.Quantile(q)); got < q-1e-12 {
			t.Fatalf("FracBelow(Quantile(%v)) = %v < q", q, got)
		}
	}
}

func TestPoints(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	c := NewCDF(xs)
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points = %d, want 5", len(pts))
	}
	if pts[0].X != 1 || pts[len(pts)-1].X != 10 {
		t.Fatalf("endpoints = %v, %v", pts[0], pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y || pts[i].X < pts[i-1].X {
			t.Fatalf("points not monotone: %v", pts)
		}
	}
	if got := c.Points(100); len(got) != len(xs) {
		t.Fatalf("Points(100) on 10 samples = %d points", len(got))
	}
	if NewCDF(nil).Points(5) != nil {
		t.Fatal("Points on empty CDF should be nil")
	}
}

func TestLogPoints(t *testing.T) {
	c := NewCDF([]float64{0.001, 0.01, 0.1, 1, 10})
	pts := c.LogPoints(1e-3, 1e1, 5)
	if len(pts) != 5 {
		t.Fatalf("LogPoints = %d points", len(pts))
	}
	// x values should be 1e-3..1e1 log spaced.
	wantX := []float64{1e-3, 1e-2, 1e-1, 1, 10}
	for i := range pts {
		if math.Abs(pts[i].X-wantX[i])/wantX[i] > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, pts[i].X, wantX[i])
		}
	}
	if pts[4].Y != 1 {
		t.Fatalf("final Y = %v, want 1", pts[4].Y)
	}
}

func TestRenderSmokes(t *testing.T) {
	c := NewCDF([]float64{0.01, 0.02, 0.5, 1.2})
	out := c.Render("test", 1e-3, 1e1, 6)
	if len(out) == 0 {
		t.Fatal("empty render")
	}
}

func TestCDFSortedInternally(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	c := NewCDF(xs)
	if !sort.Float64sAreSorted(c.sorted) {
		t.Fatal("internal samples not sorted")
	}
}
