package stats

import (
	"fmt"
	"math"
	"time"
)

// Sketch is a bounded-memory quantile sketch over non-negative latency
// values (float64 nanoseconds), DDSketch-style with a fixed log-linear
// bucket layout: each power-of-two octave is subdivided into 32 linear
// subbuckets, values in [0, 1) land in a dedicated zero bucket (latencies
// are integer nanoseconds, so those values are exactly 0). The layout is
// structural — bucket i's bounds depend only on i, never on the data — so
// the sketch never rebalances and two sketches always merge by elementwise
// counter addition: Merge is bit-exact under any merge order, even when
// both operands are non-empty (a stronger property than Welford's, and the
// one the fleet tier's rollup merging relies on).
//
// Memory is bounded by construction: the counter window spans only the
// buckets between the smallest and largest observed values (a flow whose
// latencies span one order of magnitude touches ~110 buckets) and can
// never exceed SketchMaxBuckets entries regardless of how many samples are
// added — unlike an exact CDF, whose memory grows linearly with samples.
//
// Accuracy: Quantile returns the midpoint of the bucket holding the exact
// nearest-rank sample, so its relative error vs the exact CDF quantile is
// at most SketchRelErrBound (1/64 ≈ 1.6%); values in [0, 1) are returned
// as exactly 0. The bound is pinned by property test against stats.CDF.
//
// The zero value is ready to use.
type Sketch struct {
	zero    uint64 // observations in [0, 1) ns, represented exactly as 0
	count   uint64
	base    int32 // bucket index of buckets[0]
	buckets []uint64
	min     float64
	max     float64
}

const (
	sketchSubBits    = 5
	sketchSubBuckets = 1 << sketchSubBits // 32 linear subbuckets per octave

	// SketchMaxBuckets is the structural ceiling on a sketch's counter
	// window: 64 octaves x 32 subbuckets. A sketch can never allocate more
	// bucket counters than this, whatever its input.
	SketchMaxBuckets = 64 * sketchSubBuckets

	// SketchRelErrBound is the worst-case relative error of Quantile vs the
	// exact nearest-rank quantile over the same samples: half a bucket's
	// width over its lower bound, (2^o/32/2) / 2^o = 1/64.
	SketchRelErrBound = 1.0 / 64
)

// sketchIndex maps a value >= 1 to its bucket: octave (floor log2) times 32
// plus the linear subbucket within the octave.
func sketchIndex(v float64) int {
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	octave := exp - 1
	if octave > 63 {
		return SketchMaxBuckets - 1
	}
	sub := int((frac*2 - 1) * sketchSubBuckets)
	if sub >= sketchSubBuckets {
		sub = sketchSubBuckets - 1
	}
	return octave<<sketchSubBits | sub
}

// sketchValue is bucket idx's representative: the midpoint of its bounds
// [2^o(1+s/32), 2^o(1+(s+1)/32)).
func sketchValue(idx int) float64 {
	octave := idx >> sketchSubBits
	sub := idx & (sketchSubBuckets - 1)
	lo := math.Ldexp(1+float64(sub)/sketchSubBuckets, octave)
	hi := math.Ldexp(1+float64(sub+1)/sketchSubBuckets, octave)
	return (lo + hi) / 2
}

// Add folds one observation. Negative and NaN values are clamped to zero
// (they can only arise from clock desynchronization, tracked separately by
// callers), matching Histogram.Record; values in [0, 1) collapse to exactly
// 0 — min/max included — since latencies are integer nanoseconds.
func (s *Sketch) Add(x float64) {
	if x < 1 || math.IsNaN(x) {
		x = 0 // sub-1ns values are represented exactly as 0 (the zero bucket)
	}
	if s.count == 0 || x < s.min {
		s.min = x
	}
	if s.count == 0 || x > s.max {
		s.max = x
	}
	s.count++
	if x < 1 {
		s.zero++
		return
	}
	idx := sketchIndex(x)
	s.ensure(idx, idx)
	s.buckets[idx-int(s.base)]++
}

// Record adds one duration (the time.Duration face of Add).
func (s *Sketch) Record(d time.Duration) { s.Add(float64(d)) }

// ensure grows the counter window to cover bucket indices [lo, hi]. The
// window's ends always hold non-zero counters (counters only grow, and a
// window only extends to a bucket that is immediately incremented), so the
// representation is a pure function of the observed multiset — what makes
// DeepEqual comparisons and bit-exact merges possible.
func (s *Sketch) ensure(lo, hi int) {
	if s.buckets == nil {
		s.base = int32(lo)
		s.buckets = make([]uint64, hi-lo+1)
		return
	}
	b := int(s.base)
	end := b + len(s.buckets) - 1
	if lo >= b && hi <= end {
		return
	}
	nb, ne := b, end
	if lo < nb {
		nb = lo
	}
	if hi > ne {
		ne = hi
	}
	grown := make([]uint64, ne-nb+1)
	copy(grown[b-nb:], s.buckets)
	s.base = int32(nb)
	s.buckets = grown
}

// Merge folds o into s. Elementwise integer addition over an aligned
// window plus min/max comparisons: exactly associative and commutative, so
// any merge order over any partition of a stream yields the identical
// sketch. o is not modified.
func (s *Sketch) Merge(o *Sketch) {
	if o.count == 0 {
		return
	}
	if s.count == 0 {
		s.zero, s.count, s.base = o.zero, o.count, o.base
		s.min, s.max = o.min, o.max
		s.buckets = append([]uint64(nil), o.buckets...)
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.zero += o.zero
	s.count += o.count
	if len(o.buckets) > 0 {
		s.ensure(int(o.base), int(o.base)+len(o.buckets)-1)
		off := int(o.base) - int(s.base)
		for i, c := range o.buckets {
			s.buckets[off+i] += c
		}
	}
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 { return s.count }

// Min returns the smallest observation (exact, not bucketed).
func (s *Sketch) Min() float64 { return s.min }

// Max returns the largest observation (exact, not bucketed).
func (s *Sketch) Max() float64 { return s.max }

// Buckets returns the number of allocated bucket counters — the sketch's
// memory footprint in window entries (<= SketchMaxBuckets).
func (s *Sketch) Buckets() int { return len(s.buckets) }

// Quantile returns the q-quantile (0 <= q <= 1) under nearest-rank
// semantics: the representative of the bucket holding the q-th ranked
// observation, within SketchRelErrBound of the exact sample. An empty
// sketch returns 0; out-of-range q panics, matching CDF.Quantile.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	rank := uint64(math.Ceil(q * float64(s.count)))
	if rank == 0 {
		rank = 1
	}
	if rank <= s.zero {
		return 0
	}
	seen := s.zero
	for i, c := range s.buckets {
		seen += c
		if seen >= rank {
			return sketchValue(int(s.base) + i)
		}
	}
	return s.max
}

// QuantileDuration returns Quantile as a duration, rounded down.
func (s *Sketch) QuantileDuration(q float64) time.Duration {
	return time.Duration(s.Quantile(q))
}

// SketchState is the exported internal state of a Sketch: the counter
// window verbatim plus the scalar fields. Like WelfordState and
// HistogramState it exists for the fleet raw-snapshot wire — State → JSON →
// SketchFromState is bit-identical.
type SketchState struct {
	Zero    uint64   `json:"zero,omitempty"`
	Count   uint64   `json:"count"`
	Base    int32    `json:"base,omitempty"`
	Buckets []uint64 `json:"buckets,omitempty"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
}

// State returns the sketch's exact internal state.
func (s *Sketch) State() SketchState {
	st := SketchState{Zero: s.zero, Count: s.count, Base: s.base, Min: s.min, Max: s.max}
	if len(s.buckets) > 0 {
		st.Buckets = append([]uint64(nil), s.buckets...)
	}
	return st
}

// SetState rebuilds the sketch from exported state, bit-identical to the
// sketch State was called on. A wire peer's window that falls outside the
// structural bucket range is truncated defensively, never trusted to
// allocate unboundedly.
func (s *Sketch) SetState(st SketchState) {
	*s = Sketch{zero: st.Zero, count: st.Count, base: st.Base, min: st.Min, max: st.Max}
	n := len(st.Buckets)
	if st.Base < 0 {
		s.base, n = 0, 0 // nonsense window: drop it rather than index negatively
	}
	if max := SketchMaxBuckets - int(s.base); n > max {
		n = max
	}
	if n > 0 {
		s.buckets = append([]uint64(nil), st.Buckets[:n]...)
	}
}

// SketchFromState rebuilds a sketch from exported state (the generic
// FromState round-trip).
func SketchFromState(s SketchState) Sketch {
	return FromState[Sketch](s)
}
