package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an exact empirical cumulative distribution function over a finite
// sample, the form in which the paper presents every accuracy result
// (Figures 4(a)-4(c)).
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from the given samples. The input slice is copied —
// one O(n) allocation plus an O(n log n) sort per call — so build a CDF
// once and reuse Quantile/FracBelow/Median (each O(log n) or O(1)) rather
// than rebuilding per query. Input that is already sorted (for example the
// sample multiset of a Merge result, which Merge keeps sorted) skips the
// sort entirely. Non-finite samples (NaN, ±Inf) are kept and sorted to the
// extremes so that flows with undefined relative error still count in the
// denominator, exactly as a plotted CDF that never reaches 1.0 would show
// them.
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	if !sortedFloats(s) {
		sort.Float64s(s) // sort.Float64s orders NaNs first; treat below.
	}
	return &CDF{sorted: s}
}

// sortedFloats reports whether s is already in sort.Float64s order (NaNs
// first, then ascending) — the O(n) check that lets NewCDF skip re-sorting
// pre-sorted input.
func sortedFloats(s []float64) bool {
	for i := 1; i < len(s); i++ {
		if floatBefore(s[i], s[i-1]) {
			return false
		}
	}
	return true
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.sorted) }

// FracBelow returns the fraction of samples <= x. With no samples it
// returns 0.
func (c *CDF) FracBelow(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Merge returns a new CDF over the union multiset of both sample sets.
// Merging is a single O(n+m) linear merge of the two sorted slices under
// sort.Float64s's ordering (NaNs first, then ascending) — never a re-sort —
// so Merge(a, b) holds exactly the samples NewCDF(append(a.samples,
// b.samples...)) would: merging partial CDFs (per-shard or per-run error
// distributions) equals building one CDF over the whole stream. Neither
// input is modified.
func (c *CDF) Merge(o *CDF) *CDF {
	merged := make([]float64, 0, len(c.sorted)+len(o.sorted))
	i, j := 0, 0
	for i < len(c.sorted) && j < len(o.sorted) {
		if floatBefore(c.sorted[i], o.sorted[j]) {
			merged = append(merged, c.sorted[i])
			i++
		} else {
			merged = append(merged, o.sorted[j])
			j++
		}
	}
	merged = append(merged, c.sorted[i:]...)
	merged = append(merged, o.sorted[j:]...)
	return &CDF{sorted: merged}
}

// floatBefore replicates sort.Float64s's ordering predicate: NaNs sort
// before everything, then ascending values.
func floatBefore(x, y float64) bool {
	return x < y || (math.IsNaN(x) && !math.IsNaN(y))
}

// Quantile returns the q-quantile (0 <= q <= 1) using the nearest-rank
// method. It panics on an empty CDF or out-of-range q.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		panic("stats: quantile of empty CDF")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Median returns the 0.5-quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Min returns the smallest sample.
func (c *CDF) Min() float64 { return c.Quantile(0) }

// Max returns the largest sample.
func (c *CDF) Max() float64 { return c.Quantile(1) }

// Point is one (x, y) coordinate of a CDF curve: fraction y of samples are
// <= value x.
type Point struct {
	X float64
	Y float64
}

// Points returns up to n evenly spaced (in rank) points of the curve,
// suitable for plotting. The first and last samples are always included.
func (c *CDF) Points(n int) []Point {
	m := len(c.sorted)
	if m == 0 || n <= 0 {
		return nil
	}
	if n > m {
		n = m
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		rank := i * (m - 1) / max(n-1, 1)
		pts = append(pts, Point{X: c.sorted[rank], Y: float64(rank+1) / float64(m)})
	}
	return pts
}

// LogPoints returns the curve sampled at n logarithmically spaced x values
// between lo and hi (inclusive), matching the log-x axes of Figure 4.
func (c *CDF) LogPoints(lo, hi float64, n int) []Point {
	if lo <= 0 || hi <= lo || n < 2 {
		panic("stats: LogPoints requires 0 < lo < hi and n >= 2")
	}
	pts := make([]Point, 0, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	x := lo
	for i := 0; i < n; i++ {
		pts = append(pts, Point{X: x, Y: c.FracBelow(x)})
		x *= ratio
	}
	return pts
}

// Render draws an ASCII CDF table of the curve at logarithmic x ticks; it is
// the textual stand-in for the paper's figures.
func (c *CDF) Render(label string, lo, hi float64, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s n=%d median=%.4g\n", label, c.N(), c.Median())
	for _, p := range c.LogPoints(lo, hi, n) {
		bar := strings.Repeat("#", int(p.Y*40+0.5))
		fmt.Fprintf(&b, "  x<=%-10.3g %6.1f%% %s\n", p.X, p.Y*100, bar)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
