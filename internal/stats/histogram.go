package stats

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"time"
)

// Histogram is a log2-bucketed latency histogram: bucket i holds durations
// d with 2^i ns <= d < 2^(i+1) ns (bucket 0 additionally holds 0 and 1 ns).
// It gives a constant-memory view of a latency distribution with <= 100%
// relative quantile error per bucket, which is plenty for the operator-facing
// dashboards this library targets; exact per-flow statistics use Welford.
//
// The zero value is ready to use.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     int64
	min     int64
	max     int64
}

func bucketOf(d time.Duration) int {
	if d <= 1 {
		return 0
	}
	return bits.Len64(uint64(d)) - 1
}

// Add folds one observation in float64 nanoseconds (the Aggregate contract
// face of Record). Negative and NaN values clamp to zero like Record.
func (h *Histogram) Add(x float64) {
	if x < 0 || math.IsNaN(x) {
		x = 0
	}
	h.Record(time.Duration(x))
}

// Record adds one duration. Negative durations are clamped to zero; they can
// only arise from clock desynchronization, which the caller tracks separately.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if h.count == 0 || int64(d) < h.min {
		h.min = int64(d)
	}
	if h.count == 0 || int64(d) > h.max {
		h.max = int64(d)
	}
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += int64(d)
}

// HistogramState is the exported internal state of a Histogram: the prefix
// of the log2 buckets up to the last non-empty one, plus the exact
// count/sum/min/max scalars. Like stats.WelfordState it exists for the fleet
// raw-snapshot wire: State → JSON → HistogramFromState is bit-identical.
type HistogramState struct {
	Buckets []uint64 `json:"buckets,omitempty"`
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
}

// State returns the histogram's exact internal state; Buckets is trimmed at
// the last non-zero bucket.
func (h *Histogram) State() HistogramState {
	last := -1
	for i, c := range h.buckets {
		if c != 0 {
			last = i
		}
	}
	s := HistogramState{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if last >= 0 {
		s.Buckets = append([]uint64(nil), h.buckets[:last+1]...)
	}
	return s
}

// SetState rebuilds the histogram from exported state, bit-identical to the
// histogram State was called on. State slices longer than the 64 log2
// buckets are truncated.
func (h *Histogram) SetState(s HistogramState) {
	*h = Histogram{}
	n := len(s.Buckets)
	if n > len(h.buckets) {
		n = len(h.buckets)
	}
	copy(h.buckets[:n], s.Buckets[:n])
	h.count, h.sum, h.min, h.max = s.Count, s.Sum, s.Min, s.Max
}

// HistogramFromState rebuilds a histogram bit-identical to the one State was
// called on (the generic FromState round-trip).
func HistogramFromState(s HistogramState) Histogram {
	return FromState[Histogram](s)
}

// Count returns the number of recorded durations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact mean of recorded durations.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.count))
}

// Min returns the smallest recorded duration.
func (h *Histogram) Min() time.Duration { return time.Duration(h.min) }

// Max returns the largest recorded duration.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns an upper bound for the q-quantile: the top edge of the
// bucket containing the q-th ranked sample, clamped to the observed maximum.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			edge := int64(1) << uint(i+1)
			if edge > h.max {
				edge = h.max
			}
			return time.Duration(edge)
		}
	}
	return time.Duration(h.max)
}

// Merge adds the contents of o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	if h.count == 0 {
		*h = *o
		return
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// String renders the non-empty buckets with proportional bars.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "histogram n=%d mean=%v min=%v max=%v\n", h.count, h.Mean(), h.Min(), h.Max())
	if h.count == 0 {
		return b.String()
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo := time.Duration(int64(1) << uint(i))
		if i == 0 {
			lo = 0
		}
		frac := float64(c) / float64(h.count)
		fmt.Fprintf(&b, "  [%12v, %12v) %8d %5.1f%% %s\n",
			lo, time.Duration(int64(1)<<uint(i+1)), c, frac*100, strings.Repeat("#", int(frac*50+0.5)))
	}
	return b.String()
}
