// Package crossinject implements the paper's cross-traffic injector
// (§4.1, Figure 3).
//
// Cross traffic does not pass the RLI sender's switch; it merges at the
// downstream (bottleneck) switch and raises that link's utilization to a
// level the sender cannot observe. The injector thins or gates a cross
// trace with one of the paper's two selection models:
//
//   - Uniform ("random"): each packet is kept independently with probability
//     p, producing persistent congestion.
//   - Bursty: traffic is admitted only during on-periods of a fixed
//     duration, producing alternating congestion episodes at the same
//     average load.
package crossinject

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/netmeasure/rlir/internal/simtime"
	"github.com/netmeasure/rlir/internal/trace"
)

// Model selects which cross-traffic packets are admitted.
type Model interface {
	// Admit reports whether the packet released at instant at passes.
	Admit(at simtime.Time) bool
	Name() string
}

// Uniform admits each packet independently with probability P — the paper's
// "random" model.
type Uniform struct {
	P    float64
	rng  *rand.Rand
	seed int64
}

// NewUniform builds a uniform model with keep probability p.
func NewUniform(p float64, seed int64) *Uniform {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("crossinject: probability %v outside [0,1]", p))
	}
	return &Uniform{P: p, rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Admit implements Model.
func (u *Uniform) Admit(simtime.Time) bool { return u.rng.Float64() < u.P }

// Name implements Model.
func (u *Uniform) Name() string { return fmt.Sprintf("uniform(p=%.3f)", u.P) }

// Bursty admits packets only during on-periods: the first OnDuration of
// every Period. Within an on-period, packets are additionally kept with
// probability P (the paper sets an injection duration and a selection
// probability; both knobs together set the average utilization).
type Bursty struct {
	OnDuration time.Duration
	Period     time.Duration
	P          float64
	rng        *rand.Rand
}

// NewBursty builds a bursty model. OnDuration must not exceed Period.
func NewBursty(on, period time.Duration, p float64, seed int64) *Bursty {
	if on <= 0 || period <= 0 || on > period {
		panic(fmt.Sprintf("crossinject: invalid burst timing on=%v period=%v", on, period))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("crossinject: probability %v outside [0,1]", p))
	}
	return &Bursty{OnDuration: on, Period: period, P: p, rng: rand.New(rand.NewSource(seed))}
}

// Admit implements Model.
func (b *Bursty) Admit(at simtime.Time) bool {
	phase := time.Duration(int64(at) % int64(b.Period))
	if phase >= b.OnDuration {
		return false
	}
	return b.rng.Float64() < b.P
}

// Name implements Model.
func (b *Bursty) Name() string {
	return fmt.Sprintf("bursty(on=%v/%v,p=%.3f)", b.OnDuration, b.Period, b.P)
}

// Source filters a cross-traffic trace through a model. It is itself a
// trace.Source.
type Source struct {
	src   trace.Source
	model Model

	offered  uint64
	admitted uint64
}

// NewSource wraps src with the model.
func NewSource(src trace.Source, model Model) *Source {
	return &Source{src: src, model: model}
}

// Next implements trace.Source.
func (s *Source) Next() (trace.Rec, bool) {
	for {
		r, ok := s.src.Next()
		if !ok {
			return trace.Rec{}, false
		}
		s.offered++
		if s.model.Admit(r.At) {
			s.admitted++
			return r, true
		}
	}
}

// Offered returns how many packets the underlying trace presented.
func (s *Source) Offered() uint64 { return s.offered }

// Admitted returns how many packets passed the model.
func (s *Source) Admitted() uint64 { return s.admitted }

// KeepProbabilityFor computes the uniform keep probability that raises a
// bottleneck link to the target utilization, given the link rate, the
// regular traffic's offered rate and the full cross trace's offered rate —
// the calibration the paper performs by "controlling the number of cross
// traffic packets". The result is clamped to [0, 1].
func KeepProbabilityFor(targetUtil, linkBps, regularBps, crossBps float64) float64 {
	if targetUtil < 0 || linkBps <= 0 || crossBps <= 0 {
		panic("crossinject: invalid calibration inputs")
	}
	p := (targetUtil*linkBps - regularBps) / crossBps
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// BurstyParamsFor computes (keep probability within bursts) for a bursty
// model with the given duty cycle so the average utilization matches the
// uniform calibration: within an on-period the instantaneous admitted rate
// is scaled up by 1/duty to compensate for the off time. May exceed what the
// cross trace can supply, in which case it is clamped and the achieved
// utilization falls short — exactly as a real bursty source would saturate.
func BurstyParamsFor(targetUtil, linkBps, regularBps, crossBps float64, on, period time.Duration) float64 {
	duty := float64(on) / float64(period)
	if duty <= 0 || duty > 1 {
		panic("crossinject: invalid duty cycle")
	}
	return clamp01(KeepProbabilityFor(targetUtil, linkBps, regularBps, crossBps) / duty)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
