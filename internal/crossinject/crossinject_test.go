package crossinject

import (
	"math"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/simtime"
	"github.com/netmeasure/rlir/internal/trace"
)

// flatTrace yields n packets evenly spaced over dur.
func flatTrace(n int, dur time.Duration) trace.Source {
	recs := make([]trace.Rec, n)
	for i := range recs {
		recs[i] = trace.Rec{
			At:   simtime.Time(int64(dur) * int64(i) / int64(n)),
			Size: 1000,
		}
	}
	return trace.NewSliceSource(recs)
}

func TestUniformKeepFraction(t *testing.T) {
	const n = 100000
	s := NewSource(flatTrace(n, time.Second), NewUniform(0.3, 7))
	kept := len(trace.Collect(s, 0))
	if frac := float64(kept) / n; math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("kept fraction = %v, want ~0.3", frac)
	}
	if s.Offered() != n || s.Admitted() != uint64(kept) {
		t.Fatalf("counters offered=%d admitted=%d kept=%d", s.Offered(), s.Admitted(), kept)
	}
}

func TestUniformEdgeProbabilities(t *testing.T) {
	if got := len(trace.Collect(NewSource(flatTrace(1000, time.Second), NewUniform(0, 1)), 0)); got != 0 {
		t.Fatalf("p=0 kept %d", got)
	}
	if got := len(trace.Collect(NewSource(flatTrace(1000, time.Second), NewUniform(1, 1)), 0)); got != 1000 {
		t.Fatalf("p=1 kept %d", got)
	}
}

func TestUniformDeterministicBySeed(t *testing.T) {
	a := trace.Collect(NewSource(flatTrace(5000, time.Second), NewUniform(0.5, 42)), 0)
	b := trace.Collect(NewSource(flatTrace(5000, time.Second), NewUniform(0.5, 42)), 0)
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different selections")
		}
	}
}

func TestBurstyGatesByPhase(t *testing.T) {
	// 10ms on per 100ms period, p=1: only the first tenth of each period
	// passes.
	m := NewBursty(10*time.Millisecond, 100*time.Millisecond, 1, 1)
	s := NewSource(flatTrace(100000, time.Second), m)
	kept := trace.Collect(s, 0)
	frac := float64(len(kept)) / 100000
	if math.Abs(frac-0.1) > 0.01 {
		t.Fatalf("kept fraction = %v, want ~0.1", frac)
	}
	for _, r := range kept {
		phase := time.Duration(int64(r.At) % int64(100*time.Millisecond))
		if phase >= 10*time.Millisecond {
			t.Fatalf("packet admitted at off-phase %v", phase)
		}
	}
}

func TestBurstyProducesBurstsNotThinning(t *testing.T) {
	// At equal average load, bursty admission keeps consecutive packets
	// together: the admitted inter-arrival distribution must contain long
	// gaps (off periods), which uniform thinning at the same rate does not.
	on, period := 5*time.Millisecond, 50*time.Millisecond
	bursty := trace.Collect(NewSource(flatTrace(100000, time.Second), NewBursty(on, period, 1, 1)), 0)
	uniform := trace.Collect(NewSource(flatTrace(100000, time.Second), NewUniform(0.1, 1)), 0)

	maxGap := func(recs []trace.Rec) time.Duration {
		var m time.Duration
		for i := 1; i < len(recs); i++ {
			if g := recs[i].At.Sub(recs[i-1].At); g > m {
				m = g
			}
		}
		return m
	}
	if bg, ug := maxGap(bursty), maxGap(uniform); bg < 10*ug {
		t.Fatalf("bursty max gap %v not much larger than uniform %v", bg, ug)
	}
}

func TestModelValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewUniform(-0.1, 1) },
		func() { NewUniform(1.1, 1) },
		func() { NewBursty(0, time.Second, 1, 1) },
		func() { NewBursty(2*time.Second, time.Second, 1, 1) },
		func() { NewBursty(time.Second, time.Second, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestKeepProbabilityFor(t *testing.T) {
	// Target 93% of 1 Gbps with 220 Mbps regular and 2 Gbps cross offered:
	// p = (0.93e9 - 0.22e9) / 2e9 = 0.355.
	got := KeepProbabilityFor(0.93, 1e9, 220e6, 2e9)
	if math.Abs(got-0.355) > 1e-9 {
		t.Fatalf("p = %v, want 0.355", got)
	}
	// Regular traffic alone exceeds the target: clamp to 0.
	if got := KeepProbabilityFor(0.1, 1e9, 220e6, 2e9); got != 0 {
		t.Fatalf("p = %v, want 0", got)
	}
	// Cross trace too small to reach target: clamp to 1.
	if got := KeepProbabilityFor(0.99, 1e9, 220e6, 100e6); got != 1 {
		t.Fatalf("p = %v, want 1", got)
	}
}

func TestBurstyParamsFor(t *testing.T) {
	// Duty cycle 0.2 scales the in-burst keep probability 5x.
	uni := KeepProbabilityFor(0.67, 1e9, 220e6, 4e9)
	burst := BurstyParamsFor(0.67, 1e9, 220e6, 4e9, 10*time.Millisecond, 50*time.Millisecond)
	if math.Abs(burst-5*uni) > 1e-9 {
		t.Fatalf("bursty p = %v, want %v", burst, 5*uni)
	}
	if got := BurstyParamsFor(0.99, 1e9, 0, 1e9, time.Millisecond, 100*time.Millisecond); got != 1 {
		t.Fatalf("unachievable target should clamp to 1, got %v", got)
	}
}

func TestCalibrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KeepProbabilityFor(0.5, 0, 1, 1)
}

func TestSourceEmptyUnderlying(t *testing.T) {
	s := NewSource(trace.NewSliceSource(nil), NewUniform(1, 1))
	if _, ok := s.Next(); ok {
		t.Fatal("empty underlying trace should yield nothing")
	}
}
