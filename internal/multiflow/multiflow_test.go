package multiflow

import (
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

var key = packet.FlowKey{Src: packet.AddrFrom4(10, 1, 0, 1), Dst: packet.AddrFrom4(10, 2, 0, 1), SrcPort: 5, DstPort: 80, Proto: packet.ProtoTCP}

func at(us int) simtime.Time { return simtime.FromDuration(time.Duration(us) * time.Microsecond) }

func rec(k packet.FlowKey, first, last simtime.Time, pkts uint64) netflow.Record {
	return netflow.Record{Key: k, First: first, Last: last, Packets: pkts}
}

func TestTwoSampleAverage(t *testing.T) {
	up := []netflow.Record{rec(key, at(0), at(100), 10)}
	down := []netflow.Record{rec(key, at(40), at(160), 10)}
	got := Estimate(up, down)
	if len(got) != 1 {
		t.Fatalf("estimates = %d", len(got))
	}
	e := got[0]
	if e.FirstDelay != 40*time.Microsecond || e.LastDelay != 60*time.Microsecond {
		t.Fatalf("samples = %v/%v", e.FirstDelay, e.LastDelay)
	}
	if e.Mean != 50*time.Microsecond {
		t.Fatalf("mean = %v, want 50µs", e.Mean)
	}
	if e.Mismatched {
		t.Fatal("equal counts flagged mismatched")
	}
	if e.Packets != 10 {
		t.Fatalf("packets = %d", e.Packets)
	}
}

func TestUnpairedFlowsSkipped(t *testing.T) {
	other := key
	other.SrcPort = 99
	up := []netflow.Record{rec(key, at(0), at(10), 1)}
	down := []netflow.Record{rec(other, at(5), at(15), 1)}
	if got := Estimate(up, down); len(got) != 0 {
		t.Fatalf("unpaired flows estimated: %v", got)
	}
}

func TestMismatchFlagged(t *testing.T) {
	up := []netflow.Record{rec(key, at(0), at(100), 12)}
	down := []netflow.Record{rec(key, at(40), at(150), 10)} // 2 lost
	got := Estimate(up, down)
	if len(got) != 1 || !got[0].Mismatched {
		t.Fatalf("loss not flagged: %+v", got)
	}
}

func TestSinglePacketFlow(t *testing.T) {
	// First == Last on both sides: both samples are the same packet and the
	// estimate is its exact delay.
	up := []netflow.Record{rec(key, at(10), at(10), 1)}
	down := []netflow.Record{rec(key, at(35), at(35), 1)}
	got := Estimate(up, down)
	if got[0].Mean != 25*time.Microsecond {
		t.Fatalf("mean = %v, want 25µs", got[0].Mean)
	}
}

func TestManyFlows(t *testing.T) {
	var up, down []netflow.Record
	for i := 0; i < 100; i++ {
		k := key
		k.SrcPort = uint16(i + 1)
		up = append(up, rec(k, at(i*10), at(i*10+500), 5))
		down = append(down, rec(k, at(i*10+20), at(i*10+520), 5))
	}
	got := Estimate(up, down)
	if len(got) != 100 {
		t.Fatalf("estimates = %d", len(got))
	}
	for _, e := range got {
		if e.Mean != 20*time.Microsecond {
			t.Fatalf("mean = %v, want 20µs", e.Mean)
		}
	}
}

func TestStringSmoke(t *testing.T) {
	e := FlowEstimate{Key: key, Mean: time.Microsecond}
	if e.String() == "" {
		t.Fatal("empty String")
	}
}
