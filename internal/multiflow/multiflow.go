// Package multiflow implements the Multiflow estimator of Lee et al.
// (INFOCOM 2010, the paper's reference [12]): per-flow latency from only
// the two timestamps NetFlow already keeps.
//
// Given a flow's record at an upstream and a downstream measurement point,
// the delay estimate is the average of the first-packet delay and the
// last-packet delay:
//
//	est = ((first_down - first_up) + (last_down - last_up)) / 2
//
// It is the "crude" per-flow baseline RLI improves on: two samples per flow
// regardless of flow length, no visibility inside the flow.
package multiflow

import (
	"fmt"
	"time"

	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
)

// FlowEstimate is one flow's two-sample delay estimate.
type FlowEstimate struct {
	Key packet.FlowKey
	// Mean is the Multiflow delay estimate.
	Mean time.Duration
	// FirstDelay and LastDelay are the two underlying samples.
	FirstDelay time.Duration
	LastDelay  time.Duration
	// Packets is the downstream packet count (for weighting).
	Packets uint64
	// Mismatched marks flows whose packet counts differ between the
	// points: loss or reordering crossed the flow, so the first/last
	// pairing may not correspond to the same packets.
	Mismatched bool
}

// Estimate pairs upstream and downstream records by flow key. Flows seen at
// only one point are skipped; flows with differing packet counts are
// flagged Mismatched but still estimated, as the original estimator does.
func Estimate(up, down []netflow.Record) []FlowEstimate {
	byKey := make(map[packet.FlowKey]netflow.Record, len(up))
	for _, r := range up {
		byKey[r.Key] = r
	}
	out := make([]FlowEstimate, 0, len(down))
	for _, d := range down {
		u, ok := byKey[d.Key]
		if !ok {
			continue
		}
		first := d.First.Sub(u.First)
		last := d.Last.Sub(u.Last)
		out = append(out, FlowEstimate{
			Key:        d.Key,
			Mean:       (first + last) / 2,
			FirstDelay: first,
			LastDelay:  last,
			Packets:    d.Packets,
			Mismatched: d.Packets != u.Packets,
		})
	}
	return out
}

func (f FlowEstimate) String() string {
	return fmt.Sprintf("multiflow{%s mean=%v first=%v last=%v}", f.Key, f.Mean, f.FirstDelay, f.LastDelay)
}
