package fleet

import "github.com/netmeasure/rlir/internal/packet"

// Partition maps a flow to its owning instance among n. It is THE fleet
// hash contract: exporters (Router), the scenario fleet harness, and any
// re-sharding tool must agree on it, because the exact-merge theorem only
// holds while every flow's traffic lands wholly on one instance.
func Partition(key packet.FlowKey, n int) int {
	return int(key.FastHash() % uint64(n))
}

// SinkIndex maps a flow into an endpoints × connsPerEndpoint sink grid:
// the endpoint is Partition(key, endpoints), and the connection within the
// endpoint uses the next hash "digits" (FastHash / endpoints, mod conns) so
// the two levels stay independent. With a single endpoint it reduces to
// FastHash mod connsPerEndpoint — exactly the per-connection assignment
// cmd/loadgen used before the fleet tier existed (pinned by test).
func SinkIndex(key packet.FlowKey, endpoints, connsPerEndpoint int) (endpoint, conn int) {
	h := key.FastHash()
	endpoint = int(h % uint64(endpoints))
	conn = int((h / uint64(endpoints)) % uint64(connsPerEndpoint))
	return endpoint, conn
}
