package fleet_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/fleet"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/service"
)

// benchSamples builds n samples spread over nFlows distinct flows.
func benchSamples(n, nFlows int) []collector.Sample {
	out := make([]collector.Sample, n)
	for i := range out {
		f := i % nFlows
		out[i] = collector.Sample{
			Key: packet.FlowKey{
				Src: packet.Addr(0x0a000000 + f), Dst: packet.Addr(0x0a800000 + f),
				SrcPort: uint16(1024 + f), DstPort: 7171, Proto: 6,
			},
			Est:  time.Duration(50+i%400) * time.Microsecond,
			True: time.Duration(60+i%400) * time.Microsecond,
		}
	}
	return out
}

// BenchmarkFleetIngest4x measures aggregate ingest throughput of a fleet of
// four rlird instances fed through fleet.Router (partition + frame + send +
// shard ingest), reported as samples/s.
func BenchmarkFleetIngest4x(b *testing.B) {
	const (
		instances = 4
		batch     = 4096
	)
	servers := make([]*service.Server, instances)
	endpoints := make([]string, instances)
	for i := range servers {
		s, err := service.New(service.Config{Listen: "127.0.0.1:0", Shards: 4})
		if err != nil {
			b.Fatal(err)
		}
		servers[i] = s
		endpoints[i] = s.Addr().String()
	}
	r, err := fleet.NewRouter(fleet.Config{
		Endpoints:        endpoints,
		ConnsPerEndpoint: 2,
		Name:             "bench",
		Batch:            512,
		Dial: func(endpoint string, conn int) (fleet.Sink, error) {
			return service.Dial("tcp", endpoint, 0)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	smps := benchSamples(batch, 64)
	total := uint64(b.N) * batch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RouteSamples(smps)
	}
	if err := r.Flush(); err != nil {
		b.Fatal(err)
	}
	for {
		var got uint64
		for _, s := range servers {
			got += s.Collector().SamplesIngested()
		}
		if got >= total {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/s")
	if err := r.Close(); err != nil {
		b.Fatal(err)
	}
	for _, s := range servers {
		_ = s.Shutdown(context.Background())
	}
}

// BenchmarkFleetScatterGather measures the front-end's /flows query latency
// over a populated fleet of four instances, reported as ms/query: one
// fan-out to four /snapshot endpoints, an exact merge, and the render.
func BenchmarkFleetScatterGather(b *testing.B) {
	const instances = 4
	servers := make([]*service.Server, instances)
	urls := make([]string, instances)
	endpoints := make([]string, instances)
	for i := range servers {
		s, err := service.New(service.Config{Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0", Shards: 4})
		if err != nil {
			b.Fatal(err)
		}
		servers[i] = s
		endpoints[i] = s.Addr().String()
		urls[i] = "http://" + s.HTTPAddr().String()
	}
	r, err := fleet.NewRouter(fleet.Config{
		Endpoints: endpoints,
		Name:      "bench",
		Dial: func(endpoint string, conn int) (fleet.Sink, error) {
			return service.Dial("tcp", endpoint, 0)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	const nSamples = 1 << 15
	r.RouteSamples(benchSamples(nSamples, 256))
	if err := r.Close(); err != nil {
		b.Fatal(err)
	}
	for {
		var got uint64
		for _, s := range servers {
			got += s.Collector().SamplesIngested()
		}
		if got >= nSamples {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	front, err := fleet.NewFrontend(fleet.FrontendConfig{Instances: urls})
	if err != nil {
		b.Fatal(err)
	}
	// Drive the handler through a real HTTP round trip like a client would.
	ts := httptest.NewServer(front.Handler())
	defer ts.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(ts.URL + "/flows")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("/flows status %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N), "ms/query")
	for _, s := range servers {
		_ = s.Shutdown(context.Background())
	}
}
