package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/measure"
	"github.com/netmeasure/rlir/internal/queryapi"
)

// FrontendConfig configures a scatter-gather Frontend.
type FrontendConfig struct {
	// Instances are the fleet's query-API base URLs (one rlird each), e.g.
	// "http://127.0.0.1:7172". Required, and order defines instance
	// numbering in reports.
	Instances []string
	// Timeout bounds each fan-out: every instance request of one incoming
	// query shares this budget (default 5s).
	Timeout time.Duration
	// Client issues the instance requests (default http.DefaultClient plus
	// the fan-out timeout).
	Client *http.Client
}

// Frontend answers the rlird query API for a whole fleet: every request
// scatter-gathers the partitioned instances with a bounded timeout and
// merges their answers. The merge is exact, not approximate — /flows and
// /comparison are computed from the instances' raw /snapshot state through
// collector.Merge and the shared queryapi renderers, so a fleet-of-N
// response is field-for-field what a single rlird holding the whole stream
// would serve. Instances that fail to answer are skipped (degraded mode,
// visible in /healthz and /metrics); only a fully-unreachable fleet turns
// into an error status.
type Frontend struct {
	cfg     FrontendConfig
	client  *http.Client
	start   time.Time
	queries atomic.Uint64
	gErrs   atomic.Uint64
}

// NewFrontend validates the instance URLs and builds the front-end.
func NewFrontend(cfg FrontendConfig) (*Frontend, error) {
	if len(cfg.Instances) == 0 {
		return nil, errors.New("fleet: no instances")
	}
	for _, in := range cfg.Instances {
		u, err := url.Parse(in)
		if err != nil {
			return nil, fmt.Errorf("fleet: bad instance URL %q: %w", in, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("fleet: bad instance URL %q (want http[s]://host:port)", in)
		}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	return &Frontend{cfg: cfg, client: client, start: time.Now()}, nil
}

// Instances returns the configured instance count.
func (f *Frontend) Instances() int { return len(f.cfg.Instances) }

// fetch is one instance's response to a fan-out: the decoded body, or the
// transport/decode error that kept it out of the merge.
type fetch struct {
	instance string
	body     []byte
	err      error
}

// gather fans path out to every instance under one Timeout and returns the
// responses in instance order.
func (f *Frontend) gather(ctx context.Context, path string) []fetch {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.Timeout)
	defer cancel()
	out := make([]fetch, len(f.cfg.Instances))
	var wg sync.WaitGroup
	for i, in := range f.cfg.Instances {
		wg.Add(1)
		go func(i int, in string) {
			defer wg.Done()
			out[i] = fetch{instance: in}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(in, "/")+path, nil)
			if err != nil {
				out[i].err = err
				return
			}
			resp, err := f.client.Do(req)
			if err != nil {
				out[i].err = err
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				out[i].err = err
				return
			}
			// /healthz deliberately answers 503 while draining with a valid
			// body; anything else non-2xx is a failure.
			if resp.StatusCode >= 300 && path != "/healthz" {
				out[i].err = fmt.Errorf("%s%s: %s", in, path, resp.Status)
				return
			}
			out[i].body = body
		}(i, in)
	}
	wg.Wait()
	for _, g := range out {
		if g.err != nil {
			f.gErrs.Add(1)
		}
	}
	return out
}

// snapshots gathers and decodes every reachable instance's raw flow-table
// state, rejecting any whose snapshot schema version differs from this
// binary's (queryapi.Snapshot.Check) — merging a stale instance would
// silently drop its sketch tier rather than fail. It returns the accepted
// per-instance snapshots, how many instances answered, and the first error
// (for the all-down case).
func (f *Frontend) snapshots(ctx context.Context) (snaps []queryapi.Snapshot, ok int, firstErr error) {
	for _, g := range f.gather(ctx, "/snapshot") {
		if g.err == nil {
			var s queryapi.Snapshot
			if err := json.Unmarshal(g.body, &s); err != nil {
				g.err = fmt.Errorf("%s/snapshot: %w", g.instance, err)
				f.gErrs.Add(1)
			} else if err := s.Check(); err != nil {
				g.err = fmt.Errorf("%s/snapshot: %w", g.instance, err)
				f.gErrs.Add(1)
			} else {
				snaps = append(snaps, s)
				ok++
				continue
			}
		}
		if firstErr == nil {
			firstErr = g.err
		}
	}
	return snaps, ok, firstErr
}

// merged is the exact fleet-wide flow table: instance snapshots decoded to
// raw aggregates and merged. Flow-disjoint partitioning makes the result
// bit-identical to a single collector over the whole stream.
func merged(snaps []queryapi.Snapshot) []collector.FlowAgg {
	parts := make([][]collector.FlowAgg, len(snaps))
	for i, s := range snaps {
		parts[i] = s.Aggs()
	}
	return collector.Merge(parts...)
}

// Handler returns the fleet query API: the same five endpoints a single
// rlird serves, answered for the whole fleet.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/flows", f.handleFlows)
	mux.HandleFunc("/routers", f.handleRouters)
	mux.HandleFunc("/rollup", f.handleRollup)
	mux.HandleFunc("/comparison", f.handleComparison)
	mux.HandleFunc("/healthz", f.handleHealthz)
	mux.HandleFunc("/metrics", f.handleMetrics)
	return mux
}

func (f *Frontend) handleFlows(w http.ResponseWriter, r *http.Request) {
	f.queries.Add(1)
	snaps, ok, firstErr := f.snapshots(r.Context())
	if ok == 0 {
		http.Error(w, fmt.Sprintf("no instance reachable: %v", firstErr), http.StatusBadGateway)
		return
	}
	aggs := merged(snaps)
	limit := len(aggs)
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		if n < limit {
			limit = n
		}
	}
	rows := make([]queryapi.FlowJSON, 0, limit)
	for i := 0; i < limit; i++ {
		rows = append(rows, queryapi.FlowRow(&aggs[i]))
	}
	queryapi.WriteJSON(w, http.StatusOK, rows)
}

func (f *Frontend) handleComparison(w http.ResponseWriter, r *http.Request) {
	f.queries.Add(1)
	snaps, ok, firstErr := f.snapshots(r.Context())
	if ok == 0 {
		http.Error(w, fmt.Sprintf("no instance reachable: %v", firstErr), http.StatusBadGateway)
		return
	}
	cmp := measure.CompareFlowAggs("rli", merged(snaps))
	queryapi.WriteJSON(w, http.StatusOK, []queryapi.ComparisonJSON{queryapi.ComparisonRow(cmp)})
}

// handleRollup gathers each instance's /rollup and returns the per-instance
// views annotated with their instance URL, like /routers. The rollup tiers
// are NOT cross-instance merged: which flows a bounded instance evicted
// depends on its own arrival order and caps, so per-instance rollups are an
// operational view, not part of the exact-merge surface (/flows,
// /comparison — those merge live per-flow state, which stays exact).
func (f *Frontend) handleRollup(w http.ResponseWriter, r *http.Request) {
	f.queries.Add(1)
	var rows []queryapi.RollupJSON
	anyOK := false
	var firstErr error
	for _, g := range f.gather(r.Context(), "/rollup") {
		if g.err != nil {
			if firstErr == nil {
				firstErr = g.err
			}
			continue
		}
		var part queryapi.RollupJSON
		if err := json.Unmarshal(g.body, &part); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s/rollup: %w", g.instance, err)
			}
			f.gErrs.Add(1)
			continue
		}
		anyOK = true
		part.Instance = g.instance
		rows = append(rows, part)
	}
	if !anyOK {
		http.Error(w, fmt.Sprintf("no instance reachable: %v", firstErr), http.StatusBadGateway)
		return
	}
	queryapi.WriteJSON(w, http.StatusOK, rows)
}

func (f *Frontend) handleRouters(w http.ResponseWriter, r *http.Request) {
	f.queries.Add(1)
	var rows []queryapi.RouterJSON
	anyOK := false
	var firstErr error
	for _, g := range f.gather(r.Context(), "/routers") {
		if g.err != nil {
			if firstErr == nil {
				firstErr = g.err
			}
			continue
		}
		var part []queryapi.RouterJSON
		if err := json.Unmarshal(g.body, &part); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s/routers: %w", g.instance, err)
			}
			f.gErrs.Add(1)
			continue
		}
		anyOK = true
		for i := range part {
			part[i].Instance = g.instance
		}
		rows = append(rows, part...)
	}
	if !anyOK {
		http.Error(w, fmt.Sprintf("no instance reachable: %v", firstErr), http.StatusBadGateway)
		return
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Router != rows[j].Router {
			return rows[i].Router < rows[j].Router
		}
		return rows[i].Instance < rows[j].Instance
	})
	if rows == nil {
		rows = []queryapi.RouterJSON{}
	}
	queryapi.WriteJSON(w, http.StatusOK, rows)
}

// HealthJSON is the fleet /healthz response: the aggregate plus one row per
// instance. Distinct from a single instance's queryapi.HealthJSON — a fleet
// front-end's own health is "how much of the fleet answers".
type HealthJSON struct {
	// Status is "ok" (every instance answered ok), "degraded" (some did),
	// or "down" (none did — served with a 503).
	Status      string  `json:"status"`
	Instances   int     `json:"instances"`
	InstancesOK int     `json:"instances_ok"`
	UptimeS     float64 `json:"uptime_s"`
	// Flows / Samples / Records are sums over answering instances. With
	// flow-disjoint partitioning the flow sum is exact (no flow is counted
	// twice).
	Flows   int    `json:"flows"`
	Samples uint64 `json:"samples"`
	Records uint64 `json:"records"`
	// PerInstance reports each instance in configured order.
	PerInstance []InstanceHealth `json:"per_instance"`
}

// InstanceHealth is one instance's row in the fleet health report.
type InstanceHealth struct {
	Instance string `json:"instance"`
	// Status is the instance's self-reported status, or "unreachable".
	Status  string `json:"status"`
	Error   string `json:"error,omitempty"`
	Flows   int    `json:"flows,omitempty"`
	Samples uint64 `json:"samples,omitempty"`
	Records uint64 `json:"records,omitempty"`
}

// fleetHealth gathers instance /healthz and folds the aggregate view; it
// backs both /healthz and the gauges in /metrics.
func (f *Frontend) fleetHealth(ctx context.Context) HealthJSON {
	h := HealthJSON{
		Instances: len(f.cfg.Instances),
		UptimeS:   time.Since(f.start).Seconds(),
	}
	for _, g := range f.gather(ctx, "/healthz") {
		row := InstanceHealth{Instance: g.instance, Status: "unreachable"}
		if g.err != nil {
			row.Error = g.err.Error()
		} else {
			var ih queryapi.HealthJSON
			if err := json.Unmarshal(g.body, &ih); err != nil {
				row.Error = err.Error()
				f.gErrs.Add(1)
			} else {
				row.Status = ih.Status
				row.Flows, row.Samples, row.Records = ih.Flows, ih.Samples, ih.Records
				h.InstancesOK++
				h.Flows += ih.Flows
				h.Samples += ih.Samples
				h.Records += ih.Records
			}
		}
		h.PerInstance = append(h.PerInstance, row)
	}
	switch {
	case h.InstancesOK == h.Instances:
		h.Status = "ok"
	case h.InstancesOK > 0:
		h.Status = "degraded"
	default:
		h.Status = "down"
	}
	return h
}

func (f *Frontend) handleHealthz(w http.ResponseWriter, r *http.Request) {
	f.queries.Add(1)
	h := f.fleetHealth(r.Context())
	code := http.StatusOK
	if h.Status == "down" {
		code = http.StatusServiceUnavailable
	}
	queryapi.WriteJSON(w, code, h)
}

// handleMetrics serves the front-end's own Prometheus text: fleet size and
// reachability, scatter-gather accounting, and the aggregate ingest gauges.
func (f *Frontend) handleMetrics(w http.ResponseWriter, r *http.Request) {
	f.queries.Add(1)
	h := f.fleetHealth(r.Context())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP rlirfleet_instances Configured fleet instances.\n# TYPE rlirfleet_instances gauge\n")
	p("rlirfleet_instances %d\n", h.Instances)
	p("# HELP rlirfleet_instances_up Instances that answered the last health fan-out.\n# TYPE rlirfleet_instances_up gauge\n")
	p("rlirfleet_instances_up %d\n", h.InstancesOK)
	p("# HELP rlirfleet_queries_total Front-end queries served.\n# TYPE rlirfleet_queries_total counter\n")
	p("rlirfleet_queries_total %d\n", f.queries.Load())
	p("# HELP rlirfleet_gather_errors_total Instance fetches that failed or decoded badly.\n# TYPE rlirfleet_gather_errors_total counter\n")
	p("rlirfleet_gather_errors_total %d\n", f.gErrs.Load())
	p("# HELP rlirfleet_flows Distinct flows across answering instances (exact under flow-disjoint partitioning).\n# TYPE rlirfleet_flows gauge\n")
	p("rlirfleet_flows %d\n", h.Flows)
	p("# HELP rlirfleet_samples_total Samples ingested across answering instances.\n# TYPE rlirfleet_samples_total counter\n")
	p("rlirfleet_samples_total %d\n", h.Samples)
	p("# HELP rlirfleet_records_total NetFlow records ingested across answering instances.\n# TYPE rlirfleet_records_total counter\n")
	p("rlirfleet_records_total %d\n", h.Records)
	p("# HELP rlirfleet_uptime_seconds Time since the front-end started.\n# TYPE rlirfleet_uptime_seconds gauge\n")
	p("rlirfleet_uptime_seconds %g\n", time.Since(f.start).Seconds())
	for i, in := range f.cfg.Instances {
		up := 0
		if i < len(h.PerInstance) && h.PerInstance[i].Status != "unreachable" {
			up = 1
		}
		if i == 0 {
			p("# HELP rlirfleet_instance_up Per-instance reachability in the last health fan-out.\n# TYPE rlirfleet_instance_up gauge\n")
		}
		p("rlirfleet_instance_up{instance=%q} %d\n", in, up)
	}
}
