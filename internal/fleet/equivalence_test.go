package fleet_test

// The fleet acceptance pin: a fleet of N rlird instances fed through
// fleet.Router must answer — through the scatter-gather front-end — with
// exactly the flow table and comparison a single node (the batch engine)
// produces for the same export stream, for N = 1, 2 and 4. This package is
// an external test (fleet_test) so it may import internal/service and
// internal/scenario; the fleet package itself must not (scenario imports
// fleet, and the service tests import scenario).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/fleet"
	"github.com/netmeasure/rlir/internal/measure"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/queryapi"
	"github.com/netmeasure/rlir/internal/scenario"
	"github.com/netmeasure/rlir/internal/service"
)

// testFleet is N live rlird instances plus the front-end serving them.
type testFleet struct {
	servers []*service.Server
	front   *httptest.Server
}

// startFleet boots n service instances (TCP ingest + HTTP query API, both
// on ephemeral ports) and a scatter-gather front-end over them.
func startFleet(t testing.TB, n int) *testFleet {
	t.Helper()
	tf := &testFleet{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s, err := service.New(service.Config{Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0", Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		tf.servers = append(tf.servers, s)
		urls[i] = "http://" + s.HTTPAddr().String()
	}
	front, err := fleet.NewFrontend(fleet.FrontendConfig{Instances: urls, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tf.front = httptest.NewServer(front.Handler())
	t.Cleanup(func() {
		tf.front.Close()
		for _, s := range tf.servers {
			_ = s.Shutdown(context.Background())
		}
	})
	return tf
}

// ingestAddrs returns the instances' wire-ingest addresses in order.
func (tf *testFleet) ingestAddrs() []string {
	out := make([]string, len(tf.servers))
	for i, s := range tf.servers {
		out[i] = s.Addr().String()
	}
	return out
}

// waitIngested blocks until the fleet as a whole holds want samples.
func (tf *testFleet) waitIngested(t testing.TB, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var got uint64
		for _, s := range tf.servers {
			got += s.Collector().SamplesIngested()
		}
		if got >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet ingested %d of %d samples before timeout", got, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// routeTrace streams a captured export through a fleet.Router into the
// fleet, two connections per endpoint, and waits for full ingestion.
func (tf *testFleet) routeTrace(t testing.TB, tr *scenario.Trace) {
	t.Helper()
	r, err := fleet.NewRouter(fleet.Config{
		Endpoints:        tf.ingestAddrs(),
		ConnsPerEndpoint: 2,
		Name:             "replay",
		Dial: func(endpoint string, conn int) (fleet.Sink, error) {
			return service.Dial("tcp", endpoint, 0)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 300
	for off := 0; off < len(tr.Samples); off += chunk {
		end := off + chunk
		if end > len(tr.Samples) {
			end = len(tr.Samples)
		}
		r.RouteSamples(tr.Samples[off:end])
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	tf.waitIngested(t, uint64(len(tr.Samples)))
}

func getJSON(t testing.TB, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decode %s: %v\n%s", url, err, body)
	}
	return resp.StatusCode
}

func exportBaseline(t testing.TB) *scenario.Trace {
	t.Helper()
	sc, ok := scenario.Get("baseline-tandem")
	if !ok {
		t.Fatal("baseline-tandem not registered")
	}
	tr, err := scenario.Export(sc.Spec, sc.Spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) == 0 {
		t.Fatal("empty export")
	}
	return tr
}

func floatPtrEq(a, b *float64) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

// TestFleetOfNMatchesSingleNode is the acceptance criterion: for N = 1, 2
// and 4, the front-end's /flows and /comparison over a partitioned fleet
// are field-for-field identical to the batch engine's single-node answer
// for the same export stream.
func TestFleetOfNMatchesSingleNode(t *testing.T) {
	tr := exportBaseline(t)
	batch := tr.Result.Fleet // the single-node reference flow table

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			tf := startFleet(t, n)
			tf.routeTrace(t, tr)

			var flows []queryapi.FlowJSON
			if code := getJSON(t, tf.front.URL+"/flows", &flows); code != http.StatusOK {
				t.Fatalf("/flows status %d", code)
			}
			if len(flows) != len(batch) {
				t.Fatalf("fleet /flows has %d rows, single node has %d", len(flows), len(batch))
			}
			for i := range batch {
				want := queryapi.FlowRow(&batch[i])
				if flows[i] != want {
					t.Fatalf("N=%d flow %d diverged:\nfleet  %+v\nsingle %+v", n, i, flows[i], want)
				}
			}

			var got []queryapi.ComparisonJSON
			if code := getJSON(t, tf.front.URL+"/comparison", &got); code != http.StatusOK {
				t.Fatalf("/comparison status %d", code)
			}
			want := queryapi.ComparisonRow(measure.CompareFlowAggs("rli", batch))
			if len(got) != 1 {
				t.Fatalf("/comparison has %d rows", len(got))
			}
			if got[0].Estimator != want.Estimator || got[0].Flows != want.Flows ||
				got[0].Samples != want.Samples || got[0].AggMeanNs != want.AggMeanNs ||
				got[0].AggSamples != want.AggSamples ||
				!floatPtrEq(got[0].MedianRelErr, want.MedianRelErr) ||
				!floatPtrEq(got[0].P99RelErr, want.P99RelErr) ||
				!floatPtrEq(got[0].AggRelErr, want.AggRelErr) {
				t.Fatalf("N=%d /comparison diverged:\nfleet  %+v\nsingle %+v", n, got[0], want)
			}
		})
	}
}

// TestFrontendAnnotatesRouters checks /routers carries every exporter
// identity the router announced, tagged with the instance that saw it.
func TestFrontendAnnotatesRouters(t *testing.T) {
	tr := exportBaseline(t)
	tf := startFleet(t, 2)
	tf.routeTrace(t, tr)

	var rows []queryapi.RouterJSON
	if code := getJSON(t, tf.front.URL+"/routers", &rows); code != http.StatusOK {
		t.Fatalf("/routers status %d", code)
	}
	if len(rows) != 4 { // 2 endpoints x 2 conns, one hello identity each
		t.Fatalf("/routers has %d rows, want 4", len(rows))
	}
	var samples uint64
	for _, r := range rows {
		if r.Instance == "" {
			t.Fatalf("row %q missing instance annotation", r.Router)
		}
		samples += r.Samples
	}
	if samples != uint64(len(tr.Samples)) {
		t.Fatalf("/routers accounts %d samples, want %d", samples, len(tr.Samples))
	}
}

// TestFrontendDegradedMode kills one instance of two: the merged table must
// shrink to the surviving partition (not error), health must degrade, and
// killing the second instance turns queries into 502 and health into 503.
func TestFrontendDegradedMode(t *testing.T) {
	tr := exportBaseline(t)
	tf := startFleet(t, 2)
	tf.routeTrace(t, tr)

	if err := tf.servers[1].Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	var flows []queryapi.FlowJSON
	if code := getJSON(t, tf.front.URL+"/flows", &flows); code != http.StatusOK {
		t.Fatalf("/flows status %d after one instance down", code)
	}
	want := tf.servers[0].Snapshot()
	if len(flows) != len(want) {
		t.Fatalf("degraded /flows has %d rows, surviving instance holds %d", len(flows), len(want))
	}
	for i := range want {
		if flows[i] != queryapi.FlowRow(&want[i]) {
			t.Fatalf("degraded flow %d diverged", i)
		}
	}

	var h fleet.HealthJSON
	if code := getJSON(t, tf.front.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("/healthz status %d, want 200 while degraded", code)
	}
	if h.Status != "degraded" || h.InstancesOK != 1 || h.Instances != 2 {
		t.Fatalf("health %+v, want degraded 1/2", h)
	}

	if err := tf.servers[0].Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(tf.front.URL + "/flows")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("/flows status %d with the whole fleet down, want 502", resp.StatusCode)
	}
	code := getJSON(t, tf.front.URL+"/healthz", &h)
	if code != http.StatusServiceUnavailable || h.Status != "down" {
		t.Fatalf("/healthz %d %q with the whole fleet down, want 503 down", code, h.Status)
	}
}

// TestFrontendConfigErrors pins NewFrontend's validation.
func TestFrontendConfigErrors(t *testing.T) {
	if _, err := fleet.NewFrontend(fleet.FrontendConfig{}); err == nil {
		t.Fatal("empty instance list accepted")
	}
	for _, bad := range []string{"127.0.0.1:7172", "ftp://host", "http://"} {
		if _, err := fleet.NewFrontend(fleet.FrontendConfig{Instances: []string{bad}}); err == nil {
			t.Fatalf("bad instance URL %q accepted", bad)
		}
	}
}

// TestRouterOverReliableTransport runs the same equivalence with swp-framed
// sinks — the Router is framing-agnostic because the dialer chooses — and
// checks the aggregated transport counters survive Close.
func TestRouterOverReliableTransport(t *testing.T) {
	tr := exportBaseline(t)
	tf := startFleet(t, 2)
	r, err := fleet.NewRouter(fleet.Config{
		Endpoints: tf.ingestAddrs(),
		Name:      "rel",
		Dial: func(endpoint string, conn int) (fleet.Sink, error) {
			return service.DialWith(service.DialOptions{Addr: endpoint, Reliable: true})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 400
	for off := 0; off < len(tr.Samples); off += chunk {
		end := off + chunk
		if end > len(tr.Samples) {
			end = len(tr.Samples)
		}
		r.RouteSamples(tr.Samples[off:end])
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	st, ok := r.TransportStats()
	if !ok || st.Segments == 0 {
		t.Fatalf("no transport stats from reliable sinks: %+v ok=%v", st, ok)
	}
	tf.waitIngested(t, uint64(len(tr.Samples)))

	var flows []queryapi.FlowJSON
	getJSON(t, tf.front.URL+"/flows", &flows)
	batch := tr.Result.Fleet
	if len(flows) != len(batch) {
		t.Fatalf("reliable fleet /flows has %d rows, want %d", len(flows), len(batch))
	}
	for i := range batch {
		if flows[i] != queryapi.FlowRow(&batch[i]) {
			t.Fatalf("reliable flow %d diverged", i)
		}
	}
	// Sanity: the partitions really were disjoint and non-trivial for N=2.
	a := tf.servers[0].Collector().SamplesIngested()
	b := tf.servers[1].Collector().SamplesIngested()
	if a == 0 || b == 0 {
		t.Fatalf("degenerate partition: %d / %d samples", a, b)
	}
}

// TestFrontendRejectsStaleSnapshot pins the snapshot schema gate at the
// fleet boundary: an instance speaking an older snapshot version is skipped
// like an unreachable one (degraded service, never silently-wrong merges),
// and a fleet made only of stale instances turns /flows into a 502 whose
// body names both versions.
func TestFrontendRejectsStaleSnapshot(t *testing.T) {
	// A pre-versioning peer: its /snapshot body carries no "version" field,
	// so it decodes as version 0.
	stale := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"samples":7,"records":0,"flows":[]}`)
	}))
	defer stale.Close()

	s, err := service.New(service.Config{Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0", Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	s.Collector().Ingest([]collector.Sample{{
		Key: packet.FlowKey{Src: 0x0a000001, Dst: 0x0a000002, SrcPort: 1000, DstPort: 443, Proto: packet.ProtoTCP},
		Est: time.Millisecond,
	}})

	front, err := fleet.NewFrontend(fleet.FrontendConfig{
		Instances: []string{"http://" + s.HTTPAddr().String(), stale.URL},
		Timeout:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	mixed := httptest.NewServer(front.Handler())
	defer mixed.Close()

	var flows []queryapi.FlowJSON
	if code := getJSON(t, mixed.URL+"/flows", &flows); code != http.StatusOK {
		t.Fatalf("/flows status %d with one stale instance, want 200 degraded", code)
	}
	if len(flows) != 1 {
		t.Fatalf("/flows has %d rows, want only the current instance's 1", len(flows))
	}

	lone, err := fleet.NewFrontend(fleet.FrontendConfig{
		Instances: []string{stale.URL},
		Timeout:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	loneSrv := httptest.NewServer(lone.Handler())
	defer loneSrv.Close()
	resp, err := http.Get(loneSrv.URL + "/flows")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("/flows status %d over an all-stale fleet, want 502", resp.StatusCode)
	}
	for _, want := range []string{"version 0", fmt.Sprintf("version %d", queryapi.SnapshotVersion)} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("502 body must name %q, got:\n%s", want, body)
		}
	}
}

// TestFrontendRollupAnnotatesInstances checks /rollup is a per-instance
// gather (eviction contents depend on each instance's arrival order, so the
// front-end annotates rather than merges) whose accounting covers the fleet.
func TestFrontendRollupAnnotatesInstances(t *testing.T) {
	tr := exportBaseline(t)
	tf := startFleet(t, 2)
	tf.routeTrace(t, tr)

	var rows []queryapi.RollupJSON
	if code := getJSON(t, tf.front.URL+"/rollup", &rows); code != http.StatusOK {
		t.Fatalf("/rollup status %d", code)
	}
	if len(rows) != 2 {
		t.Fatalf("/rollup has %d rows, want one per instance", len(rows))
	}
	tracked := 0
	seen := map[string]bool{}
	for _, r := range rows {
		if r.Instance == "" {
			t.Fatal("rollup row missing instance annotation")
		}
		seen[r.Instance] = true
		tracked += r.FlowsTracked
		if r.FlowsEvicted != 0 || r.FlowsExpired != 0 {
			t.Fatalf("uncapped instance reports evictions: %+v", r)
		}
	}
	if len(seen) != 2 {
		t.Fatalf("rollup rows name %d distinct instances, want 2", len(seen))
	}
	if tracked != len(tr.Result.Fleet) {
		t.Fatalf("fleet tracks %d flows across rollups, single node holds %d", tracked, len(tr.Result.Fleet))
	}
}
