// Package fleet is the distributed collection tier: consistent-hash
// partitioning of flows across N rlird instances, the client-side router
// that streams each flow's export traffic to its owning instance, and the
// scatter-gather front-end that merges per-instance answers back into one
// exact fleet-wide view.
//
// The design theorem is flow disjointness. Partition routes every sample
// and record of a flow to exactly one instance (FastHash mod N), so no two
// instances ever hold state for the same flow; merging instance snapshots
// with collector.Merge therefore never folds two non-empty same-key
// accumulators, no float addition is ever reassociated, and the fleet-of-N
// flow table is bit-identical to what one instance ingesting the whole
// stream would hold. The scenario engine pins exactly that
// (internal/scenario's fleet scenarios), and the front-end's merged /flows
// and /comparison responses are field-for-field those of a single node.
//
// Three pieces:
//
//   - Router: the exporter side. It owns an endpoints × connections sink
//     grid (dialed through an injected DialFunc, so raw and swp-reliable
//     service clients both fit), partitions batches by flow hash with
//     per-flow order preserved, and drives each sink from its own worker
//     goroutine with a bounded queue, per-endpoint counters, and redial
//     with backoff on send failure. With one endpoint the grid degenerates
//     to exactly the per-connection partitioning cmd/loadgen always used.
//
//   - Frontend: the operator side. An http.Handler that scatter-gathers
//     instance /snapshot (raw accumulator state, exact over the wire — see
//     internal/queryapi), /routers and /healthz with a bounded per-fanout
//     timeout, merges via collector.Merge, and renders through the same
//     queryapi renderers a single rlird uses.
//
//   - Partition/SinkIndex: the hash contract itself, shared by the router,
//     the scenario fleet harness, and any exporter that wants to agree
//     with them.
//
// The package deliberately does not import internal/service — the service's
// own tests exercise scenario specs, which reach this package, and Go
// forbids that cycle. cmd front-ends (and the root package) wire
// service.Client in as the Router's DialFunc.
package fleet
