package fleet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
)

// fakeSink records everything a worker sends it, optionally failing.
type fakeSink struct {
	mu      sync.Mutex
	hello   string
	samples []collector.Sample
	records []netflow.Record
	frames  int
	flushes int
	closed  bool
	failN   int // fail the next N sends
}

func (s *fakeSink) Hello(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hello = name
	return nil
}

func (s *fakeSink) SendSamples(b []collector.Sample) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failN > 0 {
		s.failN--
		return errors.New("fake send failure")
	}
	s.samples = append(s.samples, b...)
	s.frames++
	return nil
}

func (s *fakeSink) SendRecords(b []netflow.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failN > 0 {
		s.failN--
		return errors.New("fake send failure")
	}
	s.records = append(s.records, b...)
	s.frames++
	return nil
}

func (s *fakeSink) Flush() error { s.mu.Lock(); defer s.mu.Unlock(); s.flushes++; return nil }
func (s *fakeSink) Close() error { s.mu.Lock(); defer s.mu.Unlock(); s.closed = true; return nil }

// sinkGrid tracks every sink a test router dialed, keyed by endpoint and
// dial sequence.
type sinkGrid struct {
	mu    sync.Mutex
	dials map[string][]*fakeSink
	fail  map[string]int // endpoint -> remaining dial failures
}

func newSinkGrid() *sinkGrid {
	return &sinkGrid{dials: make(map[string][]*fakeSink), fail: make(map[string]int)}
}

func (g *sinkGrid) dial(endpoint string, conn int) (Sink, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.fail[endpoint] > 0 {
		g.fail[endpoint]--
		return nil, fmt.Errorf("fake dial failure to %s", endpoint)
	}
	s := &fakeSink{}
	g.dials[endpoint] = append(g.dials[endpoint], s)
	return s, nil
}

func key(i uint32) packet.FlowKey {
	return packet.FlowKey{Src: packet.Addr(i), Dst: packet.Addr(i + 1), SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoTCP}
}

func sampleStream(n int) []collector.Sample {
	out := make([]collector.Sample, n)
	for i := range out {
		out[i] = collector.Sample{Key: key(uint32(i % 17)), Est: time.Duration(i) * time.Microsecond, True: time.Duration(i) * time.Microsecond}
	}
	return out
}

// TestRouterPartitionsAndPreservesFlowOrder routes a stream across 3
// endpoints × 2 conns and checks (a) every sample landed on the sink
// SinkIndex names, (b) per-flow order is preserved on that sink, and
// (c) nothing was lost.
func TestRouterPartitionsAndPreservesFlowOrder(t *testing.T) {
	grid := newSinkGrid()
	r, err := NewRouter(Config{
		Endpoints:        []string{"a", "b", "c"},
		ConnsPerEndpoint: 2,
		Dial:             grid.dial,
		Name:             "test",
		Batch:            8,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := sampleStream(500)
	for off := 0; off < len(stream); off += 37 {
		end := off + 37
		if end > len(stream) {
			end = len(stream)
		}
		r.RouteSamples(stream[off:end])
	}
	recs := []netflow.Record{
		{Key: key(2), Packets: 3, Bytes: 100},
		{Key: key(9), Packets: 1, Bytes: 40},
	}
	r.RouteRecords(recs)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	eps := []string{"a", "b", "c"}
	total := 0
	for e, ep := range eps {
		for c, s := range grid.dials[ep] {
			wantName := fmt.Sprintf("test-%d", e*2+c)
			if s.hello != wantName {
				t.Fatalf("endpoint %s conn %d hello %q, want %q", ep, c, s.hello, wantName)
			}
			if !s.closed {
				t.Fatalf("endpoint %s conn %d not closed", ep, c)
			}
			// Every sample belongs here, and same-flow samples are in
			// stream order.
			lastIdx := make(map[packet.FlowKey]time.Duration)
			for _, smp := range s.samples {
				we, wc := SinkIndex(smp.Key, 3, 2)
				if we != e || wc != c {
					t.Fatalf("sample for %v landed on (%d,%d), want (%d,%d)", smp.Key, e, c, we, wc)
				}
				if prev, ok := lastIdx[smp.Key]; ok && smp.Est < prev {
					t.Fatalf("flow %v reordered: %v after %v", smp.Key, smp.Est, prev)
				}
				lastIdx[smp.Key] = smp.Est
			}
			total += len(s.samples)
			for _, rec := range s.records {
				we, wc := SinkIndex(rec.Key, 3, 2)
				if we != e || wc != c {
					t.Fatalf("record for %v landed on (%d,%d), want (%d,%d)", rec.Key, e, c, we, wc)
				}
			}
		}
	}
	if total != len(stream) {
		t.Fatalf("sinks hold %d samples, want %d", total, len(stream))
	}

	stats := r.Stats()
	if len(stats) != 3 {
		t.Fatalf("stats for %d endpoints, want 3", len(stats))
	}
	var sent, recsSent uint64
	for _, st := range stats {
		sent += st.SamplesSent
		recsSent += st.RecordsSent
		if st.Queued != 0 {
			t.Fatalf("endpoint %s still queued %d after Close", st.Endpoint, st.Queued)
		}
		if st.Errors != 0 || st.Dropped != 0 {
			t.Fatalf("endpoint %s errors=%d dropped=%d on a clean run", st.Endpoint, st.Errors, st.Dropped)
		}
	}
	if sent != uint64(len(stream)) || recsSent != uint64(len(recs)) {
		t.Fatalf("counters: %d samples / %d records, want %d / %d", sent, recsSent, len(stream), len(recs))
	}
}

// TestRouterBatchBounds checks frames never exceed Config.Batch.
func TestRouterBatchBounds(t *testing.T) {
	grid := newSinkGrid()
	r, err := NewRouter(Config{Endpoints: []string{"a"}, Dial: grid.dial, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	// One flow so everything serializes through one sink in one part.
	batch := make([]collector.Sample, 11)
	for i := range batch {
		batch[i] = collector.Sample{Key: key(1), Est: time.Duration(i)}
	}
	r.RouteSamples(batch)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	s := grid.dials["a"][0]
	if len(s.samples) != 11 {
		t.Fatalf("sink holds %d samples, want 11", len(s.samples))
	}
	if want := 3; s.frames != want { // 4+4+3
		t.Fatalf("sink saw %d frames, want %d", s.frames, want)
	}
}

// TestRouterRedialsWithBackoff kills the first sink mid-stream: the worker
// must re-dial, replay the failed batch on the new connection, and count
// the error and the reconnect.
func TestRouterRedialsWithBackoff(t *testing.T) {
	grid := newSinkGrid()
	r, err := NewRouter(Config{
		Endpoints:     []string{"a"},
		Dial:          grid.dial,
		Name:          "test",
		RedialBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := grid.dials["a"][0]
	r.RouteSamples([]collector.Sample{{Key: key(1), Est: 1}})
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	first.mu.Lock()
	first.failN = 1 // next send on the original sink fails
	first.mu.Unlock()
	r.RouteSamples([]collector.Sample{{Key: key(1), Est: 2}, {Key: key(2), Est: 3}})
	if err := r.Close(); err != nil {
		t.Fatalf("close after recovered redial: %v", err)
	}
	if n := len(grid.dials["a"]); n != 2 {
		t.Fatalf("dialed %d sinks, want 2 (original + redial)", n)
	}
	second := grid.dials["a"][1]
	if second.hello != "test-0" {
		t.Fatalf("redialed sink hello %q, want re-announced identity", second.hello)
	}
	if len(second.samples) != 2 {
		t.Fatalf("redialed sink got %d samples, want the replayed batch of 2", len(second.samples))
	}
	st := r.Stats()[0]
	if st.Errors == 0 || st.Reconnects != 1 || st.Dropped != 0 {
		t.Fatalf("stats after recovery: %+v", st)
	}
	if st.SamplesSent != 3 {
		t.Fatalf("sent %d samples, want 3", st.SamplesSent)
	}
}

// TestRouterDropsAfterRedialBudget exhausts the redial budget: the batch is
// dropped (counted), the terminal error surfaces from Close, and later
// batches are dropped without dialing.
func TestRouterDropsAfterRedialBudget(t *testing.T) {
	grid := newSinkGrid()
	r, err := NewRouter(Config{
		Endpoints:      []string{"a"},
		Dial:           grid.dial,
		RedialAttempts: 2,
		RedialBackoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	grid.mu.Lock()
	grid.fail["a"] = 1000 // every redial fails
	grid.mu.Unlock()
	first := grid.dials["a"][0]
	first.mu.Lock()
	first.failN = 1000 // every send on the original sink fails
	first.mu.Unlock()

	r.RouteSamples([]collector.Sample{{Key: key(1), Est: 1}})
	if err := r.Flush(); err == nil {
		t.Fatal("flush returned nil after a dead sink")
	}
	r.RouteSamples([]collector.Sample{{Key: key(2), Est: 2}, {Key: key(3), Est: 3}})
	err = r.Close()
	if err == nil {
		t.Fatal("close returned nil after a dead sink")
	}
	st := r.Stats()[0]
	if st.Dropped != 3 {
		t.Fatalf("dropped %d, want 3 (failed batch + post-failure batch)", st.Dropped)
	}
	if st.Errors < 3 { // initial send + 2 redial attempts at minimum
		t.Fatalf("errors %d, want >= 3", st.Errors)
	}
	if st.SamplesSent != 0 {
		t.Fatalf("sent %d samples on a dead endpoint", st.SamplesSent)
	}
}

// TestRouterConfigErrors pins the constructor's validation.
func TestRouterConfigErrors(t *testing.T) {
	if _, err := NewRouter(Config{Dial: newSinkGrid().dial}); err == nil {
		t.Fatal("no endpoints accepted")
	}
	if _, err := NewRouter(Config{Endpoints: []string{"a"}}); err == nil {
		t.Fatal("nil Dial accepted")
	}
	grid := newSinkGrid()
	grid.fail["b"] = 1
	if _, err := NewRouter(Config{Endpoints: []string{"a", "b"}, Dial: grid.dial}); err == nil {
		t.Fatal("eager dial failure not surfaced")
	}
	// The already-dialed sink must have been closed on the failed path.
	grid.mu.Lock()
	defer grid.mu.Unlock()
	for _, s := range grid.dials["a"] {
		if !s.closed {
			t.Fatal("sink leaked by failed NewRouter")
		}
	}
}

// TestPartitionSinkIndexConsistent pins that SinkIndex's endpoint level IS
// Partition — the router and the scenario fleet harness agree by
// construction.
func TestPartitionSinkIndexConsistent(t *testing.T) {
	for i := uint32(0); i < 1000; i++ {
		k := key(i)
		for _, n := range []int{1, 2, 3, 4, 7} {
			e, _ := SinkIndex(k, n, 3)
			if e != Partition(k, n) {
				t.Fatalf("SinkIndex endpoint %d != Partition %d for n=%d", e, Partition(k, n), n)
			}
		}
		// One endpoint degenerates to the historical loadgen assignment.
		_, c := SinkIndex(k, 1, 4)
		if c != int(k.FastHash()%4) {
			t.Fatalf("single-endpoint conn %d != FastHash mod conns %d", c, k.FastHash()%4)
		}
	}
}
