package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/swp"
)

// Sink is one export connection as the Router sees it. *service.Client
// satisfies it over both framings (raw and swp-reliable); tests substitute
// in-memory fakes.
type Sink interface {
	Hello(name string) error
	SendSamples([]collector.Sample) error
	SendRecords([]netflow.Record) error
	Flush() error
	Close() error
}

// TransportReporter is the optional Sink extension for reliable-transport
// accounting (*service.Client implements it). Router.TransportStats sums
// over sinks that do.
type TransportReporter interface {
	TransportStats() (swp.SenderStats, bool)
}

// DialFunc opens connection conn (0-based within the endpoint) to an
// endpoint address. Injecting the dialer keeps this package free of
// internal/service while letting callers choose the framing: cmd/loadgen
// and cmd/rlirfleet pass a service.DialWith closure (raw or reliable).
type DialFunc func(endpoint string, conn int) (Sink, error)

// Config sizes a Router. Endpoints and Dial are required; every other
// field's zero value selects a default.
type Config struct {
	// Endpoints are the rlird ingest addresses, one per fleet instance.
	// Their order defines the instance numbering and must match the fleet's
	// agreed Partition order everywhere.
	Endpoints []string
	// ConnsPerEndpoint fans each endpoint's traffic across parallel
	// connections (default 1). Flows are partitioned across connections
	// too (SinkIndex), so per-flow frame order is preserved regardless.
	ConnsPerEndpoint int
	// Dial opens one sink; required.
	Dial DialFunc
	// Name is the hello identity prefix: sink i announces "<Name>-<i>"
	// (flat grid index). Empty sends no hello.
	Name string
	// Batch bounds samples (or records) per wire frame (default 256,
	// service.DefaultClientBatch's value).
	Batch int
	// Queue is each sink's bounded queue depth in batches (default 16). A
	// full queue back-pressures Route*, bounding router memory.
	Queue int
	// RedialAttempts is how many times a worker re-dials a failed sink
	// before declaring it dead (default 3). Between attempts it sleeps
	// RedialBackoff (default 100ms), doubling up to RedialMaxBackoff
	// (default 2s). A dead sink drops subsequent batches and surfaces its
	// error from Flush/Close.
	RedialAttempts   int
	RedialBackoff    time.Duration
	RedialMaxBackoff time.Duration
}

func (c Config) withDefaults() Config {
	if c.ConnsPerEndpoint <= 0 {
		c.ConnsPerEndpoint = 1
	}
	if c.Batch <= 0 {
		c.Batch = 256
	}
	if c.Queue <= 0 {
		c.Queue = 16
	}
	if c.RedialAttempts <= 0 {
		c.RedialAttempts = 3
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 100 * time.Millisecond
	}
	if c.RedialMaxBackoff <= 0 {
		c.RedialMaxBackoff = 2 * time.Second
	}
	return c
}

// EndpointStats is one endpoint's counters, summed over its connections.
type EndpointStats struct {
	Endpoint    string
	SamplesSent uint64
	RecordsSent uint64
	FramesSent  uint64
	// Queued is the current queue occupancy (samples + records buffered
	// but not yet handed to the transport).
	Queued uint64
	// Errors counts failed send/dial attempts; Reconnects successful
	// re-dials after a failure; Dropped items discarded because their sink
	// exhausted its redial budget.
	Errors     uint64
	Reconnects uint64
	Dropped    uint64
}

// endpointState holds one endpoint's live counters.
type endpointState struct {
	endpoint                  string
	samples, records, frames  atomic.Uint64
	queued                    atomic.Uint64
	errors, reconns, droppedN atomic.Uint64
}

// msg is one unit of worker input: a data batch, or a flush barrier when
// barrier is non-nil.
type msg struct {
	samples []collector.Sample
	records []netflow.Record
	barrier chan error
}

// Router partitions an export stream across a fleet of rlird instances:
// flows are consistent-hashed to an endpoints × connections sink grid
// (SinkIndex), each sink is driven by its own worker goroutine behind a
// bounded queue, and a failed sink is re-dialed with exponential backoff.
//
// Route*/Flush/Close are single-producer, like service.Client: one
// goroutine feeds the router, the workers provide the fan-out concurrency.
// Stats may be read from any goroutine at any time; TransportStats only
// after Close.
type Router struct {
	cfg     Config
	eps     []*endpointState
	workers []*sinkWorker
	wg      sync.WaitGroup
	closed  bool
}

// sinkWorker owns one sink: its queue, its connection, its redial loop.
// Only the worker goroutine touches sink and err after Start.
type sinkWorker struct {
	r        *Router
	ep       *endpointState
	endpoint string
	conn     int
	name     string
	ch       chan msg
	sink     Sink
	dialed   bool // a first dial happened (later successes count as reconnects)
	err      error
}

// NewRouter dials the full sink grid eagerly (fail fast, like loadgen's
// historical startup) and starts one worker per sink. On any dial error the
// already-opened sinks are closed and the error returned.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Endpoints) == 0 {
		return nil, errors.New("fleet: no endpoints")
	}
	if cfg.Dial == nil {
		return nil, errors.New("fleet: Config.Dial is required")
	}
	r := &Router{cfg: cfg}
	for _, ep := range cfg.Endpoints {
		r.eps = append(r.eps, &endpointState{endpoint: ep})
	}
	for e, ep := range cfg.Endpoints {
		for c := 0; c < cfg.ConnsPerEndpoint; c++ {
			w := &sinkWorker{
				r:        r,
				ep:       r.eps[e],
				endpoint: ep,
				conn:     c,
				ch:       make(chan msg, cfg.Queue),
			}
			if cfg.Name != "" {
				w.name = fmt.Sprintf("%s-%d", cfg.Name, e*cfg.ConnsPerEndpoint+c)
			}
			if err := w.ensure(); err != nil {
				for _, prev := range r.workers {
					_ = prev.sink.Close()
				}
				return nil, fmt.Errorf("fleet: dial %s conn %d: %w", ep, c, err)
			}
			r.workers = append(r.workers, w)
		}
	}
	for _, w := range r.workers {
		r.wg.Add(1)
		go w.run(&r.wg)
	}
	return r, nil
}

// Endpoints returns the instance count.
func (r *Router) Endpoints() int { return len(r.eps) }

// Sinks returns the total connection count (endpoints × conns).
func (r *Router) Sinks() int { return len(r.workers) }

// sinkOf flattens SinkIndex into the worker slice.
func (r *Router) sinkOf(key packet.FlowKey) int {
	e, c := SinkIndex(key, len(r.eps), r.cfg.ConnsPerEndpoint)
	return e*r.cfg.ConnsPerEndpoint + c
}

// RouteSamples partitions one batch across the sink grid and enqueues each
// non-empty part, preserving per-flow order. The batch is copied during
// partitioning; the caller may reuse it. Blocks only on a full sink queue.
func (r *Router) RouteSamples(batch []collector.Sample) {
	if len(batch) == 0 {
		return
	}
	parts := make([][]collector.Sample, len(r.workers))
	for _, s := range batch {
		i := r.sinkOf(s.Key)
		parts[i] = append(parts[i], s)
	}
	for i, p := range parts {
		if len(p) > 0 {
			r.enqueue(i, msg{samples: p}, uint64(len(p)))
		}
	}
}

// RouteRecords partitions one NetFlow-record batch like RouteSamples, so a
// flow's records land on the same instance (and connection) as its samples.
func (r *Router) RouteRecords(recs []netflow.Record) {
	if len(recs) == 0 {
		return
	}
	parts := make([][]netflow.Record, len(r.workers))
	for _, rec := range recs {
		i := r.sinkOf(rec.Key)
		parts[i] = append(parts[i], rec)
	}
	for i, p := range parts {
		if len(p) > 0 {
			r.enqueue(i, msg{records: p}, uint64(len(p)))
		}
	}
}

func (r *Router) enqueue(i int, m msg, n uint64) {
	r.workers[i].ep.queued.Add(n)
	r.workers[i].ch <- m
}

// Flush drains every queue and flushes every live sink, returning the
// first sink error (a dead sink's terminal error keeps surfacing here).
func (r *Router) Flush() error {
	barriers := make([]chan error, len(r.workers))
	for i, w := range r.workers {
		barriers[i] = make(chan error, 1)
		w.ch <- msg{barrier: barriers[i]}
	}
	var first error
	for _, b := range barriers {
		if err := <-b; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close flushes, stops the workers, and closes every sink. Idempotent; the
// first error (flush, terminal worker error, or close) is returned.
func (r *Router) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	first := r.Flush()
	for _, w := range r.workers {
		close(w.ch)
	}
	r.wg.Wait()
	for _, w := range r.workers {
		if w.sink == nil {
			continue
		}
		if err := w.sink.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats returns per-endpoint counters, in Config.Endpoints order.
func (r *Router) Stats() []EndpointStats {
	out := make([]EndpointStats, len(r.eps))
	for i, ep := range r.eps {
		out[i] = EndpointStats{
			Endpoint:    ep.endpoint,
			SamplesSent: ep.samples.Load(),
			RecordsSent: ep.records.Load(),
			FramesSent:  ep.frames.Load(),
			Queued:      ep.queued.Load(),
			Errors:      ep.errors.Load(),
			Reconnects:  ep.reconns.Load(),
			Dropped:     ep.droppedN.Load(),
		}
	}
	return out
}

// TransportStats sums reliable-transport counters over sinks that report
// them; ok is false when none do (raw framing). Call after Close — the
// workers own their sinks while running.
func (r *Router) TransportStats() (st swp.SenderStats, ok bool) {
	for _, w := range r.workers {
		if w.sink == nil {
			continue
		}
		tr, isTR := w.sink.(TransportReporter)
		if !isTR {
			continue
		}
		if s, sOK := tr.TransportStats(); sOK {
			st.Segments += s.Segments
			st.Retransmits += s.Retransmits
			st.Timeouts += s.Timeouts
			ok = true
		}
	}
	return st, ok
}

// ensure makes the worker's sink connected, dialing (and re-helloing) as
// needed. Successful dials after the first count as reconnects.
func (w *sinkWorker) ensure() error {
	if w.sink != nil {
		return nil
	}
	s, err := w.r.cfg.Dial(w.endpoint, w.conn)
	if err != nil {
		return err
	}
	if w.name != "" {
		if err := s.Hello(w.name); err != nil {
			_ = s.Close()
			return err
		}
	}
	if w.dialed {
		w.ep.reconns.Add(1)
	}
	w.dialed = true
	w.sink = s
	return nil
}

func (w *sinkWorker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for m := range w.ch {
		if m.barrier != nil {
			if w.err == nil && w.sink != nil {
				if err := w.sink.Flush(); err != nil {
					w.fail(err)
				}
			}
			m.barrier <- w.err
			continue
		}
		n := uint64(len(m.samples) + len(m.records))
		if w.err != nil {
			w.ep.droppedN.Add(n)
			w.ep.queued.Add(^(n - 1))
			continue
		}
		if err := w.deliver(m); err != nil {
			w.fail(err)
			w.ep.droppedN.Add(n)
		} else {
			w.ep.samples.Add(uint64(len(m.samples)))
			w.ep.records.Add(uint64(len(m.records)))
		}
		w.ep.queued.Add(^(n - 1))
	}
}

// fail marks the worker dead: its terminal error surfaces from every
// subsequent Flush, and later batches are dropped (counted).
func (w *sinkWorker) fail(err error) {
	w.err = fmt.Errorf("fleet: endpoint %s conn %d: %w", w.endpoint, w.conn, err)
	if w.sink != nil {
		_ = w.sink.Close()
		w.sink = nil
	}
}

// deliver sends one batch, re-dialing with exponential backoff on failure.
// Each attempt is a fresh connection carrying the whole batch, so a
// delivered batch was delivered in one piece and in order.
func (w *sinkWorker) deliver(m msg) error {
	backoff := w.r.cfg.RedialBackoff
	var lastErr error
	for attempt := 0; attempt <= w.r.cfg.RedialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > w.r.cfg.RedialMaxBackoff {
				backoff = w.r.cfg.RedialMaxBackoff
			}
		}
		err := w.ensure()
		if err == nil {
			err = w.trySend(m)
			if err == nil {
				return nil
			}
			_ = w.sink.Close()
			w.sink = nil
		}
		lastErr = err
		w.ep.errors.Add(1)
	}
	return lastErr
}

// trySend writes the batch as Batch-bounded frames on the current sink.
func (w *sinkWorker) trySend(m msg) error {
	b := w.r.cfg.Batch
	for off := 0; off < len(m.samples); off += b {
		end := off + b
		if end > len(m.samples) {
			end = len(m.samples)
		}
		if err := w.sink.SendSamples(m.samples[off:end]); err != nil {
			return err
		}
		w.ep.frames.Add(1)
	}
	for off := 0; off < len(m.records); off += b {
		end := off + b
		if end > len(m.records) {
			end = len(m.records)
		}
		if err := w.sink.SendRecords(m.records[off:end]); err != nil {
			return err
		}
		w.ep.frames.Add(1)
	}
	return nil
}
