// Package ecmp models equal-cost multi-path forwarding hash functions and
// their inversion.
//
// Switch vendors hash a packet's 5-tuple to pick one of several equal-cost
// next hops. The hash functions are deterministic but unpublished; the paper
// (§3.1, "reverse ECMP computation") assumes vendors can be persuaded to
// reveal them, letting an RLIR receiver re-run the hash of an upstream switch
// to work out which path a regular packet took — and therefore which
// reference stream it belongs to.
//
// This package provides a small family of deterministic hash functions in the
// styles vendors actually use (CRC folding, FNV folding, XOR folding), each
// seeded per switch, plus the ReverseResolver that performs the paper's
// reverse computation given topology knowledge.
package ecmp

import (
	"fmt"

	"github.com/netmeasure/rlir/internal/packet"
)

// Hasher maps a flow key to a 32-bit ECMP hash. Implementations must be
// deterministic: the same key always yields the same hash.
type Hasher interface {
	Hash(k packet.FlowKey) uint32
	Name() string
}

// Kind selects a hash algorithm.
type Kind uint8

const (
	// KindCRC folds the 5-tuple through CRC-16/CCITT, the classic TCAM-era
	// choice.
	KindCRC Kind = iota
	// KindFNV folds the 5-tuple through FNV-1a.
	KindFNV
	// KindXOR xor-folds the tuple words, the cheapest (and least uniform)
	// scheme; useful for studying polarization.
	KindXOR
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindCRC:
		return "crc16"
	case KindFNV:
		return "fnv1a"
	case KindXOR:
		return "xor"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// New returns a Hasher of the given kind with a per-switch seed. Distinct
// seeds de-correlate hash decisions between switches, which real deployments
// rely on to avoid traffic polarization.
func New(kind Kind, seed uint32) Hasher {
	switch kind {
	case KindCRC:
		return crcHasher{seed: seed}
	case KindFNV:
		return fnvHasher{seed: seed}
	case KindXOR:
		return xorHasher{seed: seed}
	default:
		panic(fmt.Sprintf("ecmp: unknown hash kind %d", kind))
	}
}

// tupleWords packs the 5-tuple into three 32-bit words for folding.
func tupleWords(k packet.FlowKey) (w0, w1, w2 uint32) {
	return uint32(k.Src), uint32(k.Dst),
		uint32(k.SrcPort)<<16 | uint32(k.DstPort)&0xFFFF ^ uint32(k.Proto)<<8
}

// --- CRC-16/CCITT-FALSE folding ---

var crcTable [256]uint16

func init() {
	const poly = 0x1021
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
		crcTable[i] = crc
	}
}

type crcHasher struct{ seed uint32 }

func (h crcHasher) Name() string { return fmt.Sprintf("crc16(seed=%#x)", h.seed) }

func (h crcHasher) Hash(k packet.FlowKey) uint32 {
	crc := uint16(0xFFFF)
	update := func(v uint32, n int) {
		for i := n - 1; i >= 0; i-- {
			b := byte(v >> (8 * uint(i)))
			crc = crc<<8 ^ crcTable[byte(crc>>8)^b]
		}
	}
	w0, w1, w2 := tupleWords(k)
	update(w0, 4)
	update(w1, 4)
	update(w2, 4)
	// CRC is linear, so folding the seed into the message would only XOR a
	// constant into every hash — two switches with different seeds would
	// still make identical modulo-n choices. A seed-keyed multiplicative
	// avalanche breaks that linearity while keeping the per-switch function
	// deterministic.
	v := uint32(crc) ^ h.seed
	v *= 2654435761 // Knuth's multiplicative constant
	v ^= v >> 16
	v *= 0x45d9f3b
	v ^= v >> 16
	return v
}

// --- FNV-1a folding ---

type fnvHasher struct{ seed uint32 }

func (h fnvHasher) Name() string { return fmt.Sprintf("fnv1a(seed=%#x)", h.seed) }

func (h fnvHasher) Hash(k packet.FlowKey) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	v := uint32(offset32) ^ h.seed
	mix := func(w uint32) {
		for i := 0; i < 4; i++ {
			v ^= w & 0xff
			v *= prime32
			w >>= 8
		}
	}
	w0, w1, w2 := tupleWords(k)
	mix(w0)
	mix(w1)
	mix(w2)
	return v
}

// --- XOR folding ---

type xorHasher struct{ seed uint32 }

func (h xorHasher) Name() string { return fmt.Sprintf("xor(seed=%#x)", h.seed) }

func (h xorHasher) Hash(k packet.FlowKey) uint32 {
	w0, w1, w2 := tupleWords(k)
	v := w0 ^ w1 ^ w2 ^ h.seed
	// One round of avalanche so that low bits depend on high bits; without
	// it, Select over small n would ignore most of the tuple.
	v ^= v >> 16
	v *= 0x45d9f3b
	v ^= v >> 16
	return v
}

// Select maps key k to one of n next hops using h. It panics if n <= 0.
// The modulo-n reduction matches how fixed-next-hop-table ASICs behave.
func Select(h Hasher, k packet.FlowKey, n int) int {
	if n <= 0 {
		panic("ecmp: Select with no next hops")
	}
	if n == 1 {
		return 0
	}
	return int(h.Hash(k) % uint32(n))
}
