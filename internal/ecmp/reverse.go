package ecmp

import (
	"fmt"

	"github.com/netmeasure/rlir/internal/lpm"
	"github.com/netmeasure/rlir/internal/packet"
)

// Choice describes one switch's ECMP decision point: the hasher it uses and
// the ordered list of identifiers (e.g. core switch node IDs) its uplinks
// lead to. The forward decision for key k is Uplinks[Select(Hasher, k, len)].
type Choice struct {
	Hasher  Hasher
	Uplinks []int32
}

// Forward returns the identifier the switch would forward key k toward.
func (c Choice) Forward(k packet.FlowKey) int32 {
	return c.Uplinks[Select(c.Hasher, k, len(c.Uplinks))]
}

// ReverseResolver implements the paper's "reverse ECMP computation" (§3.1):
// given a regular packet, determine which intermediate (core) switch it
// passed through, by re-running the hash function of the upstream switch
// that made the ECMP choice for it.
//
// The resolver is configured with a prefix table mapping a packet's source
// prefix to the Choice of the branching switch in the source's pod — exactly
// the information the paper says the receiver obtains from topology knowledge
// plus vendor-revealed hash functions.
type ReverseResolver struct {
	byOrigin *lpm.Table[Choice]
}

// NewReverseResolver returns an empty resolver.
func NewReverseResolver() *ReverseResolver {
	return &ReverseResolver{byOrigin: lpm.New[Choice]()}
}

// AddOrigin registers that packets whose source address falls in prefix make
// their ECMP choice at a switch behaving like c. Later registrations with a
// longer prefix take precedence, mirroring routing specificity.
func (r *ReverseResolver) AddOrigin(prefix packet.Prefix, c Choice) error {
	if c.Hasher == nil {
		return fmt.Errorf("ecmp: origin %v registered with nil hasher", prefix)
	}
	if len(c.Uplinks) == 0 {
		return fmt.Errorf("ecmp: origin %v registered with no uplinks", prefix)
	}
	r.byOrigin.Insert(prefix, c)
	return nil
}

// Resolve returns the identifier of the intermediate switch that key k
// traversed, or false if the source prefix is unknown.
func (r *ReverseResolver) Resolve(k packet.FlowKey) (int32, bool) {
	c, ok := r.byOrigin.Lookup(k.Src)
	if !ok {
		return 0, false
	}
	return c.Forward(k), true
}

// Origins returns the number of registered origin prefixes.
func (r *ReverseResolver) Origins() int { return r.byOrigin.Len() }
