package ecmp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/netmeasure/rlir/internal/packet"
)

func randomKey(rng *rand.Rand) packet.FlowKey {
	return packet.FlowKey{
		Src:     packet.Addr(rng.Uint32()),
		Dst:     packet.Addr(rng.Uint32()),
		SrcPort: uint16(rng.Intn(65536)),
		DstPort: uint16(rng.Intn(65536)),
		Proto:   packet.ProtoTCP,
	}
}

func allKinds() []Kind { return []Kind{KindCRC, KindFNV, KindXOR} }

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, kind := range allKinds() {
		h := New(kind, 0x1234)
		for i := 0; i < 100; i++ {
			k := randomKey(rng)
			if h.Hash(k) != h.Hash(k) {
				t.Fatalf("%s: hash not deterministic", h.Name())
			}
		}
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, kind := range allKinds() {
		a, b := New(kind, 1), New(kind, 2)
		same := 0
		const trials = 1000
		for i := 0; i < trials; i++ {
			k := randomKey(rng)
			if Select(a, k, 2) == Select(b, k, 2) {
				same++
			}
		}
		// Two independent fair coins agree ~50%; flag >70% as correlated.
		if same > trials*7/10 {
			t.Errorf("%v: seeds correlated, %d/%d identical 2-way choices", kind, same, trials)
		}
	}
}

func TestSelectUniformity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, kind := range allKinds() {
		h := New(kind, 7)
		const n = 8
		counts := make([]int, n)
		const trials = 80000
		for i := 0; i < trials; i++ {
			counts[Select(h, randomKey(rng), n)]++
		}
		want := float64(trials) / n
		for i, c := range counts {
			if math.Abs(float64(c)-want)/want > 0.05 {
				t.Errorf("%v: bucket %d has %d of %d (want ~%.0f ±5%%)", kind, i, c, trials, want)
			}
		}
	}
}

func TestSelectBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := New(KindCRC, 0)
	for n := 1; n <= 16; n++ {
		for i := 0; i < 200; i++ {
			got := Select(h, randomKey(rng), n)
			if got < 0 || got >= n {
				t.Fatalf("Select out of range: %d with n=%d", got, n)
			}
		}
	}
}

func TestSelectSingleNextHop(t *testing.T) {
	h := New(KindXOR, 0)
	if Select(h, packet.FlowKey{}, 1) != 0 {
		t.Fatal("n=1 must always choose 0")
	}
}

func TestSelectPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Select(New(KindCRC, 0), packet.FlowKey{}, 0)
}

func TestHashSensitivityToTupleFields(t *testing.T) {
	// Flipping any single tuple field should change the hash for the vast
	// majority of keys — otherwise reverse-ECMP misclassifies flows.
	rng := rand.New(rand.NewSource(5))
	for _, kind := range allKinds() {
		h := New(kind, 9)
		changed := 0
		const trials = 1000
		for i := 0; i < trials; i++ {
			k := randomKey(rng)
			k2 := k
			switch i % 4 {
			case 0:
				k2.Src++
			case 1:
				k2.Dst++
			case 2:
				k2.SrcPort++
			case 3:
				k2.DstPort++
			}
			if h.Hash(k) != h.Hash(k2) {
				changed++
			}
		}
		if changed < trials*95/100 {
			t.Errorf("%v: only %d/%d single-field flips changed the hash", kind, changed, trials)
		}
	}
}

func TestNewPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Kind(250), 0)
}

func TestKindString(t *testing.T) {
	for _, kind := range append(allKinds(), Kind(99)) {
		if kind.String() == "" {
			t.Error("empty Kind.String")
		}
	}
	for _, kind := range allKinds() {
		if New(kind, 3).Name() == "" {
			t.Error("empty Hasher.Name")
		}
	}
}

func TestHashDeterministicProperty(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, seed uint32) bool {
		k := packet.FlowKey{Src: packet.Addr(src), Dst: packet.Addr(dst), SrcPort: sp, DstPort: dp, Proto: packet.ProtoUDP}
		for _, kind := range allKinds() {
			h := New(kind, seed)
			if h.Hash(k) != h.Hash(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHash(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	keys := make([]packet.FlowKey, 1024)
	for i := range keys {
		keys[i] = randomKey(rng)
	}
	for _, kind := range allKinds() {
		h := New(kind, 11)
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.Hash(keys[i&1023])
			}
		})
	}
}
