package ecmp

import (
	"math/rand"
	"testing"

	"github.com/netmeasure/rlir/internal/packet"
)

func TestReverseResolverMatchesForward(t *testing.T) {
	// The defining property: for any key, Resolve returns exactly what the
	// registered branching switch's Forward computes.
	rng := rand.New(rand.NewSource(10))
	r := NewReverseResolver()
	choiceA := Choice{Hasher: New(KindCRC, 100), Uplinks: []int32{20, 21}}
	choiceB := Choice{Hasher: New(KindFNV, 200), Uplinks: []int32{20, 21}}
	if err := r.AddOrigin(packet.MustParsePrefix("10.1.0.0/16"), choiceA); err != nil {
		t.Fatal(err)
	}
	if err := r.AddOrigin(packet.MustParsePrefix("10.2.0.0/16"), choiceB); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2000; i++ {
		k := randomKey(rng)
		pod := uint32(1 + rng.Intn(2))
		k.Src = packet.Addr(10<<24 | pod<<16 | rng.Uint32()&0xFFFF)
		want := choiceA
		if pod == 2 {
			want = choiceB
		}
		got, ok := r.Resolve(k)
		if !ok {
			t.Fatalf("Resolve(%v) missed", k)
		}
		if got != want.Forward(k) {
			t.Fatalf("Resolve(%v) = %d, forward = %d", k, got, want.Forward(k))
		}
	}
}

func TestReverseResolverUnknownOrigin(t *testing.T) {
	r := NewReverseResolver()
	r.AddOrigin(packet.MustParsePrefix("10.1.0.0/16"), Choice{Hasher: New(KindXOR, 1), Uplinks: []int32{5}})
	k := packet.FlowKey{Src: packet.MustParseAddr("192.168.1.1")}
	if _, ok := r.Resolve(k); ok {
		t.Fatal("unknown origin should not resolve")
	}
}

func TestReverseResolverLongestPrefixWins(t *testing.T) {
	r := NewReverseResolver()
	broad := Choice{Hasher: New(KindXOR, 1), Uplinks: []int32{1}}
	narrow := Choice{Hasher: New(KindXOR, 2), Uplinks: []int32{2}}
	r.AddOrigin(packet.MustParsePrefix("10.0.0.0/8"), broad)
	r.AddOrigin(packet.MustParsePrefix("10.1.0.0/16"), narrow)
	k := packet.FlowKey{Src: packet.MustParseAddr("10.1.2.3")}
	got, ok := r.Resolve(k)
	if !ok || got != 2 {
		t.Fatalf("Resolve = %d/%v, want the /16's uplink 2", got, ok)
	}
	k.Src = packet.MustParseAddr("10.9.9.9")
	got, ok = r.Resolve(k)
	if !ok || got != 1 {
		t.Fatalf("Resolve = %d/%v, want the /8's uplink 1", got, ok)
	}
}

func TestAddOriginValidation(t *testing.T) {
	r := NewReverseResolver()
	if err := r.AddOrigin(packet.MustParsePrefix("10.0.0.0/8"), Choice{}); err == nil {
		t.Fatal("nil hasher should be rejected")
	}
	if err := r.AddOrigin(packet.MustParsePrefix("10.0.0.0/8"), Choice{Hasher: New(KindCRC, 0)}); err == nil {
		t.Fatal("empty uplinks should be rejected")
	}
	if r.Origins() != 0 {
		t.Fatalf("Origins = %d after rejected adds", r.Origins())
	}
}

func TestChoiceForwardCoversAllUplinks(t *testing.T) {
	// With a uniform hasher and many keys, every uplink should be chosen.
	rng := rand.New(rand.NewSource(11))
	c := Choice{Hasher: New(KindFNV, 31), Uplinks: []int32{100, 101, 102, 103}}
	seen := map[int32]bool{}
	for i := 0; i < 10000; i++ {
		seen[c.Forward(randomKey(rng))] = true
	}
	if len(seen) != 4 {
		t.Fatalf("forwarding reached %d of 4 uplinks", len(seen))
	}
}
