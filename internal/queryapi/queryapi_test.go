package queryapi

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// buildSnapshot runs a real collector over a random stream and returns its
// final sorted flow table.
func buildSnapshot(t *testing.T, seed int64) []collector.FlowAgg {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys := make([]packet.FlowKey, 1+rng.Intn(30))
	for i := range keys {
		keys[i] = packet.FlowKey{
			Src:     packet.Addr(rng.Uint32()),
			Dst:     packet.Addr(rng.Uint32()),
			SrcPort: uint16(rng.Intn(1 << 16)),
			DstPort: uint16(rng.Intn(1 << 16)),
			Proto:   packet.ProtoTCP,
		}
	}
	coll := collector.New(collector.Config{Shards: 2})
	for b := 0; b < 10; b++ {
		smps := make([]collector.Sample, 1+rng.Intn(80))
		for i := range smps {
			smps[i] = collector.Sample{
				Key:  keys[rng.Intn(len(keys))],
				Est:  time.Duration(rng.Int63n(int64(time.Second))),
				True: time.Duration(rng.Int63n(int64(time.Second))),
			}
		}
		coll.Ingest(smps)
		if rng.Intn(2) == 0 {
			coll.IngestRecords([]netflow.Record{{
				Key:     keys[rng.Intn(len(keys))],
				Packets: uint64(1 + rng.Intn(50)),
				Bytes:   uint64(64 * (1 + rng.Intn(100))),
				First:   simtime.Time(rng.Int63n(int64(time.Second))),
				Last:    simtime.Time(rng.Int63n(int64(time.Second))),
			}})
		}
	}
	coll.Close()
	return coll.Snapshot()
}

// TestSnapshotRoundTripExact is the fleet wire contract: a collector
// snapshot, packed, marshalled to JSON, unmarshalled and unpacked, is
// bit-identical to the original — including the unexported Welford and
// histogram internals, via their State round-trips.
func TestSnapshotRoundTripExact(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		aggs := buildSnapshot(t, seed)
		data, err := json.Marshal(SnapshotOf(aggs, 123, 45))
		if err != nil {
			t.Fatal(err)
		}
		var snap Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.Samples != 123 || snap.Records != 45 {
			t.Fatalf("totals lost: %d/%d", snap.Samples, snap.Records)
		}
		got := snap.Aggs()
		if !reflect.DeepEqual(got, aggs) {
			t.Fatalf("seed %d: snapshot round-trip diverged (%d flows)", seed, len(aggs))
		}
	}
}

// TestSnapshotMergeMatchesDirectMerge pins that decoded per-instance
// snapshots merge exactly like the in-process aggregates they came from.
func TestSnapshotMergeMatchesDirectMerge(t *testing.T) {
	a := buildSnapshot(t, 3)
	b := buildSnapshot(t, 4)
	want := collector.Merge(a, b)

	through := func(aggs []collector.FlowAgg) []collector.FlowAgg {
		data, err := json.Marshal(SnapshotOf(aggs, 0, 0))
		if err != nil {
			t.Fatal(err)
		}
		var s Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			t.Fatal(err)
		}
		return s.Aggs()
	}
	got := collector.Merge(through(a), through(b))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("merge through the wire diverged from direct merge")
	}
}

// TestFlowRowMatchesAggDerivation spot-checks the row renderer against the
// aggregate's own accessors.
func TestFlowRowMatchesAggDerivation(t *testing.T) {
	aggs := buildSnapshot(t, 5)
	for i := range aggs {
		a := &aggs[i]
		row := FlowRow(a)
		if row.Samples != a.Est.N() || row.EstMeanNs != a.Est.Mean() ||
			row.EstStdNs != a.Est.Std() || row.TrueMeanNs != a.True.Mean() ||
			row.EstP50Ns != int64(a.Sketch.Quantile(0.5)) ||
			row.EstP99Ns != int64(a.Sketch.Quantile(0.99)) ||
			row.Packets != a.Packets || row.Bytes != a.Bytes {
			t.Fatalf("row %d diverges from aggregate: %+v", i, row)
		}
	}
}

// TestSnapshotVersionCheck pins the schema gate: current snapshots pass,
// and any other version — older, newer, or the implicit 0 of a
// pre-versioning peer — fails with an error naming both versions.
func TestSnapshotVersionCheck(t *testing.T) {
	if err := SnapshotOf(nil, 0, 0).Check(); err != nil {
		t.Fatalf("current-version snapshot rejected: %v", err)
	}
	// A version-1 peer's body: no version field existed, so it decodes as 0.
	var stale Snapshot
	if err := json.Unmarshal([]byte(`{"samples":1,"records":0,"flows":[]}`), &stale); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{stale.Version, 1, SnapshotVersion + 1} {
		s := Snapshot{Version: v}
		err := s.Check()
		if err == nil {
			t.Fatalf("version %d accepted", v)
		}
		if !strings.Contains(err.Error(), fmt.Sprint(v)) ||
			!strings.Contains(err.Error(), fmt.Sprint(SnapshotVersion)) {
			t.Fatalf("version error must name both versions, got: %v", err)
		}
	}
}

// TestRollupRowsMatchesAggDerivation checks the /rollup renderer against a
// real evicting collector's rollup.
func TestRollupRowsMatchesAggDerivation(t *testing.T) {
	coll := collector.New(collector.Config{Shards: 1, MaxFlows: 4})
	rng := rand.New(rand.NewSource(17))
	smps := make([]collector.Sample, 4000)
	for i := range smps {
		smps[i] = collector.Sample{
			Key: packet.FlowKey{
				Src:     packet.Addr(rng.Uint32()),
				Dst:     packet.Addr(rng.Uint32()),
				SrcPort: uint16(1 + rng.Intn(1<<15)),
				DstPort: 443,
				Proto:   packet.ProtoTCP,
			},
			Est: time.Duration(rng.Int63n(int64(time.Second))),
		}
	}
	coll.Ingest(smps)
	roll := coll.RollupSnapshot()
	coll.Close()
	if roll.Stats.Evicted == 0 || len(roll.Classes) == 0 {
		t.Fatalf("collector did not evict: %+v", roll.Stats)
	}

	got := RollupRows(roll)
	if got.FlowsTracked != roll.Stats.Flows || got.FlowsEvicted != roll.Stats.Evicted ||
		got.FlowsExpired != roll.Stats.Expired {
		t.Fatalf("rollup accounting diverged: %+v vs %+v", got, roll.Stats)
	}
	if len(got.Classes) != len(roll.Classes) {
		t.Fatalf("%d class rows, want %d", len(got.Classes), len(roll.Classes))
	}
	for i := range got.Classes {
		a, row := &roll.Classes[i], got.Classes[i]
		if row.Src != a.Key.Src.String() || row.Samples != a.Est.N() ||
			row.EstP50Ns != int64(a.Sketch.Quantile(0.5)) ||
			row.EstP99Ns != int64(a.Sketch.Quantile(0.99)) {
			t.Fatalf("class row %d diverges: %+v vs %+v", i, row, a)
		}
	}
	if got.Router.Src != "" || got.Router.Samples != roll.Root.Est.N() {
		t.Fatalf("router row diverges: %+v", got.Router)
	}
}
