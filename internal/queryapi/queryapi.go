// Package queryapi holds the JSON row types and renderers of the measurement
// query API — the /flows, /routers, /comparison and /healthz shapes — plus
// the raw-state snapshot codec the fleet tier merges through.
//
// The package exists so that a single rlird instance (internal/service) and
// the scatter-gather front-end (internal/fleet, cmd/rlirfleet) render rows
// through the same code: a fleet-of-N answer is byte-identical to the
// single-node answer not by convention but because both call these
// functions. The snapshot codec is the exact half: FlowState carries the
// full internal accumulator state (stats.WelfordState, stats.HistogramState,
// stats.SketchState) rather than derived summaries, and Go's JSON float
// encoding is shortest round-trip, so instance state crosses the HTTP
// boundary bit-identically. Snapshots are schema-versioned
// (SnapshotVersion); merging peers must Check before trusting one.
package queryapi

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/measure"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
	"github.com/netmeasure/rlir/internal/stats"
)

// FlowJSON is one /flows row: a collector flow aggregate flattened for the
// wire. Durations are nanosecond integers, like the spec JSON front-end.
type FlowJSON struct {
	Src     string `json:"src"`
	Dst     string `json:"dst"`
	SrcPort uint16 `json:"src_port"`
	DstPort uint16 `json:"dst_port"`
	Proto   uint8  `json:"proto"`
	// Samples counts the per-packet estimates behind the aggregate.
	Samples int64 `json:"samples"`
	// EstMeanNs / EstStdNs / EstP50Ns / EstP99Ns summarize the estimated
	// delay distribution. The quantiles come from the flow's bounded-memory
	// sketch, within stats.SketchRelErrBound of the exact sample quantiles.
	EstMeanNs float64 `json:"est_mean_ns"`
	EstStdNs  float64 `json:"est_std_ns"`
	EstP50Ns  int64   `json:"est_p50_ns"`
	EstP99Ns  int64   `json:"est_p99_ns"`
	// TrueMeanNs is the in-band ground-truth mean (zero when the stream
	// carries no truth, as a real deployment's would not).
	TrueMeanNs float64 `json:"true_mean_ns"`
	// Packets / Bytes / FirstNs / LastNs mirror NetFlow record fields (zero
	// when no exporter mentioned the flow).
	Packets uint64 `json:"packets"`
	Bytes   uint64 `json:"bytes"`
	FirstNs int64  `json:"first_ns,omitempty"`
	LastNs  int64  `json:"last_ns,omitempty"`
}

// FlowRow renders one flow aggregate as its /flows row.
func FlowRow(a *collector.FlowAgg) FlowJSON {
	return FlowJSON{
		Src:        a.Key.Src.String(),
		Dst:        a.Key.Dst.String(),
		SrcPort:    a.Key.SrcPort,
		DstPort:    a.Key.DstPort,
		Proto:      uint8(a.Key.Proto),
		Samples:    a.Est.N(),
		EstMeanNs:  a.Est.Mean(),
		EstStdNs:   a.Est.Std(),
		EstP50Ns:   int64(a.Sketch.Quantile(0.5)),
		EstP99Ns:   int64(a.Sketch.Quantile(0.99)),
		TrueMeanNs: a.True.Mean(),
		Packets:    a.Packets,
		Bytes:      a.Bytes,
		FirstNs:    int64(a.First),
		LastNs:     int64(a.Last),
	}
}

// RouterJSON is one /routers row: a connected exporter's aggregate view.
type RouterJSON struct {
	Router  string `json:"router"`
	Frames  uint64 `json:"frames"`
	Samples uint64 `json:"samples"`
	Records uint64 `json:"records"`
	Bytes   uint64 `json:"bytes"`
	// EstMeanNs / EstP50Ns / EstP99Ns summarize the router's streamed
	// estimates; TrueMeanNs its in-band truth.
	EstMeanNs  float64 `json:"est_mean_ns"`
	EstP50Ns   int64   `json:"est_p50_ns"`
	EstP99Ns   int64   `json:"est_p99_ns"`
	TrueMeanNs float64 `json:"true_mean_ns"`
	// Reliable is true when the exporter connected over the swp transport;
	// the remaining fields are its receiver-side loss accounting: segments
	// received, duplicates dropped (retransmissions whose original
	// arrived), segments reorder-buffered, and gap episodes.
	Reliable            bool   `json:"reliable,omitempty"`
	TransportSegments   uint64 `json:"transport_segments,omitempty"`
	TransportDuplicates uint64 `json:"transport_duplicates,omitempty"`
	TransportOutOfOrder uint64 `json:"transport_out_of_order,omitempty"`
	TransportGaps       uint64 `json:"transport_gaps,omitempty"`
	// Instance names which fleet instance reported the row. A single rlird
	// omits it; the fleet front-end annotates gathered rows with it.
	Instance string `json:"instance,omitempty"`
}

// ComparisonJSON is the /comparison response: measure.CompareFlowAggs with
// NaN (undefined) errors encoded as JSON nulls.
type ComparisonJSON struct {
	Estimator    string   `json:"estimator"`
	Flows        int      `json:"flows"`
	Samples      int64    `json:"samples"`
	MedianRelErr *float64 `json:"median_rel_err"`
	P99RelErr    *float64 `json:"p99_rel_err"`
	AggMeanNs    int64    `json:"agg_mean_ns"`
	AggSamples   int64    `json:"agg_samples"`
	AggRelErr    *float64 `json:"agg_rel_err"`
}

// ComparisonRow renders one streaming comparison as its /comparison row.
func ComparisonRow(c measure.Comparison) ComparisonJSON {
	opt := func(v float64) *float64 {
		if math.IsNaN(v) {
			return nil
		}
		return &v
	}
	return ComparisonJSON{
		Estimator:    c.Estimator,
		Flows:        c.Flows,
		Samples:      c.Samples,
		MedianRelErr: opt(c.MedianRelErr),
		P99RelErr:    opt(c.P99RelErr),
		AggMeanNs:    int64(c.AggMean),
		AggSamples:   c.AggSamples,
		AggRelErr:    opt(c.AggRelErr),
	}
}

// HealthJSON is a single instance's /healthz response.
type HealthJSON struct {
	Status        string  `json:"status"`
	UptimeS       float64 `json:"uptime_s"`
	Flows         int     `json:"flows"`
	Samples       uint64  `json:"samples"`
	Records       uint64  `json:"records"`
	Frames        uint64  `json:"frames"`
	Conns         int     `json:"connections_active"`
	ConnsTotal    uint64  `json:"connections_total"`
	DecodeErrors  uint64  `json:"decode_errors"`
	SampleRate1W  float64 `json:"ingest_samples_per_s"`
	RecordRate1W  float64 `json:"ingest_records_per_s"`
	WindowSeconds float64 `json:"rate_window_s"`
	// FlowsEvicted / FlowsExpired / FlowClasses describe the bounded flow
	// table: lifetime cap evictions, lifetime window expiries, and the
	// current class-rollup tier size (all zero while unbounded and idle).
	FlowsEvicted uint64 `json:"flows_evicted"`
	FlowsExpired uint64 `json:"flows_expired"`
	FlowClasses  int    `json:"flow_classes"`
	// DecodeErrorKinds breaks DecodeErrors down by corruption kind,
	// summed across exporters (omitted while zero).
	DecodeErrorKinds map[string]uint64 `json:"decode_error_kinds,omitempty"`
	// ReliableConns counts connections that spoke the swp framing; the
	// Transport* fields aggregate their receiver-side loss accounting.
	ReliableConns       uint64 `json:"reliable_connections_total"`
	TransportSegments   uint64 `json:"transport_segments"`
	TransportDuplicates uint64 `json:"transport_duplicates"`
	TransportOutOfOrder uint64 `json:"transport_out_of_order"`
	TransportGaps       uint64 `json:"transport_gaps"`
}

// WriteJSON writes v as indented JSON with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// FlowState is one flow aggregate's complete internal state, the /snapshot
// wire row. Unlike FlowJSON it loses nothing: the Welford and histogram
// accumulators travel as their exact field values, and the 5-tuple travels
// numerically, so DecodeSnapshot rebuilds collector.FlowAgg values
// bit-identical to the instance's own.
type FlowState struct {
	Src     uint32 `json:"src"`
	Dst     uint32 `json:"dst"`
	SrcPort uint16 `json:"src_port"`
	DstPort uint16 `json:"dst_port"`
	Proto   uint8  `json:"proto"`

	Est    stats.WelfordState   `json:"est"`
	True   stats.WelfordState   `json:"true"`
	Hist   stats.HistogramState `json:"hist"`
	Sketch stats.SketchState    `json:"sketch"`

	Packets uint64 `json:"packets,omitempty"`
	Bytes   uint64 `json:"bytes,omitempty"`
	FirstNs int64  `json:"first_ns,omitempty"`
	LastNs  int64  `json:"last_ns,omitempty"`
}

// SnapshotVersion is the current /snapshot schema version. Version 2 added
// the per-flow quantile sketch state; a version-1 instance's snapshot lacks
// it, and merging such a snapshot would silently produce empty sketch tiers
// — so Check rejects any version mismatch outright instead.
const SnapshotVersion = 2

// Snapshot is the /snapshot response: the full flow table as raw state plus
// the instance's ingest totals, tagged with the schema version that produced
// it.
type Snapshot struct {
	Version int         `json:"version"`
	Samples uint64      `json:"samples"`
	Records uint64      `json:"records"`
	Flows   []FlowState `json:"flows"`
}

// Check validates the snapshot's schema version against this binary's.
// A mismatch (including the implicit version 0 of a pre-versioning
// instance) is an error naming both versions, so a mixed-version fleet
// fails loudly at gather time rather than merging lossily.
func (s Snapshot) Check() error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("queryapi: snapshot version %d from peer, this binary speaks version %d (mixed-version fleet?)", s.Version, SnapshotVersion)
	}
	return nil
}

// SnapshotOf packs a collector snapshot (and its ingest totals) for the
// wire.
func SnapshotOf(aggs []collector.FlowAgg, samples, records uint64) Snapshot {
	s := Snapshot{Version: SnapshotVersion, Samples: samples, Records: records, Flows: make([]FlowState, len(aggs))}
	for i := range aggs {
		a := &aggs[i]
		s.Flows[i] = FlowState{
			Src:     uint32(a.Key.Src),
			Dst:     uint32(a.Key.Dst),
			SrcPort: a.Key.SrcPort,
			DstPort: a.Key.DstPort,
			Proto:   uint8(a.Key.Proto),
			Est:     a.Est.State(),
			True:    a.True.State(),
			Hist:    a.Hist.State(),
			Sketch:  a.Sketch.State(),
			Packets: a.Packets,
			Bytes:   a.Bytes,
			FirstNs: int64(a.First),
			LastNs:  int64(a.Last),
		}
	}
	return s
}

// Aggs unpacks the snapshot back into collector flow aggregates, in wire
// order (instances send them sorted by flow key).
func (s Snapshot) Aggs() []collector.FlowAgg {
	out := make([]collector.FlowAgg, len(s.Flows))
	for i, f := range s.Flows {
		out[i] = collector.FlowAgg{
			Key: packet.FlowKey{
				Src:     packet.Addr(f.Src),
				Dst:     packet.Addr(f.Dst),
				SrcPort: f.SrcPort,
				DstPort: f.DstPort,
				Proto:   packet.Proto(f.Proto),
			},
			Est:     stats.WelfordFromState(f.Est),
			True:    stats.WelfordFromState(f.True),
			Hist:    stats.HistogramFromState(f.Hist),
			Sketch:  stats.SketchFromState(f.Sketch),
			Packets: f.Packets,
			Bytes:   f.Bytes,
			First:   simtime.Time(f.FirstNs),
			Last:    simtime.Time(f.LastNs),
		}
	}
	return out
}

// RollupRowJSON is one rollup-tier aggregate flattened for the wire: a
// class row carries its masked 5-tuple (ports always zero), the router row
// omits endpoints entirely.
type RollupRowJSON struct {
	Src     string `json:"src,omitempty"`
	Dst     string `json:"dst,omitempty"`
	Proto   uint8  `json:"proto,omitempty"`
	Samples int64  `json:"samples"`
	// EstMeanNs / EstP50Ns / EstP99Ns summarize the tier's estimated delay
	// distribution; quantiles come from the tier's merged sketch.
	EstMeanNs float64 `json:"est_mean_ns"`
	EstP50Ns  int64   `json:"est_p50_ns"`
	EstP99Ns  int64   `json:"est_p99_ns"`
	Packets   uint64  `json:"packets,omitempty"`
	Bytes     uint64  `json:"bytes,omitempty"`
}

// RollupJSON is the /rollup response: the aggregation tiers below the live
// flow table plus the eviction accounting that filled them. A fleet
// front-end annotates each instance's rollup with Instance.
type RollupJSON struct {
	FlowsTracked int             `json:"flows_tracked"`
	FlowsEvicted uint64          `json:"flows_evicted"`
	FlowsExpired uint64          `json:"flows_expired"`
	Classes      []RollupRowJSON `json:"classes"`
	Router       RollupRowJSON   `json:"router"`
	Instance     string          `json:"instance,omitempty"`
}

// rollupRow renders one rollup-tier aggregate. withKey is false for the
// router row, whose key is the zero FlowKey by construction.
func rollupRow(a *collector.FlowAgg, withKey bool) RollupRowJSON {
	r := RollupRowJSON{
		Samples:   a.Est.N(),
		EstMeanNs: a.Est.Mean(),
		EstP50Ns:  int64(a.Sketch.Quantile(0.5)),
		EstP99Ns:  int64(a.Sketch.Quantile(0.99)),
		Packets:   a.Packets,
		Bytes:     a.Bytes,
	}
	if withKey {
		r.Src = a.Key.Src.String()
		r.Dst = a.Key.Dst.String()
		r.Proto = uint8(a.Key.Proto)
	}
	return r
}

// RollupRows renders a collector rollup as its /rollup response.
func RollupRows(r collector.Rollup) RollupJSON {
	out := RollupJSON{
		FlowsTracked: r.Stats.Flows,
		FlowsEvicted: r.Stats.Evicted,
		FlowsExpired: r.Stats.Expired,
		Classes:      make([]RollupRowJSON, len(r.Classes)),
		Router:       rollupRow(&r.Root, false),
	}
	for i := range r.Classes {
		out.Classes[i] = rollupRow(&r.Classes[i], true)
	}
	return out
}
