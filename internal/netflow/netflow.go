// Package netflow implements flow metering in the style of YAF/NetFlow: the
// substrate the paper's simulator is built around (§4.1 cites YAF [2]) and
// the data source for the Multiflow baseline estimator [12], which exploits
// "the two timestamps already stored on a per-flow basis within NetFlow".
//
// A Meter observes packets at one measurement point and maintains per-flow
// records carrying first/last packet timestamps and packet/byte counts.
// Records expire by idle timeout or active (maximum lifetime) timeout and
// are handed to an export callback, as in a real flow exporter.
package netflow

import (
	"fmt"
	"time"

	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// Record is one flow's accumulated state at a measurement point.
type Record struct {
	Key     packet.FlowKey
	First   simtime.Time
	Last    simtime.Time
	Packets uint64
	Bytes   uint64
}

// Duration returns the observed flow duration.
func (r Record) Duration() time.Duration { return r.Last.Sub(r.First) }

func (r Record) String() string {
	return fmt.Sprintf("flow{%s pkts=%d bytes=%d span=[%v,%v]}", r.Key, r.Packets, r.Bytes, r.First, r.Last)
}

// Config sets the meter's expiry behaviour.
type Config struct {
	// IdleTimeout expires a flow with no traffic for this long. Zero
	// disables idle expiry.
	IdleTimeout time.Duration
	// ActiveTimeout expires (and re-opens) a flow that has been active
	// longer than this, as NetFlow does to bound record latency. Zero
	// disables active expiry.
	ActiveTimeout time.Duration
	// Export receives expired records. May be nil.
	Export func(Record)
}

// Meter accumulates flow records from observed packets.
type Meter struct {
	cfg    Config
	flows  map[packet.FlowKey]*Record
	seen   uint64
	expire uint64
}

// NewMeter creates a meter.
func NewMeter(cfg Config) *Meter {
	return &Meter{cfg: cfg, flows: make(map[packet.FlowKey]*Record)}
}

// Observe feeds one packet observation.
func (m *Meter) Observe(key packet.FlowKey, size int, at simtime.Time) {
	m.seen++
	r, ok := m.flows[key]
	if !ok {
		r = &Record{Key: key, First: at}
		m.flows[key] = r
	}
	r.Last = at
	r.Packets++
	r.Bytes += uint64(size)
}

// Sweep expires flows per the configured timeouts as of instant now and
// returns how many were expired. Call it periodically (e.g. from an
// eventsim ticker).
func (m *Meter) Sweep(now simtime.Time) int {
	var expired int
	for k, r := range m.flows {
		idle := m.cfg.IdleTimeout > 0 && now.Sub(r.Last) >= m.cfg.IdleTimeout
		active := m.cfg.ActiveTimeout > 0 && now.Sub(r.First) >= m.cfg.ActiveTimeout
		if idle || active {
			m.export(*r)
			delete(m.flows, k)
			expired++
		}
	}
	m.expire += uint64(expired)
	return expired
}

// FlushAll expires every remaining flow (end of measurement interval).
func (m *Meter) FlushAll() int {
	n := len(m.flows)
	for k, r := range m.flows {
		m.export(*r)
		delete(m.flows, k)
	}
	m.expire += uint64(n)
	return n
}

func (m *Meter) export(r Record) {
	if m.cfg.Export != nil {
		m.cfg.Export(r)
	}
}

// BatchExport adapts a batch-oriented sink (the collector plane's natural
// ingest unit, like a NetFlow export packet carrying many records) to the
// Meter's per-record Export callback. Records buffer until n accumulate,
// then sink receives the batch; flush hands over any partial batch — call it
// after FlushAll ends the measurement interval. The slice passed to sink is
// reused across batches, so the sink must copy or encode before returning
// (collector.Ingest and the wire encoders both do).
func BatchExport(n int, sink func([]Record)) (export func(Record), flush func()) {
	if n < 1 {
		n = 1
	}
	buf := make([]Record, 0, n)
	export = func(r Record) {
		buf = append(buf, r)
		if len(buf) >= n {
			sink(buf)
			buf = buf[:0]
		}
	}
	flush = func() {
		if len(buf) > 0 {
			sink(buf)
			buf = buf[:0]
		}
	}
	return export, flush
}

// Active returns the number of open flow records.
func (m *Meter) Active() int { return len(m.flows) }

// Lookup returns a copy of the open record for key.
func (m *Meter) Lookup(key packet.FlowKey) (Record, bool) {
	r, ok := m.flows[key]
	if !ok {
		return Record{}, false
	}
	return *r, true
}

// Seen returns total packets observed.
func (m *Meter) Seen() uint64 { return m.seen }

// Expired returns total records expired (including FlushAll).
func (m *Meter) Expired() uint64 { return m.expire }

// Snapshot returns copies of all open records, in unspecified order.
func (m *Meter) Snapshot() []Record {
	out := make([]Record, 0, len(m.flows))
	for _, r := range m.flows {
		out = append(out, *r)
	}
	return out
}
