package netflow

import (
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

var k1 = packet.FlowKey{Src: packet.AddrFrom4(10, 0, 0, 1), Dst: packet.AddrFrom4(10, 0, 0, 2), SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
var k2 = packet.FlowKey{Src: packet.AddrFrom4(10, 0, 0, 3), Dst: packet.AddrFrom4(10, 0, 0, 4), SrcPort: 3, DstPort: 4, Proto: packet.ProtoUDP}

func at(ms int) simtime.Time { return simtime.FromDuration(time.Duration(ms) * time.Millisecond) }

func TestObserveAccumulates(t *testing.T) {
	m := NewMeter(Config{})
	m.Observe(k1, 100, at(1))
	m.Observe(k1, 200, at(5))
	m.Observe(k2, 50, at(3))

	r, ok := m.Lookup(k1)
	if !ok {
		t.Fatal("k1 missing")
	}
	if r.Packets != 2 || r.Bytes != 300 {
		t.Fatalf("record = %+v", r)
	}
	if r.First != at(1) || r.Last != at(5) {
		t.Fatalf("timestamps = [%v,%v]", r.First, r.Last)
	}
	if r.Duration() != 4*time.Millisecond {
		t.Fatalf("Duration = %v", r.Duration())
	}
	if m.Active() != 2 || m.Seen() != 3 {
		t.Fatalf("active=%d seen=%d", m.Active(), m.Seen())
	}
}

func TestSinglePacketFlowTimestampsEqual(t *testing.T) {
	m := NewMeter(Config{})
	m.Observe(k1, 64, at(7))
	r, _ := m.Lookup(k1)
	if r.First != r.Last || r.Duration() != 0 {
		t.Fatalf("single-packet record = %+v", r)
	}
}

func TestIdleTimeout(t *testing.T) {
	var exported []Record
	m := NewMeter(Config{
		IdleTimeout: 10 * time.Millisecond,
		Export:      func(r Record) { exported = append(exported, r) },
	})
	m.Observe(k1, 100, at(0))
	m.Observe(k2, 100, at(8))

	if n := m.Sweep(at(9)); n != 0 {
		t.Fatalf("premature expiry of %d", n)
	}
	if n := m.Sweep(at(12)); n != 1 {
		t.Fatalf("expired %d, want 1 (k1 idle)", n)
	}
	if len(exported) != 1 || exported[0].Key != k1 {
		t.Fatalf("exported = %+v", exported)
	}
	if _, ok := m.Lookup(k1); ok {
		t.Fatal("k1 should be gone")
	}
	if _, ok := m.Lookup(k2); !ok {
		t.Fatal("k2 should remain")
	}
}

func TestActiveTimeout(t *testing.T) {
	var exported []Record
	m := NewMeter(Config{
		ActiveTimeout: 20 * time.Millisecond,
		Export:        func(r Record) { exported = append(exported, r) },
	})
	// Flow stays busy, never idle, but exceeds active lifetime.
	for ms := 0; ms < 30; ms++ {
		m.Observe(k1, 10, at(ms))
		m.Sweep(at(ms))
	}
	if len(exported) == 0 {
		t.Fatal("active timeout never fired")
	}
	// The flow re-opens after expiry; total packets across records plus the
	// open record must equal 30.
	var total uint64
	for _, r := range exported {
		total += r.Packets
	}
	if r, ok := m.Lookup(k1); ok {
		total += r.Packets
	}
	if total != 30 {
		t.Fatalf("packets accounted = %d, want 30", total)
	}
}

func TestFlushAll(t *testing.T) {
	var exported []Record
	m := NewMeter(Config{Export: func(r Record) { exported = append(exported, r) }})
	m.Observe(k1, 1500, at(1))
	m.Observe(k2, 1500, at(2))
	if n := m.FlushAll(); n != 2 {
		t.Fatalf("flushed %d", n)
	}
	if m.Active() != 0 || len(exported) != 2 {
		t.Fatalf("active=%d exported=%d", m.Active(), len(exported))
	}
	if m.Expired() != 2 {
		t.Fatalf("Expired = %d", m.Expired())
	}
}

func TestZeroTimeoutsNeverExpire(t *testing.T) {
	m := NewMeter(Config{})
	m.Observe(k1, 100, at(0))
	if n := m.Sweep(at(1_000_000)); n != 0 {
		t.Fatalf("zero timeouts expired %d flows", n)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	m := NewMeter(Config{})
	m.Observe(k1, 100, at(1))
	snap := m.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot = %d records", len(snap))
	}
	snap[0].Packets = 999
	r, _ := m.Lookup(k1)
	if r.Packets != 1 {
		t.Fatal("snapshot aliases live record")
	}
}

func TestNilExportSafe(t *testing.T) {
	m := NewMeter(Config{IdleTimeout: time.Millisecond})
	m.Observe(k1, 100, at(0))
	m.Sweep(at(10)) // must not panic with nil Export
	if m.Active() != 0 {
		t.Fatal("flow not expired")
	}
}

func TestRecordString(t *testing.T) {
	m := NewMeter(Config{})
	m.Observe(k1, 100, at(1))
	r, _ := m.Lookup(k1)
	if r.String() == "" {
		t.Fatal("empty String")
	}
}

// TestBatchExport pins batching boundaries: full batches of n, partial on
// flush, nothing lost, nothing duplicated.
func TestBatchExport(t *testing.T) {
	var batches [][]Record
	export, flush := BatchExport(3, func(recs []Record) {
		cp := make([]Record, len(recs))
		copy(cp, recs)
		batches = append(batches, cp)
	})
	for i := 0; i < 7; i++ {
		export(Record{Key: packet.FlowKey{SrcPort: uint16(i)}, Packets: 1})
	}
	if len(batches) != 2 {
		t.Fatalf("before flush: %d batches, want 2", len(batches))
	}
	flush()
	flush() // idempotent on empty buffer
	if len(batches) != 3 || len(batches[0]) != 3 || len(batches[1]) != 3 || len(batches[2]) != 1 {
		t.Fatalf("after flush: got batch sizes %v", func() []int {
			var s []int
			for _, b := range batches {
				s = append(s, len(b))
			}
			return s
		}())
	}
	seen := 0
	for _, b := range batches {
		for _, r := range b {
			if r.Key.SrcPort != uint16(seen) {
				t.Fatalf("record %d out of order: port %d", seen, r.Key.SrcPort)
			}
			seen++
		}
	}
}
