package topo

import (
	"fmt"
	"strings"
)

// Placement computes the §3.1 deployment-complexity figures for a k-ary
// fat-tree: how many RLI measurement instances each strategy needs. Each
// instance plays the dual sender+receiver role, as the paper assumes.
type Placement struct {
	K int
}

// Validate checks the arity.
func (pl Placement) Validate() error {
	if pl.K < 2 || pl.K%2 != 0 {
		return fmt.Errorf("topo: placement K must be even and >= 2, got %d", pl.K)
	}
	return nil
}

// PairOfInterfaces is the RLIR cost of monitoring one (ToR interface, ToR
// interface) pair: two instances at each of the k/2 cores on the paths,
// plus one at each endpoint ToR — k + 2 (paper: "we need to install two
// measurement instances at k/2 core routers and an instance at each ToR
// switch").
func (pl Placement) PairOfInterfaces() int { return pl.K + 2 }

// PairOfToRs is the RLIR cost of monitoring every interface pair between
// two ToR switches: k²/2 at cores plus k at the ToRs — k(k+2)/2.
func (pl Placement) PairOfToRs() int { return pl.K * (pl.K + 2) / 2 }

// AllToRPairs is the RLIR cost of per-flow latency between every pair of
// ToR switches: (k/2)²k instances across all core routers plus k/2 per ToR
// across the k²/2 ToRs... totalling (k/2)²(k+1) (paper formula).
func (pl Placement) AllToRPairs() int {
	h := pl.K / 2
	return h * h * (pl.K + 1)
}

// FullDeployment is the instance count for upgrading every router: two
// instances per interface pair in each pod switch and each core —
// k²·k(k-1) + (k/2)²·k(k-1) = (5/4)k³(k-1), the paper's O(k⁴).
func (pl Placement) FullDeployment() int {
	k := pl.K
	perPodSwitches := k * k * k * (k - 1) // k pods × k switches × k(k-1)
	h := k / 2
	cores := h * h * k * (k - 1)
	return perPodSwitches + cores
}

// Reduction returns full / partial for the all-ToR-pairs strategy: the
// deployment-cost factor RLIR saves.
func (pl Placement) Reduction() float64 {
	return float64(pl.FullDeployment()) / float64(pl.AllToRPairs())
}

// Row is one line of the placement table.
type Row struct {
	K                int
	PairOfInterfaces int
	PairOfToRs       int
	AllToRPairs      int
	FullDeployment   int
	Reduction        float64
}

// Table computes rows for each arity.
func Table(ks []int) ([]Row, error) {
	rows := make([]Row, 0, len(ks))
	for _, k := range ks {
		pl := Placement{K: k}
		if err := pl.Validate(); err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			K:                k,
			PairOfInterfaces: pl.PairOfInterfaces(),
			PairOfToRs:       pl.PairOfToRs(),
			AllToRPairs:      pl.AllToRPairs(),
			FullDeployment:   pl.FullDeployment(),
			Reduction:        pl.Reduction(),
		})
	}
	return rows, nil
}

// FormatTable renders rows as the §3.1 deployment-complexity table.
func FormatTable(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-16s %-14s %-14s %-16s %-9s\n",
		"k", "pair-of-ifaces", "pair-of-ToRs", "all-ToR-pairs", "full-deploy", "savings")
	fmt.Fprintf(&b, "%-5s %-16s %-14s %-14s %-16s %-9s\n",
		"", "(k+2)", "k(k+2)/2", "(k/2)^2(k+1)", "(5/4)k^3(k-1)", "x")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5d %-16d %-14d %-14d %-16d %-9.1f\n",
			r.K, r.PairOfInterfaces, r.PairOfToRs, r.AllToRPairs, r.FullDeployment, r.Reduction)
	}
	return b.String()
}

// CountSwitches returns the switch counts of a k-ary fat-tree, used to
// cross-check the formulas against an actually built topology.
func CountSwitches(k int) (tors, aggs, cores int) {
	h := k / 2
	return k * h, k * h, h * h
}
