package topo

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/eventsim"
	"github.com/netmeasure/rlir/internal/netsim"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

func build(t testing.TB, cfg Config) (*eventsim.Engine, *FatTree) {
	t.Helper()
	eng := eventsim.New()
	nw := netsim.New(eng)
	ft, err := Build(cfg, nw)
	if err != nil {
		t.Fatal(err)
	}
	return eng, ft
}

func TestBuildCounts(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		cfg := DefaultConfig()
		cfg.K = k
		_, ft := build(t, cfg)
		h := k / 2
		tors, aggs, cores := CountSwitches(k)
		if got := len(ft.Cores) * len(ft.Cores[0]); got != cores {
			t.Fatalf("k=%d: cores = %d, want %d", k, got, cores)
		}
		nTor, nAgg, nHost := 0, 0, 0
		for p := 0; p < k; p++ {
			nAgg += len(ft.Aggs[p])
			nTor += len(ft.ToRs[p])
			for e := 0; e < h; e++ {
				nHost += len(ft.Hosts[p][e])
			}
		}
		if nTor != tors || nAgg != aggs {
			t.Fatalf("k=%d: tors=%d aggs=%d, want %d/%d", k, nTor, nAgg, tors, aggs)
		}
		if want := k * h * h; nHost != want {
			t.Fatalf("k=%d: hosts = %d, want %d", k, nHost, want)
		}
		// Every switch has exactly k ports; hosts 1.
		for p := 0; p < k; p++ {
			for e := 0; e < h; e++ {
				if got := len(ft.ToRs[p][e].Ports()); got != k {
					t.Fatalf("ToR ports = %d, want %d", got, k)
				}
				if got := len(ft.Aggs[p][e].Ports()); got != k {
					t.Fatalf("agg ports = %d, want %d", got, k)
				}
			}
		}
		for j := 0; j < h; j++ {
			for i := 0; i < h; i++ {
				if got := len(ft.Cores[j][i].Ports()); got != k {
					t.Fatalf("core ports = %d, want %d", got, k)
				}
			}
		}
	}
}

func TestBuildValidation(t *testing.T) {
	eng := eventsim.New()
	for _, k := range []int{0, 1, 3, 256} {
		cfg := DefaultConfig()
		cfg.K = k
		if _, err := Build(cfg, netsim.New(eng)); err == nil {
			t.Errorf("K=%d should fail", k)
		}
	}
	cfg := DefaultConfig()
	cfg.LinkBps = 0
	if _, err := Build(cfg, netsim.New(eng)); err == nil {
		t.Error("zero link rate should fail")
	}
}

// deliverHostToHost injects a packet at a host and runs to delivery,
// returning the destination node name where it terminated.
func deliverHostToHost(t *testing.T, eng *eventsim.Engine, ft *FatTree, key packet.FlowKey) string {
	t.Helper()
	var deliveredAt string
	k, h := ft.Cfg.K, ft.Half()
	for p := 0; p < k; p++ {
		for e := 0; e < h; e++ {
			for hh := 0; hh < h; hh++ {
				host := ft.Hosts[p][e][hh]
				host.OnDeliver(func(pk *packet.Packet, _ simtime.Time) {
					if pk.Key == key {
						deliveredAt = host.Name()
					}
				})
			}
		}
	}
	src := ft.Hosts[0][0][0]
	pk := &packet.Packet{ID: ft.Net.NewPacketID(), Key: key, Size: 1000, Kind: packet.Regular}
	ft.Net.Inject(src, pk, simtime.Zero)
	eng.Run()
	return deliveredAt
}

func TestIntraPodDelivery(t *testing.T) {
	eng, ft := build(t, DefaultConfig())
	key := packet.FlowKey{
		Src: ft.HostAddr(0, 0, 0), Dst: ft.HostAddr(0, 1, 1),
		SrcPort: 1000, DstPort: 2000, Proto: packet.ProtoTCP,
	}
	if got := deliverHostToHost(t, eng, ft, key); got != "host0.1.1" {
		t.Fatalf("delivered at %q, want host0.1.1", got)
	}
}

func TestInterPodDelivery(t *testing.T) {
	eng, ft := build(t, DefaultConfig())
	key := packet.FlowKey{
		Src: ft.HostAddr(0, 0, 0), Dst: ft.HostAddr(3, 1, 0),
		SrcPort: 1000, DstPort: 2000, Proto: packet.ProtoTCP,
	}
	if got := deliverHostToHost(t, eng, ft, key); got != "host3.1.0" {
		t.Fatalf("delivered at %q, want host3.1.0", got)
	}
}

func TestAllPairsDelivery(t *testing.T) {
	// Every host can reach every other host.
	cfg := DefaultConfig()
	eng, ft := build(t, cfg)
	ft.Net.SetTracePaths(true)
	k, h := cfg.K, cfg.K/2

	type want struct {
		node *netsim.Node
		key  packet.FlowKey
	}
	var wants []want
	delivered := make(map[packet.FlowKey]string)
	for p := 0; p < k; p++ {
		for e := 0; e < h; e++ {
			for hh := 0; hh < h; hh++ {
				host := ft.Hosts[p][e][hh]
				host.OnDeliver(func(pk *packet.Packet, _ simtime.Time) {
					delivered[pk.Key] = host.Name()
				})
			}
		}
	}
	var id uint64
	at := simtime.Zero
	for p := 0; p < k; p++ {
		for e := 0; e < h; e++ {
			src := ft.Hosts[p][e][0]
			for q := 0; q < k; q++ {
				for f := 0; f < h; f++ {
					if p == q && e == f {
						continue
					}
					id++
					key := packet.FlowKey{
						Src: ft.HostAddr(p, e, 0), Dst: ft.HostAddr(q, f, 1),
						SrcPort: uint16(id), DstPort: 80, Proto: packet.ProtoTCP,
					}
					ft.Net.Inject(src, &packet.Packet{ID: id, Key: key, Size: 500, Kind: packet.Regular}, at)
					at = at.Add(10 * time.Microsecond)
					wants = append(wants, want{ft.Hosts[q][f][1], key})
				}
			}
		}
	}
	eng.Run()
	for _, w := range wants {
		if got := delivered[w.key]; got != w.node.Name() {
			t.Fatalf("key %v delivered at %q, want %q", w.key, got, w.node.Name())
		}
	}
}

func TestReferencePacketPinnedToCore(t *testing.T) {
	// A packet addressed to core (j,i)'s loopback must terminate exactly at
	// that core, regardless of which host sends it: reference streams rely
	// on deterministic delivery.
	cfg := DefaultConfig()
	eng, ft := build(t, cfg)
	h := cfg.K / 2
	deliveredAt := make(map[packet.Addr]string)
	for j := 0; j < h; j++ {
		for i := 0; i < h; i++ {
			core := ft.Cores[j][i]
			core.OnDeliver(func(pk *packet.Packet, _ simtime.Time) {
				deliveredAt[pk.Key.Dst] = core.Name()
			})
		}
	}
	var id uint64
	for j := 0; j < h; j++ {
		for i := 0; i < h; i++ {
			for srcPod := 0; srcPod < cfg.K; srcPod++ {
				id++
				key := packet.FlowKey{
					Src: ft.HostAddr(srcPod, 0, 0), Dst: ft.CoreAddr(j, i),
					SrcPort: uint16(id), DstPort: 7, Proto: packet.ProtoUDP,
				}
				ft.Net.Inject(ft.Hosts[srcPod][0][0],
					&packet.Packet{ID: id, Key: key, Size: 64, Kind: packet.Reference},
					simtime.Time(int64(id)*1000))
			}
		}
	}
	eng.Run()
	for j := 0; j < h; j++ {
		for i := 0; i < h; i++ {
			if got, want := deliveredAt[ft.CoreAddr(j, i)], fmt.Sprintf("core%d.%d", j, i); got != want {
				t.Fatalf("ref to %v delivered at %q, want %q", ft.CoreAddr(j, i), got, want)
			}
		}
	}
}

func TestResolveCoreMatchesGroundTruth(t *testing.T) {
	// The defining reverse-ECMP property: for random inter-pod flows, the
	// resolver's (j,i) must equal the core the packet actually traversed.
	cfg := DefaultConfig()
	cfg.K = 4
	eng, ft := build(t, cfg)
	ft.Net.SetTracePaths(true)
	h := cfg.K / 2

	coreByNode := make(map[int32][2]int)
	for j := 0; j < h; j++ {
		for i := 0; i < h; i++ {
			coreByNode[int32(ft.Cores[j][i].ID())] = [2]int{j, i}
		}
	}

	rng := rand.New(rand.NewSource(21))
	type sent struct {
		pk  *packet.Packet
		key packet.FlowKey
	}
	var sents []sent
	for n := 0; n < 500; n++ {
		srcPod := rng.Intn(cfg.K)
		dstPod := (srcPod + 1 + rng.Intn(cfg.K-1)) % cfg.K
		key := packet.FlowKey{
			Src:     ft.HostAddr(srcPod, rng.Intn(h), rng.Intn(h)),
			Dst:     ft.HostAddr(dstPod, rng.Intn(h), rng.Intn(h)),
			SrcPort: uint16(rng.Intn(65535) + 1), DstPort: uint16(rng.Intn(65535) + 1),
			Proto: packet.ProtoTCP,
		}
		p, e, _ := ft.locateHost(key.Src)
		pk := &packet.Packet{ID: uint64(n + 1), Key: key, Size: 200, Kind: packet.Regular}
		ft.Net.Inject(ft.Hosts[p][e][0], pk, simtime.Time(int64(n)*5000))
		sents = append(sents, sent{pk, key})
	}
	eng.Run()

	for _, s := range sents {
		var traversed [2]int
		found := false
		for _, hop := range s.pk.Hops {
			if ji, ok := coreByNode[hop]; ok {
				traversed, found = ji, true
				break
			}
		}
		if !found {
			t.Fatalf("inter-pod packet %v never crossed a core (hops %v)", s.key, s.pk.Hops)
		}
		j, i, err := ft.ResolveCore(s.key)
		if err != nil {
			t.Fatal(err)
		}
		if [2]int{j, i} != traversed {
			t.Fatalf("ResolveCore(%v) = (%d,%d), ground truth %v", s.key, j, i, traversed)
		}
	}
}

func TestResolveCoreRejectsNonHost(t *testing.T) {
	_, ft := build(t, DefaultConfig())
	key := packet.FlowKey{Src: packet.MustParseAddr("192.168.1.1")}
	if _, _, err := ft.ResolveCore(key); err == nil {
		t.Fatal("non-fat-tree source should error")
	}
	// Switch loopbacks are not host addresses either.
	key.Src = ft.ToRAddr(0, 0)
	if _, _, err := ft.ResolveCore(key); err == nil {
		t.Fatal("ToR loopback should error")
	}
}

func TestECMPSpreadsAcrossCores(t *testing.T) {
	// Many inter-pod flows should collectively traverse all (k/2)^2 cores.
	cfg := DefaultConfig()
	eng, ft := build(t, cfg)
	ft.Net.SetTracePaths(true)
	h := cfg.K / 2

	coreHit := make(map[int32]bool)
	coreIDs := make(map[int32]bool)
	for j := 0; j < h; j++ {
		for i := 0; i < h; i++ {
			coreIDs[int32(ft.Cores[j][i].ID())] = true
		}
	}
	rng := rand.New(rand.NewSource(5))
	var pks []*packet.Packet
	for n := 0; n < 400; n++ {
		key := packet.FlowKey{
			Src:     ft.HostAddr(0, rng.Intn(h), rng.Intn(h)),
			Dst:     ft.HostAddr(1+rng.Intn(cfg.K-1), rng.Intn(h), rng.Intn(h)),
			SrcPort: uint16(n + 1), DstPort: 80, Proto: packet.ProtoTCP,
		}
		p, e, _ := ft.locateHost(key.Src)
		pk := &packet.Packet{ID: uint64(n + 1), Key: key, Size: 100, Kind: packet.Regular}
		ft.Net.Inject(ft.Hosts[p][e][0], pk, simtime.Time(int64(n)*3000))
		pks = append(pks, pk)
	}
	eng.Run()
	for _, pk := range pks {
		for _, hop := range pk.Hops {
			if coreIDs[hop] {
				coreHit[hop] = true
			}
		}
	}
	if len(coreHit) != h*h {
		t.Fatalf("flows used %d of %d cores: ECMP not spreading", len(coreHit), h*h)
	}
}

func TestMarkingStampsCoreID(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MarkAtCores = true
	eng, ft := build(t, cfg)
	ft.Net.SetTracePaths(true)

	key := packet.FlowKey{
		Src: ft.HostAddr(0, 0, 0), Dst: ft.HostAddr(2, 0, 0),
		SrcPort: 777, DstPort: 80, Proto: packet.ProtoTCP,
	}
	pk := &packet.Packet{ID: 1, Key: key, Size: 100, Kind: packet.Regular}
	ft.Net.Inject(ft.Hosts[0][0][0], pk, simtime.Zero)
	eng.Run()

	j, i, ok := ft.CoreForMark(pk.TOS)
	if !ok {
		t.Fatalf("packet unmarked: TOS=%d", pk.TOS)
	}
	if !pk.Traversed(int32(ft.Cores[j][i].ID())) {
		t.Fatalf("mark says core(%d,%d) but hops are %v", j, i, pk.Hops)
	}
}

func TestCoreMarkRoundTrip(t *testing.T) {
	_, ft := build(t, DefaultConfig())
	h := ft.Half()
	seen := map[uint8]bool{}
	for j := 0; j < h; j++ {
		for i := 0; i < h; i++ {
			m := ft.CoreMark(j, i)
			if m == 0 {
				t.Fatal("mark 0 is reserved for unmarked")
			}
			if seen[m] {
				t.Fatalf("duplicate mark %d", m)
			}
			seen[m] = true
			gj, gi, ok := ft.CoreForMark(m)
			if !ok || gj != j || gi != i {
				t.Fatalf("CoreForMark(%d) = (%d,%d,%v), want (%d,%d)", m, gj, gi, ok, j, i)
			}
		}
	}
	if _, _, ok := ft.CoreForMark(0); ok {
		t.Fatal("mark 0 should not resolve")
	}
	if _, _, ok := ft.CoreForMark(255); ok {
		t.Fatal("out-of-range mark should not resolve")
	}
}

func TestAddressingHelpers(t *testing.T) {
	_, ft := build(t, DefaultConfig())
	if got := ft.HostAddr(2, 1, 0); got != packet.MustParseAddr("10.2.1.2") {
		t.Fatalf("HostAddr = %v", got)
	}
	if got := ft.ToRAddr(2, 1); got != packet.MustParseAddr("10.2.1.1") {
		t.Fatalf("ToRAddr = %v", got)
	}
	if got := ft.AggAddr(1, 0); got != packet.MustParseAddr("10.1.2.1") {
		t.Fatalf("AggAddr = %v", got)
	}
	if got := ft.CoreAddr(1, 0); got != packet.MustParseAddr("10.4.2.1") {
		t.Fatalf("CoreAddr = %v", got)
	}
	if !ft.ToRSubnet(2, 1).Contains(ft.HostAddr(2, 1, 1)) {
		t.Fatal("host outside its ToR subnet")
	}
	if !ft.PodPrefix(2).Contains(ft.ToRAddr(2, 0)) {
		t.Fatal("ToR outside its pod prefix")
	}
}

func TestPortAccessors(t *testing.T) {
	_, ft := build(t, DefaultConfig())
	// ToR uplink j leads to agg j of the same pod.
	for j := 0; j < ft.Half(); j++ {
		if got := ft.ToRUplink(1, 0, j).Dst(); got != ft.Aggs[1][j] {
			t.Fatalf("ToRUplink(1,0,%d) -> %s", j, got.Name())
		}
	}
	// Agg uplink i leads to core (a, i).
	for i := 0; i < ft.Half(); i++ {
		if got := ft.AggUplink(0, 1, i).Dst(); got != ft.Cores[1][i] {
			t.Fatalf("AggUplink(0,1,%d) -> %s", i, got.Name())
		}
	}
	// Core down port p leads to pod p.
	for p := 0; p < ft.Cfg.K; p++ {
		if got := ft.CoreDownPort(0, 1, p).Dst(); got != ft.Aggs[p][0] {
			t.Fatalf("CoreDownPort(0,1,%d) -> %s", p, got.Name())
		}
	}
	// Host port h leads to host h.
	if got := ft.ToRHostPort(0, 0, 1).Dst(); got != ft.Hosts[0][0][1] {
		t.Fatalf("ToRHostPort -> %s", got.Name())
	}
}

func TestHashersDifferPerSwitch(t *testing.T) {
	_, ft := build(t, DefaultConfig())
	a := ft.ToRHasher(0, 0)
	b := ft.ToRHasher(0, 1)
	c := ft.AggHasher(0, 0)
	if a.Name() == b.Name() || a.Name() == c.Name() {
		t.Fatalf("hasher seeds collide: %s / %s / %s", a.Name(), b.Name(), c.Name())
	}
}
