// Package topo builds data-center topologies on the netsim substrate.
//
// The centerpiece is the k-ary fat-tree of Figure 1 (ToR, aggregation and
// core layers; the paper calls the middle layer "edge") with the standard
// Al-Fares addressing plan, per-switch ECMP routing, deterministic routes to
// switch loopbacks (reference packets are addressed to receiver instances),
// ToS packet marking at cores, and the reverse-ECMP path resolver that RLIR
// receivers use for downstream demultiplexing (§3.1).
package topo

import (
	"fmt"
	"time"

	"github.com/netmeasure/rlir/internal/ecmp"
	"github.com/netmeasure/rlir/internal/lpm"
	"github.com/netmeasure/rlir/internal/netsim"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// Config parameterizes a fat-tree build.
type Config struct {
	// K is the fat-tree arity: K pods, K/2 ToR + K/2 aggregation switches
	// per pod, (K/2)^2 cores, K/2 hosts per ToR. Must be even and >= 2.
	K int
	// LinkBps is the rate of every link.
	LinkBps float64
	// Propagation is the per-link propagation delay.
	Propagation time.Duration
	// QueueBytes bounds every switch output queue (0 = unbounded).
	QueueBytes int
	// ProcDelay is the per-switch packet processing delay.
	ProcDelay time.Duration
	// HashKind selects the ECMP hash family used by ToR and aggregation
	// switches. Each switch gets a distinct seed.
	HashKind ecmp.Kind
	// HashSeed is the base seed; per-switch seeds derive from it.
	HashSeed uint32
	// MarkAtCores makes core switches overwrite the ToS byte of transiting
	// packets with their core index + 1 — the packet-marking downstream
	// demux option (§3.1, [13]).
	MarkAtCores bool
}

// DefaultConfig returns a small k=4 fat-tree at 1 Gbps.
func DefaultConfig() Config {
	return Config{
		K:           4,
		LinkBps:     1e9,
		Propagation: time.Microsecond,
		QueueBytes:  256 << 10,
		ProcDelay:   500 * time.Nanosecond,
		HashKind:    ecmp.KindCRC,
		HashSeed:    0x5EED,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K < 2 || c.K%2 != 0 {
		return fmt.Errorf("topo: K must be even and >= 2, got %d", c.K)
	}
	if c.K > 254 {
		return fmt.Errorf("topo: K=%d exceeds the 8-bit address plan", c.K)
	}
	if c.LinkBps <= 0 {
		return fmt.Errorf("topo: non-positive link rate")
	}
	return nil
}

// FatTree is a built fat-tree: all nodes, addressing and routing installed.
type FatTree struct {
	Cfg Config
	Net *netsim.Network

	// Cores[j][i] is core switch i of group j; group j is reachable via
	// aggregation switch j in every pod. j,i in [0, K/2).
	Cores [][]*netsim.Node
	// Aggs[p][a] is aggregation switch a of pod p.
	Aggs [][]*netsim.Node
	// ToRs[p][e] is ToR (edge) switch e of pod p.
	ToRs [][]*netsim.Node
	// Hosts[p][e][h] is host h under ToR e of pod p.
	Hosts [][][]*netsim.Node

	torHashers map[netsim.NodeID]ecmp.Hasher
	aggHashers map[netsim.NodeID]ecmp.Hasher
	// torUp[tor][j] is the ToR port index leading to agg j; aggUp[agg][i]
	// the agg port index to core (group, i).
	torUp map[netsim.NodeID][]int
	aggUp map[netsim.NodeID][]int
}

// Half returns K/2.
func (ft *FatTree) Half() int { return ft.Cfg.K / 2 }

// HostAddr returns the address of host h under ToR e of pod p (Al-Fares:
// 10.pod.tor.2+h).
func (ft *FatTree) HostAddr(p, e, h int) packet.Addr {
	return packet.AddrFrom4(10, byte(p), byte(e), byte(2+h))
}

// ToRAddr returns the loopback of ToR e in pod p (10.pod.tor.1).
func (ft *FatTree) ToRAddr(p, e int) packet.Addr {
	return packet.AddrFrom4(10, byte(p), byte(e), 1)
}

// AggAddr returns the loopback of aggregation switch a in pod p
// (10.pod.(K/2+a).1).
func (ft *FatTree) AggAddr(p, a int) packet.Addr {
	return packet.AddrFrom4(10, byte(p), byte(ft.Half()+a), 1)
}

// CoreAddr returns the loopback of core (j, i) (10.K.j+1.i+1).
func (ft *FatTree) CoreAddr(j, i int) packet.Addr {
	return packet.AddrFrom4(10, byte(ft.Cfg.K), byte(j+1), byte(i+1))
}

// ToRSubnet returns the host prefix of ToR e in pod p (10.p.e.0/24).
func (ft *FatTree) ToRSubnet(p, e int) packet.Prefix {
	return packet.Prefix{Addr: packet.AddrFrom4(10, byte(p), byte(e), 0), Len: 24}
}

// PodPrefix returns pod p's prefix (10.p.0.0/16).
func (ft *FatTree) PodPrefix(p int) packet.Prefix {
	return packet.Prefix{Addr: packet.AddrFrom4(10, byte(p), 0, 0), Len: 16}
}

// ToRUplink returns the ToR's port leading to aggregation switch j.
func (ft *FatTree) ToRUplink(p, e, j int) *netsim.Port {
	tor := ft.ToRs[p][e]
	return tor.Port(ft.torUp[tor.ID()][j])
}

// ToRHostPort returns the ToR's port leading to host h.
func (ft *FatTree) ToRHostPort(p, e, h int) *netsim.Port {
	// Host ports follow the K/2 uplinks in creation order.
	return ft.ToRs[p][e].Port(ft.Half() + h)
}

// AggUplink returns the aggregation switch's port to core (its group, i).
func (ft *FatTree) AggUplink(p, a, i int) *netsim.Port {
	agg := ft.Aggs[p][a]
	return agg.Port(ft.aggUp[agg.ID()][i])
}

// CoreDownPort returns core (j,i)'s port toward pod p.
func (ft *FatTree) CoreDownPort(j, i, p int) *netsim.Port {
	return ft.Cores[j][i].Port(p)
}

// ToRHasher returns the ECMP hasher of ToR e in pod p.
func (ft *FatTree) ToRHasher(p, e int) ecmp.Hasher {
	return ft.torHashers[ft.ToRs[p][e].ID()]
}

// AggHasher returns the ECMP hasher of aggregation switch a in pod p.
func (ft *FatTree) AggHasher(p, a int) ecmp.Hasher {
	return ft.aggHashers[ft.Aggs[p][a].ID()]
}

// Build constructs the fat-tree on a fresh Network bound to eng.
func Build(cfg Config, nw *netsim.Network) (*FatTree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ft := &FatTree{
		Cfg:        cfg,
		Net:        nw,
		torHashers: make(map[netsim.NodeID]ecmp.Hasher),
		aggHashers: make(map[netsim.NodeID]ecmp.Hasher),
		torUp:      make(map[netsim.NodeID][]int),
		aggUp:      make(map[netsim.NodeID][]int),
	}
	k, h := cfg.K, cfg.K/2
	link := netsim.LinkConfig{RateBps: cfg.LinkBps, Propagation: cfg.Propagation, QueueBytes: cfg.QueueBytes}
	sw := netsim.NodeConfig{ProcDelay: cfg.ProcDelay}

	// Nodes.
	ft.Cores = make([][]*netsim.Node, h)
	for j := 0; j < h; j++ {
		ft.Cores[j] = make([]*netsim.Node, h)
		for i := 0; i < h; i++ {
			c := sw
			c.Name = fmt.Sprintf("core%d.%d", j, i)
			ft.Cores[j][i] = nw.AddNode(c)
		}
	}
	ft.Aggs = make([][]*netsim.Node, k)
	ft.ToRs = make([][]*netsim.Node, k)
	ft.Hosts = make([][][]*netsim.Node, k)
	for p := 0; p < k; p++ {
		ft.Aggs[p] = make([]*netsim.Node, h)
		ft.ToRs[p] = make([]*netsim.Node, h)
		ft.Hosts[p] = make([][]*netsim.Node, h)
		for a := 0; a < h; a++ {
			c := sw
			c.Name = fmt.Sprintf("agg%d.%d", p, a)
			ft.Aggs[p][a] = nw.AddNode(c)
		}
		for e := 0; e < h; e++ {
			c := sw
			c.Name = fmt.Sprintf("tor%d.%d", p, e)
			ft.ToRs[p][e] = nw.AddNode(c)
			ft.Hosts[p][e] = make([]*netsim.Node, h)
			for hh := 0; hh < h; hh++ {
				ft.Hosts[p][e][hh] = nw.AddNode(netsim.NodeConfig{Name: fmt.Sprintf("host%d.%d.%d", p, e, hh)})
			}
		}
	}

	// Links. Port creation order matters: routing below records indices.
	// Core: port p -> pod p's agg of this core's group.
	for j := 0; j < h; j++ {
		for i := 0; i < h; i++ {
			for p := 0; p < k; p++ {
				nw.Connect(ft.Cores[j][i], ft.Aggs[p][j], link)
			}
		}
	}
	// Agg: ports 0..h-1 up to cores of its group, then h..k-1 down to ToRs.
	for p := 0; p < k; p++ {
		for a := 0; a < h; a++ {
			agg := ft.Aggs[p][a]
			up := make([]int, h)
			for i := 0; i < h; i++ {
				up[i] = len(agg.Ports())
				nw.Connect(agg, ft.Cores[a][i], link)
			}
			ft.aggUp[agg.ID()] = up
			for e := 0; e < h; e++ {
				nw.Connect(agg, ft.ToRs[p][e], link)
			}
		}
	}
	// ToR: ports 0..h-1 up to aggs, then h..k-1 down to hosts.
	for p := 0; p < k; p++ {
		for e := 0; e < h; e++ {
			tor := ft.ToRs[p][e]
			up := make([]int, h)
			for a := 0; a < h; a++ {
				up[a] = len(tor.Ports())
				nw.Connect(tor, ft.Aggs[p][a], link)
			}
			ft.torUp[tor.ID()] = up
			for hh := 0; hh < h; hh++ {
				nw.Connect(tor, ft.Hosts[p][e][hh], link)
				// Host's single uplink back to its ToR.
				nw.Connect(ft.Hosts[p][e][hh], tor, link)
			}
		}
	}

	ft.installRouting()
	if cfg.MarkAtCores {
		ft.installMarking()
	}
	return ft, nil
}

// Partition places the tree's nodes onto the lanes of the network's
// parallel engine: core switches stay on lane 0 and pod p — its aggregation
// switches, ToRs and hosts — goes to lane 1 + p mod (lanes-1). With a
// single lane everything stays on lane 0. Under this map the only links
// whose endpoints differ are core<->aggregation links, so their fixed
// propagation delay (uniform by construction) is the engine's lookahead;
// everything inside a pod, including zero-delay host delivery, remains
// lane-local. More than K+1 lanes would leave lanes with no pod at all, so
// that is rejected.
func (ft *FatTree) Partition() error {
	nw := ft.Net
	pe := nw.Parallel()
	if pe == nil {
		return fmt.Errorf("topo: Partition requires a partitioned network")
	}
	lanes := pe.Lanes()
	if lanes > ft.Cfg.K+1 {
		return fmt.Errorf("topo: %d lanes exceeds K+1 = %d (one per pod plus the core lane)", lanes, ft.Cfg.K+1)
	}
	if lanes == 1 {
		return nil // everything already on lane 0
	}
	for p := 0; p < ft.Cfg.K; p++ {
		lane := 1 + p%(lanes-1)
		for _, n := range ft.Aggs[p] {
			nw.Assign(n, lane)
		}
		for e, tor := range ft.ToRs[p] {
			nw.Assign(tor, lane)
			for _, h := range ft.Hosts[p][e] {
				nw.Assign(h, lane)
			}
		}
	}
	return nil
}

// route is an LPM value: candidate output ports (empty = deliver locally).
type route []int

// installRouting builds per-switch LPM tables and forwarding closures.
func (ft *FatTree) installRouting() {
	k, h := ft.Cfg.K, ft.Half()

	seed := func(n *netsim.Node) uint32 {
		// Distinct, deterministic per-switch seeds.
		return ft.Cfg.HashSeed*2654435761 + uint32(n.ID())*40503 + 0x9E37
	}

	// Cores: pure prefix routing down to pods, loopback local.
	for j := 0; j < h; j++ {
		for i := 0; i < h; i++ {
			core := ft.Cores[j][i]
			tbl := lpm.New[route]()
			for p := 0; p < k; p++ {
				tbl.Insert(ft.PodPrefix(p), route{p})
			}
			tbl.Insert(packet.Prefix{Addr: ft.CoreAddr(j, i), Len: 32}, route{})
			core.SetForward(forwarder(core.Name(), tbl, nil))
		}
	}

	// Aggs: own pod's ToR subnets down; core loopbacks of its group pinned
	// up; default ECMP up; own loopback local.
	for p := 0; p < k; p++ {
		for a := 0; a < h; a++ {
			agg := ft.Aggs[p][a]
			tbl := lpm.New[route]()
			up := ft.aggUp[agg.ID()]
			for e := 0; e < h; e++ {
				tbl.Insert(ft.ToRSubnet(p, e), route{h + e})
			}
			// ToR loopbacks live inside ToRSubnet -> same downlink.
			for i := 0; i < h; i++ {
				tbl.Insert(packet.Prefix{Addr: ft.CoreAddr(a, i), Len: 32}, route{up[i]})
			}
			tbl.Insert(packet.Prefix{Addr: ft.AggAddr(p, a), Len: 32}, route{})
			def := make(route, h)
			copy(def, up)
			tbl.Insert(packet.Prefix{Len: 0}, def)
			hasher := ecmp.New(ft.Cfg.HashKind, seed(agg))
			ft.aggHashers[agg.ID()] = hasher
			agg.SetForward(forwarder(agg.Name(), tbl, hasher))
		}
	}

	// ToRs: hosts down; core loopbacks pinned via the matching agg; agg
	// loopbacks pinned; default ECMP up; own loopback local.
	for p := 0; p < k; p++ {
		for e := 0; e < h; e++ {
			tor := ft.ToRs[p][e]
			tbl := lpm.New[route]()
			up := ft.torUp[tor.ID()]
			for hh := 0; hh < h; hh++ {
				tbl.Insert(packet.Prefix{Addr: ft.HostAddr(p, e, hh), Len: 32}, route{h + hh})
			}
			for j := 0; j < h; j++ {
				for i := 0; i < h; i++ {
					tbl.Insert(packet.Prefix{Addr: ft.CoreAddr(j, i), Len: 32}, route{up[j]})
				}
				tbl.Insert(packet.Prefix{Addr: ft.AggAddr(p, j), Len: 32}, route{up[j]})
			}
			tbl.Insert(packet.Prefix{Addr: ft.ToRAddr(p, e), Len: 32}, route{})
			def := make(route, h)
			copy(def, up)
			tbl.Insert(packet.Prefix{Len: 0}, def)
			hasher := ecmp.New(ft.Cfg.HashKind, seed(tor))
			ft.torHashers[tor.ID()] = hasher
			tor.SetForward(forwarder(tor.Name(), tbl, hasher))
		}
	}

	// Hosts: single uplink for everything except themselves.
	for p := 0; p < k; p++ {
		for e := 0; e < h; e++ {
			for hh := 0; hh < h; hh++ {
				host := ft.Hosts[p][e][hh]
				self := ft.HostAddr(p, e, hh)
				host.SetForward(func(n *netsim.Node, pk *packet.Packet) int {
					if pk.Key.Dst == self {
						return -1
					}
					return 0
				})
			}
		}
	}
}

// forwarder builds a ForwardFunc from an LPM table and an optional ECMP
// hasher. Unroutable packets are delivered locally (and thus visible via
// the node's Delivered counter) rather than crashing the simulation.
func forwarder(name string, tbl *lpm.Table[route], hasher ecmp.Hasher) netsim.ForwardFunc {
	return func(n *netsim.Node, p *packet.Packet) int {
		ports, ok := tbl.Lookup(p.Key.Dst)
		if !ok || len(ports) == 0 {
			return -1
		}
		if len(ports) == 1 {
			return ports[0]
		}
		if hasher == nil {
			panic(fmt.Sprintf("topo: %s has multipath route but no hasher", name))
		}
		return ports[ecmp.Select(hasher, p.Key, len(ports))]
	}
}

// installMarking makes each core overwrite the ToS byte of transiting
// packets with its mark (core group*K/2 + index + 1; 0 means unmarked).
func (ft *FatTree) installMarking() {
	h := ft.Half()
	for j := 0; j < h; j++ {
		for i := 0; i < h; i++ {
			mark := ft.CoreMark(j, i)
			ft.Cores[j][i].OnReceive(func(p *packet.Packet, _ simtime.Time) {
				p.TOS = mark
			})
		}
	}
}

// CoreMark returns the ToS mark core (j,i) stamps: a dense nonzero ID.
func (ft *FatTree) CoreMark(j, i int) uint8 {
	return uint8(j*ft.Half() + i + 1)
}

// CoreForMark inverts CoreMark; ok is false for 0 or out-of-range marks.
func (ft *FatTree) CoreForMark(m uint8) (j, i int, ok bool) {
	if m == 0 || int(m) > ft.Half()*ft.Half() {
		return 0, 0, false
	}
	v := int(m) - 1
	return v / ft.Half(), v % ft.Half(), true
}

// ResolveCore performs the reverse-ECMP computation (§3.1): given a flow
// key whose source lies in pod p, it replays the source ToR's hash (which
// aggregation switch, hence which core group) and that aggregation switch's
// hash (which core within the group), returning the core's (j, i). It is
// exactly the computation an RLIR receiver performs from topology knowledge
// plus vendor-revealed hash functions.
func (ft *FatTree) ResolveCore(key packet.FlowKey) (j, i int, err error) {
	p, e, ok := ft.locateHost(key.Src)
	if !ok {
		return 0, 0, fmt.Errorf("topo: source %v is not a fat-tree host address", key.Src)
	}
	tor := ft.ToRs[p][e]
	h := ft.Half()
	j = ecmp.Select(ft.torHashers[tor.ID()], key, h)
	agg := ft.Aggs[p][j]
	i = ecmp.Select(ft.aggHashers[agg.ID()], key, h)
	return j, i, nil
}

// LocateHost maps a host address back to its (pod, tor, host) coordinates.
// ok is false for any address outside the Al-Fares host plan (switch
// loopbacks, foreign prefixes). It is the inverse of HostAddr and the one
// place the address layout is decoded — workload remappers (the scenario
// engine) depend on it instead of re-deriving octet arithmetic.
func (ft *FatTree) LocateHost(a packet.Addr) (p, e, h int, ok bool) {
	o1, o2, o3, o4 := a.Octets()
	if o1 != 10 || int(o2) >= ft.Cfg.K || int(o3) >= ft.Half() || o4 < 2 || int(o4) >= 2+ft.Half() {
		return 0, 0, 0, false
	}
	return int(o2), int(o3), int(o4) - 2, true
}

// locateHost is LocateHost without the host index.
func (ft *FatTree) locateHost(a packet.Addr) (p, e int, ok bool) {
	p, e, _, ok = ft.LocateHost(a)
	return p, e, ok
}
