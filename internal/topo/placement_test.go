package topo

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPlacementPaperFormulas(t *testing.T) {
	// Spot-check the paper's closed forms at k=4 (the Figure 1 topology).
	pl := Placement{K: 4}
	if got := pl.PairOfInterfaces(); got != 6 {
		t.Errorf("PairOfInterfaces(4) = %d, want 6 (k+2)", got)
	}
	if got := pl.PairOfToRs(); got != 12 {
		t.Errorf("PairOfToRs(4) = %d, want 12 (k(k+2)/2)", got)
	}
	if got := pl.AllToRPairs(); got != 20 {
		t.Errorf("AllToRPairs(4) = %d, want 20 ((k/2)^2(k+1))", got)
	}
	// Full: (5/4)k^3(k-1) = (5/4)*64*3 = 240.
	if got := pl.FullDeployment(); got != 240 {
		t.Errorf("FullDeployment(4) = %d, want 240", got)
	}
}

func TestPlacementFigure1Narrative(t *testing.T) {
	// The paper's running example: "we can divide the path between T1 and
	// T7 into segments ... which will reduce the number of upgraded routers
	// from 5 to 3". For one ToR-interface pair in a k=4 tree, RLIR touches
	// 2 ToRs + 2 cores = 4 routers vs 5 on the full path (T1,E,C,E,T7 —
	// wait: RLIR upgrades T1, T7 and the k/2 = 2 cores, while full
	// deployment upgrades every router on every path). The instance count
	// k+2 = 6 covers 2 per core + 1 per ToR.
	pl := Placement{K: 4}
	if pl.PairOfInterfaces() != 2*2+2 {
		t.Fatal("instance accounting drifted from §3.1")
	}
}

func TestPlacementMonotoneAndOrdered(t *testing.T) {
	f := func(raw uint8) bool {
		k := int(raw%60)*2 + 4 // even, 4..122
		pl := Placement{K: k}
		// Strategies are ordered by coverage, so by cost.
		return pl.PairOfInterfaces() < pl.PairOfToRs() &&
			pl.PairOfToRs() < pl.AllToRPairs() &&
			pl.AllToRPairs() < pl.FullDeployment() &&
			pl.Reduction() > 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementGrowthOrders(t *testing.T) {
	// PairOfInterfaces is Θ(k): doubling k roughly doubles it.
	// AllToRPairs is Θ(k³); FullDeployment Θ(k⁴).
	a, b := Placement{K: 16}, Placement{K: 32}
	if r := float64(b.PairOfInterfaces()) / float64(a.PairOfInterfaces()); r < 1.8 || r > 2.2 {
		t.Errorf("pair-of-interfaces growth %v, want ~2", r)
	}
	if r := float64(b.AllToRPairs()) / float64(a.AllToRPairs()); r < 7 || r > 9 {
		t.Errorf("all-ToR-pairs growth %v, want ~8", r)
	}
	if r := float64(b.FullDeployment()) / float64(a.FullDeployment()); r < 14 || r > 18 {
		t.Errorf("full-deployment growth %v, want ~16", r)
	}
}

func TestPlacementValidate(t *testing.T) {
	for _, k := range []int{0, 1, 3, -2} {
		if err := (Placement{K: k}).Validate(); err == nil {
			t.Errorf("K=%d should fail", k)
		}
	}
	if err := (Placement{K: 48}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestTableAndFormat(t *testing.T) {
	rows, err := Table([]int{4, 8, 16, 32, 48})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := FormatTable(rows)
	if !strings.Contains(out, "48") || !strings.Contains(out, "full-deploy") {
		t.Fatalf("table missing content:\n%s", out)
	}
	if _, err := Table([]int{5}); err == nil {
		t.Fatal("odd k should fail")
	}
}

func TestCountSwitchesMatchesBuiltTopology(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		cfg := DefaultConfig()
		cfg.K = k
		_, ft := build(t, cfg)
		tors, aggs, cores := CountSwitches(k)
		gotCores := 0
		for _, g := range ft.Cores {
			gotCores += len(g)
		}
		gotTors, gotAggs := 0, 0
		for p := 0; p < k; p++ {
			gotTors += len(ft.ToRs[p])
			gotAggs += len(ft.Aggs[p])
		}
		if gotTors != tors || gotAggs != aggs || gotCores != cores {
			t.Fatalf("k=%d: built %d/%d/%d, formulas %d/%d/%d",
				k, gotTors, gotAggs, gotCores, tors, aggs, cores)
		}
	}
}

// TestFullDeploymentAgainstBruteForce recomputes the full-deployment count
// by enumerating the built fat-tree's switches and their interface pairs.
func TestFullDeploymentAgainstBruteForce(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		cfg := DefaultConfig()
		cfg.K = k
		_, ft := build(t, cfg)
		brute := 0
		countSwitch := func(ports int) { brute += ports * (ports - 1) }
		for _, g := range ft.Cores {
			for _, c := range g {
				countSwitch(len(c.Ports()))
			}
		}
		for p := 0; p < k; p++ {
			for _, a := range ft.Aggs[p] {
				countSwitch(len(a.Ports()))
			}
			for _, e := range ft.ToRs[p] {
				countSwitch(len(e.Ports()))
			}
		}
		if got := (Placement{K: k}).FullDeployment(); got != brute {
			t.Fatalf("k=%d: formula %d, brute force %d", k, got, brute)
		}
	}
}
