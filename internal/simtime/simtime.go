// Package simtime defines the virtual time base shared by the simulator and
// the measurement instruments.
//
// Simulated time is an int64 count of nanoseconds since the start of the
// simulation. Durations are the standard library's time.Duration, which is
// also an int64 nanosecond count, so arithmetic between the two is exact and
// allocation-free.
package simtime

import (
	"fmt"
	"time"
)

// Time is an instant in simulated time, in nanoseconds since simulation
// start. The zero value is the simulation epoch.
type Time int64

// Common instants.
const (
	// Zero is the simulation epoch.
	Zero Time = 0
	// Never is a sentinel placed after every representable instant. It is
	// useful as an "unset deadline" marker.
	Never Time = 1<<63 - 1
)

// FromDuration returns the instant d after the simulation epoch.
func FromDuration(d time.Duration) Time { return Time(d) }

// FromSeconds returns the instant s seconds after the simulation epoch.
func FromSeconds(s float64) Time { return Time(s * float64(time.Second)) }

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns t as a floating-point number of seconds since the epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Duration returns t as a duration since the epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats t as a duration since the epoch, e.g. "1.5ms".
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return time.Duration(t).String()
}

// Rate converts a byte count transferred over the interval [from, to] into
// bits per second. It returns 0 if the interval is empty.
func Rate(bytes int64, from, to Time) float64 {
	if to <= from {
		return 0
	}
	return float64(bytes*8) / to.Sub(from).Seconds()
}

// TxTime returns the wire serialization time of a frame of the given size at
// the given link rate in bits per second. It panics if rateBps is not
// positive, since a zero-rate link cannot transmit.
func TxTime(sizeBytes int, rateBps float64) time.Duration {
	if rateBps <= 0 {
		panic(fmt.Sprintf("simtime: non-positive link rate %v", rateBps))
	}
	return time.Duration(float64(sizeBytes*8) / rateBps * float64(time.Second))
}
