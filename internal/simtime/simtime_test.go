package simtime

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestAddSub(t *testing.T) {
	t0 := FromSeconds(1.5)
	t1 := t0.Add(250 * time.Microsecond)
	if got, want := t1.Sub(t0), 250*time.Microsecond; got != want {
		t.Fatalf("Sub = %v, want %v", got, want)
	}
	if !t0.Before(t1) || !t1.After(t0) {
		t.Fatalf("ordering broken: t0=%v t1=%v", t0, t1)
	}
}

func TestFromDuration(t *testing.T) {
	if got := FromDuration(3 * time.Millisecond); got != Time(3_000_000) {
		t.Fatalf("FromDuration = %d, want 3000000", got)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	for _, s := range []float64{0, 1e-9, 0.001, 1, 59.999, 3600} {
		got := FromSeconds(s).Seconds()
		if math.Abs(got-s) > 1e-9*math.Max(1, s) {
			t.Errorf("FromSeconds(%v).Seconds() = %v", s, got)
		}
	}
}

func TestString(t *testing.T) {
	if got := FromSeconds(0.0005).String(); got != "500µs" {
		t.Errorf("String = %q, want 500µs", got)
	}
	if got := Never.String(); got != "never" {
		t.Errorf("Never.String() = %q", got)
	}
}

func TestRate(t *testing.T) {
	// 1250 bytes over 1 ms = 10 Mbit/s.
	from := Zero
	to := from.Add(time.Millisecond)
	if got := Rate(1250, from, to); math.Abs(got-10e6) > 1 {
		t.Fatalf("Rate = %v, want 10e6", got)
	}
	if got := Rate(100, to, from); got != 0 {
		t.Fatalf("Rate over empty interval = %v, want 0", got)
	}
	if got := Rate(100, to, to); got != 0 {
		t.Fatalf("Rate over zero interval = %v, want 0", got)
	}
}

func TestTxTime(t *testing.T) {
	// 1500 bytes at 1 Gbit/s = 12 µs.
	got := TxTime(1500, 1e9)
	if got != 12*time.Microsecond {
		t.Fatalf("TxTime = %v, want 12µs", got)
	}
	// 64 bytes at 10 Gbit/s = 51.2 ns.
	got = TxTime(64, 10e9)
	if got < 51*time.Nanosecond || got > 52*time.Nanosecond {
		t.Fatalf("TxTime = %v, want ~51.2ns", got)
	}
}

func TestTxTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero rate")
		}
	}()
	TxTime(100, 0)
}

func TestAddSubProperty(t *testing.T) {
	// t.Add(d).Sub(t) == d for all representable inputs that do not overflow.
	f := func(base int64, delta int32) bool {
		t0 := Time(base % (1 << 40))
		d := time.Duration(delta)
		return t0.Add(d).Sub(t0) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRateTxTimeInverse(t *testing.T) {
	// Transmitting n bytes for TxTime(n, r) yields utilization ~= r.
	f := func(size uint16, rateMbps uint8) bool {
		n := int(size)%1500 + 64
		r := (float64(rateMbps) + 1) * 1e6
		d := TxTime(n, r)
		got := Rate(int64(n), Zero, Zero.Add(d))
		return math.Abs(got-r)/r < 0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
