package collector

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/packet"
)

// fakeClock is a deterministic time source tests advance by hand.
type fakeClock struct {
	mu  chan struct{}
	now time.Time
}

func newFakeClock() *fakeClock {
	c := &fakeClock{mu: make(chan struct{}, 1), now: time.Unix(0, 0)}
	c.mu <- struct{}{}
	return c
}

func (c *fakeClock) Now() time.Time {
	<-c.mu
	defer func() { c.mu <- struct{}{} }()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	<-c.mu
	defer func() { c.mu <- struct{}{} }()
	c.now = c.now.Add(d)
}

// conserved sums sample counts across every tier of a collector cut —
// live flows, class rollups and the root — and compares to the number
// ingested. Eviction must move samples between tiers, never lose them.
func conserved(t *testing.T, c *Collector, ingested uint64) {
	t.Helper()
	var n int64
	for _, a := range c.Snapshot() {
		n += a.Est.N()
	}
	r := c.RollupSnapshot()
	for _, a := range r.Classes {
		n += a.Est.N()
	}
	n += r.Root.Est.N()
	if uint64(n) != ingested {
		t.Fatalf("conservation violated: %d samples across tiers, ingested %d", n, ingested)
	}
}

// TestEvictionCapBound pins the MaxFlows contract: the live table never
// exceeds the cap, displaced flows fold into their class rollups, and no
// sample is lost in the move.
func TestEvictionCapBound(t *testing.T) {
	const maxFlows = 64
	c := New(Config{Shards: 4, MaxFlows: maxFlows})
	stream := genStream(3, 2000, 20000)
	for i := 0; i < len(stream); i += 512 {
		c.Ingest(stream[i:min(i+512, len(stream))])
	}
	st := c.Stats()
	// Per-shard caps round up, so allow the rounded total.
	if cap := 4 * perShard(maxFlows, 4); st.Flows > cap {
		t.Fatalf("tracked %d flows, cap %d", st.Flows, cap)
	}
	if st.Evicted == 0 {
		t.Fatal("2000 flows through a 64-flow table evicted nothing")
	}
	if st.Expired != 0 {
		t.Fatalf("no window configured but %d flows expired", st.Expired)
	}
	conserved(t, c, uint64(len(stream)))
	r := c.RollupSnapshot()
	if len(r.Classes) == 0 {
		t.Fatal("evictions produced no class rollups")
	}
	for _, a := range r.Classes {
		if a.Key != a.Key.Class() {
			t.Fatalf("class rollup keyed by non-class key %v", a.Key)
		}
	}
	c.Close()
}

// TestWindowExpiry drives idle expiry with a fake clock: flows untouched
// for longer than the window fold into the rollup tiers even though the
// table is nowhere near full, while fresh flows stay live.
func TestWindowExpiry(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{Shards: 2, Window: time.Minute, Clock: clk.Now})
	old := genStream(5, 50, 500)
	c.Ingest(old)
	if got := c.Stats(); got.Flows == 0 || got.Expired != 0 {
		t.Fatalf("pre-expiry stats %+v", got)
	}

	clk.Advance(2 * time.Minute)
	fresh := genStream(6, 10, 100)
	c.Ingest(fresh) // batch processing triggers the expiry scan
	st := c.Stats()
	if st.Expired == 0 {
		t.Fatal("idle flows survived past the window")
	}
	if st.Evicted != 0 {
		t.Fatalf("no cap configured but %d flows evicted", st.Evicted)
	}
	// Only the fresh population remains live.
	for _, a := range c.Snapshot() {
		if a.Est.N() == 0 {
			t.Fatalf("live flow %v has no samples", a.Key)
		}
	}
	conserved(t, c, uint64(len(old)+len(fresh)))
	c.Close()
}

// TestClassOverflowToRoot pins the third tier: once the class table is
// full, evicted flows of unseen classes fold into the router-level root.
func TestClassOverflowToRoot(t *testing.T) {
	// One shard so caps are exact, many distinct src/dst pairs so class keys
	// are plentiful.
	c := New(Config{Shards: 1, MaxFlows: 8, MaxClasses: 4})
	stream := genStream(9, 3000, 12000)
	c.Ingest(stream)
	r := c.RollupSnapshot()
	if len(r.Classes) > 4 {
		t.Fatalf("class tier grew to %d, cap 4", len(r.Classes))
	}
	if r.Root.Est.N() == 0 {
		t.Fatal("class overflow never reached the root aggregate")
	}
	conserved(t, c, uint64(len(stream)))
	c.Close()
}

// TestRollupAfterCloseAndMerge pins that rollups stay readable after Close
// and that MergeRollups combines per-instance rollups: stats sum, same-key
// classes merge, sketch tiers bit-exactly.
func TestRollupAfterCloseAndMerge(t *testing.T) {
	c := New(Config{Shards: 2, MaxFlows: 16})
	stream := genStream(11, 500, 5000)
	c.Ingest(stream)
	live := c.RollupSnapshot()
	c.Close()
	closed := c.RollupSnapshot()
	if !reflect.DeepEqual(live, closed) {
		t.Fatal("rollup after Close differs from live rollup")
	}

	merged := MergeRollups(live)
	if !reflect.DeepEqual(merged, live) {
		t.Fatal("identity MergeRollups changed the rollup")
	}
	double := MergeRollups(live, live)
	if double.Stats.Evicted != 2*live.Stats.Evicted {
		t.Fatalf("merged eviction counters %d, want %d", double.Stats.Evicted, 2*live.Stats.Evicted)
	}
	if got, want := double.Root.Est.N(), 2*live.Root.Est.N(); got != want {
		t.Fatalf("merged root samples %d, want %d", got, want)
	}
	if len(double.Classes) != len(live.Classes) {
		t.Fatalf("same-key classes did not merge: %d vs %d", len(double.Classes), len(live.Classes))
	}
	for i := range double.Classes {
		if got, want := double.Classes[i].Sketch.Count(), 2*live.Classes[i].Sketch.Count(); got != want {
			t.Fatalf("class %v sketch count %d, want %d", double.Classes[i].Key, got, want)
		}
	}
}

// TestChurnSoakHeapFlat is the memory-bound acceptance gate: churn one
// million distinct flow keys through a capped collector and require the
// live heap to stay flat — the whole point of eviction plus the
// bounded-size sketch. Without MaxFlows the same stream would allocate a
// million flow aggregates.
func TestChurnSoakHeapFlat(t *testing.T) {
	total := 1 << 20 // one million distinct FlowKeys
	if testing.Short() {
		total = 1 << 17
	}
	c := New(Config{Shards: 4, MaxFlows: 4096, MaxClasses: 1024})

	// Warm up past the cap so the steady-state footprint is established,
	// then measure heap growth across the remaining churn.
	const batch = 1024
	key := func(i int) packet.FlowKey {
		return packet.FlowKey{
			Src:     packet.AddrFrom4(10, byte(i>>21), byte(i>>14&0x7f), byte(i>>7&0x7f)),
			Dst:     packet.AddrFrom4(10, 99, byte(i>>14&0x7f), byte(i>>7&0x7f)),
			SrcPort: uint16(i&0x7f) + 1024,
			DstPort: 443,
			Proto:   packet.ProtoTCP,
		}
	}
	smps := make([]Sample, batch)
	ingest := func(from, to int) {
		for i := from; i < to; i += batch {
			for j := range smps {
				smps[j] = Sample{Key: key(i + j), Est: time.Duration(1000 + i + j)}
			}
			c.Ingest(smps)
		}
	}

	warm := total / 8
	ingest(0, warm)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	ingest(warm, total)
	runtime.GC()
	runtime.ReadMemStats(&after)

	st := c.Stats()
	if st.Evicted == 0 {
		t.Fatal("soak did not churn the table")
	}
	if distinct := st.Flows + int(st.Evicted) + int(st.Expired); distinct != total {
		t.Fatalf("churned %d distinct flows, want %d", distinct, total)
	}
	// Flat means: growing the distinct-flow population 8x past warm-up adds
	// no more than a fixed slack (GC noise, map/LRU steady state) — far less
	// than the hundreds of MB a million tracked flows would cost.
	const slack = 16 << 20
	if after.HeapAlloc > before.HeapAlloc+slack {
		t.Fatalf("heap grew %d -> %d bytes during churn (slack %d): eviction is not bounding memory",
			before.HeapAlloc, after.HeapAlloc, slack)
	}
	t.Logf("churned %d distinct flows: heap %.1f MB -> %.1f MB (tracked %d, evicted %d, classes %d)",
		total, float64(before.HeapAlloc)/(1<<20), float64(after.HeapAlloc)/(1<<20),
		st.Flows, st.Evicted, st.Classes)
	conserved(t, c, uint64(total))
	c.Close()
}
