package collector

import (
	"testing"

	"github.com/netmeasure/rlir/internal/packet"
)

// BenchmarkIngest measures collector ingest throughput: samples pushed
// through the sharded plane per second of wall clock, including partitioning
// and shard aggregation. scripts/bench.sh records this in BENCH_N.json.
func BenchmarkIngest(b *testing.B) {
	stream := genStream(1, 4096, 1<<16)
	const batch = 512
	b.ReportAllocs()
	b.ResetTimer()
	c := New(Config{Shards: 4, Depth: 64})
	for i := 0; i < b.N; i++ {
		off := (i * batch) % (len(stream) - batch)
		c.Ingest(stream[off : off+batch])
	}
	b.StopTimer()
	c.Close()
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkIngestSequentialBaseline is the same aggregation with no
// sharding, channels or goroutines — the number Ingest's overhead is judged
// against.
func BenchmarkIngestSequentialBaseline(b *testing.B) {
	stream := genStream(1, 4096, 1<<16)
	const batch = 512
	s := &shard{flows: make(map[packet.FlowKey]*FlowAgg)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (i * batch) % (len(stream) - batch)
		for _, smp := range stream[off : off+batch] {
			s.agg(smp.Key).addSample(smp)
		}
	}
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "samples/s")
}
