package collector

import (
	"container/list"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/packet"
)

// BenchmarkIngest measures collector ingest throughput: samples pushed
// through the sharded plane per second of wall clock, including partitioning
// and shard aggregation. scripts/bench.sh records this in BENCH_N.json.
func BenchmarkIngest(b *testing.B) {
	stream := genStream(1, 4096, 1<<16)
	const batch = 512
	b.ReportAllocs()
	b.ResetTimer()
	c := New(Config{Shards: 4, Depth: 64})
	for i := 0; i < b.N; i++ {
		off := (i * batch) % (len(stream) - batch)
		c.Ingest(stream[off : off+batch])
	}
	b.StopTimer()
	c.Close()
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkIngestSequentialBaseline is the same aggregation with no
// sharding, channels or goroutines — the number Ingest's overhead is judged
// against.
func BenchmarkIngestSequentialBaseline(b *testing.B) {
	stream := genStream(1, 4096, 1<<16)
	const batch = 512
	s := &shard{flows: make(map[packet.FlowKey]*flowEntry), lru: list.New()}
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (i * batch) % (len(stream) - batch)
		for _, smp := range stream[off : off+batch] {
			s.agg(smp.Key, now).addSample(smp)
		}
	}
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkEvictionChurn measures aggregation throughput while every batch
// cycles brand-new flow keys through a full bounded table — the worst case
// where each insert evicts the LRU flow into the rollup tiers.
// scripts/bench.sh records this in BENCH_N.json.
func BenchmarkEvictionChurn(b *testing.B) {
	const batch = 512
	stream := genStream(1, 1<<20, 1<<20) // ~one sample per distinct flow
	// Both tiers bounded, as a production cap would set them: with the
	// class tier unbounded the map grows for the whole run and the
	// benchmark never reaches a steady state.
	s := &shard{
		flows:      make(map[packet.FlowKey]*flowEntry),
		lru:        list.New(),
		classes:    make(map[packet.FlowKey]*FlowAgg),
		maxFlows:   1024,
		maxClasses: 256,
	}
	now := time.Now()
	// Fill the table to its cap first so every timed batch evicts — the
	// steady churn state, even at b.N = 1.
	warm := s.maxFlows
	for _, smp := range stream[:warm] {
		s.agg(smp.Key, now).addSample(smp)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := warm + (i*batch)%(len(stream)-batch-warm)
		for _, smp := range stream[off : off+batch] {
			s.agg(smp.Key, now).addSample(smp)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "samples/s")
	if s.evicted == 0 {
		b.Fatal("no evictions: churn benchmark not churning")
	}
}
