// Package collector is the concurrent measurement plane: the aggregation
// tier that a fleet of RLI receivers and NetFlow exporters stream per-flow
// telemetry into (the operational story of the paper's §3 — YAF/NetFlow
// export feeding an operator's collection infrastructure).
//
// A Collector hashes flows onto N shards. Each shard is owned by exactly one
// goroutine draining a bounded channel of batches, so per-flow aggregation
// needs no locks: all samples of one flow land on one shard, in ingest
// order. That gives the plane its determinism contract:
//
//   - Per-flow aggregates are bit-for-bit identical to single-threaded
//     sequential aggregation of the same stream, for any shard count, as
//     long as each flow's samples are ingested by one producer (they never
//     reorder within a shard).
//   - Cross-flow output order is canonicalized by sorting snapshots on
//     packet.FlowKey.Less.
//   - Merging snapshots from independent collectors (e.g. per-run planes in
//     a multi-seed sweep) with Merge is associative over disjoint flows and
//     uses the stats package's mergeable accumulators otherwise.
//
// # Wire format
//
// Ingestion accepts native batches ([]Sample, []netflow.Record) or the
// compact binary export format (wire.go): length-delimited frames carrying
// sample batches, NetFlow-record batches, or an exporter-identity hello.
// DecodeFrame consumes frames from an in-memory buffer; FrameReader
// (stream.go) consumes them from a socket, validating each header's record
// count against a bound before committing memory — the ingest front-end of
// the long-lived service in internal/service.
//
// Consumers: internal/runner batches per-run estimates into a shared
// collector for multi-seed sweeps; internal/scenario streams every engine
// run's estimates through a collector; internal/service keeps one alive
// behind TCP/Unix listeners and serves its snapshots over HTTP (cmd/rlird).
package collector
