package collector

import (
	"container/list"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// genStream builds a deterministic sample stream over nFlows flows.
func genStream(seed int64, nFlows, nSamples int) []Sample {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]packet.FlowKey, nFlows)
	for i := range keys {
		keys[i] = randKey(rng)
	}
	out := make([]Sample, nSamples)
	for i := range out {
		out[i] = Sample{
			Key:  keys[rng.Intn(nFlows)],
			Est:  time.Duration(rng.Int63n(int64(time.Millisecond))),
			True: time.Duration(rng.Int63n(int64(time.Millisecond))),
		}
	}
	return out
}

// sequentialAggregate is the single-threaded reference the sharded plane
// must match.
func sequentialAggregate(stream []Sample, recs []netflow.Record) []FlowAgg {
	s := &shard{flows: make(map[packet.FlowKey]*flowEntry), lru: list.New()}
	var now time.Time
	for _, smp := range stream {
		s.agg(smp.Key, now).addSample(smp)
	}
	for _, r := range recs {
		s.agg(r.Key, now).addRecord(r)
	}
	out := s.snapshot()
	// Canonical order, as Snapshot produces.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Key.Less(out[j-1].Key); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestShardedEqualsSequential is the acceptance-criteria test: a 2-shard
// collector's snapshot must equal single-threaded aggregation of the same
// record stream bit-for-bit. It holds exactly (not just within tolerance)
// because a flow's samples never split across shards, so every per-flow
// accumulator sees the identical sample sequence.
func TestShardedEqualsSequential(t *testing.T) {
	stream := genStream(7, 200, 20000)
	recs := make([]netflow.Record, 0, 100)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		s := stream[rng.Intn(len(stream))]
		recs = append(recs, netflow.Record{
			Key: s.Key, First: simtime.Time(i), Last: simtime.Time(i + 1000),
			Packets: uint64(rng.Intn(100) + 1), Bytes: uint64(rng.Intn(100000)),
		})
	}
	want := sequentialAggregate(stream, recs)

	for _, shards := range []int{1, 2, 5} {
		c := New(Config{Shards: shards, Depth: 4})
		for i := 0; i < len(stream); i += 512 {
			end := min(i+512, len(stream))
			c.Ingest(stream[i:end])
		}
		c.IngestRecords(recs)
		got := c.Snapshot()
		c.Close()
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d flows, want %d", shards, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("shards=%d: flow %v diverges from sequential aggregation:\n got %+v\nwant %+v",
					shards, got[i].Key, got[i], want[i])
			}
		}
		if c.SamplesIngested() != uint64(len(stream)) || c.RecordsIngested() != uint64(len(recs)) {
			t.Fatalf("shards=%d: counters %d/%d, want %d/%d",
				shards, c.SamplesIngested(), c.RecordsIngested(), len(stream), len(recs))
		}
	}
}

// TestSnapshotAfterClose pins that the final state stays readable.
func TestSnapshotAfterClose(t *testing.T) {
	c := New(Config{Shards: 3})
	stream := genStream(9, 20, 500)
	c.Ingest(stream)
	live := c.Snapshot()
	c.Close()
	closed := c.Snapshot()
	if !reflect.DeepEqual(live, closed) {
		t.Fatal("snapshot after Close differs from live snapshot")
	}
	if c.Flows() != len(closed) {
		t.Fatalf("Flows() = %d, want %d", c.Flows(), len(closed))
	}
}

// TestConcurrentProducers drives the collector from many goroutines at once
// (run under -race in CI). Each producer owns a disjoint flow population, so
// per-flow results must still match sequential aggregation exactly.
func TestConcurrentProducers(t *testing.T) {
	const producers = 8
	streams := make([][]Sample, producers)
	var all []Sample
	for p := range streams {
		// Distinct seeds -> disjoint random keys (collision chance over
		// 96-bit keys is negligible, and determinism makes any collision
		// reproducible rather than flaky).
		streams[p] = genStream(int64(100+p), 50, 5000)
		all = append(all, streams[p]...)
	}
	want := sequentialAggregate(all, nil)

	c := New(Config{Shards: 4, Depth: 2})
	var wg sync.WaitGroup
	for p := range streams {
		wg.Add(1)
		go func(stream []Sample) {
			defer wg.Done()
			for i := 0; i < len(stream); i += 256 {
				end := min(i+256, len(stream))
				c.Ingest(stream[i:end])
			}
		}(streams[p])
	}
	wg.Wait()
	got := c.Snapshot()
	c.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent ingest diverges from sequential aggregation (%d vs %d flows)", len(got), len(want))
	}
}

// TestIngestFrame checks the wire path lands in the same aggregates as the
// native path.
func TestIngestFrame(t *testing.T) {
	stream := genStream(11, 30, 2000)
	recs := []netflow.Record{{Key: stream[0].Key, First: 5, Last: 99, Packets: 7, Bytes: 4242}}
	want := sequentialAggregate(stream, recs)

	var buf []byte
	buf = AppendSamples(buf, stream[:1000])
	buf = AppendSamples(buf, stream[1000:])
	buf = AppendRecords(buf, recs)

	c := New(Config{Shards: 2})
	for len(buf) > 0 {
		n, err := c.IngestFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = buf[n:]
	}
	got := c.Snapshot()
	c.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("wire-path aggregation diverges from native-path aggregation")
	}
}

// TestMergeSnapshots: merging two planes' snapshots equals one plane over
// the union stream, up to Welford merge reassociation on shared flows.
func TestMergeSnapshots(t *testing.T) {
	a := genStream(21, 40, 3000)
	b := genStream(22, 40, 3000)

	ca := New(Config{Shards: 2})
	ca.Ingest(a)
	snapA := ca.Snapshot()
	ca.Close()
	cb := New(Config{Shards: 3})
	cb.Ingest(b)
	snapB := cb.Snapshot()
	cb.Close()

	merged := Merge(snapA, snapB)
	want := sequentialAggregate(append(append([]Sample{}, a...), b...), nil)
	if len(merged) != len(want) {
		t.Fatalf("merged %d flows, want %d", len(merged), len(want))
	}
	for i := range merged {
		g, w := merged[i], want[i]
		if g.Key != w.Key || g.Est.N() != w.Est.N() || g.Hist.Count() != w.Hist.Count() {
			t.Fatalf("flow %d: key/count mismatch: %+v vs %+v", i, g, w)
		}
		if d := math.Abs(g.Est.Mean() - w.Est.Mean()); d > 1e-9*math.Abs(w.Est.Mean()) {
			t.Fatalf("flow %v: merged mean %v vs sequential %v", g.Key, g.Est.Mean(), w.Est.Mean())
		}
	}
	// Disjoint flow sets merge exactly.
	if got := Merge(snapA); !reflect.DeepEqual(got, snapA) {
		t.Fatal("identity merge changed aggregates")
	}
}

// TestSnapshotCloseConcurrent: Snapshot racing Close must neither panic
// (send on closed channel) nor race (run under -race in CI) — it returns
// either a live cut or the final state.
func TestSnapshotCloseConcurrent(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		c := New(Config{Shards: 2})
		c.Ingest(genStream(int64(iter), 10, 200))
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if got := c.Snapshot(); len(got) == 0 {
					t.Error("snapshot lost ingested flows")
				}
			}()
		}
		c.Close()
		wg.Wait()
	}
}
