package collector

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
	"unicode/utf8"

	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

func testSamples(n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{
			Key: packet.FlowKey{
				Src: packet.Addr(0x0a000001 + i), Dst: packet.Addr(0x0a000100 + i),
				SrcPort: uint16(1000 + i), DstPort: 80, Proto: 6,
			},
			Est:  time.Duration(i+1) * time.Microsecond,
			True: time.Duration(i+2) * time.Microsecond,
		}
	}
	return out
}

func TestHelloFrameRoundTrip(t *testing.T) {
	buf := AppendHello(nil, "tor3.0")
	f, n, err := DecodeFrame(buf)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if f.Type != MsgHello || f.Hello != "tor3.0" {
		t.Fatalf("got type=%d hello=%q", f.Type, f.Hello)
	}
}

func TestHelloFrameTruncatesLongName(t *testing.T) {
	long := strings.Repeat("x", MaxHelloLen+40)
	buf := AppendHello(nil, long)
	f, _, err := DecodeFrame(buf)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if len(f.Hello) != MaxHelloLen {
		t.Fatalf("hello length %d, want truncation to %d", len(f.Hello), MaxHelloLen)
	}
}

// TestHelloTruncatesAtRuneBoundary pins names so a multi-byte rune
// straddles the MaxHelloLen cut: the wire must carry valid UTF-8 ending on
// a whole rune, and HelloName must report exactly what was sent.
func TestHelloTruncatesAtRuneBoundary(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		// 255 % 3 == 0, so pure 3-byte runes would cut cleanly; the one
		// ASCII byte up front forces the cut to straddle a rune.
		{"ascii prefix then 3-byte runes", "x" + strings.Repeat("日", 100)},
		{"2-byte runes", strings.Repeat("é", 200)},
		{"4-byte runes", strings.Repeat("\U0001F600", 80)},
		{"emoji with ascii", strings.Repeat("a", MaxHelloLen-2) + "\U0001F600"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := AppendHello(nil, tc.in)
			f, _, err := DecodeFrame(buf)
			if err != nil {
				t.Fatalf("DecodeFrame: %v", err)
			}
			if !utf8.ValidString(f.Hello) {
				t.Errorf("wire carried a torn rune: %q", f.Hello)
			}
			if len(f.Hello) > MaxHelloLen {
				t.Errorf("hello length %d exceeds MaxHelloLen", len(f.Hello))
			}
			if !strings.HasPrefix(tc.in, f.Hello) {
				t.Errorf("truncation rewrote the name: %q not a prefix of input", f.Hello)
			}
			if want := HelloName(tc.in); f.Hello != want {
				t.Errorf("HelloName = %q but wire carried %q", want, f.Hello)
			}
			// The cut must not cost more than one rune's worth of bytes.
			if len(tc.in) > MaxHelloLen && len(f.Hello) < MaxHelloLen-utf8.UTFMax {
				t.Errorf("over-truncated: %d bytes, want within %d of %d",
					len(f.Hello), utf8.UTFMax, MaxHelloLen)
			}
		})
	}
	if got := HelloName("short"); got != "short" {
		t.Errorf("HelloName(short) = %q, want unchanged", got)
	}
}

// TestFrameReaderStream decodes a heterogeneous frame sequence from one
// byte stream, the service's ingest path.
func TestFrameReaderStream(t *testing.T) {
	samples := testSamples(5)
	recs := []netflow.Record{{
		Key:     samples[0].Key,
		First:   simtime.FromDuration(time.Millisecond),
		Last:    simtime.FromDuration(2 * time.Millisecond),
		Packets: 7, Bytes: 7000,
	}}
	var wire []byte
	wire = AppendHello(wire, "core0.1")
	wire = AppendSamples(wire, samples)
	wire = AppendRecords(wire, recs)
	wire = AppendSamples(wire, nil) // empty frame is valid

	fr := NewFrameReader(bytes.NewReader(wire), 0)
	f, err := fr.Next()
	if err != nil || f.Type != MsgHello || f.Hello != "core0.1" {
		t.Fatalf("frame 1: %+v, %v", f, err)
	}
	f, err = fr.Next()
	if err != nil || len(f.Samples) != 5 {
		t.Fatalf("frame 2: %+v, %v", f, err)
	}
	if f.Samples[3] != samples[3] {
		t.Fatalf("sample round trip: got %+v want %+v", f.Samples[3], samples[3])
	}
	f, err = fr.Next()
	if err != nil || len(f.Records) != 1 || f.Records[0] != recs[0] {
		t.Fatalf("frame 3: %+v, %v", f, err)
	}
	f, err = fr.Next()
	if err != nil || f.Type != MsgSamples || len(f.Samples) != 0 {
		t.Fatalf("frame 4: %+v, %v", f, err)
	}
	if _, err = fr.Next(); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

// TestFrameReaderTruncated covers both truncation sites: inside a header
// and inside a body.
func TestFrameReaderTruncated(t *testing.T) {
	full := AppendSamples(nil, testSamples(3))
	for _, cut := range []int{1, FrameHeaderSize - 1, FrameHeaderSize + 1, len(full) - 1} {
		fr := NewFrameReader(bytes.NewReader(full[:cut]), 0)
		if _, err := fr.Next(); !errors.Is(err, ErrTruncatedFrame) {
			t.Errorf("cut at %d: err %v, want ErrTruncatedFrame", cut, err)
		}
	}
}

// errReader fails with a fixed error after serving its prefix.
type errReader struct {
	data []byte
	err  error
}

func (r *errReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestFrameReaderPreservesReadError pins that the underlying transport
// error stays in the chain alongside ErrTruncatedFrame — a consumer must
// be able to tell a force-closed socket from wire corruption.
func TestFrameReaderPreservesReadError(t *testing.T) {
	sentinel := errors.New("socket force-closed")
	full := AppendSamples(nil, testSamples(2))
	for _, cut := range []int{3, FrameHeaderSize + 5} {
		fr := NewFrameReader(&errReader{data: full[:cut], err: sentinel}, 0)
		_, err := fr.Next()
		if !errors.Is(err, ErrTruncatedFrame) || !errors.Is(err, sentinel) {
			t.Errorf("cut at %d: err %v must wrap both ErrTruncatedFrame and the read error", cut, err)
		}
	}
}

func TestFrameReaderUnknownType(t *testing.T) {
	buf := AppendSamples(nil, nil)
	buf[3] = 99
	fr := NewFrameReader(bytes.NewReader(buf), 0)
	if _, err := fr.Next(); !errors.Is(err, ErrBadMessageType) {
		t.Fatalf("err %v, want ErrBadMessageType", err)
	}
	// The buffer-oriented decoder must agree.
	if _, _, err := DecodeFrame(buf); !errors.Is(err, ErrBadMessageType) {
		t.Fatalf("DecodeFrame err %v, want ErrBadMessageType", err)
	}
}

// TestFrameReaderOversized proves a hostile count fails before the reader
// commits memory: the stream carries only a header, but the count claims
// a body far past the bound.
func TestFrameReaderOversized(t *testing.T) {
	hdr := AppendSamples(nil, nil)[:FrameHeaderSize]
	binary.BigEndian.PutUint32(hdr[4:8], uint32(DefaultMaxFrameRecords+1))
	fr := NewFrameReader(bytes.NewReader(hdr), 0)
	if _, err := fr.Next(); !errors.Is(err, ErrOversizedFrame) {
		t.Fatalf("err %v, want ErrOversizedFrame", err)
	}

	// A tighter bound applies to records frames too.
	recFrame := AppendRecords(nil, make([]netflow.Record, 9))
	fr = NewFrameReader(bytes.NewReader(recFrame), 8)
	if _, err := fr.Next(); !errors.Is(err, ErrOversizedFrame) {
		t.Fatalf("records err %v, want ErrOversizedFrame", err)
	}

	// Oversized hello: a count past MaxHelloLen is rejected by both paths.
	hello := AppendHello(nil, "x")
	binary.BigEndian.PutUint32(hello[4:8], MaxHelloLen+1)
	fr = NewFrameReader(bytes.NewReader(hello), 0)
	if _, err := fr.Next(); !errors.Is(err, ErrOversizedFrame) {
		t.Fatalf("hello err %v, want ErrOversizedFrame", err)
	}
	if _, _, err := DecodeFrame(hello); !errors.Is(err, ErrOversizedFrame) {
		t.Fatalf("DecodeFrame hello err %v, want ErrOversizedFrame", err)
	}
}

func TestFrameReaderBadMagicAndVersion(t *testing.T) {
	good := AppendSamples(nil, testSamples(1))

	bad := append([]byte(nil), good...)
	bad[0] = 0xFF
	if _, err := NewFrameReader(bytes.NewReader(bad), 0).Next(); !errors.Is(err, ErrBadFrameMagic) {
		t.Fatalf("magic err %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[2] = frameVersion + 1
	if _, err := NewFrameReader(bytes.NewReader(bad), 0).Next(); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version err %v", err)
	}
}
