package collector

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// TestMergeFlowPartitionedExact is the fleet tier's correctness theorem,
// stated as a property: partition one sample/record stream across M
// collectors BY FLOW (every flow's traffic lands wholly in one collector —
// exactly what fleet.Partition guarantees) and Merge the M snapshots; the
// result must be bit-identical to one collector ingesting the whole stream.
// Flow-disjoint partitioning means Merge never folds two non-empty same-key
// Welford accumulators, so no float reassociation ever happens — equality is
// reflect.DeepEqual, not a tolerance.
func TestMergeFlowPartitionedExact(t *testing.T) {
	f := func(seed int64, instanceCount uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + int(instanceCount%5)
		nFlows := 1 + rng.Intn(40)
		keys := make([]packet.FlowKey, nFlows)
		for i := range keys {
			keys[i] = randKey(rng)
		}
		whole := New(Config{Shards: 2})
		parts := make([]*Collector, m)
		for i := range parts {
			parts[i] = New(Config{Shards: 2})
		}
		for batch := 0; batch < 20; batch++ {
			smps := make([]Sample, 1+rng.Intn(50))
			for i := range smps {
				smps[i] = Sample{
					Key:  keys[rng.Intn(nFlows)],
					Est:  time.Duration(rng.Int63n(int64(time.Second))),
					True: time.Duration(rng.Int63n(int64(time.Second))),
				}
			}
			recs := make([]netflow.Record, rng.Intn(10))
			for i := range recs {
				recs[i] = netflow.Record{
					Key:     keys[rng.Intn(nFlows)],
					Packets: uint64(1 + rng.Intn(100)),
					Bytes:   uint64(64 + rng.Intn(1<<16)),
					First:   simtime.Time(rng.Int63n(int64(time.Second))),
					Last:    simtime.Time(rng.Int63n(int64(time.Second))),
				}
			}
			whole.Ingest(smps)
			whole.IngestRecords(recs)
			// Flow-disjoint split: instance = hash(key) mod m.
			sp := make([][]Sample, m)
			for _, s := range smps {
				i := int(s.Key.FastHash() % uint64(m))
				sp[i] = append(sp[i], s)
			}
			rp := make([][]netflow.Record, m)
			for _, r := range recs {
				i := int(r.Key.FastHash() % uint64(m))
				rp[i] = append(rp[i], r)
			}
			for i := range parts {
				parts[i].Ingest(sp[i])
				parts[i].IngestRecords(rp[i])
			}
		}
		whole.Close()
		want := whole.Snapshot()
		snaps := make([][]FlowAgg, m)
		for i, p := range parts {
			p.Close()
			snaps[i] = p.Snapshot()
		}
		if !reflect.DeepEqual(Merge(snaps...), want) {
			return false
		}
		// Order invariance: flow-disjoint inputs never co-merge a key, so any
		// argument order gives the same (sorted) result bit-for-bit.
		rng.Shuffle(m, func(i, j int) { snaps[i], snaps[j] = snaps[j], snaps[i] })
		if !reflect.DeepEqual(Merge(snaps...), want) {
			return false
		}
		// Associativity: pairwise left fold equals one flat Merge.
		acc := Merge(snaps[0])
		for _, s := range snaps[1:] {
			acc = Merge(acc, s)
		}
		return reflect.DeepEqual(acc, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
