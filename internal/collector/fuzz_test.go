package collector

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// fuzzSeedCorpus reuses the wire tests' frame shapes: every message type,
// empty batches, a multi-frame stream, and classic corruptions.
func fuzzSeedCorpus() [][]byte {
	key := packet.FlowKey{
		Src: 0x0a000001, Dst: 0x0a000002, SrcPort: 443, DstPort: 55000, Proto: 6,
	}
	samples := AppendSamples(nil, []Sample{
		{Key: key, Est: 120 * time.Microsecond, True: 140 * time.Microsecond},
		{Key: key.Reverse(), Est: time.Millisecond, True: time.Millisecond},
	})
	records := AppendRecords(nil, []netflow.Record{
		{Key: key, First: simtime.Time(1e9), Last: simtime.Time(2e9), Packets: 12, Bytes: 9000},
	})
	hello := AppendHello(nil, "tor3.0")
	stream := append(append(append([]byte(nil), hello...), samples...), records...)

	badMagic := append([]byte(nil), samples...)
	badMagic[0] = 'X'
	truncated := samples[:len(samples)-3]

	return [][]byte{
		samples,
		records,
		hello,
		AppendSamples(nil, nil),
		AppendRecords(nil, nil),
		AppendHello(nil, ""),
		stream,
		badMagic,
		truncated,
		{},
	}
}

// FuzzDecodeFrame asserts DecodeFrame's contract on arbitrary bytes: no
// panics, consumed stays within bounds, and every accepted frame re-encodes
// to exactly the bytes consumed (decode/encode is a bijection on the
// accepted set).
func FuzzDecodeFrame(f *testing.F) {
	for _, seed := range fuzzSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < FrameHeaderSize || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		var re []byte
		switch frame.Type {
		case MsgSamples:
			re = AppendSamples(nil, frame.Samples)
		case MsgRecords:
			re = AppendRecords(nil, frame.Records)
		case MsgHello:
			re = AppendHello(nil, frame.Hello)
		default:
			t.Fatalf("accepted frame has unknown type %d", frame.Type)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encoding %d consumed bytes produced %d different bytes", n, len(re))
		}
	})
}

// FuzzFrameReader differentially tests the streaming decoder against the
// buffer decoder: on any byte stream both must accept the same frame
// sequence, and the reader must terminate without panicking.
func FuzzFrameReader(f *testing.F) {
	for _, seed := range fuzzSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var want []Frame
		rest := data
		for {
			frame, n, err := DecodeFrame(rest)
			if err != nil {
				break
			}
			want = append(want, frame)
			rest = rest[n:]
		}

		fr := NewFrameReader(bytes.NewReader(data), 0)
		var got []Frame
		for {
			frame, err := fr.Next()
			if err != nil {
				break
			}
			got = append(got, frame)
		}
		// The streaming reader bounds record counts harder than the
		// buffer decoder (DefaultMaxFrameRecords), so it may stop
		// earlier — but every frame it accepts must match, in order.
		if len(got) > len(want) {
			t.Fatalf("reader accepted %d frames, buffer decoder only %d", len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("frame %d diverged between streaming and buffer decoders", i)
			}
		}
	})
}
