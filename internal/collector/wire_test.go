package collector

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

func randKey(rng *rand.Rand) packet.FlowKey {
	return packet.FlowKey{
		Src:     packet.Addr(rng.Uint32()),
		Dst:     packet.Addr(rng.Uint32()),
		SrcPort: uint16(rng.Intn(1 << 16)),
		DstPort: uint16(rng.Intn(1 << 16)),
		Proto:   packet.ProtoTCP,
	}
}

func TestWireSamplesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 256} {
		batch := make([]Sample, n)
		for i := range batch {
			batch[i] = Sample{
				Key:  randKey(rng),
				Est:  time.Duration(rng.Int63n(int64(time.Second))),
				True: time.Duration(rng.Int63n(int64(time.Second))),
			}
		}
		buf := AppendSamples(nil, batch)
		if want := FrameHeaderSize + n*SampleWireSize; len(buf) != want {
			t.Fatalf("n=%d: encoded %d bytes, want %d", n, len(buf), want)
		}
		f, consumed, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if consumed != len(buf) {
			t.Fatalf("n=%d: consumed %d of %d", n, consumed, len(buf))
		}
		if len(f.Samples) != n || f.Records != nil {
			t.Fatalf("n=%d: decoded %d samples, %d records", n, len(f.Samples), len(f.Records))
		}
		if n > 0 && !reflect.DeepEqual(f.Samples, batch) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestWireRecordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	recs := make([]netflow.Record, 33)
	for i := range recs {
		recs[i] = netflow.Record{
			Key:     randKey(rng),
			First:   simtime.Time(rng.Int63()),
			Last:    simtime.Time(rng.Int63()),
			Packets: rng.Uint64() >> 1,
			Bytes:   rng.Uint64() >> 1,
		}
	}
	buf := AppendRecords(nil, recs)
	f, consumed, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(buf) || !reflect.DeepEqual(f.Records, recs) || f.Samples != nil {
		t.Fatalf("record round trip mismatch (consumed %d/%d)", consumed, len(buf))
	}
}

// TestWireStreamedFrames drains several back-to-back frames from one buffer.
func TestWireStreamedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var buf []byte
	var wantSamples, wantRecords int
	for i := 0; i < 5; i++ {
		if i%2 == 0 {
			batch := []Sample{{Key: randKey(rng), Est: time.Duration(i) * time.Microsecond}}
			buf = AppendSamples(buf, batch)
			wantSamples += len(batch)
		} else {
			buf = AppendRecords(buf, []netflow.Record{{Key: randKey(rng), Packets: 1, Bytes: 64}})
			wantRecords++
		}
	}
	var gotSamples, gotRecords int
	for len(buf) > 0 {
		f, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		gotSamples += len(f.Samples)
		gotRecords += len(f.Records)
		buf = buf[n:]
	}
	if gotSamples != wantSamples || gotRecords != wantRecords {
		t.Fatalf("streamed %d/%d, want %d/%d", gotSamples, gotRecords, wantSamples, wantRecords)
	}
}

func TestWireDecodeErrors(t *testing.T) {
	good := AppendSamples(nil, []Sample{{Key: packet.FlowKey{SrcPort: 1}}})
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"short", good[:4], ErrShortFrame},
		{"magic", append([]byte{0, 0}, good[2:]...), ErrBadFrameMagic},
		{"version", append([]byte{good[0], good[1], 99}, good[3:]...), ErrBadVersion},
		{"type", append([]byte{good[0], good[1], good[2], 9}, good[4:]...), ErrBadMessageType},
		{"truncated", good[:len(good)-1], ErrTruncatedFrame},
		// A corrupt count must fail the bound check cleanly on any
		// platform, never overflow into a makeslice panic (32-bit int).
		{"hugecount", append([]byte{good[0], good[1], good[2], good[3], 0xff, 0xff, 0xff, 0xff}, good[8:]...), ErrTruncatedFrame},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFrame(tc.buf); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}
