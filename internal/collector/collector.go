package collector

import (
	"container/list"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
	"github.com/netmeasure/rlir/internal/stats"
)

// Sample is one per-packet latency estimate exported by an RLI receiver.
type Sample struct {
	Key packet.FlowKey
	// Est is the receiver's interpolated one-way delay estimate.
	Est time.Duration
	// True is the simulator's ground-truth delay for the same packet (zero
	// in a real deployment, populated here so downstream accuracy analysis
	// can ride the same plane).
	True time.Duration
}

// FlowAgg is one flow's mergeable aggregate state: latency statistics from
// receiver samples plus byte/packet accounting from NetFlow records. Every
// statistics field satisfies the stats.Aggregate contract, so same-key
// aggregates from any partitioning of the sample stream merge into the
// aggregate of the whole stream.
type FlowAgg struct {
	Key packet.FlowKey
	// Est / True accumulate per-packet estimated and ground-truth delays.
	Est, True stats.Welford
	// Hist is the log-bucketed histogram of estimated delays.
	Hist stats.Histogram
	// Sketch is the bounded-memory quantile sketch of estimated delays —
	// the field quantile queries read (Hist remains for coarse
	// distribution rendering). Its merges are bit-exact under any order.
	Sketch stats.Sketch
	// Packets / Bytes / First / Last mirror NetFlow record fields, summed
	// over ingested records (zero when no record mentioned the flow).
	Packets, Bytes uint64
	First, Last    simtime.Time
}

func (a *FlowAgg) addSample(s Sample) {
	a.Est.Add(float64(s.Est))
	a.True.Add(float64(s.True))
	a.Hist.Record(s.Est)
	a.Sketch.Record(s.Est)
}

func (a *FlowAgg) addRecord(r netflow.Record) {
	if a.Packets == 0 || r.First < a.First {
		a.First = r.First
	}
	if a.Packets == 0 || r.Last > a.Last {
		a.Last = r.Last
	}
	a.Packets += r.Packets
	a.Bytes += r.Bytes
}

// merge folds o into a (same-key aggregates from different planes).
func (a *FlowAgg) merge(o *FlowAgg) {
	a.Est.Merge(&o.Est)
	a.True.Merge(&o.True)
	a.Hist.Merge(&o.Hist)
	a.Sketch.Merge(&o.Sketch)
	if o.Packets > 0 {
		if a.Packets == 0 || o.First < a.First {
			a.First = o.First
		}
		if a.Packets == 0 || o.Last > a.Last {
			a.Last = o.Last
		}
		a.Packets += o.Packets
		a.Bytes += o.Bytes
	}
}

// Config sizes the collector.
type Config struct {
	// Shards is the number of single-owner aggregation goroutines (default
	// GOMAXPROCS, capped at 8 — aggregation is cheap relative to hashing, so
	// more shards buy queue headroom, not throughput).
	Shards int
	// Depth is each shard's bounded channel depth in batches (default 16).
	// A full shard back-pressures Ingest, bounding collector memory.
	Depth int
	// MaxFlows caps the number of individually tracked flows across all
	// shards (0 = unbounded, the pre-eviction behaviour). When a shard's
	// share of the cap is full, inserting a new flow evicts its
	// least-recently-seen flow into the rollup hierarchy: the evicted
	// aggregate folds into its flow class (packet.FlowKey.Class), and the
	// class tier folds into the router-level root. Nothing is dropped —
	// only per-flow identity is given up.
	MaxFlows int
	// Window is the idle expiry horizon: a flow not touched by any sample
	// or record for longer than Window is expired into the rollup
	// hierarchy, whether or not the table is full (0 = never expire).
	// Expiry runs opportunistically while batches are processed.
	Window time.Duration
	// MaxClasses caps the class-tier rollup size across all shards. Once a
	// shard's class share is full, evicted flows whose class is not already
	// tracked fold directly into the root aggregate (0 = unbounded).
	MaxClasses int
	// Clock supplies the time base for Window expiry (default time.Now).
	// Tests inject a fake clock to drive expiry deterministically.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.Depth <= 0 {
		c.Depth = 16
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// perShard splits a collector-wide cap into a per-shard cap, rounding up so
// the sum never undershoots the configured total.
func perShard(total, shards int) int {
	if total <= 0 {
		return 0
	}
	return (total + shards - 1) / shards
}

// TableStats is the cheap per-scrape view of the bounded flow table:
// current tier sizes plus lifetime eviction counters. Evicted counts flows
// displaced by the MaxFlows cap; Expired counts flows aged out by Window.
type TableStats struct {
	Flows   int
	Classes int
	Evicted uint64
	Expired uint64
}

func (t *TableStats) add(o TableStats) {
	t.Flows += o.Flows
	t.Classes += o.Classes
	t.Evicted += o.Evicted
	t.Expired += o.Expired
}

// Rollup is the hierarchical tier below individual flows: class-level
// aggregates (flow keys masked by packet.FlowKey.Class) holding everything
// evicted or expired from the flow table, plus the router-level Root
// holding whatever overflowed the class tier. Together with the live flow
// snapshot it conserves the sample stream: every ingested sample is in
// exactly one of flows, Classes, or Root.
type Rollup struct {
	Classes []FlowAgg
	Root    FlowAgg
	Stats   TableStats
}

// req is one message to a shard: a data batch, a snapshot request when snap
// is non-nil, a table-stats request when count is non-nil, or a rollup
// request when roll is non-nil. Requests are processed strictly in channel
// order, which is what makes Snapshot, Stats, Flows and RollupSnapshot
// consistent cuts of everything the caller ingested before them.
type req struct {
	samples []Sample
	records []netflow.Record
	snap    chan []FlowAgg
	count   chan TableStats
	roll    chan Rollup
}

// flowEntry is one tracked flow plus its recency bookkeeping: elem is its
// position in the shard's LRU list (front = most recently seen).
type flowEntry struct {
	agg  FlowAgg
	last time.Time
	elem *list.Element
}

// shard owns one partition of the flow space. Only its goroutine touches
// its maps, LRU and rollup tiers.
type shard struct {
	ch    chan req
	flows map[packet.FlowKey]*flowEntry
	// lru orders flows by last touch; Value is *flowEntry. The back is the
	// eviction/expiry candidate.
	lru        *list.List
	classes    map[packet.FlowKey]*FlowAgg
	root       FlowAgg
	maxFlows   int
	maxClasses int
	window     time.Duration
	clock      func() time.Time
	evicted    uint64
	expired    uint64
}

func (s *shard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for q := range s.ch {
		switch {
		case q.snap != nil:
			q.snap <- s.snapshot()
		case q.count != nil:
			q.count <- s.stats()
		case q.roll != nil:
			q.roll <- s.rollup()
		default:
			now := s.clock()
			for _, smp := range q.samples {
				s.agg(smp.Key, now).addSample(smp)
			}
			for _, r := range q.records {
				s.agg(r.Key, now).addRecord(r)
			}
			s.expire(now)
		}
	}
}

// agg returns the flow's aggregate, inserting (and evicting, if the table
// is at its cap) as needed, and refreshes the flow's LRU recency.
func (s *shard) agg(key packet.FlowKey, now time.Time) *FlowAgg {
	e, ok := s.flows[key]
	if !ok {
		if s.maxFlows > 0 {
			for len(s.flows) >= s.maxFlows {
				s.foldOldest(&s.evicted)
			}
		}
		e = &flowEntry{agg: FlowAgg{Key: key}}
		e.elem = s.lru.PushFront(e)
		s.flows[key] = e
	} else {
		s.lru.MoveToFront(e.elem)
	}
	e.last = now
	return &e.agg
}

// expire folds flows idle longer than the window into the rollup tiers.
// The LRU back is always the least recently seen flow, so expiry stops at
// the first still-fresh entry.
func (s *shard) expire(now time.Time) {
	if s.window <= 0 {
		return
	}
	for back := s.lru.Back(); back != nil; back = s.lru.Back() {
		if now.Sub(back.Value.(*flowEntry).last) <= s.window {
			return
		}
		s.foldOldest(&s.expired)
	}
}

// foldOldest removes the least recently seen flow and folds its aggregate
// one tier down: into its flow class, or — when the class tier is full and
// the class is not already tracked — straight into the router-level root.
func (s *shard) foldOldest(counter *uint64) {
	back := s.lru.Back()
	if back == nil {
		return
	}
	e := back.Value.(*flowEntry)
	s.lru.Remove(back)
	delete(s.flows, e.agg.Key)
	*counter++

	class := e.agg.Key.Class()
	c, ok := s.classes[class]
	if !ok {
		if s.maxClasses > 0 && len(s.classes) >= s.maxClasses {
			s.foldInto(&s.root, &e.agg)
			return
		}
		c = &FlowAgg{Key: class}
		s.classes[class] = c
	}
	s.foldInto(c, &e.agg)
}

// foldInto merges a displaced aggregate into a rollup tier aggregate,
// which keeps its own key.
func (s *shard) foldInto(dst, src *FlowAgg) {
	key := dst.Key
	dst.merge(src)
	dst.Key = key
}

func (s *shard) stats() TableStats {
	return TableStats{
		Flows:   len(s.flows),
		Classes: len(s.classes),
		Evicted: s.evicted,
		Expired: s.expired,
	}
}

// snapshot deep-copies the shard's live flow aggregates (unsorted).
func (s *shard) snapshot() []FlowAgg {
	out := make([]FlowAgg, 0, len(s.flows))
	for _, e := range s.flows {
		out = append(out, cloneAgg(&e.agg))
	}
	return out
}

// rollup deep-copies the shard's class and root tiers.
func (s *shard) rollup() Rollup {
	r := Rollup{Root: cloneAgg(&s.root), Stats: s.stats()}
	r.Classes = make([]FlowAgg, 0, len(s.classes))
	for _, a := range s.classes {
		r.Classes = append(r.Classes, cloneAgg(a))
	}
	return r
}

// cloneAgg deep-copies one aggregate. FlowAgg holds a slice (the sketch's
// counter window), so a plain struct copy would alias live shard state.
func cloneAgg(a *FlowAgg) FlowAgg {
	cp := *a
	cp.Sketch = stats.SketchFromState(a.Sketch.State())
	return cp
}

// Collector is the sharded aggregation plane. Ingest* methods are safe for
// concurrent use by multiple producers; Snapshot may run concurrently with
// ingestion and reflects at least everything the calling goroutine ingested
// beforehand.
type Collector struct {
	shards []*shard
	wg     sync.WaitGroup
	// mu serializes Close against Ingest*/Snapshot: senders hold it shared,
	// Close holds it exclusively, so no send can race a channel close and
	// reads of closed are properly synchronized.
	mu      sync.RWMutex
	closed  bool
	samples atomic.Uint64
	records atomic.Uint64
}

// New starts a collector and its shard goroutines. Call Close to stop them.
func New(cfg Config) *Collector {
	cfg = cfg.withDefaults()
	c := &Collector{shards: make([]*shard, cfg.Shards)}
	for i := range c.shards {
		c.shards[i] = &shard{
			ch:         make(chan req, cfg.Depth),
			flows:      make(map[packet.FlowKey]*flowEntry),
			lru:        list.New(),
			classes:    make(map[packet.FlowKey]*FlowAgg),
			maxFlows:   perShard(cfg.MaxFlows, cfg.Shards),
			maxClasses: perShard(cfg.MaxClasses, cfg.Shards),
			window:     cfg.Window,
			clock:      cfg.Clock,
		}
		c.wg.Add(1)
		go c.shards[i].run(&c.wg)
	}
	return c
}

// shardOf routes a flow to its owning shard. FastHash rather than the ECMP
// hashes: sharding must be uniform and deterministic, not path-consistent.
func (c *Collector) shardOf(key packet.FlowKey) int {
	return int(key.FastHash() % uint64(len(c.shards)))
}

// Ingest routes one batch of samples to the owning shards. The batch is
// copied during partitioning; the caller may reuse it immediately. Blocks
// only when a shard's bounded queue is full (back-pressure).
func (c *Collector) Ingest(batch []Sample) {
	if len(batch) == 0 {
		return
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		panic("collector: Ingest after Close")
	}
	parts := make([][]Sample, len(c.shards))
	for _, s := range batch {
		i := c.shardOf(s.Key)
		parts[i] = append(parts[i], s)
	}
	for i, p := range parts {
		if len(p) > 0 {
			c.shards[i].ch <- req{samples: p}
		}
	}
	// Counted only after every shard send: a goroutine that observes
	// SamplesIngested() == N may Snapshot and see all N samples, because its
	// snap requests queue behind the already-sent batches.
	c.samples.Add(uint64(len(batch)))
}

// IngestRecords routes one batch of NetFlow records to the owning shards,
// with the same copying and back-pressure semantics as Ingest.
func (c *Collector) IngestRecords(recs []netflow.Record) {
	if len(recs) == 0 {
		return
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		panic("collector: IngestRecords after Close")
	}
	parts := make([][]netflow.Record, len(c.shards))
	for _, r := range recs {
		i := c.shardOf(r.Key)
		parts[i] = append(parts[i], r)
	}
	for i, p := range parts {
		if len(p) > 0 {
			c.shards[i].ch <- req{records: p}
		}
	}
	// After the sends, for the same observe-then-Snapshot reason as Ingest.
	c.records.Add(uint64(len(recs)))
}

// IngestFrame decodes one wire frame (samples or records) and ingests it.
// It returns the number of bytes consumed, so back-to-back frames in one
// buffer can be drained in a loop.
func (c *Collector) IngestFrame(src []byte) (int, error) {
	f, n, err := DecodeFrame(src)
	if err != nil {
		return 0, err
	}
	c.Ingest(f.Samples)
	c.IngestRecords(f.Records)
	return n, nil
}

// SamplesIngested returns the number of samples enqueued to shards by
// Ingest calls so far. The count is advanced only after the batch's shard
// sends complete, so ANY goroutine that observes SamplesIngested() == N and
// then Snapshots sees at least those N samples — the wait-then-query
// pattern a streaming consumer uses.
func (c *Collector) SamplesIngested() uint64 { return c.samples.Load() }

// RecordsIngested returns the number of NetFlow records accepted so far.
func (c *Collector) RecordsIngested() uint64 { return c.records.Load() }

// Shards returns the shard count.
func (c *Collector) Shards() int { return len(c.shards) }

// Snapshot returns a deep copy of every flow aggregate, sorted by flow key.
// Before Close it is a consistent cut: each shard answers after draining
// everything queued ahead of the request, so all batches ingested by the
// calling goroutine are included. After Close it reads the final state
// directly.
func (c *Collector) Snapshot() []FlowAgg {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []FlowAgg
	if c.closed {
		for _, s := range c.shards {
			out = append(out, s.snapshot()...)
		}
	} else {
		replies := make([]chan []FlowAgg, len(c.shards))
		for i, s := range c.shards {
			replies[i] = make(chan []FlowAgg, 1)
			s.ch <- req{snap: replies[i]}
		}
		for _, ch := range replies {
			out = append(out, <-ch...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out
}

// Stats returns the bounded flow table's tier sizes and lifetime eviction
// counters: a consistent cut, answered by requests that queue behind
// pending batches — O(shards), never a table copy, so periodic
// health/metrics scrapes stay cheap at millions of flows.
func (c *Collector) Stats() TableStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var t TableStats
	if c.closed {
		for _, s := range c.shards {
			t.add(s.stats())
		}
		return t
	}
	replies := make([]chan TableStats, len(c.shards))
	for i, s := range c.shards {
		replies[i] = make(chan TableStats, 1)
		s.ch <- req{count: replies[i]}
	}
	for _, ch := range replies {
		t.add(<-ch)
	}
	return t
}

// Flows returns the number of distinct flows currently tracked (excludes
// flows already folded into the rollup tiers).
func (c *Collector) Flows() int { return c.Stats().Flows }

// RollupSnapshot returns a deep copy of the rollup hierarchy below the live
// flow table: per-class aggregates sorted by class key, the router-level
// root, and the table stats at the same consistent cut. With no eviction
// configured (or none triggered yet) the rollup is empty and the live
// Snapshot alone covers the whole stream.
func (c *Collector) RollupSnapshot() Rollup {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var parts []Rollup
	if c.closed {
		for _, s := range c.shards {
			parts = append(parts, s.rollup())
		}
	} else {
		replies := make([]chan Rollup, len(c.shards))
		for i, s := range c.shards {
			replies[i] = make(chan Rollup, 1)
			s.ch <- req{roll: replies[i]}
		}
		for _, ch := range replies {
			parts = append(parts, <-ch)
		}
	}
	return MergeRollups(parts...)
}

// AggregateHistogram merges every flow's estimate histogram into one
// operator-facing latency distribution.
func (c *Collector) AggregateHistogram() stats.Histogram {
	var h stats.Histogram
	for _, a := range c.Snapshot() {
		h.Merge(&a.Hist)
	}
	return h
}

// Close stops the shard goroutines after draining queued batches. The
// collector's final state remains readable (Snapshot, Flows); further
// Ingest calls panic.
func (c *Collector) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	// No sender can be mid-send here: Ingest*/Snapshot hold mu shared for
	// their whole send sequence.
	for _, s := range c.shards {
		close(s.ch)
	}
	c.wg.Wait()
	c.closed = true
}

// Merge combines flow-aggregate snapshots (for example, per-run collector
// snapshots of a multi-seed sweep) into one sorted aggregate list. Same-key
// aggregates merge through the stats accumulators in argument order, so the
// result is deterministic for a fixed argument order.
func Merge(snaps ...[]FlowAgg) []FlowAgg {
	m := make(map[packet.FlowKey]*FlowAgg)
	for _, snap := range snaps {
		for i := range snap {
			a := &snap[i]
			if dst, ok := m[a.Key]; ok {
				dst.merge(a)
			} else {
				// Deep copy: merging into a shallow copy would grow the
				// sketch window through the input snapshot's backing array.
				cp := cloneAgg(a)
				m[a.Key] = &cp
			}
		}
	}
	out := make([]FlowAgg, 0, len(m))
	for _, a := range m {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out
}

// MergeRollups combines rollup snapshots (per-shard, per-run or per-fleet-
// instance) into one: classes merge by class key and sort canonically, the
// roots merge, and the table stats sum. Sketch and histogram tiers merge
// bit-exactly under any merge order; the rollup Welford tiers co-merge
// non-empty accumulators, so their float sums are exact in value but not
// guaranteed bit-identical across merge orders (see stats.Aggregate).
func MergeRollups(rolls ...Rollup) Rollup {
	var out Rollup
	m := make(map[packet.FlowKey]*FlowAgg)
	for _, r := range rolls {
		for i := range r.Classes {
			a := &r.Classes[i]
			if dst, ok := m[a.Key]; ok {
				dst.merge(a)
			} else {
				cp := cloneAgg(a)
				m[a.Key] = &cp
			}
		}
		rootCp := cloneAgg(&r.Root)
		out.Root.merge(&rootCp)
		out.Stats.add(r.Stats)
	}
	out.Classes = make([]FlowAgg, 0, len(m))
	for _, a := range m {
		out.Classes = append(out.Classes, *a)
	}
	sort.Slice(out.Classes, func(i, j int) bool { return out.Classes[i].Key.Less(out.Classes[j].Key) })
	return out
}
