package collector

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
	"github.com/netmeasure/rlir/internal/stats"
)

// Sample is one per-packet latency estimate exported by an RLI receiver.
type Sample struct {
	Key packet.FlowKey
	// Est is the receiver's interpolated one-way delay estimate.
	Est time.Duration
	// True is the simulator's ground-truth delay for the same packet (zero
	// in a real deployment, populated here so downstream accuracy analysis
	// can ride the same plane).
	True time.Duration
}

// FlowAgg is one flow's mergeable aggregate state: latency statistics from
// receiver samples plus byte/packet accounting from NetFlow records.
type FlowAgg struct {
	Key packet.FlowKey
	// Est / True accumulate per-packet estimated and ground-truth delays.
	Est, True stats.Welford
	// Hist is the log-bucketed histogram of estimated delays.
	Hist stats.Histogram
	// Packets / Bytes / First / Last mirror NetFlow record fields, summed
	// over ingested records (zero when no record mentioned the flow).
	Packets, Bytes uint64
	First, Last    simtime.Time
}

func (a *FlowAgg) addSample(s Sample) {
	a.Est.Add(float64(s.Est))
	a.True.Add(float64(s.True))
	a.Hist.Record(s.Est)
}

func (a *FlowAgg) addRecord(r netflow.Record) {
	if a.Packets == 0 || r.First < a.First {
		a.First = r.First
	}
	if a.Packets == 0 || r.Last > a.Last {
		a.Last = r.Last
	}
	a.Packets += r.Packets
	a.Bytes += r.Bytes
}

// merge folds o into a (same-key aggregates from different planes).
func (a *FlowAgg) merge(o *FlowAgg) {
	a.Est.Merge(o.Est)
	a.True.Merge(o.True)
	a.Hist.Merge(&o.Hist)
	if o.Packets > 0 {
		if a.Packets == 0 || o.First < a.First {
			a.First = o.First
		}
		if a.Packets == 0 || o.Last > a.Last {
			a.Last = o.Last
		}
		a.Packets += o.Packets
		a.Bytes += o.Bytes
	}
}

// Config sizes the collector.
type Config struct {
	// Shards is the number of single-owner aggregation goroutines (default
	// GOMAXPROCS, capped at 8 — aggregation is cheap relative to hashing, so
	// more shards buy queue headroom, not throughput).
	Shards int
	// Depth is each shard's bounded channel depth in batches (default 16).
	// A full shard back-pressures Ingest, bounding collector memory.
	Depth int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.Depth <= 0 {
		c.Depth = 16
	}
	return c
}

// req is one message to a shard: a data batch, a snapshot request when
// snap is non-nil, or a flow-count request when count is non-nil. Requests
// are processed strictly in channel order, which is what makes Snapshot
// and Flows consistent cuts of everything the caller ingested before them.
type req struct {
	samples []Sample
	records []netflow.Record
	snap    chan []FlowAgg
	count   chan int
}

// shard owns one partition of the flow space. Only its goroutine touches
// flows.
type shard struct {
	ch    chan req
	flows map[packet.FlowKey]*FlowAgg
}

func (s *shard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for q := range s.ch {
		switch {
		case q.snap != nil:
			q.snap <- s.snapshot()
		case q.count != nil:
			q.count <- len(s.flows)
		default:
			for _, smp := range q.samples {
				s.agg(smp.Key).addSample(smp)
			}
			for _, r := range q.records {
				s.agg(r.Key).addRecord(r)
			}
		}
	}
}

func (s *shard) agg(key packet.FlowKey) *FlowAgg {
	a, ok := s.flows[key]
	if !ok {
		a = &FlowAgg{Key: key}
		s.flows[key] = a
	}
	return a
}

// snapshot deep-copies the shard's aggregates (unsorted).
func (s *shard) snapshot() []FlowAgg {
	out := make([]FlowAgg, 0, len(s.flows))
	for _, a := range s.flows {
		out = append(out, *a)
	}
	return out
}

// Collector is the sharded aggregation plane. Ingest* methods are safe for
// concurrent use by multiple producers; Snapshot may run concurrently with
// ingestion and reflects at least everything the calling goroutine ingested
// beforehand.
type Collector struct {
	shards []*shard
	wg     sync.WaitGroup
	// mu serializes Close against Ingest*/Snapshot: senders hold it shared,
	// Close holds it exclusively, so no send can race a channel close and
	// reads of closed are properly synchronized.
	mu      sync.RWMutex
	closed  bool
	samples atomic.Uint64
	records atomic.Uint64
}

// New starts a collector and its shard goroutines. Call Close to stop them.
func New(cfg Config) *Collector {
	cfg = cfg.withDefaults()
	c := &Collector{shards: make([]*shard, cfg.Shards)}
	for i := range c.shards {
		c.shards[i] = &shard{
			ch:    make(chan req, cfg.Depth),
			flows: make(map[packet.FlowKey]*FlowAgg),
		}
		c.wg.Add(1)
		go c.shards[i].run(&c.wg)
	}
	return c
}

// shardOf routes a flow to its owning shard. FastHash rather than the ECMP
// hashes: sharding must be uniform and deterministic, not path-consistent.
func (c *Collector) shardOf(key packet.FlowKey) int {
	return int(key.FastHash() % uint64(len(c.shards)))
}

// Ingest routes one batch of samples to the owning shards. The batch is
// copied during partitioning; the caller may reuse it immediately. Blocks
// only when a shard's bounded queue is full (back-pressure).
func (c *Collector) Ingest(batch []Sample) {
	if len(batch) == 0 {
		return
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		panic("collector: Ingest after Close")
	}
	parts := make([][]Sample, len(c.shards))
	for _, s := range batch {
		i := c.shardOf(s.Key)
		parts[i] = append(parts[i], s)
	}
	for i, p := range parts {
		if len(p) > 0 {
			c.shards[i].ch <- req{samples: p}
		}
	}
	// Counted only after every shard send: a goroutine that observes
	// SamplesIngested() == N may Snapshot and see all N samples, because its
	// snap requests queue behind the already-sent batches.
	c.samples.Add(uint64(len(batch)))
}

// IngestRecords routes one batch of NetFlow records to the owning shards,
// with the same copying and back-pressure semantics as Ingest.
func (c *Collector) IngestRecords(recs []netflow.Record) {
	if len(recs) == 0 {
		return
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		panic("collector: IngestRecords after Close")
	}
	parts := make([][]netflow.Record, len(c.shards))
	for _, r := range recs {
		i := c.shardOf(r.Key)
		parts[i] = append(parts[i], r)
	}
	for i, p := range parts {
		if len(p) > 0 {
			c.shards[i].ch <- req{records: p}
		}
	}
	// After the sends, for the same observe-then-Snapshot reason as Ingest.
	c.records.Add(uint64(len(recs)))
}

// IngestFrame decodes one wire frame (samples or records) and ingests it.
// It returns the number of bytes consumed, so back-to-back frames in one
// buffer can be drained in a loop.
func (c *Collector) IngestFrame(src []byte) (int, error) {
	f, n, err := DecodeFrame(src)
	if err != nil {
		return 0, err
	}
	c.Ingest(f.Samples)
	c.IngestRecords(f.Records)
	return n, nil
}

// SamplesIngested returns the number of samples enqueued to shards by
// Ingest calls so far. The count is advanced only after the batch's shard
// sends complete, so ANY goroutine that observes SamplesIngested() == N and
// then Snapshots sees at least those N samples — the wait-then-query
// pattern a streaming consumer uses.
func (c *Collector) SamplesIngested() uint64 { return c.samples.Load() }

// RecordsIngested returns the number of NetFlow records accepted so far.
func (c *Collector) RecordsIngested() uint64 { return c.records.Load() }

// Shards returns the shard count.
func (c *Collector) Shards() int { return len(c.shards) }

// Snapshot returns a deep copy of every flow aggregate, sorted by flow key.
// Before Close it is a consistent cut: each shard answers after draining
// everything queued ahead of the request, so all batches ingested by the
// calling goroutine are included. After Close it reads the final state
// directly.
func (c *Collector) Snapshot() []FlowAgg {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []FlowAgg
	if c.closed {
		for _, s := range c.shards {
			out = append(out, s.snapshot()...)
		}
	} else {
		replies := make([]chan []FlowAgg, len(c.shards))
		for i, s := range c.shards {
			replies[i] = make(chan []FlowAgg, 1)
			s.ch <- req{snap: replies[i]}
		}
		for _, ch := range replies {
			out = append(out, <-ch...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out
}

// Flows returns the number of distinct flows aggregated so far: a
// consistent cut, answered by count requests that queue behind pending
// batches — O(shards), never a table copy, so periodic health/metrics
// scrapes stay cheap at millions of flows.
func (c *Collector) Flows() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	if c.closed {
		for _, s := range c.shards {
			n += len(s.flows)
		}
		return n
	}
	replies := make([]chan int, len(c.shards))
	for i, s := range c.shards {
		replies[i] = make(chan int, 1)
		s.ch <- req{count: replies[i]}
	}
	for _, ch := range replies {
		n += <-ch
	}
	return n
}

// AggregateHistogram merges every flow's estimate histogram into one
// operator-facing latency distribution.
func (c *Collector) AggregateHistogram() stats.Histogram {
	var h stats.Histogram
	for _, a := range c.Snapshot() {
		h.Merge(&a.Hist)
	}
	return h
}

// Close stops the shard goroutines after draining queued batches. The
// collector's final state remains readable (Snapshot, Flows); further
// Ingest calls panic.
func (c *Collector) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	// No sender can be mid-send here: Ingest*/Snapshot hold mu shared for
	// their whole send sequence.
	for _, s := range c.shards {
		close(s.ch)
	}
	c.wg.Wait()
	c.closed = true
}

// Merge combines flow-aggregate snapshots (for example, per-run collector
// snapshots of a multi-seed sweep) into one sorted aggregate list. Same-key
// aggregates merge through the stats accumulators in argument order, so the
// result is deterministic for a fixed argument order.
func Merge(snaps ...[]FlowAgg) []FlowAgg {
	m := make(map[packet.FlowKey]*FlowAgg)
	for _, snap := range snaps {
		for i := range snap {
			a := &snap[i]
			if dst, ok := m[a.Key]; ok {
				dst.merge(a)
			} else {
				cp := *a
				m[a.Key] = &cp
			}
		}
	}
	out := make([]FlowAgg, 0, len(m))
	for _, a := range m {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out
}
