package collector

import (
	"encoding/binary"
	"fmt"
	"io"
)

// DefaultMaxFrameRecords bounds how many records one streamed frame may
// carry. 64k samples is ~1.9 MB of body — far beyond any sane export batch
// — so the bound only ever trips on corrupt or hostile counts, before the
// reader commits memory to them.
const DefaultMaxFrameRecords = 1 << 16

// FrameReader decodes length-delimited wire frames from a byte stream — the
// long-lived service's ingest front-end, where frames arrive over a socket
// and the buffer-oriented DecodeFrame cannot be applied before the frame's
// length is known. It validates each header before reading the body, so a
// corrupt count fails with ErrOversizedFrame instead of a huge allocation,
// and reuses one internal buffer across frames.
type FrameReader struct {
	r io.Reader
	// maxRecords bounds the per-frame record count.
	maxRecords uint32
	buf        []byte
}

// NewFrameReader wraps r. maxRecords <= 0 selects DefaultMaxFrameRecords.
func NewFrameReader(r io.Reader, maxRecords int) *FrameReader {
	if maxRecords <= 0 {
		maxRecords = DefaultMaxFrameRecords
	}
	return &FrameReader{r: r, maxRecords: uint32(maxRecords)}
}

// bodyLen returns the body length implied by a validated header.
func bodyLen(msgType byte, count uint32) (int, error) {
	switch msgType {
	case MsgSamples:
		return int(count) * SampleWireSize, nil
	case MsgRecords:
		return int(count) * RecordWireSize, nil
	case MsgHello:
		if count > MaxHelloLen {
			return 0, fmt.Errorf("%w: hello name %d bytes, max %d", ErrOversizedFrame, count, MaxHelloLen)
		}
		return int(count), nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrBadMessageType, msgType)
	}
}

// Next reads and decodes one frame. It returns io.EOF on a clean end of
// stream (between frames) and ErrTruncatedFrame when the stream ends inside
// a frame. The returned Frame's slices are freshly allocated and remain
// valid across calls; the internal read buffer is reused.
func (fr *FrameReader) Next() (Frame, error) {
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		// The underlying error stays in the chain: a consumer must be able
		// to tell a force-closed socket (net.ErrClosed) from wire
		// corruption, both of which surface here.
		return Frame{}, fmt.Errorf("%w: stream ended inside a frame header: %w", ErrTruncatedFrame, err)
	}
	if binary.BigEndian.Uint16(hdr[0:2]) != frameMagic {
		return Frame{}, ErrBadFrameMagic
	}
	if hdr[2] != frameVersion {
		return Frame{}, ErrBadVersion
	}
	msgType := hdr[3]
	count := binary.BigEndian.Uint32(hdr[4:8])
	if (msgType == MsgSamples || msgType == MsgRecords) && count > fr.maxRecords {
		return Frame{}, fmt.Errorf("%w: %d records, bound %d", ErrOversizedFrame, count, fr.maxRecords)
	}
	n, err := bodyLen(msgType, count)
	if err != nil {
		return Frame{}, err
	}
	need := FrameHeaderSize + n
	if cap(fr.buf) < need {
		fr.buf = make([]byte, need)
	}
	frame := fr.buf[:need]
	copy(frame, hdr[:])
	if got, err := io.ReadFull(fr.r, frame[FrameHeaderSize:]); err != nil {
		return Frame{}, fmt.Errorf("%w: stream ended %d bytes into a %d-byte body: %w",
			ErrTruncatedFrame, got, n, err)
	}
	f, _, err := DecodeFrame(frame)
	return f, err
}
