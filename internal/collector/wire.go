package collector

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
	"unicode/utf8"

	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// Wire format of the measurement plane: the compact binary export that RLI
// receivers and NetFlow exporters ship batches to a collector in, in the
// spirit of a NetFlow/IPFIX export packet. One frame is one batch:
//
//	offset size field
//	0      2    magic 0x5246 ("RF", "RLIR Flow")
//	2      1    version (1)
//	3      1    message type (1 = samples, 2 = flow records, 3 = hello)
//	4      4    record count (big endian)
//	8      ...  count fixed-size records (hello: count name bytes)
//
// Sample record (SampleWireSize = 29 bytes):
//
//	src 4 | dst 4 | srcPort 2 | dstPort 2 | proto 1 | est ns 8 | true ns 8
//
// Flow record (RecordWireSize = 45 bytes):
//
//	key 13 (as above) | first ns 8 | last ns 8 | packets 8 | bytes 8
//
// Multi-byte fields are big endian; timestamps and delays are two's
// complement nanoseconds.
const (
	frameMagic   = 0x5246
	frameVersion = 1

	// MsgSamples frames carry []Sample; MsgRecords frames carry
	// []netflow.Record; MsgHello frames carry the exporter's name (the
	// count field holds the name's byte length).
	MsgSamples = 1
	MsgRecords = 2
	MsgHello   = 3

	// FrameHeaderSize is the fixed frame prefix.
	FrameHeaderSize = 8
	// keyWireSize is the encoded 5-tuple.
	keyWireSize = 13
	// SampleWireSize is one encoded Sample.
	SampleWireSize = keyWireSize + 16
	// RecordWireSize is one encoded netflow.Record.
	RecordWireSize = keyWireSize + 32
	// MaxHelloLen bounds a hello frame's exporter name: identities are
	// human-chosen labels, and the bound keeps the frame reader's worst-case
	// allocation for untrusted hello counts trivial.
	MaxHelloLen = 255
)

// Errors returned by DecodeFrame and FrameReader.
var (
	ErrShortFrame     = errors.New("collector: frame shorter than header")
	ErrBadFrameMagic  = errors.New("collector: frame has wrong magic")
	ErrBadVersion     = errors.New("collector: unsupported frame version")
	ErrBadMessageType = errors.New("collector: unknown frame message type")
	ErrTruncatedFrame = errors.New("collector: frame truncated mid-batch")
	ErrOversizedFrame = errors.New("collector: frame exceeds the reader's record bound")
)

func appendHeader(dst []byte, msgType byte, count int) []byte {
	var h [FrameHeaderSize]byte
	binary.BigEndian.PutUint16(h[0:2], frameMagic)
	h[2] = frameVersion
	h[3] = msgType
	binary.BigEndian.PutUint32(h[4:8], uint32(count))
	return append(dst, h[:]...)
}

func appendKey(dst []byte, k packet.FlowKey) []byte {
	var b [keyWireSize]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(k.Src))
	binary.BigEndian.PutUint32(b[4:8], uint32(k.Dst))
	binary.BigEndian.PutUint16(b[8:10], k.SrcPort)
	binary.BigEndian.PutUint16(b[10:12], k.DstPort)
	b[12] = byte(k.Proto)
	return append(dst, b[:]...)
}

func decodeKey(src []byte) packet.FlowKey {
	return packet.FlowKey{
		Src:     packet.Addr(binary.BigEndian.Uint32(src[0:4])),
		Dst:     packet.Addr(binary.BigEndian.Uint32(src[4:8])),
		SrcPort: binary.BigEndian.Uint16(src[8:10]),
		DstPort: binary.BigEndian.Uint16(src[10:12]),
		Proto:   packet.Proto(src[12]),
	}
}

func appendInt64(dst []byte, v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return append(dst, b[:]...)
}

// AppendSamples appends one MsgSamples frame holding batch to dst and
// returns the extended slice. An empty batch encodes a valid empty frame.
func AppendSamples(dst []byte, batch []Sample) []byte {
	dst = appendHeader(dst, MsgSamples, len(batch))
	for _, s := range batch {
		dst = appendKey(dst, s.Key)
		dst = appendInt64(dst, int64(s.Est))
		dst = appendInt64(dst, int64(s.True))
	}
	return dst
}

// AppendRecords appends one MsgRecords frame holding recs to dst and
// returns the extended slice.
func AppendRecords(dst []byte, recs []netflow.Record) []byte {
	dst = appendHeader(dst, MsgRecords, len(recs))
	for _, r := range recs {
		dst = appendKey(dst, r.Key)
		dst = appendInt64(dst, int64(r.First))
		dst = appendInt64(dst, int64(r.Last))
		dst = appendInt64(dst, int64(r.Packets))
		dst = appendInt64(dst, int64(r.Bytes))
	}
	return dst
}

// HelloName returns the exporter name AppendHello actually puts on the
// wire: name unchanged if it fits MaxHelloLen bytes, otherwise truncated at
// a UTF-8 rune boundary so the wire never carries a torn rune. A name whose
// first MaxHelloLen bytes are all continuation bytes (malformed UTF-8)
// truncates to empty.
func HelloName(name string) string {
	if len(name) <= MaxHelloLen {
		return name
	}
	cut := MaxHelloLen
	for cut > 0 && !utf8.RuneStart(name[cut]) {
		cut--
	}
	return name[:cut]
}

// AppendHello appends one MsgHello frame declaring the exporter's name to
// dst and returns the extended slice. Long-lived export connections send it
// first so the collecting service can attribute everything that follows to
// a named router; names longer than MaxHelloLen are truncated at a rune
// boundary — HelloName reports what will be sent.
func AppendHello(dst []byte, name string) []byte {
	name = HelloName(name)
	dst = appendHeader(dst, MsgHello, len(name))
	return append(dst, name...)
}

// Frame is one decoded wire frame; exactly one of Samples/Records/Hello is
// populated (matching the message type).
type Frame struct {
	Samples []Sample
	Records []netflow.Record
	// Hello is the exporter name carried by a MsgHello frame. An empty name
	// on the wire is indistinguishable from the field's zero value; use Type
	// to dispatch.
	Hello string
	// Type is the decoded frame's message type (MsgSamples, MsgRecords,
	// MsgHello).
	Type byte
}

// DecodeFrame decodes one frame from the front of src and returns it along
// with the number of bytes consumed, so concatenated frames stream through
// repeated calls.
func DecodeFrame(src []byte) (Frame, int, error) {
	if len(src) < FrameHeaderSize {
		return Frame{}, 0, ErrShortFrame
	}
	if binary.BigEndian.Uint16(src[0:2]) != frameMagic {
		return Frame{}, 0, ErrBadFrameMagic
	}
	if src[2] != frameVersion {
		return Frame{}, 0, ErrBadVersion
	}
	msgType := src[3]
	count32 := binary.BigEndian.Uint32(src[4:8])
	body := src[FrameHeaderSize:]
	// Bound count against the buffer BEFORE multiplying: count is untrusted
	// wire data, and count*recordSize could overflow int on 32-bit builds,
	// turning the truncation check into a makeslice panic.
	switch msgType {
	case MsgSamples:
		if uint64(count32) > uint64(len(body)/SampleWireSize) {
			return Frame{}, 0, fmt.Errorf("%w: %d records need %d body bytes, have %d",
				ErrTruncatedFrame, count32, uint64(count32)*SampleWireSize, len(body))
		}
		count := int(count32)
		need := count * SampleWireSize
		out := make([]Sample, count)
		for i := range out {
			rec := body[i*SampleWireSize:]
			out[i] = Sample{
				Key:  decodeKey(rec),
				Est:  time.Duration(int64(binary.BigEndian.Uint64(rec[keyWireSize : keyWireSize+8]))),
				True: time.Duration(int64(binary.BigEndian.Uint64(rec[keyWireSize+8 : keyWireSize+16]))),
			}
		}
		return Frame{Samples: out, Type: MsgSamples}, FrameHeaderSize + need, nil
	case MsgRecords:
		if uint64(count32) > uint64(len(body)/RecordWireSize) {
			return Frame{}, 0, fmt.Errorf("%w: %d records need %d body bytes, have %d",
				ErrTruncatedFrame, count32, uint64(count32)*RecordWireSize, len(body))
		}
		count := int(count32)
		need := count * RecordWireSize
		out := make([]netflow.Record, count)
		for i := range out {
			rec := body[i*RecordWireSize:]
			out[i] = netflow.Record{
				Key:     decodeKey(rec),
				First:   simtime.Time(int64(binary.BigEndian.Uint64(rec[keyWireSize : keyWireSize+8]))),
				Last:    simtime.Time(int64(binary.BigEndian.Uint64(rec[keyWireSize+8 : keyWireSize+16]))),
				Packets: binary.BigEndian.Uint64(rec[keyWireSize+16 : keyWireSize+24]),
				Bytes:   binary.BigEndian.Uint64(rec[keyWireSize+24 : keyWireSize+32]),
			}
		}
		return Frame{Records: out, Type: MsgRecords}, FrameHeaderSize + need, nil
	case MsgHello:
		if count32 > MaxHelloLen {
			return Frame{}, 0, fmt.Errorf("%w: hello name %d bytes, max %d", ErrOversizedFrame, count32, MaxHelloLen)
		}
		if int(count32) > len(body) {
			return Frame{}, 0, fmt.Errorf("%w: hello needs %d body bytes, have %d",
				ErrTruncatedFrame, count32, len(body))
		}
		return Frame{Hello: string(body[:count32]), Type: MsgHello}, FrameHeaderSize + int(count32), nil
	default:
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrBadMessageType, msgType)
	}
}
