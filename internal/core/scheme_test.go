package core

import (
	"testing"
	"testing/quick"
)

func TestStaticGapConstant(t *testing.T) {
	s := Static{N: 100}
	for _, u := range []float64{0, 0.22, 0.5, 0.93, 1} {
		if got := s.Gap(u); got != 100 {
			t.Fatalf("Gap(%v) = %d, want 100", u, got)
		}
	}
	if DefaultStatic().N != 100 {
		t.Fatal("paper default is 1-and-100")
	}
}

func TestStaticGapPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Static{}.Gap(0.5)
}

func TestAdaptiveEndpoints(t *testing.T) {
	a := DefaultAdaptive()
	// The paper: 22% utilization "always triggers the highest injection
	// rate (1-and-10) in the adaptive scheme".
	if got := a.Gap(0.22); got != 10 {
		t.Fatalf("Gap(0.22) = %d, want 10", got)
	}
	if got := a.Gap(0); got != 10 {
		t.Fatalf("Gap(0) = %d, want 10", got)
	}
	if got := a.Gap(0.95); got != 300 {
		t.Fatalf("Gap(0.95) = %d, want 300", got)
	}
	if got := a.Gap(1); got != 300 {
		t.Fatalf("Gap(1) = %d, want 300", got)
	}
}

func TestAdaptiveMonotoneNonDecreasing(t *testing.T) {
	// Injection rate is "a decreasing function of link utilization", i.e.
	// the gap never shrinks as utilization grows.
	a := DefaultAdaptive()
	prev := 0
	for u := 0.0; u <= 1.0; u += 0.001 {
		g := a.Gap(u)
		if g < prev {
			t.Fatalf("gap decreased: %d -> %d at u=%v", prev, g, u)
		}
		prev = g
	}
}

func TestAdaptiveBoundsProperty(t *testing.T) {
	a := DefaultAdaptive()
	f := func(raw uint16) bool {
		u := float64(raw) / 65535
		g := a.Gap(u)
		return g >= a.MinGap && g <= a.MaxGap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveValidate(t *testing.T) {
	bad := []Adaptive{
		{MinGap: 0, MaxGap: 10, LowUtil: 0.1, HighUtil: 0.9},
		{MinGap: 20, MaxGap: 10, LowUtil: 0.1, HighUtil: 0.9},
		{MinGap: 1, MaxGap: 10, LowUtil: 0.9, HighUtil: 0.1},
		{MinGap: 1, MaxGap: 10, LowUtil: -0.1, HighUtil: 0.9},
		{MinGap: 1, MaxGap: 10, LowUtil: 0.1, HighUtil: 1.1},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if err := DefaultAdaptive().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSchemeNames(t *testing.T) {
	if (Static{N: 100}).Name() == "" || DefaultAdaptive().Name() == "" {
		t.Fatal("empty names")
	}
}

func TestAdaptiveRatioVsStatic(t *testing.T) {
	// The experimental setup's key ratio: at the sender's 22% utilization,
	// adaptive injects 10x more reference packets than static 1-and-100.
	a, s := DefaultAdaptive(), DefaultStatic()
	if s.Gap(0.22)/a.Gap(0.22) != 10 {
		t.Fatal("paper's 10x injection ratio broken")
	}
}
