package core

import (
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/eventsim"
	"github.com/netmeasure/rlir/internal/netsim"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
	"github.com/netmeasure/rlir/internal/trace"
)

// tandem wires the paper's Figure 3: a traffic source feeding switch1,
// cross traffic merging at switch2, RLI sender on switch1's egress and
// receiver at switch2's egress.
type tandem struct {
	eng      *eventsim.Engine
	nw       *netsim.Network
	sw1, sw2 *netsim.Node
	sink     *netsim.Node
	sender   *Sender
	receiver *Receiver
}

func newTandem(t *testing.T, scheme InjectionScheme, linkBps float64, queueBytes int) *tandem {
	t.Helper()
	td := &tandem{eng: eventsim.New()}
	td.nw = netsim.New(td.eng)
	td.sw1 = td.nw.AddNode(netsim.NodeConfig{Name: "sw1", ProcDelay: 500 * time.Nanosecond})
	td.sw2 = td.nw.AddNode(netsim.NodeConfig{Name: "sw2", ProcDelay: 500 * time.Nanosecond})
	td.sink = td.nw.AddNode(netsim.NodeConfig{Name: "sink"})
	td.nw.Connect(td.sw1, td.sw2, netsim.LinkConfig{RateBps: linkBps, Propagation: time.Microsecond, QueueBytes: queueBytes})
	td.nw.Connect(td.sw2, td.sink, netsim.LinkConfig{RateBps: linkBps, Propagation: time.Microsecond, QueueBytes: queueBytes})
	out0 := func(n *netsim.Node, p *packet.Packet) int { return 0 }
	td.sw1.SetForward(out0)
	td.sw2.SetForward(out0)

	var err error
	td.sender, err = AttachSender(td.sw1.Port(0), SenderConfig{
		ID:        1,
		Addr:      packet.MustParseAddr("10.1.255.254"),
		Receivers: []packet.Addr{packet.MustParseAddr("10.200.255.254")},
		Scheme:    scheme,
	})
	if err != nil {
		t.Fatal(err)
	}
	td.receiver, err = AttachReceiverTx(td.sw2.Port(0), ReceiverConfig{
		Demux:  SingleDemux{ID: 1},
		Accept: func(p *packet.Packet) bool { return p.Kind == packet.Regular },
	})
	if err != nil {
		t.Fatal(err)
	}
	return td
}

func (td *tandem) replay(src trace.Source, kind packet.Kind, into *netsim.Node) int {
	n := 0
	for {
		rec, ok := src.Next()
		if !ok {
			return n
		}
		p := &packet.Packet{
			ID: td.nw.NewPacketID(), Key: rec.Key, Size: rec.Size, Kind: kind,
		}
		td.nw.Inject(into, p, rec.At)
		n++
	}
}

// warmedCfg builds a stationary workload config for the tandem tests.
func warmedCfg(seed int64, dur time.Duration, bps float64, src string) trace.Config {
	cfg := trace.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = dur
	cfg.TargetBps = bps
	cfg.FlowLen.Max = 400
	cfg.Warmup = cfg.StationaryWarmup()
	if src != "" {
		cfg.SrcPrefix = packet.MustParsePrefix(src)
	}
	return cfg
}

func TestTandemEndToEndAccuracy(t *testing.T) {
	// Heavy congestion at switch2 from merged cross traffic; verify the
	// receiver's per-flow mean estimates track ground truth closely.
	td := newTandem(t, Static{N: 50}, 100e6, 256<<10)

	reg := warmedCfg(11, 400*time.Millisecond, 22e6, "") // 22% of 100 Mbps
	cross := warmedCfg(22, 400*time.Millisecond, 68e6, "172.16.0.0/16")

	td.replay(trace.NewGenerator(reg), packet.Regular, td.sw1)
	td.replay(trace.NewGenerator(cross), packet.Cross, td.sw2)
	td.eng.Run()

	c := td.receiver.Counters()
	if c.RefsSeen == 0 {
		t.Fatal("no reference packets arrived")
	}
	if c.Estimated == 0 {
		t.Fatal("no estimates produced")
	}
	if c.Filtered == 0 {
		t.Fatal("cross traffic should have been filtered at the receiver")
	}

	results := td.receiver.Results(1)
	if len(results) < 50 {
		t.Fatalf("only %d flows measured", len(results))
	}
	sum := Summarize(results)
	if sum.MedianRelErr > 0.6 {
		t.Fatalf("median relative error %.3f too high: estimation broken", sum.MedianRelErr)
	}
	// Ground-truth delays must be positive and include queueing.
	if sum.TrueMeanDelay <= 0 {
		t.Fatalf("true mean delay = %v", sum.TrueMeanDelay)
	}
}

func TestTandemDenseFlowsEstimateBetter(t *testing.T) {
	// Flows with many packets average out interpolation noise: their mean
	// relative error should beat single-packet flows'.
	td := newTandem(t, Static{N: 50}, 100e6, 256<<10)
	reg := trace.DefaultConfig()
	reg.Duration = 400 * time.Millisecond
	reg.TargetBps = 40e6
	reg.Seed = 33
	td.replay(trace.NewGenerator(reg), packet.Regular, td.sw1)
	td.eng.Run()

	all := td.receiver.Results(1)
	dense := td.receiver.Results(20)
	if len(dense) == 0 || len(all) <= len(dense) {
		t.Skipf("degenerate split: %d all, %d dense", len(all), len(dense))
	}
	if MeanErrCDF(dense).Median() > MeanErrCDF(all).Median()*1.5 {
		t.Fatalf("dense flows estimate worse (%.3f) than all flows (%.3f)",
			MeanErrCDF(dense).Median(), MeanErrCDF(all).Median())
	}
}

func TestTandemHigherInjectionRateMoreAccurate(t *testing.T) {
	// The paper's core observation (Fig 4a): more reference packets, lower
	// relative error. 1-and-10 must beat 1-and-300 on the same workload.
	// Stationary (warmed-up) traffic keeps the bottleneck out of degenerate
	// all-or-nothing plateaus, and the duration gives the sparse scheme a
	// meaningful number of interpolation windows.
	run := func(scheme InjectionScheme) float64 {
		td := newTandem(t, scheme, 100e6, 256<<10)
		reg := trace.DefaultConfig()
		reg.Duration = 600 * time.Millisecond
		reg.TargetBps = 22e6
		reg.Seed = 44
		reg.FlowLen.Max = 400
		reg.Warmup = reg.StationaryWarmup()
		cross := trace.DefaultConfig()
		cross.Duration = 600 * time.Millisecond
		cross.TargetBps = 55e6
		cross.Seed = 55
		cross.SrcPrefix = packet.MustParsePrefix("172.16.0.0/16")
		cross.FlowLen.Max = 400
		cross.Warmup = cross.StationaryWarmup()
		td.replay(trace.NewGenerator(reg), packet.Regular, td.sw1)
		td.replay(trace.NewGenerator(cross), packet.Cross, td.sw2)
		td.eng.Run()
		return Summarize(td.receiver.Results(1)).MedianRelErr
	}
	aggressive := run(Static{N: 10})
	sparse := run(Static{N: 300})
	if aggressive >= sparse {
		t.Fatalf("1-and-10 median err %.4f should beat 1-and-300's %.4f", aggressive, sparse)
	}
}

func TestTandemReferenceDelaysAreExact(t *testing.T) {
	// Reference packet delay computed by the receiver must equal the
	// simulator's ground truth for the same packet: hardware timestamp at
	// tx start, receiver clock at observation, perfect sync.
	td := newTandem(t, Static{N: 5}, 1e9, 0)
	reg := trace.DefaultConfig()
	reg.Duration = 10 * time.Millisecond
	reg.TargetBps = 50e6
	td.replay(trace.NewGenerator(reg), packet.Regular, td.sw1)

	// Independent check tap at the same observation point.
	var maxDiff time.Duration
	td.sw2.Port(0).OnTxStart(func(p *packet.Packet, now simtime.Time) {
		if p.Kind != packet.Reference {
			return
		}
		measured := p.Ref.Delay(now)
		truth := now.Sub(p.SegmentStart)
		diff := measured - truth
		if diff < 0 {
			diff = -diff
		}
		if diff > maxDiff {
			maxDiff = diff
		}
	})
	td.eng.Run()
	if td.receiver.Counters().RefsSeen == 0 {
		t.Fatal("no refs observed")
	}
	if maxDiff != 0 {
		t.Fatalf("reference delay deviates from ground truth by %v", maxDiff)
	}
}

func TestTandemEstimateBracketedByRefDelays(t *testing.T) {
	// System-level convexity: every per-packet estimate lies within the
	// [min,max] of all reference delays seen (linear interpolation cannot
	// extrapolate).
	td := newTandem(t, Static{N: 20}, 100e6, 128<<10)
	reg := trace.DefaultConfig()
	reg.Duration = 100 * time.Millisecond
	reg.TargetBps = 60e6
	td.replay(trace.NewGenerator(reg), packet.Regular, td.sw1)
	td.eng.Run()

	h := td.receiver.AggregateHistogram()
	if h.Count() == 0 {
		t.Fatal("no estimates")
	}
	// All reference delays pass through the same span; estimates are
	// convex combinations, so the histogram extremes cannot exceed the
	// reference delay extremes. Reconstruct ref delay range via a fresh
	// run's histogram bounds sanity: min >= 0 and max below the queue
	// drain bound (queue bytes / rate + serialization + prop + proc).
	bound := time.Duration(float64(128<<10*8)/100e6*float64(time.Second)) +
		2*time.Millisecond // generous slack for serialization chains
	if h.Max() > bound {
		t.Fatalf("estimate %v exceeds physical bound %v", h.Max(), bound)
	}
}

func TestTandemDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		td := newTandem(t, Static{N: 25}, 100e6, 64<<10)
		reg := trace.DefaultConfig()
		reg.Duration = 50 * time.Millisecond
		reg.TargetBps = 70e6
		reg.Seed = 99
		td.replay(trace.NewGenerator(reg), packet.Regular, td.sw1)
		td.eng.Run()
		s := Summarize(td.receiver.Results(1))
		return td.receiver.Counters().Estimated, s.MedianRelErr
	}
	n1, m1 := run()
	n2, m2 := run()
	if n1 != n2 || m1 != m2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", n1, m1, n2, m2)
	}
}
