package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/stats"
)

// FlowResult is one flow's estimated-vs-true latency statistics, the unit
// the paper's accuracy CDFs are built from.
type FlowResult struct {
	Key packet.FlowKey
	// N is the number of per-packet estimates for this flow.
	N int64
	// EstMean / TrueMean are the estimated and ground-truth mean delays.
	EstMean, TrueMean time.Duration
	// EstStd / TrueStd are the estimated and ground-truth per-flow standard
	// deviations.
	EstStd, TrueStd time.Duration
	// RelErrMean is |EstMean-TrueMean|/TrueMean (Figure 4(a)'s metric).
	RelErrMean float64
	// RelErrStd is the same for standard deviations (Figure 4(b)).
	RelErrStd float64
}

// Results extracts per-flow results from a receiver, keeping flows with at
// least minPackets estimates (the paper evaluates all estimated flows;
// thresholds > 1 are useful when studying dense flows separately). Results
// are sorted by flow key for determinism.
func (r *Receiver) Results(minPackets int64) []FlowResult {
	out := make([]FlowResult, 0, len(r.flows))
	for key, acc := range r.flows {
		if acc.Est.N() < minPackets {
			continue
		}
		fr := FlowResult{
			Key:      key,
			N:        acc.Est.N(),
			EstMean:  time.Duration(acc.Est.Mean()),
			TrueMean: time.Duration(acc.True.Mean()),
			EstStd:   time.Duration(acc.Est.Std()),
			TrueStd:  time.Duration(acc.True.Std()),
		}
		fr.RelErrMean = stats.RelErr(acc.Est.Mean(), acc.True.Mean())
		fr.RelErrStd = stats.RelErr(acc.Est.Std(), acc.True.Std())
		out = append(out, fr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out
}

// MeanErrCDF builds the CDF of per-flow mean relative errors.
func MeanErrCDF(results []FlowResult) *stats.CDF {
	xs := make([]float64, len(results))
	for i, r := range results {
		xs[i] = r.RelErrMean
	}
	return stats.NewCDF(xs)
}

// StdErrCDF builds the CDF of per-flow standard deviation relative errors,
// over flows with at least two packets (a single sample has no deviation).
func StdErrCDF(results []FlowResult) *stats.CDF {
	xs := make([]float64, 0, len(results))
	for _, r := range results {
		if r.N >= 2 && r.TrueStd > 0 {
			xs = append(xs, r.RelErrStd)
		}
	}
	return stats.NewCDF(xs)
}

// Summary aggregates a result set the way the paper quotes scalars.
type Summary struct {
	Flows          int
	Estimates      int64
	MedianRelErr   float64
	P90RelErr      float64
	FracUnder10Pct float64
	TrueMeanDelay  time.Duration // average of per-flow true means, packet-weighted
}

// Summarize computes a Summary over results.
func Summarize(results []FlowResult) Summary {
	if len(results) == 0 {
		return Summary{}
	}
	cdf := MeanErrCDF(results)
	var estimates, wsum int64
	var trueWeighted float64
	for _, r := range results {
		estimates += r.N
		trueWeighted += float64(r.TrueMean) * float64(r.N)
		wsum += r.N
	}
	return Summary{
		Flows:          len(results),
		Estimates:      estimates,
		MedianRelErr:   cdf.Median(),
		P90RelErr:      cdf.Quantile(0.9),
		FracUnder10Pct: cdf.FracBelow(0.10),
		TrueMeanDelay:  time.Duration(trueWeighted / float64(wsum)),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("flows=%d estimates=%d medianRelErr=%.3f p90=%.3f under10%%=%.1f%% trueMean=%v",
		s.Flows, s.Estimates, s.MedianRelErr, s.P90RelErr, s.FracUnder10Pct*100, s.TrueMeanDelay)
}

// FormatResults renders the first n rows of a result set as a table.
func FormatResults(results []FlowResult, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %6s %12s %12s %8s %8s\n", "flow", "pkts", "est-mean", "true-mean", "err", "errStd")
	for i, r := range results {
		if i >= n {
			fmt.Fprintf(&b, "... %d more\n", len(results)-n)
			break
		}
		fmt.Fprintf(&b, "%-44s %6d %12v %12v %7.2f%% %7.2f%%\n",
			r.Key, r.N, r.EstMean, r.TrueMean, r.RelErrMean*100, r.RelErrStd*100)
	}
	return b.String()
}
