package core

import (
	"testing"

	"github.com/netmeasure/rlir/internal/netsim"
	"github.com/netmeasure/rlir/internal/packet"
)

func pktFrom(src string) *packet.Packet {
	return &packet.Packet{Key: packet.FlowKey{Src: packet.MustParseAddr(src)}}
}

func TestSingleDemux(t *testing.T) {
	d := SingleDemux{ID: 7}
	id, ok := d.Classify(pktFrom("1.2.3.4"))
	if !ok || id != 7 {
		t.Fatalf("Classify = %d/%v", id, ok)
	}
}

func TestPrefixDemux(t *testing.T) {
	d := NewPrefixDemux().
		Add(packet.MustParsePrefix("10.1.0.0/16"), 1).
		Add(packet.MustParsePrefix("10.2.0.0/16"), 2).
		Add(packet.MustParsePrefix("10.2.5.0/24"), 3)

	cases := []struct {
		src  string
		want SenderID
		ok   bool
	}{
		{"10.1.9.9", 1, true},
		{"10.2.1.1", 2, true},
		{"10.2.5.1", 3, true}, // longest match wins
		{"172.16.0.1", 0, false},
	}
	for _, c := range cases {
		id, ok := d.Classify(pktFrom(c.src))
		if ok != c.ok || id != c.want {
			t.Errorf("Classify(%s) = %d/%v, want %d/%v", c.src, id, ok, c.want, c.ok)
		}
	}
}

func TestMarkDemux(t *testing.T) {
	d := NewMarkDemux().Add(1, 100).Add(2, 200)
	p := pktFrom("10.0.0.1")
	p.TOS = 2
	if id, ok := d.Classify(p); !ok || id != 200 {
		t.Fatalf("Classify = %d/%v", id, ok)
	}
	p.TOS = 9
	if _, ok := d.Classify(p); ok {
		t.Fatal("unknown mark should miss")
	}
	p.TOS = 0
	if _, ok := d.Classify(p); ok {
		t.Fatal("unmarked packet should miss")
	}
}

func TestFuncDemux(t *testing.T) {
	d := FuncDemux{F: func(p *packet.Packet) (SenderID, bool) {
		return SenderID(p.Key.SrcPort), p.Key.SrcPort != 0
	}, Label: "by-port"}
	p := pktFrom("10.0.0.1")
	p.Key.SrcPort = 42
	if id, ok := d.Classify(p); !ok || id != 42 {
		t.Fatalf("Classify = %d/%v", id, ok)
	}
	p.Key.SrcPort = 0
	if _, ok := d.Classify(p); ok {
		t.Fatal("should miss")
	}
	if d.Name() != "by-port" {
		t.Fatalf("Name = %q", d.Name())
	}
	if (FuncDemux{F: d.F}).Name() == "" {
		t.Fatal("default name empty")
	}
}

func TestOracleDemux(t *testing.T) {
	d := NewOracleDemux().Add(netsim.NodeID(5), 50).Add(netsim.NodeID(9), 90)
	p := pktFrom("10.0.0.1")
	p.RecordHop(3)
	p.RecordHop(9)
	if id, ok := d.Classify(p); !ok || id != 90 {
		t.Fatalf("Classify = %d/%v", id, ok)
	}
	q := pktFrom("10.0.0.2")
	q.RecordHop(1)
	if _, ok := d.Classify(q); ok {
		t.Fatal("no mapped hop should miss")
	}
}

func TestCompositeDemuxOrder(t *testing.T) {
	prefix := NewPrefixDemux().Add(packet.MustParsePrefix("10.1.0.0/16"), 1)
	fallback := SingleDemux{ID: 99}
	d := NewCompositeDemux(prefix, fallback)

	if id, _ := d.Classify(pktFrom("10.1.2.3")); id != 1 {
		t.Fatalf("first demux should win, got %d", id)
	}
	if id, _ := d.Classify(pktFrom("172.16.0.1")); id != 99 {
		t.Fatalf("fallback should catch, got %d", id)
	}
	empty := NewCompositeDemux(prefix)
	if _, ok := empty.Classify(pktFrom("172.16.0.1")); ok {
		t.Fatal("no-hit composite should miss")
	}
}

func TestDemuxNames(t *testing.T) {
	ds := []Demux{
		SingleDemux{ID: 1},
		NewPrefixDemux(),
		NewMarkDemux(),
		NewOracleDemux(),
		NewCompositeDemux(SingleDemux{ID: 1}, NewMarkDemux()),
	}
	for _, d := range ds {
		if d.Name() == "" {
			t.Errorf("%T has empty name", d)
		}
	}
}
