package core

import (
	"fmt"

	"github.com/netmeasure/rlir/internal/netsim"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simclock"
	"github.com/netmeasure/rlir/internal/simtime"
)

// SenderID identifies an RLI sender instance network-wide. It rides in the
// reference packet payload so receivers can demultiplex reference streams.
type SenderID = uint32

// RLIPort is the UDP port reference packets are addressed to.
const RLIPort = 9544

// DefaultRefSize is the reference packet frame size: minimum-size frames
// perturb the measured queues least.
const DefaultRefSize = packet.MinSize

// UtilizationSource supplies the sender's view of its own link utilization.
// netsim.UtilMeter implements it; tests substitute fixed values.
type UtilizationSource interface {
	Utilization() float64
}

// FixedUtilization is a constant UtilizationSource.
type FixedUtilization float64

// Utilization implements UtilizationSource.
func (f FixedUtilization) Utilization() float64 { return float64(f) }

// SenderConfig configures an RLI sender instance.
type SenderConfig struct {
	// ID is the instance identity carried in reference payloads.
	ID SenderID
	// Addr is the address of the interface the sender sits on; reference
	// packets use it as their source.
	Addr packet.Addr
	// Receivers lists the destinations of the reference fan-out: one
	// reference packet per receiver per injection event. Under RLIR a
	// sender references every receiver its traffic can reach ("each sender
	// sends reference packets to all intermediate receivers", §3.1).
	Receivers []packet.Addr
	// Scheme is the injection scheme (static or adaptive).
	Scheme InjectionScheme
	// Util is the utilization estimate driving an adaptive scheme. nil is
	// treated as zero utilization (most aggressive adaptive gap).
	Util UtilizationSource
	// Clock is the sender's local clock used for hardware timestamps.
	Clock simclock.Source
	// RefSize overrides the reference frame size (default DefaultRefSize).
	RefSize int
	// CountKinds selects which transiting packets advance the 1-and-n
	// counter. Empty means Regular and Cross (everything that is not a
	// reference packet), matching a hardware implementation that counts
	// frames, not flows.
	CountKinds []packet.Kind
}

// SenderCounters reports a sender's activity.
type SenderCounters struct {
	Counted  uint64 // packets that advanced the 1-and-n counter
	Injected uint64 // reference packets injected (fan-out counted per copy)
	Events   uint64 // injection events (one per gap expiry)
}

// Sender is an RLI sender instance attached to a netsim port.
type Sender struct {
	cfg      SenderConfig
	port     *netsim.Port
	seq      uint32
	sinceRef int
	ctr      SenderCounters
	countAll bool
	counts   [3]bool
}

// AttachSender installs an RLI sender on port. It observes every frame at
// transmit start (egress hardware timestamping semantics), stamps ground
// truth segment starts, and injects reference packets into the same port.
func AttachSender(port *netsim.Port, cfg SenderConfig) (*Sender, error) {
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("core: sender %d has no injection scheme", cfg.ID)
	}
	if len(cfg.Receivers) == 0 {
		return nil, fmt.Errorf("core: sender %d has no receivers", cfg.ID)
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Perfect{}
	}
	if cfg.RefSize == 0 {
		cfg.RefSize = DefaultRefSize
	}
	if cfg.RefSize < packet.MinSize || cfg.RefSize > packet.MaxSize {
		return nil, fmt.Errorf("core: reference size %d out of range", cfg.RefSize)
	}
	s := &Sender{cfg: cfg, port: port}
	if len(cfg.CountKinds) == 0 {
		s.countAll = true
	} else {
		for _, k := range cfg.CountKinds {
			if k == packet.Reference {
				return nil, fmt.Errorf("core: reference packets cannot advance the injection counter")
			}
			s.counts[k] = true
		}
	}
	port.OnTxStart(s.onTxStart)
	return s, nil
}

// Counters returns a snapshot of the sender's counters.
func (s *Sender) Counters() SenderCounters { return s.ctr }

// ID returns the sender's identity.
func (s *Sender) ID() SenderID { return s.cfg.ID }

// CurrentGap returns the 1-and-n gap the scheme chooses right now.
func (s *Sender) CurrentGap() int { return s.cfg.Scheme.Gap(s.utilization()) }

func (s *Sender) utilization() float64 {
	if s.cfg.Util == nil {
		return 0
	}
	return s.cfg.Util.Utilization()
}

// onTxStart runs for every frame beginning transmission on the port.
func (s *Sender) onTxStart(p *packet.Packet, now simtime.Time) {
	if p.Kind == packet.Reference {
		if p.Ref.Sender == s.cfg.ID {
			// Hardware egress timestamping: the wire timestamp is written
			// the instant the frame starts serializing, after any queueing
			// it suffered behind regular traffic.
			p.Ref.Timestamp = s.cfg.Clock.Read(now)
			p.SegmentStart = now
		}
		// Foreign reference packets transit untouched and uncounted.
		return
	}
	// Ground truth: this packet's measured segment starts here.
	p.SegmentStart = now
	if !s.countAll && !s.counts[p.Kind] {
		return
	}
	s.ctr.Counted++
	s.sinceRef++
	if s.sinceRef < s.cfg.Scheme.Gap(s.utilization()) {
		return
	}
	s.sinceRef = 0
	s.ctr.Events++
	s.seq++
	for _, dst := range s.cfg.Receivers {
		ref := &packet.Packet{
			ID:   s.port.Node().NewPacketID(),
			Kind: packet.Reference,
			Size: s.cfg.RefSize,
			Key: packet.FlowKey{
				Src:     s.cfg.Addr,
				Dst:     dst,
				SrcPort: RLIPort,
				DstPort: RLIPort,
				Proto:   packet.ProtoUDP,
			},
			Ref: packet.RefPayload{Sender: s.cfg.ID, Seq: s.seq},
		}
		s.ctr.Injected++
		s.port.Enqueue(ref)
	}
}
