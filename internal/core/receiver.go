package core

import (
	"fmt"
	"time"

	"github.com/netmeasure/rlir/internal/netsim"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simclock"
	"github.com/netmeasure/rlir/internal/simtime"
	"github.com/netmeasure/rlir/internal/stats"
)

// Estimator selects how a regular packet's delay is derived from the
// bracketing reference delays. Linear is the paper's estimator; the others
// exist for the ablation study (DESIGN.md A2).
type Estimator uint8

const (
	// Linear interpolates between the left and right reference delays by
	// arrival time — RLI's estimator.
	Linear Estimator = iota
	// LeftRef copies the earlier reference delay.
	LeftRef
	// RightRef copies the later reference delay.
	RightRef
	// Nearest copies whichever reference arrived closer in time.
	Nearest
	numEstimators
)

func (e Estimator) String() string {
	switch e {
	case Linear:
		return "linear"
	case LeftRef:
		return "left"
	case RightRef:
		return "right"
	case Nearest:
		return "nearest"
	default:
		return fmt.Sprintf("estimator(%d)", uint8(e))
	}
}

// DefaultMaxPending bounds the per-stream interpolation buffer. 1-and-300
// injection with jumbo bursts stays well under this; the bound exists so a
// dead sender cannot grow receiver memory without bound.
const DefaultMaxPending = 65536

// ReceiverConfig configures an RLI receiver instance.
type ReceiverConfig struct {
	// Demux attributes each regular packet to the sender whose reference
	// stream shares its path. Required: even the single-sender case states
	// its assumption explicitly via SingleDemux.
	Demux Demux
	// Estimator selects the interpolation variant (default Linear).
	Estimator Estimator
	// Clock is the receiver's local clock (default perfect sync).
	Clock simclock.Source
	// MaxPending caps each stream's interpolation buffer (default
	// DefaultMaxPending; negative means unbounded).
	MaxPending int
	// Accept filters which non-reference packets this receiver estimates;
	// nil accepts everything. The paper's receiver estimates regular
	// traffic only, identified by source prefix.
	Accept func(*packet.Packet) bool
	// AcceptRef filters which reference packets this receiver consumes;
	// nil accepts all. Receivers sharing a path with foreign reference
	// streams (RLIR fan-out) must filter by destination address.
	AcceptRef func(*packet.Packet) bool
	// OnEstimate, when non-nil, observes every per-packet estimate as it is
	// produced — the receiver's export hook. A deployment streams these to a
	// collection plane (see internal/collector); estimates still fold into
	// the receiver's own per-flow accumulators regardless.
	OnEstimate EstimateFunc
}

// EstimateFunc receives one per-packet estimate: the flow it belongs to, the
// interpolated delay, and the simulator's ground-truth delay (what a real
// deployment cannot see; exported so accuracy can be evaluated downstream).
type EstimateFunc func(key packet.FlowKey, est, truth time.Duration)

// ReceiverCounters reports a receiver's activity.
type ReceiverCounters struct {
	RefsSeen       uint64 // reference packets consumed
	RefsForeign    uint64 // reference packets filtered out by AcceptRef
	RegularSeen    uint64 // accepted non-reference packets observed
	Filtered       uint64 // non-reference packets rejected by Accept
	Unattributed   uint64 // accepted packets the demux could not classify
	BeforeFirstRef uint64 // packets discarded for lack of a left reference
	Evicted        uint64 // packets evicted from a full interpolation buffer
	Estimated      uint64 // per-packet estimates produced
}

// FlowAcc accumulates one flow's estimated and true per-packet delays.
type FlowAcc struct {
	Est  stats.Welford // interpolated delays, in nanoseconds
	True stats.Welford // ground-truth delays, in nanoseconds
}

// refSample is a consumed reference observation.
type refSample struct {
	arrival simtime.Time // receiver-clock arrival instant
	delay   time.Duration
}

// pendingPkt is a buffered regular packet awaiting its closing reference.
type pendingPkt struct {
	key       packet.FlowKey
	arrival   simtime.Time
	trueDelay time.Duration
}

// stream is the per-sender interpolation state: the last reference sample
// and the buffer of regular packets since it (Figure 2's "interpolation
// buffer").
type stream struct {
	last    refSample
	hasLast bool
	pending []pendingPkt
}

// Receiver is an RLI receiver instance.
type Receiver struct {
	cfg     ReceiverConfig
	streams map[SenderID]*stream
	flows   map[packet.FlowKey]*FlowAcc
	accSlab []FlowAcc // slab the flow accumulators are carved from
	ctr     ReceiverCounters
	segHist stats.Histogram // estimated delays, aggregate view
}

// newFlowAcc carves one accumulator from the slab: first-packet-of-flow is
// a hot event (hundreds of flows per run), and one heap object per flow was
// the simulator's largest remaining allocation source. A full slab is
// abandoned to the map's pointers and replaced, so carved addresses never
// move.
func (r *Receiver) newFlowAcc() *FlowAcc {
	if len(r.accSlab) == cap(r.accSlab) {
		r.accSlab = make([]FlowAcc, 0, 128)
	}
	r.accSlab = append(r.accSlab, FlowAcc{})
	return &r.accSlab[len(r.accSlab)-1]
}

// NewReceiver builds a detached receiver; use Observe to feed it, or attach
// it to simulation points with AttachReceiverTx / AttachReceiverIngress.
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	if cfg.Demux == nil {
		return nil, fmt.Errorf("core: receiver requires a demultiplexer")
	}
	if cfg.Estimator >= numEstimators {
		return nil, fmt.Errorf("core: unknown estimator %d", cfg.Estimator)
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Perfect{}
	}
	if cfg.MaxPending == 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	return &Receiver{
		cfg:     cfg,
		streams: make(map[SenderID]*stream),
		flows:   make(map[packet.FlowKey]*FlowAcc),
	}, nil
}

// AttachReceiverTx installs a receiver at a port's transmit-start point:
// the segment it measures ends after this port's queue, which is how a
// bottleneck queue is included in the measured span.
func AttachReceiverTx(port *netsim.Port, cfg ReceiverConfig) (*Receiver, error) {
	r, err := NewReceiver(cfg)
	if err != nil {
		return nil, err
	}
	port.OnTxStart(r.Observe)
	return r, nil
}

// AttachReceiverIngress installs a receiver at a node's ingress — the
// natural placement for a receiver hosted "at" a core router (§3.1).
func AttachReceiverIngress(node *netsim.Node, cfg ReceiverConfig) (*Receiver, error) {
	r, err := NewReceiver(cfg)
	if err != nil {
		return nil, err
	}
	node.OnReceive(r.Observe)
	return r, nil
}

// Counters returns a snapshot of the receiver's counters.
func (r *Receiver) Counters() ReceiverCounters { return r.ctr }

// Observe feeds one packet observation at true instant now. It is the tap
// callback, exported so tests and alternative taps can drive the receiver
// directly.
func (r *Receiver) Observe(p *packet.Packet, now simtime.Time) {
	local := r.cfg.Clock.Read(now)
	if p.Kind == packet.Reference {
		if r.cfg.AcceptRef != nil && !r.cfg.AcceptRef(p) {
			r.ctr.RefsForeign++
			return
		}
		r.consumeRef(p, local)
		return
	}
	if r.cfg.Accept != nil && !r.cfg.Accept(p) {
		r.ctr.Filtered++
		return
	}
	r.ctr.RegularSeen++
	sid, ok := r.cfg.Demux.Classify(p)
	if !ok {
		r.ctr.Unattributed++
		return
	}
	st := r.stream(sid)
	if !st.hasLast && (r.cfg.Estimator == Linear || r.cfg.Estimator == LeftRef) {
		// No left reference yet: these estimators cannot place the packet.
		r.ctr.BeforeFirstRef++
		return
	}
	if r.cfg.MaxPending > 0 && len(st.pending) >= r.cfg.MaxPending {
		// Evict oldest: freshest packets are the ones the next reference
		// brackets most tightly.
		copy(st.pending, st.pending[1:])
		st.pending = st.pending[:len(st.pending)-1]
		r.ctr.Evicted++
	}
	st.pending = append(st.pending, pendingPkt{
		key:       p.Key,
		arrival:   local,
		trueDelay: now.Sub(p.SegmentStart),
	})
}

func (r *Receiver) stream(sid SenderID) *stream {
	st, ok := r.streams[sid]
	if !ok {
		st = &stream{}
		r.streams[sid] = st
	}
	return st
}

// consumeRef closes the interpolation window of the reference's stream.
func (r *Receiver) consumeRef(p *packet.Packet, local simtime.Time) {
	r.ctr.RefsSeen++
	right := refSample{arrival: local, delay: local.Sub(p.Ref.Timestamp)}
	st := r.stream(p.Ref.Sender)
	for _, pp := range st.pending {
		est, ok := r.estimate(st, right, pp)
		if !ok {
			r.ctr.BeforeFirstRef++
			continue
		}
		r.record(pp, est)
	}
	st.pending = st.pending[:0]
	st.last = right
	st.hasLast = true
}

// estimate applies the configured estimator for a packet bracketed by
// st.last (possibly absent) and right.
func (r *Receiver) estimate(st *stream, right refSample, pp pendingPkt) (time.Duration, bool) {
	switch r.cfg.Estimator {
	case RightRef:
		return right.delay, true
	case LeftRef:
		if !st.hasLast {
			return 0, false
		}
		return st.last.delay, true
	case Nearest:
		if !st.hasLast {
			return right.delay, true
		}
		if pp.arrival.Sub(st.last.arrival) <= right.arrival.Sub(pp.arrival) {
			return st.last.delay, true
		}
		return right.delay, true
	default: // Linear
		if !st.hasLast {
			return 0, false
		}
		return interpolate(st.last, right, pp.arrival), true
	}
}

// interpolate is RLI's linear interpolation: the packet's delay estimate is
// the left reference delay plus the delay slope between the references
// scaled by the packet's arrival offset.
func interpolate(left, right refSample, at simtime.Time) time.Duration {
	span := right.arrival.Sub(left.arrival)
	if span <= 0 {
		// References collapsed to one instant: average the endpoints.
		return (left.delay + right.delay) / 2
	}
	frac := float64(at.Sub(left.arrival)) / float64(span)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return left.delay + time.Duration(frac*float64(right.delay-left.delay))
}

// record folds one per-packet estimate into the flow and aggregate state.
func (r *Receiver) record(pp pendingPkt, est time.Duration) {
	acc, ok := r.flows[pp.key]
	if !ok {
		acc = r.newFlowAcc()
		r.flows[pp.key] = acc
	}
	acc.Est.Add(float64(est))
	acc.True.Add(float64(pp.trueDelay))
	r.segHist.Record(est)
	r.ctr.Estimated++
	if r.cfg.OnEstimate != nil {
		r.cfg.OnEstimate(pp.key, est, pp.trueDelay)
	}
}

// Flows returns the receiver's per-flow accumulators, live (not copies).
func (r *Receiver) Flows() map[packet.FlowKey]*FlowAcc { return r.flows }

// Flow returns one flow's accumulator.
func (r *Receiver) Flow(key packet.FlowKey) (*FlowAcc, bool) {
	acc, ok := r.flows[key]
	return acc, ok
}

// AggregateHistogram returns the log-bucketed histogram of all per-packet
// estimates, the operator's "what does this segment's latency look like"
// view.
func (r *Receiver) AggregateHistogram() *stats.Histogram { return &r.segHist }

// Streams returns the number of reference streams seen.
func (r *Receiver) Streams() int { return len(r.streams) }
