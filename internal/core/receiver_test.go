package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simclock"
	"github.com/netmeasure/rlir/internal/simtime"
)

var testKey = packet.FlowKey{
	Src: packet.MustParseAddr("10.1.0.5"), Dst: packet.MustParseAddr("10.2.0.9"),
	SrcPort: 1000, DstPort: 80, Proto: packet.ProtoTCP,
}

// refPkt builds a reference packet from sender sid transmitted at tx.
func refPkt(sid SenderID, seq uint32, tx simtime.Time) *packet.Packet {
	return &packet.Packet{
		ID: uint64(seq), Kind: packet.Reference, Size: 64,
		Ref:          packet.RefPayload{Sender: sid, Seq: seq, Timestamp: tx},
		SegmentStart: tx,
	}
}

// regPkt builds a regular packet that entered the segment at start.
func regPkt(id uint64, key packet.FlowKey, start simtime.Time) *packet.Packet {
	return &packet.Packet{ID: id, Kind: packet.Regular, Size: 1000, Key: key, SegmentStart: start}
}

func newRx(t *testing.T, cfg ReceiverConfig) *Receiver {
	t.Helper()
	if cfg.Demux == nil {
		cfg.Demux = SingleDemux{ID: 1}
	}
	r, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func at(us int) simtime.Time { return simtime.FromDuration(time.Duration(us) * time.Microsecond) }

func TestLinearInterpolationExact(t *testing.T) {
	r := newRx(t, ReceiverConfig{})
	// Left ref: sent 0, received 100us -> delay 100us.
	r.Observe(refPkt(1, 1, at(0)), at(100))
	// Regular packet arrives at 150us (halfway to the next ref arrival).
	r.Observe(regPkt(10, testKey, at(100)), at(150))
	// Right ref: sent 100us, received 200us -> delay 100us... make delays
	// differ: right ref sent 60us received 200us -> delay 140us.
	r.Observe(refPkt(1, 2, at(60)), at(200))

	acc, ok := r.Flow(testKey)
	if !ok {
		t.Fatal("flow missing")
	}
	if acc.Est.N() != 1 {
		t.Fatalf("estimates = %d", acc.Est.N())
	}
	// Linear: dL=100us at t=100us, dR=140us at t=200us, packet at 150us ->
	// 100 + 0.5*40 = 120us.
	if got := time.Duration(acc.Est.Mean()); got != 120*time.Microsecond {
		t.Fatalf("estimate = %v, want 120µs", got)
	}
	// Ground truth: entered 100us, observed 150us -> 50µs.
	if got := time.Duration(acc.True.Mean()); got != 50*time.Microsecond {
		t.Fatalf("truth = %v, want 50µs", got)
	}
}

func TestInterpolationAtEndpoints(t *testing.T) {
	r := newRx(t, ReceiverConfig{})
	r.Observe(refPkt(1, 1, at(0)), at(100))
	// A packet arriving exactly with the left reference gets the left delay;
	// exactly with the right reference, the right delay.
	k2 := testKey
	k2.SrcPort = 2000
	r.Observe(regPkt(10, testKey, at(50)), at(100))
	r.Observe(regPkt(11, k2, at(120)), at(200))
	r.Observe(refPkt(1, 2, at(40)), at(200)) // delay 160us

	if got := time.Duration(mustFlow(t, r, testKey).Est.Mean()); got != 100*time.Microsecond {
		t.Fatalf("left-endpoint estimate = %v, want 100µs", got)
	}
	if got := time.Duration(mustFlow(t, r, k2).Est.Mean()); got != 160*time.Microsecond {
		t.Fatalf("right-endpoint estimate = %v, want 160µs", got)
	}
}

func mustFlow(t *testing.T, r *Receiver, k packet.FlowKey) *FlowAcc {
	t.Helper()
	acc, ok := r.Flow(k)
	if !ok {
		t.Fatalf("flow %v missing", k)
	}
	return acc
}

func TestInterpolationConvexityProperty(t *testing.T) {
	// The linear estimate always lies between the bracketing reference
	// delays, for any arrival order and any delays.
	f := func(dLus, dRus uint16, fracRaw uint16) bool {
		left := refSample{arrival: at(100), delay: time.Duration(dLus) * time.Microsecond}
		right := refSample{arrival: at(300), delay: time.Duration(dRus) * time.Microsecond}
		frac := float64(fracRaw) / 65535
		arr := left.arrival.Add(time.Duration(frac * float64(right.arrival.Sub(left.arrival))))
		got := interpolate(left, right, arr)
		lo, hi := left.delay, right.delay
		if lo > hi {
			lo, hi = hi, lo
		}
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterpolationDegenerateSpan(t *testing.T) {
	left := refSample{arrival: at(100), delay: 10 * time.Microsecond}
	right := refSample{arrival: at(100), delay: 30 * time.Microsecond}
	if got := interpolate(left, right, at(100)); got != 20*time.Microsecond {
		t.Fatalf("degenerate span = %v, want midpoint 20µs", got)
	}
}

func TestPacketsBeforeFirstRefDropped(t *testing.T) {
	r := newRx(t, ReceiverConfig{})
	r.Observe(regPkt(1, testKey, at(0)), at(10))
	r.Observe(regPkt(2, testKey, at(5)), at(15))
	r.Observe(refPkt(1, 1, at(0)), at(100))
	if got := r.Counters().BeforeFirstRef; got != 2 {
		t.Fatalf("BeforeFirstRef = %d, want 2", got)
	}
	if _, ok := r.Flow(testKey); ok {
		t.Fatal("no estimates should exist")
	}
	// After the first ref, estimation proceeds.
	r.Observe(regPkt(3, testKey, at(110)), at(150))
	r.Observe(refPkt(1, 2, at(100)), at(200))
	if got := r.Counters().Estimated; got != 1 {
		t.Fatalf("Estimated = %d", got)
	}
}

func TestEstimatorVariants(t *testing.T) {
	// dL = 100µs (ref at t=100), dR = 200µs (ref at t=200).
	// Packet arrives at t=130 (closer to left).
	cases := []struct {
		est  Estimator
		want time.Duration
	}{
		{Linear, 130 * time.Microsecond},
		{LeftRef, 100 * time.Microsecond},
		{RightRef, 200 * time.Microsecond},
		{Nearest, 100 * time.Microsecond},
	}
	for _, c := range cases {
		r := newRx(t, ReceiverConfig{Estimator: c.est})
		r.Observe(refPkt(1, 1, at(0)), at(100))
		r.Observe(regPkt(10, testKey, at(100)), at(130))
		r.Observe(refPkt(1, 2, at(0)), at(200))
		got := time.Duration(mustFlow(t, r, testKey).Est.Mean())
		if got != c.want {
			t.Errorf("%v: estimate = %v, want %v", c.est, got, c.want)
		}
	}
}

func TestNearestPicksRight(t *testing.T) {
	r := newRx(t, ReceiverConfig{Estimator: Nearest})
	r.Observe(refPkt(1, 1, at(0)), at(100))
	r.Observe(regPkt(10, testKey, at(100)), at(180)) // closer to right (200)
	r.Observe(refPkt(1, 2, at(0)), at(200))
	if got := time.Duration(mustFlow(t, r, testKey).Est.Mean()); got != 200*time.Microsecond {
		t.Fatalf("estimate = %v, want right ref 200µs", got)
	}
}

func TestRightAndNearestWorkBeforeFirstLeftRef(t *testing.T) {
	for _, est := range []Estimator{RightRef, Nearest} {
		r := newRx(t, ReceiverConfig{Estimator: est})
		r.Observe(regPkt(1, testKey, at(0)), at(50))
		r.Observe(refPkt(1, 1, at(0)), at(100))
		if got := r.Counters().Estimated; got != 1 {
			t.Fatalf("%v: estimated = %d, want 1", est, got)
		}
		if got := time.Duration(mustFlow(t, r, testKey).Est.Mean()); got != 100*time.Microsecond {
			t.Fatalf("%v: estimate = %v, want 100µs", est, got)
		}
	}
}

func TestStreamsIsolatedBySender(t *testing.T) {
	// Two senders, a demux that routes by source prefix: stream state must
	// not bleed between them.
	d := NewPrefixDemux().
		Add(packet.MustParsePrefix("10.1.0.0/16"), 1).
		Add(packet.MustParsePrefix("10.9.0.0/16"), 2)
	r := newRx(t, ReceiverConfig{Demux: d})

	otherKey := testKey
	otherKey.Src = packet.MustParseAddr("10.9.0.1")

	// Sender 1's refs have small delays; sender 2's huge.
	r.Observe(refPkt(1, 1, at(0)), at(100))  // delay 100µs
	r.Observe(refPkt(2, 1, at(0)), at(1000)) // delay 1000µs
	r.Observe(regPkt(10, testKey, at(0)), at(1100))
	r.Observe(regPkt(11, otherKey, at(0)), at(1100))
	r.Observe(refPkt(1, 2, at(1100)), at(1200)) // delay 100µs
	r.Observe(refPkt(2, 2, at(300)), at(1300))  // delay 1000µs

	got1 := time.Duration(mustFlow(t, r, testKey).Est.Mean())
	got2 := time.Duration(mustFlow(t, r, otherKey).Est.Mean())
	if got1 != 100*time.Microsecond {
		t.Fatalf("sender-1 flow = %v, want 100µs", got1)
	}
	if got2 != 1000*time.Microsecond {
		t.Fatalf("sender-2 flow = %v, want 1000µs", got2)
	}
	if r.Streams() != 2 {
		t.Fatalf("streams = %d", r.Streams())
	}
}

func TestUnattributedCounted(t *testing.T) {
	d := NewPrefixDemux().Add(packet.MustParsePrefix("10.1.0.0/16"), 1)
	r := newRx(t, ReceiverConfig{Demux: d})
	alien := testKey
	alien.Src = packet.MustParseAddr("192.168.0.1")
	r.Observe(regPkt(1, alien, at(0)), at(10))
	if got := r.Counters().Unattributed; got != 1 {
		t.Fatalf("Unattributed = %d", got)
	}
}

func TestAcceptFilter(t *testing.T) {
	r := newRx(t, ReceiverConfig{
		Accept: func(p *packet.Packet) bool { return p.Kind == packet.Regular },
	})
	cross := regPkt(1, testKey, at(0))
	cross.Kind = packet.Cross
	r.Observe(cross, at(10))
	if got := r.Counters().Filtered; got != 1 {
		t.Fatalf("Filtered = %d", got)
	}
	if got := r.Counters().RegularSeen; got != 0 {
		t.Fatalf("RegularSeen = %d", got)
	}
}

func TestAcceptRefFilter(t *testing.T) {
	myAddr := packet.MustParseAddr("10.3.0.1")
	r := newRx(t, ReceiverConfig{
		AcceptRef: func(p *packet.Packet) bool { return p.Key.Dst == myAddr },
	})
	foreign := refPkt(1, 1, at(0))
	foreign.Key.Dst = packet.MustParseAddr("10.4.0.1")
	r.Observe(foreign, at(100))
	if got := r.Counters(); got.RefsForeign != 1 || got.RefsSeen != 0 {
		t.Fatalf("counters = %+v", got)
	}
	mine := refPkt(1, 2, at(0))
	mine.Key.Dst = myAddr
	r.Observe(mine, at(100))
	if got := r.Counters().RefsSeen; got != 1 {
		t.Fatalf("RefsSeen = %d", got)
	}
}

func TestInterpolationBufferEviction(t *testing.T) {
	r := newRx(t, ReceiverConfig{MaxPending: 4})
	r.Observe(refPkt(1, 1, at(0)), at(100))
	for i := 0; i < 10; i++ {
		k := testKey
		k.SrcPort = uint16(3000 + i)
		r.Observe(regPkt(uint64(i), k, at(100)), at(110+i))
	}
	if got := r.Counters().Evicted; got != 6 {
		t.Fatalf("Evicted = %d, want 6", got)
	}
	r.Observe(refPkt(1, 2, at(100)), at(200))
	if got := r.Counters().Estimated; got != 4 {
		t.Fatalf("Estimated = %d, want the 4 freshest", got)
	}
	// The freshest (highest ports) survived.
	k := testKey
	k.SrcPort = 3009
	if _, ok := r.Flow(k); !ok {
		t.Fatal("freshest packet was evicted; eviction should drop oldest")
	}
}

func TestClockOffsetShiftsDelays(t *testing.T) {
	// Receiver clock 50µs ahead: every reference delay inflates by 50µs,
	// and so do the estimates.
	r := newRx(t, ReceiverConfig{Clock: simclock.FixedOffset{Offset: 50 * time.Microsecond}})
	r.Observe(refPkt(1, 1, at(0)), at(100))
	r.Observe(regPkt(1, testKey, at(100)), at(150))
	r.Observe(refPkt(1, 2, at(100)), at(200))
	got := time.Duration(mustFlow(t, r, testKey).Est.Mean())
	// True delays are 100µs at both refs -> estimate would be 100µs with
	// perfect clocks; offset adds 50µs.
	if got != 150*time.Microsecond {
		t.Fatalf("estimate = %v, want 150µs with +50µs offset", got)
	}
	// Ground truth is unaffected (simulator truth, not clock-derived).
	if tr := time.Duration(mustFlow(t, r, testKey).True.Mean()); tr != 50*time.Microsecond {
		t.Fatalf("truth = %v, want 50µs", tr)
	}
}

func TestResultsAndSummary(t *testing.T) {
	r := newRx(t, ReceiverConfig{})
	r.Observe(refPkt(1, 1, at(0)), at(100))
	for i := 0; i < 5; i++ {
		r.Observe(regPkt(uint64(i), testKey, at(100+10*i)), at(120+10*i))
	}
	r.Observe(refPkt(1, 2, at(100)), at(200))

	res := r.Results(1)
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	fr := res[0]
	if fr.N != 5 || fr.Key != testKey {
		t.Fatalf("result = %+v", fr)
	}
	if fr.RelErrMean < 0 || math.IsNaN(fr.RelErrMean) {
		t.Fatalf("RelErrMean = %v", fr.RelErrMean)
	}
	if got := r.Results(6); len(got) != 0 {
		t.Fatal("minPackets filter ignored")
	}
	sum := Summarize(res)
	if sum.Flows != 1 || sum.Estimates != 5 {
		t.Fatalf("summary = %+v", sum)
	}
	if Summarize(nil).Flows != 0 {
		t.Fatal("empty summary")
	}
	if FormatResults(res, 10) == "" || sum.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestResultsDeterministicOrder(t *testing.T) {
	r := newRx(t, ReceiverConfig{})
	r.Observe(refPkt(1, 1, at(0)), at(100))
	for i := 0; i < 20; i++ {
		k := testKey
		k.SrcPort = uint16(5000 - i*7)
		r.Observe(regPkt(uint64(i), k, at(100)), at(110+i))
	}
	r.Observe(refPkt(1, 2, at(100)), at(200))
	a, b := r.Results(1), r.Results(1)
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatal("Results order nondeterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if !a[i-1].Key.Less(a[i].Key) {
			t.Fatal("Results not sorted")
		}
	}
}

func TestCDFBuilders(t *testing.T) {
	results := []FlowResult{
		{N: 5, RelErrMean: 0.1, RelErrStd: 0.2, TrueStd: time.Microsecond},
		{N: 1, RelErrMean: 0.3, RelErrStd: 0.0, TrueStd: 0},
		{N: 9, RelErrMean: 0.05, RelErrStd: 0.5, TrueStd: time.Microsecond},
	}
	if got := MeanErrCDF(results).N(); got != 3 {
		t.Fatalf("MeanErrCDF N = %d", got)
	}
	// Std CDF excludes single-packet flows and zero true std.
	if got := StdErrCDF(results).N(); got != 2 {
		t.Fatalf("StdErrCDF N = %d, want 2", got)
	}
}

func TestReceiverValidation(t *testing.T) {
	if _, err := NewReceiver(ReceiverConfig{}); err == nil {
		t.Fatal("nil demux should fail")
	}
	if _, err := NewReceiver(ReceiverConfig{Demux: SingleDemux{}, Estimator: Estimator(99)}); err == nil {
		t.Fatal("unknown estimator should fail")
	}
}

func TestEstimatorString(t *testing.T) {
	for _, e := range []Estimator{Linear, LeftRef, RightRef, Nearest, Estimator(42)} {
		if e.String() == "" {
			t.Fatal("empty estimator name")
		}
	}
}

// TestOnEstimateHook pins the export hook: every produced estimate is
// surfaced exactly once, with the same values folded into the accumulators,
// and a nil hook changes nothing.
func TestOnEstimateHook(t *testing.T) {
	type sample struct {
		key        packet.FlowKey
		est, truth time.Duration
	}
	var exported []sample
	r := newRx(t, ReceiverConfig{
		OnEstimate: func(key packet.FlowKey, est, truth time.Duration) {
			exported = append(exported, sample{key, est, truth})
		},
	})
	r.Observe(refPkt(1, 1, at(0)), at(100))
	r.Observe(regPkt(10, testKey, at(100)), at(150))
	r.Observe(regPkt(11, testKey, at(120)), at(180))
	r.Observe(refPkt(1, 2, at(60)), at(200))

	if got, want := uint64(len(exported)), r.Counters().Estimated; got != want {
		t.Fatalf("hook fired %d times, receiver estimated %d", got, want)
	}
	acc, ok := r.Flow(testKey)
	if !ok {
		t.Fatal("flow missing")
	}
	var estSum, truthSum float64
	for _, s := range exported {
		if s.key != testKey {
			t.Fatalf("hook saw key %v, want %v", s.key, testKey)
		}
		estSum += float64(s.est)
		truthSum += float64(s.truth)
	}
	if got := acc.Est.Mean() * float64(acc.Est.N()); math.Abs(got-estSum) > 1e-6*math.Abs(got) {
		t.Fatalf("exported estimate sum %v != accumulator sum %v", estSum, got)
	}
	if got := acc.True.Mean() * float64(acc.True.N()); math.Abs(got-truthSum) > 1e-6*math.Abs(got) {
		t.Fatalf("exported truth sum %v != accumulator sum %v", truthSum, got)
	}
}
