package core

import (
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/eventsim"
	"github.com/netmeasure/rlir/internal/netsim"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// senderRig is a one-switch network with a sender attached to its only
// egress port and a sink counting what arrives.
type senderRig struct {
	eng    *eventsim.Engine
	nw     *netsim.Network
	src    *netsim.Node
	sink   *netsim.Node
	sender *Sender
	seen   []*packet.Packet
}

func newSenderRig(t *testing.T, cfg SenderConfig) *senderRig {
	t.Helper()
	rig := &senderRig{eng: eventsim.New()}
	rig.nw = netsim.New(rig.eng)
	rig.src = rig.nw.AddNode(netsim.NodeConfig{Name: "sw"})
	rig.sink = rig.nw.AddNode(netsim.NodeConfig{Name: "sink"})
	rig.nw.Connect(rig.src, rig.sink, netsim.LinkConfig{RateBps: 1e9})
	rig.src.SetForward(func(n *netsim.Node, p *packet.Packet) int { return 0 })
	rig.sink.OnDeliver(func(p *packet.Packet, _ simtime.Time) { rig.seen = append(rig.seen, p) })
	var err error
	rig.sender, err = AttachSender(rig.src.Port(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rig
}

func (rig *senderRig) injectRegulars(n int, gap time.Duration) {
	for i := 0; i < n; i++ {
		p := &packet.Packet{
			ID: rig.nw.NewPacketID(), Kind: packet.Regular, Size: 1000,
			Key: packet.FlowKey{Src: packet.MustParseAddr("10.1.0.1"), SrcPort: uint16(i + 1)},
		}
		rig.nw.Inject(rig.src, p, simtime.Time(int64(i)*int64(gap)))
	}
}

func basicCfg() SenderConfig {
	return SenderConfig{
		ID:        1,
		Addr:      packet.MustParseAddr("10.1.0.250"),
		Receivers: []packet.Addr{packet.MustParseAddr("10.9.0.1")},
		Scheme:    Static{N: 10},
	}
}

func TestStaticInjectionRatio(t *testing.T) {
	rig := newSenderRig(t, basicCfg())
	rig.injectRegulars(100, 20*time.Microsecond)
	rig.eng.Run()

	var refs, regs int
	for _, p := range rig.seen {
		switch p.Kind {
		case packet.Reference:
			refs++
		case packet.Regular:
			regs++
		}
	}
	if regs != 100 {
		t.Fatalf("regulars delivered = %d", regs)
	}
	if refs != 10 {
		t.Fatalf("references = %d, want 10 (1-and-10 over 100 packets)", refs)
	}
	c := rig.sender.Counters()
	if c.Counted != 100 || c.Injected != 10 || c.Events != 10 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestReferenceTimestampIsTransmitStart(t *testing.T) {
	rig := newSenderRig(t, basicCfg())
	rig.injectRegulars(10, 50*time.Microsecond)
	rig.eng.Run()

	for _, p := range rig.seen {
		if p.Kind != packet.Reference {
			continue
		}
		// 64B at 1Gbps = 512ns wire time; delivery = timestamp + txtime.
		// The sink saw it at SegmentStart + 512ns.
		if p.Ref.Timestamp == 0 {
			t.Fatal("reference not timestamped")
		}
		if p.SegmentStart != p.Ref.Timestamp {
			t.Fatalf("segment start %v != timestamp %v (perfect clock)", p.SegmentStart, p.Ref.Timestamp)
		}
	}
}

func TestReferencePacketFields(t *testing.T) {
	cfg := basicCfg()
	cfg.RefSize = 128
	rig := newSenderRig(t, cfg)
	rig.injectRegulars(20, 20*time.Microsecond)
	rig.eng.Run()

	var seqs []uint32
	for _, p := range rig.seen {
		if p.Kind != packet.Reference {
			continue
		}
		if p.Size != 128 {
			t.Fatalf("ref size = %d", p.Size)
		}
		if p.Key.Src != cfg.Addr || p.Key.Dst != cfg.Receivers[0] {
			t.Fatalf("ref key = %v", p.Key)
		}
		if p.Key.SrcPort != RLIPort || p.Key.DstPort != RLIPort || p.Key.Proto != packet.ProtoUDP {
			t.Fatalf("ref ports = %v", p.Key)
		}
		if p.Ref.Sender != 1 {
			t.Fatalf("ref sender = %d", p.Ref.Sender)
		}
		seqs = append(seqs, p.Ref.Seq)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("sequence gap: %v", seqs)
		}
	}
}

func TestFanOutToMultipleReceivers(t *testing.T) {
	cfg := basicCfg()
	cfg.Receivers = []packet.Addr{
		packet.MustParseAddr("10.9.0.1"),
		packet.MustParseAddr("10.9.0.2"),
		packet.MustParseAddr("10.9.0.3"),
	}
	rig := newSenderRig(t, cfg)
	rig.injectRegulars(10, 20*time.Microsecond)
	rig.eng.Run()

	byDst := map[packet.Addr]int{}
	for _, p := range rig.seen {
		if p.Kind == packet.Reference {
			byDst[p.Key.Dst]++
		}
	}
	if len(byDst) != 3 {
		t.Fatalf("fan-out reached %d receivers", len(byDst))
	}
	for dst, n := range byDst {
		if n != 1 {
			t.Fatalf("receiver %v got %d refs, want 1", dst, n)
		}
	}
	if got := rig.sender.Counters().Injected; got != 3 {
		t.Fatalf("Injected = %d", got)
	}
}

func TestAdaptiveFollowsUtilization(t *testing.T) {
	cfg := basicCfg()
	cfg.Scheme = DefaultAdaptive()
	util := FixedUtilization(0.22)
	cfg.Util = &util
	rig := newSenderRig(t, cfg)
	if got := rig.sender.CurrentGap(); got != 10 {
		t.Fatalf("gap at 22%% = %d, want 10", got)
	}
	util = 0.95
	if got := rig.sender.CurrentGap(); got != 300 {
		t.Fatalf("gap at 95%% = %d, want 300", got)
	}
}

func TestNilUtilMeansAggressive(t *testing.T) {
	cfg := basicCfg()
	cfg.Scheme = DefaultAdaptive()
	rig := newSenderRig(t, cfg)
	if got := rig.sender.CurrentGap(); got != 10 {
		t.Fatalf("gap with nil util = %d, want MinGap", got)
	}
}

func TestReferencesDoNotTriggerReferences(t *testing.T) {
	// With gap 1, every regular packet triggers a ref; the refs themselves
	// must not count, or injection would cascade to infinity.
	cfg := basicCfg()
	cfg.Scheme = Static{N: 1}
	rig := newSenderRig(t, cfg)
	rig.injectRegulars(5, 100*time.Microsecond)
	rig.eng.Run()

	var refs int
	for _, p := range rig.seen {
		if p.Kind == packet.Reference {
			refs++
		}
	}
	if refs != 5 {
		t.Fatalf("refs = %d, want exactly 5", refs)
	}
}

func TestForeignReferencesTransitUncounted(t *testing.T) {
	rig := newSenderRig(t, basicCfg())
	foreign := &packet.Packet{
		ID: 999, Kind: packet.Reference, Size: 64,
		Ref: packet.RefPayload{Sender: 42, Seq: 1, Timestamp: 12345},
	}
	rig.nw.Inject(rig.src, foreign, simtime.Zero)
	rig.eng.Run()
	if got := rig.sender.Counters().Counted; got != 0 {
		t.Fatalf("foreign ref advanced counter: %d", got)
	}
	if foreign.Ref.Timestamp != 12345 {
		t.Fatal("foreign ref restamped")
	}
}

func TestCountKindsFilter(t *testing.T) {
	cfg := basicCfg()
	cfg.Scheme = Static{N: 5}
	cfg.CountKinds = []packet.Kind{packet.Regular}
	rig := newSenderRig(t, cfg)
	// Interleave cross packets: they transit but do not advance the gap.
	for i := 0; i < 10; i++ {
		reg := &packet.Packet{ID: uint64(1000 + i), Kind: packet.Regular, Size: 500}
		cross := &packet.Packet{ID: uint64(2000 + i), Kind: packet.Cross, Size: 500}
		at := simtime.Time(int64(i) * int64(40*time.Microsecond))
		rig.nw.Inject(rig.src, reg, at)
		rig.nw.Inject(rig.src, cross, at.Add(10*time.Microsecond))
	}
	rig.eng.Run()
	c := rig.sender.Counters()
	if c.Counted != 10 {
		t.Fatalf("Counted = %d, want 10 regulars only", c.Counted)
	}
	if c.Events != 2 {
		t.Fatalf("Events = %d, want 2 (10 regulars / gap 5)", c.Events)
	}
}

func TestSenderValidation(t *testing.T) {
	rig := newSenderRig(t, basicCfg()) // consume the valid config
	_ = rig
	eng := eventsim.New()
	nw := netsim.New(eng)
	a := nw.AddNode(netsim.NodeConfig{})
	b := nw.AddNode(netsim.NodeConfig{})
	nw.Connect(a, b, netsim.LinkConfig{RateBps: 1e9})
	port := a.Port(0)

	cases := []SenderConfig{
		{},                      // no scheme
		{Scheme: Static{N: 10}}, // no receivers
		{Scheme: Static{N: 10}, Receivers: []packet.Addr{1}, RefSize: 20},   // tiny frame
		{Scheme: Static{N: 10}, Receivers: []packet.Addr{1}, RefSize: 9999}, // oversize
		{Scheme: Static{N: 10}, Receivers: []packet.Addr{1}, CountKinds: []packet.Kind{packet.Reference}},
	}
	for i, cfg := range cases {
		if _, err := AttachSender(port, cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSenderGroundTruthStamping(t *testing.T) {
	rig := newSenderRig(t, basicCfg())
	// Inject strictly after t=0 so an unset (zero) stamp is unambiguous.
	for i := 0; i < 3; i++ {
		p := &packet.Packet{ID: rig.nw.NewPacketID(), Kind: packet.Regular, Size: 1000}
		rig.nw.Inject(rig.src, p, simtime.FromDuration(time.Duration(i+1)*50*time.Microsecond))
	}
	rig.eng.Run()
	if len(rig.seen) != 3 {
		t.Fatalf("delivered %d", len(rig.seen))
	}
	for _, p := range rig.seen {
		if p.Kind == packet.Regular && p.SegmentStart == 0 {
			t.Fatalf("regular packet %d not stamped", p.ID)
		}
	}
}
