// Package core implements the paper's contribution: Reference Latency
// Interpolation (RLI, SIGCOMM 2010) and its partial-deployment extension
// across routers (RLIR).
//
// An RLI Sender attaches to a switch egress port, counts the regular packets
// leaving it and periodically injects reference packets carrying a hardware
// transmit timestamp. An RLI Receiver attaches downstream, recovers each
// reference packet's one-way delay from its own synchronized clock, and
// linearly interpolates between consecutive reference delays to estimate the
// latency of every regular packet that arrived between them — exploiting
// delay locality. Per-flow aggregation of those estimates yields flow-level
// latency statistics.
//
// RLIR adds what partial deployment requires (§3): senders fan reference
// streams to every receiver their traffic can reach, and receivers
// demultiplex regular packets onto the right reference stream by source
// prefix (upstream), ToS marks or reverse ECMP computation (downstream).
package core

import (
	"fmt"
	"math"
)

// InjectionScheme decides how many regular packets pass between consecutive
// reference packets ("1-and-n", §3.2): after every Gap(utilization) regular
// packets, one reference packet is injected.
type InjectionScheme interface {
	// Gap returns n >= 1 given the sender's current estimated utilization
	// of its own link in [0, 1].
	Gap(utilization float64) int
	Name() string
}

// Static is the paper's worst-case-utilization scheme: a fixed 1-and-N
// injection regardless of observed load. The paper uses 1-and-100, chosen
// for "the lowest possible rate required for reasonable accuracy" at the
// worst-case bottleneck utilization.
type Static struct {
	N int
}

// DefaultStatic returns the paper's 1-and-100 configuration.
func DefaultStatic() Static { return Static{N: 100} }

// Gap implements InjectionScheme.
func (s Static) Gap(float64) int {
	if s.N < 1 {
		panic(fmt.Sprintf("core: static scheme with N=%d", s.N))
	}
	return s.N
}

// Name implements InjectionScheme.
func (s Static) Name() string { return fmt.Sprintf("static(1-and-%d)", s.N) }

// Adaptive is RLI's utilization-driven scheme: the injection rate is a
// decreasing function of the sender's own link utilization, varying between
// 1-and-MinGap (lots of headroom) and 1-and-MaxGap (congested). The paper
// configures 1-and-10 .. 1-and-300 and observes that a 22%-utilized sender
// link pins it at 1-and-10 — precisely the cross-traffic blindness RLIR
// must tolerate.
type Adaptive struct {
	// MinGap applies at or below LowUtil (most aggressive injection).
	MinGap int
	// MaxGap applies at or above HighUtil (most conservative).
	MaxGap int
	// LowUtil and HighUtil bound the adaptation band.
	LowUtil  float64
	HighUtil float64
}

// DefaultAdaptive returns the paper's configuration: gaps in [10, 300],
// adapting between 50% and 95% utilization.
func DefaultAdaptive() Adaptive {
	return Adaptive{MinGap: 10, MaxGap: 300, LowUtil: 0.5, HighUtil: 0.95}
}

// Validate checks the parameters.
func (a Adaptive) Validate() error {
	if a.MinGap < 1 || a.MaxGap < a.MinGap {
		return fmt.Errorf("core: adaptive gaps [%d,%d] invalid", a.MinGap, a.MaxGap)
	}
	if !(a.LowUtil >= 0 && a.LowUtil < a.HighUtil && a.HighUtil <= 1) {
		return fmt.Errorf("core: adaptive band [%v,%v] invalid", a.LowUtil, a.HighUtil)
	}
	return nil
}

// Gap implements InjectionScheme: geometric interpolation of the gap
// between MinGap and MaxGap across the adaptation band, so each increment
// of utilization multiplies the gap by a constant factor (injection rate is
// a smoothly decreasing function of utilization, as in [11]).
func (a Adaptive) Gap(u float64) int {
	if err := a.Validate(); err != nil {
		panic(err)
	}
	switch {
	case u <= a.LowUtil:
		return a.MinGap
	case u >= a.HighUtil:
		return a.MaxGap
	}
	frac := (u - a.LowUtil) / (a.HighUtil - a.LowUtil)
	g := float64(a.MinGap) * math.Pow(float64(a.MaxGap)/float64(a.MinGap), frac)
	n := int(math.Round(g))
	if n < a.MinGap {
		n = a.MinGap
	}
	if n > a.MaxGap {
		n = a.MaxGap
	}
	return n
}

// Name implements InjectionScheme.
func (a Adaptive) Name() string {
	return fmt.Sprintf("adaptive(1-and-%d..%d)", a.MinGap, a.MaxGap)
}
