package core

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Segment pairs a name ("T1->C1") with the receiver measuring it. RLIR's
// value proposition is that a path's segments are measured independently,
// so a latency anomaly is localized to the segment whose distribution
// shifted (§1: partial deployment costs only "an increase in the
// localization granularity").
type Segment struct {
	Name     string
	Receiver *Receiver
}

// SegmentReport is one segment's aggregate latency view.
type SegmentReport struct {
	Name    string
	Packets uint64
	Mean    time.Duration
	P50     time.Duration
	P99     time.Duration
	Max     time.Duration
}

// Report summarizes a segment from its receiver's aggregate histogram.
func (s Segment) Report() SegmentReport {
	h := s.Receiver.AggregateHistogram()
	return SegmentReport{
		Name:    s.Name,
		Packets: h.Count(),
		Mean:    h.Mean(),
		P50:     h.Quantile(0.5),
		P99:     h.Quantile(0.99),
		Max:     h.Max(),
	}
}

// Anomaly is a flagged segment.
type Anomaly struct {
	Segment  string
	Mean     time.Duration
	Baseline time.Duration
	Ratio    float64
}

func (a Anomaly) String() string {
	return fmt.Sprintf("%s: mean %v vs baseline %v (%.1fx)", a.Segment, a.Mean, a.Baseline, a.Ratio)
}

// Localizer flags segments whose mean latency exceeds Threshold times their
// recorded baseline. Baselines come from a calibration run (or operator
// knowledge); segments without a baseline are compared against the median
// of all observed segment means.
type Localizer struct {
	// Threshold is the ratio above which a segment is anomalous (e.g. 3.0).
	Threshold float64
	// Baseline maps segment name to its healthy mean latency.
	Baseline map[string]time.Duration
}

// NewLocalizer builds a localizer with the given threshold.
func NewLocalizer(threshold float64) *Localizer {
	if threshold <= 1 {
		panic(fmt.Sprintf("core: localizer threshold %v must exceed 1", threshold))
	}
	return &Localizer{Threshold: threshold, Baseline: make(map[string]time.Duration)}
}

// SetBaseline records a segment's healthy mean.
func (l *Localizer) SetBaseline(segment string, mean time.Duration) {
	l.Baseline[segment] = mean
}

// CalibrateFrom records every segment's current mean as its baseline.
func (l *Localizer) CalibrateFrom(segments []Segment) {
	for _, s := range segments {
		l.SetBaseline(s.Name, s.Report().Mean)
	}
}

// Examine reports anomalous segments, most inflated first.
func (l *Localizer) Examine(segments []Segment) []Anomaly {
	reports := make([]SegmentReport, len(segments))
	for i, s := range segments {
		reports[i] = s.Report()
	}
	fallback := medianMean(reports)
	var out []Anomaly
	for _, rep := range reports {
		base, ok := l.Baseline[rep.Name]
		if !ok {
			base = fallback
		}
		if base <= 0 {
			continue
		}
		ratio := float64(rep.Mean) / float64(base)
		if ratio >= l.Threshold {
			out = append(out, Anomaly{Segment: rep.Name, Mean: rep.Mean, Baseline: base, Ratio: ratio})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ratio > out[j].Ratio })
	return out
}

func medianMean(reports []SegmentReport) time.Duration {
	if len(reports) == 0 {
		return 0
	}
	ms := make([]time.Duration, len(reports))
	for i, r := range reports {
		ms[i] = r.Mean
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	return ms[len(ms)/2]
}

// FormatSegments renders segment reports as a table.
func FormatSegments(segments []Segment) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %12s %12s %12s\n", "segment", "packets", "mean", "p50", "p99")
	for _, s := range segments {
		r := s.Report()
		fmt.Fprintf(&b, "%-16s %10d %12v %12v %12v\n", r.Name, r.Packets, r.Mean, r.P50, r.P99)
	}
	return b.String()
}
