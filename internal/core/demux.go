package core

import (
	"fmt"

	"github.com/netmeasure/rlir/internal/lpm"
	"github.com/netmeasure/rlir/internal/netsim"
	"github.com/netmeasure/rlir/internal/packet"
)

// Demux attributes a regular packet to the RLI sender whose reference
// stream traversed the same path — the heart of RLIR's traffic
// multiplexing solution (§3.1). Implementations must be deterministic.
type Demux interface {
	Classify(p *packet.Packet) (SenderID, bool)
	Name() string
}

// SingleDemux attributes everything to one sender: correct for a tandem
// segment with a single upstream sender, and the deliberately wrong
// baseline in multiplexed topologies (the paper: "otherwise per-flow
// latency estimates at the receivers can be totally wrong").
type SingleDemux struct {
	ID SenderID
}

// Classify implements Demux.
func (d SingleDemux) Classify(*packet.Packet) (SenderID, bool) { return d.ID, true }

// Name implements Demux.
func (d SingleDemux) Name() string { return fmt.Sprintf("single(%d)", d.ID) }

// PrefixDemux classifies by longest-prefix match on the packet's source
// address: the paper's upstream solution ("the origin of regular packets
// can be easily identified by IP address block assigned for hosts in each
// ToR switch. Thus, upstream RLI receivers need to perform simple IP prefix
// matching").
type PrefixDemux struct {
	table *lpm.Table[SenderID]
}

// NewPrefixDemux builds an empty prefix demultiplexer.
func NewPrefixDemux() *PrefixDemux {
	return &PrefixDemux{table: lpm.New[SenderID]()}
}

// Add maps a source prefix to a sender.
func (d *PrefixDemux) Add(p packet.Prefix, id SenderID) *PrefixDemux {
	d.table.Insert(p, id)
	return d
}

// Classify implements Demux.
func (d *PrefixDemux) Classify(p *packet.Packet) (SenderID, bool) {
	return d.table.Lookup(p.Key.Src)
}

// Name implements Demux.
func (d *PrefixDemux) Name() string { return fmt.Sprintf("prefix(%d)", d.table.Len()) }

// MarkDemux classifies by the ToS byte stamped by intermediate routers: the
// paper's packet-marking downstream option ("the type-of-service (ToS)
// field in the IP header could be used to mark packets", §3.1, citing IP
// traceback [13]).
type MarkDemux struct {
	bySenderMark map[uint8]SenderID
}

// NewMarkDemux builds an empty mark demultiplexer.
func NewMarkDemux() *MarkDemux {
	return &MarkDemux{bySenderMark: make(map[uint8]SenderID)}
}

// Add maps a ToS mark to a sender.
func (d *MarkDemux) Add(mark uint8, id SenderID) *MarkDemux {
	d.bySenderMark[mark] = id
	return d
}

// Classify implements Demux.
func (d *MarkDemux) Classify(p *packet.Packet) (SenderID, bool) {
	id, ok := d.bySenderMark[p.TOS]
	return id, ok
}

// Name implements Demux.
func (d *MarkDemux) Name() string { return fmt.Sprintf("mark(%d)", len(d.bySenderMark)) }

// FuncDemux adapts an arbitrary resolution function; the reverse-ECMP demux
// is built from topo.FatTree.ResolveCore with this adapter.
type FuncDemux struct {
	F     func(*packet.Packet) (SenderID, bool)
	Label string
}

// Classify implements Demux.
func (d FuncDemux) Classify(p *packet.Packet) (SenderID, bool) { return d.F(p) }

// Name implements Demux.
func (d FuncDemux) Name() string {
	if d.Label == "" {
		return "func"
	}
	return d.Label
}

// OracleDemux classifies using the simulator's ground-truth path trace: the
// upper bound any real demux strategy can reach. It is a validation tool,
// clearly not implementable in a deployment.
type OracleDemux struct {
	byNode map[netsim.NodeID]SenderID
}

// NewOracleDemux builds an empty oracle.
func NewOracleDemux() *OracleDemux {
	return &OracleDemux{byNode: make(map[netsim.NodeID]SenderID)}
}

// Add maps "the packet traversed node" to a sender.
func (d *OracleDemux) Add(node netsim.NodeID, id SenderID) *OracleDemux {
	d.byNode[node] = id
	return d
}

// Classify implements Demux.
func (d *OracleDemux) Classify(p *packet.Packet) (SenderID, bool) {
	for _, hop := range p.Hops {
		if id, ok := d.byNode[netsim.NodeID(hop)]; ok {
			return id, true
		}
	}
	return 0, false
}

// Name implements Demux.
func (d *OracleDemux) Name() string { return fmt.Sprintf("oracle(%d)", len(d.byNode)) }

// CompositeDemux tries a sequence of demultiplexers in order — e.g. prefix
// matching for upstream senders first, then reverse ECMP for downstream
// ones, mirroring §3.1's combined downstream procedure.
type CompositeDemux struct {
	chain []Demux
}

// NewCompositeDemux chains the given demultiplexers.
func NewCompositeDemux(chain ...Demux) *CompositeDemux {
	return &CompositeDemux{chain: chain}
}

// Classify implements Demux: first hit wins.
func (d *CompositeDemux) Classify(p *packet.Packet) (SenderID, bool) {
	for _, c := range d.chain {
		if id, ok := c.Classify(p); ok {
			return id, true
		}
	}
	return 0, false
}

// Name implements Demux.
func (d *CompositeDemux) Name() string {
	s := "composite("
	for i, c := range d.chain {
		if i > 0 {
			s += ","
		}
		s += c.Name()
	}
	return s + ")"
}
