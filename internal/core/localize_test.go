package core

import (
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/simtime"
)

// rxWithDelays builds a receiver whose aggregate histogram holds the given
// per-packet estimates, by replaying a synthetic window.
func rxWithDelays(t *testing.T, delays []time.Duration) *Receiver {
	t.Helper()
	r := newRx(t, ReceiverConfig{Estimator: Nearest})
	base := simtime.FromSeconds(1)
	for i, d := range delays {
		k := testKey
		k.SrcPort = uint16(i + 1)
		r.Observe(regPkt(uint64(i), k, base), base.Add(time.Duration(i)))
		// Close each packet with its own reference at exactly delay d: the
		// nearest estimator copies the reference delay.
		ref := refPkt(1, uint32(i+1), base)
		r.Observe(ref, base.Add(d))
		base = base.Add(time.Millisecond)
	}
	return r
}

func TestSegmentReport(t *testing.T) {
	r := rxWithDelays(t, []time.Duration{
		10 * time.Microsecond, 20 * time.Microsecond, 30 * time.Microsecond,
	})
	seg := Segment{Name: "T1->C1", Receiver: r}
	rep := seg.Report()
	if rep.Packets != 3 {
		t.Fatalf("packets = %d", rep.Packets)
	}
	if rep.Mean != 20*time.Microsecond {
		t.Fatalf("mean = %v", rep.Mean)
	}
	if rep.Name != "T1->C1" {
		t.Fatalf("name = %q", rep.Name)
	}
}

func TestLocalizerFlagsInflatedSegment(t *testing.T) {
	healthy1 := rxWithDelays(t, []time.Duration{10 * time.Microsecond, 12 * time.Microsecond})
	healthy2 := rxWithDelays(t, []time.Duration{11 * time.Microsecond, 13 * time.Microsecond})
	sick := rxWithDelays(t, []time.Duration{900 * time.Microsecond, 1100 * time.Microsecond})

	segs := []Segment{
		{Name: "T1->C1", Receiver: healthy1},
		{Name: "C1->T7", Receiver: sick},
		{Name: "T1->C2", Receiver: healthy2},
	}
	l := NewLocalizer(3)
	l.SetBaseline("T1->C1", 11*time.Microsecond)
	l.SetBaseline("C1->T7", 11*time.Microsecond)
	l.SetBaseline("T1->C2", 11*time.Microsecond)

	anomalies := l.Examine(segs)
	if len(anomalies) != 1 {
		t.Fatalf("anomalies = %v", anomalies)
	}
	if anomalies[0].Segment != "C1->T7" {
		t.Fatalf("flagged %q", anomalies[0].Segment)
	}
	if anomalies[0].Ratio < 50 {
		t.Fatalf("ratio = %v, expected huge", anomalies[0].Ratio)
	}
	if anomalies[0].String() == "" {
		t.Fatal("empty anomaly string")
	}
}

func TestLocalizerFallbackBaseline(t *testing.T) {
	// Without baselines, segments are compared to the median segment mean:
	// with two healthy and one sick segment, only the sick one is flagged.
	segs := []Segment{
		{Name: "a", Receiver: rxWithDelays(t, []time.Duration{10 * time.Microsecond})},
		{Name: "b", Receiver: rxWithDelays(t, []time.Duration{12 * time.Microsecond})},
		{Name: "c", Receiver: rxWithDelays(t, []time.Duration{500 * time.Microsecond})},
	}
	anomalies := NewLocalizer(5).Examine(segs)
	if len(anomalies) != 1 || anomalies[0].Segment != "c" {
		t.Fatalf("anomalies = %v", anomalies)
	}
}

func TestLocalizerCalibrateFrom(t *testing.T) {
	segs := []Segment{
		{Name: "a", Receiver: rxWithDelays(t, []time.Duration{10 * time.Microsecond})},
	}
	l := NewLocalizer(2)
	l.CalibrateFrom(segs)
	if len(l.Examine(segs)) != 0 {
		t.Fatal("freshly calibrated segments should not be anomalous")
	}
}

func TestLocalizerOrdering(t *testing.T) {
	segs := []Segment{
		{Name: "worse", Receiver: rxWithDelays(t, []time.Duration{2 * time.Millisecond})},
		{Name: "bad", Receiver: rxWithDelays(t, []time.Duration{500 * time.Microsecond})},
	}
	l := NewLocalizer(2)
	l.SetBaseline("worse", 10*time.Microsecond)
	l.SetBaseline("bad", 10*time.Microsecond)
	anomalies := l.Examine(segs)
	if len(anomalies) != 2 || anomalies[0].Segment != "worse" {
		t.Fatalf("ordering wrong: %v", anomalies)
	}
}

func TestLocalizerThresholdValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLocalizer(1)
}

func TestFormatSegments(t *testing.T) {
	segs := []Segment{{Name: "x", Receiver: rxWithDelays(t, []time.Duration{time.Microsecond})}}
	if FormatSegments(segs) == "" {
		t.Fatal("empty format")
	}
}
