package swp

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// SenderStats counts what the path did to a transmitting endpoint.
type SenderStats struct {
	// Segments is the number of data segments transmitted for the first
	// time; Bytes is their total payload.
	Segments uint64
	Bytes    uint64
	// Retransmits counts data segments sent again after a timeout, and
	// Timeouts counts retransmit-timer expirations (one timeout may
	// retransmit several segments).
	Retransmits uint64
	Timeouts    uint64
	// AcksReceived counts ack segments processed.
	AcksReceived uint64
}

type pendingSeg struct {
	payload []byte
	retries int
	sacked  bool
}

// Sender is the transmitting half of a reliable connection. It implements
// io.WriteCloser over a SegmentConn: Write chunks the byte stream into
// sequence-numbered data segments, blocks while the in-flight window is
// full, and an internal loop retransmits unacknowledged segments with
// exponential backoff. Close blocks until every outstanding segment has
// been acknowledged. Write and Close are meant for a single goroutine.
type Sender struct {
	t   SegmentConn
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	base    uint32 // oldest unacknowledged seq
	next    uint32 // next seq to assign
	pending map[uint32]*pendingSeg
	rto     time.Duration
	timer   *time.Timer
	err     error
	closed  bool
	stats   SenderStats
}

// NewSender starts the transmitting state machine over t.
func NewSender(t SegmentConn, cfg Config) *Sender {
	cfg = cfg.withDefaults()
	s := &Sender{
		t:       t,
		cfg:     cfg,
		base:    cfg.InitialSeq,
		next:    cfg.InitialSeq,
		pending: make(map[uint32]*pendingSeg),
		rto:     cfg.RTO,
	}
	s.cond = sync.NewCond(&s.mu)
	go s.ackLoop()
	return s
}

// Write queues p for reliable delivery, blocking while the window is full.
func (s *Sender) Write(p []byte) (int, error) {
	written := 0
	for len(p) > 0 {
		n := len(p)
		if n > s.cfg.MaxPayload {
			n = s.cfg.MaxPayload
		}
		s.mu.Lock()
		for s.err == nil && !s.closed && len(s.pending) >= s.cfg.Window {
			s.cond.Wait()
		}
		if s.err != nil {
			err := s.err
			s.mu.Unlock()
			return written, err
		}
		if s.closed {
			s.mu.Unlock()
			return written, ErrClosed
		}
		seq := s.next
		s.next++
		payload := append([]byte(nil), p[:n]...)
		s.pending[seq] = &pendingSeg{payload: payload}
		if s.timer == nil {
			s.timer = time.AfterFunc(s.rto, s.onTimeout)
		}
		s.stats.Segments++
		s.stats.Bytes += uint64(n)
		s.mu.Unlock()
		if err := s.t.Send(Segment{Type: SegData, Seq: seq, Payload: payload}); err != nil {
			s.fail(err)
			return written, err
		}
		written += n
		p = p[n:]
	}
	return written, nil
}

// Close waits until every outstanding segment is acknowledged
// (retransmitting as needed), then closes the transport. It returns the
// connection's terminal error, if any.
func (s *Sender) Close() error {
	s.mu.Lock()
	s.closed = true
	for s.err == nil && len(s.pending) > 0 {
		s.cond.Wait()
	}
	err := s.err
	s.mu.Unlock()
	if cerr := s.t.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// Err reports the connection's terminal error (nil while healthy).
func (s *Sender) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stats returns a snapshot of the sender's counters.
func (s *Sender) Stats() SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Sender) ackLoop() {
	for {
		seg, err := s.t.Recv()
		if err != nil {
			s.mu.Lock()
			// An EOF after a clean Close drained the window is the
			// normal shutdown path, not an error.
			if s.err == nil && !(s.closed && len(s.pending) == 0) {
				if err == io.EOF {
					err = ErrClosed
				}
				s.err = err
			}
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		if seg.Type != SegAck {
			continue
		}
		if err := s.handleAck(seg); err != nil {
			s.fail(err)
			return
		}
	}
}

func (s *Sender) handleAck(seg Segment) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.AcksReceived++
	if seqLT(s.next, seg.Ack) {
		return fmt.Errorf("%w: cumulative ack %d beyond next seq %d",
			ErrAckUnsent, seg.Ack, s.next)
	}
	progress := false
	for seq := s.base; seqLT(seq, seg.Ack); seq++ {
		delete(s.pending, seq)
	}
	if seqLT(s.base, seg.Ack) {
		s.base = seg.Ack
		progress = true
	}
	for i := uint32(0); i < 32; i++ {
		if seg.Sack&(1<<i) == 0 {
			continue
		}
		sacked := seg.Ack + 1 + i
		if !seqLT(sacked, s.next) {
			return fmt.Errorf("%w: selective ack %d beyond next seq %d",
				ErrAckUnsent, sacked, s.next)
		}
		if p := s.pending[sacked]; p != nil && !p.sacked {
			p.sacked = true
			progress = true
		}
	}
	if progress {
		// Forward progress: reset the backoff and restart the clock for
		// whatever is still outstanding.
		s.rto = s.cfg.RTO
		if s.timer != nil {
			s.timer.Stop()
			s.timer = nil
		}
		if len(s.pending) > 0 {
			s.timer = time.AfterFunc(s.rto, s.onTimeout)
		}
	}
	if len(s.pending) == 0 && s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	s.cond.Broadcast()
	return nil
}

func (s *Sender) onTimeout() {
	s.mu.Lock()
	if s.err != nil || len(s.pending) == 0 {
		s.timer = nil
		s.mu.Unlock()
		return
	}
	s.stats.Timeouts++
	var resend []Segment
	for seq := s.base; seqLT(seq, s.next); seq++ {
		p := s.pending[seq]
		if p == nil || p.sacked {
			continue
		}
		p.retries++
		if p.retries > s.cfg.MaxRetries {
			s.err = fmt.Errorf("%w: seq %d unacknowledged after %d transmissions",
				ErrRetryBudgetExhausted, seq, p.retries)
			s.timer = nil
			s.cond.Broadcast()
			s.mu.Unlock()
			s.t.Close()
			return
		}
		resend = append(resend, Segment{Type: SegData, Seq: seq, Payload: p.payload})
	}
	s.rto *= 2
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	s.timer = time.AfterFunc(s.rto, s.onTimeout)
	s.stats.Retransmits += uint64(len(resend))
	s.mu.Unlock()
	for _, seg := range resend {
		if err := s.t.Send(seg); err != nil {
			s.fail(err)
			return
		}
	}
}

func (s *Sender) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.t.Close()
}
