package swp_test

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/swp"
)

// sampleStream builds a byte stream of collector wire frames: a hello
// followed by sample batches, deterministic from seed.
func sampleStream(seed int64, frames, perFrame int) []byte {
	rng := rand.New(rand.NewSource(seed))
	buf := collector.AppendHello(nil, "exporter-under-test")
	for f := 0; f < frames; f++ {
		batch := make([]collector.Sample, perFrame)
		for i := range batch {
			batch[i] = collector.Sample{
				Key: packet.FlowKey{
					Src:     packet.Addr(rng.Uint32()),
					Dst:     packet.Addr(rng.Uint32()),
					SrcPort: uint16(rng.Intn(1 << 16)),
					DstPort: uint16(rng.Intn(1 << 16)),
				},
				Est:  time.Duration(rng.Int63n(int64(time.Second))),
				True: time.Duration(rng.Int63n(int64(time.Second))),
			}
		}
		buf = collector.AppendSamples(buf, batch)
	}
	return buf
}

// ingestStream decodes frames from r into a fresh collector and returns its
// snapshot.
func ingestStream(t *testing.T, r io.Reader) []collector.FlowAgg {
	t.Helper()
	c := collector.New(collector.Config{Shards: 2})
	defer c.Close()
	fr := collector.NewFrameReader(r, 0)
	for {
		f, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("FrameReader.Next: %v", err)
		}
		switch f.Type {
		case collector.MsgSamples:
			c.Ingest(f.Samples)
		case collector.MsgRecords:
			c.IngestRecords(f.Records)
		}
	}
	return c.Snapshot()
}

// TestLossyDeliveryBitIdenticalCollector is the tentpole property: the same
// frame stream, shipped once directly and once through swp over a SimNet
// dropping/duplicating/reordering/delaying ≥5% of segments in both
// directions, must land the collector in bit-identical state.
func TestLossyDeliveryBitIdenticalCollector(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			stream := sampleStream(seed, 200, 8)
			want := ingestStream(t, bytes.NewReader(stream))

			a, b := swp.NewSimNet(swp.SimNetConfig{
				Seed:    seed,
				Drop:    0.05,
				Dup:     0.05,
				Reorder: 0.05,
				Delay:   200 * time.Microsecond,
			})
			cfg := swp.Config{
				Window:     32,
				MaxPayload: 512,
				RTO:        5 * time.Millisecond,
				MaxRTO:     50 * time.Millisecond,
				MaxRetries: 64,
			}
			snd := swp.NewSender(a, cfg)
			rcv := swp.NewReceiver(b, cfg)

			writeErr := make(chan error, 1)
			go func() {
				// Irregular write sizes so segment boundaries never align
				// with frame boundaries.
				rng := rand.New(rand.NewSource(seed ^ 0x5757))
				rest := stream
				for len(rest) > 0 {
					n := 1 + rng.Intn(900)
					if n > len(rest) {
						n = len(rest)
					}
					if _, err := snd.Write(rest[:n]); err != nil {
						writeErr <- err
						return
					}
					rest = rest[n:]
				}
				writeErr <- snd.Close()
			}()

			got := ingestStream(t, rcv)
			if err := <-writeErr; err != nil {
				t.Fatalf("sender: %v", err)
			}
			if err := rcv.Err(); err != nil {
				t.Fatalf("receiver: %v", err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("collector state diverged under loss: %d flows direct, %d flows via swp",
					len(want), len(got))
			}

			ss, rs := snd.Stats(), rcv.Stats()
			if ss.Retransmits == 0 {
				t.Error("lossy run had zero retransmits — impairment not exercised")
			}
			if rs.Duplicates == 0 {
				t.Error("lossy run delivered zero duplicate segments — dedup not exercised")
			}
			if rs.OutOfOrder == 0 || rs.Gaps == 0 {
				t.Errorf("lossy run buffered %d out-of-order segments across %d gaps — reordering not exercised",
					rs.OutOfOrder, rs.Gaps)
			}
			if rs.Bytes != uint64(len(stream)) {
				t.Errorf("delivered %d bytes, want %d", rs.Bytes, len(stream))
			}
		})
	}
}

// TestLosslessTransferNoRetransmits checks the happy path costs nothing:
// over a clean SimNet every byte arrives in one transmission.
func TestLosslessTransferNoRetransmits(t *testing.T) {
	stream := sampleStream(3, 50, 4)
	a, b := swp.NewSimNet(swp.SimNetConfig{Seed: 3})
	cfg := swp.Config{MaxPayload: 256}
	snd := swp.NewSender(a, cfg)
	rcv := swp.NewReceiver(b, cfg)

	writeErr := make(chan error, 1)
	go func() {
		_, err := snd.Write(stream)
		if err == nil {
			err = snd.Close()
		}
		writeErr <- err
	}()
	got, err := io.ReadAll(rcv)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if err := <-writeErr; err != nil {
		t.Fatalf("sender: %v", err)
	}
	if !bytes.Equal(got, stream) {
		t.Fatalf("delivered %d bytes differ from %d sent", len(got), len(stream))
	}
	if ss := snd.Stats(); ss.Retransmits != 0 || ss.Timeouts != 0 {
		t.Errorf("lossless run retransmitted: %+v", ss)
	}
	if rs := rcv.Stats(); rs.Duplicates != 0 || rs.OutOfOrder != 0 {
		t.Errorf("lossless run saw impairment: %+v", rs)
	}
}

// TestStreamConnOverSocket runs the full sender/receiver pair over a real
// byte-stream connection (net.Pipe), the framing used against rlird.
func TestStreamConnOverSocket(t *testing.T) {
	cs, ss := net.Pipe()
	stream := sampleStream(9, 40, 6)
	cfg := swp.Config{MaxPayload: 300}
	snd := swp.NewSender(swp.NewStreamConn(cs), cfg)
	rcv := swp.NewReceiver(swp.NewStreamConn(ss), cfg)

	writeErr := make(chan error, 1)
	go func() {
		_, err := snd.Write(stream)
		if err == nil {
			err = snd.Close()
		}
		writeErr <- err
	}()
	got, err := io.ReadAll(rcv)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if err := <-writeErr; err != nil {
		t.Fatalf("sender: %v", err)
	}
	if !bytes.Equal(got, stream) {
		t.Fatalf("delivered %d bytes differ from %d sent", len(got), len(stream))
	}
}
