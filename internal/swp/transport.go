package swp

import (
	"fmt"
	"io"
	"sync"
)

// SegmentConn carries whole segments between a sender and a receiver. Send
// and Recv must be safe to call from different goroutines (one writer, one
// reader); Close must unblock a pending Recv.
type SegmentConn interface {
	// Send transmits one segment.
	Send(seg Segment) error
	// Recv blocks for the next segment; io.EOF means the peer closed
	// cleanly.
	Recv() (Segment, error)
	// Close tears the transport down.
	Close() error
}

// StreamConn adapts a byte-stream connection (TCP, Unix socket, net.Pipe)
// into a SegmentConn by length-delimiting segments with the swp header.
// Reads and writes may come from different goroutines; concurrent writers
// are serialized so segments never interleave.
type StreamConn struct {
	r  io.Reader
	wc io.WriteCloser

	wmu  sync.Mutex
	wbuf []byte
	hdr  [SegmentHeaderSize]byte
	rbuf []byte
}

// NewStreamConn wraps a full-duplex byte-stream connection.
func NewStreamConn(rw io.ReadWriteCloser) *StreamConn {
	return NewStreamConnPair(rw, rw)
}

// NewStreamConnPair wraps separate read and write halves — how the service
// layers a StreamConn over a bufio-wrapped socket (reads go through the
// buffer that already peeked the first bytes, writes go straight to the
// socket).
func NewStreamConnPair(r io.Reader, wc io.WriteCloser) *StreamConn {
	return &StreamConn{r: r, wc: wc}
}

// Send writes seg's wire encoding.
func (c *StreamConn) Send(seg Segment) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = AppendSegment(c.wbuf[:0], seg)
	_, err := c.wc.Write(c.wbuf)
	return err
}

// Recv reads the next segment. A clean end of stream between segments is
// io.EOF; a stream ending inside a segment is ErrTruncatedSegment.
func (c *StreamConn) Recv() (Segment, error) {
	if _, err := io.ReadFull(c.r, c.hdr[:]); err != nil {
		if err == io.EOF {
			return Segment{}, io.EOF
		}
		return Segment{}, fmt.Errorf("%w: %w", ErrTruncatedSegment, err)
	}
	typ, n, err := decodeSegmentHeader(c.hdr[:])
	if err != nil {
		return Segment{}, err
	}
	if cap(c.rbuf) < SegmentHeaderSize+n {
		c.rbuf = make([]byte, SegmentHeaderSize+n)
	}
	buf := c.rbuf[:SegmentHeaderSize+n]
	copy(buf, c.hdr[:])
	if _, err := io.ReadFull(c.r, buf[SegmentHeaderSize:]); err != nil {
		return Segment{}, fmt.Errorf("%w: %w", ErrTruncatedSegment, err)
	}
	seg, _, err := DecodeSegment(buf)
	_ = typ
	return seg, err
}

// Close closes the write half (the underlying connection, for sockets).
func (c *StreamConn) Close() error { return c.wc.Close() }
