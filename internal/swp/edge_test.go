package swp_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/swp"
)

// waitErr polls an endpoint's error until it matches want or the deadline
// passes.
func waitErr(t *testing.T, errOf func() error, want error) error {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := errOf(); errors.Is(err, want) {
			return err
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no %v within deadline (have %v)", want, errOf())
	return nil
}

// TestAckOfNeverSentSeq drives crafted acks at a sender: acknowledging a
// sequence number it never transmitted is protocol corruption and must kill
// the connection with ErrAckUnsent.
func TestAckOfNeverSentSeq(t *testing.T) {
	t.Run("cumulative", func(t *testing.T) {
		a, b := swp.NewSimNet(swp.SimNetConfig{Seed: 1})
		snd := swp.NewSender(a, swp.Config{RTO: time.Hour})
		if err := b.Send(swp.Segment{Type: swp.SegAck, Ack: 100}); err != nil {
			t.Fatalf("Send: %v", err)
		}
		waitErr(t, snd.Err, swp.ErrAckUnsent)
		if _, err := snd.Write([]byte("x")); !errors.Is(err, swp.ErrAckUnsent) {
			t.Errorf("Write after poisoned ack = %v, want ErrAckUnsent", err)
		}
	})
	t.Run("selective", func(t *testing.T) {
		a, b := swp.NewSimNet(swp.SimNetConfig{Seed: 1})
		snd := swp.NewSender(a, swp.Config{RTO: time.Hour})
		if _, err := snd.Write([]byte("x")); err != nil {
			t.Fatalf("Write: %v", err)
		}
		// Ack nothing cumulatively, but SACK seq 2 — one past the only
		// segment ever sent.
		if err := b.Send(swp.Segment{Type: swp.SegAck, Ack: 1, Sack: 1 << 0}); err != nil {
			t.Fatalf("Send: %v", err)
		}
		waitErr(t, snd.Err, swp.ErrAckUnsent)
	})
}

// TestSeqWraparound pins the initial sequence number just below the top of
// the uint32 space so a lossy transfer crosses the wrap; serial-number
// arithmetic must keep ordering, dedup and acking correct across it.
func TestSeqWraparound(t *testing.T) {
	payload := bytes.Repeat([]byte("wraparound-payload-"), 200) // 3800 B
	a, b := swp.NewSimNet(swp.SimNetConfig{Seed: 11, Drop: 0.1, Dup: 0.1, Reorder: 0.1})
	cfg := swp.Config{
		InitialSeq: ^uint32(0) - 40, // wraps ~40 segments in
		Window:     16,
		MaxPayload: 16, // 3800 B -> 238 segments, well past the wrap
		RTO:        2 * time.Millisecond,
		MaxRTO:     20 * time.Millisecond,
		MaxRetries: 64,
	}
	snd := swp.NewSender(a, cfg)
	rcv := swp.NewReceiver(b, cfg)
	writeErr := make(chan error, 1)
	go func() {
		_, err := snd.Write(payload)
		if err == nil {
			err = snd.Close()
		}
		writeErr <- err
	}()
	got, err := io.ReadAll(rcv)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if err := <-writeErr; err != nil {
		t.Fatalf("sender: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("delivered %d bytes differ from %d sent across seq wrap", len(got), len(payload))
	}
}

// TestDuplicateSegmentDelivery hand-feeds duplicates — of a delivered
// segment and of a reorder-buffered one — and checks they are counted and
// delivered exactly once.
func TestDuplicateSegmentDelivery(t *testing.T) {
	a, b := swp.NewSimNet(swp.SimNetConfig{Seed: 1})
	rcv := swp.NewReceiver(b, swp.Config{})
	send := func(seq uint32, payload string) {
		t.Helper()
		if err := a.Send(swp.Segment{Type: swp.SegData, Seq: seq, Payload: []byte(payload)}); err != nil {
			t.Fatalf("Send seq %d: %v", seq, err)
		}
	}
	send(2, "cd") // ahead of expected: buffered, opens a gap
	send(2, "cd") // duplicate of a buffered segment
	send(1, "ab") // fills the hole
	send(1, "ab") // duplicate of a delivered segment
	got := make([]byte, 4)
	if _, err := io.ReadFull(rcv, got); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if string(got) != "abcd" {
		t.Fatalf("delivered %q, want %q", got, "abcd")
	}
	// Stats are updated before delivery is readable, but give the read
	// loop a beat for the trailing duplicate.
	deadline := time.Now().Add(5 * time.Second)
	for rcv.Stats().Duplicates != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := rcv.Stats()
	if st.Duplicates != 2 || st.OutOfOrder != 1 || st.Gaps != 1 || st.Segments != 4 {
		t.Errorf("stats = %+v, want 2 duplicates, 1 out-of-order, 1 gap over 4 segments", st)
	}
	if st.Bytes != 4 {
		t.Errorf("delivered %d bytes, want 4 (duplicates must not re-deliver)", st.Bytes)
	}
}

// TestRetryBudgetExhausted sends into a path that drops everything: after
// MaxRetries retransmissions the connection must fail with the typed
// ErrRetryBudgetExhausted, surfaced by Write, Close and Err alike.
func TestRetryBudgetExhausted(t *testing.T) {
	a, _ := swp.NewSimNet(swp.SimNetConfig{Seed: 1, Drop: 1.0})
	snd := swp.NewSender(a, swp.Config{
		RTO:        time.Millisecond,
		MaxRTO:     2 * time.Millisecond,
		MaxRetries: 3,
	})
	if _, err := snd.Write([]byte("doomed")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	waitErr(t, snd.Err, swp.ErrRetryBudgetExhausted)
	if _, err := snd.Write([]byte("more")); !errors.Is(err, swp.ErrRetryBudgetExhausted) {
		t.Errorf("Write after exhaustion = %v, want ErrRetryBudgetExhausted", err)
	}
	if err := snd.Close(); !errors.Is(err, swp.ErrRetryBudgetExhausted) {
		t.Errorf("Close after exhaustion = %v, want ErrRetryBudgetExhausted", err)
	}
	if st := snd.Stats(); st.Retransmits != 3 {
		t.Errorf("retransmits = %d, want exactly MaxRetries = 3", st.Retransmits)
	}
}

// TestTransportCloseWithHoles closes the path while a sequence hole is
// outstanding: delivered bytes stay a strict prefix and the receiver
// reports ErrMissingSegments, not a clean EOF.
func TestTransportCloseWithHoles(t *testing.T) {
	a, b := swp.NewSimNet(swp.SimNetConfig{Seed: 1})
	rcv := swp.NewReceiver(b, swp.Config{})
	if err := a.Send(swp.Segment{Type: swp.SegData, Seq: 2, Payload: []byte("cd")}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := io.ReadAll(rcv); !errors.Is(err, swp.ErrMissingSegments) {
		t.Fatalf("ReadAll = %v, want ErrMissingSegments", err)
	}
	if err := rcv.Err(); !errors.Is(err, swp.ErrMissingSegments) {
		t.Errorf("Err = %v, want ErrMissingSegments", err)
	}
}

// TestSegmentCodec round-trips the wire format and rejects each class of
// corruption with its typed error.
func TestSegmentCodec(t *testing.T) {
	seg := swp.Segment{Type: swp.SegData, Seq: 7, Ack: 3, Sack: 0b1011, Payload: []byte("payload")}
	wire := swp.AppendSegment(nil, seg)
	if len(wire) != swp.SegmentHeaderSize+len(seg.Payload) {
		t.Fatalf("encoded %d bytes, want %d", len(wire), swp.SegmentHeaderSize+len(seg.Payload))
	}
	got, n, err := swp.DecodeSegment(wire)
	if err != nil || n != len(wire) {
		t.Fatalf("DecodeSegment: %v (consumed %d of %d)", err, n, len(wire))
	}
	if got.Type != seg.Type || got.Seq != seg.Seq || got.Ack != seg.Ack ||
		got.Sack != seg.Sack || !bytes.Equal(got.Payload, seg.Payload) {
		t.Fatalf("round trip mutated segment: %+v != %+v", got, seg)
	}

	corrupt := func(mutate func([]byte)) []byte {
		c := append([]byte(nil), wire...)
		mutate(c)
		return c
	}
	cases := []struct {
		name string
		src  []byte
		want error
	}{
		{"bad magic", corrupt(func(b []byte) { b[0] = 'X' }), swp.ErrBadSegmentMagic},
		{"bad version", corrupt(func(b []byte) { b[2] = 99 }), swp.ErrBadSegmentVersion},
		{"bad type", corrupt(func(b []byte) { b[3] = 9 }), swp.ErrBadSegmentType},
		{"ack with payload", corrupt(func(b []byte) { b[3] = swp.SegAck }), swp.ErrBadSegmentType},
		{"oversized", corrupt(func(b []byte) { b[16], b[17] = 0xFF, 0xFF }), swp.ErrOversizedSegment},
		{"truncated header", wire[:swp.SegmentHeaderSize-1], swp.ErrTruncatedSegment},
		{"truncated payload", wire[:len(wire)-1], swp.ErrTruncatedSegment},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := swp.DecodeSegment(tc.src); !errors.Is(err, tc.want) {
				t.Errorf("DecodeSegment(%s) = %v, want %v", tc.name, err, tc.want)
			}
		})
	}

	oversized := swp.Segment{Type: swp.SegData, Payload: []byte(strings.Repeat("x", swp.MaxSegmentPayload+1))}
	if _, _, err := swp.DecodeSegment(swp.AppendSegment(nil, oversized)); !errors.Is(err, swp.ErrOversizedSegment) {
		t.Errorf("oversized payload = %v, want ErrOversizedSegment", err)
	}
}

// TestReceiverCloseUnblocksRead verifies a blocked Read wakes with
// ErrClosed when the receiver is torn down locally.
func TestReceiverCloseUnblocksRead(t *testing.T) {
	_, b := swp.NewSimNet(swp.SimNetConfig{Seed: 1})
	rcv := swp.NewReceiver(b, swp.Config{})
	readErr := make(chan error, 1)
	go func() {
		_, err := rcv.Read(make([]byte, 1))
		readErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := rcv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-readErr:
		if !errors.Is(err, swp.ErrClosed) {
			t.Errorf("Read after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Read still blocked after Close")
	}
}
