package swp

import (
	"io"
	"sync"
)

// ReceiverStats counts what the path did to a receiving endpoint.
type ReceiverStats struct {
	// Segments is the number of data segments that arrived, including
	// duplicates; Bytes is the payload delivered to the reader.
	Segments uint64
	Bytes    uint64
	// Duplicates counts data segments already delivered or buffered —
	// retransmissions whose original made it, or path-level duplication.
	Duplicates uint64
	// OutOfOrder counts segments that arrived ahead of the next expected
	// sequence number and were reorder-buffered; Gaps counts the times
	// such a segment opened a fresh hole (a new loss/reorder episode).
	OutOfOrder uint64
	Gaps       uint64
	// AcksSent counts ack segments transmitted.
	AcksSent uint64
}

// Receiver is the receiving half of a reliable connection. It implements
// io.Reader over a SegmentConn: data segments are deduplicated by sequence
// number, reorder-buffered, and delivered strictly in order, each arrival
// acknowledged cumulatively plus selectively. A transport that closes while
// sequence holes remain yields ErrMissingSegments; a clean close yields
// io.EOF.
type Receiver struct {
	t   SegmentConn
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond
	expected uint32            // next in-order seq
	oo       map[uint32][]byte // reorder buffer: seq -> payload
	buf      []byte            // delivered bytes awaiting Read
	off      int
	err      error
	stats    ReceiverStats
}

// NewReceiver starts the receiving state machine over t. cfg.InitialSeq and
// cfg.Window must match the peer sender's.
func NewReceiver(t SegmentConn, cfg Config) *Receiver {
	cfg = cfg.withDefaults()
	r := &Receiver{
		t:        t,
		cfg:      cfg,
		expected: cfg.InitialSeq,
		oo:       make(map[uint32][]byte),
	}
	r.cond = sync.NewCond(&r.mu)
	go r.readLoop()
	return r
}

// Read returns in-order delivered bytes, blocking until some arrive or the
// connection reaches a terminal state.
func (r *Receiver) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.off == len(r.buf) && r.err == nil {
		r.cond.Wait()
	}
	if r.off < len(r.buf) {
		n := copy(p, r.buf[r.off:])
		r.off += n
		if r.off == len(r.buf) {
			r.buf = r.buf[:0]
			r.off = 0
		}
		return n, nil
	}
	return 0, r.err
}

// Close tears down the connection; a blocked Read returns ErrClosed.
func (r *Receiver) Close() error {
	r.mu.Lock()
	if r.err == nil {
		r.err = ErrClosed
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	return r.t.Close()
}

// Err reports the connection's terminal state: nil while healthy, io.EOF
// after a clean close, ErrMissingSegments if the transport closed with
// holes outstanding.
func (r *Receiver) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err == io.EOF {
		return nil
	}
	return r.err
}

// Stats returns a snapshot of the receiver's counters.
func (r *Receiver) Stats() ReceiverStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

func (r *Receiver) readLoop() {
	for {
		seg, err := r.t.Recv()
		if err != nil {
			r.mu.Lock()
			if r.err == nil {
				if err == io.EOF {
					if len(r.oo) > 0 {
						err = ErrMissingSegments
					}
					// else: clean end of stream, err stays io.EOF
				}
				r.err = err
			}
			r.cond.Broadcast()
			r.mu.Unlock()
			return
		}
		if seg.Type != SegData {
			continue
		}
		ack := r.handleData(seg)
		// Ack every arrival, duplicates included — a duplicate usually
		// means the peer lost our previous ack. Transport failures here
		// surface through Recv on the next iteration.
		_ = r.t.Send(ack)
	}
}

// handleData applies one data segment to the reassembly state and returns
// the ack to send for it.
func (r *Receiver) handleData(seg Segment) Segment {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Segments++
	seq := seg.Seq
	switch {
	case seqLT(seq, r.expected):
		r.stats.Duplicates++
	case seq == r.expected:
		r.deliver(seg.Payload)
		r.expected++
		for {
			payload, ok := r.oo[r.expected]
			if !ok {
				break
			}
			delete(r.oo, r.expected)
			r.deliver(payload)
			r.expected++
		}
		r.cond.Broadcast()
	default:
		if _, dup := r.oo[seq]; dup {
			r.stats.Duplicates++
		} else if seq-r.expected >= uint32(r.cfg.Window) {
			// Beyond any window a conforming sender could have open:
			// drop it, but still re-ack below.
			r.stats.Duplicates++
		} else {
			if len(r.oo) == 0 {
				r.stats.Gaps++
			}
			r.oo[seq] = append([]byte(nil), seg.Payload...)
			r.stats.OutOfOrder++
		}
	}
	var sack uint32
	for i := uint32(0); i < 32; i++ {
		if _, ok := r.oo[r.expected+1+i]; ok {
			sack |= 1 << i
		}
	}
	r.stats.AcksSent++
	return Segment{Type: SegAck, Ack: r.expected, Sack: sack}
}

func (r *Receiver) deliver(payload []byte) {
	r.buf = append(r.buf, payload...)
	r.stats.Bytes += uint64(len(payload))
}
