package swp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Wire format of one segment, on byte-stream transports:
//
//	offset size field
//	0      2    magic 0x5357 ("SW")
//	2      1    version (1)
//	3      1    segment type (1 = data, 2 = ack)
//	4      4    seq (data: this segment's sequence number; ack: unused)
//	8      4    cumulative ack: the receiver's next expected seq — every
//	            seq before it has been received
//	12     4    SACK bitmap: bit i set means seq ack+1+i was received
//	            out of order
//	16     4    payload length (data only; ack carries none)
//	20     ...  payload bytes
//
// Multi-byte fields are big endian, like the collector frame codec. The
// leading magic differs from the collector codec's 0x5246, which is how the
// service tells a reliable session from raw frames on the first bytes of a
// connection.
const (
	segMagic   = 0x5357
	segVersion = 1

	// SegData carries payload; SegAck carries only acknowledgment state.
	SegData = 1
	SegAck  = 2

	// SegmentHeaderSize is the fixed segment prefix.
	SegmentHeaderSize = 20
	// MaxSegmentPayload bounds one segment's payload — the decoder's
	// worst-case allocation for an untrusted length field.
	MaxSegmentPayload = 64 << 10
)

// Errors returned by the segment codec and the transfer state machines.
var (
	ErrBadSegmentMagic   = errors.New("swp: segment has wrong magic")
	ErrBadSegmentVersion = errors.New("swp: unsupported segment version")
	ErrBadSegmentType    = errors.New("swp: unknown segment type")
	ErrOversizedSegment  = errors.New("swp: segment payload exceeds bound")
	ErrTruncatedSegment  = errors.New("swp: stream ended inside a segment")
	// ErrAckUnsent means the peer acknowledged a sequence number this
	// sender never transmitted — protocol corruption, fatal.
	ErrAckUnsent = errors.New("swp: ack for a never-sent sequence number")
	// ErrRetryBudgetExhausted means a segment was retransmitted MaxRetries
	// times without acknowledgment; the connection is closed.
	ErrRetryBudgetExhausted = errors.New("swp: retransmit budget exhausted")
	// ErrMissingSegments means the transport closed while sequence holes
	// remained — delivered bytes are a strict prefix, but the transfer is
	// incomplete.
	ErrMissingSegments = errors.New("swp: transport closed with undelivered segments")
	// ErrClosed is returned by operations on a closed endpoint.
	ErrClosed = errors.New("swp: endpoint closed")
)

// Segment is one decoded transport segment.
type Segment struct {
	// Type is SegData or SegAck.
	Type byte
	// Seq is a data segment's sequence number.
	Seq uint32
	// Ack is the cumulative acknowledgment: the next expected seq.
	Ack uint32
	// Sack is the selective-ack bitmap: bit i set means seq Ack+1+i was
	// received out of order.
	Sack uint32
	// Payload is a data segment's bytes (nil for acks).
	Payload []byte
}

// Detect reports whether b begins with the swp segment magic — how a
// server peeking at a fresh connection's first bytes decides between the
// reliable framing and raw collector frames, whose magic differs.
func Detect(b []byte) bool {
	return len(b) >= 2 && binary.BigEndian.Uint16(b[0:2]) == segMagic
}

// seqLT compares sequence numbers in serial-number arithmetic, so windows
// that wrap the uint32 space order correctly (RFC 1982 style: a < b iff the
// signed distance from a to b is positive).
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLEQ is serial-arithmetic a <= b.
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// AppendSegment appends seg's wire encoding to dst and returns the
// extended slice.
func AppendSegment(dst []byte, seg Segment) []byte {
	var h [SegmentHeaderSize]byte
	binary.BigEndian.PutUint16(h[0:2], segMagic)
	h[2] = segVersion
	h[3] = seg.Type
	binary.BigEndian.PutUint32(h[4:8], seg.Seq)
	binary.BigEndian.PutUint32(h[8:12], seg.Ack)
	binary.BigEndian.PutUint32(h[12:16], seg.Sack)
	binary.BigEndian.PutUint32(h[16:20], uint32(len(seg.Payload)))
	dst = append(dst, h[:]...)
	return append(dst, seg.Payload...)
}

// decodeSegmentHeader validates a segment header and returns its type and
// payload length.
func decodeSegmentHeader(h []byte) (typ byte, n int, err error) {
	if binary.BigEndian.Uint16(h[0:2]) != segMagic {
		return 0, 0, ErrBadSegmentMagic
	}
	if h[2] != segVersion {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadSegmentVersion, h[2])
	}
	typ = h[3]
	if typ != SegData && typ != SegAck {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadSegmentType, typ)
	}
	length := binary.BigEndian.Uint32(h[16:20])
	if length > MaxSegmentPayload {
		return 0, 0, fmt.Errorf("%w: %d bytes, max %d", ErrOversizedSegment, length, MaxSegmentPayload)
	}
	if typ == SegAck && length != 0 {
		return 0, 0, fmt.Errorf("%w: ack with %d payload bytes", ErrBadSegmentType, length)
	}
	return typ, int(length), nil
}

// DecodeSegment decodes one segment from the front of src and returns it
// with the number of bytes consumed.
func DecodeSegment(src []byte) (Segment, int, error) {
	if len(src) < SegmentHeaderSize {
		return Segment{}, 0, ErrTruncatedSegment
	}
	typ, n, err := decodeSegmentHeader(src[:SegmentHeaderSize])
	if err != nil {
		return Segment{}, 0, err
	}
	if len(src) < SegmentHeaderSize+n {
		return Segment{}, 0, fmt.Errorf("%w: %d payload bytes, have %d",
			ErrTruncatedSegment, n, len(src)-SegmentHeaderSize)
	}
	seg := Segment{
		Type: typ,
		Seq:  binary.BigEndian.Uint32(src[4:8]),
		Ack:  binary.BigEndian.Uint32(src[8:12]),
		Sack: binary.BigEndian.Uint32(src[12:16]),
	}
	if n > 0 {
		seg.Payload = append([]byte(nil), src[SegmentHeaderSize:SegmentHeaderSize+n]...)
	}
	return seg, SegmentHeaderSize + n, nil
}

// Config tunes a Sender/Receiver pair. The zero value selects defaults
// sized for export connections: a 64-segment window of 16 KiB segments, a
// 200 ms initial retransmit timeout backing off to 5 s, and an 8-retransmit
// budget per segment.
type Config struct {
	// Window bounds unacknowledged data segments in flight (default 64).
	Window int
	// MaxPayload bounds one data segment's payload bytes (default 16 KiB,
	// capped at MaxSegmentPayload).
	MaxPayload int
	// RTO is the initial retransmit timeout (default 200 ms); it doubles on
	// every consecutive timeout up to MaxRTO (default 5 s) and resets when
	// an ack makes progress.
	RTO    time.Duration
	MaxRTO time.Duration
	// MaxRetries is the per-segment retransmit budget; exceeding it fails
	// the connection with ErrRetryBudgetExhausted (default 8).
	MaxRetries int
	// InitialSeq is the first data segment's sequence number (default 1).
	// Tests pin it near the top of the space to prove wraparound.
	InitialSeq uint32
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = 16 << 10
	}
	if c.MaxPayload > MaxSegmentPayload {
		c.MaxPayload = MaxSegmentPayload
	}
	if c.RTO <= 0 {
		c.RTO = 200 * time.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 5 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.InitialSeq == 0 {
		c.InitialSeq = 1
	}
	return c
}
