// Package swp is the sliding-window reliable transport of the measurement
// plane: a thin ARQ layer between exporters (RLI receivers, NetFlow
// exporters, cmd/loadgen) and the collecting service, for export paths that
// cross lossy, reordering networks where the collector codec's perfect-
// stream assumption does not hold.
//
// The unit of transfer is a segment: a sequence-numbered chunk of the
// exporter's byte stream (in practice, collector wire frames). A Sender
// splits writes into segments, keeps a bounded window of unacknowledged
// segments in flight, and retransmits on timeout with exponential backoff
// and a capped per-segment retry budget; a Receiver buffers out-of-order
// arrivals, delivers the byte stream strictly in order (exactly once —
// duplicates from retransmission are detected by sequence number and
// dropped), and acknowledges cumulatively plus selectively, so one lost
// segment does not cause the whole window to retransmit:
//
//	Sender.Write ──DATA seq=n──> lossy path ──> Receiver.Read (in order)
//	       ^                                        │
//	       └────────── ACK cum + SACK bitmap ───────┘
//
// Both ends count what the path did to them — retransmissions, timeouts,
// duplicates, reordering, gap events — which is how the collecting service
// surfaces per-exporter telemetry-loss accounting in /metrics.
//
// Segments move over a SegmentConn. StreamConn adapts any byte-stream
// connection (TCP, Unix sockets); SimNet is an in-process pair whose
// directions drop, duplicate and reorder segments deterministically from a
// seed — the harness the delivery-equivalence property tests run on. The
// same impairment model (Impair) wraps any SegmentConn, which is how
// cmd/loadgen -loss soaks a real rlird across an emulated lossy path.
package swp
