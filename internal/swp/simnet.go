package swp

import (
	"io"
	"math/rand"
	"sync"
	"time"
)

// SimNetConfig shapes the loss model of an in-process segment path. All
// randomness derives from Seed, so a run's drop/duplicate/reorder decisions
// are reproducible (Delay adds real scheduling nondeterminism to arrival
// order, which the ARQ layer must absorb anyway).
type SimNetConfig struct {
	// Seed fixes the impairment random streams; each direction gets an
	// independent stream derived from it.
	Seed int64
	// Drop, Dup and Reorder are per-segment probabilities in [0, 1].
	// Reorder holds a segment back until the next one passes, swapping
	// their arrival order.
	Drop    float64
	Dup     float64
	Reorder float64
	// Delay is the maximum extra per-segment latency; each delayed
	// segment sleeps a uniform fraction of it in its own goroutine.
	Delay time.Duration
	// Queue bounds each direction's in-flight segments (default 256);
	// segments arriving at a full queue are tail-dropped.
	Queue int
}

// NewSimNet builds an in-process lossy segment path and returns its two
// endpoints. Segments sent on one endpoint arrive at the other — except
// when the configured impairments drop, duplicate, reorder or delay them.
// Closing either endpoint closes the whole path.
func NewSimNet(cfg SimNetConfig) (SegmentConn, SegmentConn) {
	queue := cfg.Queue
	if queue <= 0 {
		queue = 256
	}
	ab := &simDir{ch: make(chan Segment, queue), imp: newImpairState(cfg, cfg.Seed)}
	ba := &simDir{ch: make(chan Segment, queue), imp: newImpairState(cfg, cfg.Seed+1)}
	return &simEnd{out: ab, in: ba}, &simEnd{out: ba, in: ab}
}

// simDir is one direction of a SimNet: a bounded queue with an impairment
// stage in front of it.
type simDir struct {
	mu     sync.Mutex
	ch     chan Segment
	closed bool
	imp    *impairState
}

func (d *simDir) enqueue(seg Segment) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	select {
	case d.ch <- seg:
	default: // full queue: tail drop
	}
}

func (d *simDir) send(seg Segment) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	out := d.imp.apply(seg)
	d.mu.Unlock()
	for _, dv := range out {
		if dv.delay > 0 {
			go func(seg Segment, delay time.Duration) {
				time.Sleep(delay)
				d.enqueue(seg)
			}(dv.seg, dv.delay)
			continue
		}
		d.enqueue(dv.seg)
	}
	return nil
}

func (d *simDir) close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	// Flush a held-back reordered segment so close doesn't turn a swap
	// into a loss.
	if seg, ok := d.imp.flush(); ok {
		select {
		case d.ch <- seg:
		default:
		}
	}
	d.closed = true
	close(d.ch)
}

type simEnd struct {
	out *simDir
	in  *simDir
}

func (e *simEnd) Send(seg Segment) error { return e.out.send(seg) }

func (e *simEnd) Recv() (Segment, error) {
	seg, ok := <-e.in.ch
	if !ok {
		return Segment{}, io.EOF
	}
	return seg, nil
}

func (e *simEnd) Close() error {
	e.out.close()
	e.in.close()
	return nil
}

// delivery is one impaired segment plus the extra latency it owes.
type delivery struct {
	seg   Segment
	delay time.Duration
}

// impairState applies a SimNetConfig's loss model to a stream of segments.
// Callers must serialize apply/flush (SimNet and Impair guard it with the
// direction lock).
type impairState struct {
	cfg        SimNetConfig
	rng        *rand.Rand
	pocket     Segment
	havePocket bool
}

func newImpairState(cfg SimNetConfig, seed int64) *impairState {
	return &impairState{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

func (im *impairState) apply(seg Segment) []delivery {
	seg = copySegment(seg)
	if im.cfg.Drop > 0 && im.rng.Float64() < im.cfg.Drop {
		return nil
	}
	if im.cfg.Reorder > 0 && !im.havePocket && im.rng.Float64() < im.cfg.Reorder {
		// Hold this one back; it rides out behind the next survivor.
		im.pocket = seg
		im.havePocket = true
		return nil
	}
	out := []delivery{{seg: seg, delay: im.delay()}}
	if im.cfg.Dup > 0 && im.rng.Float64() < im.cfg.Dup {
		out = append(out, delivery{seg: copySegment(seg), delay: im.delay()})
	}
	if im.havePocket {
		out = append(out, delivery{seg: im.pocket, delay: im.delay()})
		im.pocket = Segment{}
		im.havePocket = false
	}
	return out
}

func (im *impairState) delay() time.Duration {
	if im.cfg.Delay <= 0 {
		return 0
	}
	return time.Duration(im.rng.Int63n(int64(im.cfg.Delay)))
}

// flush surrenders a held-back segment, if any.
func (im *impairState) flush() (Segment, bool) {
	if !im.havePocket {
		return Segment{}, false
	}
	seg := im.pocket
	im.pocket = Segment{}
	im.havePocket = false
	return seg, true
}

func copySegment(seg Segment) Segment {
	if seg.Payload != nil {
		seg.Payload = append([]byte(nil), seg.Payload...)
	}
	return seg
}

// ImpairConfig shapes an Impair wrapper: the same loss model as
// SimNetConfig, applied to one endpoint's outbound segments.
type ImpairConfig struct {
	// Seed fixes the impairment random stream.
	Seed int64
	// Drop, Dup and Reorder are per-segment probabilities in [0, 1].
	Drop    float64
	Dup     float64
	Reorder float64
	// Delay is the maximum extra latency added to a sent segment.
	Delay time.Duration
}

// Impair wraps a SegmentConn so outbound segments pass through a seeded
// loss model — how cmd/loadgen emulates a lossy export path over a real
// socket: its data segments are dropped/duplicated/reordered before they
// reach the wire, and the ARQ layer has to recover against a live rlird.
// Inbound segments are untouched.
func Impair(c SegmentConn, cfg ImpairConfig) SegmentConn {
	return &impairConn{
		inner: c,
		imp: newImpairState(SimNetConfig{
			Drop:    cfg.Drop,
			Dup:     cfg.Dup,
			Reorder: cfg.Reorder,
			Delay:   cfg.Delay,
		}, cfg.Seed),
	}
}

type impairConn struct {
	inner SegmentConn
	mu    sync.Mutex
	imp   *impairState
}

func (c *impairConn) Send(seg Segment) error {
	c.mu.Lock()
	out := c.imp.apply(seg)
	c.mu.Unlock()
	for _, dv := range out {
		if dv.delay > 0 {
			go func(seg Segment, delay time.Duration) {
				time.Sleep(delay)
				_ = c.inner.Send(seg)
			}(dv.seg, dv.delay)
			continue
		}
		if err := c.inner.Send(dv.seg); err != nil {
			return err
		}
	}
	return nil
}

func (c *impairConn) Recv() (Segment, error) { return c.inner.Recv() }

func (c *impairConn) Close() error {
	c.mu.Lock()
	seg, ok := c.imp.flush()
	c.mu.Unlock()
	if ok {
		_ = c.inner.Send(seg)
	}
	return c.inner.Close()
}
