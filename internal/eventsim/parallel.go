// Conservative parallel discrete-event engine: N logical processes (lanes),
// each an ordinary sequential Engine on its own goroutine, synchronized by a
// bounded-window protocol whose lookahead is the minimum cross-lane link
// delay. There is no rollback and no speculation — a lane only executes
// events that can no longer be affected by any other lane — and the result
// is bit-identical to running every event on one sequential Engine.
//
// # Protocol
//
// Execution proceeds in windows. Each window the coordinator computes
// S = min over lanes of the earliest pending event and lets every lane
// execute events with timestamp in [S, S+L), where L is the lookahead. Any
// cross-lane message generated inside the window carries a timestamp at
// least its cause's time plus L, i.e. at or after the window end, so no
// in-window event can be invalidated by a neighbour: the classic
// conservative bound "no lane advances past min(neighbor horizons) +
// lookahead". Cross-lane handoffs are buffered in per-destination outboxes
// (single-producer, single-consumer: the lane appends during the window, the
// coordinator drains at the barrier) and inserted into the destination heap
// before the next window starts.
//
// # Bit-identical tie order
//
// The sequential engine orders same-instant events by (ord, k): the
// execution index of the scheduling cause and the index among that cause's
// schedule calls. A lane cannot know a cause's global execution index while
// the window runs — events executed concurrently in other lanes interleave
// with its own — so in-window causes are stamped with a flagged lane-local
// index instead. At each barrier the coordinator k-way merges the lanes'
// per-window execution records in global (at, ord, k) order, assigning each
// executed event its dense global index, then rewrites the flagged stamps on
// parked events and outbox messages. The merge can always resolve a flagged
// cause on the fly: the cause executed earlier in the same lane's window, so
// its global index was assigned before any of its children reach the merge
// head. Setup-time schedules use ord 0 with one counter shared across lanes,
// which is exactly the sequential setup order. The result is that every
// event carries the same (at, ord, k) key it would have carried on the
// sequential engine, so heap pop order — and therefore every handler
// execution order — is identical.
//
// # Shared state: deferred effects
//
// Simulation state must be partitioned: a node's events run on its lane's
// goroutine with no locks. State that is genuinely global (measurement
// estimator folds, export captures) is instead mutated through the effect
// log: handlers call Emit, the coordinator merges the per-lane logs in
// global execution order at each barrier and applies them single-threaded.
// Because effects are applied in exactly the order the sequential run would
// have produced them, even order-sensitive folds (floating-point Welford
// accumulators) come out bit-identical.
package eventsim

import (
	"fmt"
	"sync"
	"time"

	"github.com/netmeasure/rlir/internal/simtime"
)

// EffectKind identifies an effect handler registered with RegisterEffect.
type EffectKind uint32

// EffectHandler applies one deferred effect on the coordinator goroutine.
// It receives the instant the effect was emitted at and the two payload
// words passed to Emit.
type EffectHandler func(at simtime.Time, a, b any)

// execRec is the identity of one executed event: the key it was popped with.
type execRec struct {
	at  simtime.Time
	ord uint64
	k   uint32
}

// effectRec is one deferred effect: the flagged local index of the emitting
// event plus the Emit payload. Per-lane logs are in emission order, which
// within one emitting event is the order the effects must apply in.
type effectRec struct {
	ord  uint64
	kind EffectKind
	at   simtime.Time
	a, b any
}

// xmsg is a timestamped cross-lane message: a typed event addressed to
// another lane, carrying its cause's flagged local index until the barrier
// resolves it.
type xmsg struct {
	at   simtime.Time
	ord  uint64
	k    uint32
	kind Kind
	a, b any
}

// Parallel coordinates N lanes. Create with NewParallel, register kinds and
// effects, build the simulation across the lanes, then call Run once.
type Parallel struct {
	lanes     []*Engine
	lookahead time.Duration
	setupK    uint32
	effects   []EffectHandler
	gexec     uint64

	// Per-barrier scratch, reused across windows.
	winGidx [][]uint64 // global index assigned to each record, per lane
	winBase []uint64   // lane's execution count before this window
	pos     []int
}

// NewParallel returns a coordinator with n empty lanes.
func NewParallel(n int) *Parallel {
	if n < 1 {
		panic("eventsim: NewParallel needs at least one lane")
	}
	p := &Parallel{
		lanes:   make([]*Engine, n),
		winGidx: make([][]uint64, n),
		winBase: make([]uint64, n),
		pos:     make([]int, n),
	}
	for i := range p.lanes {
		l := New()
		l.par = p
		l.laneID = i
		l.extK = &p.setupK
		l.outbox = make([][]xmsg, n)
		p.lanes[i] = l
	}
	return p
}

// Lanes returns the number of lanes.
func (p *Parallel) Lanes() int { return len(p.lanes) }

// Lane returns lane i. Schedule a simulation object's events on the lane
// that owns it; during setup all lanes share one schedule-order counter, so
// setup calls across lanes keep their global order.
func (p *Parallel) Lane(i int) *Engine { return p.lanes[i] }

// RegisterKind installs a typed handler on every lane under one Kind.
// Register kinds in a fixed order before building the simulation, exactly as
// with a sequential engine.
func (p *Parallel) RegisterKind(h TypedHandler) Kind {
	k := p.lanes[0].RegisterKind(h)
	for _, l := range p.lanes[1:] {
		if lk := l.RegisterKind(h); lk != k {
			panic("eventsim: lanes have diverging kind tables")
		}
	}
	return k
}

// RegisterEffect installs a handler for one deferred effect kind. Handlers
// run on the coordinator goroutine, between windows, in global event order.
func (p *Parallel) RegisterEffect(h EffectHandler) EffectKind {
	if h == nil {
		panic("eventsim: RegisterEffect with nil handler")
	}
	p.effects = append(p.effects, h)
	return EffectKind(len(p.effects) - 1)
}

// Now returns the latest lane clock — after Run, the instant of the last
// event executed anywhere, matching the sequential engine's final clock.
func (p *Parallel) Now() simtime.Time {
	var t simtime.Time
	for _, l := range p.lanes {
		if l.now > t {
			t = l.now
		}
	}
	return t
}

// Processed returns the total number of events executed across lanes.
func (p *Parallel) Processed() uint64 {
	var n uint64
	for _, l := range p.lanes {
		n += l.processed
	}
	return n
}

// Run executes the simulation to completion with the given lookahead: the
// minimum delay of any cross-lane message, which every SendKind call must
// respect. It returns the number of events executed.
//
// Run may be called once; the engine does not support Stop or incremental
// deadlines in parallel mode.
func (p *Parallel) Run(lookahead time.Duration) uint64 {
	if lookahead <= 0 {
		panic("eventsim: parallel run needs positive lookahead")
	}
	p.lookahead = lookahead
	for _, l := range p.lanes {
		l.extK = nil // setup is over; lanes stamp their own schedule indices
	}

	work := make([]chan simtime.Time, len(p.lanes))
	done := make(chan struct{}, len(p.lanes))
	var wg sync.WaitGroup
	for i, l := range p.lanes {
		work[i] = make(chan simtime.Time)
		wg.Add(1)
		go func(l *Engine, ch chan simtime.Time) {
			defer wg.Done()
			for end := range ch {
				l.runWindow(end)
				done <- struct{}{}
			}
		}(l, work[i])
	}

	for {
		start := simtime.Never
		for _, l := range p.lanes {
			if len(l.events) > 0 && l.events[0].at < start {
				start = l.events[0].at
			}
		}
		if start == simtime.Never {
			break
		}
		end := start.Add(lookahead)
		for _, ch := range work {
			ch <- end
		}
		for range p.lanes {
			<-done
		}
		p.barrier()
	}
	for _, ch := range work {
		close(ch)
	}
	wg.Wait()
	return p.Processed()
}

// runWindow executes every pending event strictly before end, recording
// execution order for the barrier merge. It runs on the lane's goroutine.
func (e *Engine) runWindow(end simtime.Time) {
	e.deferPast = end
	for len(e.events) > 0 && e.events[0].at < end {
		ev := e.pop()
		e.now = ev.at
		e.processed++
		e.ord = flagLocal | e.processed
		e.k = 0
		e.recs = append(e.recs, execRec{at: ev.at, ord: ev.ord, k: ev.k})
		e.kinds[ev.kind](ev.a, ev.b)
	}
	e.deferPast = 0
}

// SendKind schedules a typed event on another lane, d after the current
// instant. It is the cross-lane analogue of AfterKind and shares the per-
// cause schedule-call counter with it, so a handler mixing local schedules
// and cross-lane sends keeps its sequential call order. d must be at least
// the run's lookahead.
func (e *Engine) SendKind(dst *Engine, d time.Duration, kind Kind, a, b any) {
	if dst == e {
		e.AfterKind(d, kind, a, b)
		return
	}
	if e.par == nil || dst.par != e.par {
		panic("eventsim: SendKind between unrelated engines")
	}
	if d < e.par.lookahead {
		panic(fmt.Sprintf("eventsim: cross-lane send delay %v below lookahead %v", d, e.par.lookahead))
	}
	k := e.k
	e.k++
	e.outbox[dst.laneID] = append(e.outbox[dst.laneID],
		xmsg{at: e.now.Add(d), ord: e.ord, k: k, kind: kind, a: a, b: b})
}

// Emit defers one effect to the coordinator: h(at, a, b) runs at the next
// barrier, after every effect of globally-earlier events and before every
// effect of globally-later ones — the exact order a sequential run would
// have produced. Only call from inside an executing event.
func (e *Engine) Emit(kind EffectKind, at simtime.Time, a, b any) {
	e.effs = append(e.effs, effectRec{ord: e.ord, kind: kind, at: at, a: a, b: b})
}

// resolve maps an ord stamp to the cause's global execution index, using the
// current window's assignments for flagged lane-local stamps.
func (p *Parallel) resolve(lane int, ord uint64) uint64 {
	if ord&flagLocal == 0 {
		return ord
	}
	return p.winGidx[lane][(ord&^flagLocal)-p.winBase[lane]-1]
}

// barrier runs between windows on the coordinator goroutine: it assigns
// global execution indices to the window's events, rewrites parked events
// and cross-lane messages with them, inserts both into the heaps, and
// applies the deferred effects in global order.
func (p *Parallel) barrier() {
	// Assign global indices by k-way merge of the per-lane execution records
	// in (at, ord, k) order. A record's flagged ord always refers to an
	// earlier record of the same lane, so it resolves to an already-assigned
	// index by the time the record can be at the merge head.
	for i, l := range p.lanes {
		p.winBase[i] = l.processed - uint64(len(l.recs))
		if cap(p.winGidx[i]) < len(l.recs) {
			p.winGidx[i] = make([]uint64, len(l.recs))
		}
		p.winGidx[i] = p.winGidx[i][:len(l.recs)]
		p.pos[i] = 0
	}
	for {
		best := -1
		var bat simtime.Time
		var bord uint64
		var bk uint32
		for i, l := range p.lanes {
			if p.pos[i] >= len(l.recs) {
				continue
			}
			r := l.recs[p.pos[i]]
			ro := p.resolve(i, r.ord)
			if best < 0 || r.at < bat ||
				(r.at == bat && (ro < bord || (ro == bord && r.k < bk))) {
				best, bat, bord, bk = i, r.at, ro, r.k
			}
		}
		if best < 0 {
			break
		}
		p.gexec++
		p.winGidx[best][p.pos[best]] = p.gexec
		p.pos[best]++
	}

	// Parked events and outbox messages were caused by this window's events;
	// rewrite their stamps to global indices and insert them.
	for i, l := range p.lanes {
		for _, ev := range l.side {
			ev.ord = p.resolve(i, ev.ord)
			l.push(ev)
		}
		l.side = l.side[:0]
	}
	for i, l := range p.lanes {
		for di := range l.outbox {
			for _, m := range l.outbox[di] {
				p.lanes[di].push(event{at: m.at, ord: p.resolve(i, m.ord), kind: m.kind, k: m.k, a: m.a, b: m.b})
			}
			l.outbox[di] = l.outbox[di][:0]
		}
	}

	// Apply deferred effects in global execution order. Each lane's log is
	// already ordered (emission order, and lane-local execution order is
	// preserved by the global one), so a stable k-way merge on the resolved
	// emitter index suffices; effects of one event stay in emission order.
	for i := range p.lanes {
		p.pos[i] = 0
	}
	for {
		best := -1
		var bord uint64
		for i, l := range p.lanes {
			if p.pos[i] >= len(l.effs) {
				continue
			}
			if ro := p.resolve(i, l.effs[p.pos[i]].ord); best < 0 || ro < bord {
				best, bord = i, ro
			}
		}
		if best < 0 {
			break
		}
		r := &p.lanes[best].effs[p.pos[best]]
		p.effects[r.kind](r.at, r.a, r.b)
		r.a, r.b = nil, nil
		p.pos[best]++
	}
	for _, l := range p.lanes {
		l.recs = l.recs[:0]
		l.effs = l.effs[:0]
	}
}
