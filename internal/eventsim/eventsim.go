// Package eventsim implements a deterministic discrete-event simulation
// engine.
//
// Events are scheduled at nanosecond-resolution virtual instants
// (simtime.Time). The engine pops events in (time, scheduling order): two
// events scheduled for the same instant run in the order they were scheduled,
// which makes simulations bit-for-bit reproducible across runs with the same
// seed.
//
// Scheduling order is not stored as one global sequence number but as the
// pair (ord, k): ord is the execution index of the event that did the
// scheduling (0 for events scheduled during setup, before the run), and k
// counts that cause's schedule calls. For events at the same instant the
// lexicographic (ord, k) order equals call order — a cause that executed
// earlier made all its schedule calls earlier — so the total order is
// unchanged, but unlike a global counter it can be reconstructed per
// partition by the conservative parallel engine (parallel.go), which is what
// makes parallel runs bit-identical to sequential ones.
//
// The engine offers two scheduling APIs:
//
//   - At/After take a closure. This is the convenient path for cold callers
//     (experiment setup, tickers); each call captures its state in a heap
//     allocation.
//   - AtKind/AfterKind take a Kind registered via RegisterKind plus two
//     payload words. Handlers are installed once per kind; the payload is
//     carried by value inside the event heap slot, so scheduling allocates
//     nothing as long as the payload words are pointer-shaped (pointers,
//     funcs, channels, maps). This is the path the packet simulator's
//     per-packet events use.
//
// Internally the queue is a monomorphic 4-ary min-heap over a flat []event
// slice: no container/heap indirection, no interface boxing per element, and
// a branching factor that keeps parent/child slots on the same cache lines.
//
// An Engine is single-goroutine: network simulation at packet granularity is
// dominated by the event heap and cache behaviour, and a single timeline
// avoids cross-goroutine nondeterminism. Multi-core scale-out is layered on
// top: Parallel (parallel.go) runs one Engine per logical process under a
// conservative window synchronization protocol that preserves the exact
// sequential event order.
package eventsim

import (
	"time"

	"github.com/netmeasure/rlir/internal/simtime"
)

// Handler is a scheduled action. It runs with the engine clock set to the
// instant it was scheduled for.
type Handler func()

// Kind identifies a typed-event handler registered with RegisterKind.
type Kind uint32

// TypedHandler executes one typed event. It receives the two payload words
// the event was scheduled with. Payloads are conventionally pointers (a
// node or port, and a packet); storing pointer-shaped values in the payload
// words performs no allocation.
type TypedHandler func(a, b any)

// kindFunc is the built-in kind backing the At/After closure API: payload
// word a holds the Handler.
const kindFunc Kind = 0

// flagLocal marks an ord value as a lane-local execution index that has not
// yet been resolved to a global one. Sequential engines never set it; in a
// Parallel lane every in-window cause carries it until the next barrier
// resolves the cause's global index. The flag occupies the top bit, so an
// unresolved ord compares after every resolved one — which is also the
// correct event order, because unresolved causes executed in the current
// window and resolved ones executed before it.
const flagLocal = uint64(1) << 63

// event is one heap slot. The payload words a and b are carried by value:
// popping an event never allocates, and dispatch goes through the engine's
// kind table rather than a captured closure.
type event struct {
	at   simtime.Time
	ord  uint64 // execution index of the scheduling cause (0 = setup)
	kind Kind
	k    uint32 // index among the cause's schedule calls
	a, b any
}

// before reports whether x orders strictly ahead of y in (at, ord, k) order.
func (x *event) before(y *event) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	if x.ord != y.ord {
		return x.ord < y.ord
	}
	return x.k < y.k
}

// Engine is a discrete-event scheduler. The zero value is not usable; create
// one with New.
type Engine struct {
	now       simtime.Time
	ord       uint64  // cause word stamped on schedule calls (execution index of the running event)
	k         uint32  // next schedule-call index of the running event
	events    []event // 4-ary min-heap ordered by (at, ord, k)
	kinds     []TypedHandler
	processed uint64
	stopped   bool

	// Parallel-lane state; nil/zero on a sequential engine.
	par       *Parallel
	laneID    int
	extK      *uint32      // shared setup counter during Parallel setup
	deferPast simtime.Time // while a window runs: schedules at/after this go to side
	side      []event      // events scheduled past the current window
	recs      []execRec    // events executed in the current window, in order
	effs      []effectRec  // effects emitted in the current window, in order
	outbox    [][]xmsg     // cross-lane messages by destination lane
}

// New returns an engine with its clock at the simulation epoch.
func New() *Engine {
	e := &Engine{}
	e.events = make([]event, 0, 1024)
	e.kinds = []TypedHandler{func(a, _ any) { a.(Handler)() }}
	return e
}

// RegisterKind installs a typed-event handler and returns its Kind. Kinds
// are engine-scoped; register them once at setup (registration order is part
// of the deterministic state, so register in a fixed order).
func (e *Engine) RegisterKind(h TypedHandler) Kind {
	if h == nil {
		panic("eventsim: RegisterKind with nil handler")
	}
	e.kinds = append(e.kinds, h)
	return Kind(len(e.kinds) - 1)
}

// Now returns the current virtual time.
func (e *Engine) Now() simtime.Time { return e.now }

// Pending returns the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.events) }

// Processed returns the total number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// At schedules fn to run at instant t. Scheduling in the past (t earlier than
// Now) panics: it would silently corrupt causality in a network simulation.
func (e *Engine) At(t simtime.Time, fn Handler) {
	e.schedule(t, kindFunc, fn, nil)
}

// After schedules fn to run d after the current instant. Negative d panics.
func (e *Engine) After(d time.Duration, fn Handler) {
	e.schedule(e.now.Add(d), kindFunc, fn, nil)
}

// AtKind schedules a typed event at instant t. Scheduling in the past
// panics. The payload words a and b are handed to the kind's handler when
// the event fires.
func (e *Engine) AtKind(t simtime.Time, k Kind, a, b any) {
	if uint32(k) >= uint32(len(e.kinds)) {
		panic("eventsim: AtKind with unregistered kind")
	}
	e.schedule(t, k, a, b)
}

// AfterKind schedules a typed event d after the current instant.
func (e *Engine) AfterKind(d time.Duration, k Kind, a, b any) {
	e.AtKind(e.now.Add(d), k, a, b)
}

func (e *Engine) schedule(t simtime.Time, kind Kind, a, b any) {
	if t < e.now {
		panic("eventsim: scheduling event in the past (" + t.String() + " < " + e.now.String() + ")")
	}
	var k uint32
	if e.extK != nil {
		// Parallel setup: one counter shared across lanes keeps the global
		// setup call order, exactly like a single engine's would.
		k = *e.extK
		*e.extK = k + 1
	} else {
		k = e.k
		e.k++
	}
	ev := event{at: t, ord: e.ord, kind: kind, k: k, a: a, b: b}
	if e.deferPast != 0 && t >= e.deferPast {
		// Parallel window: the event belongs to a later window. Its cause's
		// global index is unknown until the barrier, so park it; the barrier
		// resolves ord and pushes it.
		e.side = append(e.side, ev)
		return
	}
	e.push(ev)
}

// push sifts a new event up the 4-ary heap.
func (e *Engine) push(ev event) {
	h := append(e.events, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !ev.before(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	e.events = h
}

// pop removes and returns the minimum event, sifting the displaced tail
// element down. The vacated tail slot is zeroed so payload pointers do not
// outlive their event.
func (e *Engine) pop() event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{}
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if h[j].before(&h[m]) {
					m = j
				}
			}
			if !h[m].before(&last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	e.events = h
	return top
}

// Stop makes the currently executing Run or RunUntil call return after the
// current event finishes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// the number of events executed by this call.
func (e *Engine) Run() uint64 {
	return e.RunUntil(simtime.Never)
}

// RunUntil executes events with timestamps <= deadline, advancing the clock
// as it goes. When it returns, the clock rests at the later of its previous
// value and the deadline (or at the last executed event when the deadline is
// simtime.Never). It returns the number of events executed by this call.
func (e *Engine) RunUntil(deadline simtime.Time) uint64 {
	e.stopped = false
	var n uint64
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > deadline {
			break
		}
		ev := e.pop()
		e.now = ev.at
		e.processed++
		e.ord = e.processed
		e.k = 0
		e.kinds[ev.kind](ev.a, ev.b)
		n++
	}
	if deadline != simtime.Never && deadline > e.now && !e.stopped {
		e.now = deadline
	}
	return n
}

// Step executes exactly one event if any is pending and reports whether it
// did so.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.processed++
	e.ord = e.processed
	e.k = 0
	e.kinds[ev.kind](ev.a, ev.b)
	return true
}

// Ticker invokes fn every period, starting at start, until fn returns false.
// It is a convenience for periodic processes such as utilization sampling and
// clock resynchronization.
func (e *Engine) Ticker(start simtime.Time, period time.Duration, fn func(now simtime.Time) bool) {
	if period <= 0 {
		panic("eventsim: non-positive ticker period")
	}
	var tick Handler
	tick = func() {
		if !fn(e.now) {
			return
		}
		e.After(period, tick)
	}
	e.At(start, tick)
}
