// Package eventsim implements a deterministic discrete-event simulation
// engine.
//
// Events are closures scheduled at nanosecond-resolution virtual instants
// (simtime.Time). The engine pops events in (time, scheduling order): two
// events scheduled for the same instant run in the order they were scheduled,
// which makes simulations bit-for-bit reproducible across runs with the same
// seed.
//
// The engine is single-goroutine by design: network simulation at packet
// granularity is dominated by the event heap and cache behaviour, not by
// parallelism, and a single timeline avoids cross-goroutine nondeterminism.
package eventsim

import (
	"container/heap"
	"time"

	"github.com/netmeasure/rlir/internal/simtime"
)

// Handler is a scheduled action. It runs with the engine clock set to the
// instant it was scheduled for.
type Handler func()

type event struct {
	at  simtime.Time
	seq uint64 // FIFO tie-break among events at the same instant
	fn  Handler
}

// eventHeap is a binary min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() simtime.Time { return h[0].at }

// Engine is a discrete-event scheduler. The zero value is not usable; create
// one with New.
type Engine struct {
	now       simtime.Time
	seq       uint64
	events    eventHeap
	processed uint64
	stopped   bool
}

// New returns an engine with its clock at the simulation epoch.
func New() *Engine {
	e := &Engine{}
	e.events = make(eventHeap, 0, 1024)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() simtime.Time { return e.now }

// Pending returns the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.events) }

// Processed returns the total number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// At schedules fn to run at instant t. Scheduling in the past (t earlier than
// Now) panics: it would silently corrupt causality in a network simulation.
func (e *Engine) At(t simtime.Time, fn Handler) {
	if t < e.now {
		panic("eventsim: scheduling event in the past (" + t.String() + " < " + e.now.String() + ")")
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current instant. Negative d panics.
func (e *Engine) After(d time.Duration, fn Handler) {
	e.At(e.now.Add(d), fn)
}

// Stop makes the currently executing Run or RunUntil call return after the
// current event finishes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// the number of events executed by this call.
func (e *Engine) Run() uint64 {
	return e.RunUntil(simtime.Never)
}

// RunUntil executes events with timestamps <= deadline, advancing the clock
// as it goes. When it returns, the clock rests at the later of its previous
// value and the deadline (or at the last executed event when the deadline is
// simtime.Never). It returns the number of events executed by this call.
func (e *Engine) RunUntil(deadline simtime.Time) uint64 {
	e.stopped = false
	var n uint64
	for len(e.events) > 0 && !e.stopped {
		if e.events.peek() > deadline {
			break
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
		n++
	}
	e.processed += n
	if deadline != simtime.Never && deadline > e.now && !e.stopped {
		e.now = deadline
	}
	return n
}

// Step executes exactly one event if any is pending and reports whether it
// did so.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	ev.fn()
	e.processed++
	return true
}

// Ticker invokes fn every period, starting at start, until fn returns false.
// It is a convenience for periodic processes such as utilization sampling and
// clock resynchronization.
func (e *Engine) Ticker(start simtime.Time, period time.Duration, fn func(now simtime.Time) bool) {
	if period <= 0 {
		panic("eventsim: non-positive ticker period")
	}
	var tick Handler
	tick = func() {
		if !fn(e.now) {
			return
		}
		e.After(period, tick)
	}
	e.At(start, tick)
}
