package eventsim

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/simtime"
)

// TestPropertyScheduleOrder is the engine's ordering contract as a property
// test: any random interleaving of At/After/AtKind schedules — including
// duplicate instants — executes in exact (time, scheduling order). The
// expected order is computed independently with a stable sort, so the test
// does not depend on any heap implementation detail.
func TestPropertyScheduleOrder(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial + 1)))
		e := New()
		type sched struct {
			at simtime.Time
			id int
		}
		var planned []sched
		var ran []int
		kRec := e.RegisterKind(func(a, _ any) { ran = append(ran, *a.(*int)) })

		n := 50 + rng.Intn(200)
		ids := make([]int, n)
		for i := 0; i < n; i++ {
			ids[i] = i
			// A coarse instant grid forces plenty of exact ties.
			at := simtime.Time(rng.Int63n(64) * int64(time.Microsecond))
			planned = append(planned, sched{at: at, id: i})
			switch rng.Intn(3) {
			case 0:
				id := i
				e.At(at, func() { ran = append(ran, id) })
			case 1:
				id := i
				e.After(at.Sub(e.Now()), func() { ran = append(ran, id) })
			default:
				e.AtKind(at, kRec, &ids[i], nil)
			}
		}
		e.Run()

		sort.SliceStable(planned, func(i, j int) bool { return planned[i].at < planned[j].at })
		if len(ran) != len(planned) {
			t.Fatalf("trial %d: executed %d events, scheduled %d", trial, len(ran), len(planned))
		}
		for i, s := range planned {
			if ran[i] != s.id {
				t.Fatalf("trial %d: position %d ran event %d, want %d (at %v)",
					trial, i, ran[i], s.id, s.at)
			}
		}
	}
}

// TestPropertyFIFOAmongTiesAcrossAPIs verifies the FIFO tie-break holds when
// closure and typed events are interleaved at one instant: scheduling order,
// not scheduling API, decides execution order.
func TestPropertyFIFOAmongTiesAcrossAPIs(t *testing.T) {
	e := New()
	var ran []int
	ids := make([]int, 200)
	k := e.RegisterKind(func(a, _ any) { ran = append(ran, *a.(*int)) })
	at := simtime.FromSeconds(1)
	for i := range ids {
		ids[i] = i
		if i%2 == 0 {
			id := i
			e.At(at, func() { ran = append(ran, id) })
		} else {
			e.AtKind(at, k, &ids[i], nil)
		}
	}
	e.Run()
	for i, got := range ran {
		if got != i {
			t.Fatalf("tie order broken at %d: %v...", i, ran[:i+1])
		}
	}
}

// TestPropertyStopInsideRunUntil stops the engine at random points inside
// RunUntil and checks the invariants the callers rely on: the clock rests at
// the last executed event, no event past the stop has run, every unexecuted
// event is still queued, and resuming executes the remainder in order.
func TestPropertyStopInsideRunUntil(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial + 100)))
		e := New()
		const n = 120
		stopAfter := 1 + rng.Intn(n-1)
		var ran []simtime.Time
		times := make([]simtime.Time, n)
		for i := 0; i < n; i++ {
			times[i] = simtime.Time(rng.Int63n(1_000_000))
			at := times[i]
			e.At(at, func() {
				ran = append(ran, at)
				if len(ran) == stopAfter {
					e.Stop()
				}
			})
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

		deadline := simtime.Time(2_000_000)
		executed := e.RunUntil(deadline)
		if int(executed) != stopAfter {
			t.Fatalf("trial %d: RunUntil executed %d, want %d (Stop)", trial, executed, stopAfter)
		}
		if e.Pending() != n-stopAfter {
			t.Fatalf("trial %d: pending %d after Stop, want %d", trial, e.Pending(), n-stopAfter)
		}
		if e.Now() != ran[len(ran)-1] {
			t.Fatalf("trial %d: clock %v after Stop, want last executed instant %v",
				trial, e.Now(), ran[len(ran)-1])
		}
		if e.Now() != times[stopAfter-1] {
			t.Fatalf("trial %d: stopped clock %v, want %v", trial, e.Now(), times[stopAfter-1])
		}
		// Resume: the remainder must run, in order, and the clock must then
		// advance to the deadline.
		e.RunUntil(deadline)
		if len(ran) != n || e.Pending() != 0 {
			t.Fatalf("trial %d: resume ran %d total (pending %d), want %d/0",
				trial, len(ran), e.Pending(), n)
		}
		for i := range ran {
			if ran[i] != times[i] {
				t.Fatalf("trial %d: position %d ran %v, want %v", trial, i, ran[i], times[i])
			}
		}
		if e.Now() != deadline {
			t.Fatalf("trial %d: final clock %v, want deadline %v", trial, e.Now(), deadline)
		}
	}
}

// TestTypedEventPayload checks that both payload words reach the handler.
func TestTypedEventPayload(t *testing.T) {
	e := New()
	type node struct{ hits int }
	type pkt struct{ id int }
	n1, p1 := &node{}, &pkt{id: 7}
	var gotPkt *pkt
	k := e.RegisterKind(func(a, b any) {
		a.(*node).hits++
		gotPkt = b.(*pkt)
	})
	e.AfterKind(time.Millisecond, k, n1, p1)
	e.Run()
	if n1.hits != 1 || gotPkt != p1 {
		t.Fatalf("typed handler saw hits=%d pkt=%v, want 1/%v", n1.hits, gotPkt, p1)
	}
}

// TestTypedEventPastPanics mirrors the closure API's causality check.
func TestTypedEventPastPanics(t *testing.T) {
	e := New()
	k := e.RegisterKind(func(a, b any) {})
	e.At(simtime.FromSeconds(1), func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling typed event in the past")
			}
		}()
		e.AtKind(simtime.Zero, k, nil, nil)
	})
	e.Run()
}

// TestUnregisteredKindPanics rejects kinds the engine never issued.
func TestUnregisteredKindPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unregistered kind")
		}
	}()
	e.AtKind(simtime.Zero, Kind(99), nil, nil)
}

// TestTypedSchedulingZeroAlloc is the engine half of the PR's headline
// claim: once the heap has grown, scheduling and draining typed events
// allocates nothing.
func TestTypedSchedulingZeroAlloc(t *testing.T) {
	e := New()
	var fired int
	target := &fired
	k := e.RegisterKind(func(a, _ any) { *a.(*int)++ })
	// Warm the heap past any growth the measured loop could need.
	for i := 0; i < 2048; i++ {
		e.AfterKind(time.Duration(i), k, target, nil)
	}
	e.Run()
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 1000; i++ {
			e.AfterKind(time.Duration(i), k, target, nil)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("typed schedule+run allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkTypedScheduleAndRun is the closure benchmark's typed twin.
func BenchmarkTypedScheduleAndRun(b *testing.B) {
	e := New()
	var sink int
	k := e.RegisterKind(func(a, _ any) { *a.(*int)++ })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.AfterKind(time.Duration(i%1000)*time.Nanosecond, k, &sink, nil)
		if e.Pending() > 1024 {
			e.Run()
		}
	}
	e.Run()
}
