package eventsim

import (
	"math/rand"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/simtime"
)

func TestRunExecutesInTimeOrder(t *testing.T) {
	e := New()
	var got []int
	e.At(simtime.FromSeconds(3), func() { got = append(got, 3) })
	e.At(simtime.FromSeconds(1), func() { got = append(got, 1) })
	e.At(simtime.FromSeconds(2), func() { got = append(got, 2) })
	if n := e.Run(); n != 3 {
		t.Fatalf("Run = %d events, want 3", n)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("order = %v, want [1 2 3]", got)
		}
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	e := New()
	var got []int
	at := simtime.FromSeconds(1)
	for i := 0; i < 100; i++ {
		i := i
		e.At(at, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 100; i++ {
		if got[i] != i {
			t.Fatalf("events at equal instants ran out of scheduling order at %d: %v...", i, got[:i+1])
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := New()
	var sawAt simtime.Time
	e.After(5*time.Millisecond, func() { sawAt = e.Now() })
	e.Run()
	if sawAt != simtime.FromDuration(5*time.Millisecond) {
		t.Fatalf("handler saw clock %v, want 5ms", sawAt)
	}
	if e.Now() != sawAt {
		t.Fatalf("final clock %v, want %v", e.Now(), sawAt)
	}
}

func TestSchedulingInsideHandler(t *testing.T) {
	e := New()
	var hits int
	var chain Handler
	chain = func() {
		hits++
		if hits < 10 {
			e.After(time.Microsecond, chain)
		}
	}
	e.At(simtime.Zero, chain)
	e.Run()
	if hits != 10 {
		t.Fatalf("hits = %d, want 10", hits)
	}
	if want := simtime.FromDuration(9 * time.Microsecond); e.Now() != want {
		t.Fatalf("clock = %v, want %v", e.Now(), want)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var hits int
	for i := 1; i <= 10; i++ {
		e.At(simtime.FromSeconds(float64(i)), func() { hits++ })
	}
	n := e.RunUntil(simtime.FromSeconds(5))
	if n != 5 || hits != 5 {
		t.Fatalf("RunUntil executed %d (hits %d), want 5", n, hits)
	}
	if e.Now() != simtime.FromSeconds(5) {
		t.Fatalf("clock = %v, want 5s", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
	// Resume to completion.
	e.Run()
	if hits != 10 {
		t.Fatalf("hits after resume = %d, want 10", hits)
	}
}

func TestRunUntilAdvancesClockToDeadlineWhenIdle(t *testing.T) {
	e := New()
	e.RunUntil(simtime.FromSeconds(2))
	if e.Now() != simtime.FromSeconds(2) {
		t.Fatalf("clock = %v, want 2s", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := New()
	var hits int
	for i := 0; i < 10; i++ {
		e.After(time.Duration(i)*time.Millisecond, func() {
			hits++
			if hits == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if hits != 3 {
		t.Fatalf("hits = %d, want 3 after Stop", hits)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(simtime.FromSeconds(1), func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(simtime.Zero, func() {})
	})
	e.Run()
}

func TestStep(t *testing.T) {
	e := New()
	var hits int
	e.After(time.Second, func() { hits++ })
	e.After(2*time.Second, func() { hits++ })
	if !e.Step() || hits != 1 {
		t.Fatalf("first Step: hits = %d, want 1", hits)
	}
	if !e.Step() || hits != 2 {
		t.Fatalf("second Step: hits = %d, want 2", hits)
	}
	if e.Step() {
		t.Fatal("Step on empty queue should report false")
	}
}

func TestTicker(t *testing.T) {
	e := New()
	var ticks []simtime.Time
	e.Ticker(simtime.FromSeconds(1), time.Second, func(now simtime.Time) bool {
		ticks = append(ticks, now)
		return len(ticks) < 4
	})
	e.Run()
	if len(ticks) != 4 {
		t.Fatalf("ticks = %d, want 4", len(ticks))
	}
	for i, tk := range ticks {
		if want := simtime.FromSeconds(float64(i + 1)); tk != want {
			t.Fatalf("tick %d at %v, want %v", i, tk, want)
		}
	}
}

func TestProcessedCount(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.After(time.Duration(i), func() {})
	}
	e.Run()
	if e.Processed() != 5 {
		t.Fatalf("Processed = %d, want 5", e.Processed())
	}
}

// TestDeterminismUnderRandomLoad schedules a pseudo-random workload twice and
// requires identical execution traces: the engine is the foundation of every
// reproducibility claim in this repository.
func TestDeterminismUnderRandomLoad(t *testing.T) {
	run := func(seed int64) []simtime.Time {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var trace []simtime.Time
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, e.Now())
			if depth > 6 {
				return
			}
			for i := 0; i < rng.Intn(3); i++ {
				d := time.Duration(rng.Intn(1000)) * time.Nanosecond
				e.After(d, func() { spawn(depth + 1) })
			}
		}
		for i := 0; i < 50; i++ {
			e.At(simtime.Time(rng.Int63n(1_000_000)), func() { spawn(0) })
		}
		e.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%1000)*time.Nanosecond, func() {})
		if e.Pending() > 1024 {
			e.Run()
		}
	}
	e.Run()
}
