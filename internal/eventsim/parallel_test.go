package eventsim

import (
	"reflect"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/simtime"
)

// The parallel engine's one non-negotiable property: every run executes
// events in exactly the sequential engine's global order, including ties at
// equal timestamps. The tests drive both engines with the same adversarial
// schedule — times quantized to a coarse grid so that same-instant events
// pile up within and across lanes — and compare the full execution logs.

const (
	tieLanes     = 4                      // virtual lanes in the plan
	tieLookahead = 1000 * time.Nanosecond // min cross-lane delay
	tieDepth     = 7
)

// tieNode is one planned event: a unique label, its remaining depth, and
// the virtual lane it runs on (set by whoever scheduled it).
type tieNode struct {
	label uint64
	depth int
	home  int
}

// tieEntry is one executed event as observed by the log.
type tieEntry struct {
	label uint64
	at    simtime.Time
}

// tieMix is SplitMix64; the plan derives everything from hashed labels so
// sequential and parallel runs compute identical schedules.
func tieMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// tieActions derives the schedule calls an event makes: for each child a
// target virtual lane and a delay. Same-lane delays may be zero (same
// instant); cross-lane delays are at least the lookahead. Delays land on a
// quarter-lookahead grid to force equal-timestamp collisions.
func tieActions(seed uint64, nd *tieNode, visit func(child *tieNode, lane int, d time.Duration)) {
	if nd.depth <= 0 {
		return
	}
	h := tieMix(seed ^ nd.label)
	n := int(h % 4)
	for c := 0; c < n; c++ {
		hc := tieMix(h + uint64(c))
		lane := int(hc % tieLanes)
		q := tieLookahead / 4
		var d time.Duration
		if lane == nd.home {
			d = time.Duration(hc>>8%9) * q // 0 .. 2*lookahead
		} else {
			d = tieLookahead + time.Duration(hc>>8%5)*q // lookahead .. 2.25*lookahead
		}
		visit(&tieNode{label: tieMix(nd.label + uint64(c) + 1), depth: nd.depth - 1, home: lane}, lane, d)
	}
}

// tieRoots plans the setup-time injections: root events on a coarse grid
// across all virtual lanes.
func tieRoots(seed uint64, visit func(nd *tieNode, lane int, at simtime.Time)) {
	for i := 0; i < 24; i++ {
		h := tieMix(seed + 0xABCD + uint64(i))
		lane := int(h % tieLanes)
		at := simtime.Time(int64(h>>8%6) * int64(tieLookahead/2))
		visit(&tieNode{label: tieMix(seed ^ uint64(i)), depth: tieDepth, home: lane}, lane, at)
	}
}

// runTieSequential executes the plan on one sequential engine.
func runTieSequential(seed uint64) []tieEntry {
	var log []tieEntry
	eng := New()
	var kind Kind
	kind = eng.RegisterKind(func(a, _ any) {
		nd := a.(*tieNode)
		log = append(log, tieEntry{nd.label, eng.Now()})
		tieActions(seed, nd, func(child *tieNode, lane int, d time.Duration) {
			_ = lane // one timeline: lane only affects delays, already derived
			eng.AfterKind(d, kind, child, nil)
		})
	})
	tieRoots(seed, func(nd *tieNode, lane int, at simtime.Time) {
		_ = lane
		eng.AtKind(at, kind, nd, nil)
	})
	eng.Run()
	return log
}

// runTieParallel executes the plan on a Parallel with the given partition
// count, mapping virtual lanes onto real ones. The log is assembled from
// deferred effects, i.e. it is the coordinator's global order.
func runTieParallel(seed uint64, partitions int) []tieEntry {
	var log []tieEntry
	pe := NewParallel(partitions)
	logK := pe.RegisterEffect(func(at simtime.Time, a, _ any) {
		log = append(log, tieEntry{a.(*tieNode).label, at})
	})
	var kind Kind
	kind = pe.RegisterKind(func(a, b any) {
		nd := a.(*tieNode)
		lane := b.(*Engine)
		lane.Emit(logK, lane.Now(), nd, nil)
		tieActions(seed, nd, func(child *tieNode, vlane int, d time.Duration) {
			dst := pe.Lane(vlane % partitions)
			lane.SendKind(dst, d, kind, child, dst)
		})
	})
	tieRoots(seed, func(nd *tieNode, vlane int, at simtime.Time) {
		l := pe.Lane(vlane % partitions)
		l.AtKind(at, kind, nd, l)
	})
	pe.Run(tieLookahead)
	return log
}

// TestParallelTieOrder is the satellite property test: equal-timestamp
// events across partitions dequeue in the same global order as the
// sequential engine, over seeded adversarial schedules at partitions 1, 2
// and 4.
func TestParallelTieOrder(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		want := runTieSequential(seed)
		ties := 0
		for i := 1; i < len(want); i++ {
			if want[i].at == want[i-1].at {
				ties++
			}
		}
		if len(want) < 50 || ties == 0 {
			t.Fatalf("seed %d: degenerate plan (%d events, %d ties) — adversarial schedule lost its teeth", seed, len(want), ties)
		}
		for _, parts := range []int{1, 2, 4} {
			got := runTieParallel(seed, parts)
			if !reflect.DeepEqual(got, want) {
				n := len(got)
				if len(want) < n {
					n = len(want)
				}
				for i := 0; i < n; i++ {
					if got[i] != want[i] {
						t.Fatalf("seed %d partitions %d: order diverges at event %d: got %+v, want %+v",
							seed, parts, i, got[i], want[i])
					}
				}
				t.Fatalf("seed %d partitions %d: log length %d, want %d", seed, parts, len(got), len(want))
			}
		}
	}
}

// TestParallelSendBelowLookahead pins the conservative-sync safety check: a
// cross-lane message below the lookahead would let an event invalidate a
// neighbour's already-executed window, so SendKind must refuse it.
func TestParallelSendBelowLookahead(t *testing.T) {
	pe := NewParallel(2)
	var kind Kind
	kind = pe.RegisterKind(func(a, _ any) {
		lane := a.(*Engine)
		defer func() {
			if recover() == nil {
				t.Error("SendKind below lookahead did not panic")
			}
			lane.Stop()
		}()
		lane.SendKind(pe.Lane(1), tieLookahead/2, kind, nil, nil)
	})
	pe.Lane(0).AtKind(0, kind, pe.Lane(0), nil)
	defer func() { recover() }() // the panic propagates out of the lane goroutine's window
	pe.Run(tieLookahead)
}
