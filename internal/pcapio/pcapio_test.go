package pcapio

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
	"github.com/netmeasure/rlir/internal/trace"
)

func recs() []trace.Rec {
	tcp := packet.FlowKey{Src: packet.MustParseAddr("10.1.0.5"), Dst: packet.MustParseAddr("10.2.0.9"), SrcPort: 443, DstPort: 51000, Proto: packet.ProtoTCP}
	udp := packet.FlowKey{Src: packet.MustParseAddr("172.16.1.1"), Dst: packet.MustParseAddr("10.2.0.1"), SrcPort: 53, DstPort: 9999, Proto: packet.ProtoUDP}
	return []trace.Rec{
		{At: simtime.FromDuration(time.Microsecond), Key: tcp, Size: 1500},
		{At: simtime.FromDuration(2 * time.Microsecond), Key: udp, Size: 64},
		{At: simtime.FromSeconds(1.5), Key: tcp, Size: 576},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}

	r := NewReader(&buf)
	got := trace.Collect(r, 0)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	want := recs()
	if len(got) != len(want) {
		t.Fatalf("read %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestGlobalHeaderFields(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(recs()[0]); err != nil {
		t.Fatal(err)
	}
	h := buf.Bytes()[:24]
	if binary.LittleEndian.Uint32(h[0:4]) != 0xA1B23C4D {
		t.Fatal("wrong magic")
	}
	if binary.LittleEndian.Uint16(h[4:6]) != 2 || binary.LittleEndian.Uint16(h[6:8]) != 4 {
		t.Fatal("wrong version")
	}
	if binary.LittleEndian.Uint32(h[20:24]) != 1 {
		t.Fatal("wrong link type")
	}
}

func TestTimestampSplitAcrossSecond(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	at := simtime.Time(3*1e9 + 999_999_999) // 3.999999999s
	if err := w.Write(trace.Rec{At: at, Key: recs()[0].Key, Size: 100}); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	got, ok := r.Next()
	if !ok || got.At != at {
		t.Fatalf("At = %v, want %v (ok=%v)", got.At, at, ok)
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	frame := buildFrame(recs()[0])
	ip := frame[ethHeaderLen : ethHeaderLen+ipv4HeaderLen]
	// Recompute over the header with the stored checksum in place; a valid
	// header sums to 0xFFFF.
	var sum uint32
	for i := 0; i+1 < len(ip); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ip[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	if uint16(sum) != 0xFFFF {
		t.Fatalf("checksum invalid: folded sum %#04x", uint16(sum))
	}
}

func TestSmallPacketStillCarriesTuple(t *testing.T) {
	// A 64-byte UDP frame has room for all headers (14+20+8 = 42).
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := recs()[1]
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	got, ok := r.Next()
	if !ok || got.Key != rec.Key || got.Size != 64 {
		t.Fatalf("got %+v ok=%v", got, ok)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("this is not a pcap file at all....")))
	if _, ok := r.Next(); ok {
		t.Fatal("garbage decoded")
	}
	if r.Err() != ErrBadMagic {
		t.Fatalf("Err = %v", r.Err())
	}
}

func TestReaderRejectsMicrosecondPcap(t *testing.T) {
	var h [24]byte
	binary.LittleEndian.PutUint32(h[0:4], 0xA1B2C3D4) // microsecond magic
	r := NewReader(bytes.NewReader(h[:]))
	if _, ok := r.Next(); ok || r.Err() != ErrBadMagic {
		t.Fatalf("ok=%v err=%v", ok, r.Err())
	}
}

func TestReaderRejectsWrongLinkType(t *testing.T) {
	var h [24]byte
	binary.LittleEndian.PutUint32(h[0:4], magicNanos)
	binary.LittleEndian.PutUint32(h[20:24], 101) // RAW
	r := NewReader(bytes.NewReader(h[:]))
	if _, ok := r.Next(); ok || r.Err() != ErrBadLinkType {
		t.Fatalf("ok=%v err=%v", ok, r.Err())
	}
}

func TestReaderTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(recs()[0]); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-10]
	r := NewReader(bytes.NewReader(data))
	if _, ok := r.Next(); ok {
		t.Fatal("truncated frame decoded")
	}
	if r.Err() == nil {
		t.Fatal("expected error")
	}
}

func TestEmptyStreamCleanEOF(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w // header written lazily; empty stream = no header
	r := NewReader(&buf)
	if _, ok := r.Next(); ok {
		t.Fatal("empty stream decoded")
	}
}

func TestGeneratedTraceThroughPcap(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.Duration = 10 * time.Millisecond
	orig := trace.Collect(trace.NewGenerator(cfg), 0)

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range orig {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	back := trace.Collect(r, 0)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip %d != %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("record %d: %+v != %+v", i, back[i], orig[i])
		}
	}
}
