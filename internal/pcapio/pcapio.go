// Package pcapio reads and writes classic libpcap capture files (stdlib
// only) so synthetic traces can be inspected with tcpdump/Wireshark and
// externally captured workloads can be replayed through the simulator.
//
// Only what the trace pipeline needs is implemented: nanosecond-resolution
// classic pcap (magic 0xa1b23c4d), LINKTYPE_ETHERNET, and minimal
// Ethernet/IPv4/TCP|UDP framing carrying the 5-tuple. Payload bytes are
// zero-filled padding: the simulator cares about timing, sizes and flow
// identity, not application bytes.
package pcapio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
	"github.com/netmeasure/rlir/internal/trace"
)

const (
	magicNanos   = 0xA1B23C4D
	versionMajor = 2
	versionMinor = 4
	linkEthernet = 1
	// snapLen is the capture length we declare; headers we synthesize are
	// far smaller.
	snapLen = 262144

	ethHeaderLen  = 14
	ipv4HeaderLen = 20
	tcpHeaderLen  = 20
	udpHeaderLen  = 8
)

// ErrBadMagic reports a non-pcap or unsupported-variant file.
var ErrBadMagic = errors.New("pcapio: not a nanosecond classic pcap file")

// ErrBadLinkType reports a pcap whose link layer we cannot parse.
var ErrBadLinkType = errors.New("pcapio: unsupported link type")

// Writer emits trace records as a pcap stream.
type Writer struct {
	w     io.Writer
	began bool
	n     uint64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

func (pw *Writer) writeHeader() error {
	var h [24]byte
	binary.LittleEndian.PutUint32(h[0:4], magicNanos)
	binary.LittleEndian.PutUint16(h[4:6], versionMajor)
	binary.LittleEndian.PutUint16(h[6:8], versionMinor)
	// thiszone, sigfigs zero.
	binary.LittleEndian.PutUint32(h[16:20], snapLen)
	binary.LittleEndian.PutUint32(h[20:24], linkEthernet)
	_, err := pw.w.Write(h[:])
	return err
}

// headerLen returns the bytes of synthesized framing for a record.
func headerLen(proto packet.Proto) int {
	switch proto {
	case packet.ProtoUDP:
		return ethHeaderLen + ipv4HeaderLen + udpHeaderLen
	default:
		return ethHeaderLen + ipv4HeaderLen + tcpHeaderLen
	}
}

// Write appends one record as a pcap packet. The captured frame is exactly
// rec.Size bytes (padded with zeros past the synthesized headers); if
// rec.Size is smaller than the headers, the frame is truncated to rec.Size
// bytes but the original length still reports rec.Size.
func (pw *Writer) Write(rec trace.Rec) error {
	if !pw.began {
		if err := pw.writeHeader(); err != nil {
			return err
		}
		pw.began = true
	}
	frame := buildFrame(rec)
	capLen := len(frame)

	var ph [16]byte
	ns := int64(rec.At)
	binary.LittleEndian.PutUint32(ph[0:4], uint32(ns/1e9))
	binary.LittleEndian.PutUint32(ph[4:8], uint32(ns%1e9))
	binary.LittleEndian.PutUint32(ph[8:12], uint32(capLen))
	binary.LittleEndian.PutUint32(ph[12:16], uint32(rec.Size))
	if _, err := pw.w.Write(ph[:]); err != nil {
		return err
	}
	if _, err := pw.w.Write(frame); err != nil {
		return err
	}
	pw.n++
	return nil
}

// Count returns packets written.
func (pw *Writer) Count() uint64 { return pw.n }

// buildFrame synthesizes Ethernet+IPv4+L4 framing carrying rec's 5-tuple,
// padded or truncated to rec.Size bytes.
func buildFrame(rec trace.Rec) []byte {
	hl := headerLen(rec.Key.Proto)
	size := rec.Size
	buf := make([]byte, max(hl, size))

	// Ethernet: synthetic locally administered MACs derived from the IPs.
	copy(buf[0:6], macFor(rec.Key.Dst))
	copy(buf[6:12], macFor(rec.Key.Src))
	binary.BigEndian.PutUint16(buf[12:14], 0x0800)

	// IPv4.
	ip := buf[ethHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	ipTotal := size - ethHeaderLen
	if ipTotal < ipv4HeaderLen {
		ipTotal = len(buf) - ethHeaderLen
	}
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipTotal))
	ip[8] = 64 // TTL
	ip[9] = byte(rec.Key.Proto)
	binary.BigEndian.PutUint32(ip[12:16], uint32(rec.Key.Src))
	binary.BigEndian.PutUint32(ip[16:20], uint32(rec.Key.Dst))
	binary.BigEndian.PutUint16(ip[10:12], ipv4Checksum(ip[:ipv4HeaderLen]))

	// L4.
	l4 := ip[ipv4HeaderLen:]
	binary.BigEndian.PutUint16(l4[0:2], rec.Key.SrcPort)
	binary.BigEndian.PutUint16(l4[2:4], rec.Key.DstPort)
	if rec.Key.Proto == packet.ProtoUDP {
		binary.BigEndian.PutUint16(l4[4:6], uint16(ipTotal-ipv4HeaderLen))
	} else {
		l4[12] = 0x50 // data offset 5 words
	}
	return buf[:max(hl, min(size, len(buf)))]
}

func macFor(a packet.Addr) []byte {
	return []byte{0x02, 0x00, byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

func ipv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// Reader parses a pcap stream produced by Writer (or any nanosecond classic
// pcap of Ethernet/IPv4 traffic) back into trace records.
type Reader struct {
	r     io.Reader
	began bool
	err   error
	n     uint64
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next implements trace.Source.
func (pr *Reader) Next() (trace.Rec, bool) {
	if pr.err != nil {
		return trace.Rec{}, false
	}
	if !pr.began {
		var h [24]byte
		if _, err := io.ReadFull(pr.r, h[:]); err != nil {
			pr.err = ErrBadMagic
			return trace.Rec{}, false
		}
		if binary.LittleEndian.Uint32(h[0:4]) != magicNanos {
			pr.err = ErrBadMagic
			return trace.Rec{}, false
		}
		if binary.LittleEndian.Uint32(h[20:24]) != linkEthernet {
			pr.err = ErrBadLinkType
			return trace.Rec{}, false
		}
		pr.began = true
	}
	var ph [16]byte
	if _, err := io.ReadFull(pr.r, ph[:]); err != nil {
		if err != io.EOF {
			pr.err = fmt.Errorf("pcapio: truncated packet header: %w", err)
		}
		return trace.Rec{}, false
	}
	sec := binary.LittleEndian.Uint32(ph[0:4])
	nsec := binary.LittleEndian.Uint32(ph[4:8])
	capLen := binary.LittleEndian.Uint32(ph[8:12])
	origLen := binary.LittleEndian.Uint32(ph[12:16])
	if capLen > snapLen {
		pr.err = fmt.Errorf("pcapio: capture length %d exceeds snaplen", capLen)
		return trace.Rec{}, false
	}
	frame := make([]byte, capLen)
	if _, err := io.ReadFull(pr.r, frame); err != nil {
		pr.err = fmt.Errorf("pcapio: truncated frame: %w", err)
		return trace.Rec{}, false
	}
	key, err := parseFrame(frame)
	if err != nil {
		pr.err = err
		return trace.Rec{}, false
	}
	pr.n++
	return trace.Rec{
		At:   simtime.Time(int64(sec)*1e9 + int64(nsec)),
		Key:  key,
		Size: int(origLen),
	}, true
}

// parseFrame extracts the 5-tuple from an Ethernet/IPv4/TCP|UDP frame.
func parseFrame(frame []byte) (packet.FlowKey, error) {
	var key packet.FlowKey
	if len(frame) < ethHeaderLen+ipv4HeaderLen {
		return key, fmt.Errorf("pcapio: frame too short for IPv4 (%d bytes)", len(frame))
	}
	if et := binary.BigEndian.Uint16(frame[12:14]); et != 0x0800 {
		return key, fmt.Errorf("pcapio: non-IPv4 ethertype %#04x", et)
	}
	ip := frame[ethHeaderLen:]
	ihl := int(ip[0]&0x0F) * 4
	if ip[0]>>4 != 4 || ihl < ipv4HeaderLen || len(ip) < ihl {
		return key, fmt.Errorf("pcapio: malformed IPv4 header")
	}
	key.Proto = packet.Proto(ip[9])
	key.Src = packet.Addr(binary.BigEndian.Uint32(ip[12:16]))
	key.Dst = packet.Addr(binary.BigEndian.Uint32(ip[16:20]))
	l4 := ip[ihl:]
	if len(l4) >= 4 {
		key.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		key.DstPort = binary.BigEndian.Uint16(l4[2:4])
	}
	return key, nil
}

// Err returns the first error encountered, nil on clean EOF.
func (pr *Reader) Err() error { return pr.err }

// Count returns packets read.
func (pr *Reader) Count() uint64 { return pr.n }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
