package service

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/swp"
)

// Client is an exporter-side connection to a running service: it batches
// samples and records, encodes them with the collector wire codec, and
// writes frames to the socket — directly, or through an swp sender when the
// connection is reliable. It is what a router's export path (or
// cmd/loadgen) runs. A Client is single-goroutine state, like runner.Sink;
// concurrency comes from running one Client per connection.
type Client struct {
	conn  net.Conn
	w     io.Writer // conn, or the swp sender in reliable mode
	snd   *swp.Sender
	buf   []collector.Sample
	wire  []byte
	batch int
}

// DefaultClientBatch is the per-frame sample batch size.
const DefaultClientBatch = 256

// DialOptions configures DialWith. The zero value of every field selects a
// default, so callers set only what they need.
type DialOptions struct {
	// Network ("tcp" or "unix", default "tcp") and Addr name the service
	// ingest listener.
	Network string
	Addr    string
	// Batch is the per-frame sample batch size (<= 0 selects
	// DefaultClientBatch).
	Batch int
	// ConnectTimeout bounds each dial attempt (default 10s).
	ConnectTimeout time.Duration
	// Attempts bounds how many times to dial before giving up (default 1
	// — no retry). Between failures the dialer sleeps an exponentially
	// growing backoff with ±25% jitter, so a fleet of exporters starting
	// before their service does not reconnect in lockstep.
	Attempts int
	// Backoff is the initial retry delay (default 200ms), doubling per
	// failure up to MaxBackoff (default 5s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Reliable selects the swp framing: frames travel in sequence-numbered
	// segments, acknowledged and retransmitted, and survive a lossy path.
	Reliable bool
	// Transport tunes the reliable connection (zero value = swp defaults,
	// which match what the service's receiver expects).
	Transport swp.Config
	// Impair, when non-nil, interposes a seeded loss model on the
	// reliable connection's outbound segments — cmd/loadgen's -loss soak.
	Impair *swp.ImpairConfig
}

func (o DialOptions) withDefaults() DialOptions {
	if o.Network == "" {
		o.Network = "tcp"
	}
	if o.ConnectTimeout <= 0 {
		o.ConnectTimeout = 10 * time.Second
	}
	if o.Attempts <= 0 {
		o.Attempts = 1
	}
	if o.Backoff <= 0 {
		o.Backoff = 200 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	return o
}

// Dial connects to a service ingest listener with one attempt and raw
// framing. network is "tcp" or "unix"; batch <= 0 selects
// DefaultClientBatch.
func Dial(network, addr string, batch int) (*Client, error) {
	return DialWith(DialOptions{Network: network, Addr: addr, Batch: batch})
}

// DialWith connects to a service ingest listener per o: bounded dial
// attempts with exponential backoff and jitter, then raw or reliable
// framing on the established connection.
func DialWith(o DialOptions) (*Client, error) {
	o = o.withDefaults()
	backoff := o.Backoff
	var lastErr error
	for attempt := 1; attempt <= o.Attempts; attempt++ {
		conn, err := net.DialTimeout(o.Network, o.Addr, o.ConnectTimeout)
		if err == nil {
			if o.Reliable {
				return NewReliableClient(conn, o.Batch, o.Transport, o.Impair), nil
			}
			return NewClient(conn, o.Batch), nil
		}
		lastErr = err
		if attempt == o.Attempts {
			break
		}
		// Full jitter on ±25% of the backoff.
		jitter := time.Duration(rand.Int63n(int64(backoff)/2+1)) - backoff/4
		time.Sleep(backoff + jitter)
		backoff *= 2
		if backoff > o.MaxBackoff {
			backoff = o.MaxBackoff
		}
	}
	return nil, fmt.Errorf("service: dial %s %s: %d attempts exhausted: %w",
		o.Network, o.Addr, o.Attempts, lastErr)
}

// NewClient wraps an established connection (in-process pipes in tests)
// with raw framing.
func NewClient(conn net.Conn, batch int) *Client {
	if batch <= 0 {
		batch = DefaultClientBatch
	}
	return &Client{conn: conn, w: conn, buf: make([]collector.Sample, 0, batch), batch: batch}
}

// NewReliableClient wraps an established connection with the swp framing:
// frames are tunneled through a sliding-window sender, and imp (optional)
// impairs outbound segments for loss soaks.
func NewReliableClient(conn net.Conn, batch int, cfg swp.Config, imp *swp.ImpairConfig) *Client {
	c := NewClient(conn, batch)
	t := swp.SegmentConn(swp.NewStreamConn(conn))
	if imp != nil {
		t = swp.Impair(t, *imp)
	}
	c.snd = swp.NewSender(t, cfg)
	c.w = c.snd
	return c
}

// Reliable reports whether this client tunnels frames through swp.
func (c *Client) Reliable() bool { return c.snd != nil }

// TransportStats returns the swp sender's counters; ok is false for a raw
// client.
func (c *Client) TransportStats() (st swp.SenderStats, ok bool) {
	if c.snd == nil {
		return swp.SenderStats{}, false
	}
	return c.snd.Stats(), true
}

// Hello declares this connection's router identity. Send it first — frames
// before a hello are attributed to the connection's remote address. Names
// longer than the codec's MaxHelloLen are truncated at a rune boundary
// (collector.HelloName reports what is actually sent).
func (c *Client) Hello(name string) error {
	c.wire = collector.AppendHello(c.wire[:0], name)
	_, err := c.w.Write(c.wire)
	return err
}

// Add buffers one sample; its signature matches core.EstimateFunc so it can
// hang directly off a receiver's OnEstimate hook.
func (c *Client) Add(key packet.FlowKey, est, truth time.Duration) error {
	c.buf = append(c.buf, collector.Sample{Key: key, Est: est, True: truth})
	if len(c.buf) >= c.batch {
		return c.Flush()
	}
	return nil
}

// SendSamples writes one samples frame immediately (replay paths that
// already hold batches).
func (c *Client) SendSamples(batch []collector.Sample) error {
	c.wire = collector.AppendSamples(c.wire[:0], batch)
	_, err := c.w.Write(c.wire)
	return err
}

// SendRecords writes one NetFlow-records frame.
func (c *Client) SendRecords(recs []netflow.Record) error {
	c.wire = collector.AppendRecords(c.wire[:0], recs)
	_, err := c.w.Write(c.wire)
	return err
}

// Flush writes any buffered samples as one frame.
func (c *Client) Flush() error {
	if len(c.buf) == 0 {
		return nil
	}
	err := c.SendSamples(c.buf)
	c.buf = c.buf[:0]
	return err
}

// Close flushes and closes the connection. A reliable close blocks until
// every segment in flight has been acknowledged (or the retry budget
// fails), so a returned nil means the service holds every frame sent.
func (c *Client) Close() error {
	flushErr := c.Flush()
	var sendErr, closeErr error
	if c.snd != nil {
		// The sender owns the transport and closes the socket with it;
		// the extra conn.Close is belt-and-braces, its error meaningless.
		sendErr = c.snd.Close()
		_ = c.conn.Close()
	} else {
		closeErr = c.conn.Close()
	}
	if flushErr != nil {
		return flushErr
	}
	if sendErr != nil {
		return sendErr
	}
	return closeErr
}
