package service

import (
	"net"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
)

// Client is an exporter-side connection to a running service: it batches
// samples and records, encodes them with the collector wire codec, and
// writes frames to the socket. It is what a router's export path (or
// cmd/loadgen) runs. A Client is single-goroutine state, like runner.Sink;
// concurrency comes from running one Client per connection.
type Client struct {
	conn  net.Conn
	buf   []collector.Sample
	wire  []byte
	batch int
}

// DefaultClientBatch is the per-frame sample batch size.
const DefaultClientBatch = 256

// Dial connects to a service ingest listener. network is "tcp" or "unix";
// batch <= 0 selects DefaultClientBatch.
func Dial(network, addr string, batch int) (*Client, error) {
	conn, err := net.DialTimeout(network, addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, batch), nil
}

// NewClient wraps an established connection (in-process pipes in tests).
func NewClient(conn net.Conn, batch int) *Client {
	if batch <= 0 {
		batch = DefaultClientBatch
	}
	return &Client{conn: conn, buf: make([]collector.Sample, 0, batch), batch: batch}
}

// Hello declares this connection's router identity. Send it first — frames
// before a hello are attributed to the connection's remote address.
func (c *Client) Hello(name string) error {
	c.wire = collector.AppendHello(c.wire[:0], name)
	_, err := c.conn.Write(c.wire)
	return err
}

// Add buffers one sample; its signature matches core.EstimateFunc so it can
// hang directly off a receiver's OnEstimate hook.
func (c *Client) Add(key packet.FlowKey, est, truth time.Duration) error {
	c.buf = append(c.buf, collector.Sample{Key: key, Est: est, True: truth})
	if len(c.buf) >= c.batch {
		return c.Flush()
	}
	return nil
}

// SendSamples writes one samples frame immediately (replay paths that
// already hold batches).
func (c *Client) SendSamples(batch []collector.Sample) error {
	c.wire = collector.AppendSamples(c.wire[:0], batch)
	_, err := c.conn.Write(c.wire)
	return err
}

// SendRecords writes one NetFlow-records frame.
func (c *Client) SendRecords(recs []netflow.Record) error {
	c.wire = collector.AppendRecords(c.wire[:0], recs)
	_, err := c.conn.Write(c.wire)
	return err
}

// Flush writes any buffered samples as one frame.
func (c *Client) Flush() error {
	if len(c.buf) == 0 {
		return nil
	}
	err := c.SendSamples(c.buf)
	c.buf = c.buf[:0]
	return err
}

// Close flushes and closes the connection.
func (c *Client) Close() error {
	flushErr := c.Flush()
	closeErr := c.conn.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}
