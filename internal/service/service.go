// Package service is the long-lived measurement service behind cmd/rlird:
// the operational form of the collection tier that everything else in this
// repository only runs in batch. A fleet of RLI receivers and NetFlow
// exporters (real ones, or cmd/loadgen replaying captured scenario traffic)
// connect over TCP or Unix sockets and stream the collector wire frames of
// internal/collector; the service drains every connection through the
// sharded collector plane and answers operator queries over HTTP.
//
// The data path is deliberately thin — it is the same codec and the same
// collector the batch engine uses, so a streamed run is bit-identical to
// its batch counterpart (the equivalence the service tests pin):
//
//	exporter conn ──wire frames──> FrameReader ──batches──> collector shards
//	                     │
//	                     └──hello──> per-router aggregates (rolling tails)
//
// Backpressure is end-to-end: a full shard queue blocks Ingest, which
// blocks the connection's read loop, which fills the kernel socket buffer,
// which stalls the exporter — bounding service memory with no drop policy.
//
// The HTTP API serves /flows (the per-flow aggregate table), /routers
// (per-exporter aggregates), /comparison (estimate-vs-truth scoring via
// measure.CompareFlowAggs, possible because scenario traffic ships ground
// truth in-band), /healthz, and a Prometheus-style /metrics. Shutdown is
// graceful: listeners close first, in-flight connections get a drain
// window, and the collector closes only after every handler has returned,
// so the final flow table is complete and remains queryable.
package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/stats"
	"github.com/netmeasure/rlir/internal/swp"
)

// Config sizes and addresses the service. The zero value is valid for an
// in-process server with no listeners (attach connections via ServeConn and
// the HTTP handler via Handler — what the tests and examples do).
type Config struct {
	// Listen is the TCP ingest address ("" disables TCP ingest).
	Listen string `json:"listen,omitempty"`
	// Unix is the Unix-socket ingest path ("" disables; the path is removed
	// on shutdown).
	Unix string `json:"unix,omitempty"`
	// HTTP is the query API address ("" disables the built-in HTTP server;
	// Handler still serves the API in-process).
	HTTP string `json:"http,omitempty"`
	// Shards / Depth size the collector plane (collector.Config semantics).
	Shards int `json:"shards,omitempty"`
	Depth  int `json:"depth,omitempty"`
	// MaxFrameRecords bounds one frame's record count (0 = the codec's
	// DefaultMaxFrameRecords).
	MaxFrameRecords int `json:"max_frame_records,omitempty"`
	// MaxFlows caps the individually tracked flow population; past it the
	// least-recently-seen flows fold into the class/router rollup tiers
	// served by /rollup (0 = unbounded). See collector.Config.MaxFlows.
	MaxFlows int `json:"max_flows,omitempty"`
	// FlowWindow expires flows idle longer than this into the rollup tiers
	// (0 = never). See collector.Config.Window.
	FlowWindow time.Duration `json:"flow_window_ns,omitempty"`
	// MaxClasses caps the class rollup tier (0 = unbounded). See
	// collector.Config.MaxClasses.
	MaxClasses int `json:"max_classes,omitempty"`
	// Window is the rolling ingest-rate window (default 10s).
	Window time.Duration `json:"window_ns,omitempty"`
	// DrainTimeout bounds graceful shutdown: connections still streaming
	// after this grace are force-closed (default 5s; Shutdown's context may
	// shorten it further).
	DrainTimeout time.Duration `json:"drain_timeout_ns,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

// LoadConfig reads a JSON config file (the -config front-end of cmd/rlird).
// Unknown fields are rejected so a misspelled knob fails loudly.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var c Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("service: bad config %s: %w", path, err)
	}
	return c, nil
}

// routerAgg is one exporter's rolling view, keyed by the name its hello
// frame declared (falling back to the connection's remote address).
type routerAgg struct {
	mu      sync.Mutex
	frames  uint64
	samples uint64
	records uint64
	bytes   uint64
	est     stats.Welford
	truth   stats.Welford
	hist    stats.Histogram
	// Reliable-transport accounting, populated only for exporters that
	// connect with the swp framing: segments received, duplicates dropped
	// (retransmissions whose original arrived — the receiver-side signature
	// of upstream loss), segments reorder-buffered, and gap episodes.
	reliable    bool
	tSegments   uint64
	tDuplicates uint64
	tOutOfOrder uint64
	tGaps       uint64
}

// decodeErrKey labels one decode-error counter: which exporter, which kind
// of corruption.
type decodeErrKey struct {
	router string
	kind   string
}

// Server is the running service. Create with New, stop with Shutdown.
type Server struct {
	cfg  Config
	coll *collector.Collector

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	routers map[string]*routerAgg

	tcpLn   net.Listener
	unixLn  net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	wg     sync.WaitGroup // connection handlers + accept loops
	window *rateWindow
	start  time.Time

	frames     atomic.Uint64
	connsTotal atomic.Uint64
	decodeErrs atomic.Uint64
	draining   atomic.Bool
	closed     atomic.Bool

	// Reliable-transport totals across all swp connections.
	relConnsTotal atomic.Uint64
	tSegments     atomic.Uint64
	tDuplicates   atomic.Uint64
	tOutOfOrder   atomic.Uint64
	tGaps         atomic.Uint64

	errsMu       sync.Mutex
	decodeErrsBy map[decodeErrKey]uint64
}

// New starts a server: collector shards, the configured ingest listeners,
// the rolling-rate ticker, and (when cfg.HTTP is set) the query API server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		coll: collector.New(collector.Config{
			Shards:     cfg.Shards,
			Depth:      cfg.Depth,
			MaxFlows:   cfg.MaxFlows,
			Window:     cfg.FlowWindow,
			MaxClasses: cfg.MaxClasses,
		}),
		conns:        make(map[net.Conn]struct{}),
		routers:      make(map[string]*routerAgg),
		decodeErrsBy: make(map[decodeErrKey]uint64),
		start:        time.Now(),
	}
	s.window = newRateWindow(cfg.Window, s.ingestTotals)

	// A bind failure must tear down everything already started — the
	// collector's shard goroutines and the rate ticker — or a caller
	// retrying "address already in use" leaks goroutines per attempt.
	fail := func(err error) (*Server, error) {
		s.closeListeners()
		s.wg.Wait() // accept loops exit when their listener closes
		s.window.stop()
		s.coll.Close()
		return nil, err
	}
	var err error
	if cfg.Listen != "" {
		if s.tcpLn, err = net.Listen("tcp", cfg.Listen); err != nil {
			return fail(err)
		}
		s.acceptLoop(s.tcpLn)
	}
	if cfg.Unix != "" {
		_ = os.Remove(cfg.Unix) // a stale socket from a previous run
		if s.unixLn, err = net.Listen("unix", cfg.Unix); err != nil {
			return fail(err)
		}
		s.acceptLoop(s.unixLn)
	}
	if cfg.HTTP != "" {
		if s.httpLn, err = net.Listen("tcp", cfg.HTTP); err != nil {
			return fail(err)
		}
		s.httpSrv = &http.Server{Handler: s.Handler()}
		go func() { _ = s.httpSrv.Serve(s.httpLn) }()
	}
	return s, nil
}

// Addr returns the TCP ingest listener's resolved address (nil when TCP
// ingest is disabled) — how a test or parent process discovers a ":0" port.
func (s *Server) Addr() net.Addr {
	if s.tcpLn == nil {
		return nil
	}
	return s.tcpLn.Addr()
}

// HTTPAddr returns the query API listener's resolved address (nil when the
// built-in HTTP server is disabled).
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// Collector exposes the underlying plane (tests and in-process embedding).
func (s *Server) Collector() *collector.Collector { return s.coll }

func (s *Server) ingestTotals() (uint64, uint64) {
	return s.coll.SamplesIngested(), s.coll.RecordsIngested()
}

func (s *Server) acceptLoop(ln net.Listener) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed (shutdown)
			}
			s.trackConn(conn)
		}
	}()
}

// trackConn registers conn and starts its handler.
func (s *Server) trackConn(conn net.Conn) {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	s.connsTotal.Add(1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			conn.Close()
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
		s.serveConn(conn)
	}()
}

// ServeConn hands one already-established connection to the service
// (in-process ingest without a listener) and returns immediately; the
// stream drains on the connection's own handler goroutine, exactly like a
// listener-accepted connection. Synchronize on the collector's ingest
// counters (see SamplesIngested) before reading snapshots.
func (s *Server) ServeConn(conn net.Conn) {
	if s.closed.Load() {
		conn.Close()
		return
	}
	s.trackConn(conn)
}

// serveConn is the per-connection read loop: frames in, collector batches
// out. The collector's bounded queues provide the backpressure — a slow
// plane blocks here, which stalls the peer's writes.
//
// The first bytes pick the framing: the swp segment magic selects the
// reliable transport (an swp.Receiver reassembles the frame stream and acks
// back over the same socket), anything else is read as raw collector
// frames. Either way the same FrameReader decodes what arrives.
//
// The per-router aggregate is resolved lazily on the first data frame: a
// well-behaved exporter's hello arrives first, so its connection never
// creates an entry under the fallback remote-address identity — otherwise
// every reconnect would leave a permanent dead row in s.routers.
func (s *Server) serveConn(conn net.Conn) {
	name := remoteName(conn)
	var router *routerAgg
	agg := func() *routerAgg {
		if router == nil {
			router = s.routerFor(name)
		}
		return router
	}

	br := bufio.NewReader(conn)
	magic, err := br.Peek(2)
	if err != nil {
		return // connection ended before any framing was spoken
	}
	src := io.Reader(br)
	var rel *swp.Receiver
	var lastTS swp.ReceiverStats
	if swp.Detect(magic) {
		// Reads drain the bufio buffer holding the peeked bytes; acks
		// write straight to the socket.
		rel = swp.NewReceiver(swp.NewStreamConnPair(br, conn), swp.Config{})
		defer rel.Close()
		src = rel
		s.relConnsTotal.Add(1)
	}
	// flushTransport folds the receiver's counter deltas into the global
	// and per-exporter transport accounting; called per frame so /metrics
	// tracks a live connection, and once more when the stream ends.
	flushTransport := func() {
		if rel == nil {
			return
		}
		cur := rel.Stats()
		d := swp.ReceiverStats{
			Segments:   cur.Segments - lastTS.Segments,
			Duplicates: cur.Duplicates - lastTS.Duplicates,
			OutOfOrder: cur.OutOfOrder - lastTS.OutOfOrder,
			Gaps:       cur.Gaps - lastTS.Gaps,
		}
		lastTS = cur
		s.tSegments.Add(d.Segments)
		s.tDuplicates.Add(d.Duplicates)
		s.tOutOfOrder.Add(d.OutOfOrder)
		s.tGaps.Add(d.Gaps)
		r := agg()
		r.mu.Lock()
		r.reliable = true
		r.tSegments += d.Segments
		r.tDuplicates += d.Duplicates
		r.tOutOfOrder += d.OutOfOrder
		r.tGaps += d.Gaps
		r.mu.Unlock()
	}
	defer flushTransport()

	fr := collector.NewFrameReader(src, s.cfg.MaxFrameRecords)
	for {
		f, err := fr.Next()
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.decodeErrs.Add(1)
				s.recordDecodeErr(name, err)
			}
			return
		}
		s.frames.Add(1)
		switch f.Type {
		case collector.MsgHello:
			name, router = f.Hello, nil
			r := agg()
			r.mu.Lock()
			r.frames++
			r.mu.Unlock()
		case collector.MsgSamples:
			s.coll.Ingest(f.Samples)
			r := agg()
			r.mu.Lock()
			r.frames++
			r.samples += uint64(len(f.Samples))
			for _, smp := range f.Samples {
				r.est.Add(float64(smp.Est))
				r.truth.Add(float64(smp.True))
				r.hist.Record(smp.Est)
			}
			r.mu.Unlock()
		case collector.MsgRecords:
			s.coll.IngestRecords(f.Records)
			r := agg()
			r.mu.Lock()
			r.frames++
			r.records += uint64(len(f.Records))
			for _, rec := range f.Records {
				r.bytes += rec.Bytes
			}
			r.mu.Unlock()
		}
		flushTransport()
	}
}

// errKind buckets a read-loop error for the per-exporter decode-error
// counters. Transport-layer (swp) kinds are matched before codec kinds:
// FrameReader wraps stream errors in ErrTruncatedFrame, and a reliable
// connection dying mid-segment should count against the transport, not the
// codec.
func errKind(err error) string {
	switch {
	case errors.Is(err, swp.ErrMissingSegments):
		return "missing_segments"
	case errors.Is(err, swp.ErrRetryBudgetExhausted):
		return "retry_budget"
	case errors.Is(err, swp.ErrBadSegmentMagic),
		errors.Is(err, swp.ErrBadSegmentVersion),
		errors.Is(err, swp.ErrBadSegmentType),
		errors.Is(err, swp.ErrOversizedSegment):
		return "bad_segment"
	case errors.Is(err, swp.ErrTruncatedSegment):
		return "truncated_segment"
	case errors.Is(err, collector.ErrBadFrameMagic):
		return "bad_magic"
	case errors.Is(err, collector.ErrBadVersion):
		return "bad_version"
	case errors.Is(err, collector.ErrBadMessageType):
		return "bad_message_type"
	case errors.Is(err, collector.ErrOversizedFrame):
		return "oversized"
	case errors.Is(err, collector.ErrTruncatedFrame):
		return "truncated"
	case errors.Is(err, collector.ErrShortFrame):
		return "short"
	default:
		return "other"
	}
}

// recordDecodeErr counts one decode error against the exporter it came
// from, keyed by error kind — so /metrics can say which peer is corrupting
// its stream and how, before the connection is dropped.
func (s *Server) recordDecodeErr(router string, err error) {
	s.errsMu.Lock()
	s.decodeErrsBy[decodeErrKey{router: router, kind: errKind(err)}]++
	s.errsMu.Unlock()
}

// decodeErrKinds returns a copy of the labeled decode-error counters.
func (s *Server) decodeErrKinds() map[decodeErrKey]uint64 {
	s.errsMu.Lock()
	defer s.errsMu.Unlock()
	out := make(map[decodeErrKey]uint64, len(s.decodeErrsBy))
	for k, v := range s.decodeErrsBy {
		out[k] = v
	}
	return out
}

// remoteName is the pre-hello router identity: the peer's address, or a
// stable placeholder for address-less sockets (unnamed Unix peers, pipes).
func remoteName(conn net.Conn) string {
	if ra := conn.RemoteAddr(); ra != nil {
		if n := ra.String(); n != "" && n != "@" {
			return n
		}
	}
	return "unnamed"
}

func (s *Server) routerFor(name string) *routerAgg {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.routers[name]
	if !ok {
		r = &routerAgg{}
		s.routers[name] = r
	}
	return r
}

// Snapshot returns the current per-flow aggregate table (sorted by key), a
// consistent cut of everything ingested before the call.
func (s *Server) Snapshot() []collector.FlowAgg { return s.coll.Snapshot() }

// Shutdown stops the service gracefully: ingest listeners close first, then
// in-flight connections get min(ctx, DrainTimeout) to finish streaming
// before being force-closed; the collector closes only after every handler
// has returned, and its final flow table stays queryable (Snapshot, the
// HTTP handler). Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.closeListeners()

	drainCtx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	done := make(chan struct{})
	go func() {
		s.connWait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-drainCtx.Done():
		err = fmt.Errorf("service: drain timeout, force-closing %d connections", s.activeConns())
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}

	s.wg.Wait() // accept loops + remaining handlers
	s.window.stop()
	s.coll.Close()
	s.closed.Store(true)
	if s.httpSrv != nil {
		_ = s.httpSrv.Shutdown(ctx)
	}
	if s.cfg.Unix != "" {
		_ = os.Remove(s.cfg.Unix)
	}
	return err
}

// connWait blocks until every tracked connection's handler removed itself.
func (s *Server) connWait() {
	for {
		if s.activeConns() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

func (s *Server) activeConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

func (s *Server) closeListeners() {
	for _, ln := range []net.Listener{s.tcpLn, s.unixLn} {
		if ln != nil {
			ln.Close()
		}
	}
}

// rateWindow samples cumulative ingest counters on a ticker and reports the
// rolling rate over its window — the "is the plane keeping up right now"
// number /healthz and /metrics expose, which cumulative totals cannot give
// a long-lived process.
type rateWindow struct {
	mu     sync.Mutex
	slots  []rateSlot
	read   func() (samples, records uint64)
	window time.Duration
	stopCh chan struct{}
	wg     sync.WaitGroup
}

type rateSlot struct {
	at               time.Time
	samples, records uint64
}

const rateSlots = 20

func newRateWindow(window time.Duration, read func() (uint64, uint64)) *rateWindow {
	w := &rateWindow{read: read, window: window, stopCh: make(chan struct{})}
	w.record(time.Now())
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		t := time.NewTicker(window / rateSlots)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				w.record(now)
			case <-w.stopCh:
				return
			}
		}
	}()
	return w
}

func (w *rateWindow) record(now time.Time) {
	samples, records := w.read()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.slots = append(w.slots, rateSlot{at: now, samples: samples, records: records})
	// Keep one slot older than the window so the rate always spans >= window
	// once enough history exists.
	for len(w.slots) > 2 && now.Sub(w.slots[1].at) >= w.window {
		w.slots = w.slots[1:]
	}
}

// rates returns rolling (samples/s, records/s) over the window.
func (w *rateWindow) rates() (float64, float64) {
	// A fresh reading makes the rate current even between ticks.
	w.record(time.Now())
	w.mu.Lock()
	defer w.mu.Unlock()
	first, last := w.slots[0], w.slots[len(w.slots)-1]
	dt := last.at.Sub(first.at).Seconds()
	if dt <= 0 {
		return 0, 0
	}
	return float64(last.samples-first.samples) / dt, float64(last.records-first.records) / dt
}

func (w *rateWindow) stop() {
	close(w.stopCh)
	w.wg.Wait()
}
