package service

import (
	"context"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/queryapi"
)

// TestServiceBoundedFlowTable drives a churning stream through a service
// configured with a flow cap and checks the whole eviction surface: the
// /healthz accounting, the new /metrics series, and the /rollup tiers.
func TestServiceBoundedFlowTable(t *testing.T) {
	s, err := New(Config{Shards: 2, MaxFlows: 32, MaxClasses: 16, Window: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	server, client := net.Pipe()
	s.ServeConn(server)
	// 2000 distinct single-sample flows through a 32-flow table.
	smps := make([]collector.Sample, 2000)
	for i := range smps {
		smps[i] = collector.Sample{
			Key: packet.FlowKey{
				Src: packet.Addr(0x0a000000 + i), Dst: packet.Addr(0x0b000000 + i/100),
				SrcPort: uint16(1024 + i%500), DstPort: 443, Proto: 6,
			},
			Est: time.Duration(50+i) * time.Microsecond,
		}
	}
	var buf []byte
	buf = collector.AppendSamples(buf, smps)
	go func() {
		client.Write(buf)
		client.Close()
	}()
	waitIngested(t, s, uint64(len(smps)))

	var health HealthJSON
	getJSON(t, s, "/healthz", &health)
	if health.Flows > 32 {
		t.Fatalf("healthz reports %d flows, cap 32", health.Flows)
	}
	if health.FlowsEvicted == 0 {
		t.Fatal("healthz reports no evictions after churning 2000 flows")
	}
	if health.FlowClasses == 0 || health.FlowClasses > 16 {
		t.Fatalf("healthz reports %d classes, want 1..16", health.FlowClasses)
	}

	var roll queryapi.RollupJSON
	getJSON(t, s, "/rollup", &roll)
	if roll.FlowsTracked != health.Flows || roll.FlowsEvicted == 0 {
		t.Fatalf("rollup accounting %+v inconsistent with healthz %+v", roll, health)
	}
	// Conservation across the HTTP surface: /flows + /rollup cover every
	// ingested sample.
	var flows []FlowJSON
	getJSON(t, s, "/flows", &flows)
	var total int64
	for _, f := range flows {
		total += f.Samples
	}
	for _, c := range roll.Classes {
		total += c.Samples
	}
	total += roll.Router.Samples
	if total != int64(len(smps)) {
		t.Fatalf("flows+rollup cover %d samples, ingested %d", total, len(smps))
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		"rlird_flows_tracked ",
		"rlird_flows_evicted_total ",
		"rlird_flows_expired_total ",
		"rlird_flow_classes ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "rlird_flows_evicted_total 0\n") {
		t.Fatal("/metrics reports zero evictions after churn")
	}
}

// TestServiceFlowWindowExpiry checks the idle-expiry path end to end: with
// a short FlowWindow, early flows fold into the rollup once later traffic
// arrives after the window has passed.
func TestServiceFlowWindowExpiry(t *testing.T) {
	s, err := New(Config{Shards: 1, FlowWindow: 50 * time.Millisecond, Window: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	server, client := net.Pipe()
	s.ServeConn(server)
	old := genSamples(100, 10)
	var buf []byte
	buf = collector.AppendSamples(nil, old)
	go client.Write(buf)
	waitIngested(t, s, 100)

	time.Sleep(100 * time.Millisecond) // let the window pass

	fresh := make([]collector.Sample, 50)
	for i := range fresh {
		fresh[i] = collector.Sample{
			Key: packet.FlowKey{Src: 0x7f000001, Dst: 0x7f000002, SrcPort: uint16(9000 + i), DstPort: 80, Proto: 17},
			Est: time.Millisecond,
		}
	}
	buf2 := collector.AppendSamples(nil, fresh)
	go func() {
		client.Write(buf2)
		client.Close()
	}()
	waitIngested(t, s, 150)

	waitFor(t, "idle flows to expire", func() bool {
		return s.Collector().Stats().Expired > 0
	})
	var health HealthJSON
	getJSON(t, s, "/healthz", &health)
	if health.FlowsExpired == 0 {
		t.Fatal("healthz reports no expiries")
	}
	if health.FlowsEvicted != 0 {
		t.Fatalf("no cap configured but healthz reports %d evictions", health.FlowsEvicted)
	}
}
